// AdmissionQueue: bounded FIFO with explicit backpressure.

#include "service/admission_queue.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace dycuckoo {
namespace service {
namespace {

TEST(AdmissionQueueTest, FifoOrder) {
  AdmissionQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i).ok());
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    int v = -1;
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(AdmissionQueueTest, PopOnEmptyReturnsFalse) {
  AdmissionQueue<int> q(2);
  int v = 0;
  EXPECT_FALSE(q.Pop(&v));
}

TEST(AdmissionQueueTest, RejectsBeyondCapacityWithResourceExhausted) {
  AdmissionQueue<std::string> q(2);
  EXPECT_TRUE(q.Push("a").ok());
  EXPECT_TRUE(q.Push("b").ok());
  Status st = q.Push("c");
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_EQ(q.size(), 2u);  // the rejected element was not buffered
}

TEST(AdmissionQueueTest, CapacityFreesUpAfterPop) {
  AdmissionQueue<int> q(1);
  ASSERT_TRUE(q.Push(1).ok());
  EXPECT_TRUE(q.Push(2).IsResourceExhausted());
  int v = 0;
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_TRUE(q.Push(2).ok());
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
}

TEST(AdmissionQueueTest, ConcurrentProducersNeverExceedCapacity) {
  constexpr uint64_t kCapacity = 64;
  AdmissionQueue<uint64_t> q(kCapacity);
  std::atomic<uint64_t> accepted{0}, rejected{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      for (uint64_t i = 0; i < 100; ++i) {
        if (q.Push(static_cast<uint64_t>(t) * 1000 + i).ok()) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(accepted.load(), kCapacity);  // queue was never drained
  EXPECT_EQ(rejected.load(), 400 - kCapacity);
  EXPECT_EQ(q.size(), kCapacity);
  uint64_t drained = 0, v = 0;
  while (q.Pop(&v)) ++drained;
  EXPECT_EQ(drained, kCapacity);
}

}  // namespace
}  // namespace service
}  // namespace dycuckoo
