#include "dycuckoo/dynamic_table.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "dycuckoo/dycuckoo.h"
#include "gpusim/device_arena.h"
#include "test_util.h"

namespace dycuckoo {
namespace {

using testing::ReferenceModel;
using testing::SequentialValues;
using testing::UniqueKeys;

std::unique_ptr<DyCuckooMap> MakeTable(DyCuckooOptions options = {}) {
  std::unique_ptr<DyCuckooMap> table;
  Status st = DyCuckooMap::Create(options, &table);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return table;
}

TEST(DynamicTableTest, CreateRejectsBadOptions) {
  DyCuckooOptions o;
  o.num_subtables = 1;
  std::unique_ptr<DyCuckooMap> table;
  EXPECT_TRUE(DyCuckooMap::Create(o, &table).IsInvalidArgument());
}

TEST(DynamicTableTest, EmptyTableBasics) {
  auto t = MakeTable();
  EXPECT_EQ(t->size(), 0u);
  EXPECT_DOUBLE_EQ(t->filled_factor(), 0.0);
  EXPECT_EQ(t->num_subtables(), 4);
  EXPECT_FALSE(t->Find(123));
  EXPECT_FALSE(t->Erase(123));
  EXPECT_TRUE(t->Validate().ok());
}

TEST(DynamicTableTest, SingleInsertFindErase) {
  auto t = MakeTable();
  EXPECT_TRUE(t->Insert(42, 99).ok());
  uint32_t v = 0;
  EXPECT_TRUE(t->Find(42, &v));
  EXPECT_EQ(v, 99u);
  EXPECT_EQ(t->size(), 1u);
  EXPECT_TRUE(t->Erase(42));
  EXPECT_FALSE(t->Find(42));
  EXPECT_EQ(t->size(), 0u);
}

TEST(DynamicTableTest, InsertIsUpsert) {
  auto t = MakeTable();
  EXPECT_TRUE(t->Insert(7, 1).ok());
  EXPECT_TRUE(t->Insert(7, 2).ok());
  uint32_t v = 0;
  EXPECT_TRUE(t->Find(7, &v));
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(t->size(), 1u);
  EXPECT_TRUE(t->Validate().ok()) << "upsert must not duplicate the key";
}

TEST(DynamicTableTest, RepeatedUpsertsAcrossBatchesNeverDuplicate) {
  auto t = MakeTable();
  auto keys = UniqueKeys(5000);
  for (int round = 0; round < 5; ++round) {
    auto values = SequentialValues(keys.size(), round * 100000);
    ASSERT_TRUE(t->BulkInsert(keys, values).ok());
    ASSERT_EQ(t->size(), keys.size()) << "round " << round;
    ASSERT_TRUE(t->Validate().ok()) << "round " << round;
  }
  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]);
    ASSERT_EQ(out[i], 400000 + i);  // last round's values
  }
}

TEST(DynamicTableTest, BulkInsertFindAllPresent) {
  auto t = MakeTable();
  auto keys = UniqueKeys(50000);
  auto values = SequentialValues(keys.size());
  ASSERT_TRUE(t->BulkInsert(keys, values).ok());
  EXPECT_EQ(t->size(), keys.size());

  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]) << "key index " << i;
    ASSERT_EQ(out[i], values[i]);
  }
}

TEST(DynamicTableTest, FindMissesForAbsentKeys) {
  auto t = MakeTable();
  auto keys = UniqueKeys(10000, /*seed=*/1);
  auto absent = UniqueKeys(10000, /*seed=*/2);
  // Remove accidental overlaps from the probe set.
  std::vector<uint32_t> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<uint32_t> probes;
  for (uint32_t k : absent) {
    if (!std::binary_search(sorted.begin(), sorted.end(), k)) {
      probes.push_back(k);
    }
  }
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  std::vector<uint8_t> found(probes.size(), 2);
  t->BulkFind(probes, nullptr, found.data());
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(found[i], 0) << "phantom key at " << i;
  }
}

TEST(DynamicTableTest, BulkEraseRemovesExactlyRequested) {
  auto t = MakeTable();
  auto keys = UniqueKeys(20000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());

  std::vector<uint32_t> victims(keys.begin(), keys.begin() + 10000);
  uint64_t erased = 0;
  ASSERT_TRUE(t->BulkErase(victims, &erased).ok());
  EXPECT_EQ(erased, victims.size());
  EXPECT_EQ(t->size(), keys.size() - victims.size());

  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, nullptr, found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(found[i] != 0, i >= 10000) << "index " << i;
  }
  EXPECT_TRUE(t->Validate().ok());
}

TEST(DynamicTableTest, EraseMissingKeysCountsZero) {
  auto t = MakeTable();
  ASSERT_TRUE(t->Insert(1, 1).ok());
  std::vector<uint32_t> missing = {2, 3, 4};
  uint64_t erased = 7;
  ASSERT_TRUE(t->BulkErase(missing, &erased).ok());
  EXPECT_EQ(erased, 0u);
  EXPECT_EQ(t->size(), 1u);
}

TEST(DynamicTableTest, DoubleEraseIsIdempotent) {
  auto t = MakeTable();
  ASSERT_TRUE(t->Insert(5, 6).ok());
  EXPECT_TRUE(t->Erase(5));
  EXPECT_FALSE(t->Erase(5));
  EXPECT_EQ(t->size(), 0u);
}

TEST(DynamicTableTest, ReservedSentinelKeyRejected) {
  auto t = MakeTable();
  std::vector<uint32_t> keys = {1, 0xffffffffu, 3};
  std::vector<uint32_t> values = {1, 2, 3};
  Status st = t->BulkInsert(keys, values);
  EXPECT_TRUE(st.IsInvalidArgument());
  // The valid keys in the batch still landed.
  EXPECT_TRUE(t->Find(1));
  EXPECT_TRUE(t->Find(3));
  EXPECT_EQ(t->size(), 2u);
}

TEST(DynamicTableTest, MismatchedSpansRejected) {
  auto t = MakeTable();
  std::vector<uint32_t> keys = {1, 2};
  std::vector<uint32_t> values = {1};
  EXPECT_TRUE(t->BulkInsert(keys, values).IsInvalidArgument());
}

TEST(DynamicTableTest, EmptyBatchesAreNoops) {
  auto t = MakeTable();
  EXPECT_TRUE(t->BulkInsert({}, {}).ok());
  EXPECT_TRUE(t->BulkErase({}).ok());
  t->BulkFind({}, nullptr, nullptr);
  EXPECT_EQ(t->size(), 0u);
}

TEST(DynamicTableTest, ZeroIsAValidKeyAndValue) {
  auto t = MakeTable();
  ASSERT_TRUE(t->Insert(0, 0).ok());
  uint32_t v = 99;
  EXPECT_TRUE(t->Find(0, &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(t->Erase(0));
}

TEST(DynamicTableTest, ModelBasedRandomOperations) {
  // Differential test against std::unordered_map over randomized batched
  // insert/find/erase traffic with key reuse.  Updates of resident keys and
  // inserts of new keys go in separate batches, the pattern under which the
  // batch semantics are fully deterministic (see BulkInsert's doc comment).
  auto t = MakeTable();
  ReferenceModel model;
  SplitMix64 rng(2024);
  std::vector<uint32_t> universe = UniqueKeys(8000, 77);

  for (int round = 0; round < 30; ++round) {
    // Pick a random slice with fresh values (unique keys per batch), split
    // into new-key and resident-key sub-batches.
    std::vector<uint32_t> nk, nv, uk, uv;
    std::vector<uint8_t> used(universe.size(), 0);
    uint64_t inserts = 200 + rng.NextBounded(800);
    for (uint64_t i = 0; i < inserts; ++i) {
      uint64_t pick = rng.NextBounded(universe.size());
      if (used[pick]) continue;
      used[pick] = 1;
      uint32_t k = universe[pick];
      uint32_t v = static_cast<uint32_t>(rng.Next());
      if (model.Find(k, nullptr)) {
        uk.push_back(k);
        uv.push_back(v);
      } else {
        nk.push_back(k);
        nv.push_back(v);
      }
      model.Insert(k, v);
    }
    ASSERT_TRUE(t->BulkInsert(nk, nv).ok());
    ASSERT_TRUE(t->BulkInsert(uk, uv).ok());

    // Erase a random slice (unique keys per batch).
    std::fill(used.begin(), used.end(), 0);
    std::vector<uint32_t> ek;
    uint64_t erases = rng.NextBounded(400);
    for (uint64_t i = 0; i < erases; ++i) {
      uint64_t pick = rng.NextBounded(universe.size());
      if (used[pick]) continue;
      used[pick] = 1;
      ek.push_back(universe[pick]);
      model.Erase(universe[pick]);
    }
    ASSERT_TRUE(t->BulkErase(ek).ok());

    ASSERT_EQ(t->size(), model.size()) << "round " << round;
    ASSERT_TRUE(t->Validate().ok()) << "round " << round;
  }

  // Full sweep: every universe key agrees with the model.
  std::vector<uint32_t> out(universe.size());
  std::vector<uint8_t> found(universe.size());
  t->BulkFind(universe, out.data(), found.data());
  for (size_t i = 0; i < universe.size(); ++i) {
    uint32_t expect_v = 0;
    bool expect_hit = model.Find(universe[i], &expect_v);
    ASSERT_EQ(found[i] != 0, expect_hit) << "key " << universe[i];
    if (expect_hit) ASSERT_EQ(out[i], expect_v);
  }
}

TEST(DynamicTableTest, DumpMatchesContents) {
  auto t = MakeTable();
  auto keys = UniqueKeys(1000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  auto dump = t->Dump();
  EXPECT_EQ(dump.size(), keys.size());
  ReferenceModel model;
  for (size_t i = 0; i < keys.size(); ++i) model.Insert(keys[i], i);
  for (const auto& [k, v] : dump) {
    uint32_t mv = 0;
    ASSERT_TRUE(model.Find(k, &mv));
    ASSERT_EQ(v, mv);
  }
}

TEST(DynamicTableTest, StatsAccounting) {
  auto t = MakeTable();
  auto keys = UniqueKeys(10000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, nullptr, found.data());
  uint64_t erased = 0;
  ASSERT_TRUE(t->BulkErase(keys, &erased).ok());

  auto s = t->stats().Capture();
  EXPECT_EQ(s.inserts_new, keys.size());
  EXPECT_EQ(s.inserts_updated, keys.size());
  EXPECT_EQ(s.finds, keys.size());
  EXPECT_EQ(s.find_hits, keys.size());
  EXPECT_EQ(s.erases, keys.size());
  EXPECT_EQ(s.erase_hits, keys.size());
  EXPECT_EQ(s.insert_failures, 0u);
}

TEST(DynamicTableTest, StaticModeReportsFailuresInsteadOfGrowing) {
  DyCuckooOptions o;
  o.auto_resize = false;
  o.initial_capacity = 1024;
  o.max_eviction_chain = 16;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(4000);  // ~4x the capacity
  uint64_t failed = 0;
  Status st = t->BulkInsert(keys, SequentialValues(keys.size()), &failed);
  EXPECT_TRUE(st.IsInsertionFailure());
  EXPECT_GT(failed, 0u);
  EXPECT_EQ(t->capacity_slots(), 1024u);  // did not grow
  EXPECT_LE(t->size(), 1024u);
}

TEST(DynamicTableTest, SubtableIntrospection) {
  DyCuckooOptions o;
  o.num_subtables = 3;
  o.initial_capacity = 3 * 32 * 8;
  auto t = MakeTable(o);
  EXPECT_EQ(t->num_subtables(), 3);
  uint64_t total = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(t->subtable_slots(i), t->subtable_buckets(i) * 32);
    total += t->subtable_slots(i);
  }
  EXPECT_EQ(total, t->capacity_slots());
  EXPECT_GT(t->memory_bytes(), 0u);
}

TEST(DynamicTableTest, InitialCapacityLadderGranularity) {
  // Init picks a mixed {n, 2n} ladder configuration, so the allocated
  // capacity overshoots the hint by at most 25% (not the 2x of naive
  // power-of-two rounding).
  for (uint64_t hint : {1000ull, 5000ull, 20000ull, 77777ull, 300000ull}) {
    DyCuckooOptions o;
    o.initial_capacity = hint;
    auto t = MakeTable(o);
    EXPECT_GE(t->capacity_slots(), hint);
    EXPECT_LE(static_cast<double>(t->capacity_slots()),
              1.25 * static_cast<double>(hint) + 4 * 32)
        << "hint " << hint;
    EXPECT_TRUE(t->Validate().ok());
  }
}

TEST(DynamicTableTest, ClearEmptiesEverything) {
  auto t = MakeTable();
  auto keys = UniqueKeys(15000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  t->Clear();
  EXPECT_EQ(t->size(), 0u);
  EXPECT_TRUE(t->Validate().ok());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, nullptr, found.data());
  for (auto f : found) EXPECT_EQ(f, 0);
  // Still usable.
  ASSERT_TRUE(t->Insert(1, 2).ok());
  EXPECT_TRUE(t->Find(1));
}

TEST(DynamicTableTest, ForEachVisitsEveryPairOnce) {
  auto t = MakeTable();
  auto keys = UniqueKeys(8000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  ReferenceModel model;
  for (size_t i = 0; i < keys.size(); ++i) model.Insert(keys[i], i);

  uint64_t visited = 0;
  t->ForEach([&](uint32_t k, uint32_t v) {
    uint32_t mv = 0;
    ASSERT_TRUE(model.Find(k, &mv)) << k;
    ASSERT_EQ(v, mv);
    ++visited;
  });
  EXPECT_EQ(visited, keys.size());
}

TEST(DynamicTableTest, ReservePreallocatesForIngest) {
  DyCuckooOptions o;
  o.initial_capacity = 1024;
  auto t = MakeTable(o);
  ASSERT_TRUE(t->Reserve(100000).ok());
  uint64_t cap = t->capacity_slots();
  EXPECT_GE(cap * o.upper_bound, 100000.0);
  uint64_t upsizes_before = t->stats().upsizes.load();
  auto keys = UniqueKeys(100000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  EXPECT_EQ(t->stats().upsizes.load(), upsizes_before)
      << "reserved ingest must not resize";
  EXPECT_EQ(t->capacity_slots(), cap);
}

TEST(DynamicTableTest, SeparateArenasIsolateAccounting) {
  gpusim::DeviceArena a(64 << 20), b(64 << 20);
  DyCuckooOptions oa;
  oa.arena = &a;
  oa.initial_capacity = 1024;  // must grow to hold the batch
  DyCuckooOptions ob;
  ob.arena = &b;
  ob.initial_capacity = 1024;
  auto ta = MakeTable(oa);
  auto tb = MakeTable(ob);
  auto keys = UniqueKeys(20000);
  ASSERT_TRUE(ta->BulkInsert(keys, SequentialValues(keys.size())).ok());
  EXPECT_GT(a.used_bytes(), b.used_bytes());
  EXPECT_EQ(a.used_bytes(), ta->memory_bytes());
  EXPECT_EQ(b.used_bytes(), tb->memory_bytes());
}

TEST(DynamicTableTest, SixtyFourBitTable) {
  DyCuckooOptions o;
  std::unique_ptr<DyCuckooMap64> t;
  ASSERT_TRUE(DyCuckooMap64::Create(o, &t).ok());
  std::vector<uint64_t> keys(20000), values(20000);
  SplitMix64 rng(5);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng.Next() & ~uint64_t{0} >> 1;
    values[i] = i;
  }
  ASSERT_TRUE(t->BulkInsert(keys, values).ok());
  std::vector<uint64_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]);
    ASSERT_EQ(out[i], values[i]);
  }
  EXPECT_TRUE(t->Validate().ok());
}

class DynamicTableSubtableCountTest : public ::testing::TestWithParam<int> {};

TEST_P(DynamicTableSubtableCountTest, CorrectAcrossSubtableCounts) {
  DyCuckooOptions o;
  o.num_subtables = GetParam();
  auto t = MakeTable(o);
  auto keys = UniqueKeys(30000, GetParam());
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  EXPECT_EQ(t->size(), keys.size());
  EXPECT_TRUE(t->Validate().ok());

  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]);
    ASSERT_EQ(out[i], i);
  }
  uint64_t erased = 0;
  ASSERT_TRUE(t->BulkErase(keys, &erased).ok());
  EXPECT_EQ(erased, keys.size());
  EXPECT_TRUE(t->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(SubtableCounts, DynamicTableSubtableCountTest,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

}  // namespace
}  // namespace dycuckoo
