// End-to-end tests for tools/dylint: run the real binary against the
// planted-defect trees in tests/lint_fixtures/ and against the live
// repository, and assert on exit codes and diagnostics.
//
// The fixtures are the lint analogue of crash-injection kill points:
// each one plants exactly the defect its rule exists to catch, so a
// refactor that silently blinds a rule fails here instead of in review.

#include <array>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#ifndef DYCUCKOO_DYLINT_BINARY
#error "DYCUCKOO_DYLINT_BINARY must point at the built dylint executable"
#endif
#ifndef DYCUCKOO_SOURCE_DIR
#error "DYCUCKOO_SOURCE_DIR must point at the repository root"
#endif

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun RunDylint(const std::string& root) {
  const std::string cmd =
      std::string(DYCUCKOO_DYLINT_BINARY) + " --root " + root + " 2>&1";
  LintRun run;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buf;
  size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    run.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) run.exit_code = WEXITSTATUS(status);
  return run;
}

std::string Fixture(const std::string& name) {
  return std::string(DYCUCKOO_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

TEST(DylintTest, LiveTreeIsClean) {
  // The repository itself must lint clean: every raw access either goes
  // through the gpusim primitives or carries a justified suppression,
  // and the documented registries match the code.
  const LintRun run = RunDylint(DYCUCKOO_SOURCE_DIR);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("0 violations"), std::string::npos) << run.output;
}

TEST(DylintTest, CleanFixturePasses) {
  // Blessed-primitive usage and a justified suppression: no findings.
  const LintRun run = RunDylint(Fixture("clean"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(DylintTest, RawSlotStoreIsFlagged) {
  const LintRun run = RunDylint(Fixture("raw_slot_store"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[raw-slot-access]"), std::string::npos)
      << run.output;
  // The diagnostic lands on the planted line, with a clickable location.
  EXPECT_NE(run.output.find("src/rogue_probe.h:15"), std::string::npos)
      << run.output;
}

TEST(DylintTest, AbsoluteTagStoreIsFlagged) {
  // The fixture file sits at a raw-slot-access defining path, so the
  // only finding is the tag rule: fetch_xor passes, .store() fails.
  const LintRun run = RunDylint(Fixture("absolute_tag_store"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[tag-discipline]"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("[raw-slot-access]"), std::string::npos)
      << run.output;
  // Exactly one finding: the fetch_xor path next to it must pass.
  EXPECT_NE(run.output.find(", 1 violation\n"), std::string::npos)
      << run.output;
}

TEST(DylintTest, UnregisteredKillPointIsFlagged) {
  const LintRun run = RunDylint(Fixture("unregistered_killpoint"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // Drift is flagged in both directions: code-not-in-doc...
  EXPECT_NE(run.output.find("wal.undocumented_new_point"), std::string::npos)
      << run.output;
  // ...and doc-not-in-code.
  EXPECT_NE(run.output.find("wal.removed_stale_point"), std::string::npos)
      << run.output;
}

TEST(DylintTest, UnjustifiedSuppressionIsFlagged) {
  const LintRun run = RunDylint(Fixture("unjustified_suppression"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // The malformed allow is itself a finding...
  EXPECT_NE(run.output.find("[bad-suppression]"), std::string::npos)
      << run.output;
  // ...the unknown rule name is a finding...
  EXPECT_NE(run.output.find("made-up-rule"), std::string::npos) << run.output;
  // ...and the justification-free allow does NOT silence the raw store.
  EXPECT_NE(run.output.find("[raw-slot-access]"), std::string::npos)
      << run.output;
}

TEST(DylintTest, MissingRootIsAUsageError) {
  const LintRun run = RunDylint(Fixture("no_such_fixture_tree"));
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

}  // namespace
