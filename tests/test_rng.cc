#include "common/rng.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace dycuckoo {
namespace {

TEST(SplitMix64Test, DeterministicGivenSeed) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64Test, NextBoundedInRange) {
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(37), 37u);
  }
}

TEST(SplitMix64Test, NextDoubleInUnitInterval) {
  SplitMix64 rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoroshiro128Test, DeterministicGivenSeed) {
  Xoroshiro128 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoroshiro128Test, MeanOfUniformDoubles) {
  Xoroshiro128 rng(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoroshiro128Test, GaussianMoments) {
  Xoroshiro128 rng(13);
  double sum = 0, sum2 = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / kN;
  double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Xoroshiro128Test, BitBalance) {
  Xoroshiro128 rng(17);
  uint64_t ones = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) ones += __builtin_popcountll(rng.Next());
  double frac = static_cast<double>(ones) / (64.0 * kN);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

class BoundedUniformityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundedUniformityTest, BucketsRoughlyEven) {
  const uint64_t bound = GetParam();
  Xoroshiro128 rng(23);
  std::vector<int> counts(bound, 0);
  const int kDraws = 20000 * static_cast<int>(bound);
  for (int i = 0; i < kDraws; ++i) counts[rng.NextBounded(bound)]++;
  double expected = static_cast<double>(kDraws) / bound;
  for (uint64_t b = 0; b < bound; ++b) {
    EXPECT_NEAR(counts[b], expected, expected * 0.1) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, BoundedUniformityTest,
                         ::testing::Values(2ull, 3ull, 7ull, 16ull));

}  // namespace
}  // namespace dycuckoo
