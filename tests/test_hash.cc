#include "common/hash.h"

#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

namespace dycuckoo {
namespace {

TEST(UniversalHashTest, DeterministicForSameParams) {
  UniversalHash h(12345, 678);
  EXPECT_EQ(h(42, 1000), h(42, 1000));
  EXPECT_EQ(h.Raw(99), h.Raw(99));
}

TEST(UniversalHashTest, RangeRespected) {
  UniversalHash h = UniversalHash::FromSeed(7);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_LT(h(k, 17), 17u);
    EXPECT_LT(h(k, 1), 1u);
  }
}

TEST(UniversalHashTest, RawBelowPrime) {
  UniversalHash h = UniversalHash::FromSeed(99);
  for (uint64_t k = 0; k < 10000; k += 37) {
    EXPECT_LT(h.Raw(k), kUniversalPrime);
  }
}

TEST(UniversalHashTest, ZeroANormalizedToOne) {
  UniversalHash h(0, 5);
  EXPECT_EQ(h.a(), 1u);
}

TEST(UniversalHashTest, FromSeedDistinctSeedsDistinctFunctions) {
  UniversalHash h1 = UniversalHash::FromSeed(1);
  UniversalHash h2 = UniversalHash::FromSeed(2);
  int differences = 0;
  for (uint64_t k = 0; k < 100; ++k) {
    if (h1(k, 1 << 20) != h2(k, 1 << 20)) ++differences;
  }
  EXPECT_GT(differences, 90);
}

TEST(UniversalHashTest, AffineIdentity) {
  // Raw(k) == (a*k + b) mod p for small values computable directly.
  UniversalHash h(3, 11);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(h.Raw(k), (3 * k + 11) % kUniversalPrime);
  }
}

TEST(Mix64Test, Deterministic) { EXPECT_EQ(Mix64(123), Mix64(123)); }

TEST(Mix64Test, AvalancheFlipsAboutHalfTheBits) {
  // Flipping one input bit should flip ~32 of the 64 output bits.
  double total_flips = 0;
  int trials = 0;
  for (uint64_t x = 1; x < 2000; x += 13) {
    for (int bit = 0; bit < 64; bit += 7) {
      uint64_t a = Mix64(x);
      uint64_t b = Mix64(x ^ (uint64_t{1} << bit));
      total_flips += __builtin_popcountll(a ^ b);
      ++trials;
    }
  }
  double mean = total_flips / trials;
  EXPECT_GT(mean, 28.0);
  EXPECT_LT(mean, 36.0);
}

TEST(Mix64Test, InjectiveOnSample) {
  std::unordered_set<uint64_t> outputs;
  for (uint64_t x = 0; x < 100000; ++x) outputs.insert(Mix64(x));
  EXPECT_EQ(outputs.size(), 100000u);  // splitmix64 finalizer is a bijection
}

TEST(Mix32Test, AvalancheFlipsAboutHalfTheBits) {
  double total_flips = 0;
  int trials = 0;
  for (uint32_t x = 1; x < 2000; x += 13) {
    for (int bit = 0; bit < 32; bit += 5) {
      total_flips += __builtin_popcount(Mix32(x) ^ Mix32(x ^ (1u << bit)));
      ++trials;
    }
  }
  double mean = total_flips / trials;
  EXPECT_GT(mean, 13.0);
  EXPECT_LT(mean, 19.0);
}

class MixHashUniformityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MixHashUniformityTest, BucketsChiSquareReasonable) {
  // Hash 64k consecutive keys into 256 buckets; chi-square should be near
  // the 255 expected for uniform placement (generous 3-sigma bound).
  const uint64_t seed = GetParam();
  MixHash h(seed);
  constexpr int kBuckets = 256;
  constexpr int kKeys = 1 << 16;
  std::vector<int> counts(kBuckets, 0);
  for (uint64_t k = 0; k < kKeys; ++k) {
    counts[h.Raw(k) & (kBuckets - 1)]++;
  }
  double expected = static_cast<double>(kKeys) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    double d = c - expected;
    chi2 += d * d / expected;
  }
  // dof = 255, sigma = sqrt(2*255) ~ 22.6.
  EXPECT_LT(chi2, 255 + 5 * 22.6) << "seed " << seed;
  EXPECT_GT(chi2, 255 - 5 * 22.6) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixHashUniformityTest,
                         ::testing::Values(0ull, 1ull, 42ull, 0xdeadbeefull,
                                           0x123456789abcdefull));

TEST(MixHashTest, SeedChangesFunction) {
  MixHash a(1), b(2);
  int diff = 0;
  for (uint64_t k = 0; k < 256; ++k) {
    if (a.Raw(k) != b.Raw(k)) ++diff;
  }
  EXPECT_EQ(diff, 256);
}

TEST(Crc32Test, KnownAnswerAndIncrementalComposition) {
  // CRC-32/ISO-HDLC check value (the standard "123456789" vector).
  const char* kCheck = "123456789";
  EXPECT_EQ(Crc32Update(0, kCheck, 9), 0xCBF43926u);

  // Incremental updates over arbitrary splits must match one-shot.
  const char data[] = "deterministic fault injection";
  uint32_t whole = Crc32Update(0, data, sizeof(data) - 1);
  for (size_t split = 0; split < sizeof(data) - 1; ++split) {
    uint32_t crc = Crc32Update(0, data, split);
    crc = Crc32Update(crc, data + split, sizeof(data) - 1 - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }

  EXPECT_EQ(Crc32Update(0, "", 0), 0u);
  EXPECT_NE(Crc32Update(0, "a", 1), Crc32Update(0, "b", 1));
}

TEST(MixHashTest, PowerOfTwoSplitIdentity) {
  // The conflict-free upsize relies on: x & (2n-1) is x & (n-1) or +n.
  MixHash h(77);
  for (uint64_t n : {64ull, 1024ull, 65536ull}) {
    for (uint64_t k = 0; k < 5000; ++k) {
      uint64_t small = h.Raw(k) & (n - 1);
      uint64_t big = h.Raw(k) & (2 * n - 1);
      EXPECT_TRUE(big == small || big == small + n);
    }
  }
}

}  // namespace
}  // namespace dycuckoo
