#include "common/math_util.h"

#include <cstdint>

#include <gtest/gtest.h>

namespace dycuckoo {
namespace {

TEST(MathUtilTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 40));
  EXPECT_FALSE(IsPowerOfTwo((uint64_t{1} << 40) + 1));
}

TEST(MathUtilTest, NextPowerOfTwoBasics) {
  EXPECT_EQ(NextPowerOfTwo(0), 1u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048u);
}

class NextPowerOfTwoPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(NextPowerOfTwoPropertyTest, ResultIsSmallestCoveringPower) {
  uint64_t x = GetParam();
  uint64_t p = NextPowerOfTwo(x);
  EXPECT_TRUE(IsPowerOfTwo(p));
  EXPECT_GE(p, x);
  if (p > 1) EXPECT_LT(p / 2, x);
}

INSTANTIATE_TEST_SUITE_P(Values, NextPowerOfTwoPropertyTest,
                         ::testing::Values(1ull, 2ull, 5ull, 17ull, 100ull,
                                           4095ull, 4096ull, 4097ull,
                                           999999ull, 1ull << 33));

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 5), 0u);
  EXPECT_EQ(CeilDiv(1, 5), 1u);
  EXPECT_EQ(CeilDiv(5, 5), 1u);
  EXPECT_EQ(CeilDiv(6, 5), 2u);
  EXPECT_EQ(CeilDiv(10, 3), 4u);
}

TEST(MathUtilTest, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Floor(4), 2);
  EXPECT_EQ(Log2Floor(1024), 10);
  EXPECT_EQ(Log2Floor(1025), 10);
}

TEST(MathUtilTest, Choose2) {
  EXPECT_DOUBLE_EQ(Choose2(0), 0.0);
  EXPECT_DOUBLE_EQ(Choose2(1), 0.0);
  EXPECT_DOUBLE_EQ(Choose2(2), 1.0);
  EXPECT_DOUBLE_EQ(Choose2(5), 10.0);
  EXPECT_DOUBLE_EQ(Choose2(100), 4950.0);
}

}  // namespace
}  // namespace dycuckoo
