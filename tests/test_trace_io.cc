#include "workload/trace_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "workload/dataset.h"
#include "workload/dynamic_workload.h"

namespace dycuckoo {
namespace workload {
namespace {

std::vector<DynamicBatch> SampleBatches() {
  Dataset d;
  Status st = MakeDataset(DatasetId::kCompany, 0.01, 42, &d);
  EXPECT_TRUE(st.ok());
  DynamicWorkloadOptions o;
  o.batch_size = 5000;
  std::vector<DynamicBatch> batches;
  st = BuildDynamicWorkload(d, o, &batches);
  EXPECT_TRUE(st.ok());
  return batches;
}

TEST(TraceIoTest, RoundTripIdentical) {
  auto batches = SampleBatches();
  std::stringstream ss;
  ASSERT_TRUE(SaveTrace(batches, &ss).ok());

  std::vector<DynamicBatch> restored;
  ASSERT_TRUE(LoadTrace(&ss, &restored).ok());
  ASSERT_EQ(restored.size(), batches.size());
  for (size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(restored[i].insert_keys, batches[i].insert_keys) << i;
    EXPECT_EQ(restored[i].insert_values, batches[i].insert_values) << i;
    EXPECT_EQ(restored[i].find_keys, batches[i].find_keys) << i;
    EXPECT_EQ(restored[i].delete_keys, batches[i].delete_keys) << i;
  }
}

TEST(TraceIoTest, EmptyTimelineRoundTrip) {
  std::vector<DynamicBatch> empty;
  std::stringstream ss;
  ASSERT_TRUE(SaveTrace(empty, &ss).ok());
  std::vector<DynamicBatch> restored = {DynamicBatch{}};
  ASSERT_TRUE(LoadTrace(&ss, &restored).ok());
  EXPECT_TRUE(restored.empty());
}

TEST(TraceIoTest, RejectsGarbage) {
  std::stringstream ss;
  ss << "not a trace at all, sorry";
  std::vector<DynamicBatch> restored;
  EXPECT_TRUE(LoadTrace(&ss, &restored).IsInvalidArgument());
}

TEST(TraceIoTest, RejectsTruncation) {
  auto batches = SampleBatches();
  std::stringstream ss;
  ASSERT_TRUE(SaveTrace(batches, &ss).ok());
  std::string data = ss.str();
  std::stringstream cut(data.substr(0, data.size() * 2 / 3));
  std::vector<DynamicBatch> restored;
  EXPECT_TRUE(LoadTrace(&cut, &restored).IsInvalidArgument());
}

TEST(TraceIoTest, RejectsMismatchedBatchOnSave) {
  std::vector<DynamicBatch> bad(1);
  bad[0].insert_keys = {1, 2};
  bad[0].insert_values = {1};
  std::stringstream ss;
  EXPECT_TRUE(SaveTrace(bad, &ss).IsInvalidArgument());
}

}  // namespace
}  // namespace workload
}  // namespace dycuckoo
