// Unit tests for the durability subsystem: WAL framing, group commit,
// head truncation, the checkpoint store, and point-in-time recovery.

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "durability/checkpoint.h"
#include "durability/log_format.h"
#include "durability/manager.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "dycuckoo/dynamic_table.h"
#include "gpusim/device_arena.h"
#include "gpusim/fault_injector.h"

namespace dycuckoo {
namespace durability {
namespace {

using Table = DynamicTable<uint32_t, uint32_t>;
using Wal = WalWriter<uint32_t, uint32_t>;
using Manager = DurabilityManager<uint32_t, uint32_t>;

// One insert record on the wire: frame header + (lsn, type) + key + value.
constexpr size_t kInsertFrameBytes =
    kWalFrameHeaderBytes + kWalRecordPrefixBytes + 2 * sizeof(uint32_t);

Status RecoverFromImages(const std::string& ckpt, const std::string& wal,
                         const DyCuckooOptions& options,
                         std::unique_ptr<Table>* out, RecoveryReport* report) {
  std::istringstream ckpt_stream(ckpt);
  std::istringstream wal_stream(wal);
  return Recover<uint32_t, uint32_t>(ckpt_stream, wal_stream, options, out,
                                     report);
}

TEST(LogFormatTest, FrameRoundTrip) {
  std::string log;
  uint32_t payload = 0xDEADBEEF;
  AppendFrame(&log, /*lsn=*/7, WalRecordType::kErase, &payload,
              sizeof(payload));
  ParsedRecord rec;
  ASSERT_EQ(ParseFrame(log.data(), log.size(), &rec), ParseResult::kOk);
  EXPECT_EQ(rec.lsn, 7u);
  EXPECT_EQ(rec.type, WalRecordType::kErase);
  ASSERT_EQ(rec.payload_len, sizeof(payload));
  uint32_t out = 0;
  std::memcpy(&out, rec.payload, sizeof(out));
  EXPECT_EQ(out, payload);
  EXPECT_EQ(rec.frame_len, log.size());
}

TEST(LogFormatTest, FrameDetectsCorruptionAndTruncation) {
  std::string log;
  uint64_t payload = 42;
  AppendFrame(&log, 1, WalRecordType::kResizeBarrier, &payload,
              sizeof(payload));
  ParsedRecord rec;
  for (size_t i = 0; i < log.size(); ++i) {
    std::string bad = log;
    bad[i] ^= 0x04;
    EXPECT_NE(ParseFrame(bad.data(), bad.size(), &rec), ParseResult::kOk)
        << "flip at byte " << i;
  }
  for (size_t cut = 0; cut < log.size(); ++cut) {
    EXPECT_EQ(ParseFrame(log.data(), cut, &rec), ParseResult::kTruncated)
        << "cut at " << cut;
  }
}

TEST(LogFormatTest, FileHeaderRoundTripAndCorruption) {
  std::string log;
  AppendWalFileHeader(&log, 4, 8, /*first_lsn=*/123);
  ASSERT_EQ(log.size(), kWalFileHeaderBytes);
  WalFileHeader header;
  ASSERT_EQ(ParseWalFileHeader(log.data(), log.size(), &header),
            ParseResult::kOk);
  EXPECT_EQ(header.version, kWalFormatVersion);
  EXPECT_EQ(header.key_width, 4u);
  EXPECT_EQ(header.value_width, 8u);
  EXPECT_EQ(header.first_lsn, 123u);
  std::string bad = log;
  bad[20] ^= 0x01;  // inside the CRC-covered fields
  EXPECT_EQ(ParseWalFileHeader(bad.data(), bad.size(), &header),
            ParseResult::kCorrupt);
  EXPECT_EQ(ParseWalFileHeader(log.data(), 10, &header),
            ParseResult::kTruncated);
}

TEST(WalWriterTest, GroupCommitIsOneFlushForManyRecords) {
  Wal wal;
  for (uint32_t i = 0; i < 8; ++i) wal.AppendInsert(i + 1, i);
  EXPECT_EQ(wal.pending_records(), 8u);
  EXPECT_EQ(wal.durable_lsn(), 0u);
  ASSERT_TRUE(wal.Flush().ok());
  EXPECT_EQ(wal.pending_records(), 0u);
  EXPECT_EQ(wal.durable_lsn(), 8u);
  EXPECT_EQ(wal.flushes(), 1u);
  EXPECT_EQ(wal.durable_bytes(),
            kWalFileHeaderBytes + 8 * kInsertFrameBytes);
}

TEST(WalWriterTest, CleanFlushFailureRetainsRecordsForRetry) {
  gpusim::FaultInjectorConfig cfg;
  cfg.io_fail_nth_flush = 0;
  gpusim::ScopedFaultInjection scoped(cfg);
  Wal wal;
  wal.AppendInsert(1, 2);
  Status st = wal.Flush();
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
  EXPECT_FALSE(wal.dead());
  EXPECT_EQ(wal.pending_records(), 1u);
  EXPECT_EQ(wal.flush_failures(), 1u);
  // The retry (flush #1, not targeted) succeeds and loses nothing.
  ASSERT_TRUE(wal.Flush().ok());
  EXPECT_EQ(wal.durable_lsn(), 1u);
}

TEST(WalWriterTest, TruncateHeadDropsCoveredRecordsAndAdvancesFirstLsn) {
  Wal wal;
  for (uint32_t i = 0; i < 10; ++i) wal.AppendInsert(i + 1, i);
  ASSERT_TRUE(wal.Flush().ok());
  ASSERT_TRUE(wal.TruncateHead(/*checkpoint_lsn=*/4).ok());
  const std::string& image = wal.durable_image();
  WalFileHeader header;
  ASSERT_EQ(ParseWalFileHeader(image.data(), image.size(), &header),
            ParseResult::kOk);
  EXPECT_EQ(header.first_lsn, 5u);
  size_t offset = kWalFileHeaderBytes;
  uint64_t expect = 5;
  while (offset < image.size()) {
    ParsedRecord rec;
    ASSERT_EQ(ParseFrame(image.data() + offset, image.size() - offset, &rec),
              ParseResult::kOk);
    EXPECT_EQ(rec.lsn, expect++);
    offset += rec.frame_len;
  }
  EXPECT_EQ(expect, 11u);
}

// Acceptance: Recover() on a log whose tail is torn mid-record succeeds
// and reports the discarded byte count.
TEST(RecoveryTest, TornTailSucceedsAndReportsDiscardedBytes) {
  Wal wal;
  for (uint32_t i = 0; i < 10; ++i) wal.AppendInsert(i + 1, 100 + i);
  ASSERT_TRUE(wal.Flush().ok());
  std::string image = wal.durable_image();
  // Tear the last record 5 bytes short of complete.
  image.resize(image.size() - 5);
  const uint64_t expected_discard = kInsertFrameBytes - 5;

  gpusim::DeviceArena arena(0);
  DyCuckooOptions options;
  options.arena = &arena;
  std::unique_ptr<Table> table;
  RecoveryReport report;
  Status st = RecoverFromImages("", image, options, &table, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(report.torn_tail_bytes, expected_discard);
  EXPECT_EQ(report.last_lsn, 9u);
  EXPECT_EQ(report.wal_records_applied, 9u);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->size(), 9u);
  uint32_t value = 0;
  EXPECT_TRUE(table->Find(9, &value));
  EXPECT_EQ(value, 108u);
  EXPECT_FALSE(table->Find(10));  // the torn record was never acknowledged
}

TEST(RecoveryTest, MidLogCorruptionIsDataLossNotSilentSkip) {
  Wal wal;
  for (uint32_t i = 0; i < 10; ++i) wal.AppendInsert(i + 1, i);
  ASSERT_TRUE(wal.Flush().ok());
  std::string image = wal.durable_image();
  // Corrupt the SECOND record: intact records follow, so acknowledged
  // bytes are provably gone and recovery must refuse to paper over it.
  image[kWalFileHeaderBytes + kInsertFrameBytes + 10] ^= 0x40;

  gpusim::DeviceArena arena(0);
  DyCuckooOptions options;
  options.arena = &arena;
  std::unique_ptr<Table> table;
  RecoveryReport report;
  Status st = RecoverFromImages("", image, options, &table, &report);
  EXPECT_TRUE(st.IsDataLoss()) << st.ToString();
  EXPECT_EQ(table, nullptr);
}

TEST(RecoveryTest, WalTruncatedPastCheckpointIsDataLoss) {
  // A WAL that starts at LSN 10 with no checkpoint backing LSNs 1..9.
  Wal wal(/*start_lsn=*/10);
  wal.AppendInsert(1, 1);
  ASSERT_TRUE(wal.Flush().ok());
  gpusim::DeviceArena arena(0);
  DyCuckooOptions options;
  options.arena = &arena;
  std::unique_ptr<Table> table;
  RecoveryReport report;
  Status st =
      RecoverFromImages("", wal.durable_image(), options, &table, &report);
  EXPECT_TRUE(st.IsDataLoss()) << st.ToString();
}

TEST(RecoveryTest, EmptyImagesRecoverToEmptyTable) {
  gpusim::DeviceArena arena(0);
  DyCuckooOptions options;
  options.arena = &arena;
  std::unique_ptr<Table> table;
  RecoveryReport report;
  ASSERT_TRUE(RecoverFromImages("", "", options, &table, &report).ok());
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->size(), 0u);
  EXPECT_EQ(report.checkpoint_lsn, 0u);
  EXPECT_EQ(report.wal_records_scanned, 0u);
}

// Drives the full manager protocol: checkpoint + mark + truncation, then
// recovery from checkpoint + WAL suffix.
TEST(ManagerTest, CheckpointThenSuffixReplayRecoversEverything) {
  gpusim::DeviceArena arena(0);
  DyCuckooOptions options;
  options.arena = &arena;
  std::unique_ptr<Table> table;
  ASSERT_TRUE(Table::Create(options, &table).ok());

  DurabilityOptions dopts;
  dopts.checkpoint_wal_bytes = 0;
  dopts.checkpoint_wal_records = 0;  // manual checkpoints only
  Manager manager(dopts);

  auto apply = [&](uint32_t key, uint32_t value) {
    ASSERT_TRUE(table->Insert(key, value).ok());
    manager.LogInsert(key, value);
  };
  for (uint32_t i = 1; i <= 50; ++i) apply(i, i * 10);
  ASSERT_TRUE(manager.Commit().ok());
  ASSERT_TRUE(manager.CheckpointNow(table.get()).ok());
  EXPECT_EQ(manager.stats().checkpoints, 1u);
  EXPECT_EQ(manager.last_checkpoint_lsn(), 50u);

  for (uint32_t i = 51; i <= 80; ++i) apply(i, i * 10);
  ASSERT_TRUE(table->Erase(7));
  manager.LogErase(7);
  ASSERT_TRUE(manager.Commit().ok());

  std::unique_ptr<Table> recovered;
  RecoveryReport report;
  Status st = RecoverFromImages(manager.checkpoints().durable_image(),
                                manager.wal().durable_image(), options,
                                &recovered, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(report.checkpoint_lsn, 50u);
  EXPECT_GT(report.wal_records_skipped, 0u);
  EXPECT_EQ(recovered->size(), 79u);  // 80 inserts - 1 erase
  uint32_t value = 0;
  EXPECT_TRUE(recovered->Find(80, &value));
  EXPECT_EQ(value, 800u);
  EXPECT_FALSE(recovered->Find(7));
}

TEST(ManagerTest, CorruptNewestCheckpointFallsBackToPrevious) {
  gpusim::DeviceArena arena(0);
  DyCuckooOptions options;
  options.arena = &arena;
  std::unique_ptr<Table> table;
  ASSERT_TRUE(Table::Create(options, &table).ok());

  DurabilityOptions dopts;
  dopts.checkpoint_wal_bytes = 0;
  dopts.checkpoint_wal_records = 0;
  Manager manager(dopts);
  auto apply = [&](uint32_t key, uint32_t value) {
    ASSERT_TRUE(table->Insert(key, value).ok());
    manager.LogInsert(key, value);
  };
  for (uint32_t i = 1; i <= 30; ++i) apply(i, i);
  ASSERT_TRUE(manager.Commit().ok());
  ASSERT_TRUE(manager.CheckpointNow(table.get()).ok());
  for (uint32_t i = 31; i <= 60; ++i) apply(i, i);
  ASSERT_TRUE(manager.Commit().ok());
  ASSERT_TRUE(manager.CheckpointNow(table.get()).ok());
  for (uint32_t i = 61; i <= 70; ++i) apply(i, i);
  ASSERT_TRUE(manager.Commit().ok());

  // Flip a bit inside the newest checkpoint entry's payload.
  std::string ckpt = manager.checkpoints().durable_image();
  auto entries = CheckpointStore::Scan(ckpt);
  ASSERT_EQ(entries.size(), 2u);
  ASSERT_TRUE(entries[1].valid);
  ckpt[entries[1].payload_offset + entries[1].payload_len / 2] ^= 0x08;

  std::unique_ptr<Table> recovered;
  RecoveryReport report;
  Status st = RecoverFromImages(ckpt, manager.wal().durable_image(), options,
                                &recovered, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(report.checkpoints_corrupt, 1u);
  EXPECT_EQ(report.checkpoint_lsn, 30u);  // fell back to the previous one
  // The WAL was only truncated to the previous checkpoint, so the longer
  // suffix replay still reconstructs everything.
  EXPECT_EQ(recovered->size(), 70u);
  for (uint32_t i = 1; i <= 70; ++i) {
    EXPECT_TRUE(recovered->Find(i)) << i;
  }
}

TEST(ManagerTest, TruncationKeepsRecordsBackToPreviousCheckpoint) {
  gpusim::DeviceArena arena(0);
  DyCuckooOptions options;
  options.arena = &arena;
  std::unique_ptr<Table> table;
  ASSERT_TRUE(Table::Create(options, &table).ok());
  DurabilityOptions dopts;
  dopts.checkpoint_wal_bytes = 0;
  dopts.checkpoint_wal_records = 0;
  Manager manager(dopts);
  for (uint32_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(table->Insert(i, i).ok());
    manager.LogInsert(i, i);
  }
  ASSERT_TRUE(manager.Commit().ok());
  ASSERT_TRUE(manager.CheckpointNow(table.get()).ok());
  EXPECT_EQ(manager.wal().truncations(), 0u);  // first checkpoint: no trim
  for (uint32_t i = 21; i <= 40; ++i) {
    ASSERT_TRUE(table->Insert(i, i).ok());
    manager.LogInsert(i, i);
  }
  ASSERT_TRUE(manager.Commit().ok());
  ASSERT_TRUE(manager.CheckpointNow(table.get()).ok());
  EXPECT_EQ(manager.wal().truncations(), 1u);
  WalFileHeader header;
  const std::string& image = manager.wal().durable_image();
  ASSERT_EQ(ParseWalFileHeader(image.data(), image.size(), &header),
            ParseResult::kOk);
  EXPECT_EQ(header.first_lsn, 21u);  // records after checkpoint #1 retained
}

TEST(CheckpointStoreTest, PruneKeepsNewestTwoEntries) {
  CheckpointStore store;
  ASSERT_TRUE(store.AppendEntry(10, std::string(100, 'a')).ok());
  ASSERT_TRUE(store.AppendEntry(20, std::string(200, 'b')).ok());
  ASSERT_TRUE(store.AppendEntry(30, std::string(300, 'c')).ok());
  ASSERT_TRUE(store.PruneToLast(2).ok());
  auto entries = CheckpointStore::Scan(store.durable_image());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].checkpoint_lsn, 20u);
  EXPECT_EQ(entries[1].checkpoint_lsn, 30u);
  EXPECT_TRUE(entries[0].valid);
  EXPECT_TRUE(entries[1].valid);
}

TEST(CheckpointStoreTest, ScanFlagsTornTailEntry) {
  CheckpointStore store;
  ASSERT_TRUE(store.AppendEntry(10, std::string(100, 'a')).ok());
  std::string image = store.durable_image();
  ASSERT_TRUE(store.AppendEntry(20, std::string(200, 'b')).ok());
  // Simulate a crash mid-write of entry #2: keep only half its bytes.
  size_t full = store.durable_image().size();
  image = store.durable_image().substr(0, image.size() + (full - image.size()) / 2);
  auto entries = CheckpointStore::Scan(image);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].valid);
  EXPECT_FALSE(entries[1].valid);
}

TEST(RecoveryTest, SameImagesProduceIdenticalReports) {
  Wal wal;
  for (uint32_t i = 0; i < 25; ++i) wal.AppendInsert(i + 1, i);
  ASSERT_TRUE(wal.Flush().ok());
  std::string image = wal.durable_image();
  image.resize(image.size() - 3);  // torn tail for a non-trivial report

  gpusim::DeviceArena arena(0);
  DyCuckooOptions options;
  options.arena = &arena;
  RecoveryReport first, second;
  std::unique_ptr<Table> t1, t2;
  ASSERT_TRUE(RecoverFromImages("", image, options, &t1, &first).ok());
  ASSERT_TRUE(RecoverFromImages("", image, options, &t2, &second).ok());
  EXPECT_EQ(first.Digest(), second.Digest());
  EXPECT_EQ(t1->size(), t2->size());
}

}  // namespace
}  // namespace durability
}  // namespace dycuckoo
