#include "workload/dataset.h"

#include <algorithm>
#include <unordered_map>

#include <gtest/gtest.h>

#include "workload/feistel.h"
#include "workload/zipf.h"

namespace dycuckoo {
namespace workload {
namespace {

TEST(FeistelTest, IsBijectiveOnSample) {
  FeistelPermutation perm(9);
  std::unordered_map<uint32_t, uint32_t> seen;
  for (uint32_t i = 0; i < 200000; ++i) {
    auto [it, inserted] = seen.emplace(perm.Permute(i), i);
    ASSERT_TRUE(inserted) << "collision between " << it->second << " and "
                          << i;
  }
}

TEST(FeistelTest, SeedChangesPermutation) {
  FeistelPermutation a(1), b(2);
  int diff = 0;
  for (uint32_t i = 0; i < 1000; ++i) {
    if (a.Permute(i) != b.Permute(i)) ++diff;
  }
  EXPECT_GT(diff, 990);
}

TEST(ZipfTest, RankZeroIsHottest) {
  ZipfSampler zipf(1000, 1.0);
  Xoroshiro128 rng(4);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) counts[zipf.Sample(&rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(ZipfTest, SamplesWithinRange) {
  ZipfSampler zipf(17, 0.8);
  Xoroshiro128 rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(&rng), 17u);
}

TEST(DatasetSpecTest, TableTwoNumbers) {
  // Full-scale statistics must match the paper's Table II exactly.
  const DatasetSpec& tw = GetDatasetSpec(DatasetId::kTwitter);
  EXPECT_EQ(tw.kv_pairs, 50876784u);
  EXPECT_EQ(tw.unique_keys, 44523684u);
  const DatasetSpec& re = GetDatasetSpec(DatasetId::kReddit);
  EXPECT_EQ(re.kv_pairs, 48104875u);
  EXPECT_EQ(re.unique_keys, 41466682u);
  const DatasetSpec& line = GetDatasetSpec(DatasetId::kLineitem);
  EXPECT_EQ(line.kv_pairs, 50000000u);
  EXPECT_EQ(line.unique_keys, 45159880u);
  const DatasetSpec& com = GetDatasetSpec(DatasetId::kCompany);
  EXPECT_EQ(com.kv_pairs, 10000000u);
  EXPECT_EQ(com.unique_keys, 4583941u);
  const DatasetSpec& rnd = GetDatasetSpec(DatasetId::kRandom);
  EXPECT_EQ(rnd.kv_pairs, 100000000u);
  EXPECT_EQ(rnd.unique_keys, 100000000u);
}

TEST(DatasetSpecTest, AllSpecsEnumerated) {
  int count = 0;
  const DatasetSpec* specs = AllDatasetSpecs(&count);
  EXPECT_EQ(count, 5);
  EXPECT_STREQ(specs[0].name, "TW");
  EXPECT_STREQ(specs[4].name, "RAND");
}

TEST(ParseDatasetTest, AcceptsAliases) {
  DatasetId id;
  EXPECT_TRUE(ParseDatasetId("tw", &id).ok());
  EXPECT_EQ(id, DatasetId::kTwitter);
  EXPECT_TRUE(ParseDatasetId("LINE", &id).ok());
  EXPECT_EQ(id, DatasetId::kLineitem);
  EXPECT_TRUE(ParseDatasetId("ali", &id).ok());
  EXPECT_EQ(id, DatasetId::kCompany);
  EXPECT_TRUE(ParseDatasetId("bogus", &id).IsInvalidArgument());
}

TEST(MakeDatasetTest, RejectsBadScale) {
  Dataset d;
  EXPECT_TRUE(MakeDataset(DatasetId::kRandom, 0.0, 1, &d).IsInvalidArgument());
  EXPECT_TRUE(MakeDataset(DatasetId::kRandom, 1.5, 1, &d).IsInvalidArgument());
}

struct ScaledCase {
  DatasetId id;
  double scale;
};

class MakeDatasetTest : public ::testing::TestWithParam<ScaledCase> {};

TEST_P(MakeDatasetTest, StatisticsMatchSpecAtScale) {
  const auto& param = GetParam();
  const DatasetSpec& spec = GetDatasetSpec(param.id);
  Dataset d;
  ASSERT_TRUE(MakeDataset(param.id, param.scale, 42, &d).ok());

  EXPECT_EQ(d.name, spec.name);
  // Totals within rounding of the scaled spec.
  uint64_t want_unique =
      static_cast<uint64_t>(spec.unique_keys * param.scale);
  uint64_t want_total = static_cast<uint64_t>(spec.kv_pairs * param.scale);
  EXPECT_NEAR(static_cast<double>(d.unique_keys), want_unique,
              want_unique * 0.01 + 2);
  EXPECT_NEAR(static_cast<double>(d.size()), want_total,
              want_total * 0.01 + 2);
  EXPECT_EQ(d.keys.size(), d.values.size());

  // Recount uniqueness and the duplication cap from the stream itself.
  std::unordered_map<uint32_t, int> counts;
  for (uint32_t k : d.keys) counts[k]++;
  EXPECT_EQ(counts.size(), d.unique_keys);
  int max_dup = 0;
  for (const auto& [k, c] : counts) max_dup = std::max(max_dup, c);
  EXPECT_LE(max_dup, spec.max_duplicates);
  EXPECT_EQ(max_dup, d.max_duplicates);
  if (spec.kv_pairs > spec.unique_keys) {
    EXPECT_GT(max_dup, 1);
  } else {
    EXPECT_EQ(max_dup, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, MakeDatasetTest,
    ::testing::Values(ScaledCase{DatasetId::kTwitter, 0.002},
                      ScaledCase{DatasetId::kReddit, 0.002},
                      ScaledCase{DatasetId::kLineitem, 0.002},
                      ScaledCase{DatasetId::kCompany, 0.01},
                      ScaledCase{DatasetId::kRandom, 0.001}));

TEST(MakeDatasetTest, DeterministicForSeed) {
  Dataset a, b;
  ASSERT_TRUE(MakeDataset(DatasetId::kTwitter, 0.001, 7, &a).ok());
  ASSERT_TRUE(MakeDataset(DatasetId::kTwitter, 0.001, 7, &b).ok());
  EXPECT_EQ(a.keys, b.keys);
  EXPECT_EQ(a.values, b.values);
}

TEST(MakeDatasetTest, SeedChangesStream) {
  Dataset a, b;
  ASSERT_TRUE(MakeDataset(DatasetId::kTwitter, 0.001, 7, &a).ok());
  ASSERT_TRUE(MakeDataset(DatasetId::kTwitter, 0.001, 8, &b).ok());
  EXPECT_NE(a.keys, b.keys);
}

TEST(MakeDatasetTest, CompanyDatasetIsSkewed) {
  Dataset d;
  ASSERT_TRUE(MakeDataset(DatasetId::kCompany, 0.01, 3, &d).ok());
  std::unordered_map<uint32_t, int> counts;
  for (uint32_t k : d.keys) counts[k]++;
  // COM averages > 2 occurrences per key with a heavy tail.
  double avg = static_cast<double>(d.size()) / counts.size();
  EXPECT_GT(avg, 1.8);
  int hot = 0;
  for (const auto& [k, c] : counts) {
    if (c >= 8) ++hot;
  }
  EXPECT_GT(hot, 0) << "expected some celebrity keys";
}

TEST(MakeDatasetTest, NoReservedSentinelsInStream) {
  Dataset d;
  ASSERT_TRUE(MakeDataset(DatasetId::kRandom, 0.001, 5, &d).ok());
  for (uint32_t k : d.keys) {
    ASSERT_LT(k, 0xfffffffeu);
  }
}

}  // namespace
}  // namespace workload
}  // namespace dycuckoo
