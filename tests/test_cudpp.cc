#include "baselines/cudpp_cuckoo.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace dycuckoo {
namespace {

using testing::SequentialValues;
using testing::UniqueKeys;

std::unique_ptr<CudppCuckooTable> MakeTable(CudppOptions o = {}) {
  std::unique_ptr<CudppCuckooTable> t;
  Status st = CudppCuckooTable::Create(o, &t);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return t;
}

TEST(CudppTest, OptionsValidation) {
  CudppOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.capacity_slots = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = CudppOptions{};
  o.max_walk = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(CudppTest, AutoFunctionCountFollowsLoad) {
  // The paper: CUDPP "automatically chooses the number of hash functions
  // based on the data to be inserted (up to 5)".
  EXPECT_EQ(CudppCuckooTable::AutoFunctionCount(0.3), 2);
  EXPECT_EQ(CudppCuckooTable::AutoFunctionCount(0.5), 2);
  EXPECT_EQ(CudppCuckooTable::AutoFunctionCount(0.6), 3);
  EXPECT_EQ(CudppCuckooTable::AutoFunctionCount(0.8), 4);
  EXPECT_EQ(CudppCuckooTable::AutoFunctionCount(0.85), 4);
  EXPECT_EQ(CudppCuckooTable::AutoFunctionCount(0.9), 5);
}

TEST(CudppTest, CreatePicksFunctionsFromExpectedItems) {
  CudppOptions o;
  o.capacity_slots = 1 << 16;
  o.expected_items = 1 << 15;  // load 0.5
  auto t = MakeTable(o);
  EXPECT_EQ(t->num_hash_functions(), 2);

  o.expected_items = (1 << 16) * 0.9;  // load 0.9
  auto t2 = MakeTable(o);
  EXPECT_EQ(t2->num_hash_functions(), 5);
}

TEST(CudppTest, InsertFindRoundTrip) {
  CudppOptions o;
  o.capacity_slots = 1 << 17;
  o.expected_items = 80000;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(80000);
  auto values = SequentialValues(keys.size());
  ASSERT_TRUE(t->BulkInsert(keys, values).ok());
  EXPECT_EQ(t->size(), keys.size());

  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]) << i;
    ASSERT_EQ(out[i], values[i]);
  }
}

TEST(CudppTest, MissesReportNotFound) {
  CudppOptions o;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(1000, 1);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  auto absent = UniqueKeys(1000, 999);
  std::vector<uint32_t> sorted(keys);
  std::sort(sorted.begin(), sorted.end());
  std::vector<uint32_t> probes;
  for (auto k : absent) {
    if (!std::binary_search(sorted.begin(), sorted.end(), k)) {
      probes.push_back(k);
    }
  }
  std::vector<uint8_t> found(probes.size());
  t->BulkFind(probes, nullptr, found.data());
  for (auto f : found) EXPECT_EQ(f, 0);
}

TEST(CudppTest, DeleteUnsupported) {
  auto t = MakeTable();
  std::vector<uint32_t> keys = {1, 2, 3};
  uint64_t erased = 9;
  Status st = t->BulkErase(keys, &erased);
  EXPECT_TRUE(st.IsNotSupported());
  EXPECT_EQ(erased, 0u);
  EXPECT_FALSE(t->supports_erase());
}

TEST(CudppTest, HighLoadForcesRebuildsButSucceeds) {
  CudppOptions o;
  o.capacity_slots = 1 << 14;       // 16384 slots
  o.expected_items = 14000;         // ~85% load, d = 4 per-slot cuckoo
  o.seed = 77;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(14000, 7);
  Status st = t->BulkInsert(keys, SequentialValues(keys.size()));
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(t->size(), keys.size());
  // The walk bound will have tripped at this load at least occasionally;
  // rebuilds are CUDPP's recovery mechanism.  (Not asserting > 0: a lucky
  // seed can fit without one.)
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, nullptr, found.data());
  for (auto f : found) ASSERT_TRUE(f);
}

TEST(CudppTest, RebuildPreservesContents) {
  CudppOptions o;
  o.capacity_slots = 1 << 14;
  o.expected_items = 13000;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(13000, 11);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  uint64_t rebuilds_before = t->rebuild_count();
  // Force a rebuild via the public path: inserting more keys at high load.
  auto more = UniqueKeys(800, 12);
  Status st = t->BulkInsert(more, SequentialValues(more.size(), 50000));
  if (st.ok()) {
    std::vector<uint8_t> found(keys.size());
    t->BulkFind(keys, nullptr, found.data());
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(found[i]) << "key lost after load increase, rebuilds="
                            << t->rebuild_count() - rebuilds_before;
    }
  } else {
    EXPECT_TRUE(st.IsInsertionFailure());
  }
}

TEST(CudppTest, FailedRebuildStormNeverDropsResidents) {
  // Overfill until the rebuild storm gives up.  The terminal pending set
  // mixes the failing batch's keys with residents drained out of the
  // table; only the former may be reported failed — residents must stay
  // findable (parked host-side if they lost their slot).
  CudppOptions o;
  o.capacity_slots = 1 << 12;   // 4096 slots
  o.expected_items = 3600;      // high target load => d=5
  o.max_rebuilds = 3;
  auto t = MakeTable(o);
  auto resident_keys = UniqueKeys(3000, 21);
  auto resident_values = SequentialValues(resident_keys.size());
  ASSERT_TRUE(t->BulkInsert(resident_keys, resident_values).ok());

  auto flood = UniqueKeys(2000, 22);  // cannot fit: 5000 > 4096
  uint64_t num_failed = 0;
  Status st = t->BulkInsert(flood, SequentialValues(flood.size(), 90000),
                            &num_failed);
  ASSERT_TRUE(st.IsInsertionFailure()) << st.ToString();
  EXPECT_GT(num_failed, 0u);

  std::vector<uint32_t> out(resident_keys.size());
  std::vector<uint8_t> found(resident_keys.size());
  t->BulkFind(resident_keys, out.data(), found.data());
  for (size_t i = 0; i < resident_keys.size(); ++i) {
    ASSERT_TRUE(found[i]) << "resident " << i << " lost in rebuild storm";
    ASSERT_EQ(out[i], resident_values[i]);
  }
}

TEST(CudppTest, ReservedKeyRejected) {
  auto t = MakeTable();
  std::vector<uint32_t> keys = {0xffffffffu};
  std::vector<uint32_t> values = {1};
  EXPECT_TRUE(t->BulkInsert(keys, values).IsInvalidArgument());
}

TEST(CudppTest, ArbitraryNonPowerOfTwoCapacity) {
  CudppOptions o;
  o.capacity_slots = 100000;  // not a power of two
  o.expected_items = 85000;
  auto t = MakeTable(o);
  EXPECT_EQ(t->capacity_slots(), 100000u);
  auto keys = UniqueKeys(60000, 19);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, nullptr, found.data());
  for (auto f : found) ASSERT_TRUE(f);
  EXPECT_DOUBLE_EQ(t->filled_factor(), 60000.0 / 100000.0);
}

TEST(CudppTest, DuplicateInsertKeepsFindWorking) {
  // CUDPP's blind exchanges may store a duplicate key; FIND must still
  // return one of the inserted values (documented baseline semantics).
  auto t = MakeTable();
  std::vector<uint32_t> keys = {42, 42, 42};
  std::vector<uint32_t> values = {1, 2, 3};
  ASSERT_TRUE(t->BulkInsert(keys, values).ok());
  std::vector<uint32_t> probe = {42};
  std::vector<uint32_t> out(1);
  std::vector<uint8_t> found(1);
  t->BulkFind(probe, out.data(), found.data());
  ASSERT_TRUE(found[0]);
  EXPECT_TRUE(out[0] == 1 || out[0] == 2 || out[0] == 3);
}

TEST(CudppTest, MemoryIsOneSlotArray) {
  CudppOptions o;
  o.capacity_slots = 1 << 12;
  auto t = MakeTable(o);
  EXPECT_EQ(t->memory_bytes(), (1u << 12) * sizeof(uint64_t));
  EXPECT_EQ(t->name(), "CUDPP");
}

}  // namespace
}  // namespace dycuckoo
