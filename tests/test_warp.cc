#include "gpusim/warp.h"

#include <gtest/gtest.h>

namespace dycuckoo {
namespace gpusim {
namespace {

TEST(WarpTest, FirstLaneEmptyMask) { EXPECT_EQ(FirstLane(0), -1); }

TEST(WarpTest, FirstLaneSingleBits) {
  for (int l = 0; l < kWarpSize; ++l) {
    EXPECT_EQ(FirstLane(LaneMask{1} << l), l);
  }
}

TEST(WarpTest, FirstLanePicksLowest) {
  EXPECT_EQ(FirstLane(0b1010100), 2);
  EXPECT_EQ(FirstLane(kFullMask), 0);
}

TEST(WarpTest, LaneCount) {
  EXPECT_EQ(LaneCount(0), 0);
  EXPECT_EQ(LaneCount(kFullMask), 32);
  EXPECT_EQ(LaneCount(0b1011), 3);
}

TEST(WarpTest, BallotMatchesPredicate) {
  LaneMask m = Ballot([](int lane) { return lane % 3 == 0; });
  for (int l = 0; l < kWarpSize; ++l) {
    EXPECT_EQ((m >> l) & 1u, (l % 3 == 0) ? 1u : 0u);
  }
}

TEST(WarpTest, BallotAllAndNone) {
  EXPECT_EQ(Ballot([](int) { return true; }), kFullMask);
  EXPECT_EQ(Ballot([](int) { return false; }), 0u);
}

TEST(WarpTest, BallotActiveRestrictsLanes) {
  LaneMask active = 0b1111;
  LaneMask m = BallotActive(active, [](int lane) { return lane >= 2; });
  EXPECT_EQ(m, 0b1100u);
}

TEST(WarpTest, NextLeaderEmpty) { EXPECT_EQ(NextLeader(0, 5), -1); }

TEST(WarpTest, NextLeaderRotates) {
  LaneMask active = (1u << 3) | (1u << 10) | (1u << 20);
  EXPECT_EQ(NextLeader(active, -1), 3);
  EXPECT_EQ(NextLeader(active, 3), 10);
  EXPECT_EQ(NextLeader(active, 10), 20);
  EXPECT_EQ(NextLeader(active, 20), 3);  // wraps
}

TEST(WarpTest, NextLeaderSingleLaneReturnsIt) {
  EXPECT_EQ(NextLeader(1u << 7, 7), 7);
  EXPECT_EQ(NextLeader(1u << 7, 3), 7);
}

class NextLeaderPropertyTest : public ::testing::TestWithParam<LaneMask> {};

TEST_P(NextLeaderPropertyTest, AlwaysReturnsActiveLaneAndCyclesAll) {
  LaneMask active = GetParam();
  int leader = -1;
  LaneMask visited = 0;
  for (int step = 0; step < 2 * kWarpSize; ++step) {
    leader = NextLeader(active, leader);
    ASSERT_GE(leader, 0);
    ASSERT_TRUE((active >> leader) & 1u);
    visited |= LaneMask{1} << leader;
  }
  EXPECT_EQ(visited, active);  // fairness: every active lane gets elected
}

INSTANTIATE_TEST_SUITE_P(Masks, NextLeaderPropertyTest,
                         ::testing::Values(LaneMask{1}, LaneMask{0x80000000u},
                                           LaneMask{0b1010101},
                                           LaneMask{0xffffffffu},
                                           LaneMask{0xf0f0f0f0u}));

}  // namespace
}  // namespace gpusim
}  // namespace dycuckoo
