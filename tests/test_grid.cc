#include "gpusim/grid.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dycuckoo {
namespace gpusim {
namespace {

TEST(GridTest, WarpsForItems) {
  EXPECT_EQ(WarpsForItems(0), 0u);
  EXPECT_EQ(WarpsForItems(1), 1u);
  EXPECT_EQ(WarpsForItems(32), 1u);
  EXPECT_EQ(WarpsForItems(33), 2u);
  EXPECT_EQ(WarpsForItems(64), 2u);
  EXPECT_EQ(WarpsForItems(1000), 32u);
}

TEST(GridTest, EveryWarpRunsExactlyOnce) {
  Grid grid(4);
  constexpr uint64_t kWarps = 10007;  // prime, exercises chunk remainders
  std::vector<std::atomic<int>> hits(kWarps);
  grid.LaunchWarps(kWarps, [&](uint64_t w) { hits[w].fetch_add(1); });
  for (uint64_t w = 0; w < kWarps; ++w) {
    EXPECT_EQ(hits[w].load(), 1) << "warp " << w;
  }
}

TEST(GridTest, ZeroWarpsReturnsImmediately) {
  Grid grid(2);
  bool ran = false;
  grid.LaunchWarps(0, [&](uint64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(GridTest, SingleWarp) {
  Grid grid(4);
  std::atomic<uint64_t> sum{0};
  grid.LaunchWarps(1, [&](uint64_t w) { sum.fetch_add(w + 123); });
  EXPECT_EQ(sum.load(), 123u);
}

TEST(GridTest, SumOfWarpIds) {
  Grid grid(4);
  std::atomic<uint64_t> sum{0};
  constexpr uint64_t kWarps = 5000;
  grid.LaunchWarps(kWarps, [&](uint64_t w) { sum.fetch_add(w); });
  EXPECT_EQ(sum.load(), kWarps * (kWarps - 1) / 2);
}

TEST(GridTest, SequentialLaunchesReuseWorkers) {
  Grid grid(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    grid.LaunchWarps(97, [&](uint64_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 97);
  }
}

TEST(GridTest, WorkersActuallyParallel) {
  // With more warps than workers, at least two distinct thread ids must
  // participate (or one on a truly single-threaded pool of size 1).
  Grid grid(4);
  std::atomic<uint64_t> distinct_threads{0};
  std::atomic<uint64_t> mask{0};
  grid.LaunchWarps(10000, [&](uint64_t) {
    static thread_local bool counted = false;
    if (!counted) {
      counted = true;
      distinct_threads.fetch_add(1);
    }
    mask.fetch_add(0);
  });
  EXPECT_GE(distinct_threads.load(), 1u);
  EXPECT_EQ(grid.num_threads(), 4u);
}

TEST(GridTest, DefaultThreadCountIsPositive) {
  Grid grid;
  EXPECT_GE(grid.num_threads(), 1u);
}

TEST(GridTest, GlobalGridSingleton) {
  EXPECT_EQ(Grid::Global(), Grid::Global());
}

TEST(GridTest, ConcurrentHostThreadsShareOneGrid) {
  // Several host threads launching on the same grid must queue like
  // kernels on one stream, not crash or interleave work.
  Grid grid(4);
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> hosts;
  for (int h = 0; h < 4; ++h) {
    hosts.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        grid.LaunchWarps(50, [&](uint64_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : hosts) t.join();
  EXPECT_EQ(total.load(), 4u * 100 * 50);
}

TEST(GridTest, TinyLaunchStorm) {
  // Regression for a use-after-free: the launcher used to return (and
  // destroy the stack Launch) while a straggler worker could still touch
  // launch->next.  Thousands of tiny launches maximize that window.
  Grid grid(8);
  std::atomic<uint64_t> total{0};
  for (int i = 0; i < 3000; ++i) {
    uint64_t warps = 1 + (i % 5);
    grid.LaunchWarps(warps, [&](uint64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // 600 cycles of warp counts 1..5 = 600 * 15.
  EXPECT_EQ(total.load(), 9000u);
}

TEST(GridTest, LargeLaunchStress) {
  Grid grid(6);
  std::atomic<uint64_t> count{0};
  grid.LaunchWarps(200000, [&](uint64_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 200000u);
}

}  // namespace
}  // namespace gpusim
}  // namespace dycuckoo
