// Device-memory exhaustion paths: tables must fail with OutOfMemory (not
// crash or corrupt) when the arena runs dry, and leave prior contents
// intact.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/cudpp_cuckoo.h"
#include "baselines/megakv.h"
#include "dycuckoo/dycuckoo.h"
#include "gpusim/device_arena.h"
#include "test_util.h"

namespace dycuckoo {
namespace {

using testing::SequentialValues;
using testing::UniqueKeys;

TEST(OomTest, CreateFailsCleanlyInTinyArena) {
  gpusim::DeviceArena arena(1024);  // far too small
  DyCuckooOptions o;
  o.initial_capacity = 1 << 20;
  o.arena = &arena;
  std::unique_ptr<DyCuckooMap> t;
  Status st = DyCuckooMap::Create(o, &t);
  EXPECT_TRUE(st.IsOutOfMemory()) << st.ToString();
  EXPECT_EQ(arena.used_bytes(), 0u) << "partial construction must roll back";
}

TEST(OomTest, GrowthStopsWithOutOfMemoryAndTableStaysConsistent) {
  gpusim::DeviceArena arena(1 << 20);  // 1 MiB: a few growth steps only
  DyCuckooOptions o;
  o.initial_capacity = 1024;
  o.arena = &arena;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());

  auto keys = UniqueKeys(400000, 3);
  auto values = SequentialValues(keys.size());
  Status st;
  size_t inserted_until = 0;
  for (size_t off = 0; off < keys.size(); off += 10000) {
    size_t len = std::min<size_t>(10000, keys.size() - off);
    st = t->BulkInsert(std::span<const uint32_t>(keys.data() + off, len),
                       std::span<const uint32_t>(values.data() + off, len));
    if (!st.ok()) break;
    inserted_until = off + len;
  }
  EXPECT_TRUE(st.IsOutOfMemory() || st.IsInsertionFailure())
      << st.ToString();
  ASSERT_GT(inserted_until, 0u);
  EXPECT_TRUE(t->Validate().ok()) << "OOM must not corrupt the table";

  // Everything inserted before the failure is still there.
  std::vector<uint32_t> probe(keys.begin(), keys.begin() + inserted_until);
  std::vector<uint32_t> out(probe.size());
  std::vector<uint8_t> found(probe.size());
  t->BulkFind(probe, out.data(), found.data());
  for (size_t i = 0; i < probe.size(); ++i) {
    ASSERT_TRUE(found[i]) << i;
    ASSERT_EQ(out[i], values[i]);
  }

  // The failing batch ran degraded (at current capacity) rather than being
  // aborted outright; the table records that it wanted more memory.
  EXPECT_GT(t->stats().Capture().degraded_batches, 0u);

  // Deleting makes room again: the table recovers.  Erase every attempted
  // key — the degraded batch legitimately stored part of itself.
  size_t attempted_until = std::min(keys.size(), inserted_until + 10000);
  std::vector<uint32_t> attempted(keys.begin(), keys.begin() + attempted_until);
  ASSERT_TRUE(t->BulkErase(attempted).ok());
  EXPECT_EQ(t->size(), 0u);
  ASSERT_TRUE(t->Insert(1, 2).ok());
}

TEST(OomTest, MegaKvRehashOomRestoresOldTable) {
  gpusim::DeviceArena arena(600 * 1024);
  MegaKvOptions o;
  o.initial_capacity = 1024;
  o.arena = &arena;
  std::unique_ptr<MegaKvTable> t;
  ASSERT_TRUE(MegaKvTable::Create(o, &t).ok());
  auto keys = UniqueKeys(200000, 5);
  Status st;
  size_t inserted_until = 0;
  for (size_t off = 0; off < keys.size(); off += 5000) {
    size_t len = std::min<size_t>(5000, keys.size() - off);
    std::vector<uint32_t> ck(keys.begin() + off, keys.begin() + off + len);
    st = t->BulkInsert(ck, SequentialValues(len));
    if (!st.ok()) break;
    inserted_until = off + len;
  }
  EXPECT_FALSE(st.ok());
  ASSERT_GT(inserted_until, 0u);
  // The failed rehash restored the old table exactly (storage, seeds and
  // size counter) and parked any displaced residents, so every key from a
  // completed batch is still answerable — not just "most".
  EXPECT_GE(t->rehash_rollbacks(), 1u);
  std::vector<uint32_t> probe(keys.begin(),
                              keys.begin() + inserted_until);
  std::vector<uint8_t> found(probe.size());
  t->BulkFind(probe, nullptr, found.data());
  uint64_t hits = 0;
  for (auto f : found) hits += f;
  EXPECT_EQ(hits, probe.size());
}

TEST(OomTest, CudppCreateFailsCleanly) {
  gpusim::DeviceArena arena(1024);
  CudppOptions o;
  o.capacity_slots = 1 << 20;
  o.arena = &arena;
  std::unique_ptr<CudppCuckooTable> t;
  EXPECT_TRUE(CudppCuckooTable::Create(o, &t).IsOutOfMemory());
}

}  // namespace
}  // namespace dycuckoo
