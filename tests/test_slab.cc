#include "baselines/slab_hash.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace dycuckoo {
namespace {

using testing::ReferenceModel;
using testing::SequentialValues;
using testing::UniqueKeys;

std::unique_ptr<SlabHashTable> MakeTable(SlabHashOptions o = {}) {
  std::unique_ptr<SlabHashTable> t;
  Status st = SlabHashTable::Create(o, &t);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return t;
}

TEST(SlabTest, OptionsValidation) {
  SlabHashOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.initial_capacity = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = SlabHashOptions{};
  o.pool_reserve_factor = 0.5;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(SlabTest, InsertFindRoundTrip) {
  auto t = MakeTable();
  auto keys = UniqueKeys(50000);
  auto values = SequentialValues(keys.size());
  ASSERT_TRUE(t->BulkInsert(keys, values).ok());
  EXPECT_EQ(t->size(), keys.size());
  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]);
    ASSERT_EQ(out[i], values[i]);
  }
}

TEST(SlabTest, UpsertOverwritesValue) {
  auto t = MakeTable();
  std::vector<uint32_t> k = {77};
  ASSERT_TRUE(t->BulkInsert(k, std::vector<uint32_t>{1}).ok());
  ASSERT_TRUE(t->BulkInsert(k, std::vector<uint32_t>{2}).ok());
  std::vector<uint32_t> out(1);
  std::vector<uint8_t> found(1);
  t->BulkFind(k, out.data(), found.data());
  EXPECT_TRUE(found[0]);
  EXPECT_EQ(out[0], 2u);
  EXPECT_EQ(t->size(), 1u);
}

TEST(SlabTest, DeleteIsSymbolic) {
  auto t = MakeTable();
  auto keys = UniqueKeys(30000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  uint64_t memory_full = t->memory_bytes();

  uint64_t erased = 0;
  ASSERT_TRUE(t->BulkErase(keys, &erased).ok());
  EXPECT_EQ(erased, keys.size());
  EXPECT_EQ(t->size(), 0u);
  EXPECT_EQ(t->tombstones(), keys.size());
  // The defining trait: deletion frees no memory at all.
  EXPECT_EQ(t->memory_bytes(), memory_full);
  EXPECT_LT(t->filled_factor(), 0.01);

  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, nullptr, found.data());
  for (auto f : found) EXPECT_EQ(f, 0);
}

TEST(SlabTest, InsertsRecycleTombstones) {
  auto t = MakeTable();
  auto keys = UniqueKeys(20000, 1);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  ASSERT_TRUE(t->BulkErase(keys).ok());
  uint64_t slabs_after_delete = t->allocated_slabs();
  uint64_t tombs = t->tombstones();
  ASSERT_EQ(tombs, keys.size());

  // Fresh keys reuse the tombstoned slots instead of allocating new slabs —
  // this is why SlabHash *speeds up* under delete-heavy workloads (Fig 10).
  auto fresh = UniqueKeys(15000, 2);
  ASSERT_TRUE(t->BulkInsert(fresh, SequentialValues(fresh.size())).ok());
  EXPECT_LT(t->tombstones(), tombs);
  EXPECT_EQ(t->allocated_slabs(), slabs_after_delete);
}

TEST(SlabTest, PoolGrowsButNeverShrinks) {
  SlabHashOptions o;
  o.initial_capacity = 4096;
  auto t = MakeTable(o);
  uint64_t reserve0 = t->reserved_slabs();
  auto keys = UniqueKeys(200000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  uint64_t reserve1 = t->reserved_slabs();
  EXPECT_GT(reserve1, reserve0);
  ASSERT_TRUE(t->BulkErase(keys).ok());
  EXPECT_EQ(t->reserved_slabs(), reserve1) << "pool never returns memory";
}

TEST(SlabTest, ChainsGrowWithSustainedInsertion) {
  SlabHashOptions o;
  o.initial_capacity = 4096;
  auto t = MakeTable(o);
  auto small = UniqueKeys(4000, 5);
  ASSERT_TRUE(t->BulkInsert(small, SequentialValues(small.size())).ok());
  double chain_small = t->AverageChainLength();
  auto big = UniqueKeys(150000, 6);
  ASSERT_TRUE(t->BulkInsert(big, SequentialValues(big.size())).ok());
  double chain_big = t->AverageChainLength();
  EXPECT_GT(chain_big, 2.0 * chain_small)
      << "fixed bucket range must grow chains (paper Figure 12 argument)";
  EXPECT_GT(t->MaxChainLength(), 1u);
}

TEST(SlabTest, ReservedKeysRejected) {
  auto t = MakeTable();
  std::vector<uint32_t> keys = {0xffffffffu, 0xfffffffeu};
  std::vector<uint32_t> values = {1, 2};
  EXPECT_TRUE(t->BulkInsert(keys, values).IsInvalidArgument());
  EXPECT_EQ(t->size(), 0u);
}

TEST(SlabTest, ModelBasedChurn) {
  auto t = MakeTable();
  ReferenceModel model;
  SplitMix64 rng(66);
  auto universe = UniqueKeys(4000, 8);
  for (int round = 0; round < 15; ++round) {
    std::vector<uint32_t> ik, iv, ek;
    std::vector<uint8_t> used(universe.size(), 0);
    for (int i = 0; i < 500; ++i) {
      uint64_t p = rng.NextBounded(universe.size());
      if (used[p]) continue;
      used[p] = 1;
      uint32_t v = static_cast<uint32_t>(rng.Next());
      ik.push_back(universe[p]);
      iv.push_back(v);
      model.Insert(universe[p], v);
    }
    ASSERT_TRUE(t->BulkInsert(ik, iv).ok());
    std::fill(used.begin(), used.end(), 0);
    for (int i = 0; i < 250; ++i) {
      uint64_t p = rng.NextBounded(universe.size());
      if (used[p]) continue;
      used[p] = 1;
      ek.push_back(universe[p]);
      model.Erase(universe[p]);
    }
    ASSERT_TRUE(t->BulkErase(ek).ok());
    ASSERT_EQ(t->size(), model.size()) << "round " << round;
  }
  std::vector<uint32_t> out(universe.size());
  std::vector<uint8_t> found(universe.size());
  t->BulkFind(universe, out.data(), found.data());
  for (size_t i = 0; i < universe.size(); ++i) {
    uint32_t mv = 0;
    bool hit = model.Find(universe[i], &mv);
    ASSERT_EQ(found[i] != 0, hit) << universe[i];
    if (hit) ASSERT_EQ(out[i], mv);
  }
}

TEST(SlabTest, FindMissOnLongChainScansWholeChain) {
  SlabHashOptions o;
  o.initial_capacity = 64;  // few buckets, long chains
  auto t = MakeTable(o);
  auto keys = UniqueKeys(5000, 9);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  EXPECT_GT(t->AverageChainLength(), 3.0);
  // Misses still resolve (return not-found) on every bucket.
  auto misses = UniqueKeys(500, 10);
  std::vector<uint32_t> sorted(keys);
  std::sort(sorted.begin(), sorted.end());
  std::vector<uint8_t> found(misses.size(), 1);
  std::vector<uint32_t> probes;
  for (auto k : misses) {
    if (!std::binary_search(sorted.begin(), sorted.end(), k)) {
      probes.push_back(k);
    }
  }
  found.resize(probes.size());
  t->BulkFind(probes, nullptr, found.data());
  for (auto f : found) EXPECT_EQ(f, 0);
}

TEST(SlabTest, ConcurrentPoolGrowthStress) {
  // Many warps extending chains at once exercises the superblock-growth
  // path and the leaked-slab CAS-loser path.
  SlabHashOptions o;
  o.initial_capacity = 256;
  o.pool_reserve_factor = 1.0;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(120000, 21);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  EXPECT_EQ(t->size(), keys.size());
  EXPECT_GT(t->reserved_slabs(), 256u / 15);
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, nullptr, found.data());
  for (auto f : found) ASSERT_TRUE(f);
}

TEST(SlabTest, NameAndTraits) {
  auto t = MakeTable();
  EXPECT_EQ(t->name(), "SlabHash");
  EXPECT_TRUE(t->supports_erase());
  EXPECT_GT(t->memory_bytes(), 0u);
  EXPECT_GT(t->num_buckets(), 0u);
}

}  // namespace
}  // namespace dycuckoo
