// Tests for the two-layer scheme's headline guarantee (paper Section V-A):
// FIND and DELETE touch at most two buckets regardless of the number of
// subtables, and the layer-1 assignment is stable across resizes.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "dycuckoo/dycuckoo.h"
#include "gpusim/grid.h"
#include "gpusim/sim_counters.h"
#include "test_util.h"

namespace dycuckoo {
namespace {

using testing::SequentialValues;
using testing::UniqueKeys;

class TwoLayerProbeTest : public ::testing::TestWithParam<int> {};

TEST_P(TwoLayerProbeTest, FindReadsAtMostTwoBucketsPerLookup) {
  const int d = GetParam();
  DyCuckooOptions o;
  o.num_subtables = d;
  // Single-threaded grid so global counters attribute cleanly.
  gpusim::Grid grid(1);
  o.grid = &grid;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());

  auto keys = UniqueKeys(20000, d);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());

  auto before = gpusim::SimCounters::Get().Capture();
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, nullptr, found.data());
  auto delta = gpusim::SimCounters::Get().Capture() - before;

  EXPECT_LE(delta.bucket_reads, 2 * keys.size())
      << "two-layer bound violated at d=" << d;
  EXPECT_GE(delta.bucket_reads, keys.size());
}

TEST_P(TwoLayerProbeTest, MissedFindAlsoReadsExactlyTwoBuckets) {
  const int d = GetParam();
  DyCuckooOptions o;
  o.num_subtables = d;
  gpusim::Grid grid(1);
  o.grid = &grid;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  ASSERT_TRUE(t->Insert(1, 1).ok());

  auto misses = UniqueKeys(5000, 1234);
  std::erase(misses, 1u);  // keep the probe set disjoint from the contents
  auto before = gpusim::SimCounters::Get().Capture();
  std::vector<uint8_t> found(misses.size());
  t->BulkFind(misses, nullptr, found.data());
  auto delta = gpusim::SimCounters::Get().Capture() - before;
  // A miss must scan both candidate buckets; never more (this is where a
  // plain d-table cuckoo would pay d reads).
  EXPECT_EQ(delta.bucket_reads, 2 * misses.size());
}

TEST_P(TwoLayerProbeTest, EraseReadsAtMostTwoBucketsPerKey) {
  const int d = GetParam();
  DyCuckooOptions o;
  o.num_subtables = d;
  o.auto_resize = false;  // keep the counters free of resize traffic
  gpusim::Grid grid(1);
  o.grid = &grid;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  auto keys = UniqueKeys(10000, d + 100);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());

  auto before = gpusim::SimCounters::Get().Capture();
  uint64_t erased = 0;
  ASSERT_TRUE(t->BulkErase(keys, &erased).ok());
  auto delta = gpusim::SimCounters::Get().Capture() - before;
  EXPECT_EQ(erased, keys.size());
  EXPECT_EQ(delta.bucket_reads, 2 * keys.size());
}

INSTANTIATE_TEST_SUITE_P(SubtableCounts, TwoLayerProbeTest,
                         ::testing::Values(2, 3, 4, 6, 8));

TEST(TwoLayerTest, KeysRemainFindableAcrossResizeStorms) {
  // Layer-1 pair assignment must be stable while subtable sizes churn.
  DyCuckooOptions o;
  o.auto_resize = false;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  auto keys = UniqueKeys(15000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());

  SplitMix64 rng(4);
  for (int i = 0; i < 12; ++i) {
    if (rng.NextBounded(2) == 0) {
      ASSERT_TRUE(t->Upsize().ok());
    } else {
      Status st = t->Downsize();
      ASSERT_TRUE(st.ok() || st.IsInvalidArgument());
    }
    ASSERT_TRUE(t->Validate().ok());
  }
  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]) << "key index " << i;
    ASSERT_EQ(out[i], i);
  }
}

TEST(TwoLayerTest, EntriesSpreadAcrossAllSubtables) {
  // The two-layer design routes keys through C(d,2) pairs so every subtable
  // receives a share (the skew-mitigation argument of Section V-A).
  DyCuckooOptions o;
  o.num_subtables = 5;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  auto keys = UniqueKeys(50000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  for (int i = 0; i < t->num_subtables(); ++i) {
    EXPECT_GT(t->subtable_size(i), keys.size() / 20)
        << "subtable " << i << " starved";
  }
}

TEST(TwoLayerTest, BalanceRoughlyFollowsTheoremOne) {
  // With equal subtable sizes the Theorem-1 weights equalize m_i; check the
  // spread is tight after a large uniform insert.
  DyCuckooOptions o;
  o.num_subtables = 4;
  o.auto_resize = false;
  o.initial_capacity = 256 * 1024;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  auto keys = UniqueKeys(120000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  uint64_t lo = ~uint64_t{0}, hi = 0;
  for (int i = 0; i < 4; ++i) {
    lo = std::min(lo, t->subtable_size(i));
    hi = std::max(hi, t->subtable_size(i));
  }
  EXPECT_LT(static_cast<double>(hi - lo) / keys.size(), 0.05)
      << "subtable occupancy spread too wide: " << lo << ".." << hi;
}

}  // namespace
}  // namespace dycuckoo
