// Configuration-matrix property test: the model-based differential test
// runs under every combination of the ablation switches (two-layer, voter,
// balance) and the stash, with auto-resizing active.  Whatever the
// configuration, the table must behave exactly like a map.

#include <memory>
#include <tuple>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "dycuckoo/dycuckoo.h"
#include "test_util.h"

namespace dycuckoo {
namespace {

using testing::UniqueKeys;

// (two_layer, voter, balance, stash_capacity)
using Config = std::tuple<bool, bool, bool, uint64_t>;

class ConfigMatrixTest : public ::testing::TestWithParam<Config> {};

TEST_P(ConfigMatrixTest, DifferentialChurn) {
  auto [two_layer, voter, balance, stash] = GetParam();
  DyCuckooOptions o;
  o.enable_two_layer = two_layer;
  o.enable_voter = voter;
  o.enable_balance = balance;
  o.stash_capacity = stash;
  o.initial_capacity = 1024;
  o.seed = 0x5eedULL + stash;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());

  std::unordered_map<uint32_t, uint32_t> model;
  SplitMix64 rng(99);
  auto universe = UniqueKeys(5000, 1);

  for (int round = 0; round < 12; ++round) {
    std::vector<uint32_t> nk, nv, uk, uv, ek;
    std::vector<uint8_t> used(universe.size(), 0);
    for (int i = 0; i < 700; ++i) {
      uint64_t p = rng.NextBounded(universe.size());
      if (used[p]) continue;
      used[p] = 1;
      uint32_t k = universe[p];
      switch (rng.NextBounded(3)) {
        case 0:
        case 1: {
          uint32_t v = static_cast<uint32_t>(rng.Next());
          if (model.count(k)) {
            uk.push_back(k);
            uv.push_back(v);
          } else {
            nk.push_back(k);
            nv.push_back(v);
          }
          model[k] = v;
          break;
        }
        default:
          ek.push_back(k);
          model.erase(k);
          break;
      }
    }
    ASSERT_TRUE(t->BulkInsert(nk, nv).ok());
    ASSERT_TRUE(t->BulkInsert(uk, uv).ok());
    ASSERT_TRUE(t->BulkErase(ek).ok());
    ASSERT_EQ(t->size(), model.size())
        << "two_layer=" << two_layer << " voter=" << voter
        << " balance=" << balance << " stash=" << stash << " round "
        << round;
    ASSERT_TRUE(t->Validate().ok());
  }

  std::vector<uint32_t> out(universe.size());
  std::vector<uint8_t> found(universe.size());
  t->BulkFind(universe, out.data(), found.data());
  for (size_t i = 0; i < universe.size(); ++i) {
    auto it = model.find(universe[i]);
    ASSERT_EQ(found[i] != 0, it != model.end());
    if (found[i]) ASSERT_EQ(out[i], it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSwitches, ConfigMatrixTest,
    ::testing::Combine(::testing::Bool(),          // two_layer
                       ::testing::Bool(),          // voter
                       ::testing::Bool(),          // balance
                       ::testing::Values(0ull, 64ull)));  // stash

}  // namespace
}  // namespace dycuckoo
