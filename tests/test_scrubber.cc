// Invariant scrubbing: DynamicTable::Scrub* plus the incremental
// OnlineScrubber wrapper.

#include "service/scrubber.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dycuckoo/dynamic_table.h"
#include "dycuckoo/options.h"
#include "test_util.h"

namespace dycuckoo {
namespace service {
namespace {

using Table = DynamicTable<uint32_t, uint32_t>;

std::unique_ptr<Table> MakeTable(uint64_t capacity, uint64_t stash = 64) {
  DyCuckooOptions options;
  options.initial_capacity = capacity;
  options.stash_capacity = stash;
  std::unique_ptr<Table> table;
  Status st = Table::Create(options, &table);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return table;
}

uint64_t TotalBuckets(const Table& table) {
  uint64_t total = 0;
  for (int i = 0; i < table.num_subtables(); ++i) {
    total += table.subtable_buckets(i);
  }
  return total;
}

TEST(ScrubTest, CleanTableScrubsClean) {
  auto table = MakeTable(4096);
  auto keys = testing::UniqueKeys(2000);
  auto values = testing::SequentialValues(keys.size());
  ASSERT_TRUE(table->BulkInsert(keys, values).ok());

  auto report = table->ScrubAll();
  EXPECT_EQ(report.buckets_scanned, TotalBuckets(*table));
  EXPECT_EQ(report.misplaced_found, 0u);
  EXPECT_EQ(report.misplaced_repaired, 0u);
  EXPECT_EQ(report.stash_fixes, 0u);
  EXPECT_TRUE(report.filled_factor_ok);
  EXPECT_TRUE(table->Validate().ok());

  auto stats = table->stats().Capture();
  EXPECT_EQ(stats.scrub_buckets_scanned, report.buckets_scanned);
  EXPECT_EQ(stats.scrub_misplaced_found, 0u);
  EXPECT_EQ(stats.scrub_passes, 1u);
}

// Acceptance: a full scrub of a clean table with >= 1M slots reports zero
// violations of every invariant.
TEST(ScrubTest, CleanMillionSlotTableHasZeroViolations) {
  auto table = MakeTable(1ull << 20);
  ASSERT_GE(table->capacity_slots(), 1ull << 20);
  auto keys = testing::UniqueKeys(600 * 1000, /*seed=*/7);
  auto values = testing::SequentialValues(keys.size());
  ASSERT_TRUE(table->BulkInsert(keys, values).ok());

  auto report = table->ScrubAll();
  EXPECT_EQ(report.buckets_scanned, TotalBuckets(*table));
  EXPECT_EQ(report.misplaced_found, 0u);
  EXPECT_EQ(report.misplaced_repaired, 0u);
  EXPECT_EQ(report.stash_fixes, 0u);
  EXPECT_TRUE(report.filled_factor_ok);
}

TEST(ScrubTest, DetectsAndRepairsPlantedMisplacedPair) {
  auto table = MakeTable(4096);
  auto keys = testing::UniqueKeys(1500);
  auto values = testing::SequentialValues(keys.size());
  ASSERT_TRUE(table->BulkInsert(keys, values).ok());

  // Plant a pair in a bucket outside its probe set: Validate must flag the
  // corruption and a normal FIND (<= 2 probes + stash) must miss it.
  const uint32_t planted_key = 0xDEADBEEFu;
  const uint32_t planted_value = 777;
  ASSERT_TRUE(table->PlantMisplacedPairForTest(planted_key, planted_value));
  EXPECT_FALSE(table->Validate().ok());
  uint32_t value = 0;
  uint8_t found = 0;
  table->BulkFind(std::vector<uint32_t>{planted_key}, &value, &found);
  EXPECT_EQ(found, 0u);

  // One full scrub pass re-homes it.
  auto report = table->ScrubAll();
  EXPECT_EQ(report.misplaced_found, 1u);
  EXPECT_EQ(report.misplaced_repaired + report.stash_fixes, 1u);
  EXPECT_TRUE(table->Validate().ok()) << table->Validate().ToString();

  // The repaired pair is reachable through the normal probe path again.
  table->BulkFind(std::vector<uint32_t>{planted_key}, &value, &found);
  EXPECT_EQ(found, 1u);
  EXPECT_EQ(value, planted_value);

  // The repair is visible in TableStats.
  auto stats = table->stats().Capture();
  EXPECT_EQ(stats.scrub_misplaced_found, 1u);
  EXPECT_EQ(stats.scrub_misplaced_repaired, 1u);
  EXPECT_EQ(stats.scrub_passes, 1u);
}

TEST(ScrubTest, RepairCollapsesMisplacedDuplicate) {
  auto table = MakeTable(2048);
  auto keys = testing::UniqueKeys(500);
  auto values = testing::SequentialValues(keys.size());
  ASSERT_TRUE(table->BulkInsert(keys, values).ok());

  // Plant a *duplicate* of a resident key in a wrong bucket: the scrubber's
  // partner-checked reinsertion must collapse it into the correct copy
  // instead of storing the key twice.
  const uint32_t dup_key = keys[123];
  ASSERT_TRUE(table->PlantMisplacedPairForTest(dup_key, 0xABCDu));
  EXPECT_FALSE(table->Validate().ok());

  auto report = table->ScrubAll();
  EXPECT_EQ(report.misplaced_found, 1u);
  EXPECT_TRUE(table->Validate().ok()) << table->Validate().ToString();
  EXPECT_EQ(table->size(), keys.size());

  uint32_t value = 0;
  uint8_t found = 0;
  table->BulkFind(std::vector<uint32_t>{dup_key}, &value, &found);
  EXPECT_EQ(found, 1u);
  EXPECT_EQ(value, 0xABCDu);  // the reinsert upserted the planted value
}

TEST(ScrubTest, CollapsesShadowedDuplicateInLaterCandidateBucket) {
  auto table = MakeTable(2048);
  auto keys = testing::UniqueKeys(500);
  auto values = testing::SequentialValues(keys.size());
  ASSERT_TRUE(table->BulkInsert(keys, values).ok());

  // Plant a stale second copy of a resident key in a *later* candidate
  // bucket — the shape an interrupted eviction chain can leave behind.
  // Both copies are correctly placed for their own buckets, so only the
  // global-uniqueness invariant is violated and FIND keeps returning the
  // earlier (live) copy.  Not every key has a later candidate with room,
  // so probe until one plants.
  uint32_t dup_key = 0;
  uint32_t live_value = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (table->PlantShadowedDuplicateForTest(keys[i], 0xBAD0BAD0u)) {
      dup_key = keys[i];
      live_value = values[i];
      break;
    }
  }
  ASSERT_NE(dup_key, 0u) << "no key accepted a shadowed duplicate";
  EXPECT_FALSE(table->Validate().ok());
  uint32_t value = 0;
  uint8_t found = 0;
  table->BulkFind(std::vector<uint32_t>{dup_key}, &value, &found);
  ASSERT_EQ(found, 1u);
  EXPECT_EQ(value, live_value);  // the stale copy is FIND-invisible

  // One scrub pass frees the shadowed copy and keeps the live one.
  auto report = table->ScrubAll();
  EXPECT_EQ(report.duplicates_collapsed, 1u);
  EXPECT_EQ(report.misplaced_found, 0u);  // both copies were well-placed
  EXPECT_TRUE(table->Validate().ok()) << table->Validate().ToString();
  EXPECT_EQ(table->size(), keys.size());
  table->BulkFind(std::vector<uint32_t>{dup_key}, &value, &found);
  EXPECT_EQ(found, 1u);
  EXPECT_EQ(value, live_value);
  EXPECT_EQ(table->stats().Capture().scrub_duplicates_collapsed, 1u);
}

TEST(ScrubTest, CollapsesShadowedDuplicateInStash) {
  auto table = MakeTable(2048);
  auto keys = testing::UniqueKeys(400);
  auto values = testing::SequentialValues(keys.size());
  ASSERT_TRUE(table->BulkInsert(keys, values).ok());

  // A stash entry whose key also lives in a bucket is shadowed (buckets
  // probe before the stash) and must be collapsed, not drained back.
  const uint32_t dup_key = keys[42];
  ASSERT_TRUE(table->PlantShadowedDuplicateForTest(dup_key, 0xFEEDFACEu,
                                                   /*into_stash=*/true));
  ASSERT_EQ(table->stash_size(), 1u);

  auto report = table->ScrubAll();
  EXPECT_EQ(report.duplicates_collapsed, 1u);
  EXPECT_EQ(table->stash_size(), 0u);
  EXPECT_TRUE(table->Validate().ok()) << table->Validate().ToString();

  uint32_t value = 0;
  uint8_t found = 0;
  table->BulkFind(std::vector<uint32_t>{dup_key}, &value, &found);
  EXPECT_EQ(found, 1u);
  EXPECT_EQ(value, values[42]);
}

TEST(OnlineScrubberTest, IncrementalStepsCoverTheWholeTable) {
  auto table = MakeTable(4096);
  auto keys = testing::UniqueKeys(1800);
  auto values = testing::SequentialValues(keys.size());
  ASSERT_TRUE(table->BulkInsert(keys, values).ok());

  OnlineScrubber<uint32_t, uint32_t> scrubber(table.get());
  const uint64_t total = TotalBuckets(*table);
  uint64_t steps = 0;
  while (scrubber.full_passes() == 0) {
    // Totals are asserted after the pass; per-slice reports are noise.
    DYCUCKOO_IGNORE_STATUS(scrubber.Step(/*max_buckets=*/37));
    ASSERT_LT(++steps, 10000u);
  }
  EXPECT_GE(scrubber.totals().buckets_scanned, total);
  EXPECT_EQ(scrubber.totals().misplaced_found, 0u);
  EXPECT_EQ(table->stats().Capture().scrub_passes, 1u);
}

TEST(OnlineScrubberTest, FindsPlantedPairMidPass) {
  auto table = MakeTable(4096);
  auto keys = testing::UniqueKeys(1000);
  auto values = testing::SequentialValues(keys.size());
  ASSERT_TRUE(table->BulkInsert(keys, values).ok());
  ASSERT_TRUE(table->PlantMisplacedPairForTest(0xFEEDF00Du, 9));

  OnlineScrubber<uint32_t, uint32_t> scrubber(table.get());
  uint64_t steps = 0;
  while (scrubber.full_passes() == 0) {
    DYCUCKOO_IGNORE_STATUS(scrubber.Step(64));
    ASSERT_LT(++steps, 10000u);
  }
  EXPECT_EQ(scrubber.totals().misplaced_found, 1u);
  EXPECT_TRUE(table->Validate().ok());
}

TEST(OnlineScrubberTest, ClampsCursorWhenDownsizeShrinksBucketsBeneathIt) {
  auto table = MakeTable(1024);
  auto keys = testing::UniqueKeys(12000);
  auto values = testing::SequentialValues(keys.size());
  ASSERT_TRUE(table->BulkInsert(keys, values).ok());  // auto-upsized

  // Park the cursor deep into a subtable that is about to shrink.
  OnlineScrubber<uint32_t, uint32_t> scrubber(table.get());
  DYCUCKOO_IGNORE_STATUS(scrubber.Step(table->subtable_buckets(0) / 2 + 7));
  const uint64_t deep_bucket = scrubber.cursor_bucket();
  ASSERT_GT(deep_bucket, 0u);

  // Erase almost everything: auto-downsize drops subtable bucket counts
  // (possibly below the parked cursor).
  std::span<const uint32_t> doomed(keys.data(), keys.size() - 200);
  ASSERT_TRUE(table->BulkErase(doomed).ok());
  ASSERT_GT(table->stats().Capture().downsizes, 0u);

  // The next slices must clamp instead of scanning out of bounds, and a
  // full pass over the shrunken table must still complete and stay clean.
  uint64_t steps = 0;
  while (scrubber.full_passes() == 0) {
    DYCUCKOO_IGNORE_STATUS(scrubber.Step(64));
    ASSERT_LT(++steps, 10000u);
  }
  EXPECT_EQ(scrubber.totals().misplaced_found, 0u);
  EXPECT_EQ(scrubber.totals().corrupted_slots, 0u);
  EXPECT_TRUE(table->Validate().ok()) << table->Validate().ToString();

  // And the surviving keys are all still served.
  for (size_t i = keys.size() - 200; i < keys.size(); ++i) {
    uint32_t v = 0;
    ASSERT_TRUE(table->Find(keys[i], &v));
    ASSERT_EQ(v, values[i]);
  }
}

TEST(OnlineScrubberTest, ToleratesResizeBetweenSlices) {
  auto table = MakeTable(1024);
  OnlineScrubber<uint32_t, uint32_t> scrubber(table.get());

  auto keys = testing::UniqueKeys(6000);
  auto values = testing::SequentialValues(keys.size());
  // Interleave growth (auto-resize upsizes shift bucket counts under the
  // cursor) with scrub slices; the scrubber must stay in bounds.
  for (uint64_t off = 0; off < keys.size(); off += 500) {
    uint64_t n = std::min<uint64_t>(500, keys.size() - off);
    ASSERT_TRUE(table
                    ->BulkInsert(std::span(keys.data() + off, n),
                                 std::span(values.data() + off, n))
                    .ok());
    DYCUCKOO_IGNORE_STATUS(scrubber.Step(51));
  }
  while (scrubber.full_passes() == 0) DYCUCKOO_IGNORE_STATUS(scrubber.Step(512));
  EXPECT_TRUE(table->Validate().ok());
  EXPECT_EQ(scrubber.totals().misplaced_found, 0u);
}

}  // namespace
}  // namespace service
}  // namespace dycuckoo
