#include "gpusim/atomics.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dycuckoo {
namespace gpusim {
namespace {

TEST(AtomicsTest, CasReturnsOldOnSuccess) {
  std::atomic<uint32_t> word{0};
  EXPECT_EQ(AtomicCas(&word, 0, 7), 0u);
  EXPECT_EQ(word.load(), 7u);
}

TEST(AtomicsTest, CasReturnsOldOnFailureWithoutWriting) {
  std::atomic<uint32_t> word{5};
  EXPECT_EQ(AtomicCas(&word, 0, 7), 5u);
  EXPECT_EQ(word.load(), 5u);
}

TEST(AtomicsTest, ExchReturnsOldAndWrites) {
  std::atomic<uint32_t> word{3};
  EXPECT_EQ(AtomicExch(&word, 9), 3u);
  EXPECT_EQ(word.load(), 9u);
}

TEST(AtomicsTest, Cas64Semantics) {
  std::atomic<uint64_t> word{10};
  EXPECT_EQ(AtomicCas64(&word, 10, 20), 10u);
  EXPECT_EQ(AtomicCas64(&word, 10, 30), 20u);  // fails, returns current
  EXPECT_EQ(word.load(), 20u);
}

TEST(AtomicsTest, Exch64Semantics) {
  std::atomic<uint64_t> word{1};
  EXPECT_EQ(AtomicExch64(&word, 2), 1u);
  EXPECT_EQ(word.load(), 2u);
}

TEST(AtomicsTest, CasCountsConflicts) {
  SimCounters::Get().Reset();
  std::atomic<uint32_t> word{1};
  AtomicCas(&word, 1, 2);  // success
  AtomicCas(&word, 1, 3);  // failure
  auto snap = SimCounters::Get().Capture();
  EXPECT_EQ(snap.atomic_cas, 2u);
  EXPECT_EQ(snap.atomic_cas_failed, 1u);
}

TEST(BucketLockTest, TryLockThenUnlock) {
  BucketLock lock;
  EXPECT_FALSE(lock.IsLocked());
  EXPECT_TRUE(lock.TryLock());
  EXPECT_TRUE(lock.IsLocked());
  EXPECT_FALSE(lock.TryLock());  // second attempt fails
  lock.Unlock();
  EXPECT_FALSE(lock.IsLocked());
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

TEST(BucketLockTest, CopyYieldsUnlocked) {
  BucketLock a;
  ASSERT_TRUE(a.TryLock());
  BucketLock b(a);
  EXPECT_FALSE(b.IsLocked());
  a.Unlock();
}

TEST(BucketLockTest, MutualExclusionUnderContention) {
  // N threads increment a plain counter under the lock; any lost update
  // means the lock failed.
  BucketLock lock;
  uint64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        while (!lock.TryLock()) {
        }
        ++counter;
        lock.Unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kIters);
}

TEST(AtomicsTest, ConcurrentCasExactlyOneWinnerPerRound) {
  std::atomic<uint32_t> word{0};
  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (AtomicCas(&word, 0, static_cast<uint32_t>(t + 1)) == 0) {
        winners.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);
  EXPECT_NE(word.load(), 0u);
}

}  // namespace
}  // namespace gpusim
}  // namespace dycuckoo
