// Seed-parameterized property suite: long randomized op streams (including
// forced manual resizes and mixed batches) differentially tested against a
// host model, with structural invariants checked throughout.

#include <memory>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "dycuckoo/dycuckoo.h"
#include "gpusim/device_arena.h"
#include "gpusim/sim_counters.h"
#include "test_util.h"

namespace dycuckoo {
namespace {

using testing::UniqueKeys;

class PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertyTest, RandomOpsWithForcedResizesMatchModel) {
  const uint64_t seed = GetParam();
  DyCuckooOptions o;
  o.seed = seed;
  o.initial_capacity = 2048;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());

  std::unordered_map<uint32_t, uint32_t> model;
  SplitMix64 rng(seed ^ 0xFACE);
  auto universe = UniqueKeys(6000, seed);

  for (int round = 0; round < 25; ++round) {
    // New-key inserts (deterministic batch semantics).
    std::vector<uint32_t> nk, nv;
    std::vector<uint8_t> used(universe.size(), 0);
    for (uint64_t i = 0; i < 300 + rng.NextBounded(500); ++i) {
      uint64_t p = rng.NextBounded(universe.size());
      if (used[p] || model.count(universe[p])) continue;
      used[p] = 1;
      uint32_t v = static_cast<uint32_t>(rng.Next());
      nk.push_back(universe[p]);
      nv.push_back(v);
      model[universe[p]] = v;
    }
    ASSERT_TRUE(t->BulkInsert(nk, nv).ok());

    // Occasionally force a manual resize in either direction.
    switch (rng.NextBounded(4)) {
      case 0:
        ASSERT_TRUE(t->Upsize().ok());
        break;
      case 1: {
        Status st = t->Downsize();
        ASSERT_TRUE(st.ok() || st.IsInvalidArgument()) << st.ToString();
        break;
      }
      default:
        break;
    }

    // Random erases.
    std::fill(used.begin(), used.end(), 0);
    std::vector<uint32_t> ek;
    for (uint64_t i = 0; i < rng.NextBounded(400); ++i) {
      uint64_t p = rng.NextBounded(universe.size());
      if (used[p]) continue;
      used[p] = 1;
      ek.push_back(universe[p]);
      model.erase(universe[p]);
    }
    ASSERT_TRUE(t->BulkErase(ek).ok());

    ASSERT_EQ(t->size(), model.size()) << "seed " << seed << " round "
                                       << round;
    ASSERT_TRUE(t->Validate().ok()) << "seed " << seed << " round " << round;
  }

  // Full sweep.
  std::vector<uint32_t> out(universe.size());
  std::vector<uint8_t> found(universe.size());
  t->BulkFind(universe, out.data(), found.data());
  for (size_t i = 0; i < universe.size(); ++i) {
    auto it = model.find(universe[i]);
    ASSERT_EQ(found[i] != 0, it != model.end()) << universe[i];
    if (found[i]) ASSERT_EQ(out[i], it->second);
  }
}

TEST_P(PropertyTest, MixedBatchesMatchModelAcrossBatches) {
  // Mixed batches where each batch's op sets are disjoint by key, so the
  // no-intra-batch-ordering caveat cannot bite; cross-batch semantics must
  // be exact.
  const uint64_t seed = GetParam();
  DyCuckooOptions o;
  o.seed = seed;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  using Op = DyCuckooMap::MixedOp;

  std::unordered_map<uint32_t, uint32_t> model;
  SplitMix64 rng(seed ^ 0xBEEF);
  auto universe = UniqueKeys(5000, seed + 1);

  for (int round = 0; round < 15; ++round) {
    std::vector<Op> ops;
    std::vector<uint8_t> used(universe.size(), 0);
    std::vector<std::pair<size_t, uint32_t>> find_expect;  // op idx, key
    for (int i = 0; i < 900; ++i) {
      uint64_t p = rng.NextBounded(universe.size());
      if (used[p]) continue;
      used[p] = 1;
      uint32_t k = universe[p];
      Op op;
      switch (rng.NextBounded(3)) {
        case 0: {
          op.type = Op::Type::kInsert;
          op.key = k;
          op.value = static_cast<uint32_t>(rng.Next());
          model[k] = op.value;
          break;
        }
        case 1: {
          op.type = Op::Type::kFind;
          op.key = k;
          find_expect.emplace_back(ops.size(), k);
          break;
        }
        default: {
          op.type = Op::Type::kErase;
          op.key = k;
          break;
        }
      }
      ops.push_back(op);
    }
    // Pre-compute expectations against the model *before* this batch's
    // erases are applied (keys are disjoint within the batch, so a find's
    // result equals the pre-batch state).
    std::vector<std::pair<bool, uint32_t>> expect;
    for (auto [idx, k] : find_expect) {
      auto it = model.find(k);
      // Inserts of the same batch use other keys, so pre-batch state holds;
      // but this key's model entry may have just been updated above if the
      // insert branch took it — guarded by `used`, impossible.
      expect.emplace_back(it != model.end(), it == model.end() ? 0 : it->second);
    }
    // Apply erases to the model.
    for (const Op& op : ops) {
      if (op.type == Op::Type::kErase) model.erase(op.key);
    }

    ASSERT_TRUE(t->BulkExecute(ops).ok());

    for (size_t i = 0; i < find_expect.size(); ++i) {
      const Op& op = ops[find_expect[i].first];
      ASSERT_EQ(op.hit != 0, expect[i].first)
          << "seed " << seed << " round " << round;
      if (op.hit) ASSERT_EQ(op.value, expect[i].second);
    }
    ASSERT_EQ(t->size(), model.size()) << "seed " << seed << " round "
                                       << round;
    ASSERT_TRUE(t->Validate().ok());
  }
}

TEST_P(PropertyTest, ResidentKeysAlwaysFoundUnderConcurrentInserts) {
  // The strict form of the FIND-under-INSERT guarantee (docs/robustness.md
  // "Consistency guarantees"): a key acked as inserted and never deleted
  // is found by EVERY concurrent FIND — no transient-miss allowance.
  // Before the handoff ring closed the eviction displacement window this
  // invariant flaked under DYCUCKOO_RACECHECK=1 plus load (a displaced
  // victim was briefly invisible); it is now asserted unconditionally, and
  // this test runs under RaceCheck/ASan/TSan in CI like every other.
  const uint64_t seed = GetParam();
  DyCuckooOptions o;
  o.seed = seed;
  o.initial_capacity = 2048;  // auto-resizes mid-run: chains + moves galore
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  using Op = DyCuckooMap::MixedOp;

  SplitMix64 rng(seed ^ 0x5AFE);
  auto universe = UniqueKeys(12000, seed + 2);
  std::vector<uint32_t> resident(universe.begin(), universe.begin() + 2000);
  ASSERT_TRUE(
      t->BulkInsert(resident, testing::SequentialValues(resident.size()))
          .ok());

  size_t next_fresh = 2000;
  for (int round = 0; round < 10; ++round) {
    std::vector<Op> ops;
    for (int i = 0; i < 1000; ++i) {
      Op op;
      if (i % 2 == 0 && next_fresh < universe.size()) {
        op.type = Op::Type::kInsert;
        op.key = universe[next_fresh++];
        op.value = static_cast<uint32_t>(rng.Next());
      } else {
        op.type = Op::Type::kFind;
        op.key = resident[rng.NextBounded(resident.size())];
      }
      ops.push_back(op);
    }
    ASSERT_TRUE(t->BulkExecute(ops).ok());
    for (const Op& op : ops) {
      if (op.type != Op::Type::kFind) continue;
      ASSERT_NE(op.hit, 0) << "seed " << seed << " round " << round
                           << ": resident key " << op.key
                           << " transiently missed during displacement";
    }
  }
  EXPECT_GT(t->stats().Capture().evictions, 0u)
      << "no eviction chains ran; the test exercised nothing";
  EXPECT_TRUE(t->Validate().ok());
}

TEST_P(PropertyTest, ArenaNeverLeaksAcrossTableLifetime) {
  const uint64_t seed = GetParam();
  gpusim::DeviceArena arena(256 << 20);
  uint64_t before = arena.used_bytes();
  {
    DyCuckooOptions o;
    o.seed = seed;
    o.arena = &arena;
    std::unique_ptr<DyCuckooMap> t;
    ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
    auto keys = UniqueKeys(40000, seed);
    ASSERT_TRUE(
        t->BulkInsert(keys, testing::SequentialValues(keys.size())).ok());
    ASSERT_TRUE(t->BulkErase(keys).ok());
    EXPECT_GT(arena.used_bytes(), before);
  }
  EXPECT_EQ(arena.used_bytes(), before) << "table must free all device memory";
  EXPECT_EQ(arena.live_allocations(), 0u);
}

TEST_P(PropertyTest, UpsizeKernelTakesNoLocks) {
  // The conflict-free guarantee (Section IV-D): the upsize kernel moves
  // every pair without a single lock acquisition.
  const uint64_t seed = GetParam();
  DyCuckooOptions o;
  o.seed = seed;
  o.auto_resize = false;
  o.initial_capacity = 32 * 1024;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  auto keys = UniqueKeys(25000, seed);
  ASSERT_TRUE(
      t->BulkInsert(keys, testing::SequentialValues(keys.size())).ok());

  auto before = gpusim::SimCounters::Get().Capture();
  ASSERT_TRUE(t->Upsize().ok());
  auto delta = gpusim::SimCounters::Get().Capture() - before;
  EXPECT_EQ(delta.atomic_cas, 0u);
  EXPECT_EQ(delta.atomic_exch, 0u);
  EXPECT_EQ(delta.lock_conflicts, 0u);
  EXPECT_TRUE(t->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1ull, 7ull, 42ull, 1234ull,
                                           0xC0FFEEull));

}  // namespace
}  // namespace dycuckoo
