// Tests for the ablation switches (plain d-table mode, spinning leader,
// unbalanced placement) and the mixed-operation batch API.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "dycuckoo/dycuckoo.h"
#include "gpusim/grid.h"
#include "gpusim/sim_counters.h"
#include "test_util.h"

namespace dycuckoo {
namespace {

using testing::SequentialValues;
using testing::UniqueKeys;

std::unique_ptr<DyCuckooMap> MakeTable(DyCuckooOptions o) {
  std::unique_ptr<DyCuckooMap> t;
  Status st = DyCuckooMap::Create(o, &t);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return t;
}

void RoundTrip(DyCuckooMap* t, uint64_t n, uint64_t seed) {
  auto keys = UniqueKeys(n, seed);
  auto values = SequentialValues(keys.size());
  ASSERT_TRUE(t->BulkInsert(keys, values).ok());
  ASSERT_EQ(t->size(), keys.size());
  ASSERT_TRUE(t->Validate().ok());
  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]) << i;
    ASSERT_EQ(out[i], values[i]);
  }
  uint64_t erased = 0;
  ASSERT_TRUE(t->BulkErase(keys, &erased).ok());
  ASSERT_EQ(erased, keys.size());
  ASSERT_EQ(t->size(), 0u);
}

class PlainModeTest : public ::testing::TestWithParam<int> {};

TEST_P(PlainModeTest, PlainCuckooRoundTripAcrossD) {
  DyCuckooOptions o;
  o.num_subtables = GetParam();
  o.enable_two_layer = false;
  auto t = MakeTable(o);
  RoundTrip(t.get(), 20000, GetParam());
}

TEST_P(PlainModeTest, PlainModeMissesCostDProbes) {
  // The motivation for the two-layer scheme: a plain d-table cuckoo pays d
  // bucket reads per unsuccessful lookup.
  const int d = GetParam();
  DyCuckooOptions o;
  o.num_subtables = d;
  o.enable_two_layer = false;
  gpusim::Grid grid(1);
  o.grid = &grid;
  auto t = MakeTable(o);
  ASSERT_TRUE(t->Insert(1, 1).ok());

  auto misses = UniqueKeys(3000, 97);
  std::erase(misses, 1u);
  auto before = gpusim::SimCounters::Get().Capture();
  std::vector<uint8_t> found(misses.size());
  t->BulkFind(misses, nullptr, found.data());
  auto delta = gpusim::SimCounters::Get().Capture() - before;
  EXPECT_EQ(delta.bucket_reads, static_cast<uint64_t>(d) * misses.size());
}

INSTANTIATE_TEST_SUITE_P(Dims, PlainModeTest, ::testing::Values(2, 3, 4, 6));

TEST(PlainModeTest, ResizeStillWorks) {
  DyCuckooOptions o;
  o.enable_two_layer = false;
  o.initial_capacity = 1024;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(50000, 5);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  EXPECT_LE(t->filled_factor(), o.upper_bound + 1e-9);
  ASSERT_TRUE(t->BulkErase(keys).ok());
  EXPECT_EQ(t->size(), 0u);
  EXPECT_TRUE(t->Validate().ok());
}

TEST(SpinningLeaderTest, CorrectWithoutVoter) {
  DyCuckooOptions o;
  o.enable_voter = false;
  auto t = MakeTable(o);
  RoundTrip(t.get(), 30000, 11);
}

TEST(SpinningLeaderTest, ContendedInsertsStillCorrect) {
  // Tiny table => heavy bucket contention; the spinning leader must still
  // complete every op.
  DyCuckooOptions o;
  o.enable_voter = false;
  o.initial_capacity = 256;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(20000, 13);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  EXPECT_EQ(t->size(), keys.size());
  EXPECT_TRUE(t->Validate().ok());
}

TEST(UnbalancedTest, CorrectWithoutBalanceGuidance) {
  DyCuckooOptions o;
  o.enable_balance = false;
  auto t = MakeTable(o);
  RoundTrip(t.get(), 30000, 17);
}

TEST(UnbalancedTest, BalanceTightensSubtableSpread) {
  // With balance on, subtable occupancies track each other; without it the
  // spread is at least as wide (usually wider after resizes skew sizes).
  auto spread = [](bool balance) {
    DyCuckooOptions o;
    o.enable_balance = balance;
    o.auto_resize = false;
    o.initial_capacity = 160 * 1024;  // ladder: mixed subtable sizes
    std::unique_ptr<DyCuckooMap> t;
    (void)DyCuckooMap::Create(o, &t);
    auto keys = UniqueKeys(100000, 23);
    (void)t->BulkInsert(keys, SequentialValues(keys.size()));
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < t->num_subtables(); ++i) {
      lo = std::min(lo, t->subtable_filled_factor(i));
      hi = std::max(hi, t->subtable_filled_factor(i));
    }
    return hi - lo;
  };
  EXPECT_LE(spread(true), spread(false) + 0.02);
}

TEST(MixedBatchTest, AllThreeTypesInOneLaunch) {
  DyCuckooOptions o;
  auto t = MakeTable(o);
  // Seed with resident keys for the find/erase halves.
  auto resident = UniqueKeys(3000, 31);
  ASSERT_TRUE(t->BulkInsert(resident, SequentialValues(resident.size())).ok());

  auto fresh = UniqueKeys(3000, 32);
  std::vector<DyCuckooMap::MixedOp> ops;
  using Op = DyCuckooMap::MixedOp;
  for (size_t i = 0; i < 1000; ++i) {
    Op ins;
    ins.type = Op::Type::kInsert;
    ins.key = fresh[i];
    ins.value = 7000 + static_cast<uint32_t>(i);
    ops.push_back(ins);
    Op fnd;
    fnd.type = Op::Type::kFind;
    fnd.key = resident[i];
    ops.push_back(fnd);
    Op ers;
    ers.type = Op::Type::kErase;
    ers.key = resident[1000 + i];
    ops.push_back(ers);
  }
  ASSERT_TRUE(t->BulkExecute(ops).ok());

  // Finds of pre-batch residents must hit with the right value.
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].type == Op::Type::kFind) {
      ASSERT_TRUE(ops[i].hit) << i;
      uint32_t idx = 0;
      for (size_t j = 0; j < resident.size(); ++j) {
        if (resident[j] == ops[i].key) idx = static_cast<uint32_t>(j);
      }
      ASSERT_EQ(ops[i].value, idx);
    } else if (ops[i].type == Op::Type::kErase) {
      ASSERT_TRUE(ops[i].hit) << i;  // pre-batch residents always erasable
    }
  }
  // Post-state: inserts landed, erased gone.
  std::vector<uint8_t> found(1000);
  std::vector<uint32_t> first_fresh(fresh.begin(), fresh.begin() + 1000);
  t->BulkFind(first_fresh, nullptr, found.data());
  for (auto f : found) ASSERT_TRUE(f);
  std::vector<uint32_t> erased_keys(resident.begin() + 1000,
                                    resident.begin() + 2000);
  t->BulkFind(erased_keys, nullptr, found.data());
  for (auto f : found) ASSERT_FALSE(f);
  EXPECT_EQ(t->size(), 3000u);  // 3000 - 1000 erased + 1000 inserted
  EXPECT_TRUE(t->Validate().ok());
}

TEST(MixedBatchTest, EmptyBatchIsNoop) {
  auto t = MakeTable(DyCuckooOptions{});
  std::vector<DyCuckooMap::MixedOp> ops;
  EXPECT_TRUE(t->BulkExecute(ops).ok());
}

TEST(MixedBatchTest, MixedInsertsTriggerResize) {
  DyCuckooOptions o;
  o.initial_capacity = 512;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(20000, 41);
  std::vector<DyCuckooMap::MixedOp> ops(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ops[i].type = DyCuckooMap::MixedOp::Type::kInsert;
    ops[i].key = keys[i];
    ops[i].value = static_cast<uint32_t>(i);
  }
  ASSERT_TRUE(t->BulkExecute(ops).ok());
  EXPECT_EQ(t->size(), keys.size());
  EXPECT_LE(t->filled_factor(), o.upper_bound + 1e-9);
  EXPECT_GT(t->stats().upsizes.load(), 0u);
  EXPECT_TRUE(t->Validate().ok());
}

TEST(MixedBatchTest, ReservedKeyInsertRejected) {
  auto t = MakeTable(DyCuckooOptions{});
  std::vector<DyCuckooMap::MixedOp> ops(1);
  ops[0].type = DyCuckooMap::MixedOp::Type::kInsert;
  ops[0].key = 0xffffffffu;
  EXPECT_TRUE(t->BulkExecute(ops).IsInvalidArgument());
}

}  // namespace
}  // namespace dycuckoo
