// Silent data corruption defense, end to end: per-slot integrity tags in
// the subtable, the deterministic device-memory fault sweep in the arena,
// scrub-verify detection with the attribution policy, targeted
// repair-from-durability (DurabilityManager::PointLookup), and the
// escalation ladder (breaker ForceOpen -> shard quarantine -> heal).
//
// The soak tests pin the PR's acceptance guarantees:
//   * every planted flip is detected within one full scrub pass;
//   * after repair, no acknowledged key is ever served a corrupted value;
//   * a clean (fault-free) soak reports zero corrupted slots — the tag
//     discipline has no false positives under the full mutation mix;
//   * the same DYCUCKOO_CHAOS_SEED replays bit-identically.
//
// Reproduce a CI failure locally with DYCUCKOO_CHAOS_SEED=<seed>; shard
// count for the sharded scenario comes from DYCUCKOO_SHARDS.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "durability/manager.h"
#include "durability/sharded.h"
#include "dycuckoo/dynamic_table.h"
#include "dycuckoo/options.h"
#include "dycuckoo/subtable.h"
#include "gpusim/device_arena.h"
#include "gpusim/fault_injector.h"
#include "gpusim/grid.h"
#include "service/scrubber.h"
#include "service/sharded_server.h"
#include "service/table_server.h"
#include "test_util.h"

namespace dycuckoo {
namespace {

using Table = DynamicTable<uint32_t, uint32_t>;
using Sub32 = Subtable<uint32_t, uint32_t>;
using Manager = durability::DurabilityManager<uint32_t, uint32_t>;
using durability::PointLookupResult;
using Server = service::TableServer<uint32_t, uint32_t>;
using Sharded = service::ShardedTableServer<uint32_t, uint32_t>;
using OpType = Server::OpType;

uint64_t SeedFromEnv() {
  const char* s = std::getenv("DYCUCKOO_CHAOS_SEED");
  return (s != nullptr && *s != '\0') ? std::strtoull(s, nullptr, 10) : 42;
}

uint32_t ShardsFromEnv() {
  const char* s = std::getenv("DYCUCKOO_SHARDS");
  if (s == nullptr || *s == '\0') return 4;
  unsigned long n = std::strtoul(s, nullptr, 10);
  return n >= 1 && n <= 64 ? static_cast<uint32_t>(n) : 4;
}

std::unique_ptr<Table> MakeTable(DyCuckooOptions o) {
  std::unique_ptr<Table> t;
  Status st = Table::Create(o, &t);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return t;
}

// --- Tag scheme unit tests ------------------------------------------------

TEST(IntegrityTag, Crc32KnownAnswer) {
  // The CRC-32 check value (IEEE 802.3, reflected): CRC("123456789").
  // If this breaks, every stored tag silently changes meaning.
  EXPECT_EQ(Crc32Update(0, "123456789", 9), 0xCBF43926u);
}

TEST(IntegrityTag, FreshSubtableTagsCoverEmptySlots) {
  gpusim::DeviceArena arena{16 << 20};
  Sub32 t(16, 42, &arena, "tags");
  ASSERT_TRUE(t.ok());
  const uint8_t empty_tag = Sub32::ExpectedTag(Sub32::kEmptyKey, 0);
  for (uint64_t b = 0; b < t.num_buckets(); ++b) {
    for (int s = 0; s < Sub32::kSlots; ++s) {
      ASSERT_EQ(t.TagAt(b, s), empty_tag) << "bucket " << b << " slot " << s;
    }
  }
}

TEST(IntegrityTag, InvariantHoldsThroughEveryMutationPrimitive) {
  gpusim::DeviceArena arena{16 << 20};
  Sub32 t(8, 42, &arena, "tags");
  ASSERT_TRUE(t.ok());
  auto expect_sealed = [&](uint64_t b, int s) {
    ASSERT_EQ(t.TagAt(b, s), Sub32::ExpectedTag(t.KeyAt(b, s),
                                                t.ValueAt(b, s)));
  };
  t.StoreSlot(3, 5, 0xBEEF, 77);
  expect_sealed(3, 5);
  t.StoreValue(3, 5, 78);               // upsert in place
  expect_sealed(3, 5);
  t.StoreValueRacy(3, 5, 79);           // racy last-writer-wins path
  expect_sealed(3, 5);
  ASSERT_TRUE(t.CasKey(3, 5, 0xBEEF, Sub32::kEmptyKey));  // lock-free delete
  expect_sealed(3, 5);
  ASSERT_FALSE(t.CasKey(3, 5, 0xBEEF, 1));  // lost CAS: no delta applied
  expect_sealed(3, 5);
  t.StoreKey(3, 5, 0xF00D);             // re-publish
  expect_sealed(3, 5);
  t.StoreSlotFresh(2, 0, 0xAAAA, 5, Sub32::ExpectedTag(0xAAAA, 5));
  expect_sealed(2, 0);
}

TEST(IntegrityTag, CorruptBitBreaksSealAndResyncRestoresIt) {
  gpusim::DeviceArena arena{16 << 20};
  Sub32 t(8, 42, &arena, "tags");
  ASSERT_TRUE(t.ok());
  t.StoreSlot(1, 2, 1234, 5678);
  for (int region = 0; region < 3; ++region) {
    t.CorruptBitForTest(1, 2, region, /*bit=*/3);
    EXPECT_NE(t.TagAt(1, 2), Sub32::ExpectedTag(t.KeyAt(1, 2),
                                                t.ValueAt(1, 2)))
        << "region " << region << " flip was invisible to the tag";
    t.CorruptBitForTest(1, 2, region, /*bit=*/3);  // flip back
    EXPECT_EQ(t.TagAt(1, 2), Sub32::ExpectedTag(t.KeyAt(1, 2),
                                                t.ValueAt(1, 2)));
  }
  t.CorruptBitForTest(1, 2, /*region=*/2, /*bit=*/0);
  t.ResyncTag(1, 2);
  EXPECT_EQ(t.TagAt(1, 2), Sub32::ExpectedTag(1234, 5678));
}

// --- Table-level detection ------------------------------------------------

TEST(IntegrityScrub, DetectsPlantedFlipsInEveryRegion) {
  DyCuckooOptions o;
  o.initial_capacity = 8192;
  o.auto_resize = false;
  auto t = MakeTable(o);
  auto keys = testing::UniqueKeys(2000, 11);
  ASSERT_TRUE(t->BulkInsert(keys, testing::SequentialValues(keys.size())).ok());

  // One victim per region; everything else must stay clean (no false
  // positives from neighboring slots).
  ASSERT_TRUE(t->CorruptSlotBitForTest(keys[10], /*region=*/0));  // key
  ASSERT_TRUE(t->CorruptSlotBitForTest(keys[20], /*region=*/1));  // value
  ASSERT_TRUE(t->CorruptSlotBitForTest(keys[30], /*region=*/2));  // tag

  auto report = t->ScrubAll();
  EXPECT_EQ(report.corrupted_slots, 3u);
  // The value- and tag-region victims keep their stored key intact and
  // in-home, so they are attributable; the key-region victim's stored key
  // no longer names the original and (almost surely) mis-homes.
  EXPECT_GE(report.corrupted_keys.size(), 2u);
  EXPECT_LE(report.corrupted_unattributable, 1u);
  // Every corrupted slot was unpublished: the damaged bits are unservable.
  EXPECT_FALSE(t->Find(keys[20]));
  // And after the scrub the table is internally consistent again.
  EXPECT_TRUE(t->Validate().ok()) << t->Validate().ToString();
  EXPECT_EQ(t->stats().Capture().scrub_corrupted_slots, 3u);

  // Undamaged keys are untouched.
  for (size_t i = 100; i < 200; ++i) {
    uint32_t v = 0;
    ASSERT_TRUE(t->Find(keys[i], &v));
    ASSERT_EQ(v, static_cast<uint32_t>(i));
  }
}

TEST(IntegrityScrub, DetectsCorruptionInTheStash) {
  DyCuckooOptions o;
  o.auto_resize = false;
  o.initial_capacity = 512;
  o.max_eviction_chain = 8;
  o.stash_capacity = 256;
  auto t = MakeTable(o);
  auto keys = testing::UniqueKeys(620, 3);
  ASSERT_TRUE(t->BulkInsert(keys, testing::SequentialValues(keys.size())).ok());
  ASSERT_GT(t->stash_size(), 0u);

  // Flip one value bit in EVERY key's resident copy — bucket or stash,
  // wherever it landed.  A scrub must find them all: exactly one
  // detection per live pair, none laundered, none double-counted.
  for (uint32_t k : keys) {
    ASSERT_TRUE(t->CorruptSlotBitForTest(k, /*region=*/1, /*bit=*/0));
  }
  auto report = t->ScrubAll();
  EXPECT_EQ(report.corrupted_slots, keys.size());
  EXPECT_EQ(report.corrupted_keys.size(), keys.size());
  EXPECT_EQ(report.corrupted_unattributable, 0u);
  EXPECT_EQ(t->size(), 0u) << "every corrupted pair must be unpublished";
  EXPECT_EQ(t->stash_size(), 0u);
  EXPECT_TRUE(t->Validate().ok());
}

TEST(IntegrityScrub, ResizeCarriesCorruptionEvidenceInsteadOfLaunderingIt) {
  DyCuckooOptions o;
  o.initial_capacity = 4096;
  o.auto_resize = false;
  auto t = MakeTable(o);
  auto keys = testing::UniqueKeys(1500, 19);
  ASSERT_TRUE(t->BulkInsert(keys, testing::SequentialValues(keys.size())).ok());
  ASSERT_TRUE(t->CorruptSlotBitForTest(keys[7], /*region=*/1));

  // An upsize copies every pair into a fresh subtable.  The tag must
  // travel verbatim: recomputing it over the corrupt bytes would erase
  // the only evidence that keys[7]'s value is damaged.
  ASSERT_TRUE(t->Upsize().ok());
  auto report = t->ScrubAll();
  EXPECT_EQ(report.corrupted_slots, 1u);
  ASSERT_EQ(report.corrupted_keys.size(), 1u);
  EXPECT_EQ(report.corrupted_keys[0], keys[7]);
}

TEST(IntegrityScrub, CleanMixedWorkloadHasZeroFalsePositives) {
  // Inserts, upserts, erases, auto-resize both ways, stash traffic — all
  // tag-delta paths exercised; the scrub must find nothing.
  DyCuckooOptions o;
  o.initial_capacity = 2048;
  o.stash_capacity = 128;
  auto t = MakeTable(o);
  SplitMix64 rng(9);
  std::vector<uint32_t> live;
  for (int round = 0; round < 40; ++round) {
    std::vector<uint32_t> ks, vs;
    for (int i = 0; i < 400; ++i) {
      uint32_t k = static_cast<uint32_t>(rng.Next() % 60000) + 1;
      ks.push_back(k);
      vs.push_back(static_cast<uint32_t>(rng.Next()));
    }
    ASSERT_TRUE(t->BulkInsert(ks, vs).ok());
    live.insert(live.end(), ks.begin(), ks.end());
    if (round % 3 == 2) {
      size_t half = live.size() / 2;
      ASSERT_TRUE(
          t->BulkErase(std::span<const uint32_t>(live.data(), half)).ok());
      live.erase(live.begin(), live.begin() + half);
    }
  }
  auto report = t->ScrubAll();
  EXPECT_EQ(report.corrupted_slots, 0u);
  EXPECT_EQ(report.corrupted_unattributable, 0u);
  EXPECT_TRUE(t->Validate().ok()) << t->Validate().ToString();
}

// --- Device-memory fault sweep (gpusim layer) -----------------------------

TEST(MemorySweep, SameSeedCorruptsTheSameBytes) {
  auto run = [](std::vector<uint8_t>* out) {
    gpusim::FaultInjectorConfig cfg;
    cfg.seed = 77;
    cfg.mem_faults_per_sweep = 8;
    cfg.mem_bits_per_fault = 2;
    gpusim::ScopedFaultInjection scoped(cfg);
    gpusim::DeviceArena arena{1 << 20};
    auto* a = arena.AllocateArray<std::atomic<uint8_t>>(512, "kv-a");
    auto* b = arena.AllocateArray<std::atomic<uint8_t>>(256, "kv-b");
    for (int i = 0; i < 512; ++i) a[i].store(static_cast<uint8_t>(i));
    for (int i = 0; i < 256; ++i) b[i].store(static_cast<uint8_t>(i * 3));
    auto report = arena.InjectMemoryFaults();
    EXPECT_EQ(report.faults_seen, 8u);
    EXPECT_EQ(report.faults_injected, 8u);  // bit flips always change bytes
    out->clear();
    for (int i = 0; i < 512; ++i) out->push_back(a[i].load());
    for (int i = 0; i < 256; ++i) out->push_back(b[i].load());
    arena.FreeArray(a);
    arena.FreeArray(b);
  };
  std::vector<uint8_t> first, second;
  run(&first);
  run(&second);
  EXPECT_EQ(first, second) << "memory-fault sweep must replay bit-identically";
}

TEST(MemorySweep, TagFilterMakesOtherAllocationsInvisible) {
  gpusim::FaultInjectorConfig cfg;
  cfg.seed = 5;
  cfg.mem_faults_per_sweep = 16;
  cfg.mem_tag_filter = "/kv";
  gpusim::ScopedFaultInjection scoped(cfg);
  gpusim::DeviceArena arena{1 << 20};
  auto* guarded = arena.AllocateArray<std::atomic<uint8_t>>(128, "t0/kv-keys");
  auto* locks = arena.AllocateArray<std::atomic<uint8_t>>(128, "t0/locks");
  for (int i = 0; i < 128; ++i) {
    guarded[i].store(0);
    locks[i].store(0);
  }
  auto report = arena.InjectMemoryFaults();
  EXPECT_EQ(report.bytes_targeted, 128u);
  EXPECT_EQ(report.faults_injected, 16u);
  bool guarded_changed = false;
  for (int i = 0; i < 128; ++i) {
    if (guarded[i].load() != 0) guarded_changed = true;
    ASSERT_EQ(locks[i].load(), 0u) << "fault leaked outside the tag filter";
  }
  EXPECT_TRUE(guarded_changed);
  arena.FreeArray(guarded);
  arena.FreeArray(locks);
}

TEST(MemorySweep, StuckAtFaultOnMatchingBitIsSeenNotInjected) {
  gpusim::FaultInjectorConfig cfg;
  cfg.seed = 5;
  cfg.mem_faults_per_sweep = 16;
  cfg.mem_stuck_at = 0;  // force-to-0 over all-zero memory: no change
  gpusim::ScopedFaultInjection scoped(cfg);
  gpusim::DeviceArena arena{1 << 20};
  auto* a = arena.AllocateArray<std::atomic<uint8_t>>(256, "z");
  for (int i = 0; i < 256; ++i) a[i].store(0);
  auto report = arena.InjectMemoryFaults();
  EXPECT_EQ(report.faults_seen, 16u);
  EXPECT_EQ(report.faults_injected, 0u);
  EXPECT_EQ(scoped.injector().memory_faults_seen(), 16u);
  EXPECT_EQ(scoped.injector().memory_faults_injected(), 0u);
  arena.FreeArray(a);
}

// --- Targeted repair read path (durability) -------------------------------

TEST(PointLookup, ChecksPointBaseThenWalReplayLastActionWins) {
  durability::DurabilityOptions dopt;
  dopt.checkpoint_wal_bytes = 0;  // explicit CheckpointNow only
  Manager mgr(dopt);
  DyCuckooOptions o;
  o.initial_capacity = 4096;
  auto t = MakeTable(o);

  ASSERT_TRUE(t->Insert(100, 1).ok());
  mgr.LogInsert(100, 1);
  ASSERT_TRUE(t->Insert(200, 2).ok());
  mgr.LogInsert(200, 2);
  ASSERT_TRUE(mgr.Commit().ok());
  ASSERT_TRUE(mgr.CheckpointNow(t.get()).ok());  // base: {100:1, 200:2}

  mgr.LogInsert(300, 3);
  mgr.LogErase(100);
  mgr.LogInsert(300, 33);  // last action for 300 wins
  ASSERT_TRUE(mgr.Commit().ok());

  uint32_t v = 0;
  EXPECT_EQ(mgr.PointLookup(200, &v), PointLookupResult::kFound);
  EXPECT_EQ(v, 2u);  // answered by the checkpoint base
  EXPECT_EQ(mgr.PointLookup(300, &v), PointLookupResult::kFound);
  EXPECT_EQ(v, 33u);  // answered by WAL replay, last record wins
  EXPECT_EQ(mgr.PointLookup(100, nullptr), PointLookupResult::kErased);
  EXPECT_EQ(mgr.PointLookup(999, nullptr), PointLookupResult::kAbsent);
}

TEST(PointLookup, WalOnlyLineageAnswersWithoutAnyCheckpoint) {
  Manager mgr{durability::DurabilityOptions{}};
  mgr.LogInsert(7, 70);
  mgr.LogErase(8);
  ASSERT_TRUE(mgr.Commit().ok());
  uint32_t v = 0;
  EXPECT_EQ(mgr.PointLookup(7, &v), PointLookupResult::kFound);
  EXPECT_EQ(v, 70u);
  EXPECT_EQ(mgr.PointLookup(8, nullptr), PointLookupResult::kErased);
  EXPECT_EQ(mgr.PointLookup(9, nullptr), PointLookupResult::kAbsent);
}

// --- Scrubber surfacing ---------------------------------------------------

TEST(IntegrityScrubber, SliceReportCarriesCorruptedKeysTotalsStayBounded) {
  DyCuckooOptions o;
  o.initial_capacity = 4096;
  o.auto_resize = false;
  auto t = MakeTable(o);
  auto keys = testing::UniqueKeys(1000, 13);
  ASSERT_TRUE(t->BulkInsert(keys, testing::SequentialValues(keys.size())).ok());
  ASSERT_TRUE(t->CorruptSlotBitForTest(keys[0], /*region=*/1));

  service::OnlineScrubber<uint32_t, uint32_t> scrubber(t.get());
  std::vector<uint32_t> surfaced;
  while (scrubber.full_passes() == 0) {
    auto slice = scrubber.Step(64);
    surfaced.insert(surfaced.end(), slice.corrupted_keys.begin(),
                    slice.corrupted_keys.end());
  }
  ASSERT_EQ(surfaced.size(), 1u);
  EXPECT_EQ(surfaced[0], keys[0]);
  EXPECT_EQ(scrubber.totals().corrupted_slots, 1u);
  // Counters accumulate; the key list does not (a long-lived scrubber
  // must not grow without bound).
  EXPECT_TRUE(scrubber.totals().corrupted_keys.empty());
}

// --- Serving-layer escalation ---------------------------------------------

Server::Request InsertReq(std::span<const uint32_t> keys,
                          std::span<const uint32_t> values) {
  Server::Request req;
  for (size_t i = 0; i < keys.size(); ++i) {
    req.ops.push_back(Server::Op{OpType::kInsert, keys[i], values[i]});
  }
  return req;
}

Server::Request FindReq(std::span<const uint32_t> keys) {
  Server::Request req;
  for (uint32_t k : keys) req.ops.push_back(Server::Op{OpType::kFind, k, 0});
  return req;
}

/// Steps the (idle-queue) server until the scrubber completes `n` more
/// full passes.  "Detected within one full scrub pass" means one pass
/// that STARTS after the fault: the cursor may be mid-table when the
/// fault lands, so pumping to the next boundary only covers the tail —
/// callers pass n=2 to guarantee one complete pass after the plant.
void PumpFullScrubPasses(Server* server, uint64_t n) {
  const uint64_t target = server->scrubber().full_passes() + n;
  uint64_t guard = 0;
  while (server->scrubber().full_passes() < target) {
    server->Step();
    ASSERT_LT(++guard, 200000u) << "scrub pass did not complete";
  }
}

TEST(IntegrityEscalation, RepairsCorruptedValueFromDurableStateEndToEnd) {
  service::TableServerOptions sopt;
  sopt.scrub_buckets_per_step = 128;
  sopt.resize_on_scrub_violation = false;
  DyCuckooOptions topt;
  topt.initial_capacity = 8192;
  topt.auto_resize = false;
  std::unique_ptr<Server> server;
  ASSERT_TRUE(Server::Create(topt, sopt, &server).ok());
  Manager mgr{durability::DurabilityOptions{}};
  server->AttachDurability(&mgr);

  auto keys = testing::UniqueKeys(1200, 21);
  auto values = testing::SequentialValues(keys.size(), 500);
  uint64_t w = server->Submit(InsertReq(keys, values));
  server->RunUntilIdle();
  Server::Response resp;
  ASSERT_TRUE(server->TakeResponse(w, &resp));
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();

  ASSERT_TRUE(server->table()->CorruptSlotBitForTest(keys[42], /*region=*/1));
  uint32_t bad = 0;
  ASSERT_TRUE(server->table()->Find(keys[42], &bad));
  ASSERT_NE(bad, values[42]) << "flip did not take";

  PumpFullScrubPasses(server.get(), 2);

  // Repaired from the WAL: the acknowledged value is served again, the
  // breaker never opened, and the sticky flag never latched.
  uint32_t got = 0;
  ASSERT_TRUE(server->table()->Find(keys[42], &got));
  EXPECT_EQ(got, values[42]);
  auto stats = server->stats().Capture();
  EXPECT_EQ(stats.scrub_corruption_detected, 1u);
  EXPECT_EQ(stats.scrub_corruption_repaired, 1u);
  EXPECT_EQ(stats.scrub_corruption_unrepairable, 0u);
  EXPECT_FALSE(server->integrity_compromised());
  EXPECT_FALSE(server->read_only());
  EXPECT_EQ(server->table()->stats().Capture().scrub_repaired_from_wal, 1u);
}

TEST(IntegrityEscalation, ErasedKeyRepairLeavesItErased) {
  service::TableServerOptions sopt;
  sopt.scrub_buckets_per_step = 128;
  sopt.resize_on_scrub_violation = false;
  DyCuckooOptions topt;
  topt.initial_capacity = 8192;
  topt.auto_resize = false;
  std::unique_ptr<Server> server;
  ASSERT_TRUE(Server::Create(topt, sopt, &server).ok());
  Manager mgr{durability::DurabilityOptions{}};
  server->AttachDurability(&mgr);

  // Acknowledge insert + erase, then resurrect a corrupted ghost of the
  // key directly in the table (as a fault would): durable truth says
  // "erased", so the scrub's unpublish must stand and count as resolved.
  uint64_t w = server->Submit([&] {
    Server::Request req;
    req.ops.push_back(Server::Op{OpType::kInsert, 111, 1});
    req.ops.push_back(Server::Op{OpType::kErase, 111, 0});
    return req;
  }());
  server->RunUntilIdle();
  Server::Response resp;
  ASSERT_TRUE(server->TakeResponse(w, &resp));
  ASSERT_TRUE(resp.status.ok());
  ASSERT_TRUE(server->table()->Insert(111, 9).ok());
  ASSERT_TRUE(server->table()->CorruptSlotBitForTest(111, /*region=*/1));

  PumpFullScrubPasses(server.get(), 2);
  EXPECT_FALSE(server->table()->Find(111));
  auto stats = server->stats().Capture();
  EXPECT_EQ(stats.scrub_corruption_repaired, 1u);
  EXPECT_EQ(stats.scrub_corruption_unrepairable, 0u);
  EXPECT_FALSE(server->integrity_compromised());
}

TEST(IntegrityEscalation, UnrepairableCorruptionOpensBreakerAndLatches) {
  // No durability attached: nothing to repair from, so ANY detected
  // corruption is unrepairable — writes must stop immediately and the
  // sticky flag must latch for the supervisor.
  service::TableServerOptions sopt;
  sopt.scrub_buckets_per_step = 128;
  sopt.resize_on_scrub_violation = false;
  DyCuckooOptions topt;
  topt.initial_capacity = 8192;
  topt.auto_resize = false;
  std::unique_ptr<Server> server;
  ASSERT_TRUE(Server::Create(topt, sopt, &server).ok());

  auto keys = testing::UniqueKeys(500, 23);
  uint64_t w =
      server->Submit(InsertReq(keys, testing::SequentialValues(keys.size())));
  server->RunUntilIdle();
  Server::Response resp;
  ASSERT_TRUE(server->TakeResponse(w, &resp));
  ASSERT_TRUE(resp.status.ok());

  ASSERT_TRUE(server->table()->CorruptSlotBitForTest(keys[0], /*region=*/1));
  PumpFullScrubPasses(server.get(), 2);

  EXPECT_TRUE(server->integrity_compromised());
  EXPECT_TRUE(server->read_only());
  auto stats = server->stats().Capture();
  EXPECT_EQ(stats.scrub_corruption_detected, 1u);
  EXPECT_EQ(stats.scrub_corruption_unrepairable, 1u);
  EXPECT_EQ(server->table()->stats().Capture().scrub_unrepairable, 1u);

  // Writes are rejected while the breaker cools down; reads still flow.
  uint64_t rejected = server->Submit(InsertReq(keys, keys));
  uint64_t read = server->Submit(FindReq(std::span(keys.data() + 1, 1)));
  server->RunUntilIdle();
  ASSERT_TRUE(server->TakeResponse(rejected, &resp));
  EXPECT_TRUE(resp.status.IsUnavailable()) << resp.status.ToString();
  ASSERT_TRUE(server->TakeResponse(read, &resp));
  EXPECT_TRUE(resp.status.ok());
}

// --- The planted-flip chaos soak ------------------------------------------

struct SoakResult {
  uint64_t planted = 0;
  uint64_t detected = 0;
  uint64_t repaired = 0;
  uint64_t table_digest = 0;
  bool compromised = false;
};

uint64_t TableDigest(const Table& table) {
  auto pairs = table.Dump();
  std::sort(pairs.begin(), pairs.end());
  uint64_t h = 1469598103934665603ull;
  for (const auto& [k, v] : pairs) {
    uint64_t x = (static_cast<uint64_t>(k) << 32) | v;
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// Serve -> plant value flips on acknowledged keys -> keep serving ->
/// one full scrub pass -> verify.  With `plant` false this is the clean
/// control run (zero-false-positive guarantee).
SoakResult RunPlantedFlipSoak(uint64_t seed, bool plant) {
  SoakResult result;
  service::TableServerOptions sopt;
  sopt.scrub_buckets_per_step = 96;
  sopt.resize_on_scrub_violation = false;
  DyCuckooOptions topt;
  topt.initial_capacity = 16 * 1024;
  topt.auto_resize = false;
  std::unique_ptr<Server> server;
  Status st = Server::Create(topt, sopt, &server);
  if (!st.ok()) {
    ADD_FAILURE() << st.ToString();
    return result;
  }
  Manager mgr{durability::DurabilityOptions{}};
  server->AttachDurability(&mgr);

  SplitMix64 rng(seed);
  std::unordered_map<uint32_t, uint32_t> acked;
  std::vector<uint32_t> acked_order;
  std::unordered_set<uint32_t> planted;
  uint32_t next_key = 1;
  for (int round = 0; round < 50; ++round) {
    std::vector<uint32_t> ks, vs;
    for (int i = 0; i < 40; ++i) {
      ks.push_back(next_key++);
      vs.push_back(static_cast<uint32_t>(rng.Next()));
    }
    uint64_t id = server->Submit(InsertReq(ks, vs));
    server->RunUntilIdle();
    Server::Response resp;
    if (!server->TakeResponse(id, &resp) || !resp.status.ok()) {
      ADD_FAILURE() << "soak write failed (seed=" << seed << ")";
      return result;
    }
    for (size_t i = 0; i < ks.size(); ++i) {
      acked[ks[i]] = vs[i];
      acked_order.push_back(ks[i]);
    }
    // Between batches (host-maintenance slot, kernels quiesced): plant a
    // single-bit value flip on a random acknowledged key.
    if (plant && round % 2 == 1) {
      uint32_t victim = acked_order[rng.Next() % acked_order.size()];
      if (planted.insert(victim).second) {
        int bit = static_cast<int>(rng.Next() % 32);
        if (server->table()->CorruptSlotBitForTest(victim, /*region=*/1,
                                                   bit)) {
          ++result.planted;
        } else {
          planted.erase(victim);
        }
      }
    }
  }

  // Detection horizon: one complete scrub pass strictly after the last
  // plant — two pass boundaries from wherever the cursor is now.
  const uint64_t target = server->scrubber().full_passes() + 2;
  uint64_t guard = 0;
  while (server->scrubber().full_passes() < target) {
    server->Step();
    if (++guard > 200000u) {
      ADD_FAILURE() << "scrub pass stalled (seed=" << seed << ")";
      return result;
    }
  }

  auto stats = server->stats().Capture();
  result.detected = stats.scrub_corruption_detected;
  result.repaired = stats.scrub_corruption_repaired;
  result.compromised = server->integrity_compromised();
  result.table_digest = TableDigest(*server->table());

  // No acknowledged key may be served a corrupted value after repair.
  for (const auto& [k, v] : acked) {
    uint32_t got = 0;
    bool found = server->table()->Find(k, &got);
    if (!found || got != v) {
      ADD_FAILURE() << "key " << k << " served wrong/no value after repair "
                    << "(seed=" << seed << ", planted=" << planted.count(k)
                    << ", found=" << found << ", got=" << got
                    << ", want=" << v << ")\n"
                    << server->table()->stats().Capture().ToString();
      return result;
    }
  }
  return result;
}

TEST(IntegritySoak, EveryPlantedFlipDetectedAndRepairedWithinOnePass) {
  const uint64_t seed = SeedFromEnv();
  SCOPED_TRACE(testing::ChaosReproLine("tests/test_integrity", seed));
  SoakResult r = RunPlantedFlipSoak(seed, /*plant=*/true);
  EXPECT_GT(r.planted, 0u);
  EXPECT_EQ(r.detected, r.planted)
      << "100% detection within one scrub pass violated (seed=" << seed
      << ")";
  EXPECT_EQ(r.repaired, r.planted);
  EXPECT_FALSE(r.compromised);
}

TEST(IntegritySoak, CleanRunReportsZeroCorruptedSlots) {
  const uint64_t seed = SeedFromEnv();
  SCOPED_TRACE(testing::ChaosReproLine("tests/test_integrity", seed));
  SoakResult r = RunPlantedFlipSoak(seed, /*plant=*/false);
  EXPECT_EQ(r.planted, 0u);
  EXPECT_EQ(r.detected, 0u)
      << "false positive: clean soak reported corruption (seed=" << seed
      << ")";
}

TEST(IntegritySoak, SameSeedReplaysBitIdentically) {
  const uint64_t seed = SeedFromEnv();
  SCOPED_TRACE(testing::ChaosReproLine("tests/test_integrity", seed));
  SoakResult a = RunPlantedFlipSoak(seed, /*plant=*/true);
  SoakResult b = RunPlantedFlipSoak(seed, /*plant=*/true);
  EXPECT_EQ(a.planted, b.planted);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.repaired, b.repaired);
  EXPECT_EQ(a.table_digest, b.table_digest);
}

// --- Sharded: memory-fault campaign, quarantine, heal ---------------------

TEST(IntegritySharded, MemoryFaultCampaignQuarantinesOnlyTheStruckShard) {
  const uint64_t seed = SeedFromEnv();
  const uint32_t n = ShardsFromEnv();
  const uint32_t target = static_cast<uint32_t>(seed % n);
  SCOPED_TRACE(testing::ChaosReproLine("tests/test_integrity", seed) +
               " target=" + std::to_string(target));

  gpusim::DeviceArena arena{0};
  gpusim::Grid grid{1};
  DyCuckooOptions topt;
  topt.arena = &arena;
  topt.grid = &grid;
  topt.initial_capacity = 16 * 1024;
  topt.auto_resize = false;
  Sharded::Options options;
  options.num_shards = n;
  options.shard.scrub_buckets_per_step = 64;
  options.durability.checkpoint_wal_bytes = 0;
  options.durability.checkpoint_wal_records = 64;
  options.supervisor.heal_backoff_ticks = 1 << 20;  // heal on request only
  std::unique_ptr<Sharded> srv;
  ASSERT_TRUE(Sharded::Create(topt, options, &srv).ok());

  // Acknowledge a spread of keys across every shard.
  SplitMix64 rng(seed);
  std::unordered_map<uint32_t, uint32_t> acked;
  for (int round = 0; round < 12; ++round) {
    Sharded::Request req;
    for (int i = 0; i < 64; ++i) {
      uint32_t k = static_cast<uint32_t>(rng.Next() % 100000) + 1;
      uint32_t v = static_cast<uint32_t>(rng.Next());
      req.ops.push_back(Sharded::Op{OpType::kInsert, k, v});
      acked[k] = v;
    }
    uint64_t id = srv->Submit(std::move(req));
    srv->RunUntilIdle();
    Sharded::Response resp;
    ASSERT_TRUE(srv->TakeResponse(id, &resp));
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  }

  // Memory-fault campaign scoped to ONE shard's kv arrays (keys, values
  // and tags; locks are outside the guarded region).  Key-region and
  // empty-slot hits are deliberately unattributable, so escalation to
  // quarantine is the expected end state.
  gpusim::FaultInjectorConfig cfg;
  cfg.seed = seed;
  cfg.mem_faults_per_sweep = 8;
  cfg.mem_tag_filter = durability::ShardScope(target) + topt.memory_tag +
                       "/kv";
  // The CI memory-fault lane (DYCUCKOO_MEMFAULTS=1) runs a heavier
  // campaign: several sweeps with serving in between, so repairs,
  // re-corruption, and escalation interleave the way a degrading DIMM
  // would present in production.
  const bool heavy = std::getenv("DYCUCKOO_MEMFAULTS") != nullptr;
  const int sweeps = heavy ? 4 : 1;
  uint64_t injected = 0;
  {
    gpusim::ScopedFaultInjection scoped(cfg);
    for (int c = 0; c < sweeps; ++c) {
      injected += arena.InjectMemoryFaults().faults_injected;
      for (int i = 0; i < 40 && srv->supervisor().serving(target); ++i) {
        srv->Step();
      }
    }
    EXPECT_GT(injected, 0u);

    // The sweep's flips land wherever the seed says — a flip on a live,
    // durably-logged value is repaired in place and never escalates.  To
    // make the quarantine outcome seed-independent, also plant one pair
    // the durable lineage has never heard of and corrupt it: the key is
    // attributable, but PointLookup answers kAbsent, so the shard must
    // degrade.  (Skipped if the sweep already forced the quarantine.)
    constexpr uint32_t kGhostKey = 0x7FFFFFFFu;  // outside the acked range
    if (srv->supervisor().serving(target)) {
      ASSERT_TRUE(
          srv->shard_server(target)->table()->Insert(kGhostKey, 1).ok());
      ASSERT_TRUE(srv->shard_server(target)->table()->CorruptSlotBitForTest(
          kGhostKey, /*region=*/1));
    }

    // Serve until the scrubber walks the struck shard and the supervisor
    // quarantines it.
    uint64_t guard = 0;
    while (srv->supervisor().serving(target)) {
      srv->Step();
      ASSERT_LT(++guard, 300000u) << "corruption never escalated";
    }
  }
  // Machine-readable quarantine cause: DataLoss + corruption detail.
  Status fault = srv->supervisor().fault(target);
  EXPECT_TRUE(fault.IsDataLoss()) << fault.ToString();
  ASSERT_NE(fault.FindDetail("corruption"), nullptr);
  EXPECT_EQ(*fault.FindDetail("corruption"), "unrepairable");
  ASSERT_NE(fault.FindDetail("shard"), nullptr);
  EXPECT_EQ(*fault.FindDetail("shard"), std::to_string(target));
  // Fault isolation: every other shard still serves.
  for (uint32_t s = 0; s < n; ++s) {
    if (s != target) {
      EXPECT_TRUE(srv->supervisor().serving(s)) << "shard " << s;
      EXPECT_FALSE(srv->shard_server(s)->integrity_compromised());
    }
  }

  // Heal: rebuild the struck shard from its durable lineage.
  srv->RequestHealNow(target);
  uint64_t guard = 0;
  while (!srv->supervisor().serving(target)) {
    srv->Step();
    ASSERT_LT(++guard, 300000u) << "heal never completed";
  }

  // Every acknowledged key everywhere — including the healed shard —
  // serves its acknowledged value: repair-from-durability is exact.
  for (const auto& [k, v] : acked) {
    uint32_t shard = srv->router().ShardOf(k);
    uint32_t got = 0;
    ASSERT_TRUE(srv->shard_server(shard)->table()->Find(k, &got))
        << "key " << k << " lost (shard " << shard << ")";
    ASSERT_EQ(got, v) << "key " << k << " corrupted after heal";
  }
}

// --- Stats digest (regression for the monitoring surface) -----------------

TEST(IntegrityStats, DigestIncludesCorruptionCounters) {
  TableStats stats;
  stats.scrub_corrupted_slots.store(3);
  stats.scrub_repaired_from_wal.store(2);
  stats.scrub_unrepairable.store(1);
  std::string digest = stats.Capture().ToString();
  EXPECT_NE(digest.find("scrub_corrupted_slots=3"), std::string::npos)
      << digest;
  EXPECT_NE(digest.find("scrub_repaired_from_wal=2"), std::string::npos);
  EXPECT_NE(digest.find("scrub_unrepairable=1"), std::string::npos);
}

}  // namespace
}  // namespace dycuckoo
