// Cross-module integration tests: the full dynamic workload driven through
// every contender via the uniform interface, checked against a host model,
// plus the paper's headline memory claim in miniature.

#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/cudpp_cuckoo.h"
#include "baselines/dycuckoo_adapter.h"
#include "baselines/megakv.h"
#include "baselines/slab_hash.h"
#include "baselines/table_interface.h"
#include "workload/dataset.h"
#include "workload/dynamic_workload.h"

namespace dycuckoo {
namespace {

using workload::BuildDynamicWorkload;
using workload::Dataset;
using workload::DatasetId;
using workload::DynamicBatch;
using workload::DynamicWorkloadOptions;
using workload::MakeDataset;

std::vector<DynamicBatch> SmallWorkload(DatasetId id = DatasetId::kTwitter,
                                        double delete_ratio = 0.2) {
  Dataset d;
  Status st = MakeDataset(id, 0.002, 17, &d);
  EXPECT_TRUE(st.ok());
  DynamicWorkloadOptions o;
  o.batch_size = 10000;
  o.delete_ratio = delete_ratio;
  std::vector<DynamicBatch> batches;
  st = BuildDynamicWorkload(d, o, &batches);
  EXPECT_TRUE(st.ok());
  return batches;
}

/// Runs the workload through `table`, mirroring it into a host model and
/// checking sizes after every batch and full contents at the end.
///
/// Insert batches are deduplicated first: a batch containing the same key
/// twice has racy last-writer semantics on the device (as in the paper), so
/// the deterministic harness keeps only the last occurrence.
void RunDifferential(HashTableInterface* table,
                     const std::vector<DynamicBatch>& batches) {
  std::unordered_map<uint32_t, uint32_t> model;
  for (size_t bi = 0; bi < batches.size(); ++bi) {
    const auto& raw = batches[bi];
    DynamicBatch b = raw;
    {
      std::unordered_map<uint32_t, uint32_t> last;
      for (size_t i = 0; i < raw.insert_keys.size(); ++i) {
        last[raw.insert_keys[i]] = raw.insert_values[i];
      }
      b.insert_keys.clear();
      b.insert_values.clear();
      for (const auto& [k, v] : last) {
        b.insert_keys.push_back(k);
        b.insert_values.push_back(v);
      }
    }
    // Deterministic-semantics split: update-only batches perform no
    // evictions, so resident keys cannot be duplicated mid-flight.
    std::vector<uint32_t> nk, nv, uk, uv;
    for (size_t i = 0; i < b.insert_keys.size(); ++i) {
      if (model.count(b.insert_keys[i])) {
        uk.push_back(b.insert_keys[i]);
        uv.push_back(b.insert_values[i]);
      } else {
        nk.push_back(b.insert_keys[i]);
        nv.push_back(b.insert_values[i]);
      }
      model[b.insert_keys[i]] = b.insert_values[i];
    }
    ASSERT_TRUE(table->BulkInsert(nk, nv).ok())
        << table->name() << " batch " << bi;
    ASSERT_TRUE(table->BulkInsert(uk, uv).ok())
        << table->name() << " batch " << bi;
    std::vector<uint8_t> found(b.find_keys.size());
    std::vector<uint32_t> out(b.find_keys.size());
    table->BulkFind(b.find_keys, out.data(), found.data());
    for (size_t i = 0; i < b.find_keys.size(); ++i) {
      auto it = model.find(b.find_keys[i]);
      ASSERT_EQ(found[i] != 0, it != model.end())
          << table->name() << " find mismatch batch " << bi;
      if (found[i]) ASSERT_EQ(out[i], it->second);
    }
    uint64_t erased = 0;
    ASSERT_TRUE(table->BulkErase(b.delete_keys, &erased).ok());
    uint64_t model_erased = 0;
    for (uint32_t k : b.delete_keys) model_erased += model.erase(k);
    ASSERT_EQ(erased, model_erased) << table->name() << " batch " << bi;
    ASSERT_EQ(table->size(), model.size()) << table->name() << " batch " << bi;
  }
}

TEST(IntegrationTest, DyCuckooSurvivesFullDynamicWorkload) {
  std::unique_ptr<DyCuckooAdapter> t;
  DyCuckooOptions o;
  o.initial_capacity = 4096;
  ASSERT_TRUE(DyCuckooAdapter::Create(o, &t).ok());
  RunDifferential(t.get(), SmallWorkload());
  EXPECT_TRUE(t->table()->Validate().ok());
}

TEST(IntegrationTest, MegaKvSurvivesFullDynamicWorkload) {
  std::unique_ptr<MegaKvTable> t;
  MegaKvOptions o;
  o.initial_capacity = 4096;
  ASSERT_TRUE(MegaKvTable::Create(o, &t).ok());
  RunDifferential(t.get(), SmallWorkload());
}

TEST(IntegrationTest, SlabHashSurvivesFullDynamicWorkload) {
  std::unique_ptr<SlabHashTable> t;
  SlabHashOptions o;
  o.initial_capacity = 4096;
  ASSERT_TRUE(SlabHashTable::Create(o, &t).ok());
  RunDifferential(t.get(), SmallWorkload());
}

TEST(IntegrationTest, DeleteHeavyWorkloadAllContenders) {
  auto batches = SmallWorkload(DatasetId::kCompany, /*delete_ratio=*/0.5);
  {
    std::unique_ptr<DyCuckooAdapter> t;
    DyCuckooOptions o;
    o.initial_capacity = 4096;
    ASSERT_TRUE(DyCuckooAdapter::Create(o, &t).ok());
    RunDifferential(t.get(), batches);
  }
  {
    std::unique_ptr<SlabHashTable> t;
    SlabHashOptions o;
    o.initial_capacity = 4096;
    ASSERT_TRUE(SlabHashTable::Create(o, &t).ok());
    RunDifferential(t.get(), batches);
  }
}

TEST(IntegrationTest, DyCuckooBoundsFilledFactorWhereSlabDoesNot) {
  // Miniature of the paper's Figure 11: run a delete-heavy timeline and
  // compare end-state filled factors.
  auto batches = SmallWorkload(DatasetId::kCompany, /*delete_ratio=*/0.5);

  std::unique_ptr<DyCuckooAdapter> dy;
  DyCuckooOptions dyo;
  dyo.initial_capacity = 4096;
  ASSERT_TRUE(DyCuckooAdapter::Create(dyo, &dy).ok());

  std::unique_ptr<SlabHashTable> slab;
  SlabHashOptions so;
  so.initial_capacity = 4096;
  ASSERT_TRUE(SlabHashTable::Create(so, &slab).ok());

  for (const auto& b : batches) {
    ASSERT_TRUE(dy->BulkInsert(b.insert_keys, b.insert_values).ok());
    ASSERT_TRUE(slab->BulkInsert(b.insert_keys, b.insert_values).ok());
    ASSERT_TRUE(dy->BulkErase(b.delete_keys).ok());
    ASSERT_TRUE(slab->BulkErase(b.delete_keys).ok());
  }
  ASSERT_EQ(dy->size(), slab->size());
  if (dy->size() > 0) {
    // DyCuckoo holds theta in [alpha, beta] (or sits at minimum footprint);
    // SlabHash has decayed because tombstones pin pool memory.
    EXPECT_GT(dy->filled_factor(), slab->filled_factor());
    EXPECT_LT(dy->memory_bytes(), slab->memory_bytes());
  }
}

TEST(IntegrationTest, MultipleTablesDrivenByConcurrentHostThreads) {
  // Independent tables sharing the global grid, each driven by its own
  // host thread (the multi-structure coexistence scenario from the paper's
  // introduction).
  constexpr int kTables = 3;
  std::vector<std::unique_ptr<DyCuckooAdapter>> tables(kTables);
  for (int i = 0; i < kTables; ++i) {
    DyCuckooOptions o;
    o.initial_capacity = 1024;
    o.seed = 100 + i;
    ASSERT_TRUE(DyCuckooAdapter::Create(o, &tables[i]).ok());
  }
  std::vector<std::thread> hosts;
  std::atomic<int> failures{0};
  for (int i = 0; i < kTables; ++i) {
    hosts.emplace_back([&, i] {
      std::vector<uint32_t> keys, values;
      for (uint32_t k = 0; k < 20000; ++k) {
        keys.push_back(k * kTables + i + 1);
        values.push_back(k);
      }
      if (!tables[i]->BulkInsert(keys, values).ok()) failures.fetch_add(1);
      std::vector<uint32_t> out(keys.size());
      std::vector<uint8_t> found(keys.size());
      tables[i]->BulkFind(keys, out.data(), found.data());
      for (size_t j = 0; j < keys.size(); ++j) {
        if (!found[j] || out[j] != values[j]) {
          failures.fetch_add(1);
          break;
        }
      }
      if (!tables[i]->BulkErase(keys).ok()) failures.fetch_add(1);
    });
  }
  for (auto& h : hosts) h.join();
  EXPECT_EQ(failures.load(), 0);
  for (auto& t : tables) EXPECT_EQ(t->size(), 0u);
}

TEST(IntegrationTest, InterfacePolymorphismSmoke) {
  // All four contenders behind the base pointer, one loop.
  std::vector<std::unique_ptr<HashTableInterface>> tables;
  {
    std::unique_ptr<DyCuckooAdapter> t;
    ASSERT_TRUE(DyCuckooAdapter::Create(DyCuckooOptions{}, &t).ok());
    tables.push_back(std::move(t));
  }
  {
    std::unique_ptr<MegaKvTable> t;
    ASSERT_TRUE(MegaKvTable::Create(MegaKvOptions{}, &t).ok());
    tables.push_back(std::move(t));
  }
  {
    std::unique_ptr<SlabHashTable> t;
    ASSERT_TRUE(SlabHashTable::Create(SlabHashOptions{}, &t).ok());
    tables.push_back(std::move(t));
  }
  {
    std::unique_ptr<CudppCuckooTable> t;
    CudppOptions o;
    o.capacity_slots = 1 << 15;
    o.expected_items = 10000;
    ASSERT_TRUE(CudppCuckooTable::Create(o, &t).ok());
    tables.push_back(std::move(t));
  }

  std::vector<uint32_t> keys, values;
  for (uint32_t i = 1; i <= 10000; ++i) {
    keys.push_back(i * 3);
    values.push_back(i);
  }
  for (auto& t : tables) {
    ASSERT_TRUE(t->BulkInsert(keys, values).ok()) << t->name();
    EXPECT_EQ(t->size(), keys.size()) << t->name();
    std::vector<uint32_t> out(keys.size());
    std::vector<uint8_t> found(keys.size());
    t->BulkFind(keys, out.data(), found.data());
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(found[i]) << t->name();
      ASSERT_EQ(out[i], values[i]) << t->name();
    }
    if (t->supports_erase()) {
      uint64_t erased = 0;
      ASSERT_TRUE(t->BulkErase(keys, &erased).ok()) << t->name();
      EXPECT_EQ(erased, keys.size()) << t->name();
      EXPECT_EQ(t->size(), 0u) << t->name();
    } else {
      EXPECT_TRUE(t->BulkErase(keys).IsNotSupported()) << t->name();
    }
  }
}

}  // namespace
}  // namespace dycuckoo
