#include "common/status.h"

#include <gtest/gtest.h>

namespace dycuckoo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status st = Status::InvalidArgument("bad d");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad d");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad d");
}

TEST(StatusTest, AllCodesRoundTrip) {
  EXPECT_TRUE(Status::CapacityExceeded("x").IsCapacityExceeded());
  EXPECT_TRUE(Status::InsertionFailure("x").IsInsertionFailure());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::OutOfMemory("x").IsOutOfMemory());
}

TEST(StatusTest, CodeNamesInToString) {
  EXPECT_NE(Status::CapacityExceeded("m").ToString().find("CapacityExceeded"),
            std::string::npos);
  EXPECT_NE(Status::InsertionFailure("m").ToString().find("InsertionFailure"),
            std::string::npos);
  EXPECT_NE(Status::NotSupported("m").ToString().find("NotSupported"),
            std::string::npos);
  EXPECT_NE(Status::OutOfMemory("m").ToString().find("OutOfMemory"),
            std::string::npos);
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::Internal("a"), Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::OK());
}

TEST(StatusTest, EmptyMessageOmitsColon) {
  EXPECT_EQ(Status::Internal("").ToString(), "Internal");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    DYCUCKOO_RETURN_NOT_OK(Status::InvalidArgument("inner"));
    return Status::OK();
  };
  Status st = fails();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "inner");
}

TEST(StatusTest, ReturnNotOkMacroPassesThroughOk) {
  auto succeeds = []() -> Status {
    DYCUCKOO_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_TRUE(succeeds().IsInternal());
}

}  // namespace
}  // namespace dycuckoo
