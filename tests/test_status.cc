#include "common/status.h"

#include <gtest/gtest.h>

namespace dycuckoo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status st = Status::InvalidArgument("bad d");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad d");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad d");
}

TEST(StatusTest, AllCodesRoundTrip) {
  EXPECT_TRUE(Status::CapacityExceeded("x").IsCapacityExceeded());
  EXPECT_TRUE(Status::InsertionFailure("x").IsInsertionFailure());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::OutOfMemory("x").IsOutOfMemory());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
}

TEST(StatusTest, EveryFactoryMatchesItsCodeExactly) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::OK(), StatusCode::kOk},
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument},
      {Status::CapacityExceeded("m"), StatusCode::kCapacityExceeded},
      {Status::InsertionFailure("m"), StatusCode::kInsertionFailure},
      {Status::NotSupported("m"), StatusCode::kNotSupported},
      {Status::Internal("m"), StatusCode::kInternal},
      {Status::OutOfMemory("m"), StatusCode::kOutOfMemory},
      {Status::DeadlineExceeded("m"), StatusCode::kDeadlineExceeded},
      {Status::ResourceExhausted("m"), StatusCode::kResourceExhausted},
      {Status::Unavailable("m"), StatusCode::kUnavailable},
      {Status::DataLoss("m"), StatusCode::kDataLoss},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(c.status.code(), c.code);
    // Exactly one of the predicates fires for each non-OK code.
    int hits = c.status.IsInvalidArgument() + c.status.IsCapacityExceeded() +
               c.status.IsInsertionFailure() + c.status.IsNotSupported() +
               c.status.IsInternal() + c.status.IsOutOfMemory() +
               c.status.IsDeadlineExceeded() + c.status.IsResourceExhausted() +
               c.status.IsUnavailable() + c.status.IsDataLoss();
    EXPECT_EQ(hits, c.status.ok() ? 0 : 1) << c.status.ToString();
    if (!c.status.ok()) EXPECT_EQ(c.status.message(), "m");
  }
}

TEST(StatusTest, CodeNamesInToString) {
  EXPECT_NE(Status::CapacityExceeded("m").ToString().find("CapacityExceeded"),
            std::string::npos);
  EXPECT_NE(Status::InsertionFailure("m").ToString().find("InsertionFailure"),
            std::string::npos);
  EXPECT_NE(Status::NotSupported("m").ToString().find("NotSupported"),
            std::string::npos);
  EXPECT_NE(Status::OutOfMemory("m").ToString().find("OutOfMemory"),
            std::string::npos);
  EXPECT_NE(Status::DeadlineExceeded("m").ToString().find("DeadlineExceeded"),
            std::string::npos);
  EXPECT_NE(
      Status::ResourceExhausted("m").ToString().find("ResourceExhausted"),
      std::string::npos);
  EXPECT_NE(Status::Unavailable("m").ToString().find("Unavailable"),
            std::string::npos);
  EXPECT_NE(Status::DataLoss("m").ToString().find("DataLoss"),
            std::string::npos);
}

TEST(StatusTest, CopyAndMovePreserveCodeAndMessage) {
  Status st = Status::Unavailable("breaker open");
  Status copy = st;
  EXPECT_TRUE(copy.IsUnavailable());
  EXPECT_EQ(copy.message(), "breaker open");
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsUnavailable());
  EXPECT_EQ(moved.message(), "breaker open");
}

TEST(StatusTest, DataLossCopyAndMovePreserveCodeAndMessage) {
  Status st = Status::DataLoss("CRC mismatch at lsn 7");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(st.ToString(), "DataLoss: CRC mismatch at lsn 7");
  Status copy = st;
  EXPECT_TRUE(copy.IsDataLoss());
  EXPECT_EQ(copy.message(), "CRC mismatch at lsn 7");
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsDataLoss());
  EXPECT_EQ(moved.message(), "CRC mismatch at lsn 7");
  // DataLoss is distinct from the codes it could be confused with.
  EXPECT_FALSE(copy.IsInternal());
  EXPECT_FALSE(copy.IsInvalidArgument());
  EXPECT_FALSE(Status::DataLoss("a") == Status::Internal("a"));
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::Internal("a"), Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::OK());
}

TEST(StatusTest, EmptyMessageOmitsColon) {
  EXPECT_EQ(Status::Internal("").ToString(), "Internal");
}

TEST(StatusTest, DetailsAreMachineReadableAndChainable) {
  Status st = Status::Unavailable("shard 3 quarantined")
                  .WithDetail("shard", "3")
                  .WithDetail("retry_after_ticks", "128")
                  .WithDetail("executed", "never");
  EXPECT_TRUE(st.IsUnavailable());
  ASSERT_NE(st.FindDetail("shard"), nullptr);
  EXPECT_EQ(*st.FindDetail("shard"), "3");
  ASSERT_NE(st.FindDetail("retry_after_ticks"), nullptr);
  EXPECT_EQ(*st.FindDetail("retry_after_ticks"), "128");
  EXPECT_EQ(st.FindDetail("absent"), nullptr);
  // Details ride along through copies and moves.
  Status copy = st;
  ASSERT_NE(copy.FindDetail("executed"), nullptr);
  EXPECT_EQ(*copy.FindDetail("executed"), "never");
  Status moved = std::move(st);
  ASSERT_NE(moved.FindDetail("shard"), nullptr);
  // ...and render in ToString for humans.
  EXPECT_NE(moved.ToString().find("shard=3"), std::string::npos)
      << moved.ToString();
}

TEST(StatusTest, RewrittenDetailShadowsOlderValue) {
  Status st = Status::Unavailable("x").WithDetail("executed", "never");
  Status refined = st.WithDetail("executed", "uncertain");
  // Newest write wins on lookup; the original status is untouched
  // (copy-on-write, so no shared mutation).
  EXPECT_EQ(*refined.FindDetail("executed"), "uncertain");
  EXPECT_EQ(*st.FindDetail("executed"), "never");
}

TEST(StatusTest, DetailsDoNotAffectEqualityOrPredicates) {
  Status plain = Status::DataLoss("wal");
  Status detailed = plain.WithDetail("segment", "wal-00002-of-00004.seg");
  EXPECT_EQ(plain, detailed);  // equality is code-only
  EXPECT_TRUE(detailed.IsDataLoss());
  EXPECT_EQ(detailed.message(), "wal");
  EXPECT_TRUE(Status::OK().FindDetail("anything") == nullptr);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    DYCUCKOO_RETURN_NOT_OK(Status::InvalidArgument("inner"));
    return Status::OK();
  };
  Status st = fails();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "inner");
}

// The serving layer's uniform rejection contract: every Unavailable a
// client can see — shard quarantine (ShardedTableServer::ShardUnavailable)
// and reshard write-window blocking (ReshardBlocked) — carries the SAME
// three machine-readable keys, so one client retry loop handles both.
// A reshard rejection adds `reshard_chunk` for observability; it must
// never replace the uniform keys.  tests/test_resharder.cc asserts the
// live server mints exactly these shapes; this test pins the vocabulary
// itself so a key rename breaks loudly at the Status level too.
TEST(StatusTest, UniformUnavailableRejectionContract) {
  // Quarantine-shaped rejection: op was in flight when the shard died.
  const Status quarantine = Status::Unavailable("shard 2 quarantined")
                                .WithDetail("shard", "2")
                                .WithDetail("retry_after_ticks", "4096")
                                .WithDetail("executed", "uncertain");
  // Reshard-shaped rejection: front-door refusal of a write to the one
  // migrating chunk.  Same keys, plus the chunk.
  const Status reshard =
      Status::Unavailable("shard 0 migrating chunk 17 (reshard write window)")
          .WithDetail("shard", "0")
          .WithDetail("retry_after_ticks", "1")
          .WithDetail("executed", "never")
          .WithDetail("reshard_chunk", "17");

  // One retry loop, written against the uniform keys, serves both.
  for (const Status* st : {&quarantine, &reshard}) {
    EXPECT_TRUE(st->IsUnavailable());
    ASSERT_NE(st->FindDetail("shard"), nullptr) << st->ToString();
    ASSERT_NE(st->FindDetail("retry_after_ticks"), nullptr)
        << st->ToString();
    ASSERT_NE(st->FindDetail("executed"), nullptr) << st->ToString();
    // retry_after_ticks is a decimal tick count a client can sleep on.
    const std::string& retry = *st->FindDetail("retry_after_ticks");
    EXPECT_FALSE(retry.empty());
    EXPECT_EQ(retry.find_first_not_of("0123456789"), std::string::npos)
        << retry;
    // executed has a closed vocabulary: "never" means safe to re-drive
    // immediately after retry-after; "uncertain" means idempotent
    // re-execution is required (and safe).
    const std::string& executed = *st->FindDetail("executed");
    EXPECT_TRUE(executed == "never" || executed == "uncertain") << executed;
  }
  // The extra observability key is reshard-only.
  EXPECT_EQ(quarantine.FindDetail("reshard_chunk"), nullptr);
  ASSERT_NE(reshard.FindDetail("reshard_chunk"), nullptr);
  EXPECT_EQ(*reshard.FindDetail("reshard_chunk"), "17");
  // A front-door rejection ("never") promises no side effects, which is
  // what lets a client re-submit verbatim without idempotence analysis.
  EXPECT_EQ(*reshard.FindDetail("executed"), "never");
}

TEST(StatusTest, ReturnNotOkMacroPassesThroughOk) {
  auto succeeds = []() -> Status {
    DYCUCKOO_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_TRUE(succeeds().IsInternal());
}

}  // namespace
}  // namespace dycuckoo
