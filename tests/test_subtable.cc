#include "dycuckoo/subtable.h"

#include <cstdint>

#include <gtest/gtest.h>

#include "gpusim/device_arena.h"

namespace dycuckoo {
namespace {

using Sub32 = Subtable<uint32_t, uint32_t>;
using Sub64 = Subtable<uint64_t, uint64_t>;

TEST(BucketTraitsTest, SlotGeometryFollowsKeyWidth) {
  EXPECT_EQ(BucketTraits<uint32_t>::kSlotsPerBucket, 32);  // paper Figure 2
  EXPECT_EQ(BucketTraits<uint64_t>::kSlotsPerBucket, 16);
}

TEST(BucketTraitsTest, EmptyKeyIsMaxValue) {
  EXPECT_EQ(BucketTraits<uint32_t>::kEmptyKey, 0xffffffffu);
  EXPECT_EQ(BucketTraits<uint64_t>::kEmptyKey, ~uint64_t{0});
}

class SubtableTest : public ::testing::Test {
 protected:
  gpusim::DeviceArena arena_{64 << 20};
};

TEST_F(SubtableTest, ConstructionInitializesEmpty) {
  Sub32 t(16, 42, &arena_, "test");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.num_buckets(), 16u);
  EXPECT_EQ(t.num_slots(), 16u * 32);
  EXPECT_EQ(t.size(), 0u);
  for (uint64_t b = 0; b < t.num_buckets(); ++b) {
    for (int s = 0; s < Sub32::kSlots; ++s) {
      EXPECT_EQ(t.KeyAt(b, s), Sub32::kEmptyKey);
    }
  }
}

TEST_F(SubtableTest, StoreAndLoadSlots) {
  Sub32 t(4, 1, &arena_, "test");
  t.StoreSlot(2, 5, 1234, 5678);
  EXPECT_EQ(t.KeyAt(2, 5), 1234u);
  EXPECT_EQ(t.ValueAt(2, 5), 5678u);
  t.StoreValue(2, 5, 999);
  EXPECT_EQ(t.ValueAt(2, 5), 999u);
}

TEST_F(SubtableTest, BucketIndexWithinRangeAndDeterministic) {
  Sub32 t(64, 7, &arena_, "test");
  for (uint32_t k = 0; k < 10000; ++k) {
    uint64_t b = t.BucketIndex(k);
    EXPECT_LT(b, 64u);
    EXPECT_EQ(b, t.BucketIndex(k));
  }
}

TEST_F(SubtableTest, UpsizeSplitIdentity) {
  // Doubling the bucket count relocates a key either to the same index or
  // to index + n — the invariant behind the conflict-free upsize kernel.
  Sub32 small(64, 99, &arena_, "test");
  Sub32 big(128, 99, &arena_, "test");
  for (uint32_t k = 0; k < 20000; ++k) {
    uint64_t b_small = small.BucketIndex(k);
    uint64_t b_big = big.BucketIndex(k);
    EXPECT_TRUE(b_big == b_small || b_big == b_small + 64)
        << "key " << k << " small " << b_small << " big " << b_big;
  }
}

TEST_F(SubtableTest, SizeCounter) {
  Sub32 t(4, 1, &arena_, "test");
  t.AddSize(5);
  EXPECT_EQ(t.size(), 5u);
  t.AddSize(-2);
  EXPECT_EQ(t.size(), 3u);
  t.SetSize(100);
  EXPECT_EQ(t.size(), 100u);
  EXPECT_DOUBLE_EQ(t.filled_factor(), 100.0 / (4 * 32));
}

TEST_F(SubtableTest, CasKeySemantics) {
  Sub32 t(4, 1, &arena_, "test");
  t.StoreSlot(0, 0, 10, 20);
  EXPECT_FALSE(t.CasKey(0, 0, 11, Sub32::kEmptyKey));  // wrong expected
  EXPECT_EQ(t.KeyAt(0, 0), 10u);
  EXPECT_TRUE(t.CasKey(0, 0, 10, Sub32::kEmptyKey));
  EXPECT_EQ(t.KeyAt(0, 0), Sub32::kEmptyKey);
}

TEST_F(SubtableTest, MoveTransfersOwnership) {
  uint64_t before = arena_.used_bytes();
  Sub32 a(8, 3, &arena_, "test");
  a.StoreSlot(1, 1, 7, 8);
  a.AddSize(1);
  uint64_t with_table = arena_.used_bytes();
  EXPECT_GT(with_table, before);

  Sub32 b(std::move(a));
  EXPECT_EQ(b.KeyAt(1, 1), 7u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.num_buckets(), 8u);
  EXPECT_EQ(a.num_buckets(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(arena_.used_bytes(), with_table);  // no double ownership

  Sub32 c(4, 9, &arena_, "test");
  c = std::move(b);
  EXPECT_EQ(c.KeyAt(1, 1), 7u);
  EXPECT_EQ(c.num_buckets(), 8u);
}

TEST_F(SubtableTest, DestructionReleasesMemory) {
  uint64_t before = arena_.used_bytes();
  {
    Sub32 t(32, 1, &arena_, "test");
    EXPECT_GT(arena_.used_bytes(), before);
  }
  EXPECT_EQ(arena_.used_bytes(), before);
}

TEST_F(SubtableTest, AllocationFailureReportsNotOk) {
  gpusim::DeviceArena tiny(128);
  Sub32 t(1024, 1, &tiny, "test");
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(tiny.used_bytes(), 0u);  // rolled back
}

TEST_F(SubtableTest, MemoryBytesMatchesGeometry) {
  Sub32 t(16, 1, &arena_, "test");
  // 16 buckets * (32 slots * (4+4) kv bytes + 32 integrity-tag bytes +
  // lock word).
  EXPECT_EQ(t.memory_bytes(),
            16u * (32 * 8 + 32 + sizeof(gpusim::BucketLock)));
}

TEST_F(SubtableTest, LockPerBucketIndependent) {
  Sub32 t(4, 1, &arena_, "test");
  EXPECT_TRUE(t.lock(0).TryLock());
  EXPECT_TRUE(t.lock(1).TryLock());  // other bucket unaffected
  EXPECT_FALSE(t.lock(0).TryLock());
  t.lock(0).Unlock();
  t.lock(1).Unlock();
}

TEST_F(SubtableTest, SnapshotKeysMatchesSlotLoads) {
  Sub32 t(4, 7, &arena_, "test");
  for (int s = 0; s < Sub32::kSlots; s += 3) {
    t.StoreSlot(2, s, 100 + s, 200 + s);
  }
  uint32_t snap[Sub32::kSlots];
  t.SnapshotKeys(2, snap);
  for (int s = 0; s < Sub32::kSlots; ++s) {
    EXPECT_EQ(snap[s], t.KeyAt(2, s)) << "slot " << s;
  }
}

TEST_F(SubtableTest, SnapshotValuesMatchesSlotLoads) {
  Sub32 t(4, 7, &arena_, "test");
  for (int s = 0; s < Sub32::kSlots; ++s) {
    t.StoreSlot(1, s, s, 1000 + s);
  }
  uint32_t snap[Sub32::kSlots];
  t.SnapshotValues(1, snap);
  for (int s = 0; s < Sub32::kSlots; ++s) {
    EXPECT_EQ(snap[s], 1000u + s);
  }
}

TEST_F(SubtableTest, SixtyFourBitVariant) {
  Sub64 t(8, 5, &arena_, "test");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.num_slots(), 8u * 16);
  uint64_t big_key = 0x123456789abcdef0ull;
  uint64_t b = t.BucketIndex(big_key);
  t.StoreSlot(b, 3, big_key, 42);
  EXPECT_EQ(t.KeyAt(b, 3), big_key);
  EXPECT_EQ(t.ValueAt(b, 3), 42u);
}

}  // namespace
}  // namespace dycuckoo
