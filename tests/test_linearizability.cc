// History-based linearizability checker for concurrent INSERT/FIND/DELETE.
//
// Each BulkExecute batch is one concurrency window: every op in it is
// concurrent with every other (invocation at the batch's start tick,
// response at its end tick, measured on the VirtualClock), while
// consecutive batches are strictly ordered.  A per-key shadow state tracks
// the SET of values the key may hold after each window — every
// linearization of a window ends with one of the window's writes on that
// key, or with the prior state when the window wrote nothing.  A FIND is
// justified by some linearization iff:
//
//   * hit v: v is a possible pre-window value, or the value of an INSERT
//     of the key running concurrently in the window;
//   * miss: the key was possibly absent before the window, or a DELETE of
//     it ran concurrently in the window.
//
// The hard case is the tentpole guarantee (docs/robustness.md
// "Consistency guarantees"): a key that was DEFINITELY resident before the
// window, with no DELETE of it inside, MUST be found — no matter how many
// concurrent eviction chains are displacing pairs around it.  Every
// inserted value is globally unique across the run, so a hit is traceable
// to the exact INSERT that produced it and cross-key value corruption is
// detected as an unjustifiable hit.
//
// The suite runs the checker twice:
//  * normal mode (8 seeds; also under ASan/TSan/DYCUCKOO_RACECHECK=1 in
//    CI): zero violations allowed, and the handoff machinery must have
//    been exercised (parked victims > 0);
//  * regression mode: the unsafe_overwrite_before_park_for_test hook
//    restores the pre-fix eviction (overwrite the victim's slot while the
//    displaced pair has no other visible home) and the checker must
//    report a non-linearizable history — proving it detects the very bug
//    the handoff ring closes.
//
// Reproducing a CI failure: every violation message prints the seed; rerun
// locally with DYCUCKOO_CHAOS_SEED=<seed> (decimal or 0x-hex).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "dycuckoo/dycuckoo.h"
#include "gpusim/virtual_clock.h"
#include "test_util.h"

namespace dycuckoo {
namespace {

using Op = DyCuckooMap::MixedOp;

/// Possible states of one key at a window boundary.
struct ShadowState {
  bool maybe_absent = true;
  std::unordered_set<uint32_t> values;
};

/// One window's writes on one key.
struct WindowWrites {
  std::vector<uint32_t> inserted;
  bool erased = false;
};

class HistoryChecker {
 public:
  explicit HistoryChecker(uint64_t seed) : seed_(seed) {}

  /// Checks every FIND of the window against the pre-window shadow plus
  /// the window's concurrent writes, then advances the shadow.
  /// `applied` is false when the batch reported insertion failures, in
  /// which case inserts may or may not have taken effect and the shadow
  /// keeps the pre-window states as possibilities.
  void Observe(const std::vector<Op>& ops, bool applied, uint64_t invoked_at,
               uint64_t responded_at) {
    std::unordered_map<uint32_t, WindowWrites> writes;
    for (const Op& op : ops) {
      if (op.type == Op::Type::kInsert) {
        writes[op.key].inserted.push_back(op.value);
      } else if (op.type == Op::Type::kErase) {
        writes[op.key].erased = true;
      }
    }

    for (const Op& op : ops) {
      if (op.type != Op::Type::kFind) continue;
      const ShadowState& pre = StateOf(op.key);
      auto w = writes.find(op.key);
      const bool concurrent_erase = w != writes.end() && w->second.erased;
      if (op.hit != 0) {
        bool justified = pre.values.count(op.value) != 0;
        if (!justified && w != writes.end()) {
          justified = std::find(w->second.inserted.begin(),
                                w->second.inserted.end(),
                                op.value) != w->second.inserted.end();
        }
        if (!justified) {
          Violation("FIND(" + std::to_string(op.key) + ") returned value " +
                        std::to_string(op.value) +
                        " that no linearization justifies",
                    invoked_at, responded_at);
        }
      } else {
        // A miss is justified only by possible pre-window absence or a
        // concurrent DELETE.  Concurrent INSERTs (upserts included) never
        // un-link a key, and neither may the eviction chains they spawn.
        if (!pre.maybe_absent && !concurrent_erase) {
          Violation("FIND(" + std::to_string(op.key) +
                        ") missed a key resident since before the window "
                        "with no concurrent DELETE",
                    invoked_at, responded_at);
        }
      }
    }

    for (auto& [key, w] : writes) {
      ShadowState& st = shadow_[key];
      if (applied) {
        // Some write of the window linearizes last: the post state is one
        // of the inserted values, or absent when a DELETE may be last.
        if (!w.inserted.empty()) {
          st.values.clear();
          st.values.insert(w.inserted.begin(), w.inserted.end());
          st.maybe_absent = w.erased;
        } else {
          st.values.clear();
          st.maybe_absent = true;
        }
      } else {
        // Inserts may have failed: prior possibilities survive.
        st.values.insert(w.inserted.begin(), w.inserted.end());
        st.maybe_absent = st.maybe_absent || w.erased;
      }
    }
  }

  const std::vector<std::string>& violations() const { return violations_; }

  bool DefinitelyResident(uint32_t key) const {
    auto it = shadow_.find(key);
    return it != shadow_.end() && !it->second.maybe_absent;
  }

 private:
  const ShadowState& StateOf(uint32_t key) const {
    static const ShadowState kAbsent;
    auto it = shadow_.find(key);
    return it == shadow_.end() ? kAbsent : it->second;
  }

  void Violation(const std::string& what, uint64_t invoked_at,
                 uint64_t responded_at) {
    violations_.push_back(
        what + " [window ticks " + std::to_string(invoked_at) + ".." +
        std::to_string(responded_at) + "; " +
        testing::ChaosReproLine("tests/test_linearizability", seed_) + "]");
  }

  uint64_t seed_;
  std::unordered_map<uint32_t, ShadowState> shadow_;
  std::vector<std::string> violations_;
};

struct RunConfig {
  bool unsafe_overwrite = false;  // regression mode: pre-fix eviction
  bool with_erases = true;
  int rounds = 20;
  int batch_ops = 1200;
  int warmup_inserts = 1500;
  uint64_t universe_size = 8000;
};

/// Drives `rounds` mixed batches against one table and returns the
/// checker with the recorded history verdicts.
HistoryChecker RunHistory(uint64_t seed, const RunConfig& cfg,
                          TableStats::Snapshot* stats_out) {
  DyCuckooOptions o;
  o.seed = seed;
  o.stash_capacity = 64;
  if (cfg.unsafe_overwrite) {
    // Static mode at a filled factor where buckets are routinely full, so
    // eviction chains run constantly, with the displacement window
    // re-opened and widened.
    o.auto_resize = false;
    o.initial_capacity = 4096;
    o.max_eviction_chain = 8;
    o.unsafe_overwrite_before_park_for_test = true;
    o.eviction_delay_spins_for_test = 40;
  } else {
    o.initial_capacity = 2048;  // auto-resizes mid-history
  }
  std::unique_ptr<DyCuckooMap> t;
  EXPECT_TRUE(DyCuckooMap::Create(o, &t).ok());

  gpusim::VirtualClock clock;
  gpusim::ScopedVirtualClock scoped(&clock);

  HistoryChecker checker(seed);
  SplitMix64 rng(seed ^ 0x11AB1E);
  auto universe = testing::UniqueKeys(cfg.universe_size, seed + 3);
  uint32_t next_value = 1;  // globally unique insert values

  // Seed population so early windows already have resident keys to probe.
  {
    std::vector<Op> warmup;
    for (int i = 0; i < cfg.warmup_inserts; ++i) {
      Op op;
      op.type = Op::Type::kInsert;
      op.key = universe[i];
      op.value = next_value++;
      warmup.push_back(op);
    }
    uint64_t t0 = clock.Now();
    Status st = t->BulkExecute(warmup);
    EXPECT_TRUE(st.ok() || st.IsInsertionFailure()) << st.ToString();
    checker.Observe(warmup, st.ok(), t0, clock.Now());
  }

  for (int round = 0; round < cfg.rounds; ++round) {
    std::vector<Op> ops;
    ops.reserve(cfg.batch_ops);
    for (int i = 0; i < cfg.batch_ops; ++i) {
      uint32_t k = universe[rng.NextBounded(universe.size())];
      Op op;
      uint64_t kind = rng.NextBounded(10);
      if (kind < 4) {
        op.type = Op::Type::kInsert;
        op.key = k;
        op.value = next_value++;
      } else if (kind < 9 || !cfg.with_erases) {
        // FINDs dominate and prefer definitely-resident keys so the hard
        // membership invariant is exercised, not just the lenient cases.
        op.type = Op::Type::kFind;
        if (!checker.DefinitelyResident(k)) {
          for (int probe = 0; probe < 8; ++probe) {
            uint32_t cand = universe[rng.NextBounded(universe.size())];
            if (checker.DefinitelyResident(cand)) {
              k = cand;
              break;
            }
          }
        }
        op.key = k;
      } else {
        op.type = Op::Type::kErase;
        op.key = k;
      }
      ops.push_back(op);
    }
    uint64_t t0 = clock.Now();
    Status st = t->BulkExecute(ops);
    EXPECT_TRUE(st.ok() || st.IsInsertionFailure()) << st.ToString();
    checker.Observe(ops, st.ok(), t0, clock.Now());
    if (!cfg.unsafe_overwrite) {
      // The unsafe regression hook also disables the duplicate guard (the
      // displacement epoch never advances), so structural validation only
      // holds in safe mode.
      EXPECT_TRUE(t->Validate().ok()) << "seed " << seed << " round "
                                      << round;
    }
  }

  if (stats_out != nullptr) *stats_out = t->stats().Capture();
  return checker;
}

class LinearizabilityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LinearizabilityTest, ConcurrentHistoriesAreLinearizable) {
  const uint64_t seed = testing::ChaosSeedFromEnv(GetParam());
  SCOPED_TRACE(testing::ChaosReproLine("tests/test_linearizability", seed));
  RunConfig cfg;
  TableStats::Snapshot stats;
  HistoryChecker checker = RunHistory(seed, cfg, &stats);
  for (const std::string& v : checker.violations()) ADD_FAILURE() << v;
  // The run must actually exercise the displacement handoff, otherwise
  // this proves nothing about the eviction window.
  EXPECT_GT(stats.evictions, 0u) << "seed " << seed;
  EXPECT_GT(stats.parked_victims, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearizabilityTest,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 0xD15Cull));

TEST(LinearizabilityRegressionTest, OverwriteBeforeParkIsDetected) {
  // With the pre-fix eviction restored (overwrite before park) the checker
  // must flag the history: displaced keys transiently vanish and a FIND
  // racing the chain misses a resident key.  This proves the checker can
  // see the bug the handoff ring closes.
  const uint64_t base = testing::ChaosSeedFromEnv(97);
  SCOPED_TRACE(testing::ChaosReproLine("tests/test_linearizability", base));
  RunConfig cfg;
  cfg.unsafe_overwrite = true;
  cfg.with_erases = false;  // every miss of a resident key is a violation
  cfg.rounds = 12;
  cfg.batch_ops = 1000;
  cfg.warmup_inserts = 2800;  // ~0.7 filled: full buckets are routine
  cfg.universe_size = 3400;
  uint64_t violations = 0;
  for (uint64_t attempt = 0; attempt < 6 && violations == 0; ++attempt) {
    HistoryChecker checker = RunHistory(base + attempt * 1000, cfg, nullptr);
    violations += checker.violations().size();
  }
  EXPECT_GT(violations, 0u)
      << "the pre-fix displacement window produced a clean history; the "
         "checker (or the unsafe test hook) has lost its teeth";
}

}  // namespace
}  // namespace dycuckoo
