// Fixture: a well-behaved consumer of slot storage.  Every access goes
// through the blessed gpusim primitives, and the one deliberate raw
// access carries a justified suppression.  dylint must exit 0 here.
#ifndef FIXTURE_CLEAN_TABLE_H_
#define FIXTURE_CLEAN_TABLE_H_

#include <cstdint>

namespace fixture {

struct CleanTable {
  uint32_t* keys_ = nullptr;
  uint32_t* values_ = nullptr;

  uint32_t Probe(uint64_t slot) const {
    // Reads go through the racecheck-instrumented load.
    return gpusim::Load(keys_ + slot);
  }

  void Fill(uint64_t slot, uint32_t key, uint32_t value) {
    gpusim::Store(keys_ + slot, key);
    gpusim::Store(values_ + slot, value);
  }

  uint32_t DebugPeek() const {
    // dylint:allow(raw-slot-access, "fixture: proves a justified suppression silences the rule")
    return keys_[0];
  }
};

}  // namespace fixture

#endif  // FIXTURE_CLEAN_TABLE_H_
