// Fixture: a planted raw-slot-access defect.  The write at the marked
// line bypasses the gpusim primitives, so RaceCheck never sees it and
// the integrity tag is never updated.  dylint must flag exactly this.
#ifndef FIXTURE_ROGUE_PROBE_H_
#define FIXTURE_ROGUE_PROBE_H_

#include <cstdint>

namespace fixture {

struct RogueProbe {
  uint32_t* keys_ = nullptr;

  void CorruptingStore(uint64_t slot, uint32_t key) {
    keys_[slot] = key;  // PLANTED DEFECT: raw store, invisible to racecheck
  }
};

}  // namespace fixture

#endif  // FIXTURE_ROGUE_PROBE_H_
