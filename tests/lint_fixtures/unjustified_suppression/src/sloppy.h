// Fixture: planted bad suppressions.  A suppression without a quoted
// justification, and one naming a rule dylint does not know, must both
// be flagged — and the unjustified one must NOT silence the raw store
// under it.  The bad-suppression diagnostics are themselves
// unsuppressible.
#ifndef FIXTURE_SLOPPY_H_
#define FIXTURE_SLOPPY_H_

#include <cstdint>

namespace fixture {

struct Sloppy {
  uint32_t* keys_ = nullptr;

  void StillFlagged(uint64_t slot, uint32_t key) {
    // dylint:allow(raw-slot-access)
    keys_[slot] = key;  // PLANTED DEFECT: suppression above has no reason
  }

  void UnknownRule(uint64_t slot) {
    // dylint:allow(made-up-rule, "no such rule exists")
    (void)slot;
  }
};

}  // namespace fixture

#endif  // FIXTURE_SLOPPY_H_
