// Fixture: a planted tag-discipline defect.  The integrity-tag write at
// the marked line is an absolute store on live memory; the XOR-delta
// protocol requires tags_[i].fetch_xor(delta) so that concurrent
// updaters compose.  dylint must flag exactly this.
#ifndef FIXTURE_ROGUE_TAGGER_H_
#define FIXTURE_ROGUE_TAGGER_H_

#include <atomic>
#include <cstdint>

namespace fixture {

struct RogueTagger {
  std::atomic<uint64_t>* tags_ = nullptr;

  void GoodReseal(uint64_t bucket, uint64_t delta) {
    tags_[bucket].fetch_xor(delta, std::memory_order_release);
  }

  void BadReseal(uint64_t bucket, uint64_t tag) {
    tags_[bucket].store(tag);  // PLANTED DEFECT: absolute store on live tags
  }
};

}  // namespace fixture

#endif  // FIXTURE_ROGUE_TAGGER_H_
