// Fixture: a planted registry-sync defect.  The code registers two kill
// points but docs/robustness.md documents only the first, so the second
// is an undocumented crash site (and the doc also names one the code no
// longer defines).  dylint must flag the drift in both directions.
#ifndef FIXTURE_KILL_POINTS_H_
#define FIXTURE_KILL_POINTS_H_

namespace fixture {

inline constexpr const char* kKillPointNames[] = {
    "wal.before_append",
    "wal.undocumented_new_point",  // PLANTED DEFECT: not in the doc
};

}  // namespace fixture

#endif  // FIXTURE_KILL_POINTS_H_
