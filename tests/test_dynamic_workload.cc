#include "workload/dynamic_workload.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "workload/dataset.h"

namespace dycuckoo {
namespace workload {
namespace {

Dataset SmallDataset() {
  Dataset d;
  Status st = MakeDataset(DatasetId::kTwitter, 0.002, 11, &d);
  EXPECT_TRUE(st.ok());
  return d;
}

TEST(DynamicWorkloadTest, RejectsBadOptions) {
  Dataset d = SmallDataset();
  std::vector<DynamicBatch> batches;
  DynamicWorkloadOptions o;
  o.batch_size = 0;
  EXPECT_TRUE(BuildDynamicWorkload(d, o, &batches).IsInvalidArgument());
  o = DynamicWorkloadOptions{};
  o.delete_ratio = -0.1;
  EXPECT_TRUE(BuildDynamicWorkload(d, o, &batches).IsInvalidArgument());
}

TEST(DynamicWorkloadTest, BatchCountCoversStreamTwice) {
  Dataset d = SmallDataset();
  DynamicWorkloadOptions o;
  o.batch_size = 10000;
  std::vector<DynamicBatch> batches;
  ASSERT_TRUE(BuildDynamicWorkload(d, o, &batches).ok());
  uint64_t phase1 = (d.size() + o.batch_size - 1) / o.batch_size;
  EXPECT_EQ(batches.size(), 2 * phase1);
}

TEST(DynamicWorkloadTest, NoSwappedPhaseWhenDisabled) {
  Dataset d = SmallDataset();
  DynamicWorkloadOptions o;
  o.batch_size = 10000;
  o.include_swapped_phase = false;
  std::vector<DynamicBatch> batches;
  ASSERT_TRUE(BuildDynamicWorkload(d, o, &batches).ok());
  EXPECT_EQ(batches.size(), (d.size() + o.batch_size - 1) / o.batch_size);
}

TEST(DynamicWorkloadTest, Phase1InsertsReproduceTheStream) {
  Dataset d = SmallDataset();
  DynamicWorkloadOptions o;
  o.batch_size = 7000;
  o.include_swapped_phase = false;
  std::vector<DynamicBatch> batches;
  ASSERT_TRUE(BuildDynamicWorkload(d, o, &batches).ok());
  std::vector<uint32_t> replayed;
  for (const auto& b : batches) {
    replayed.insert(replayed.end(), b.insert_keys.begin(),
                    b.insert_keys.end());
    EXPECT_EQ(b.insert_keys.size(), b.insert_values.size());
  }
  EXPECT_EQ(replayed, d.keys);
}

TEST(DynamicWorkloadTest, RatiosRespected) {
  Dataset d = SmallDataset();
  DynamicWorkloadOptions o;
  o.batch_size = 10000;
  o.delete_ratio = 0.3;
  o.find_ratio = 1.0;
  o.include_swapped_phase = false;
  std::vector<DynamicBatch> batches;
  ASSERT_TRUE(BuildDynamicWorkload(d, o, &batches).ok());
  for (size_t i = 0; i + 1 < batches.size(); ++i) {  // last batch may be short
    const auto& b = batches[i];
    EXPECT_EQ(b.insert_keys.size(), o.batch_size);
    EXPECT_EQ(b.find_keys.size(), o.batch_size);
    EXPECT_EQ(b.delete_keys.size(),
              static_cast<uint64_t>(o.batch_size * o.delete_ratio));
  }
}

TEST(DynamicWorkloadTest, SwappedPhaseMirrorsRoles) {
  Dataset d = SmallDataset();
  DynamicWorkloadOptions o;
  o.batch_size = 9000;
  o.delete_ratio = 0.2;
  std::vector<DynamicBatch> batches;
  ASSERT_TRUE(BuildDynamicWorkload(d, o, &batches).ok());
  size_t half = batches.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    const auto& fwd = batches[i];
    const auto& swp = batches[half + i];
    EXPECT_EQ(swp.insert_keys, fwd.delete_keys);
    EXPECT_EQ(swp.delete_keys, fwd.insert_keys);
    EXPECT_EQ(swp.insert_keys.size(), swp.insert_values.size());
  }
}

TEST(DynamicWorkloadTest, DeletesTargetPreviouslyInsertedKeys) {
  Dataset d = SmallDataset();
  DynamicWorkloadOptions o;
  o.batch_size = 5000;
  o.delete_ratio = 0.4;
  o.include_swapped_phase = false;
  std::vector<DynamicBatch> batches;
  ASSERT_TRUE(BuildDynamicWorkload(d, o, &batches).ok());
  std::unordered_set<uint32_t> inserted;
  for (const auto& b : batches) {
    for (uint32_t k : b.insert_keys) inserted.insert(k);
    for (uint32_t k : b.delete_keys) {
      ASSERT_TRUE(inserted.count(k)) << "delete of never-inserted key " << k;
    }
  }
}

TEST(DynamicWorkloadTest, TotalOpsSumsAllThreeKinds) {
  Dataset d = SmallDataset();
  DynamicWorkloadOptions o;
  o.batch_size = 10000;
  std::vector<DynamicBatch> batches;
  ASSERT_TRUE(BuildDynamicWorkload(d, o, &batches).ok());
  uint64_t manual = 0;
  for (const auto& b : batches) {
    manual += b.insert_keys.size() + b.find_keys.size() +
              b.delete_keys.size();
  }
  EXPECT_EQ(TotalOps(batches), manual);
  EXPECT_GT(TotalOps(batches), d.size());
}

TEST(DynamicWorkloadTest, ZeroRatiosYieldInsertOnlyBatches) {
  Dataset d = SmallDataset();
  DynamicWorkloadOptions o;
  o.batch_size = 10000;
  o.delete_ratio = 0.0;
  o.find_ratio = 0.0;
  o.include_swapped_phase = false;
  std::vector<DynamicBatch> batches;
  ASSERT_TRUE(BuildDynamicWorkload(d, o, &batches).ok());
  for (const auto& b : batches) {
    EXPECT_TRUE(b.find_keys.empty());
    EXPECT_TRUE(b.delete_keys.empty());
    EXPECT_FALSE(b.insert_keys.empty());
  }
}

TEST(DynamicWorkloadTest, BatchLargerThanDatasetYieldsOneBatch) {
  Dataset d = SmallDataset();
  DynamicWorkloadOptions o;
  o.batch_size = d.size() * 10;
  o.include_swapped_phase = false;
  std::vector<DynamicBatch> batches;
  ASSERT_TRUE(BuildDynamicWorkload(d, o, &batches).ok());
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].insert_keys.size(), d.size());
}

TEST(DynamicWorkloadTest, SwappedPhaseDrainsTheTableConceptually) {
  // Every phase-1 inserted key is deleted somewhere (phase 1 or phase 2).
  Dataset d = SmallDataset();
  DynamicWorkloadOptions o;
  o.batch_size = 6000;
  std::vector<DynamicBatch> batches;
  ASSERT_TRUE(BuildDynamicWorkload(d, o, &batches).ok());
  std::unordered_set<uint32_t> deleted;
  for (const auto& b : batches) {
    for (uint32_t k : b.delete_keys) deleted.insert(k);
  }
  for (uint32_t k : d.keys) {
    ASSERT_TRUE(deleted.count(k)) << "key never deleted: " << k;
  }
}

TEST(DynamicWorkloadTest, FindRatioScalesFindVolume) {
  Dataset d = SmallDataset();
  DynamicWorkloadOptions o;
  o.batch_size = 10000;
  o.find_ratio = 2.0;
  o.include_swapped_phase = false;
  std::vector<DynamicBatch> batches;
  ASSERT_TRUE(BuildDynamicWorkload(d, o, &batches).ok());
  EXPECT_EQ(batches[0].find_keys.size(), 20000u);
}

TEST(DynamicWorkloadTest, DeterministicForSeed) {
  Dataset d = SmallDataset();
  DynamicWorkloadOptions o;
  o.batch_size = 8000;
  std::vector<DynamicBatch> a, b;
  ASSERT_TRUE(BuildDynamicWorkload(d, o, &a).ok());
  ASSERT_TRUE(BuildDynamicWorkload(d, o, &b).ok());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].insert_keys, b[i].insert_keys);
    EXPECT_EQ(a[i].find_keys, b[i].find_keys);
    EXPECT_EQ(a[i].delete_keys, b[i].delete_keys);
  }
}

}  // namespace
}  // namespace workload
}  // namespace dycuckoo
