// Tests for Save/Load snapshots.

#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "dycuckoo/dycuckoo.h"
#include "gpusim/device_arena.h"
#include "test_util.h"

namespace dycuckoo {
namespace {

using testing::SequentialValues;
using testing::UniqueKeys;

TEST(SerializationTest, RoundTripPreservesContents) {
  DyCuckooOptions o;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  auto keys = UniqueKeys(30000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());

  std::stringstream ss;
  ASSERT_TRUE(t->Save(ss).ok());

  std::unique_ptr<DyCuckooMap> restored;
  ASSERT_TRUE(DyCuckooMap::Load(ss, o, &restored).ok());
  EXPECT_EQ(restored->size(), keys.size());
  EXPECT_TRUE(restored->Validate().ok());

  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  restored->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]) << i;
    ASSERT_EQ(out[i], i);
  }
}

TEST(SerializationTest, EmptyTableRoundTrip) {
  DyCuckooOptions o;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  std::stringstream ss;
  ASSERT_TRUE(t->Save(ss).ok());
  std::unique_ptr<DyCuckooMap> restored;
  ASSERT_TRUE(DyCuckooMap::Load(ss, o, &restored).ok());
  EXPECT_EQ(restored->size(), 0u);
}

TEST(SerializationTest, LoadUnderDifferentOptions) {
  DyCuckooOptions save_opts;
  save_opts.num_subtables = 4;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(save_opts, &t).ok());
  auto keys = UniqueKeys(10000, 5);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  std::stringstream ss;
  ASSERT_TRUE(t->Save(ss).ok());

  DyCuckooOptions load_opts;
  load_opts.num_subtables = 6;  // different layout: snapshot is logical
  load_opts.seed = 987654321;
  std::unique_ptr<DyCuckooMap> restored;
  ASSERT_TRUE(DyCuckooMap::Load(ss, load_opts, &restored).ok());
  EXPECT_EQ(restored->size(), keys.size());
  EXPECT_EQ(restored->num_subtables(), 6);
  std::vector<uint8_t> found(keys.size());
  restored->BulkFind(keys, nullptr, found.data());
  for (auto f : found) ASSERT_TRUE(f);
}

TEST(SerializationTest, RejectsGarbage) {
  std::stringstream ss;
  ss << "definitely not a snapshot";
  std::unique_ptr<DyCuckooMap> restored;
  EXPECT_TRUE(
      DyCuckooMap::Load(ss, DyCuckooOptions{}, &restored).IsInvalidArgument());
}

TEST(SerializationTest, RejectsWidthMismatch) {
  DyCuckooOptions o;
  std::unique_ptr<DyCuckooMap64> wide;
  ASSERT_TRUE(DyCuckooMap64::Create(o, &wide).ok());
  ASSERT_TRUE(wide->Insert(1, 2).ok());
  std::stringstream ss;
  ASSERT_TRUE(wide->Save(ss).ok());

  std::unique_ptr<DyCuckooMap> narrow;
  EXPECT_TRUE(DyCuckooMap::Load(ss, o, &narrow).IsInvalidArgument());
}

TEST(SerializationTest, RejectsTruncatedStream) {
  DyCuckooOptions o;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  auto keys = UniqueKeys(1000, 6);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  std::stringstream ss;
  ASSERT_TRUE(t->Save(ss).ok());
  std::string data = ss.str();
  std::stringstream cut(data.substr(0, data.size() / 2));
  std::unique_ptr<DyCuckooMap> restored;
  EXPECT_TRUE(DyCuckooMap::Load(cut, o, &restored).IsDataLoss());
}

TEST(SerializationTest, RejectsTruncatedHeader) {
  DyCuckooOptions o;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  ASSERT_TRUE(t->Insert(1, 2).ok());
  std::stringstream ss;
  ASSERT_TRUE(t->Save(ss).ok());
  std::string data = ss.str();

  // Cut inside the fixed-size header (after the magic but before the count):
  // the loader must fail cleanly, not read uninitialized header fields.
  for (size_t cut : {size_t{9}, size_t{17}, size_t{33}}) {
    std::stringstream truncated(data.substr(0, cut));
    std::unique_ptr<DyCuckooMap> restored;
    Status st = DyCuckooMap::Load(truncated, o, &restored);
    EXPECT_TRUE(st.IsDataLoss()) << "cut=" << cut << ": " << st.ToString();
    EXPECT_EQ(restored, nullptr);
  }
}

TEST(SerializationTest, RejectsTruncatedLegacyPayload) {
  // A version-1 stream whose header claims more pairs than the stream
  // holds must come back as a clean non-OK status, never a crash or a
  // partially-populated table.
  constexpr uint64_t kLegacyMagic = 0xD1C0CC00'5A4B1705ULL;
  std::stringstream ss;
  uint64_t header[4] = {kLegacyMagic, sizeof(uint32_t), sizeof(uint32_t),
                        /*claimed pairs=*/1000};
  ss.write(reinterpret_cast<const char*>(header), sizeof(header));
  for (uint32_t i = 0; i < 10; ++i) {  // only 10 pairs actually present
    uint32_t key = i + 1, value = i;
    ss.write(reinterpret_cast<const char*>(&key), sizeof(key));
    ss.write(reinterpret_cast<const char*>(&value), sizeof(value));
  }

  std::unique_ptr<DyCuckooMap> restored;
  Status st = DyCuckooMap::Load(ss, DyCuckooOptions{}, &restored);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_EQ(restored, nullptr);
}

TEST(SerializationTest, DetectsSingleBitFlip) {
  DyCuckooOptions o;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  auto keys = UniqueKeys(2000, 9);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  std::stringstream ss;
  ASSERT_TRUE(t->Save(ss).ok());
  std::string data = ss.str();

  // Flip one bit in the middle of the payload: the CRC trailer must catch
  // it even though the stream parses structurally.
  data[data.size() / 2] ^= 0x10;
  std::stringstream corrupted(data);
  std::unique_ptr<DyCuckooMap> restored;
  Status st = DyCuckooMap::Load(corrupted, o, &restored);
  EXPECT_TRUE(st.IsDataLoss()) << st.ToString();
  EXPECT_NE(st.message().find("snapshot corrupt"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(restored, nullptr);  // no partially-populated table escapes
}

TEST(SerializationTest, DetectsMissingCrcTrailer) {
  DyCuckooOptions o;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  auto keys = UniqueKeys(500, 10);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  std::stringstream ss;
  ASSERT_TRUE(t->Save(ss).ok());
  std::string data = ss.str();

  // Drop the 4-byte trailer only: every pair is intact but the snapshot is
  // incomplete.
  std::stringstream cut(data.substr(0, data.size() - sizeof(uint32_t)));
  std::unique_ptr<DyCuckooMap> restored;
  Status st = DyCuckooMap::Load(cut, o, &restored);
  EXPECT_TRUE(st.IsDataLoss()) << st.ToString();
  EXPECT_NE(st.message().find("snapshot corrupt"), std::string::npos)
      << st.ToString();
}

TEST(SerializationTest, ExhaustiveBitFlipSweepNeverLoadsCorruptSnapshot) {
  // Flip every single bit of a small v2 snapshot, one at a time.  No flip
  // may crash the loader, return OK, or hand back a partial table: every
  // byte of the format is covered by either the magic check, the header
  // validation, or the CRC-32 trailer.  (A single flip cannot turn the v2
  // magic into the legacy v1 magic — they differ in two bits — so the
  // legacy fallback path cannot swallow a corrupted v2 stream.)
  //
  // A small private arena bounds the damage of a flipped entry count: a
  // count inflated to 2^60 must die as a fast OutOfMemory inside Reserve,
  // not as a real multi-gigabyte allocation.
  gpusim::DeviceArena arena(/*capacity_bytes=*/4u << 20);
  DyCuckooOptions o;
  o.arena = &arena;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  auto keys = UniqueKeys(24, 12);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  std::stringstream ss;
  ASSERT_TRUE(t->Save(ss).ok());
  const std::string data = ss.str();

  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] ^= static_cast<char>(1u << bit);
      std::stringstream corrupted(flipped);
      std::unique_ptr<DyCuckooMap> restored;
      Status st = DyCuckooMap::Load(corrupted, o, &restored);
      ASSERT_FALSE(st.ok())
          << "flip of byte " << byte << " bit " << bit << " loaded OK";
      ASSERT_EQ(restored, nullptr)
          << "flip of byte " << byte << " bit " << bit
          << " leaked a partial table (" << st.ToString() << ")";
    }
  }
}

TEST(SerializationTest, ReadsLegacyVersion1Snapshot) {
  // Hand-build the pre-CRC (v1) stream: magic, key width, value width,
  // count, interleaved pairs — no version field, no trailer.
  constexpr uint64_t kLegacyMagic = 0xD1C0CC00'5A4B1705ULL;
  auto keys = UniqueKeys(1000, 11);
  auto values = SequentialValues(keys.size());
  std::stringstream ss;
  uint64_t header[4] = {kLegacyMagic, sizeof(uint32_t), sizeof(uint32_t),
                        keys.size()};
  ss.write(reinterpret_cast<const char*>(header), sizeof(header));
  for (size_t i = 0; i < keys.size(); ++i) {
    ss.write(reinterpret_cast<const char*>(&keys[i]), sizeof(uint32_t));
    ss.write(reinterpret_cast<const char*>(&values[i]), sizeof(uint32_t));
  }

  std::unique_ptr<DyCuckooMap> restored;
  ASSERT_TRUE(DyCuckooMap::Load(ss, DyCuckooOptions{}, &restored).ok());
  EXPECT_EQ(restored->size(), keys.size());
  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  restored->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]) << i;
    ASSERT_EQ(out[i], values[i]);
  }
}

TEST(SerializationTest, RejectsUnknownFormatVersion) {
  DyCuckooOptions o;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());
  std::stringstream ss;
  ASSERT_TRUE(t->Save(ss).ok());
  std::string data = ss.str();
  // The version field is the second u64; bump it to a future version.
  uint64_t future = 99;
  data.replace(sizeof(uint64_t), sizeof(uint64_t),
               reinterpret_cast<const char*>(&future), sizeof(uint64_t));
  std::stringstream bumped(data);
  std::unique_ptr<DyCuckooMap> restored;
  Status st = DyCuckooMap::Load(bumped, o, &restored);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("format version"), std::string::npos)
      << st.ToString();
}

TEST(SerializationTest, SixtyFourBitRoundTrip) {
  DyCuckooOptions o;
  std::unique_ptr<DyCuckooMap64> t;
  ASSERT_TRUE(DyCuckooMap64::Create(o, &t).ok());
  SplitMix64 rng(8);
  std::vector<uint64_t> keys(5000), values(5000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng.Next() >> 1;
    values[i] = rng.Next();
  }
  ASSERT_TRUE(t->BulkInsert(keys, values).ok());
  std::stringstream ss;
  ASSERT_TRUE(t->Save(ss).ok());
  std::unique_ptr<DyCuckooMap64> restored;
  ASSERT_TRUE(DyCuckooMap64::Load(ss, o, &restored).ok());
  std::vector<uint64_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  restored->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]);
    ASSERT_EQ(out[i], values[i]);
  }
}

}  // namespace
}  // namespace dycuckoo
