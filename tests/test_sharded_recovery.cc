// Sharded durability: segment naming, the shard manifest (the routing-
// invariant gate), parallel multi-shard recovery, and the poisoned-WAL
// fault-domain scenario — one shard's mid-log corruption is classified
// and quarantined while every other shard recovers fully and serves.

#include "durability/sharded.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "durability/log_format.h"
#include "durability/recovery.h"
#include "dycuckoo/dynamic_table.h"
#include "dycuckoo/options.h"
#include "gpusim/device_arena.h"
#include "gpusim/grid.h"
#include "service/sharded_server.h"
#include "test_util.h"

namespace dycuckoo {
namespace durability {
namespace {

using Table = DynamicTable<uint32_t, uint32_t>;
using Sharded = service::ShardedTableServer<uint32_t, uint32_t>;
using OpType = Sharded::OpType;
using Outcome = ShardRecoveryOutcome<uint32_t, uint32_t>;

TEST(ShardSegments, NamingIsFixedWidthAndScoped) {
  EXPECT_EQ(ShardScope(3), "shard-00003/");
  EXPECT_EQ(WalSegmentName(3, 16), "wal-00003-of-00016.seg");
  EXPECT_EQ(CheckpointSegmentName(0, 4), "ckpt-00000-of-00004.seg");
  EXPECT_EQ(WalSegmentName(15, 16), "wal-00015-of-00016.seg");
}

TEST(ShardManifest, RoundTripsAndValidates) {
  ShardManifest m = ShardManifest::Make(4, /*router_seed=*/0xabcdef, 4, 4);
  ASSERT_EQ(m.shards.size(), 4u);
  EXPECT_EQ(m.shards[2].wal_segment, WalSegmentName(2, 4));

  std::string image = m.Encode();
  ShardManifest decoded;
  ASSERT_TRUE(ShardManifest::Decode(image, &decoded).ok());
  EXPECT_EQ(decoded.num_shards, 4u);
  EXPECT_EQ(decoded.router_seed, 0xabcdefull);
  EXPECT_EQ(decoded.key_width, 4u);
  EXPECT_EQ(decoded.value_width, 4u);
  ASSERT_EQ(decoded.shards.size(), 4u);
  EXPECT_EQ(decoded.shards[3].checkpoint_segment,
            CheckpointSegmentName(3, 4));

  EXPECT_TRUE(decoded.ValidateCompatible(4, 0xabcdef, 4, 4).ok());
  EXPECT_TRUE(decoded.ValidateCompatible(8, 0xabcdef, 4, 4)
                  .IsInvalidArgument());
  EXPECT_TRUE(decoded.ValidateCompatible(4, 0xfeedbeef, 4, 4)
                  .IsInvalidArgument());
  EXPECT_TRUE(decoded.ValidateCompatible(4, 0xabcdef, 8, 4)
                  .IsInvalidArgument());
}

TEST(ShardManifest, CorruptionIsDetectedNeverTrusted) {
  ShardManifest m = ShardManifest::Make(2, 7, 4, 4);
  std::string image = m.Encode();

  std::string flipped = image;
  flipped[image.size() / 2] ^= 0x10;
  ShardManifest out;
  EXPECT_TRUE(ShardManifest::Decode(flipped, &out).IsDataLoss());

  std::string truncated = image.substr(0, image.size() / 2);
  EXPECT_TRUE(ShardManifest::Decode(truncated, &out).IsDataLoss());

  std::string bad_magic = image;
  bad_magic[0] ^= 0xff;
  EXPECT_TRUE(ShardManifest::Decode(bad_magic, &out).IsDataLoss());
}

// Version-skew matrix: three distinct failure modes an operator can hit
// when images and binaries drift apart, each classified with a distinct,
// precise status — never conflated, never guessed at.
//
//   torn trailer        -> DataLoss        ("the CRC trailer is gone")
//   future version byte -> InvalidArgument ("unsupported version")
//   router-seed skew    -> InvalidArgument ("router seed mismatch")
TEST(ShardManifestVersionSkew, TruncatedCrcTrailerIsPreciseDataLoss) {
  const std::string image = ShardManifest::Make(4, 0x5eed, 4, 4).Encode();
  ShardManifest out;
  // Chop inside the 4-byte CRC trailer (1..4 bytes gone).  The v2
  // total-length header field lets Decode say "the trailer is gone"
  // instead of checking a garbage CRC and reporting a mismatch.
  for (size_t cut = 1; cut <= 4; ++cut) {
    Status st = ShardManifest::Decode(
        image.substr(0, image.size() - cut), &out);
    EXPECT_TRUE(st.IsDataLoss()) << "cut=" << cut << ": " << st.ToString();
    EXPECT_NE(st.message().find("truncated"), std::string::npos)
        << st.ToString();
    EXPECT_NE(st.message().find("CRC trailer is gone"), std::string::npos)
        << "cut=" << cut << " should be classified as a torn trailer, "
        << "not a CRC mismatch: " << st.ToString();
  }
}

TEST(ShardManifestVersionSkew, FutureVersionByteIsRefusedNotGuessed) {
  std::string image = ShardManifest::Make(4, 0x5eed, 4, 4).Encode();
  // Stamp a future version (field sits right after the 8-byte magic) and
  // RECOMPUTE the CRC trailer so the image is intact, just newer — this
  // must surface as version skew, not corruption.
  const uint64_t future = kShardManifestVersion + 1;
  std::memcpy(&image[8], &future, sizeof(future));
  const uint32_t crc =
      Crc32Update(0, image.data() + 8, image.size() - 8 - 4);
  std::memcpy(&image[image.size() - 4], &crc, sizeof(crc));

  ShardManifest out;
  Status st = ShardManifest::Decode(image, &out);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("unsupported version"), std::string::npos)
      << st.ToString();
  // The message names both versions so the operator knows which side to
  // upgrade.
  EXPECT_NE(st.message().find(std::to_string(future)), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find(std::to_string(kShardManifestVersion)),
            std::string::npos)
      << st.ToString();
}

TEST(ShardManifestVersionSkew, RouterSeedMismatchIsNamedPrecisely) {
  // An intact manifest from a deployment with a different router seed:
  // Decode succeeds (nothing is corrupt), the compatibility gate refuses.
  ShardManifest decoded;
  Status dst = ShardManifest::Decode(
      ShardManifest::Make(4, /*router_seed=*/0xAAAA, 4, 4).Encode(),
      &decoded);
  ASSERT_TRUE(dst.ok()) << dst.ToString();
  Status st = decoded.ValidateCompatible(4, /*router_seed=*/0xBBBB, 4, 4);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("router seed mismatch"), std::string::npos)
      << st.ToString();

  // Distinctness of the matrix: all three skews carry different codes or
  // messages, so no operator runbook branch can be taken by mistake.
  ShardManifest out;
  const std::string image = ShardManifest::Make(4, 0xAAAA, 4, 4).Encode();
  Status torn =
      ShardManifest::Decode(image.substr(0, image.size() - 2), &out);
  EXPECT_NE(torn.code(), st.code());
  EXPECT_EQ(st.message().find("CRC trailer"), std::string::npos);
  EXPECT_EQ(torn.message().find("router seed"), std::string::npos);
}

// Satellite: two shards recovering byte-identical segments must still
// produce distinguishable reports — the digest covers the source
// identity, not just the replay counters.
TEST(RecoveryReportIdentity, IdenticalImagesDistinctShards) {
  DyCuckooOptions topt;
  topt.initial_capacity = 4096;

  auto recover_empty = [&](uint32_t shard) {
    std::istringstream ckpt(""), wal("");
    std::unique_ptr<Table> table;
    RecoveryReport report;
    RecoverySource source;
    source.shard_id = shard;
    source.segment = WalSegmentName(shard, 4);
    Status st =
        Recover<uint32_t, uint32_t>(ckpt, wal, topt, &table, &report, source);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return report;
  };

  RecoveryReport a = recover_empty(0);
  RecoveryReport b = recover_empty(1);
  RecoveryReport a2 = recover_empty(0);
  EXPECT_NE(a.Digest(), b.Digest())
      << "identical logs on different shards must not collide";
  EXPECT_EQ(a.Digest(), a2.Digest()) << "same shard, same log, same digest";
  EXPECT_EQ(b.shard_id, 1u);
  EXPECT_EQ(b.segment, WalSegmentName(1, 4));
  EXPECT_NE(a.ToString().find("wal-00000-of-00004.seg"), std::string::npos);
}

// --- Shared fixture: a deterministic sharded deployment with traffic ------

struct Deployment {
  gpusim::DeviceArena arena{0};
  gpusim::Grid grid{1};
  DyCuckooOptions topt;
  Sharded::Options options;
  std::unique_ptr<Sharded> server;
  std::unordered_map<uint32_t, uint32_t> acked;

  explicit Deployment(uint32_t num_shards, uint64_t seed = 99) {
    topt.arena = &arena;
    topt.grid = &grid;
    topt.initial_capacity = 32 * 1024;
    options.num_shards = num_shards;
    options.shard.scrub_buckets_per_step = 8;
    // Keep the full history in the WAL: no checkpoint truncation, so a
    // poisoned log provably covers acknowledged writes.
    options.durability.checkpoint_wal_bytes = 1ull << 30;
    options.supervisor.heal_backoff_ticks = 4;
    options.supervisor.max_heal_attempts = 2;
    EXPECT_TRUE(Sharded::Create(topt, options, &server).ok());
    Seed(seed);
  }

 private:
  // gtest fatal assertions need a void function, not a constructor body.
  void Seed(uint64_t seed) {
    // 600 acked inserts spread across the shards.
    std::vector<uint32_t> keys = testing::UniqueKeys(600, seed);
    for (size_t i = 0; i < keys.size(); i += 50) {
      Sharded::Request req;
      for (size_t j = i; j < i + 50 && j < keys.size(); ++j) {
        uint32_t v = static_cast<uint32_t>(j) * 3 + 1;
        req.ops.push_back(Sharded::Op{OpType::kInsert, keys[j], v});
      }
      uint64_t id = server->Submit(std::move(req));
      server->RunUntilIdle();
      Sharded::Response resp;
      ASSERT_TRUE(server->TakeResponse(id, &resp));
      ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
      for (size_t j = i; j < i + 50 && j < keys.size(); ++j) {
        acked[keys[j]] = static_cast<uint32_t>(j) * 3 + 1;
      }
    }
  }
};

TEST(RecoverAllShards, ParallelIsBitIdenticalToSerial) {
  Deployment dep(4);
  std::vector<ShardImages> images = dep.server->DurableImages();
  std::vector<DyCuckooOptions> opts = dep.server->ShardTableOptionsList();

  auto serial =
      RecoverAllShards<uint32_t, uint32_t>(images, opts, /*max_parallel=*/1);
  auto parallel =
      RecoverAllShards<uint32_t, uint32_t>(images, opts, /*max_parallel=*/4);
  ASSERT_EQ(serial.size(), 4u);
  ASSERT_EQ(parallel.size(), 4u);
  for (uint32_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(serial[s].status.ok()) << serial[s].status.ToString();
    ASSERT_TRUE(parallel[s].status.ok()) << parallel[s].status.ToString();
    EXPECT_EQ(serial[s].report.Digest(), parallel[s].report.Digest())
        << "shard " << s << ": parallel replay diverged from serial";
    auto a = serial[s].table->Dump();
    auto b = parallel[s].table->Dump();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "shard " << s;
  }

  // Every acked write is in exactly the shard the router assigns it.
  for (const auto& [k, v] : dep.acked) {
    uint32_t shard = dep.server->router().ShardOf(k);
    uint32_t rv = 0;
    ASSERT_TRUE(parallel[shard].table->Find(k, &rv)) << "lost key " << k;
    EXPECT_EQ(rv, v);
  }
}

TEST(RecoverAllShards, ManifestGateRejectsMisroutedResurrection) {
  Deployment dep(4);
  std::vector<ShardImages> images = dep.server->DurableImages();
  std::vector<DyCuckooOptions> opts = dep.server->ShardTableOptionsList();
  const ShardManifest& manifest = dep.server->manifest();

  std::vector<Outcome> out;
  Status gated = RecoverAllShards<uint32_t, uint32_t>(
      manifest, images, opts, dep.options.router_seed, &out);
  EXPECT_TRUE(gated.ok()) << gated.ToString();
  ASSERT_EQ(out.size(), 4u);

  // Wrong router seed: the segments were written under a different
  // key->shard mapping; replay must refuse, not scatter.
  Status wrong_seed = RecoverAllShards<uint32_t, uint32_t>(
      manifest, images, opts, dep.options.router_seed + 1, &out);
  EXPECT_TRUE(wrong_seed.IsInvalidArgument()) << wrong_seed.ToString();

  // Wrong shard count (images for a different deployment size).
  std::vector<ShardImages> three(images.begin(), images.begin() + 3);
  std::vector<DyCuckooOptions> three_opts(opts.begin(), opts.begin() + 3);
  Status wrong_count = RecoverAllShards<uint32_t, uint32_t>(
      manifest, three, three_opts, dep.options.router_seed, &out);
  EXPECT_TRUE(wrong_count.IsInvalidArgument()) << wrong_count.ToString();
}

// Satellite: cross-shard recovery with one poisoned WAL.  Shard k's log
// takes a bit flip mid-record with intact records after it (acknowledged
// data provably lost); every other shard recovers fully and serves while
// k is quarantined, and k's report/status classify the corruption.
TEST(PoisonedWal, OtherShardsServeWhileFaultedShardIsQuarantined) {
  const uint32_t kShards = 4;
  const uint32_t kPoisoned = 2;
  Deployment dep(kShards);
  std::vector<ShardImages> images = dep.server->DurableImages();
  std::vector<DyCuckooOptions> opts = dep.server->ShardTableOptionsList();

  ASSERT_GT(images[kPoisoned].wal.size(), kWalFileHeaderBytes + 64)
      << "poisoned shard needs a multi-record log for this scenario";
  // Flip one bit inside the FIRST record: everything after it is intact,
  // so this is mid-log corruption (acked loss), not a torn tail.
  images[kPoisoned].wal[kWalFileHeaderBytes + 8] ^= 0x04;

  auto outcomes = RecoverAllShards<uint32_t, uint32_t>(images, opts);
  ASSERT_EQ(outcomes.size(), kShards);
  for (uint32_t s = 0; s < kShards; ++s) {
    if (s == kPoisoned) {
      EXPECT_TRUE(outcomes[s].status.IsDataLoss())
          << outcomes[s].status.ToString();
      EXPECT_NE(outcomes[s].status.message().find("intact records after"),
                std::string::npos)
          << "must classify mid-log corruption, got: "
          << outcomes[s].status.ToString();
      EXPECT_EQ(outcomes[s].report.segment,
                WalSegmentName(kPoisoned, kShards));
    } else {
      ASSERT_TRUE(outcomes[s].status.ok()) << outcomes[s].status.ToString();
    }
  }

  // Adopt: the deployment comes back with N-1 shards serving.
  std::unique_ptr<Sharded> resumed;
  ASSERT_TRUE(Sharded::AdoptRecovered(&outcomes, images, dep.topt,
                                      dep.options, &resumed)
                  .ok());
  EXPECT_EQ(resumed->supervisor().state(kPoisoned),
            service::ShardState::kQuarantined);
  EXPECT_EQ(resumed->supervisor().serving_count(), kShards - 1);
  EXPECT_TRUE(resumed->supervisor().fault(kPoisoned).IsDataLoss());
  EXPECT_EQ(resumed->last_heal_report(kPoisoned).segment,
            WalSegmentName(kPoisoned, kShards));

  // Healthy shards answer every acked key; the poisoned shard's keys are
  // rejected with machine-readable shard identity and retry hint.
  uint64_t healthy_hits = 0, quarantined_rejections = 0;
  for (const auto& [k, v] : dep.acked) {
    Sharded::Request req;
    req.ops.push_back(Sharded::Op{OpType::kFind, k, 0});
    uint64_t id = resumed->Submit(std::move(req));
    resumed->RunUntilIdle();
    Sharded::Response resp;
    ASSERT_TRUE(resumed->TakeResponse(id, &resp));
    if (resumed->router().ShardOf(k) == kPoisoned) {
      ASSERT_TRUE(resp.status.IsUnavailable()) << resp.status.ToString();
      const std::string* shard = resp.status.FindDetail("shard");
      const std::string* retry =
          resp.status.FindDetail("retry_after_ticks");
      const std::string* executed = resp.status.FindDetail("executed");
      ASSERT_NE(shard, nullptr);
      EXPECT_EQ(*shard, std::to_string(kPoisoned));
      ASSERT_NE(retry, nullptr);
      ASSERT_NE(executed, nullptr);
      EXPECT_EQ(*executed, "never");
      ++quarantined_rejections;
    } else {
      ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
      ASSERT_EQ(resp.results.size(), 1u);
      EXPECT_EQ(resp.results[0].hit, 1u) << "healthy shard lost key " << k;
      EXPECT_EQ(resp.results[0].value, v);
      ++healthy_hits;
    }
  }
  EXPECT_GT(healthy_hits, 0u);
  EXPECT_GT(quarantined_rejections, 0u);

  // The poison is in the durable images themselves, so self-heal CANNOT
  // succeed — after max_heal_attempts the supervisor parks the shard as
  // kFailed (operator intervention), and the retry hint honestly drops
  // to "no automatic recovery coming".
  for (int i = 0;
       i < 5000 && resumed->supervisor().state(kPoisoned) !=
                       service::ShardState::kFailed;
       ++i) {
    resumed->Step();
  }
  EXPECT_EQ(resumed->supervisor().state(kPoisoned),
            service::ShardState::kFailed);
  EXPECT_TRUE(
      resumed->supervisor().last_heal_status(kPoisoned).IsDataLoss());
  EXPECT_EQ(resumed->supervisor().serving_count(), kShards - 1);
}

}  // namespace
}  // namespace durability
}  // namespace dycuckoo
