#include "dycuckoo/options.h"

#include <gtest/gtest.h>

namespace dycuckoo {
namespace {

TEST(OptionsTest, DefaultsAreValid) {
  DyCuckooOptions o;
  EXPECT_TRUE(o.Validate().ok());
  EXPECT_EQ(o.num_subtables, 4);        // paper's post-Figure-6 choice
  EXPECT_DOUBLE_EQ(o.lower_bound, 0.30);  // paper Table III defaults
  EXPECT_DOUBLE_EQ(o.upper_bound, 0.85);
}

TEST(OptionsTest, RejectsTooFewOrTooManySubtables) {
  DyCuckooOptions o;
  o.num_subtables = 1;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.num_subtables = 17;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.num_subtables = 2;
  EXPECT_TRUE(o.Validate().ok());
  o.num_subtables = 16;
  EXPECT_TRUE(o.Validate().ok());
}

TEST(OptionsTest, RejectsInvertedBounds) {
  DyCuckooOptions o;
  o.lower_bound = 0.5;
  o.upper_bound = 0.4;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(OptionsTest, RejectsZeroLowerBound) {
  DyCuckooOptions o;
  o.lower_bound = 0.0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(OptionsTest, RejectsUpperBoundAboveOne) {
  DyCuckooOptions o;
  o.upper_bound = 1.5;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(OptionsTest, AlphaMustBeBelowDOverDPlusOne) {
  // Paper Section IV-B: alpha < d/(d+1).
  DyCuckooOptions o;
  o.num_subtables = 2;
  o.lower_bound = 0.70;  // >= 2/3
  o.upper_bound = 0.90;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.lower_bound = 0.60;  // < 2/3
  EXPECT_TRUE(o.Validate().ok());
}

TEST(OptionsTest, RejectsZeroCapacityAndChain) {
  DyCuckooOptions o;
  o.initial_capacity = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.initial_capacity = 100;
  o.max_eviction_chain = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

struct BoundsCase {
  int d;
  double alpha;
  double beta;
  bool valid;
};

class OptionsBoundsTest : public ::testing::TestWithParam<BoundsCase> {};

TEST_P(OptionsBoundsTest, ValidationMatrix) {
  const BoundsCase& c = GetParam();
  DyCuckooOptions o;
  o.num_subtables = c.d;
  o.lower_bound = c.alpha;
  o.upper_bound = c.beta;
  EXPECT_EQ(o.Validate().ok(), c.valid)
      << "d=" << c.d << " alpha=" << c.alpha << " beta=" << c.beta;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, OptionsBoundsTest,
    ::testing::Values(BoundsCase{4, 0.20, 0.70, true},
                      BoundsCase{4, 0.40, 0.90, true},
                      BoundsCase{4, 0.30, 0.85, true},
                      BoundsCase{4, 0.85, 0.90, false},  // alpha >= 4/5
                      BoundsCase{8, 0.85, 0.95, true},   // 8/9 > 0.85
                      BoundsCase{2, 0.66, 0.9, true},    // just below 2/3
                      BoundsCase{2, 0.667, 0.9, false},  // just above 2/3
                      BoundsCase{2, 0.67, 0.9, false},
                      BoundsCase{4, 0.5, 0.5, false}));

}  // namespace
}  // namespace dycuckoo
