// Fault-isolated shards: chaos acceptance for the sharded server.
//
// A shard-targeted kill point crashes exactly one shard's durability
// fault domain while a shadow ledger tracks every acknowledged write.
// The acceptance invariants (ROADMAP / ISSUE):
//   - no acknowledged write is ever lost;
//   - shards outside the fault domain keep serving FIND/INSERT/DELETE
//     with ZERO kUnavailable for the quarantine's whole duration;
//   - the faulted shard is quarantined automatically and self-heals
//     online (recovery from its own checkpoint + WAL, scrub, re-admission
//     through the breaker's half-open probe);
//   - the whole sequence is bit-identical under the same
//     DYCUCKOO_CHAOS_SEED.
//
// Shard count is DYCUCKOO_SHARDS (default 4) so CI can sweep 1/4/16.
// Set DYCUCKOO_CHAOS_ARTIFACT_DIR to dump per-shard RecoveryReports.

#include "service/sharded_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "durability/log_format.h"
#include "durability/sharded.h"
#include "gpusim/device_arena.h"
#include "gpusim/fault_injector.h"
#include "gpusim/grid.h"
#include "service/shard_router.h"
#include "service/shard_supervisor.h"
#include "test_util.h"

namespace dycuckoo {
namespace service {
namespace {

using Sharded = ShardedTableServer<uint32_t, uint32_t>;
using OpType = Sharded::OpType;

constexpr int kSoakRounds = 30;
constexpr int kQuarantineRounds = 8;
constexpr int kResumeRounds = 10;
constexpr int kOpsPerRequest = 12;
constexpr uint32_t kKeySpace = 4096;
constexpr uint32_t kNoFaultShard = 0xffffffffu;

uint32_t NumShardsFromEnv() {
  const char* env = std::getenv("DYCUCKOO_SHARDS");
  if (env == nullptr || *env == '\0') return 4;
  unsigned long n = std::strtoul(env, nullptr, 0);
  return n == 0 ? 4 : static_cast<uint32_t>(n);
}

// --- ShardSupervisor state machine (pure decision logic) ------------------

TEST(ShardSupervisor, QuarantineHealAndFailTransitions) {
  ShardSupervisorOptions opt;
  opt.heal_backoff_ticks = 10;
  opt.max_heal_attempts = 2;
  ShardSupervisor sup(3, opt);
  EXPECT_TRUE(sup.serving(1));
  EXPECT_EQ(sup.serving_count(), 3u);

  sup.Quarantine(1, /*now=*/100, Status::Unavailable("boom"));
  EXPECT_EQ(sup.state(1), ShardState::kQuarantined);
  EXPECT_EQ(sup.serving_count(), 2u);
  EXPECT_FALSE(sup.HealDue(1, 105));
  EXPECT_TRUE(sup.HealDue(1, 110));
  EXPECT_EQ(sup.RetryAfterTicks(1, 105), 5u);

  // Failed heal: backoff doubles; a second failure exhausts attempts.
  sup.OnHealFailure(1, 110, Status::DataLoss("still broken"));
  EXPECT_EQ(sup.state(1), ShardState::kQuarantined);
  EXPECT_FALSE(sup.HealDue(1, 115));
  EXPECT_TRUE(sup.HealDue(1, 130));  // 110 + 10*2
  sup.OnHealFailure(1, 130, Status::DataLoss("still broken"));
  EXPECT_EQ(sup.state(1), ShardState::kFailed);
  EXPECT_EQ(sup.RetryAfterTicks(1, 130), 0u);
  EXPECT_FALSE(sup.HealDue(1, 1 << 20));

  // A different shard heals and gets a generation fence bump.
  sup.Quarantine(2, 200, Status::Unavailable("crash"));
  EXPECT_EQ(sup.generation(2), 0u);
  sup.OnHealSuccess(2, 240);
  EXPECT_TRUE(sup.serving(2));
  EXPECT_EQ(sup.generation(2), 1u);
  EXPECT_EQ(sup.heals(), 1u);
  EXPECT_EQ(sup.quarantines(), 2u);
}

TEST(ShardRouter, DeterministicTotalAndSeedSensitive) {
  ShardRouter r(8, 42), r2(8, 42), r3(8, 43);
  std::vector<uint64_t> per_shard(8, 0);
  bool any_diff = false;
  for (uint32_t k = 1; k < 20000; ++k) {
    uint32_t s = r.ShardOf(k);
    ASSERT_LT(s, 8u);
    EXPECT_EQ(s, r2.ShardOf(k));
    any_diff |= (s != r3.ShardOf(k));
    ++per_shard[s];
  }
  EXPECT_TRUE(any_diff) << "router seed must matter";
  for (uint64_t n : per_shard) {
    EXPECT_GT(n, 20000 / 8 / 2) << "routing is badly skewed";
  }
}

// --- Deployment + workload helpers ----------------------------------------

struct Env {
  gpusim::DeviceArena arena{0};
  gpusim::Grid grid{1};  // single worker: bitwise-deterministic scenarios
  DyCuckooOptions topt;
  Sharded::Options options;

  explicit Env(uint32_t num_shards) {
    topt.arena = &arena;
    topt.grid = &grid;
    topt.initial_capacity = 16 * 1024;
    options.num_shards = num_shards;
    options.shard.scrub_buckets_per_step = 8;
    options.durability.checkpoint_wal_bytes = 0;
    options.durability.checkpoint_wal_records = 48;
    // Heal backoff far beyond the test horizon: scenarios control the
    // heal moment explicitly with RequestHealNow, so the quarantine
    // window stays open for as long as availability is being measured.
    options.supervisor.heal_backoff_ticks = 1 << 20;
    options.supervisor.max_heal_attempts = 6;
  }
};

struct Ledger {
  SplitMix64 rng{0};
  std::unordered_map<uint32_t, uint32_t> durable_acked;
  std::unordered_set<uint32_t> uncertain;
  std::unordered_set<uint32_t> ever_inserted;
  uint64_t unavailable_outside_fault_domain = 0;
  uint64_t fault_domain_rejections = 0;
  uint64_t ops = 0;
};

void MarkUncertain(const Sharded::Request& req, Ledger* led) {
  for (const Sharded::Op& op : req.ops) {
    if (op.type == OpType::kInsert) {
      led->uncertain.insert(op.key);
      led->ever_inserted.insert(op.key);
    } else if (op.type == OpType::kErase) {
      led->uncertain.insert(op.key);
    }
  }
}

/// `rounds` rounds; each round submits one single-shard request per shard
/// (rejection-sampled keys, so availability accounting is exact: a
/// request to shard s answers kUnavailable only if s itself refused).
/// Responses are classified per the side-effect contract; any
/// kUnavailable for a shard other than `fault_shard` is a fault-domain
/// breach and counted as such.
void RunShardRounds(Sharded* srv, int rounds, uint32_t fault_shard,
                    Ledger* led) {
  const uint32_t n = srv->num_shards();
  struct InFlight {
    uint64_t id;
    uint32_t shard;
    Sharded::Request req;
  };
  for (int r = 0; r < rounds; ++r) {
    std::vector<InFlight> in_flight;
    std::unordered_set<uint32_t> used;
    for (uint32_t s = 0; s < n; ++s) {
      Sharded::Request req;
      for (int i = 0; i < kOpsPerRequest; ++i) {
        uint32_t key;
        do {
          key = 1 + static_cast<uint32_t>(led->rng.Next() % kKeySpace);
        } while (srv->router().ShardOf(key) != s ||
                 !used.insert(key).second);
        uint64_t roll = led->rng.Next() % 10;
        if (roll < 6) {
          req.ops.push_back(Sharded::Op{
              OpType::kInsert, key, static_cast<uint32_t>(led->rng.Next())});
        } else if (roll < 8) {
          req.ops.push_back(Sharded::Op{OpType::kErase, key, 0});
        } else {
          req.ops.push_back(Sharded::Op{OpType::kFind, key, 0});
        }
      }
      led->ops += req.ops.size();
      Sharded::Request copy = req;
      uint64_t id = srv->Submit(std::move(req));
      in_flight.push_back(InFlight{id, s, std::move(copy)});
    }
    srv->RunUntilIdle();
    for (InFlight& f : in_flight) {
      Sharded::Response resp;
      ASSERT_TRUE(srv->TakeResponse(f.id, &resp))
          << "sharded server must always answer (shard " << f.shard << ")";
      const Status& st = resp.status;
      if (st.ok()) {
        for (const Sharded::Op& op : f.req.ops) {
          if (op.type == OpType::kInsert) {
            led->durable_acked[op.key] = op.value;
            led->ever_inserted.insert(op.key);
            led->uncertain.erase(op.key);
          } else if (op.type == OpType::kErase) {
            led->durable_acked.erase(op.key);
            led->uncertain.erase(op.key);
          }
        }
      } else if (st.IsUnavailable()) {
        if (f.shard != fault_shard) ++led->unavailable_outside_fault_domain;
        const std::string* shard_detail = st.FindDetail("shard");
        const std::string* executed = st.FindDetail("executed");
        if (shard_detail != nullptr) {
          // Front-door quarantine rejection or lost in-flight sub.
          EXPECT_EQ(*shard_detail, std::to_string(f.shard));
          EXPECT_NE(st.FindDetail("retry_after_ticks"), nullptr);
          ++led->fault_domain_rejections;
          ASSERT_NE(executed, nullptr);
          if (*executed == "uncertain") MarkUncertain(f.req, led);
        } else {
          // Breaker read-only rejection inside a serving shard: never
          // executed by contract.
        }
      } else if (st.IsResourceExhausted() ||
                 (st.IsDeadlineExceeded() && resp.attempts == 0)) {
        // Contractually never executed.
      } else {
        MarkUncertain(f.req, led);
      }
    }
  }
}

uint64_t ShardTableDigest(Sharded* srv, uint32_t shard) {
  auto pairs = srv->shard_server(shard)->table()->Dump();
  std::sort(pairs.begin(), pairs.end());
  uint64_t h = 1469598103934665603ull;
  for (const auto& [k, v] : pairs) {
    uint64_t x = (static_cast<uint64_t>(k) << 32) | v;
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

void VerifyLedger(Sharded* srv, const Ledger& led, const std::string& tag,
                  uint64_t seed) {
  for (const auto& [k, v] : led.durable_acked) {
    if (led.uncertain.count(k)) continue;
    uint32_t shard = srv->router().ShardOf(k);
    ASSERT_TRUE(srv->supervisor().serving(shard))
        << tag << ": shard " << shard << " not serving (seed=" << seed
        << ")";
    uint32_t rv = 0;
    bool found = srv->shard_server(shard)->table()->Find(k, &rv);
    EXPECT_TRUE(found) << tag << ": lost acked key " << k
                       << " on shard " << shard << " (seed=" << seed << ")";
    if (found) {
      EXPECT_EQ(rv, v) << tag << ": acked key " << k
                       << " has wrong value (seed=" << seed << ")";
    }
  }
  for (uint32_t s = 0; s < srv->num_shards(); ++s) {
    if (!srv->supervisor().serving(s)) continue;
    for (const auto& [k, v] : srv->shard_server(s)->table()->Dump()) {
      EXPECT_EQ(srv->router().ShardOf(k), s)
          << tag << ": key " << k << " mis-homed on shard " << s;
      EXPECT_TRUE(led.ever_inserted.count(k))
          << tag << ": phantom key " << k << " (seed=" << seed << ")";
    }
  }
}

void MaybeDumpShardArtifacts(const std::string& scenario, uint64_t seed,
                             Sharded* srv) {
  const char* dir = std::getenv("DYCUCKOO_CHAOS_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  for (uint32_t s = 0; s < srv->num_shards(); ++s) {
    std::ofstream out(std::string(dir) + "/" + scenario + "-shard-" +
                      std::to_string(s) + ".report.txt");
    out << "scenario: " << scenario << "\nseed: " << seed << "\nstate: "
        << ShardStateName(srv->supervisor().state(s)) << "\ngeneration: "
        << srv->supervisor().generation(s) << "\n"
        << srv->last_heal_report(s).ToString() << "\n";
    if (auto* fi = gpusim::FaultInjector::Active()) {
      // Memory-fault counters ride along with the I/O ones so a replayed
      // DYCUCKOO_CHAOS_SEED can be checked against the original campaign.
      out << "memory_faults_seen: " << fi->memory_faults_seen() << "\n"
          << "memory_faults_injected: " << fi->memory_faults_injected()
          << "\n";
    }
  }
}

// --- Functional basics ----------------------------------------------------

// Regression for a bug the [[nodiscard]] sweep surfaced: the heal path
// called ScrubAll() on the freshly recovered table and dropped the
// report, so a replay that produced corrupted slots (which the scrub
// unpublishes) would bring the shard up silently missing acknowledged
// keys.  The gate must pass clean reports and fail dirty ones with a
// machine-readable DataLoss.
TEST(ShardedServer, HealScrubGateRejectsDirtyRecoveredImages) {
  DynamicTable<uint32_t, uint32_t>::ScrubReport clean;
  EXPECT_TRUE(Sharded::CheckHealScrub(clean).ok());

  DynamicTable<uint32_t, uint32_t>::ScrubReport dirty;
  dirty.corrupted_slots = 3;
  Status st = Sharded::CheckHealScrub(dirty);
  EXPECT_TRUE(st.IsDataLoss()) << st.ToString();
  ASSERT_NE(st.FindDetail("corruption"), nullptr);
  EXPECT_EQ(*st.FindDetail("corruption"), "repairable");

  dirty.corrupted_unattributable = 1;
  st = Sharded::CheckHealScrub(dirty);
  EXPECT_TRUE(st.IsDataLoss()) << st.ToString();
  ASSERT_NE(st.FindDetail("corruption"), nullptr);
  EXPECT_EQ(*st.FindDetail("corruption"), "unrepairable");
}

TEST(ShardedServer, RoutesEveryKeyToExactlyOneShard) {
  Env env(4);
  std::unique_ptr<Sharded> srv;
  ASSERT_TRUE(Sharded::Create(env.topt, env.options, &srv).ok());

  std::vector<uint32_t> keys = testing::UniqueKeys(1500, 7);
  Sharded::Request req;
  for (size_t i = 0; i < keys.size(); ++i) {
    req.ops.push_back(Sharded::Op{OpType::kInsert, keys[i],
                                  static_cast<uint32_t>(i + 1)});
  }
  uint64_t id = srv->Submit(std::move(req));
  srv->RunUntilIdle();
  Sharded::Response resp;
  ASSERT_TRUE(srv->TakeResponse(id, &resp));
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(srv->total_size(), keys.size());

  // Each shard's table holds exactly the keys the router assigns it.
  for (uint32_t s = 0; s < 4; ++s) {
    for (const auto& [k, v] : srv->shard_server(s)->table()->Dump()) {
      EXPECT_EQ(srv->router().ShardOf(k), s);
    }
  }

  // A spanning request returns per-op results in the ORIGINAL op order.
  Sharded::Request find;
  for (size_t i = 0; i < keys.size(); i += 97) {
    find.ops.push_back(Sharded::Op{OpType::kFind, keys[i], 0});
  }
  size_t find_ops = find.ops.size();
  id = srv->Submit(std::move(find));
  srv->RunUntilIdle();
  ASSERT_TRUE(srv->TakeResponse(id, &resp));
  ASSERT_TRUE(resp.status.ok());
  ASSERT_EQ(resp.results.size(), find_ops);
  size_t idx = 0;
  for (size_t i = 0; i < keys.size(); i += 97, ++idx) {
    EXPECT_EQ(resp.results[idx].hit, 1u) << "key " << keys[i];
    EXPECT_EQ(resp.results[idx].value, static_cast<uint32_t>(i + 1));
  }

  // Empty requests complete OK immediately.
  id = srv->Submit(Sharded::Request{});
  ASSERT_TRUE(srv->TakeResponse(id, &resp));
  EXPECT_TRUE(resp.status.ok());

  // The manifest records this deployment's routing identity.
  EXPECT_TRUE(srv->manifest()
                  .ValidateCompatible(4, env.options.router_seed, 4, 4)
                  .ok());
}

// Satellite: a crashed shard's rejections carry machine-readable shard id
// and retry-after; an in-flight spanning request resolves the dead
// shard's portion as "uncertain" while healthy shards' results survive.
TEST(ShardedServer, QuarantineRejectionsCarryShardAndRetryAfter) {
  Env env(4);
  env.options.supervisor.heal_backoff_ticks = 1 << 20;  // no heal yet
  std::unique_ptr<Sharded> srv;
  ASSERT_TRUE(Sharded::Create(env.topt, env.options, &srv).ok());
  const uint32_t kTarget = 1;

  // Keys on each shard, found by rejection sampling.
  SplitMix64 rng(11);
  auto key_on = [&](uint32_t shard) {
    for (;;) {
      uint32_t k = 1 + static_cast<uint32_t>(rng.Next() % kKeySpace);
      if (srv->router().ShardOf(k) == shard) return k;
    }
  };

  // A spanning request in flight while shard 1's WAL commit kills it.
  gpusim::FaultInjectorConfig cfg;
  cfg.seed = 5;
  cfg.kill_at_point = 0;
  cfg.kill_point_filter = durability::ShardScope(kTarget) + "wal.commit.mid";
  Sharded::Response resp;
  {
    gpusim::ScopedFaultInjection scoped(cfg);
    Sharded::Request req;
    for (uint32_t s = 0; s < 4; ++s) {
      req.ops.push_back(Sharded::Op{OpType::kInsert, key_on(s), s + 100});
    }
    uint64_t id = srv->Submit(std::move(req));
    srv->RunUntilIdle();
    ASSERT_TRUE(srv->TakeResponse(id, &resp));
    ASSERT_EQ(scoped.injector().kill_points_fired(), 1u);
  }
  ASSERT_EQ(srv->supervisor().state(kTarget), ShardState::kQuarantined);
  ASSERT_TRUE(resp.status.IsUnavailable()) << resp.status.ToString();
  const std::string* executed = resp.status.FindDetail("executed");
  ASSERT_NE(executed, nullptr);
  EXPECT_EQ(*executed, "uncertain")
      << "in-flight sub-request on the dead shard is uncertain, not never";
  const std::string* shard_detail = resp.status.FindDetail("shard");
  ASSERT_NE(shard_detail, nullptr);
  EXPECT_EQ(*shard_detail, std::to_string(kTarget));

  // Front-door rejection for a new request: executed=never, retry hint.
  Sharded::Request rejected;
  rejected.ops.push_back(Sharded::Op{OpType::kInsert, key_on(kTarget), 9});
  uint64_t id = srv->Submit(std::move(rejected));
  ASSERT_TRUE(srv->TakeResponse(id, &resp));  // completed synchronously
  ASSERT_TRUE(resp.status.IsUnavailable());
  ASSERT_NE(resp.status.FindDetail("shard"), nullptr);
  EXPECT_EQ(*resp.status.FindDetail("shard"), std::to_string(kTarget));
  ASSERT_NE(resp.status.FindDetail("retry_after_ticks"), nullptr);
  EXPECT_GT(std::strtoull(
                resp.status.FindDetail("retry_after_ticks")->c_str(),
                nullptr, 10),
            0u);
  ASSERT_NE(resp.status.FindDetail("executed"), nullptr);
  EXPECT_EQ(*resp.status.FindDetail("executed"), "never");

  // Healthy shards are untouched: their requests succeed with no
  // Unavailable while shard 1 sits in quarantine.
  for (uint32_t s = 0; s < 4; ++s) {
    if (s == kTarget) continue;
    Sharded::Request ok_req;
    ok_req.ops.push_back(Sharded::Op{OpType::kInsert, key_on(s), s});
    id = srv->Submit(std::move(ok_req));
    srv->RunUntilIdle();
    ASSERT_TRUE(srv->TakeResponse(id, &resp));
    EXPECT_TRUE(resp.status.ok())
        << "shard " << s << ": " << resp.status.ToString();
  }
}

// --- The chaos soak -------------------------------------------------------

struct SoakOutcome {
  bool quarantined = false;
  bool healed = false;
  uint64_t heal_report_digest = 0;
  std::vector<uint64_t> shard_digests;
  uint64_t total_size = 0;
};

/// One full fault-domain scenario: soak with a shard-targeted kill point,
/// verify N-1 availability during quarantine, wait for self-heal, verify
/// no acked write was lost, resume fault-free, verify again.
SoakOutcome RunKillPointScenario(const std::string& kill_point,
                                 uint32_t target, uint64_t seed) {
  SCOPED_TRACE("kill=" + kill_point + " target_shard=" +
               std::to_string(target) + " | " +
               testing::ChaosReproLine("tests/test_sharded_server", seed));
  SoakOutcome outcome;
  const uint32_t n = NumShardsFromEnv();
  Env env(n);
  std::unique_ptr<Sharded> srv;
  Status st = Sharded::Create(env.topt, env.options, &srv);
  if (!st.ok()) {
    ADD_FAILURE() << "Create failed: " << st.ToString();
    return outcome;
  }

  Ledger led;
  led.rng = SplitMix64(seed);

  gpusim::FaultInjectorConfig cfg;
  cfg.seed = seed;
  cfg.kill_at_point = 0;
  cfg.kill_point_filter = durability::ShardScope(target) + kill_point;
  {
    gpusim::ScopedFaultInjection scoped(cfg);
    RunShardRounds(srv.get(), kSoakRounds, target, &led);
    EXPECT_EQ(scoped.injector().kill_points_fired(), 1u)
        << "the targeted kill point never fired; scenario is vacuous";
    outcome.quarantined =
        srv->supervisor().state(target) == ShardState::kQuarantined;
    EXPECT_TRUE(outcome.quarantined);
    EXPECT_EQ(srv->supervisor().serving_count(), n - 1);

    // N-1 availability: the other shards serve the whole quarantine with
    // zero Unavailable.  (Auto-heal is due after a few ticks; hold it off
    // by checking availability first, then stepping toward the heal.)
    if (n > 1) {
      Ledger before = led;
      RunShardRounds(srv.get(), kQuarantineRounds, target, &led);
      EXPECT_EQ(led.unavailable_outside_fault_domain, 0u)
          << "a healthy shard refused service during another shard's "
             "quarantine";
      EXPECT_GT(led.fault_domain_rejections,
                before.fault_domain_rejections)
          << "quarantined shard must reject, not hang";
    }

    EXPECT_EQ(srv->supervisor().state(target), ShardState::kQuarantined)
        << "quarantine window must hold for the whole availability "
           "measurement";

    // Self-heal: recovery + scrub + probation re-admission, all inside
    // Step() on the master clock.  The kill point stays installed — it
    // fires only at crossing #0, so the heal runs against live faults
    // armed but never triggered, like a real one-shot fault.
    srv->RequestHealNow(target);
    for (int i = 0;
         i < 5000 && !srv->supervisor().serving(target); ++i) {
      srv->Step();
    }
  }
  outcome.healed = srv->supervisor().serving(target);
  EXPECT_TRUE(outcome.healed)
      << "shard failed to self-heal: "
      << srv->supervisor().last_heal_status(target).ToString();
  if (!outcome.healed) {
    MaybeDumpShardArtifacts("soak-" + kill_point, seed, srv.get());
    return outcome;
  }
  EXPECT_EQ(srv->supervisor().generation(target), 1u);
  EXPECT_EQ(srv->supervisor().heals(), 1u);
  outcome.heal_report_digest = srv->last_heal_report(target).Digest();
  EXPECT_EQ(srv->last_heal_report(target).segment,
            durability::WalSegmentName(target, n));

  // Healed shard re-admits writes through the breaker's half-open probe:
  // it is read-only until the probe write lands.
  EXPECT_TRUE(srv->shard_server(target)->read_only());

  // Reconcile: the healed shard is the authority for uncertain keys.
  for (auto it = led.uncertain.begin(); it != led.uncertain.end();) {
    uint32_t k = *it;
    uint32_t shard = srv->router().ShardOf(k);
    uint32_t rv = 0;
    if (srv->shard_server(shard)->table()->Find(k, &rv)) {
      led.durable_acked[k] = rv;
    } else {
      led.durable_acked.erase(k);
    }
    it = led.uncertain.erase(it);
  }
  VerifyLedger(srv.get(), led, "post-heal", seed);

  // Resume fault-free: the probe write closes the breaker and the whole
  // deployment finishes the workload.
  RunShardRounds(srv.get(), kResumeRounds, kNoFaultShard, &led);
  EXPECT_EQ(led.unavailable_outside_fault_domain, 0u);
  EXPECT_EQ(srv->shard_server(target)->breaker().state(),
            CircuitBreaker::State::kClosed)
      << "probe write should have closed the healed shard's breaker";
  EXPECT_TRUE(led.uncertain.empty());
  VerifyLedger(srv.get(), led, "post-resume", seed);
  EXPECT_EQ(srv->total_size(), led.durable_acked.size());

  outcome.total_size = srv->total_size();
  for (uint32_t s = 0; s < n; ++s) {
    outcome.shard_digests.push_back(ShardTableDigest(srv.get(), s));
  }
  MaybeDumpShardArtifacts("soak-" + kill_point, seed, srv.get());
  return outcome;
}

TEST(ShardedChaosSoak, EveryKillPointQuarantinesOnlyItsShard) {
  const uint64_t seed = testing::ChaosSeedFromEnv(0xD1C0CC01);
  const uint32_t n = NumShardsFromEnv();
  for (size_t i = 0; i < durability::kNumKillPoints; ++i) {
    const uint32_t target = static_cast<uint32_t>((seed + i) % n);
    RunKillPointScenario(durability::kKillPointNames[i], target,
                         seed ^ (i * 0x9E3779B9u));
  }
}

TEST(ShardedChaosSoak, SameSeedReplaysBitIdentically) {
  const uint64_t seed = testing::ChaosSeedFromEnv(0xD1C0CC02);
  const uint32_t n = NumShardsFromEnv();
  const uint32_t target = static_cast<uint32_t>(seed % n);
  SoakOutcome a = RunKillPointScenario("wal.commit.mid", target, seed);
  SoakOutcome b = RunKillPointScenario("wal.commit.mid", target, seed);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.healed, b.healed);
  EXPECT_EQ(a.heal_report_digest, b.heal_report_digest)
      << "recovery reports must replay bit-identically under one seed";
  EXPECT_EQ(a.total_size, b.total_size);
  EXPECT_EQ(a.shard_digests, b.shard_digests)
      << "per-shard table contents must replay bit-identically";
}

// Shard-targeted allocation faults: the per-shard memory tag scopes an
// OOM campaign to one shard.  The faulted shard cannot grow (its resize
// allocations all fail; the stash absorbs the overflow, so it keeps
// serving — degraded, not dead) while the other shard's resizes proceed
// untouched.
TEST(ShardedServer, AllocFaultsScopeToOneShardTag) {
  Env env(2);
  std::unique_ptr<Sharded> srv;
  ASSERT_TRUE(Sharded::Create(env.topt, env.options, &srv).ok());
  EXPECT_EQ(srv->shard_table_options(0).memory_tag,
            durability::ShardScope(0) + "dycuckoo");
  EXPECT_EQ(srv->shard_table_options(1).memory_tag,
            durability::ShardScope(1) + "dycuckoo");
  EXPECT_NE(srv->shard_table_options(0).seed,
            srv->shard_table_options(1).seed)
      << "shard hash seeds must be decorrelated";

  const uint64_t bytes0_before =
      env.arena.used_bytes_for(srv->shard_table_options(0).memory_tag);
  const uint64_t bytes1_before =
      env.arena.used_bytes_for(srv->shard_table_options(1).memory_tag);
  EXPECT_EQ(bytes0_before, bytes1_before)
      << "shards start from identical footprints";

  gpusim::FaultInjectorConfig cfg;
  cfg.seed = 3;
  cfg.fail_after_allocs = 0;  // every allocation under the tag fails...
  cfg.alloc_tag_filter = durability::ShardScope(1);  // ...for shard 1 only
  gpusim::ScopedFaultInjection scoped(cfg);

  // Push well past each shard's initial capacity so growth is mandatory.
  // Every request must still be acked: shard 0 grows normally; shard 1's
  // resize allocations all fail under the campaign and its overflow goes
  // to the stash instead.
  SplitMix64 rng(17);
  for (int round = 0; round < 280; ++round) {
    Sharded::Request req0, req1;
    while (req0.ops.size() < 64 || req1.ops.size() < 64) {
      uint32_t k = 1 + static_cast<uint32_t>(rng.Next());
      if (k >= 0xfffffffeu) continue;
      uint32_t v = static_cast<uint32_t>(rng.Next());
      Sharded::Request& req =
          srv->router().ShardOf(k) == 0 ? req0 : req1;
      if (req.ops.size() < 64) {
        req.ops.push_back(Sharded::Op{OpType::kInsert, k, v});
      }
    }
    uint64_t id0 = srv->Submit(std::move(req0));
    uint64_t id1 = srv->Submit(std::move(req1));
    srv->RunUntilIdle();
    Sharded::Response resp;
    ASSERT_TRUE(srv->TakeResponse(id0, &resp));
    EXPECT_TRUE(resp.status.ok())
        << "shard 0 must be untouched by shard 1's alloc campaign: "
        << resp.status.ToString();
    ASSERT_TRUE(srv->TakeResponse(id1, &resp));
    EXPECT_TRUE(resp.status.ok())
        << "alloc exhaustion degrades shard 1, it must not drop writes: "
        << resp.status.ToString();
  }

  // The campaign matched shard 1's allocations — and ONLY shard 1's: its
  // device footprint is frozen at the creation-time bytes while shard 0,
  // holding the same key volume, grew.
  EXPECT_GT(scoped.injector().allocations_failed(), 0u)
      << "campaign never matched shard 1's tag — scoping is broken";
  EXPECT_EQ(scoped.injector().allocations_failed(),
            scoped.injector().allocations_seen())
      << "only shard 1's (all-failing) allocations may match the filter";
  const uint64_t bytes0_after =
      env.arena.used_bytes_for(srv->shard_table_options(0).memory_tag);
  const uint64_t bytes1_after =
      env.arena.used_bytes_for(srv->shard_table_options(1).memory_tag);
  EXPECT_GT(bytes0_after, bytes0_before)
      << "shard 0 never resized; the scenario is vacuous";
  EXPECT_EQ(bytes1_after, bytes1_before)
      << "shard 1 allocated device memory despite the campaign";
  // Both shards hold their full key volume — far past the frozen shard's
  // device capacity (shard 1's overflow lives in the stash) — and an
  // alloc-starved shard is degraded, not an integrity fault: nobody gets
  // quarantined.
  EXPECT_GT(srv->shard_server(0)->table()->size(), 16000u);
  EXPECT_GT(srv->shard_server(1)->table()->size(), 16000u);
  EXPECT_EQ(srv->supervisor().serving_count(), 2u);
}

}  // namespace
}  // namespace service
}  // namespace dycuckoo
