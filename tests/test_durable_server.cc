// Chaos acceptance for the durability stack: a TableServer with an
// attached DurabilityManager is crashed at every kill point and under
// every crash-style I/O fault while a shadow map tracks exactly which
// writes were acknowledged; after each crash, Recover() must rebuild a
// table that (a) contains every acknowledged write and (b) contains no
// phantom or resurrected key.  The recovered table is then adopted by a
// fresh server and the workload resumes fault-free to completion.
//
// Reproduce a CI failure locally with DYCUCKOO_CHAOS_SEED=<seed> (the
// failing seed is printed in every assertion message).  Set
// DYCUCKOO_CHAOS_ARTIFACT_DIR to dump the WAL/checkpoint images of a
// failing scenario for offline inspection.

#include "service/table_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "durability/log_format.h"
#include "durability/manager.h"
#include "durability/recovery.h"
#include "dycuckoo/dynamic_table.h"
#include "dycuckoo/options.h"
#include "gpusim/device_arena.h"
#include "gpusim/fault_injector.h"
#include "gpusim/grid.h"
#include "test_util.h"

namespace dycuckoo {
namespace service {
namespace {

using Server = TableServer<uint32_t, uint32_t>;
using OpType = Server::OpType;
using Table = DynamicTable<uint32_t, uint32_t>;
using Manager = durability::DurabilityManager<uint32_t, uint32_t>;

constexpr int kSoakRounds = 80;
constexpr int kResumeRounds = 30;
constexpr int kRequestsPerRound = 6;
constexpr int kOpsPerRequest = 16;
constexpr uint32_t kKeySpace = 4096;

uint64_t TableDigest(const Table& table) {
  auto pairs = table.Dump();
  std::sort(pairs.begin(), pairs.end());
  uint64_t h = 1469598103934665603ull;
  for (const auto& [k, v] : pairs) {
    uint64_t x = (static_cast<uint64_t>(k) << 32) | v;
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// The client-side ledger the acceptance criteria are phrased against.
///
///   durable_acked: key -> value as of the last OK-acknowledged write.
///   uncertain:     keys whose durable state the client cannot assert —
///                  touched by a DataLoss / partial-failure / retried-then-
///                  expired response, or by a request that never got an ack
///                  before the crash.  (A later OK write re-certifies the
///                  key and removes it from the set.)
///   ever_inserted: every key that any possibly-executed insert carried;
///                  the recovered table may contain nothing outside it.
struct WorkloadState {
  SplitMix64 rng{0};
  std::unordered_map<uint32_t, uint32_t> durable_acked;
  std::unordered_set<uint32_t> uncertain;
  std::unordered_set<uint32_t> ever_inserted;
  uint64_t ops = 0;
  uint64_t data_loss_responses = 0;
};

void MarkUncertain(const Server::Request& req, WorkloadState* s) {
  for (const Server::Op& op : req.ops) {
    if (op.type == OpType::kInsert) {
      s->uncertain.insert(op.key);
      s->ever_inserted.insert(op.key);
    } else if (op.type == OpType::kErase) {
      s->uncertain.insert(op.key);
    }
  }
}

/// Runs `rounds` micro-batch rounds of a 60/20/20 insert/erase/find mix,
/// classifying every response per the server's side-effect contract.
/// Stops early once the server crashed (a dead server acks nothing).
void RunRounds(Server* server, int rounds, WorkloadState* s) {
  for (int r = 0; r < rounds && !server->crashed(); ++r) {
    std::vector<std::pair<uint64_t, Server::Request>> in_flight;
    // Distinct keys within a round: duplicate keys inside one coalesced
    // batch would race and make the shadow map ill-defined.
    std::unordered_set<uint32_t> used;
    for (int q = 0; q < kRequestsPerRound; ++q) {
      Server::Request req;
      for (int i = 0; i < kOpsPerRequest; ++i) {
        uint32_t key;
        do {
          key = 1 + static_cast<uint32_t>(s->rng.Next() % kKeySpace);
        } while (!used.insert(key).second);
        uint64_t roll = s->rng.Next() % 10;
        if (roll < 6) {
          req.ops.push_back(Server::Op{OpType::kInsert, key,
                                       static_cast<uint32_t>(s->rng.Next())});
        } else if (roll < 8) {
          req.ops.push_back(Server::Op{OpType::kErase, key, 0});
        } else {
          req.ops.push_back(Server::Op{OpType::kFind, key, 0});
        }
      }
      s->ops += req.ops.size();
      Server::Request copy = req;
      uint64_t id = server->Submit(std::move(req));
      in_flight.emplace_back(id, std::move(copy));
    }
    server->RunUntilIdle();
    for (auto& [id, req] : in_flight) {
      Server::Response resp;
      if (!server->TakeResponse(id, &resp)) {
        MarkUncertain(req, s);  // crashed before the ack left
        continue;
      }
      const Status& st = resp.status;
      if (st.ok()) {
        for (const Server::Op& op : req.ops) {
          if (op.type == OpType::kInsert) {
            s->durable_acked[op.key] = op.value;
            s->ever_inserted.insert(op.key);
            s->uncertain.erase(op.key);
          } else if (op.type == OpType::kErase) {
            s->durable_acked.erase(op.key);
            s->uncertain.erase(op.key);
          }
        }
      } else if (st.IsResourceExhausted() || st.IsUnavailable() ||
                 (st.IsDeadlineExceeded() && resp.attempts == 0)) {
        // Contractually never executed: no table or WAL effect.
      } else {
        if (st.IsDataLoss()) ++s->data_loss_responses;
        MarkUncertain(req, s);
      }
    }
  }
}

struct ScenarioOutcome {
  bool crashed = false;
  uint64_t ops = 0;
  uint64_t recovery_digest = 0;
  uint64_t table_digest = 0;
  uint64_t data_loss_responses = 0;
  std::string wal_image;
  std::string ckpt_image;
};

void MaybeDumpArtifacts(const std::string& scenario, uint64_t seed,
                        const ScenarioOutcome& o) {
  const char* dir = std::getenv("DYCUCKOO_CHAOS_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::string base = std::string(dir) + "/" + scenario;
  std::ofstream(base + ".wal", std::ios::binary) << o.wal_image;
  std::ofstream(base + ".ckpt", std::ios::binary) << o.ckpt_image;
  std::ofstream(base + ".seed") << seed << "\n";
}

/// One full chaos scenario: serve under (optional) injected faults, crash,
/// recover, verify the acceptance invariants, resume, verify again.
ScenarioOutcome RunScenario(const std::string& name,
                            const gpusim::FaultInjectorConfig* fault_cfg,
                            uint64_t seed) {
  SCOPED_TRACE(name + " | " +
               testing::ChaosReproLine("tests/test_durable_server", seed));
  ScenarioOutcome outcome;

  gpusim::DeviceArena arena(/*capacity_bytes=*/0);  // unbounded, private
  gpusim::Grid grid(1);  // single worker: bitwise-deterministic scenarios
  DyCuckooOptions topt;
  topt.arena = &arena;
  topt.grid = &grid;
  topt.initial_capacity = 8192;

  TableServerOptions sopt;
  sopt.scrub_buckets_per_step = 16;

  durability::DurabilityOptions dopts;
  dopts.checkpoint_wal_bytes = 0;
  dopts.checkpoint_wal_records = 96;  // several checkpoints per scenario

  std::unique_ptr<Server> server;
  Status st = Server::Create(topt, sopt, &server);
  if (!st.ok()) {
    ADD_FAILURE() << name << ": Create failed: " << st.ToString();
    return outcome;
  }
  Manager manager(dopts);
  server->AttachDurability(&manager);

  WorkloadState state;
  state.rng = SplitMix64(seed);
  {
    std::unique_ptr<gpusim::ScopedFaultInjection> scoped;
    if (fault_cfg != nullptr) {
      gpusim::FaultInjectorConfig cfg = *fault_cfg;
      cfg.seed = seed;
      scoped = std::make_unique<gpusim::ScopedFaultInjection>(cfg);
    }
    RunRounds(server.get(), kSoakRounds, &state);
  }
  outcome.crashed = server->crashed();
  outcome.wal_image = manager.wal().durable_image();
  outcome.ckpt_image = manager.checkpoints().durable_image();

  // --- Point-in-time recovery from the crash images -----------------------
  std::istringstream ckpt_stream(outcome.ckpt_image);
  std::istringstream wal_stream(outcome.wal_image);
  std::unique_ptr<Table> recovered;
  durability::RecoveryReport report;
  st = durability::Recover<uint32_t, uint32_t>(ckpt_stream, wal_stream, topt,
                                               &recovered, &report);
  if (!st.ok()) {
    ADD_FAILURE() << name << ": recovery failed: " << st.ToString()
                  << " (seed=" << seed << ")";
    outcome.ops = state.ops;
    outcome.data_loss_responses = state.data_loss_responses;
    return outcome;
  }
  outcome.recovery_digest = report.Digest();
  outcome.table_digest = TableDigest(*recovered);

  // No lost acknowledged write: every OK-acked key the client can still
  // reason about must be present with the acked value.
  for (const auto& [k, v] : state.durable_acked) {
    if (state.uncertain.count(k)) continue;
    uint32_t rv = 0;
    bool found = recovered->Find(k, &rv);
    EXPECT_TRUE(found) << name << ": lost acked key " << k
                       << " (seed=" << seed << ")";
    if (found) {
      EXPECT_EQ(rv, v) << name << ": acked key " << k
                       << " recovered with wrong value (seed=" << seed << ")";
    }
  }
  // No phantom key: nothing recovers that no insert ever carried.
  for (const auto& [k, v] : recovered->Dump()) {
    EXPECT_TRUE(state.ever_inserted.count(k))
        << name << ": phantom key " << k << " (seed=" << seed << ")";
  }
  // No resurrected key: an acked erase (with no later uncertainty) sticks.
  for (uint32_t k : state.ever_inserted) {
    if (state.durable_acked.count(k) || state.uncertain.count(k)) continue;
    EXPECT_FALSE(recovered->Find(k))
        << name << ": erased key " << k << " resurrected (seed=" << seed
        << ")";
  }

  // --- Resume: adopt the recovered table and finish fault-free ------------
  if (outcome.crashed) {
    // The recovered table is now the authority for every uncertain key.
    for (uint32_t k : state.uncertain) {
      uint32_t rv = 0;
      if (recovered->Find(k, &rv)) {
        state.durable_acked[k] = rv;
      } else {
        state.durable_acked.erase(k);
      }
    }
    state.uncertain.clear();
    EXPECT_EQ(recovered->size(), state.durable_acked.size())
        << name << ": reconciled shadow diverges (seed=" << seed << ")";

    Manager resumed(dopts, /*start_lsn=*/report.last_lsn + 1);
    // Baseline checkpoint: the fresh WAL starts past the replayed history,
    // so the recovered state must be checkpointed before serving again.
    st = resumed.CheckpointNow(recovered.get());
    EXPECT_TRUE(st.ok()) << name << ": " << st.ToString();
    std::unique_ptr<Server> server2;
    st = Server::Adopt(std::move(recovered), sopt, &server2);
    if (!st.ok()) {
      ADD_FAILURE() << name << ": Adopt failed: " << st.ToString();
      outcome.ops = state.ops;
      return outcome;
    }
    server2->AttachDurability(&resumed);
    {
      // After reconciling uncertain keys, the shadow map must equal the
      // adopted table exactly; any later divergence is then known to come
      // from the resume phase rather than from recovery.
      auto d0 = server2->table()->Dump();
      EXPECT_EQ(d0.size(), state.durable_acked.size())
          << name << ": adopt-time divergence (seed=" << seed << ")";
      for (const auto& [k, v] : d0) {
        auto it = state.durable_acked.find(k);
        if (it == state.durable_acked.end()) {
          ADD_FAILURE() << name << ": adopt-time live-only key " << k
                        << " (seed=" << seed << ")";
        } else if (it->second != v) {
          ADD_FAILURE() << name << ": adopt-time value diff on key " << k
                        << " (seed=" << seed << ")";
        }
      }
    }
    RunRounds(server2.get(), kResumeRounds, &state);
    EXPECT_FALSE(server2->crashed()) << name << " (seed=" << seed << ")";
    EXPECT_TRUE(state.uncertain.empty())
        << name << ": fault-free resume left uncertain keys (seed=" << seed
        << ")";

    // Final differential check: live table == shadow map, exactly.
    auto dump = server2->table()->Dump();
    {
      // Structural invariants (notably global key uniqueness: a duplicate
      // would let FIND and Dump disagree about a key's value).
      Status vst = server2->table()->Validate();
      EXPECT_TRUE(vst.ok()) << name << ": " << vst.ToString()
                            << " (seed=" << seed << ")";
    }
    EXPECT_EQ(dump.size(), state.durable_acked.size())
        << name << " (seed=" << seed << ")";
    for (const auto& [k, v] : dump) {
      auto it = state.durable_acked.find(k);
      if (it == state.durable_acked.end()) {
        ADD_FAILURE() << name << ": live key " << k
                      << " not in shadow (seed=" << seed << ")";
        continue;
      }
      EXPECT_EQ(it->second, v) << name << ": key " << k << " (seed=" << seed
                               << ")";
    }
    // And the post-resume durable images reproduce the live table.
    std::istringstream cs2(resumed.checkpoints().durable_image());
    std::istringstream ws2(resumed.wal().durable_image());
    std::unique_ptr<Table> recovered2;
    durability::RecoveryReport report2;
    st = durability::Recover<uint32_t, uint32_t>(cs2, ws2, topt, &recovered2,
                                                 &report2);
    EXPECT_TRUE(st.ok()) << name << ": post-resume recovery: "
                         << st.ToString() << " (seed=" << seed << ")";
    if (st.ok()) {
      EXPECT_EQ(TableDigest(*recovered2), TableDigest(*server2->table()))
          << name << ": durable state diverges from live state (seed=" << seed
          << ")";
    }
  }

  outcome.ops = state.ops;
  outcome.data_loss_responses = state.data_loss_responses;
  return outcome;
}

int KillIndexFor(const std::string& point) {
  // WAL commits happen every batch, so let some history accumulate first;
  // checkpoint-protocol points fire roughly once per checkpoint.
  if (point.rfind("wal.commit", 0) == 0) return 20;
  if (point == "wal.truncate.after") return 1;  // needs two checkpoints
  return 2;                                     // third checkpoint
}

// The acceptance soak: every kill point + every crash-style I/O fault +
// a clean flush failure + a fault-free baseline, >= 50k ops in aggregate.
TEST(DurableServerChaosTest, KillPointAndIoFaultSoakNeverLosesAckedWrites) {
  const uint64_t base_seed = testing::ChaosSeedFromEnv(0xD1C0CC00u);

  struct Spec {
    std::string name;
    gpusim::FaultInjectorConfig cfg;
    bool has_fault = true;
    bool expect_crash = true;
  };
  std::vector<Spec> specs;
  {
    Spec s;
    s.name = "baseline";
    s.has_fault = false;
    s.expect_crash = false;
    specs.push_back(s);
  }
  {
    Spec s;
    s.name = "io.clean_fail";
    s.cfg.io_fail_nth_flush = 7;
    s.expect_crash = false;
    specs.push_back(s);
  }
  {
    Spec s;
    s.name = "io.short_write";
    s.cfg.io_short_write_at_flush = 30;
    specs.push_back(s);
  }
  {
    Spec s;
    s.name = "io.torn_write";
    s.cfg.io_torn_write_at_flush = 30;
    specs.push_back(s);
  }
  {
    Spec s;
    s.name = "io.bit_flip";
    s.cfg.io_bit_flip_at_flush = 30;
    specs.push_back(s);
  }
  for (size_t i = 0; i < durability::kNumKillPoints; ++i) {
    Spec s;
    s.name = std::string("kill.") + durability::kKillPointNames[i];
    s.cfg.kill_point_filter = durability::kKillPointNames[i];
    s.cfg.kill_at_point = KillIndexFor(durability::kKillPointNames[i]);
    specs.push_back(s);
  }

  uint64_t total_ops = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    const Spec& spec = specs[i];
    uint64_t seed = base_seed ^ (0x9E3779B97F4A7C15ull * (i + 1));
    ScenarioOutcome outcome =
        RunScenario(spec.name, spec.has_fault ? &spec.cfg : nullptr, seed);
    total_ops += outcome.ops;
    EXPECT_EQ(outcome.crashed, spec.expect_crash)
        << spec.name << ": crash expectation (seed=" << seed << ")";
    if (::testing::Test::HasFailure()) {
      MaybeDumpArtifacts(spec.name, seed, outcome);
    }
  }
  EXPECT_GE(total_ops, 50000u) << "soak did not reach the 50k-op target";
}

TEST(DurableServerChaosTest, SameSeedProducesIdenticalRecoveryDigests) {
  const uint64_t seed = testing::ChaosSeedFromEnv(0xFACEFEEDu);
  gpusim::FaultInjectorConfig cfg;
  cfg.kill_point_filter = "wal.commit.mid";
  cfg.kill_at_point = 12;
  ScenarioOutcome a = RunScenario("digest.first", &cfg, seed);
  ScenarioOutcome b = RunScenario("digest.second", &cfg, seed);
  EXPECT_TRUE(a.crashed) << "seed=" << seed;
  EXPECT_EQ(a.wal_image, b.wal_image) << "seed=" << seed;
  EXPECT_EQ(a.ckpt_image, b.ckpt_image) << "seed=" << seed;
  EXPECT_EQ(a.recovery_digest, b.recovery_digest) << "seed=" << seed;
  EXPECT_EQ(a.table_digest, b.table_digest) << "seed=" << seed;
}

// A clean (retryable) flush failure must surface as DataLoss on the acked
// response — the write is live but not yet durable — and the retained
// records must ride out on the next group commit.
TEST(DurableServerTest, CleanFlushFailureSurfacesDataLossThenRecovers) {
  gpusim::FaultInjectorConfig cfg;
  cfg.io_fail_nth_flush = 0;
  gpusim::ScopedFaultInjection scoped(cfg);

  gpusim::DeviceArena arena(0);
  gpusim::Grid grid(1);
  DyCuckooOptions topt;
  topt.arena = &arena;
  topt.grid = &grid;
  std::unique_ptr<Server> server;
  ASSERT_TRUE(Server::Create(topt, {}, &server).ok());
  Manager manager;
  server->AttachDurability(&manager);

  Server::Request req;
  for (uint32_t k = 1; k <= 8; ++k) {
    req.ops.push_back(Server::Op{OpType::kInsert, k, k * 10});
  }
  uint64_t id1 = server->Submit(std::move(req));
  server->RunUntilIdle();
  Server::Response resp;
  ASSERT_TRUE(server->TakeResponse(id1, &resp));
  EXPECT_TRUE(resp.status.IsDataLoss()) << resp.status.ToString();
  EXPECT_TRUE(server->table()->Find(3));     // applied to the live table
  EXPECT_EQ(manager.wal().pending_records(), 8u);  // but retained, not durable
  EXPECT_EQ(manager.stats().commit_failures, 1u);

  // The next batch's group commit carries the retained records with it.
  Server::Request req2;
  req2.ops.push_back(Server::Op{OpType::kInsert, 100, 1000});
  uint64_t id2 = server->Submit(std::move(req2));
  server->RunUntilIdle();
  ASSERT_TRUE(server->TakeResponse(id2, &resp));
  EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(manager.wal().pending_records(), 0u);

  std::istringstream cs(manager.checkpoints().durable_image());
  std::istringstream ws(manager.wal().durable_image());
  std::unique_ptr<Table> recovered;
  durability::RecoveryReport report;
  Status rst =
      durability::Recover<uint32_t, uint32_t>(cs, ws, topt, &recovered,
                                              &report);
  ASSERT_TRUE(rst.ok()) << rst.ToString();
  EXPECT_EQ(recovered->size(), 9u);  // all 9 inserts made it to the log
  uint32_t v = 0;
  EXPECT_TRUE(recovered->Find(3, &v));
  EXPECT_EQ(v, 30u);
}

// A crash before the group commit persists anything must leave no ack and
// an empty recovery: the client was never told the write happened.
TEST(DurableServerTest, CrashBeforeCommitNeverAcksAndRecoversEmpty) {
  gpusim::FaultInjectorConfig cfg;
  cfg.kill_point_filter = "wal.commit.before";
  cfg.kill_at_point = 0;
  gpusim::ScopedFaultInjection scoped(cfg);

  gpusim::DeviceArena arena(0);
  gpusim::Grid grid(1);
  DyCuckooOptions topt;
  topt.arena = &arena;
  topt.grid = &grid;
  std::unique_ptr<Server> server;
  ASSERT_TRUE(Server::Create(topt, {}, &server).ok());
  Manager manager;
  server->AttachDurability(&manager);

  Server::Request req;
  req.ops.push_back(Server::Op{OpType::kInsert, 42, 420});
  uint64_t id = server->Submit(std::move(req));
  server->RunUntilIdle();
  EXPECT_TRUE(server->crashed());
  Server::Response resp;
  EXPECT_FALSE(server->TakeResponse(id, &resp));  // the ack never left

  std::istringstream cs(manager.checkpoints().durable_image());
  std::istringstream ws(manager.wal().durable_image());
  std::unique_ptr<Table> recovered;
  durability::RecoveryReport report;
  Status rst =
      durability::Recover<uint32_t, uint32_t>(cs, ws, topt, &recovered,
                                              &report);
  ASSERT_TRUE(rst.ok()) << rst.ToString();
  EXPECT_EQ(recovered->size(), 0u);
  EXPECT_EQ(report.last_lsn, 0u);
}

}  // namespace
}  // namespace service
}  // namespace dycuckoo
