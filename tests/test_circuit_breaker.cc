// CircuitBreaker: the closed -> open -> half-open -> closed state machine.

#include "service/circuit_breaker.h"

#include <gtest/gtest.h>

namespace dycuckoo {
namespace service {
namespace {

CircuitBreakerOptions TestOptions() {
  CircuitBreakerOptions o;
  o.failure_threshold = 3;
  o.cooldown_ticks = 100;
  return o;
}

TEST(CircuitBreakerTest, StartsClosedAndAllowsWrites) {
  CircuitBreaker b(TestOptions());
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_FALSE(b.read_only());
  EXPECT_TRUE(b.AllowWrite(0));
  EXPECT_TRUE(b.AllowWrite(0));  // no probe bookkeeping while closed
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailures) {
  CircuitBreaker b(TestOptions());
  b.OnWriteFailure(10);
  b.OnWriteFailure(11);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  b.OnWriteFailure(12);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(b.read_only());
  EXPECT_EQ(b.trips(), 1u);
  EXPECT_FALSE(b.AllowWrite(12));
  EXPECT_FALSE(b.AllowWrite(111));  // cooldown ends at 12 + 100
}

TEST(CircuitBreakerTest, SuccessResetsFailureStreak) {
  CircuitBreaker b(TestOptions());
  b.OnWriteFailure(0);
  b.OnWriteFailure(1);
  b.OnWriteSuccess();
  EXPECT_EQ(b.consecutive_failures(), 0);
  b.OnWriteFailure(2);
  b.OnWriteFailure(3);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe) {
  CircuitBreaker b(TestOptions());
  for (int i = 0; i < 3; ++i) b.OnWriteFailure(0);
  ASSERT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(b.AllowWrite(200));  // past cooldown: the probe
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(b.read_only());  // still degraded until the probe resolves
  EXPECT_FALSE(b.AllowWrite(200));
  EXPECT_FALSE(b.AllowWrite(500));  // only the probe flies, however late
}

TEST(CircuitBreakerTest, ProbeSuccessClosesAndCountsRecovery) {
  CircuitBreaker b(TestOptions());
  for (int i = 0; i < 3; ++i) b.OnWriteFailure(0);
  ASSERT_TRUE(b.AllowWrite(150));
  b.OnWriteSuccess();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_FALSE(b.read_only());
  EXPECT_EQ(b.recoveries(), 1u);
  EXPECT_TRUE(b.AllowWrite(151));
  EXPECT_TRUE(b.AllowWrite(151));
}

TEST(CircuitBreakerTest, ProbeFailureReopensForAnotherCooldown) {
  CircuitBreaker b(TestOptions());
  for (int i = 0; i < 3; ++i) b.OnWriteFailure(0);
  ASSERT_TRUE(b.AllowWrite(150));
  b.OnWriteFailure(150);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.trips(), 2u);
  EXPECT_FALSE(b.AllowWrite(200));  // new cooldown runs to 150 + 100
  EXPECT_TRUE(b.AllowWrite(250));   // next probe
  b.OnWriteSuccess();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(b.recoveries(), 1u);
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kClosed),
               "closed");
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kOpen),
               "open");
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kHalfOpen),
               "half-open");
}

}  // namespace
}  // namespace service
}  // namespace dycuckoo
