// Pins docs/robustness.md to the fault-injector kill-point registries.
//
// Every kill point the code can cross is named in exactly one registry:
//   - durability::kKillPointNames        (8, the durability protocol)
//   - durability::kReshardKillPointNames (5, elastic resharding)
//   - gpusim::DeviceArena::kSweepKillPointNames (2, memory-fault sweeps)
// and docs/robustness.md documents each name in backticks.  This test
// parses the document at runtime and asserts set equality in BOTH
// directions, so a kill point added (or renamed) in code without a doc
// update — or documented without existing — fails CI instead of rotting.
//
// The historical drift candidates are the `mem.sweep.*` names: they live
// outside the 8-entry durability registry (a fault-free run never crosses
// them) and were documented prose-first.

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "durability/log_format.h"
#include "gpusim/device_arena.h"

namespace dycuckoo {
namespace {

#ifndef DYCUCKOO_SOURCE_DIR
#error "test_kill_points needs DYCUCKOO_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

std::string ReadRobustnessDoc() {
  const std::string path =
      std::string(DYCUCKOO_SOURCE_DIR) + "/docs/robustness.md";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// A backticked token counts as a kill-point name iff it starts with a
// registry prefix followed by a dot and contains only [a-z_.].  That
// keeps detail keys (`reshard_chunk`), env knobs (`mem_tag_filter`), and
// file names (`wal-00000-of-N.seg`) out of the set.
bool LooksLikeKillPoint(const std::string& tok) {
  static const char* kPrefixes[] = {"wal.", "ckpt.", "mem.", "reshard."};
  bool prefixed = false;
  for (const char* p : kPrefixes) {
    if (tok.rfind(p, 0) == 0) prefixed = true;
  }
  if (!prefixed) return false;
  for (char c : tok) {
    if (!(std::islower(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.')) {
      return false;
    }
  }
  return true;
}

std::set<std::string> DocumentedKillPoints(const std::string& doc) {
  std::set<std::string> names;
  size_t pos = 0;
  while ((pos = doc.find('`', pos)) != std::string::npos) {
    const size_t end = doc.find('`', pos + 1);
    if (end == std::string::npos) break;
    const std::string tok = doc.substr(pos + 1, end - pos - 1);
    if (LooksLikeKillPoint(tok)) names.insert(tok);
    pos = end + 1;
  }
  return names;
}

std::set<std::string> RegisteredKillPoints() {
  std::set<std::string> names;
  for (size_t i = 0; i < durability::kNumKillPoints; ++i) {
    names.insert(durability::kKillPointNames[i]);
  }
  for (size_t i = 0; i < durability::kNumReshardKillPoints; ++i) {
    names.insert(durability::kReshardKillPointNames[i]);
  }
  for (size_t i = 0; i < gpusim::DeviceArena::kNumSweepKillPoints; ++i) {
    names.insert(gpusim::DeviceArena::kSweepKillPointNames[i]);
  }
  return names;
}

TEST(KillPointRegistry, NamesAreUniqueAcrossRegistries) {
  // The union's size equals the sum of the registry sizes: no name is
  // registered twice (a duplicate would make kill_point_filter ambiguous).
  EXPECT_EQ(RegisteredKillPoints().size(),
            durability::kNumKillPoints + durability::kNumReshardKillPoints +
                gpusim::DeviceArena::kNumSweepKillPoints);
}

TEST(KillPointRegistry, EveryNameCarriesItsRegistryPrefix) {
  for (size_t i = 0; i < durability::kNumReshardKillPoints; ++i) {
    EXPECT_EQ(std::string(durability::kReshardKillPointNames[i])
                  .rfind("reshard.", 0),
              0u)
        << durability::kReshardKillPointNames[i];
  }
  for (size_t i = 0; i < gpusim::DeviceArena::kNumSweepKillPoints; ++i) {
    EXPECT_EQ(std::string(gpusim::DeviceArena::kSweepKillPointNames[i])
                  .rfind("mem.sweep.", 0),
              0u)
        << gpusim::DeviceArena::kSweepKillPointNames[i];
  }
  for (size_t i = 0; i < durability::kNumKillPoints; ++i) {
    const std::string n = durability::kKillPointNames[i];
    EXPECT_TRUE(n.rfind("wal.", 0) == 0 || n.rfind("ckpt.", 0) == 0) << n;
  }
}

TEST(KillPointDocs, DocumentEveryRegisteredKillPoint) {
  const std::set<std::string> documented =
      DocumentedKillPoints(ReadRobustnessDoc());
  ASSERT_FALSE(documented.empty())
      << "parser found no kill-point tokens at all — doc moved or the "
         "backtick convention changed?";
  for (const std::string& name : RegisteredKillPoints()) {
    EXPECT_TRUE(documented.count(name))
        << "`" << name
        << "` is registered in code but not documented in "
           "docs/robustness.md";
  }
}

TEST(KillPointDocs, EveryDocumentedKillPointIsRegistered) {
  const std::set<std::string> registered = RegisteredKillPoints();
  for (const std::string& name : DocumentedKillPoints(ReadRobustnessDoc())) {
    EXPECT_TRUE(registered.count(name))
        << "docs/robustness.md documents `" << name
        << "` but no registry defines it (renamed or removed in code?)";
  }
}

}  // namespace
}  // namespace dycuckoo
