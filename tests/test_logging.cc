#include "common/logging.h"

#include <gtest/gtest.h>

namespace dycuckoo {
namespace {

TEST(LoggingTest, DefaultLevelIsWarning) {
  // The suite may have mutated it; set and read back instead of assuming.
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST(LoggingTest, SetAndGetRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kWarning);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  SetLogLevel(LogLevel::kError);
  DYCUCKOO_LOG(Debug) << "dropped " << 1;
  DYCUCKOO_LOG(Info) << "dropped " << 2;
  DYCUCKOO_LOG(Warning) << "dropped " << 3;
  SetLogLevel(LogLevel::kWarning);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  DYCUCKOO_CHECK(1 + 1 == 2);  // must not abort
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ DYCUCKOO_CHECK(false); }, "check failed");
}

TEST(LoggingDeathTest, CheckMessageNamesExpression) {
  EXPECT_DEATH({ DYCUCKOO_CHECK(2 > 3); }, "2 > 3");
}

#ifndef NDEBUG
TEST(LoggingDeathTest, DcheckActiveInDebugBuilds) {
  EXPECT_DEATH({ DYCUCKOO_DCHECK(false); }, "check failed");
}
#else
TEST(LoggingTest, DcheckCompiledOutInReleaseBuilds) {
  DYCUCKOO_DCHECK(false);  // must be a no-op
}
#endif

}  // namespace
}  // namespace dycuckoo
