// TableServer: admission control, deadlines, retry/backoff, the circuit
// breaker, and the end-to-end chaos acceptance test.

#include "service/table_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "dycuckoo/options.h"
#include "gpusim/device_arena.h"
#include "gpusim/fault_injector.h"
#include "gpusim/grid.h"
#include "test_util.h"

namespace dycuckoo {
namespace service {
namespace {

using Server = TableServer<uint32_t, uint32_t>;
using OpType = Server::OpType;

Server::Request InsertReq(std::span<const uint32_t> keys,
                          std::span<const uint32_t> values,
                          uint64_t deadline = 0) {
  Server::Request req;
  req.deadline = deadline;
  for (size_t i = 0; i < keys.size(); ++i) {
    req.ops.push_back(Server::Op{OpType::kInsert, keys[i], values[i]});
  }
  return req;
}

Server::Request FindReq(std::span<const uint32_t> keys,
                        uint64_t deadline = 0) {
  Server::Request req;
  req.deadline = deadline;
  for (uint32_t k : keys) {
    req.ops.push_back(Server::Op{OpType::kFind, k, 0});
  }
  return req;
}

std::unique_ptr<Server> MakeServer(const TableServerOptions& sopt,
                                   DyCuckooOptions topt = {}) {
  std::unique_ptr<Server> server;
  Status st = Server::Create(topt, sopt, &server);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return server;
}

TEST(TableServerTest, InsertThenFindRoundTrip) {
  auto server = MakeServer({});
  auto keys = testing::UniqueKeys(500);
  auto values = testing::SequentialValues(keys.size(), 100);

  uint64_t w = server->Submit(InsertReq(keys, values));
  uint64_t r = server->Submit(FindReq(keys));
  server->RunUntilIdle();

  Server::Response resp;
  ASSERT_TRUE(server->TakeResponse(w, &resp));
  EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.attempts, 1u);
  ASSERT_TRUE(server->TakeResponse(r, &resp));
  ASSERT_TRUE(resp.status.ok());
  ASSERT_EQ(resp.results.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(resp.results[i].hit, 1u);
    EXPECT_EQ(resp.results[i].value, values[i]);
  }
  EXPECT_EQ(server->stats().Capture().completed_ok, 2u);
  EXPECT_FALSE(server->TakeResponse(w, &resp));  // taken once
}

TEST(TableServerTest, AckedKeysAlwaysFoundUnderCoalescedInserts) {
  // The server-level FIND-under-INSERT guarantee (see the header's
  // "Consistency" contract): keys acknowledged in earlier batches must be
  // hit by every later FIND, even when that FIND is coalesced into the
  // same micro-batch — the same mixed grid launch — as inserts whose
  // eviction chains displace pairs around it.  Before the handoff ring,
  // a displaced victim was transiently invisible to exactly this FIND.
  TableServerOptions sopt;
  sopt.max_batch_ops = 4096;  // finds + fresh inserts coalesce into one launch
  DyCuckooOptions topt;
  topt.initial_capacity = 2048;  // auto-resizes mid-run: constant chains
  auto server = MakeServer(sopt, topt);

  auto universe = testing::UniqueKeys(12000, 31);
  std::vector<uint32_t> resident(universe.begin(), universe.begin() + 2000);
  auto values = testing::SequentialValues(resident.size(), 500);
  server->Submit(InsertReq(resident, values));
  server->RunUntilIdle();  // the resident set is now acknowledged

  SplitMix64 rng(0xACED);
  size_t next_fresh = 2000;
  for (int round = 0; round < 8; ++round) {
    // One pending FIND of acked keys + enough fresh-insert requests to
    // keep eviction chains running, all drained in the same micro-batch.
    std::vector<uint32_t> probe;
    for (int i = 0; i < 400; ++i) {
      probe.push_back(resident[rng.NextBounded(resident.size())]);
    }
    uint64_t find_id = server->Submit(FindReq(probe));
    std::vector<uint32_t> fresh(universe.begin() + next_fresh,
                                universe.begin() + next_fresh + 500);
    next_fresh += 500;
    uint64_t ins_id = server->Submit(
        InsertReq(fresh, testing::SequentialValues(fresh.size())));
    server->RunUntilIdle();

    Server::Response resp;
    ASSERT_TRUE(server->TakeResponse(find_id, &resp));
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    ASSERT_EQ(resp.results.size(), probe.size());
    for (size_t i = 0; i < probe.size(); ++i) {
      ASSERT_EQ(resp.results[i].hit, 1u)
          << "acked key " << probe[i] << " missed in round " << round
          << " while coalesced inserts were displacing pairs";
      uint32_t idx = static_cast<uint32_t>(
          std::find(resident.begin(), resident.end(), probe[i]) -
          resident.begin());
      ASSERT_EQ(resp.results[i].value, 500 + idx);
    }
    ASSERT_TRUE(server->TakeResponse(ins_id, &resp));
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  }
  EXPECT_GT(server->table()->stats().Capture().evictions, 0u)
      << "no eviction chains ran; the test proved nothing";
}

TEST(TableServerTest, EraseReportsHits) {
  auto server = MakeServer({});
  auto keys = testing::UniqueKeys(100);
  auto values = testing::SequentialValues(keys.size());
  server->Submit(InsertReq(keys, values));
  server->RunUntilIdle();

  Server::Request erase;
  erase.ops.push_back(Server::Op{OpType::kErase, keys[0], 0});
  erase.ops.push_back(Server::Op{OpType::kErase, 0xEEEEEEEu, 0});  // absent
  uint64_t id = server->Submit(std::move(erase));
  server->RunUntilIdle();

  Server::Response resp;
  ASSERT_TRUE(server->TakeResponse(id, &resp));
  ASSERT_TRUE(resp.status.ok());
  EXPECT_EQ(resp.results[0].hit, 1u);
  EXPECT_EQ(resp.results[1].hit, 0u);
}

TEST(TableServerTest, QueueFullRejectsWithResourceExhausted) {
  TableServerOptions sopt;
  sopt.queue_capacity = 2;
  auto server = MakeServer(sopt);
  auto keys = testing::UniqueKeys(4);
  auto values = testing::SequentialValues(4);

  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(server->Submit(
        InsertReq(std::span(&keys[i], 1), std::span(&values[i], 1))));
  }
  // The overflow rejections complete immediately, before any Step.
  Server::Response resp;
  ASSERT_TRUE(server->TakeResponse(ids[2], &resp));
  EXPECT_TRUE(resp.status.IsResourceExhausted()) << resp.status.ToString();
  EXPECT_EQ(resp.attempts, 0u);
  ASSERT_TRUE(server->TakeResponse(ids[3], &resp));
  EXPECT_TRUE(resp.status.IsResourceExhausted());

  server->RunUntilIdle();
  ASSERT_TRUE(server->TakeResponse(ids[0], &resp));
  EXPECT_TRUE(resp.status.ok());
  ASSERT_TRUE(server->TakeResponse(ids[1], &resp));
  EXPECT_TRUE(resp.status.ok());
  EXPECT_EQ(server->stats().Capture().rejected_queue_full, 2u);
}

TEST(TableServerTest, DeadlineRejectedAtAdmission) {
  auto server = MakeServer({});
  server->clock()->Advance(100);
  auto keys = testing::UniqueKeys(1);
  auto values = testing::SequentialValues(1);
  uint64_t id = server->Submit(InsertReq(keys, values, /*deadline=*/50));
  Server::Response resp;
  ASSERT_TRUE(server->TakeResponse(id, &resp));  // no Step needed
  EXPECT_TRUE(resp.status.IsDeadlineExceeded()) << resp.status.ToString();
  EXPECT_EQ(resp.attempts, 0u);
  EXPECT_EQ(server->queued(), 0u);
}

TEST(TableServerTest, DeadlineExpiresWhileQueued) {
  auto server = MakeServer({});
  auto keys = testing::UniqueKeys(1);
  auto values = testing::SequentialValues(1);
  uint64_t id =
      server->Submit(InsertReq(keys, values, server->now() + 5));
  server->clock()->Advance(10);  // the server stalls past the deadline
  server->RunUntilIdle();
  Server::Response resp;
  ASSERT_TRUE(server->TakeResponse(id, &resp));
  EXPECT_TRUE(resp.status.IsDeadlineExceeded());
  EXPECT_EQ(resp.attempts, 0u);  // never executed: no side effects
  EXPECT_EQ(server->table()->size(), 0u);
}

TEST(TableServerTest, DefaultDeadlineApplied) {
  TableServerOptions sopt;
  sopt.default_deadline_ticks = 5;
  auto server = MakeServer(sopt);
  auto keys = testing::UniqueKeys(1);
  auto values = testing::SequentialValues(1);
  uint64_t id = server->Submit(InsertReq(keys, values));  // no deadline set
  server->clock()->Advance(10);
  server->RunUntilIdle();
  Server::Response resp;
  ASSERT_TRUE(server->TakeResponse(id, &resp));
  EXPECT_TRUE(resp.status.IsDeadlineExceeded());
}

TEST(TableServerTest, MicroBatchRespectsOpBudget) {
  TableServerOptions sopt;
  sopt.max_batch_ops = 8;
  auto server = MakeServer(sopt);
  auto keys = testing::UniqueKeys(20);
  auto values = testing::SequentialValues(20);
  for (int r = 0; r < 5; ++r) {
    server->Submit(
        InsertReq(std::span(keys.data() + 4 * r, 4),
                  std::span(values.data() + 4 * r, 4)));
  }
  EXPECT_EQ(server->queued(), 5u);
  EXPECT_EQ(server->Step(), 2u);  // 4 + 4 ops fill the budget
  EXPECT_EQ(server->queued(), 3u);
  server->RunUntilIdle();
  EXPECT_EQ(server->table()->size(), 20u);
  EXPECT_EQ(server->stats().Capture().batch_launches, 3u);
}

TEST(TableServerTest, ScrubSliceRunsBetweenBatches) {
  TableServerOptions sopt;
  sopt.scrub_buckets_per_step = 32;
  auto server = MakeServer(sopt);
  auto keys = testing::UniqueKeys(200);
  auto values = testing::SequentialValues(200);
  server->Submit(InsertReq(keys, values));
  server->RunUntilIdle();
  ASSERT_TRUE(
      server->table()->PlantMisplacedPairForTest(0xBAADF00Du, 42));

  // Idle steps keep scrubbing; eventually the planted pair is found and
  // repaired (the in-progress pass may already be beyond the planted
  // bucket, so wait for detection, not merely for a pass to complete).
  for (int i = 0;
       i < 20000 && server->scrubber().totals().misplaced_found == 0; ++i) {
    server->Step();
  }
  EXPECT_GE(server->scrubber().full_passes(), 1u);
  EXPECT_EQ(server->scrubber().totals().misplaced_found, 1u);
  EXPECT_TRUE(server->table()->Validate().ok());
  EXPECT_GT(server->stats().Capture().scrub_steps, 0u);
}

// Drives the breaker through trip -> read-only -> probe -> recovery using a
// static (auto_resize=false) table that cannot absorb new keys once full.
TEST(TableServerTest, BreakerTripsToReadOnlyAndRecovers) {
  DyCuckooOptions topt;
  topt.initial_capacity = 1024;
  topt.auto_resize = false;
  TableServerOptions sopt;
  sopt.retry.max_attempts = 2;
  sopt.retry.initial_backoff_ticks = 4;
  sopt.breaker.failure_threshold = 3;
  sopt.breaker.cooldown_ticks = 100000;  // too long to elapse by accident
  auto server = MakeServer(sopt, topt);

  // Saturate the static table from below.
  auto keys = testing::UniqueKeys(1000);
  auto values = testing::SequentialValues(keys.size());
  uint64_t failed = 0;
  (void)server->table()->BulkInsert(keys, values, &failed);
  ASSERT_GT(server->table()->size(), 900u);

  // Under a clamped eviction chain (no displacements allowed), inserts of
  // fresh keys into the saturated table fail terminally — and, crucially,
  // nothing spills into the self-growing recovery stash, since that path
  // only absorbs displaced residents.  The breaker must trip.
  Server::Response resp;
  {
    gpusim::FaultInjectorConfig cfg;
    cfg.max_eviction_chain = 0;
    gpusim::ScopedFaultInjection scoped(cfg);

    auto fresh = testing::UniqueKeys(400, /*seed=*/777);
    auto fvals = testing::SequentialValues(fresh.size());
    int writes_submitted = 0;
    for (int i = 0; i < 100 && server->breaker().trips() == 0; ++i) {
      server->Submit(
          InsertReq(std::span(&fresh[i], 1), std::span(&fvals[i], 1)));
      server->RunUntilIdle();
      ++writes_submitted;
    }
    ASSERT_EQ(server->breaker().trips(), 1u)
        << "breaker did not trip after " << writes_submitted << " writes";
    EXPECT_TRUE(server->read_only());

    // Degraded mode: writes bounce with kUnavailable, reads keep flowing.
    uint64_t wid = server->Submit(
        InsertReq(std::span(&fresh[200], 1), std::span(&fvals[200], 1)));
    uint64_t rid = server->Submit(FindReq(std::span(&keys[0], 10)));
    server->RunUntilIdle();
    ASSERT_TRUE(server->TakeResponse(wid, &resp));
    EXPECT_TRUE(resp.status.IsUnavailable()) << resp.status.ToString();
    EXPECT_EQ(resp.attempts, 0u);
    ASSERT_TRUE(server->TakeResponse(rid, &resp));
    EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_GT(server->stats().Capture().rejected_unavailable, 0u);
  }

  // Recovery: past the cooldown an update of a resident key (no growth
  // needed) is admitted as the probe and closes the breaker.
  server->clock()->Advance(sopt.breaker.cooldown_ticks + 1);
  uint32_t probe_value = 0xABCD;
  uint64_t pid = server->Submit(
      InsertReq(std::span(&keys[0], 1), std::span(&probe_value, 1)));
  server->RunUntilIdle();
  ASSERT_TRUE(server->TakeResponse(pid, &resp));
  EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(server->breaker().recoveries(), 1u);
  EXPECT_FALSE(server->read_only());

  // Writes flow again (updates still work; fresh keys may legitimately
  // fail on the saturated static table, but they are no longer bounced).
  uint64_t wid2 = server->Submit(
      InsertReq(std::span(&keys[1], 1), std::span(&probe_value, 1)));
  server->RunUntilIdle();
  ASSERT_TRUE(server->TakeResponse(wid2, &resp));
  EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
}

// ---------------------------------------------------------------------------
// Chaos acceptance test: >= 50k mixed ops against a shadow map under
// injected alloc/lock faults and clock-forced deadline expiry.  Checks:
// no lost or phantom keys, every rejection carries one of the three new
// status codes (never a silent drop), the breaker trips and recovers at
// least once, and two same-seed executions are bit-identical.
// ---------------------------------------------------------------------------

struct ChaosOutcome {
  uint64_t digest = 1469598103934665603ull;  // FNV-1a offset basis
  uint64_t ok = 0;
  uint64_t deadline_unexecuted = 0;
  uint64_t deadline_partial = 0;
  uint64_t queue_full = 0;
  uint64_t unavailable = 0;
  uint64_t partial_failures = 0;
  uint64_t trips = 0;
  uint64_t recoveries = 0;
  uint64_t final_size = 0;
  uint64_t final_ticks = 0;
  bool find_mismatch = false;
  bool erase_mismatch = false;
  bool lost_key = false;
  bool phantom_key = false;
  bool missing_response = false;
};

class ChaosHarness {
 public:
  explicit ChaosHarness(Server* server, ChaosOutcome* out)
      : server_(server), out_(out) {}

  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->digest ^= (v >> (8 * i)) & 0xff;
      out_->digest *= 1099511628211ull;
    }
  }

  uint64_t Submit(Server::Request req) {
    uint64_t id = server_->Submit(req);
    pending_.emplace(id, std::move(req));
    return id;
  }

  /// Takes and reconciles every pending response against the shadow map.
  void Drain() {
    server_->RunUntilIdle();
    // Reconcile in id order so the digest is independent of map iteration.
    std::vector<uint64_t> ids;
    ids.reserve(pending_.size());
    for (const auto& [id, req] : pending_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (uint64_t id : ids) {
      Server::Response resp;
      if (!server_->TakeResponse(id, &resp)) {
        out_->missing_response = true;  // a silently dropped request
        continue;
      }
      Reconcile(pending_.at(id), resp, id);
    }
    pending_.clear();
  }

  void Finish() {
    Drain();
    // No lost keys: every key whose state is certain must be found with
    // its exact value.
    std::vector<uint32_t> keys;
    keys.reserve(shadow_.size());
    for (const auto& [k, v] : shadow_) {
      if (uncertain_.count(k) == 0) keys.push_back(k);
    }
    std::sort(keys.begin(), keys.end());
    std::vector<uint32_t> values(keys.size());
    std::vector<uint8_t> found(keys.size());
    server_->table()->BulkFind(keys, values.data(), found.data());
    for (size_t i = 0; i < keys.size(); ++i) {
      if (found[i] == 0 || values[i] != shadow_.at(keys[i])) {
        out_->lost_key = true;
      }
      Mix(keys[i]);
      Mix(values[i]);
    }
    // No phantom keys: everything stored is accounted for by the shadow
    // map or by an op whose partial effects are legitimately unknown.
    for (const auto& [k, v] : server_->table()->Dump()) {
      auto it = shadow_.find(k);
      bool known = it != shadow_.end() &&
                   (it->second == v || uncertain_.count(k) > 0);
      if (!known && uncertain_.count(k) == 0) out_->phantom_key = true;
    }
    const auto stats = server_->stats().Capture();
    Mix(stats.submitted);
    Mix(stats.completed_ok);
    Mix(stats.retries);
    Mix(stats.backoff_ticks_slept);
    Mix(stats.batch_launches);
    out_->trips = server_->breaker().trips();
    out_->recoveries = server_->breaker().recoveries();
    out_->final_size = server_->table()->size();
    out_->final_ticks = server_->now();
    Mix(out_->trips);
    Mix(out_->recoveries);
    Mix(out_->final_size);
    Mix(out_->final_ticks);
  }

 private:
  void Reconcile(const Server::Request& req, const Server::Response& resp,
                 uint64_t id) {
    Mix(id);
    Mix(static_cast<uint64_t>(resp.status.code()));
    Mix(resp.attempts);
    Mix(resp.completed_at);
    for (const auto& r : resp.results) {
      Mix(r.hit);
      Mix(r.value);
    }
    const StatusCode code = resp.status.code();
    if (resp.status.ok()) {
      ++out_->ok;
      // attempts > 1 means earlier partial attempts already applied some of
      // these (idempotent) ops; the final state below is still exact, but
      // per-op hit flags reflect the rerun, so only validate them for
      // single-attempt responses.
      const bool exact_hits = resp.attempts <= 1;
      for (size_t i = 0; i < req.ops.size(); ++i) {
        const Server::Op& op = req.ops[i];
        const Server::OpResult& r = resp.results[i];
        switch (op.type) {
          case OpType::kInsert:
            shadow_[op.key] = op.value;
            uncertain_.erase(op.key);
            break;
          case OpType::kErase: {
            bool expected = shadow_.count(op.key) > 0;
            if (exact_hits && uncertain_.count(op.key) == 0 &&
                expected != (r.hit != 0)) {
              out_->erase_mismatch = true;
            }
            shadow_.erase(op.key);
            uncertain_.erase(op.key);
            break;
          }
          case OpType::kFind: {
            if (!exact_hits || uncertain_.count(op.key) != 0) break;
            auto it = shadow_.find(op.key);
            bool expected = it != shadow_.end();
            if (expected != (r.hit != 0) ||
                (expected && it->second != r.value)) {
              out_->find_mismatch = true;
            }
            break;
          }
        }
      }
    } else if (code == StatusCode::kResourceExhausted) {
      ++out_->queue_full;  // never executed
    } else if (code == StatusCode::kUnavailable) {
      ++out_->unavailable;  // never executed
    } else if (code == StatusCode::kDeadlineExceeded) {
      if (resp.attempts == 0) {
        ++out_->deadline_unexecuted;  // rejected pre-execution
      } else {
        ++out_->deadline_partial;
        MarkUncertain(req);
      }
    } else {
      // Transient table failures surfaced terminally (kInsertionFailure /
      // kOutOfMemory): partially applied.
      ++out_->partial_failures;
      MarkUncertain(req);
    }
  }

  void MarkUncertain(const Server::Request& req) {
    for (const Server::Op& op : req.ops) {
      if (op.type != OpType::kFind) uncertain_.insert(op.key);
    }
  }

  Server* server_;
  ChaosOutcome* out_;
  std::unordered_map<uint64_t, Server::Request> pending_;
  std::unordered_map<uint32_t, uint32_t> shadow_;
  std::unordered_set<uint32_t> uncertain_;
};

constexpr int kChaosGroups = 10;      // concurrent requests per round
constexpr int kChaosGroupKeys = 400;  // disjoint key range per request slot
constexpr int kChaosOpsPerRequest = 100;

// Ops within a request use distinct keys, and request slots use disjoint
// key ranges, so ops racing inside one coalesced batch never target the
// same key — the shadow map stays exact for OK responses.
Server::Request MakeMixedRequest(const std::vector<uint32_t>& pool,
                                 int group, int round, uint64_t seed,
                                 uint64_t deadline) {
  SplitMix64 rng(seed ^ (static_cast<uint64_t>(round) * 977 + group));
  Server::Request req;
  req.deadline = deadline;
  for (int i = 0; i < kChaosOpsPerRequest; ++i) {
    uint32_t key =
        pool[group * kChaosGroupKeys +
             (round * 137 + i * 31) % kChaosGroupKeys];
    uint64_t u = rng.Next();
    Server::Op op;
    op.key = key;
    if (u % 10 < 4) {
      op.type = OpType::kInsert;
      op.value = static_cast<uint32_t>(u >> 32);
    } else if (u % 10 < 7) {
      op.type = OpType::kFind;
    } else {
      op.type = OpType::kErase;
    }
    req.ops.push_back(op);
  }
  return req;
}

void RunChaos(uint64_t seed, ChaosOutcome* out) {
  // A dedicated single-worker grid and a private arena make the whole run
  // (warp interleavings, allocation event sequence, injected faults, tick
  // counts) a pure function of the seed.
  gpusim::Grid grid(1);
  gpusim::DeviceArena arena(/*capacity_bytes=*/0);

  DyCuckooOptions topt;
  topt.initial_capacity = 4096;
  topt.stash_capacity = 64;
  topt.seed = 0xC0FFEEULL ^ seed;
  topt.grid = &grid;
  topt.arena = &arena;

  TableServerOptions sopt;
  sopt.queue_capacity = 8;  // < kChaosGroups: rounds overflow on purpose
  sopt.max_batch_ops = 400;
  sopt.retry.max_attempts = 3;
  sopt.retry.initial_backoff_ticks = 16;
  sopt.retry.seed = seed;
  sopt.breaker.failure_threshold = 3;
  sopt.breaker.cooldown_ticks = 5000;
  sopt.scrub_buckets_per_step = 64;

  std::unique_ptr<Server> server;
  ASSERT_TRUE(Server::Create(topt, sopt, &server).ok());
  ChaosHarness harness(server.get(), out);

  auto pool = testing::UniqueKeys(kChaosGroups * kChaosGroupKeys, seed + 42);
  auto spare = testing::UniqueKeys(40000, seed + 999);

  auto run_round = [&](int round) {
    const bool stall = round % 7 == 3;
    const uint64_t deadline =
        stall ? server->now() + 2 : server->now() + 1000000;
    for (int g = 0; g < kChaosGroups; ++g) {
      harness.Submit(MakeMixedRequest(pool, g, round, seed, deadline));
    }
    if (stall) {
      // The server stalls past every queued deadline before serving.
      server->clock()->Advance(100);
    }
    harness.Drain();
  };

  // Phase A — healthy traffic under transient faults: occasional allocation
  // failures exercise retry/backoff, lock faults exercise the voter loop.
  {
    gpusim::FaultInjectorConfig cfg;
    cfg.seed = seed;
    cfg.alloc_fail_probability = 0.02;
    cfg.alloc_tag_filter = "dycuckoo";
    cfg.trylock_fail_probability = 0.1;
    gpusim::ScopedFaultInjection scoped(cfg);
    for (int round = 0; round < 25; ++round) run_round(round);
  }

  // Phase B — hard overload: every device allocation fails (capacity is
  // frozen) and eviction chains are clamped to zero, so once the stash and
  // the candidate buckets fill, fresh-key inserts fail terminally — nothing
  // can displace residents into the self-growing recovery stash — and the
  // breaker trips into read-only mode.
  {
    gpusim::FaultInjectorConfig cfg;
    cfg.seed = seed + 1;
    cfg.fail_after_allocs = 0;
    cfg.alloc_tag_filter = "dycuckoo";
    cfg.max_eviction_chain = 0;
    gpusim::ScopedFaultInjection scoped(cfg);
    uint64_t spare_next = 0;
    for (int i = 0;
         i < 350 && server->breaker().trips() == 0 &&
         spare_next + kChaosOpsPerRequest <= spare.size();
         ++i) {
      std::vector<uint32_t> fresh(
          spare.begin() + spare_next,
          spare.begin() + spare_next + kChaosOpsPerRequest);
      spare_next += kChaosOpsPerRequest;
      auto fvals = testing::SequentialValues(fresh.size());
      harness.Submit(InsertReq(fresh, fvals, server->now() + 1000000));
      harness.Drain();
    }
    EXPECT_GE(server->breaker().trips(), 1u)
        << "overload never tripped the breaker";
    // Degraded mode: further writes bounce with kUnavailable.
    std::vector<uint32_t> fresh(spare.begin() + spare_next,
                                spare.begin() + spare_next + 10);
    auto fvals = testing::SequentialValues(fresh.size());
    harness.Submit(InsertReq(fresh, fvals, server->now() + 1000000));
    harness.Submit(FindReq(std::span(pool.data(), 50),
                           server->now() + 1000000));
    harness.Drain();
  }

  // Phase C — the fault clears; past the cooldown a probe write (an update
  // of certainly-resident keys would need none, but any successful write
  // closes the breaker) recovers the server.
  server->clock()->Advance(sopt.breaker.cooldown_ticks + 1);
  {
    auto probe = testing::UniqueKeys(4, seed + 31337);
    auto pvals = testing::SequentialValues(probe.size());
    harness.Submit(InsertReq(probe, pvals, server->now() + 1000000));
    harness.Drain();
  }
  EXPECT_GE(server->breaker().recoveries(), 1u)
      << "breaker never recovered after the fault cleared";
  EXPECT_FALSE(server->read_only());

  // Phase D — healthy traffic again (light lock faults only).
  {
    gpusim::FaultInjectorConfig cfg;
    cfg.seed = seed + 2;
    cfg.trylock_fail_probability = 0.05;
    gpusim::ScopedFaultInjection scoped(cfg);
    for (int round = 25; round < 50; ++round) run_round(round);
  }

  harness.Finish();
}

TEST(TableServerChaosTest, ShadowMapSoakWithFaultsAndDeadlines) {
  // Failures print the seed; rerun it locally with DYCUCKOO_CHAOS_SEED.
  const uint64_t seed = testing::ChaosSeedFromEnv(7);
  SCOPED_TRACE("DYCUCKOO_CHAOS_SEED=" + std::to_string(seed));
  ChaosOutcome run1;
  RunChaos(seed, &run1);

  // >= 50k mixed ops were driven through the server.
  EXPECT_GE(run1.ok + run1.deadline_unexecuted + run1.deadline_partial +
                run1.queue_full + run1.unavailable + run1.partial_failures,
            500u);  // requests; each carries kChaosOpsPerRequest ops
  // Every submitted request produced a retrievable response.
  EXPECT_FALSE(run1.missing_response);
  // All three overload codes were exercised, and rejections were explicit.
  EXPECT_GT(run1.deadline_unexecuted, 0u);
  EXPECT_GT(run1.queue_full, 0u);
  EXPECT_GT(run1.unavailable, 0u);
  // Correctness against the shadow map.
  EXPECT_FALSE(run1.find_mismatch);
  EXPECT_FALSE(run1.erase_mismatch);
  EXPECT_FALSE(run1.lost_key);
  EXPECT_FALSE(run1.phantom_key);
  // The breaker tripped and recovered.
  EXPECT_GE(run1.trips, 1u);
  EXPECT_GE(run1.recoveries, 1u);

  // Bit-identical reproduction: a second run with the same seed must match
  // in every observable, including the op-level digest.
  ChaosOutcome run2;
  RunChaos(seed, &run2);
  EXPECT_EQ(run1.digest, run2.digest);
  EXPECT_EQ(run1.ok, run2.ok);
  EXPECT_EQ(run1.deadline_unexecuted, run2.deadline_unexecuted);
  EXPECT_EQ(run1.deadline_partial, run2.deadline_partial);
  EXPECT_EQ(run1.queue_full, run2.queue_full);
  EXPECT_EQ(run1.unavailable, run2.unavailable);
  EXPECT_EQ(run1.partial_failures, run2.partial_failures);
  EXPECT_EQ(run1.trips, run2.trips);
  EXPECT_EQ(run1.recoveries, run2.recoveries);
  EXPECT_EQ(run1.final_size, run2.final_size);
  EXPECT_EQ(run1.final_ticks, run2.final_ticks);
}

}  // namespace
}  // namespace service
}  // namespace dycuckoo
