#include "baselines/megakv.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace dycuckoo {
namespace {

using testing::ReferenceModel;
using testing::SequentialValues;
using testing::UniqueKeys;

std::unique_ptr<MegaKvTable> MakeTable(MegaKvOptions o = {}) {
  std::unique_ptr<MegaKvTable> t;
  Status st = MegaKvTable::Create(o, &t);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return t;
}

TEST(MegaKvTest, OptionsValidation) {
  MegaKvOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.initial_capacity = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = MegaKvOptions{};
  o.lower_bound = 0.9;
  o.upper_bound = 0.8;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = MegaKvOptions{};
  o.max_eviction_chain = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(MegaKvTest, InsertFindRoundTrip) {
  auto t = MakeTable();
  auto keys = UniqueKeys(40000);
  auto values = SequentialValues(keys.size());
  ASSERT_TRUE(t->BulkInsert(keys, values).ok());
  EXPECT_EQ(t->size(), keys.size());

  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]);
    ASSERT_EQ(out[i], values[i]);
  }
}

TEST(MegaKvTest, UpsertOverwritesValue) {
  auto t = MakeTable();
  ASSERT_TRUE(t->BulkInsert(std::vector<uint32_t>{9},
                            std::vector<uint32_t>{1})
                  .ok());
  ASSERT_TRUE(t->BulkInsert(std::vector<uint32_t>{9},
                            std::vector<uint32_t>{2})
                  .ok());
  std::vector<uint32_t> out(1);
  std::vector<uint8_t> found(1);
  std::vector<uint32_t> probe = {9};
  t->BulkFind(probe, out.data(), found.data());
  EXPECT_TRUE(found[0]);
  EXPECT_EQ(out[0], 2u);
  EXPECT_EQ(t->size(), 1u);
}

TEST(MegaKvTest, EraseRemovesAndCounts) {
  auto t = MakeTable();
  auto keys = UniqueKeys(20000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  std::vector<uint32_t> victims(keys.begin(), keys.begin() + 5000);
  uint64_t erased = 0;
  ASSERT_TRUE(t->BulkErase(victims, &erased).ok());
  EXPECT_EQ(erased, victims.size());
  EXPECT_EQ(t->size(), keys.size() - victims.size());
  std::vector<uint8_t> found(victims.size());
  t->BulkFind(victims, nullptr, found.data());
  for (auto f : found) EXPECT_EQ(f, 0);
}

TEST(MegaKvTest, AutoResizeGrowsViaFullRehash) {
  MegaKvOptions o;
  o.initial_capacity = 1024;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(100000);
  // Streamed in batches so growth rehashes a populated table (one giant
  // batch would pre-grow while still empty).
  for (size_t off = 0; off < keys.size(); off += 10000) {
    size_t len = std::min<size_t>(10000, keys.size() - off);
    std::vector<uint32_t> ks(keys.begin() + off, keys.begin() + off + len);
    ASSERT_TRUE(t->BulkInsert(ks, SequentialValues(len)).ok());
  }
  EXPECT_GT(t->full_rehash_count(), 2u)
      << "MegaKV's resize strategy is a full rehash";
  EXPECT_LE(t->filled_factor(), o.upper_bound + 1e-9);
  // Every rehash rewrites the whole current contents — orders of magnitude
  // more moved KVs than DyCuckoo's one-subtable policy ever touches for the
  // same growth (compare ResizeTest.RehashedKvAccountingMatchesResizeSizes).
  EXPECT_GT(t->rehashed_kvs(), t->size() / 2);
}

TEST(MegaKvTest, ShrinksWhenDrained) {
  MegaKvOptions o;
  o.initial_capacity = 1024;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(80000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  uint64_t grown = t->memory_bytes();
  ASSERT_TRUE(t->BulkErase(keys).ok());
  EXPECT_EQ(t->size(), 0u);
  EXPECT_LT(t->memory_bytes(), grown / 4);
}

TEST(MegaKvTest, StaticModeReportsFailures) {
  MegaKvOptions o;
  o.auto_resize = false;
  o.initial_capacity = 512;
  o.max_eviction_chain = 8;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(2000);
  uint64_t failed = 0;
  Status st = t->BulkInsert(keys, SequentialValues(keys.size()), &failed);
  EXPECT_TRUE(st.IsInsertionFailure());
  EXPECT_GT(failed, 0u);
  EXPECT_EQ(t->capacity_slots(), 512u);
}

TEST(MegaKvTest, ReservedKeyRejected) {
  auto t = MakeTable();
  std::vector<uint32_t> keys = {0xffffffffu};
  std::vector<uint32_t> values = {1};
  EXPECT_TRUE(t->BulkInsert(keys, values).IsInvalidArgument());
}

TEST(MegaKvTest, ModelBasedChurn) {
  auto t = MakeTable();
  ReferenceModel model;
  SplitMix64 rng(55);
  auto universe = UniqueKeys(4000, 3);
  for (int round = 0; round < 15; ++round) {
    std::vector<uint32_t> ik, iv, ek;
    std::vector<uint8_t> used(universe.size(), 0);
    for (int i = 0; i < 600; ++i) {
      uint64_t p = rng.NextBounded(universe.size());
      if (used[p]) continue;
      used[p] = 1;
      uint32_t v = static_cast<uint32_t>(rng.Next());
      ik.push_back(universe[p]);
      iv.push_back(v);
      model.Insert(universe[p], v);
    }
    ASSERT_TRUE(t->BulkInsert(ik, iv).ok());
    std::fill(used.begin(), used.end(), 0);
    for (int i = 0; i < 300; ++i) {
      uint64_t p = rng.NextBounded(universe.size());
      if (used[p]) continue;
      used[p] = 1;
      ek.push_back(universe[p]);
      model.Erase(universe[p]);
    }
    ASSERT_TRUE(t->BulkErase(ek).ok());
    ASSERT_EQ(t->size(), model.size()) << "round " << round;
  }
  std::vector<uint32_t> out(universe.size());
  std::vector<uint8_t> found(universe.size());
  t->BulkFind(universe, out.data(), found.data());
  for (size_t i = 0; i < universe.size(); ++i) {
    uint32_t mv = 0;
    bool hit = model.Find(universe[i], &mv);
    ASSERT_EQ(found[i] != 0, hit);
    if (hit) ASSERT_EQ(out[i], mv);
  }
}

TEST(MegaKvTest, DumpMatchesSize) {
  auto t = MakeTable();
  auto keys = UniqueKeys(5000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  EXPECT_EQ(t->Dump().size(), t->size());
}

TEST(MegaKvTest, ShrinkFloorsAtMinimumCapacity) {
  MegaKvOptions o;
  o.initial_capacity = 64;
  auto t = MakeTable(o);
  // Insert and fully drain repeatedly; capacity must never underflow.
  for (int round = 0; round < 3; ++round) {
    auto keys = UniqueKeys(500, round + 1);
    ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
    ASSERT_TRUE(t->BulkErase(keys).ok());
    EXPECT_EQ(t->size(), 0u);
    EXPECT_GE(t->capacity_slots(), 2u * MegaKvTable::kSlotsPerBucket);
  }
}

TEST(MegaKvTest, RehashReseedsHashFunctions) {
  // After a grow-rehash, keys relocate (new seeds) but remain findable.
  MegaKvOptions o;
  o.initial_capacity = 1024;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(800, 2);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  auto more = UniqueKeys(30000, 3);
  ASSERT_TRUE(t->BulkInsert(more, SequentialValues(more.size(), 50000)).ok());
  ASSERT_GT(t->full_rehash_count(), 0u);
  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]);
    ASSERT_EQ(out[i], i);
  }
}

TEST(MegaKvTest, FindWithNullOutputsIsSafe) {
  auto t = MakeTable();
  std::vector<uint32_t> keys = {1, 2, 3};
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(3)).ok());
  t->BulkFind(keys, nullptr, nullptr);  // must not crash
}

TEST(MegaKvTest, NameAndTraits) {
  auto t = MakeTable();
  EXPECT_EQ(t->name(), "MegaKV");
  EXPECT_TRUE(t->supports_erase());
  EXPECT_GT(t->memory_bytes(), 0u);
}

}  // namespace
}  // namespace dycuckoo
