// Tests for the single-subtable resizing policy (paper Section IV-B/D).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "dycuckoo/dycuckoo.h"
#include "test_util.h"

namespace dycuckoo {
namespace {

using testing::SequentialValues;
using testing::UniqueKeys;

std::unique_ptr<DyCuckooMap> MakeTable(DyCuckooOptions options = {}) {
  std::unique_ptr<DyCuckooMap> table;
  Status st = DyCuckooMap::Create(options, &table);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return table;
}

uint64_t MinBuckets(const DyCuckooMap& t) {
  uint64_t m = ~uint64_t{0};
  for (int i = 0; i < t.num_subtables(); ++i) {
    m = std::min(m, t.subtable_buckets(i));
  }
  return m;
}

uint64_t MaxBuckets(const DyCuckooMap& t) {
  uint64_t m = 0;
  for (int i = 0; i < t.num_subtables(); ++i) {
    m = std::max(m, t.subtable_buckets(i));
  }
  return m;
}

TEST(ResizeTest, UpsizeDoublesExactlyTheSmallestSubtable) {
  auto t = MakeTable();
  std::vector<uint64_t> before;
  for (int i = 0; i < t->num_subtables(); ++i) {
    before.push_back(t->subtable_buckets(i));
  }
  ASSERT_TRUE(t->Upsize().ok());
  int doubled = 0;
  for (int i = 0; i < t->num_subtables(); ++i) {
    if (t->subtable_buckets(i) == before[i] * 2) {
      ++doubled;
    } else {
      EXPECT_EQ(t->subtable_buckets(i), before[i]);
    }
  }
  EXPECT_EQ(doubled, 1);
  EXPECT_EQ(t->stats().upsizes.load(), 1u);
}

TEST(ResizeTest, UpsizePreservesEveryEntry) {
  auto t = MakeTable();
  auto keys = UniqueKeys(20000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  uint64_t size_before = t->size();
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(t->Upsize().ok());
    ASSERT_EQ(t->size(), size_before);
    ASSERT_TRUE(t->Validate().ok()) << "round " << round;
  }
  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]);
    ASSERT_EQ(out[i], i);
  }
}

TEST(ResizeTest, DownsizeHalvesExactlyTheLargestSubtable) {
  auto t = MakeTable();
  ASSERT_TRUE(t->Upsize().ok());  // make sizes uneven: one 2n, rest n
  uint64_t max_before = MaxBuckets(*t);
  ASSERT_TRUE(t->Downsize().ok());
  EXPECT_EQ(MaxBuckets(*t), max_before / 2);
  EXPECT_EQ(t->stats().downsizes.load(), 1u);
}

TEST(ResizeTest, DownsizePreservesEntriesIncludingResiduals) {
  // Fill one pattern, then force downsizing while subtables are > 50%
  // full so the merge overflows and residuals must be reinserted.
  DyCuckooOptions o;
  o.auto_resize = false;
  o.initial_capacity = 64 * 1024;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(40000);  // ~61% of capacity
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  ASSERT_GT(t->filled_factor(), 0.55);

  ASSERT_TRUE(t->Downsize().ok());
  EXPECT_GT(t->stats().residual_kvs.load(), 0u)
      << "downsizing a >50%-full subtable must produce residuals";
  EXPECT_EQ(t->size(), keys.size());
  EXPECT_TRUE(t->Validate().ok());

  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]) << "key lost in downsize at " << i;
    ASSERT_EQ(out[i], i);
  }
}

TEST(ResizeTest, LadderInvariantUnderManyResizes) {
  auto t = MakeTable();
  SplitMix64 rng(9);
  for (int i = 0; i < 60; ++i) {
    if (rng.NextBounded(2) == 0) {
      ASSERT_TRUE(t->Upsize().ok());
    } else if (MaxBuckets(*t) > 1) {
      ASSERT_TRUE(t->Downsize().ok());
    }
    ASSERT_LE(MaxBuckets(*t), 2 * MinBuckets(*t))
        << "paper invariant: no subtable more than twice any other";
  }
}

TEST(ResizeTest, AutoUpsizeKeepsThetaAtMostBeta) {
  DyCuckooOptions o;
  o.initial_capacity = 2048;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(100000);
  // Insert in many small batches; after each, theta must respect beta.
  for (size_t off = 0; off < keys.size(); off += 5000) {
    size_t len = std::min<size_t>(5000, keys.size() - off);
    std::vector<uint32_t> ks(keys.begin() + off, keys.begin() + off + len);
    ASSERT_TRUE(t->BulkInsert(ks, SequentialValues(len)).ok());
    ASSERT_LE(t->filled_factor(), o.upper_bound + 1e-9)
        << "after batch at offset " << off;
  }
  EXPECT_GT(t->stats().upsizes.load(), 0u);
}

TEST(ResizeTest, AutoDownsizeKeepsThetaAtLeastAlphaWhileDraining) {
  DyCuckooOptions o;
  o.initial_capacity = 2048;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(100000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  for (size_t off = 0; off < keys.size(); off += 5000) {
    size_t len = std::min<size_t>(5000, keys.size() - off);
    std::vector<uint32_t> ks(keys.begin() + off, keys.begin() + off + len);
    ASSERT_TRUE(t->BulkErase(ks).ok());
    // The lower bound holds unless the table has hit its minimum footprint
    // (one bucket per subtable), below which it cannot shrink further.
    if (t->size() > 0 && t->capacity_slots() > 4u * 2 * 32) {
      ASSERT_GE(t->filled_factor(), o.lower_bound - 1e-9)
          << "after erase batch at offset " << off << " size " << t->size();
    }
    ASSERT_TRUE(t->Validate().ok());
  }
  EXPECT_GT(t->stats().downsizes.load(), 0u);
}

TEST(ResizeTest, UpsizeLowersThetaByThePredictedFactor) {
  // Paper Section IV-B: with d' doubled tables out of d, one upsize takes
  // theta to theta*(d+d')/(d+d'+1).
  DyCuckooOptions o;
  o.auto_resize = false;
  o.initial_capacity = 32 * 1024;
  o.num_subtables = 4;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(26000);  // ~79%
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  double theta = t->filled_factor();
  ASSERT_TRUE(t->Upsize().ok());  // d=4, d'=0: expect theta * 4/5
  EXPECT_NEAR(t->filled_factor(), theta * 4.0 / 5.0, 1e-9);
  theta = t->filled_factor();
  ASSERT_TRUE(t->Upsize().ok());  // d'=1: expect theta * 5/6
  EXPECT_NEAR(t->filled_factor(), theta * 5.0 / 6.0, 1e-9);
}

TEST(ResizeTest, ManualDownsizeAtMinimumRejected) {
  DyCuckooOptions o;
  o.initial_capacity = 1;  // one bucket per subtable
  o.auto_resize = false;
  auto t = MakeTable(o);
  EXPECT_TRUE(t->Downsize().IsInvalidArgument());
}

TEST(ResizeTest, DrainToEmptyShrinksToMinimumFootprint) {
  DyCuckooOptions o;
  o.initial_capacity = 4096;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(60000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  uint64_t peak_memory = t->memory_bytes();
  ASSERT_TRUE(t->BulkErase(keys).ok());
  EXPECT_EQ(t->size(), 0u);
  EXPECT_LT(t->memory_bytes(), peak_memory / 8)
      << "empty table must shed the bulk of its memory";
  EXPECT_TRUE(t->Validate().ok());

  // And it still works afterwards.
  ASSERT_TRUE(t->Insert(5, 6).ok());
  uint32_t v = 0;
  EXPECT_TRUE(t->Find(5, &v));
  EXPECT_EQ(v, 6u);
}

TEST(ResizeTest, RehashedKvAccountingMatchesResizeSizes) {
  DyCuckooOptions o;
  o.auto_resize = false;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(30000);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  uint64_t before = t->stats().rehashed_kvs.load();
  ASSERT_TRUE(t->Upsize().ok());
  uint64_t delta = t->stats().rehashed_kvs.load() - before;
  // One subtable was rehashed: its occupancy is about size/d (never all m).
  EXPECT_GT(delta, 0u);
  EXPECT_LT(delta, t->size());
}

class ResizeBoundsTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ResizeBoundsTest, ThetaStaysWithinConfiguredBand) {
  auto [alpha, beta] = GetParam();
  DyCuckooOptions o;
  o.lower_bound = alpha;
  o.upper_bound = beta;
  o.initial_capacity = 2048;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(50000);
  SplitMix64 rng(31);
  size_t cursor = 0;
  std::vector<uint32_t> live;
  for (int round = 0; round < 20; ++round) {
    size_t n = 1000 + rng.NextBounded(3000);
    std::vector<uint32_t> batch;
    while (batch.size() < n && cursor < keys.size()) {
      batch.push_back(keys[cursor++]);
    }
    if (!batch.empty()) {
      ASSERT_TRUE(t->BulkInsert(batch, SequentialValues(batch.size())).ok());
      live.insert(live.end(), batch.begin(), batch.end());
    }
    size_t del = rng.NextBounded(live.size() / 2 + 1);
    std::vector<uint32_t> dels(live.end() - del, live.end());
    live.resize(live.size() - del);
    if (!dels.empty()) ASSERT_TRUE(t->BulkErase(dels).ok());

    if (t->size() > 0) {
      EXPECT_LE(t->filled_factor(), beta + 1e-9) << "round " << round;
      if (t->capacity_slots() > 4u * 2 * 32) {
        EXPECT_GE(t->filled_factor(), alpha - 1e-9) << "round " << round;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Bands, ResizeBoundsTest,
    ::testing::Values(std::make_pair(0.20, 0.70), std::make_pair(0.30, 0.85),
                      std::make_pair(0.40, 0.90), std::make_pair(0.25, 0.75)));

}  // namespace
}  // namespace dycuckoo
