// Deterministic fault injection: the injector itself, OOM injected into
// resize paths, the transactional downsize guarantee, and a chaos soak
// that runs a mixed workload under probabilistic injection against a
// shadow map.
//
// The capped-arena downsize test doubles as the regression test for the
// historical DownsizeInternal behaviour of dropping residual pairs when
// the post-merge reinsertion could not grow the table: it needs no
// injector, so it compiles and fails against that behaviour directly.

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "dycuckoo/dycuckoo.h"
#include "gpusim/device_arena.h"
#include "gpusim/fault_injector.h"
#include "test_util.h"

namespace dycuckoo {
namespace {

using testing::SequentialValues;
using testing::UniqueKeys;

// ---------------------------------------------------------------------------
// Injector unit behaviour
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, FailsExactlyTheNthAllocation) {
  gpusim::FaultInjectorConfig cfg;
  cfg.fail_nth_alloc = 3;
  gpusim::FaultInjector fi(cfg);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fi.OnAllocation(64, "t"), i == 3) << i;
  }
  EXPECT_EQ(fi.allocations_seen(), 10u);
  EXPECT_EQ(fi.allocations_failed(), 1u);
}

TEST(FaultInjectorTest, FailsEveryKthAllocation) {
  gpusim::FaultInjectorConfig cfg;
  cfg.fail_every_k_allocs = 4;
  gpusim::FaultInjector fi(cfg);
  int failed = 0;
  for (int i = 0; i < 16; ++i) {
    if (fi.OnAllocation(64, "t")) ++failed;
  }
  EXPECT_EQ(failed, 4);  // allocations 3, 7, 11, 15 (0-based)
}

TEST(FaultInjectorTest, FailsEverythingAfterThreshold) {
  gpusim::FaultInjectorConfig cfg;
  cfg.fail_after_allocs = 5;
  gpusim::FaultInjector fi(cfg);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fi.OnAllocation(64, "t"), i >= 5) << i;
  }
}

TEST(FaultInjectorTest, TagFilterSelectsMatchingAllocationsOnly) {
  gpusim::FaultInjectorConfig cfg;
  cfg.fail_after_allocs = 0;  // fail every matching allocation
  cfg.alloc_tag_filter = "victim";
  gpusim::FaultInjector fi(cfg);
  EXPECT_FALSE(fi.OnAllocation(64, "bystander"));
  EXPECT_TRUE(fi.OnAllocation(64, "victim"));
  EXPECT_TRUE(fi.OnAllocation(64, "the-victim-table"));  // substring match
  EXPECT_FALSE(fi.OnAllocation(64, "other"));
  // Non-matching allocations are not even counted as seen.
  EXPECT_EQ(fi.allocations_seen(), 2u);
}

TEST(FaultInjectorTest, ProbabilisticDecisionsAreSeedDeterministic) {
  gpusim::FaultInjectorConfig cfg;
  cfg.seed = 1234;
  cfg.alloc_fail_probability = 0.3;
  gpusim::FaultInjector a(cfg);
  gpusim::FaultInjector b(cfg);
  int fails = 0;
  for (int i = 0; i < 1000; ++i) {
    bool fa = a.OnAllocation(64, "t");
    bool fb = b.OnAllocation(64, "t");
    EXPECT_EQ(fa, fb) << "same seed, same event sequence => same decision";
    if (fa) ++fails;
  }
  // Rate is in the right ballpark for p=0.3.
  EXPECT_GT(fails, 200);
  EXPECT_LT(fails, 400);

  gpusim::FaultInjectorConfig other = cfg;
  other.seed = 99;
  gpusim::FaultInjector c(other);
  int diverged = 0;
  gpusim::FaultInjector a2(cfg);
  for (int i = 0; i < 1000; ++i) {
    if (a2.OnAllocation(64, "t") != c.OnAllocation(64, "t")) ++diverged;
  }
  EXPECT_GT(diverged, 0) << "different seeds must give different campaigns";
}

TEST(FaultInjectorTest, TryLockProbabilityIsClampedBelowLivelock) {
  gpusim::FaultInjectorConfig cfg;
  cfg.trylock_fail_probability = 1.0;  // would livelock the voter revote loop
  gpusim::FaultInjector fi(cfg);
  EXPECT_LE(fi.config().trylock_fail_probability, 0.95);
  int succeeded = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!fi.OnTryLock()) ++succeeded;
  }
  EXPECT_GT(succeeded, 0) << "some acquisitions must still get through";
}

TEST(FaultInjectorTest, ClampsEvictionChain) {
  gpusim::FaultInjectorConfig cfg;
  cfg.max_eviction_chain = 5;
  gpusim::FaultInjector fi(cfg);
  EXPECT_EQ(fi.ClampEvictionChain(64), 5);
  EXPECT_EQ(fi.ClampEvictionChain(3), 3);

  gpusim::FaultInjectorConfig off;
  gpusim::FaultInjector none(off);
  EXPECT_EQ(none.ClampEvictionChain(64), 64);
}

TEST(FaultInjectorTest, ScopedInstallAndNestingRestorePrevious) {
  EXPECT_EQ(gpusim::FaultInjector::Active(), nullptr);
  {
    gpusim::FaultInjectorConfig outer_cfg;
    outer_cfg.seed = 1;
    gpusim::ScopedFaultInjection outer(outer_cfg);
    EXPECT_EQ(gpusim::FaultInjector::Active(), &outer.injector());
    {
      gpusim::FaultInjectorConfig inner_cfg;
      inner_cfg.seed = 2;
      gpusim::ScopedFaultInjection inner(inner_cfg);
      EXPECT_EQ(gpusim::FaultInjector::Active(), &inner.injector());
    }
    EXPECT_EQ(gpusim::FaultInjector::Active(), &outer.injector());
  }
  EXPECT_EQ(gpusim::FaultInjector::Active(), nullptr);
}

// ---------------------------------------------------------------------------
// Injected OOM during resize
// ---------------------------------------------------------------------------

// A subtable allocates three arrays (keys, values, locks); failing each of
// the first three allocations exercises every partial-construction path.
TEST(ResizeFaultTest, MidUpsizeAllocFailureLeavesTableUntouched) {
  for (int64_t nth = 0; nth < 3; ++nth) {
    gpusim::DeviceArena arena(64ull << 20);
    DyCuckooOptions o;
    o.initial_capacity = 8192;
    o.auto_resize = false;
    o.arena = &arena;
    o.memory_tag = "upsize-fault";
    std::unique_ptr<DyCuckooMap> t;
    ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());

    auto keys = UniqueKeys(4000, 11);
    auto values = SequentialValues(keys.size());
    ASSERT_TRUE(t->BulkInsert(keys, values).ok());
    const uint64_t used_before = arena.used_bytes();
    const uint64_t size_before = t->size();

    Status st;
    {
      gpusim::FaultInjectorConfig cfg;
      cfg.fail_nth_alloc = nth;
      cfg.alloc_tag_filter = "upsize-fault";
      gpusim::ScopedFaultInjection scoped(cfg);
      st = t->Upsize();
      EXPECT_GE(scoped.injector().allocations_failed(), 1u);
    }
    EXPECT_TRUE(st.IsOutOfMemory()) << "nth=" << nth << ": " << st.ToString();
    EXPECT_EQ(arena.used_bytes(), used_before)
        << "nth=" << nth << ": partial upsize must free its allocations";
    EXPECT_EQ(t->size(), size_before);
    EXPECT_TRUE(t->Validate().ok());

    std::vector<uint32_t> out(keys.size());
    std::vector<uint8_t> found(keys.size());
    t->BulkFind(keys, out.data(), found.data());
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(found[i]) << "nth=" << nth << " key " << i;
      ASSERT_EQ(out[i], values[i]);
    }

    // With the injector gone the same upsize succeeds.
    EXPECT_TRUE(t->Upsize().ok());
    EXPECT_TRUE(t->Validate().ok());
  }
}

TEST(ResizeFaultTest, MidDownsizeAllocFailureLeavesTableUntouched) {
  gpusim::DeviceArena arena(64ull << 20);
  DyCuckooOptions o;
  o.initial_capacity = 16384;
  o.auto_resize = false;
  o.arena = &arena;
  o.memory_tag = "downsize-fault";
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());

  auto keys = UniqueKeys(2000, 13);  // low fill: downsize is legal
  auto values = SequentialValues(keys.size());
  ASSERT_TRUE(t->BulkInsert(keys, values).ok());
  const uint64_t used_before = arena.used_bytes();

  Status st;
  {
    gpusim::FaultInjectorConfig cfg;
    cfg.fail_nth_alloc = 0;  // the merged (smaller) subtable allocation
    cfg.alloc_tag_filter = "downsize-fault";
    gpusim::ScopedFaultInjection scoped(cfg);
    st = t->Downsize();
  }
  EXPECT_TRUE(st.IsOutOfMemory()) << st.ToString();
  EXPECT_EQ(arena.used_bytes(), used_before);
  EXPECT_EQ(t->size(), keys.size());
  EXPECT_TRUE(t->Validate().ok());
}

// ---------------------------------------------------------------------------
// Transactional downsize (no injector: demonstrates the historical
// residual-dropping bug directly)
// ---------------------------------------------------------------------------

TEST(ResizeFaultTest, CappedArenaDownsizeNeverLosesKeys) {
  DyCuckooOptions o;
  o.num_subtables = 2;
  o.initial_capacity = 64 * 1024;
  o.auto_resize = false;
  o.memory_tag = "downsize-capped";

  // Measure the configuration's footprint, then rebuild it in an arena with
  // room for the merged (quarter-footprint) subtable but never for an
  // upsize.  With d=2 every residual's only alternate subtable is the one
  // being merged away, so the post-merge reinsertion pass is guaranteed to
  // strand far more pairs than the commit-with-spill bound tolerates.
  uint64_t table_bytes = 0;
  {
    gpusim::DeviceArena probe_arena(64ull << 20);
    o.arena = &probe_arena;
    std::unique_ptr<DyCuckooMap> probe;
    ASSERT_TRUE(DyCuckooMap::Create(o, &probe).ok());
    table_bytes = probe_arena.used_bytes();
  }
  gpusim::DeviceArena arena(table_bytes + table_bytes / 4 + 8192);
  o.arena = &arena;
  std::unique_ptr<DyCuckooMap> t;
  ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());

  auto keys = UniqueKeys(52000, 7);  // ~79% of 65536
  auto values = SequentialValues(keys.size());
  Status ist = t->BulkInsert(keys, values);
  ASSERT_TRUE(ist.ok() || ist.IsInsertionFailure()) << ist.ToString();

  // Ground truth is whatever actually landed in the table.
  std::vector<uint32_t> out_before(keys.size());
  std::vector<uint8_t> found_before(keys.size());
  t->BulkFind(keys, out_before.data(), found_before.data());
  const uint64_t size_before = t->size();
  ASSERT_GT(size_before, 40000u);

  Status st = t->Downsize();
  EXPECT_TRUE(st.ok()) << "a downsize that cannot complete must roll back, "
                          "not fail dropping residuals: " << st.ToString();
  EXPECT_EQ(t->stats().Capture().downsize_rollbacks, 1u);
  EXPECT_EQ(t->size(), size_before);
  EXPECT_TRUE(t->Validate().ok());

  std::vector<uint32_t> out_after(keys.size());
  std::vector<uint8_t> found_after(keys.size());
  t->BulkFind(keys, out_after.data(), found_after.data());
  uint64_t lost = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (found_before[i] && !found_after[i]) ++lost;
    if (found_before[i] && found_after[i]) {
      ASSERT_EQ(out_after[i], out_before[i]) << "key " << i;
    }
  }
  EXPECT_EQ(lost, 0u) << "downsize rollback dropped stored pairs";
}

// ---------------------------------------------------------------------------
// Chaos soak: mixed workload under probabilistic injection vs a shadow map
// ---------------------------------------------------------------------------

TEST(ChaosSoakTest, MixedWorkloadUnderInjectionAgreesWithShadowMap) {
  // DYCUCKOO_CHAOS_SEED=<seed> reruns just that seed (e.g. one CI printed).
  std::vector<uint64_t> seeds = {1ull, 2ull, 3ull};
  if (uint64_t forced = testing::ChaosSeedFromEnv(0)) seeds = {forced};
  for (uint64_t seed : seeds) {
    SCOPED_TRACE("DYCUCKOO_CHAOS_SEED=" + std::to_string(seed));
    gpusim::DeviceArena arena(64ull << 20);
    DyCuckooOptions o;
    o.initial_capacity = 4096;
    o.arena = &arena;
    o.memory_tag = "chaos";
    o.seed = 0xC0FFEEull + seed;
    std::unique_ptr<DyCuckooMap> t;
    ASSERT_TRUE(DyCuckooMap::Create(o, &t).ok());

    gpusim::FaultInjectorConfig cfg;
    cfg.seed = seed;
    cfg.alloc_fail_probability = 0.02;
    cfg.alloc_tag_filter = "chaos";
    cfg.trylock_fail_probability = 0.05;
    cfg.warp_yield_probability = 0.02;
    cfg.max_eviction_chain = 24;
    gpusim::ScopedFaultInjection scoped(cfg);

    std::unordered_map<uint32_t, uint32_t> shadow;
    SplitMix64 rng(seed * 7919 + 1);
    auto fresh_key = [&] {
      for (;;) {
        uint32_t k = static_cast<uint32_t>(rng.Next());
        if (k < 0xfffffffeu && shadow.count(k) == 0) return k;
      }
    };

    constexpr int kRounds = 50;
    constexpr size_t kBatch = 512;
    for (int round = 0; round < kRounds; ++round) {
      // Insert a batch of fresh keys; under injection some may fail, and
      // BulkInsert reports exactly how many of *this batch's* keys failed.
      std::vector<uint32_t> ins_keys;
      std::vector<uint32_t> ins_values;
      for (size_t i = 0; i < kBatch; ++i) {
        ins_keys.push_back(fresh_key());
        ins_values.push_back(static_cast<uint32_t>(rng.Next()));
        shadow[ins_keys.back()] = ins_values.back();  // tentative
      }
      Status st = t->BulkInsert(ins_keys, ins_values);
      ASSERT_TRUE(st.ok() || st.IsInsertionFailure() || st.IsOutOfMemory())
          << st.ToString();

      std::vector<uint32_t> out(ins_keys.size());
      std::vector<uint8_t> found(ins_keys.size());
      t->BulkFind(ins_keys, out.data(), found.data());
      for (size_t i = 0; i < ins_keys.size(); ++i) {
        if (found[i]) {
          ASSERT_EQ(out[i], ins_values[i]) << "seed " << seed;
        } else {
          shadow.erase(ins_keys[i]);  // legitimately failed under injection
        }
      }

      // Erase a sample of resident keys plus some that never existed.
      std::vector<uint32_t> del_keys;
      for (auto it = shadow.begin();
           it != shadow.end() && del_keys.size() < kBatch / 4; ++it) {
        del_keys.push_back(it->first);
      }
      size_t resident = del_keys.size();
      for (size_t i = 0; i < kBatch / 8; ++i) del_keys.push_back(fresh_key());
      uint64_t erased = 0;
      Status est = t->BulkErase(del_keys, &erased);
      ASSERT_TRUE(est.ok() || est.IsOutOfMemory()) << est.ToString();
      EXPECT_GE(erased, resident) << "seed " << seed;
      for (size_t i = 0; i < resident; ++i) shadow.erase(del_keys[i]);

      // Every shadow key must still be present with the right value.
      std::vector<uint32_t> all_keys;
      std::vector<uint32_t> expect;
      all_keys.reserve(shadow.size());
      for (const auto& [k, v] : shadow) {
        all_keys.push_back(k);
        expect.push_back(v);
      }
      std::vector<uint32_t> got(all_keys.size());
      std::vector<uint8_t> hit(all_keys.size());
      t->BulkFind(all_keys, got.data(), hit.data());
      uint64_t lost = 0;
      for (size_t i = 0; i < all_keys.size(); ++i) {
        if (!hit[i]) {
          ++lost;
        } else {
          ASSERT_EQ(got[i], expect[i])
              << "seed " << seed << " round " << round;
        }
      }
      ASSERT_EQ(lost, 0u) << "seed " << seed << " round " << round
                          << ": keys lost under fault injection";
      ASSERT_EQ(t->size(), shadow.size())
          << "seed " << seed << " round " << round;
      ASSERT_TRUE(t->Validate().ok())
          << "seed " << seed << " round " << round;
    }
    EXPECT_GT(scoped.injector().allocations_seen(), 0u);
  }
}

}  // namespace
}  // namespace dycuckoo
