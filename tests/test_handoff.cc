// Edge cases of the eviction displacement handoff ring (see
// docs/robustness.md "Consistency guarantees"):
//
//  * FIND and upsert served from a parked copy while the victim has no
//    bucket home;
//  * DELETE of a parked key (the claim protocol) — the delete wins over
//    the in-flight re-homing;
//  * ring-full fallback: the incoming op is resolved through the
//    stash/failure path and the victim is never dropped;
//  * victims re-homed into concurrently-filling buckets under a heavy
//    mixed insert/delete load, differentially checked against a model.
//
// The ParkVictimForTest hook freezes the exact mid-chain state a real
// eviction passes through (bucket slot vacated, pair findable only via
// the ring), making the first three cases deterministic.

#include <memory>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "dycuckoo/dycuckoo.h"
#include "test_util.h"

namespace dycuckoo {
namespace {

std::unique_ptr<DyCuckooMap> MakeTable(uint64_t stash, uint64_t ring_cap,
                                       bool auto_resize = true,
                                       uint64_t capacity = 2048) {
  DyCuckooOptions o;
  o.initial_capacity = capacity;
  o.stash_capacity = stash;
  o.handoff_capacity = ring_cap;
  o.auto_resize = auto_resize;
  std::unique_ptr<DyCuckooMap> t;
  EXPECT_TRUE(DyCuckooMap::Create(o, &t).ok());
  return t;
}

TEST(HandoffRingTest, FindIsServedFromParkedVictim) {
  auto t = MakeTable(/*stash=*/0, /*ring_cap=*/8);
  auto keys = testing::UniqueKeys(200, 11);
  ASSERT_TRUE(t->BulkInsert(keys, testing::SequentialValues(keys.size())).ok());

  ASSERT_TRUE(t->ParkVictimForTest(keys[7]));
  EXPECT_EQ(t->handoff_size(), 1u);

  // The key's only copy lives in the ring; the probe order
  // buckets -> handoff -> stash must still find it, with its value.
  uint32_t v = 0;
  uint8_t found = 0;
  t->BulkFind(std::vector<uint32_t>{keys[7]}, &v, &found);
  EXPECT_NE(found, 0);
  EXPECT_EQ(v, 7u);
  EXPECT_GT(t->stats().Capture().handoff_hits, 0u);

  // Reconciliation re-homes the survivor; everything back to normal.
  t->SweepHandoffForTest();
  EXPECT_EQ(t->handoff_size(), 0u);
  EXPECT_TRUE(t->Validate().ok());
  t->BulkFind(std::vector<uint32_t>{keys[7]}, &v, &found);
  EXPECT_NE(found, 0);
  EXPECT_EQ(v, 7u);
}

TEST(HandoffRingTest, DeleteOfParkedKeyWins) {
  auto t = MakeTable(/*stash=*/0, /*ring_cap=*/8);
  auto keys = testing::UniqueKeys(200, 12);
  ASSERT_TRUE(t->BulkInsert(keys, testing::SequentialValues(keys.size())).ok());
  const uint64_t size_before = t->size();

  ASSERT_TRUE(t->ParkVictimForTest(keys[3]));

  // DELETE while the key's only copy is in flight: the claim protocol must
  // count the release and the key must stay gone after reconciliation
  // (the sweep drops claimed entries instead of re-homing them).
  uint64_t erased = 0;
  ASSERT_TRUE(t->BulkErase(std::vector<uint32_t>{keys[3]}, &erased).ok());
  EXPECT_EQ(erased, 1u);
  EXPECT_EQ(t->stats().Capture().handoff_deletes, 1u);

  t->SweepHandoffForTest();
  EXPECT_EQ(t->handoff_size(), 0u);
  EXPECT_TRUE(t->Validate().ok());
  uint8_t found = 0;
  uint32_t v = 0;
  t->BulkFind(std::vector<uint32_t>{keys[3]}, &v, &found);
  EXPECT_EQ(found, 0);
  EXPECT_EQ(t->size(), size_before - 1);
}

TEST(HandoffRingTest, UpsertOfParkedKeyUpdatesInFlightValue) {
  auto t = MakeTable(/*stash=*/0, /*ring_cap=*/8);
  auto keys = testing::UniqueKeys(200, 13);
  ASSERT_TRUE(t->BulkInsert(keys, testing::SequentialValues(keys.size())).ok());

  ASSERT_TRUE(t->ParkVictimForTest(keys[5]));
  // An insert of the parked key is an upsert against the in-flight copy —
  // the update must survive the re-homing.
  ASSERT_TRUE(t->BulkInsert(std::vector<uint32_t>{keys[5]},
                            std::vector<uint32_t>{777u})
                  .ok());

  t->SweepHandoffForTest();
  EXPECT_TRUE(t->Validate().ok());
  uint8_t found = 0;
  uint32_t v = 0;
  t->BulkFind(std::vector<uint32_t>{keys[5]}, &v, &found);
  EXPECT_NE(found, 0);
  EXPECT_EQ(v, 777u);
}

TEST(HandoffRingTest, RingFullFallbackNeverDropsTheVictim) {
  // A capacity-1 ring pre-filled by a parked victim: every eviction chain
  // of the next batch hits the ring-full fallback.  Incoming ops may
  // stash or fail, but no already-resident key may vanish.
  auto t = MakeTable(/*stash=*/16, /*ring_cap=*/1, /*auto_resize=*/false,
                     /*capacity=*/4096);
  auto keys = testing::UniqueKeys(3600, 14);
  std::vector<uint32_t> resident(keys.begin(), keys.begin() + 3000);
  ASSERT_TRUE(
      t->BulkInsert(resident, testing::SequentialValues(resident.size()))
          .ok());

  ASSERT_TRUE(t->ParkVictimForTest(resident[42]));
  EXPECT_EQ(t->handoff_size(), 1u);

  // Dense inserts at ~0.75 filled: full buckets are routine, so chains
  // must displace — and every park attempt fails on the full ring.
  std::vector<uint32_t> fresh(keys.begin() + 3000, keys.end());
  Status st = t->BulkInsert(fresh, testing::SequentialValues(fresh.size(),
                                                             50000));
  ASSERT_TRUE(st.ok() || st.IsInsertionFailure()) << st.ToString();
  EXPECT_GT(t->stats().Capture().handoff_full_fallbacks, 0u);

  // The post-launch sweep ran inside BulkInsert: the ring is empty and the
  // planted victim was re-homed, not dropped.
  EXPECT_EQ(t->handoff_size(), 0u);
  EXPECT_TRUE(t->Validate().ok());
  std::vector<uint32_t> out(resident.size());
  std::vector<uint8_t> found(resident.size());
  t->BulkFind(resident, out.data(), found.data());
  for (size_t i = 0; i < resident.size(); ++i) {
    ASSERT_NE(found[i], 0) << "resident key " << resident[i]
                           << " lost in ring-full fallback";
    ASSERT_EQ(out[i], static_cast<uint32_t>(i));
  }
}

TEST(HandoffRingTest, VictimsRehomeIntoConcurrentlyFillingBuckets) {
  // High-load mixed batches (disjoint keys per batch, so cross-batch
  // semantics are exact) keep eviction chains re-homing victims into
  // buckets that concurrent lanes are filling at the same time.  The
  // table must match the model exactly at every rest point.
  auto t = MakeTable(/*stash=*/64, /*ring_cap=*/256);
  using Op = DyCuckooMap::MixedOp;
  std::unordered_map<uint32_t, uint32_t> model;
  SplitMix64 rng(0x5EED);
  auto universe = testing::UniqueKeys(6000, 15);

  for (int round = 0; round < 12; ++round) {
    std::vector<Op> ops;
    std::vector<uint8_t> used(universe.size(), 0);
    for (int i = 0; i < 1200; ++i) {
      uint64_t p = rng.NextBounded(universe.size());
      if (used[p]) continue;
      used[p] = 1;
      Op op;
      op.key = universe[p];
      if (rng.NextBounded(10) < 7) {
        op.type = Op::Type::kInsert;
        op.value = static_cast<uint32_t>(rng.Next());
        model[op.key] = op.value;
      } else {
        op.type = Op::Type::kErase;
        model.erase(op.key);
      }
      ops.push_back(op);
    }
    ASSERT_TRUE(t->BulkExecute(ops).ok());
    ASSERT_EQ(t->handoff_size(), 0u) << "round " << round;
    ASSERT_EQ(t->size(), model.size()) << "round " << round;
    ASSERT_TRUE(t->Validate().ok()) << "round " << round;
  }
  EXPECT_GT(t->stats().Capture().parked_victims, 0u)
      << "load never displaced a victim; the test exercised nothing";

  std::vector<uint32_t> all(universe);
  std::vector<uint32_t> out(all.size());
  std::vector<uint8_t> found(all.size());
  t->BulkFind(all, out.data(), found.data());
  for (size_t i = 0; i < all.size(); ++i) {
    auto it = model.find(all[i]);
    ASSERT_EQ(found[i] != 0, it != model.end()) << all[i];
    if (found[i]) {
      ASSERT_EQ(out[i], it->second);
    }
  }
}

}  // namespace
}  // namespace dycuckoo
