#include "dycuckoo/pair_map.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace dycuckoo {
namespace {

TEST(TablePairTest, OtherReturnsTheOtherMember) {
  TablePair p{2, 5};
  EXPECT_EQ(p.Other(2), 5);
  EXPECT_EQ(p.Other(5), 2);
}

TEST(TablePairTest, Contains) {
  TablePair p{1, 3};
  EXPECT_TRUE(p.Contains(1));
  EXPECT_TRUE(p.Contains(3));
  EXPECT_FALSE(p.Contains(0));
  EXPECT_FALSE(p.Contains(2));
}

TEST(PairMapTest, NumPairsIsChoose2) {
  EXPECT_EQ(PairMap::NumPairs(2), 1);
  EXPECT_EQ(PairMap::NumPairs(3), 3);
  EXPECT_EQ(PairMap::NumPairs(4), 6);
  EXPECT_EQ(PairMap::NumPairs(8), 28);
}

class PairMapPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PairMapPropertyTest, EnumeratesAllUnorderedPairsOnce) {
  const int d = GetParam();
  PairMap pm(d, 123);
  EXPECT_EQ(pm.num_pairs(), PairMap::NumPairs(d));
  std::set<std::pair<int, int>> seen;
  for (int i = 0; i < pm.num_pairs(); ++i) {
    const TablePair& p = pm.pair(i);
    EXPECT_GE(p.first, 0);
    EXPECT_LT(p.first, d);
    EXPECT_GT(p.second, p.first);
    EXPECT_LT(p.second, d);
    EXPECT_TRUE(seen.emplace(p.first, p.second).second) << "duplicate pair";
  }
  EXPECT_EQ(static_cast<int>(seen.size()), PairMap::NumPairs(d));
}

TEST_P(PairMapPropertyTest, PairForIsDeterministicAndValid) {
  const int d = GetParam();
  PairMap pm(d, 99);
  for (uint64_t k = 0; k < 5000; ++k) {
    TablePair p1 = pm.PairFor(k);
    TablePair p2 = pm.PairFor(k);
    EXPECT_EQ(p1, p2);
    EXPECT_GE(p1.first, 0);
    EXPECT_LT(p1.second, d);
    EXPECT_LT(p1.first, p1.second);
  }
}

TEST_P(PairMapPropertyTest, KeysSpreadAcrossAllPairs) {
  const int d = GetParam();
  PairMap pm(d, 7);
  std::map<std::pair<int, int>, int> counts;
  constexpr int kKeys = 60000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    TablePair p = pm.PairFor(k);
    counts[{p.first, p.second}]++;
  }
  EXPECT_EQ(static_cast<int>(counts.size()), PairMap::NumPairs(d));
  double expected = static_cast<double>(kKeys) / PairMap::NumPairs(d);
  // Up to 120 cells for d=16: allow a 6-sigma Poisson band (the strictest
  // cell over that many draws can legitimately sit near 4 sigma).
  double tol = std::max(0.2 * expected, 6.0 * std::sqrt(expected));
  for (const auto& [pair, count] : counts) {
    EXPECT_NEAR(count, expected, tol)
        << "pair (" << pair.first << "," << pair.second << ")";
  }
}

TEST_P(PairMapPropertyTest, EveryTableParticipatesInDMinus1Pairs) {
  const int d = GetParam();
  PairMap pm(d, 3);
  std::vector<int> membership(d, 0);
  for (int i = 0; i < pm.num_pairs(); ++i) {
    membership[pm.pair(i).first]++;
    membership[pm.pair(i).second]++;
  }
  for (int t = 0; t < d; ++t) EXPECT_EQ(membership[t], d - 1);
}

INSTANTIATE_TEST_SUITE_P(Dims, PairMapPropertyTest,
                         ::testing::Values(2, 3, 4, 5, 8, 16));

TEST(PairMapTest, SeedChangesAssignmentNotPairSet) {
  PairMap a(4, 1), b(4, 2);
  int moved = 0;
  for (uint64_t k = 0; k < 1000; ++k) {
    if (!(a.PairFor(k) == b.PairFor(k))) ++moved;
  }
  EXPECT_GT(moved, 500);  // layer-1 assignment depends on the seed
  EXPECT_EQ(a.num_pairs(), b.num_pairs());
}

}  // namespace
}  // namespace dycuckoo
