#include "gpusim/device_arena.h"

#include <atomic>
#include <cstdint>

#include <gtest/gtest.h>

namespace dycuckoo {
namespace gpusim {
namespace {

TEST(DeviceArenaTest, AllocateAndFreeAccounting) {
  DeviceArena arena(1 << 20);
  EXPECT_EQ(arena.used_bytes(), 0u);
  void* p = arena.Allocate(1000, "t");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.used_bytes(), 1000u);
  arena.Free(p);
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.live_allocations(), 0u);
}

TEST(DeviceArenaTest, CapacityEnforced) {
  DeviceArena arena(4096);
  void* a = arena.Allocate(3000, "t");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(arena.Allocate(2000, "t"), nullptr);  // would exceed
  void* b = arena.Allocate(1000, "t");
  ASSERT_NE(b, nullptr);
  arena.Free(a);
  arena.Free(b);
}

TEST(DeviceArenaTest, FreeingMakesRoom) {
  DeviceArena arena(4096);
  void* a = arena.Allocate(4000, "t");
  ASSERT_NE(a, nullptr);
  arena.Free(a);
  void* b = arena.Allocate(4000, "t");
  ASSERT_NE(b, nullptr);
  arena.Free(b);
}

TEST(DeviceArenaTest, PeakTracksHighWater) {
  DeviceArena arena(1 << 20);
  void* a = arena.Allocate(5000, "t");
  void* b = arena.Allocate(7000, "t");
  arena.Free(a);
  EXPECT_EQ(arena.peak_bytes(), 12000u);
  EXPECT_EQ(arena.used_bytes(), 7000u);
  arena.ResetPeak();
  EXPECT_EQ(arena.peak_bytes(), 7000u);
  arena.Free(b);
}

TEST(DeviceArenaTest, PerTagAccounting) {
  DeviceArena arena(1 << 20);
  void* a = arena.Allocate(100, "alpha");
  void* b = arena.Allocate(200, "beta");
  void* c = arena.Allocate(300, "alpha");
  EXPECT_EQ(arena.used_bytes_for("alpha"), 400u);
  EXPECT_EQ(arena.used_bytes_for("beta"), 200u);
  EXPECT_EQ(arena.used_bytes_for("missing"), 0u);
  arena.Free(a);
  EXPECT_EQ(arena.used_bytes_for("alpha"), 300u);
  arena.Free(b);
  arena.Free(c);
  EXPECT_EQ(arena.used_bytes_for("alpha"), 0u);
}

TEST(DeviceArenaTest, ZeroByteRequestStillTracked) {
  DeviceArena arena(1 << 20);
  void* p = arena.Allocate(0, "t");
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.used_bytes(), 1u);
  arena.Free(p);
}

TEST(DeviceArenaTest, UnboundedArenaNeverRejects) {
  DeviceArena arena(0);
  void* p = arena.Allocate(64ull << 20, "big");
  ASSERT_NE(p, nullptr);
  arena.Free(p);
}

TEST(DeviceArenaTest, AllocateArrayValueInitializes) {
  DeviceArena arena(1 << 20);
  auto* arr = arena.AllocateArray<std::atomic<uint32_t>>(128, "t");
  ASSERT_NE(arr, nullptr);
  for (int i = 0; i < 128; ++i) EXPECT_EQ(arr[i].load(), 0u);
  arena.FreeArray(arr);
  EXPECT_EQ(arena.used_bytes(), 0u);
}

TEST(DeviceArenaTest, AllocateArrayRespectsCapacity) {
  DeviceArena arena(100);
  auto* arr = arena.AllocateArray<uint64_t>(1000, "t");  // 8000 bytes > 100
  EXPECT_EQ(arr, nullptr);
  EXPECT_EQ(arena.used_bytes(), 0u);
}

TEST(DeviceArenaTest, GlobalArenaSingleton) {
  EXPECT_EQ(DeviceArena::Global(), DeviceArena::Global());
  EXPECT_EQ(DeviceArena::Global()->capacity_bytes(),
            DeviceArena::kDefaultCapacity);
}

TEST(DeviceArenaTest, FreeNullIsNoop) {
  DeviceArena arena(1024);
  arena.Free(nullptr);
  EXPECT_EQ(arena.used_bytes(), 0u);
}

}  // namespace
}  // namespace gpusim
}  // namespace dycuckoo
