#include "gpusim/device_arena.h"

#include <atomic>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "gpusim/racecheck.h"

namespace dycuckoo {
namespace gpusim {
namespace {

TEST(DeviceArenaTest, AllocateAndFreeAccounting) {
  DeviceArena arena(1 << 20);
  EXPECT_EQ(arena.used_bytes(), 0u);
  void* p = arena.Allocate(1000, "t");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.used_bytes(), 1000u);
  arena.Free(p);
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.live_allocations(), 0u);
}

TEST(DeviceArenaTest, CapacityEnforced) {
  DeviceArena arena(4096);
  void* a = arena.Allocate(3000, "t");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(arena.Allocate(2000, "t"), nullptr);  // would exceed
  void* b = arena.Allocate(1000, "t");
  ASSERT_NE(b, nullptr);
  arena.Free(a);
  arena.Free(b);
}

TEST(DeviceArenaTest, FreeingMakesRoom) {
  DeviceArena arena(4096);
  void* a = arena.Allocate(4000, "t");
  ASSERT_NE(a, nullptr);
  arena.Free(a);
  void* b = arena.Allocate(4000, "t");
  ASSERT_NE(b, nullptr);
  arena.Free(b);
}

TEST(DeviceArenaTest, PeakTracksHighWater) {
  DeviceArena arena(1 << 20);
  void* a = arena.Allocate(5000, "t");
  void* b = arena.Allocate(7000, "t");
  arena.Free(a);
  EXPECT_EQ(arena.peak_bytes(), 12000u);
  EXPECT_EQ(arena.used_bytes(), 7000u);
  arena.ResetPeak();
  EXPECT_EQ(arena.peak_bytes(), 7000u);
  arena.Free(b);
}

TEST(DeviceArenaTest, PerTagAccounting) {
  DeviceArena arena(1 << 20);
  void* a = arena.Allocate(100, "alpha");
  void* b = arena.Allocate(200, "beta");
  void* c = arena.Allocate(300, "alpha");
  EXPECT_EQ(arena.used_bytes_for("alpha"), 400u);
  EXPECT_EQ(arena.used_bytes_for("beta"), 200u);
  EXPECT_EQ(arena.used_bytes_for("missing"), 0u);
  arena.Free(a);
  EXPECT_EQ(arena.used_bytes_for("alpha"), 300u);
  arena.Free(b);
  arena.Free(c);
  EXPECT_EQ(arena.used_bytes_for("alpha"), 0u);
}

TEST(DeviceArenaTest, ZeroByteRequestStillTracked) {
  DeviceArena arena(1 << 20);
  void* p = arena.Allocate(0, "t");
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.used_bytes(), 1u);
  arena.Free(p);
}

TEST(DeviceArenaTest, UnboundedArenaNeverRejects) {
  DeviceArena arena(0);
  void* p = arena.Allocate(64ull << 20, "big");
  ASSERT_NE(p, nullptr);
  arena.Free(p);
}

TEST(DeviceArenaTest, AllocateArrayValueInitializes) {
  DeviceArena arena(1 << 20);
  auto* arr = arena.AllocateArray<std::atomic<uint32_t>>(128, "t");
  ASSERT_NE(arr, nullptr);
  for (int i = 0; i < 128; ++i) EXPECT_EQ(arr[i].load(), 0u);
  arena.FreeArray(arr);
  EXPECT_EQ(arena.used_bytes(), 0u);
}

TEST(DeviceArenaTest, AllocateArrayRespectsCapacity) {
  DeviceArena arena(100);
  auto* arr = arena.AllocateArray<uint64_t>(1000, "t");  // 8000 bytes > 100
  EXPECT_EQ(arr, nullptr);
  EXPECT_EQ(arena.used_bytes(), 0u);
}

TEST(DeviceArenaTest, GlobalArenaSingleton) {
  EXPECT_EQ(DeviceArena::Global(), DeviceArena::Global());
  EXPECT_EQ(DeviceArena::Global()->capacity_bytes(),
            DeviceArena::kDefaultCapacity);
}

TEST(DeviceArenaTest, FreeNullIsNoop) {
  DeviceArena arena(1024);
  arena.Free(nullptr);
  EXPECT_EQ(arena.used_bytes(), 0u);
}

// Uninstalls any active checker (e.g. the DYCUCKOO_RACECHECK=1 session)
// so a planted bad free exercises the arena's *own* hardening without
// becoming a process-level finding.
class NoActiveChecker {
 public:
  NoActiveChecker() : previous_(RaceCheck::Install(nullptr)) {}
  ~NoActiveChecker() { RaceCheck::Install(previous_); }

 private:
  RaceCheck* previous_;
};

TEST(DeviceArenaTest, UnknownPointerFreeIsReportedNotHonored) {
  NoActiveChecker no_checker;
  DeviceArena arena(1 << 20);
  void* p = arena.Allocate(512, "t");
  ASSERT_NE(p, nullptr);
  int not_ours = 0;
  arena.Free(&not_ours);
  EXPECT_EQ(arena.invalid_frees(), 1u);
  // Accounting untouched: the live allocation is still charged.
  EXPECT_EQ(arena.used_bytes(), 512u);
  EXPECT_EQ(arena.live_allocations(), 1u);
  arena.Free(p);
  EXPECT_EQ(arena.used_bytes(), 0u);
}

TEST(DeviceArenaTest, DoubleFreeWithoutCheckerIsReportedNotHonored) {
  NoActiveChecker no_checker;
  DeviceArena arena(1 << 20);
  void* a = arena.Allocate(100, "t");
  void* b = arena.Allocate(200, "t");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  arena.Free(a);
  arena.Free(a);  // double free: must not crash or re-credit the budget
  EXPECT_EQ(arena.invalid_frees(), 1u);
  EXPECT_EQ(arena.used_bytes(), 200u);
  EXPECT_EQ(arena.live_allocations(), 1u);
  arena.Free(b);
}

TEST(DeviceArenaTest, DoubleFreeUnderCheckerRecordsFinding) {
  ScopedRaceCheck scope;
  DeviceArena arena(1 << 20);
  void* p = arena.Allocate(64, "dbl");
  ASSERT_NE(p, nullptr);
  arena.Free(p);
  arena.Free(p);
  EXPECT_EQ(arena.invalid_frees(), 1u);
  RaceReport report = scope.checker().Report();
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, FindingKind::kDoubleFree);
  // The quarantine remembers the original owner.
  EXPECT_EQ(report.findings[0].tag, "dbl");
}

TEST(DeviceArenaTest, AllocateArrayCountOverflowReturnsNull) {
  DeviceArena arena(0);  // unbounded: only the multiply guard can reject
  const size_t huge = std::numeric_limits<size_t>::max() / sizeof(uint64_t) + 2;
  auto* arr = arena.AllocateArray<uint64_t>(huge, "t");
  EXPECT_EQ(arr, nullptr);
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.live_allocations(), 0u);
}

}  // namespace
}  // namespace gpusim
}  // namespace dycuckoo
