// Elastic online resharding: crash-safe live shard split/merge under
// chaos (service::Resharder + two-generation ShardRouter + the migration
// journal in durability::RecoverShardedDeployment).
//
// Acceptance invariants (ROADMAP / ISSUE):
//   - a crash at EVERY reshard.* kill point, in both directions (split
//     and merge), recovers to a consistent generation — resumed or rolled
//     back deterministically — with zero acked-write loss;
//   - linearizable reads with a reshard in flight (every FIND of an acked
//     key returns its acked value);
//   - no unavailability outside the actively-migrating chunk: reads are
//     never blocked, and the only write rejections carry the
//     "reshard_chunk" detail for the one open chunk;
//   - migration-pause rejections carry the same machine-readable details
//     as quarantine rejections (shard / retry_after_ticks / executed);
//   - same-seed runs replay bit-identically (journal image, manifest
//     image, per-shard table digests).
//
// Shard count is DYCUCKOO_SHARDS (default 4); merges run from 2N when N
// is odd so every CI lane exercises both directions.

#include "service/sharded_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "durability/log_format.h"
#include "durability/sharded.h"
#include "gpusim/device_arena.h"
#include "gpusim/fault_injector.h"
#include "gpusim/grid.h"
#include "service/resharder.h"
#include "service/shard_router.h"
#include "test_util.h"

namespace dycuckoo {
namespace service {
namespace {

using Sharded = ShardedTableServer<uint32_t, uint32_t>;
using OpType = Sharded::OpType;

constexpr uint32_t kKeySpace = 2048;

uint32_t NumShardsFromEnv() {
  const char* env = std::getenv("DYCUCKOO_SHARDS");
  if (env == nullptr || *env == '\0') return 4;
  unsigned long n = std::strtoul(env, nullptr, 0);
  return n == 0 ? 4 : static_cast<uint32_t>(n);
}

struct Env {
  gpusim::DeviceArena arena{0};
  gpusim::Grid grid{1};  // single worker: bitwise-deterministic scenarios
  DyCuckooOptions topt;
  Sharded::Options options;

  explicit Env(uint32_t num_shards) {
    topt.arena = &arena;
    topt.grid = &grid;
    topt.initial_capacity = 16 * 1024;
    options.num_shards = num_shards;
    options.shard.scrub_buckets_per_step = 8;
    options.durability.checkpoint_wal_bytes = 0;
    options.durability.checkpoint_wal_records = 48;
    // Heals happen only when a scenario asks for them (RequestHealNow).
    options.supervisor.heal_backoff_ticks = 1 << 20;
    options.supervisor.max_heal_attempts = 6;
  }
};

// --- Two-generation router (pure routing logic) ---------------------------

TEST(ShardRouterTwoGeneration, ChunkedRoutingRefinesTheModuloMap) {
  ShardRouter old_map(4, 99), new_map(8, 99);
  ShardRouter r(4, 99);
  ASSERT_TRUE(r.BeginMigration(8, 32).ok());
  EXPECT_TRUE(r.migrating());

  // No chunk cut over: every key still routes by the old generation.
  for (uint32_t k = 1; k < 20000; ++k) {
    ASSERT_EQ(r.ShardOf(k), old_map.ShardOf(k)) << "key " << k;
    ASSERT_LT(r.ChunkOf(k), 32u);
  }

  // Cutting over one chunk moves exactly that chunk's keys to the new
  // generation; every other key is untouched.
  r.SetCutOver(5);
  for (uint32_t k = 1; k < 20000; ++k) {
    if (r.ChunkOf(k) == 5) {
      ASSERT_EQ(r.ShardOf(k), new_map.ShardOf(k)) << "key " << k;
      // The chunk's target under the journal's map is its new home.
      ASSERT_EQ(new_map.ShardOf(k), 5u % 8u);
      ASSERT_EQ(old_map.ShardOf(k), 5u % 4u);
    } else {
      ASSERT_EQ(r.ShardOf(k), old_map.ShardOf(k)) << "key " << k;
    }
  }

  // All chunks cut over: the router IS the new map; finishing collapses
  // back to single-generation routing at the new count.
  for (uint32_t c = 0; c < 32; ++c) r.SetCutOver(c);
  for (uint32_t k = 1; k < 20000; ++k) {
    ASSERT_EQ(r.ShardOf(k), new_map.ShardOf(k)) << "key " << k;
  }
  r.FinishMigration();
  EXPECT_FALSE(r.migrating());
  EXPECT_EQ(r.num_shards(), 8u);
  for (uint32_t k = 1; k < 20000; ++k) {
    ASSERT_EQ(r.ShardOf(k), new_map.ShardOf(k)) << "key " << k;
  }
}

TEST(ShardRouterTwoGeneration, RejectsBadMigrations) {
  ShardRouter r(4, 7);
  // The chunk count must be a positive common multiple of both shard
  // counts, else chunked routing would not refine the modulo maps.
  EXPECT_TRUE(r.BeginMigration(8, 30).IsInvalidArgument());
  EXPECT_TRUE(r.BeginMigration(8, 0).IsInvalidArgument());
  ASSERT_TRUE(r.BeginMigration(8, 64).ok());
  EXPECT_TRUE(r.BeginMigration(8, 64).IsInvalidArgument())
      << "a second migration must not start while one is active";
  r.AbortMigration();
  EXPECT_FALSE(r.migrating());
  EXPECT_EQ(r.num_shards(), 4u);
  // Merge direction validates the same way.
  ASSERT_TRUE(r.BeginMigration(2, 32).ok());
}

TEST(ReshardJournal, EncodeDecodeRoundTripAndTamperDetection) {
  durability::ReshardJournal j =
      durability::ReshardJournal::Make(3, 0xABCDULL, 4, 8);
  EXPECT_EQ(j.num_chunks, durability::kReshardChunksPerShard * 8);
  EXPECT_EQ(j.FirstIncomplete(), 0u);
  EXPECT_FALSE(j.AnyCutOver());
  EXPECT_FALSE(j.Complete());
  j.chunks[0] = durability::ReshardChunkState::kDone;
  j.chunks[1] = durability::ReshardChunkState::kCutOver;
  EXPECT_TRUE(j.AnyCutOver());
  EXPECT_EQ(j.FirstIncomplete(), 1u);
  EXPECT_EQ(j.source_shard(5), 1u);
  EXPECT_EQ(j.target_shard(5), 5u);

  std::string image = j.Encode();
  durability::ReshardJournal back;
  ASSERT_TRUE(durability::ReshardJournal::Decode(image, &back).ok());
  EXPECT_EQ(back.generation_from, 3u);
  EXPECT_EQ(back.router_seed, 0xABCDULL);
  EXPECT_EQ(back.shards_from, 4u);
  EXPECT_EQ(back.shards_to, 8u);
  EXPECT_EQ(back.chunks, j.chunks);

  std::string flipped = image;
  flipped[flipped.size() / 2] ^= 0x40;
  durability::ReshardJournal out;
  EXPECT_TRUE(durability::ReshardJournal::Decode(flipped, &out).IsDataLoss());
  EXPECT_TRUE(durability::ReshardJournal::Decode(
                  image.substr(0, image.size() - 3), &out)
                  .IsDataLoss());
}

// --- Shadow ledger + migration workload -----------------------------------

struct Ledger {
  SplitMix64 rng{0};
  std::unordered_map<uint32_t, uint32_t> durable_acked;
  std::unordered_set<uint32_t> uncertain;
  std::unordered_set<uint32_t> ever_inserted;
  uint64_t blocked_writes = 0;        // reshard_chunk rejections
  uint64_t shard_unavailable = 0;     // quarantine-style rejections
  uint64_t never_rejections = 0;      // executed=never, no shard at fault
  uint64_t find_probes = 0;
};

void MarkUncertainOp(const Sharded::Op& op, Ledger* led) {
  if (op.type == OpType::kInsert) {
    led->uncertain.insert(op.key);
    led->ever_inserted.insert(op.key);
  } else if (op.type == OpType::kErase) {
    led->uncertain.insert(op.key);
  }
}

void Classify(const Sharded::Op& op, const Sharded::Response& resp,
              Ledger* led) {
  const Status& st = resp.status;
  if (st.ok()) {
    if (op.type == OpType::kInsert) {
      led->durable_acked[op.key] = op.value;
      led->ever_inserted.insert(op.key);
      led->uncertain.erase(op.key);
    } else if (op.type == OpType::kErase) {
      led->durable_acked.erase(op.key);
      led->uncertain.erase(op.key);
    } else if (!led->uncertain.count(op.key)) {
      // Linearizable read: an acked key answers its acked value — even
      // mid-copy, even just after its chunk's cutover flipped shards.
      ++led->find_probes;
      auto it = led->durable_acked.find(op.key);
      ASSERT_EQ(resp.results.size(), 1u);
      if (it != led->durable_acked.end()) {
        EXPECT_EQ(resp.results[0].hit, 1u)
            << "linearizability: acked key " << op.key << " unreadable";
        if (resp.results[0].hit == 1u) {
          EXPECT_EQ(resp.results[0].value, it->second)
              << "linearizability: acked key " << op.key
              << " answered a stale value";
        }
      } else if (!led->ever_inserted.count(op.key)) {
        EXPECT_EQ(resp.results[0].hit, 0u)
            << "phantom read of key " << op.key;
      }
    }
    return;
  }
  if (st.IsUnavailable()) {
    if (st.FindDetail("reshard_chunk") != nullptr) {
      // The open-chunk write window.  Reads are never blocked, and the
      // rejection carries the full quarantine-style detail contract.
      EXPECT_NE(op.type, OpType::kFind)
          << "reads must never be reshard-blocked";
      EXPECT_NE(st.FindDetail("shard"), nullptr);
      EXPECT_NE(st.FindDetail("retry_after_ticks"), nullptr);
      const std::string* executed = st.FindDetail("executed");
      ASSERT_NE(executed, nullptr);
      EXPECT_EQ(*executed, "never");
      ++led->blocked_writes;
      return;
    }
    if (st.FindDetail("shard") != nullptr) {
      ++led->shard_unavailable;
      const std::string* executed = st.FindDetail("executed");
      if (executed == nullptr || *executed != "never") {
        MarkUncertainOp(op, led);
      }
      return;
    }
    const std::string* executed = st.FindDetail("executed");
    if (executed != nullptr && *executed == "never") {
      ++led->never_rejections;  // e.g. the deployment died mid-round
      return;
    }
    MarkUncertainOp(op, led);
    return;
  }
  if (st.IsResourceExhausted() ||
      (st.IsDeadlineExceeded() && resp.attempts == 0)) {
    return;  // contractually never executed
  }
  MarkUncertainOp(op, led);
}

/// One round: six single-op writes across the keyspace plus up to four
/// FIND probes of already-acked keys, all classified against the ledger.
/// Single-op requests keep the side-effect accounting exact — a rejected
/// request executed nothing.  RunUntilIdle between submit and harvest is
/// where migration chunks advance (and where reshard kill points fire).
void RunReshardRound(Sharded* srv, Ledger* led) {
  struct Pending {
    uint64_t id;
    Sharded::Op op;
  };
  std::vector<Pending> pending;
  std::unordered_set<uint32_t> written;
  for (int i = 0; i < 6; ++i) {
    uint32_t key = 1 + static_cast<uint32_t>(led->rng.Next() % kKeySpace);
    uint64_t roll = led->rng.Next() % 10;
    Sharded::Op op =
        roll < 7
            ? Sharded::Op{OpType::kInsert, key,
                          static_cast<uint32_t>(led->rng.Next())}
            : Sharded::Op{OpType::kErase, key, 0};
    written.insert(key);
    Sharded::Request req;
    req.ops.push_back(op);
    pending.push_back(Pending{srv->Submit(std::move(req)), op});
  }
  int probes = 0;
  for (const auto& [k, v] : led->durable_acked) {
    // Skip keys this round writes: a shard micro-batch guarantees no
    // ordering between ops of one batch (see DynamicTable::BulkExecute),
    // so a same-batch find may legally miss the write.
    if (led->uncertain.count(k) || written.count(k)) continue;
    Sharded::Op op{OpType::kFind, k, 0};
    Sharded::Request req;
    req.ops.push_back(op);
    pending.push_back(Pending{srv->Submit(std::move(req)), op});
    if (++probes == 4) break;
  }
  srv->RunUntilIdle();
  for (Pending& p : pending) {
    Sharded::Response resp;
    if (!srv->TakeResponse(p.id, &resp)) {
      // The deployment crashed with this request in flight.
      MarkUncertainOp(p.op, led);
      continue;
    }
    Classify(p.op, resp, led);
  }
}

/// The healed/recovered deployment is the authority for uncertain keys.
void Reconcile(Sharded* srv, Ledger* led) {
  for (auto it = led->uncertain.begin(); it != led->uncertain.end();) {
    uint32_t k = *it;
    uint32_t shard = srv->router().ShardOf(k);
    uint32_t rv = 0;
    if (srv->shard_server(shard) != nullptr &&
        srv->shard_server(shard)->table()->Find(k, &rv)) {
      led->durable_acked[k] = rv;
    } else {
      led->durable_acked.erase(k);
    }
    it = led->uncertain.erase(it);
  }
}

/// Post-migration (single-generation routing): every acked key readable
/// with its acked value at its routed home; no phantom or mis-homed keys.
void VerifyLedger(Sharded* srv, const Ledger& led, const std::string& tag) {
  for (const auto& [k, v] : led.durable_acked) {
    uint32_t shard = srv->router().ShardOf(k);
    ASSERT_TRUE(srv->supervisor().serving(shard))
        << tag << ": shard " << shard << " not serving";
    uint32_t rv = 0;
    bool found = srv->shard_server(shard)->table()->Find(k, &rv);
    EXPECT_TRUE(found) << tag << ": lost acked key " << k << " on shard "
                       << shard;
    if (found) {
      EXPECT_EQ(rv, v) << tag << ": acked key " << k << " has wrong value";
    }
  }
  for (uint32_t s = 0; s < srv->num_shards(); ++s) {
    if (!srv->supervisor().serving(s)) continue;
    for (const auto& [k, v] : srv->shard_server(s)->table()->Dump()) {
      EXPECT_EQ(srv->router().ShardOf(k), s)
          << tag << ": key " << k << " mis-homed on shard " << s;
      EXPECT_TRUE(led.ever_inserted.count(k))
          << tag << ": phantom key " << k << " on shard " << s;
    }
  }
}

uint64_t ShardTableDigest(Sharded* srv, uint32_t shard) {
  auto pairs = srv->shard_server(shard)->table()->Dump();
  std::sort(pairs.begin(), pairs.end());
  uint64_t h = 1469598103934665603ull;
  for (const auto& [k, v] : pairs) {
    uint64_t x = (static_cast<uint64_t>(k) << 32) | v;
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// Drives an armed migration to completion with live traffic, bounded.
void DriveMigration(Sharded* srv, Ledger* led) {
  for (int guard = 0;
       srv->resharder().active() && !srv->reshard_crashed() && guard < 4000;
       ++guard) {
    RunReshardRound(srv, led);
  }
}

// --- Functional: online split and merge under live traffic ----------------

void RunOnlineReshard(bool split, uint64_t seed) {
  SCOPED_TRACE(testing::ChaosReproLine("tests/test_resharder", seed) +
               (split ? " [split]" : " [merge]"));
  const uint32_t base = NumShardsFromEnv();
  const uint32_t from = split ? base : (base % 2 == 0 ? base : 2 * base);
  const uint32_t to = split ? 2 * from : from / 2;
  Env env(from);
  std::unique_ptr<Sharded> srv;
  ASSERT_TRUE(Sharded::Create(env.topt, env.options, &srv).ok());

  Ledger led;
  led.rng = SplitMix64(seed);
  for (int r = 0; r < 10; ++r) RunReshardRound(srv.get(), &led);
  ASSERT_GT(led.durable_acked.size(), 20u) << "population is vacuous";
  const uint64_t before = led.durable_acked.size();

  ASSERT_TRUE(srv->BeginReshard(to).ok());
  EXPECT_TRUE(srv->router().migrating());
  EXPECT_EQ(srv->physical_shards(), std::max(from, to));
  EXPECT_TRUE(srv->BeginReshard(to).IsInvalidArgument())
      << "one migration at a time";

  DriveMigration(srv.get(), &led);
  ASSERT_FALSE(srv->reshard_crashed());
  ASSERT_FALSE(srv->resharder().active()) << "migration did not finish";
  EXPECT_EQ(srv->num_shards(), to);
  EXPECT_EQ(srv->physical_shards(), to);
  EXPECT_FALSE(srv->router().migrating());
  EXPECT_EQ(srv->manifest().generation, 1u);
  EXPECT_EQ(srv->manifest().num_shards, to);
  EXPECT_TRUE(srv->JournalImage().empty());

  // Availability contract: live traffic saw ZERO shard-level
  // unavailability — the only rejections carried the open chunk.
  EXPECT_EQ(led.shard_unavailable, 0u)
      << "a shard refused service during a healthy migration";
  EXPECT_EQ(led.never_rejections, 0u);
  EXPECT_TRUE(led.uncertain.empty());
  EXPECT_GT(led.find_probes, 0u);
  EXPECT_EQ(srv->stats().reshard_blocked_writes.load(), led.blocked_writes);

  VerifyLedger(srv.get(), led, split ? "post-split" : "post-merge");
  // >= not ==: an acked erase can be displaced by an unrelated insert's
  // eviction chain sharing its micro-batch (DynamicTable::BulkExecute
  // guarantees per-op correctness with no intra-batch ordering), so the
  // ledger is a lower bound.  Loss of acked inserts is what VerifyLedger
  // rules out.
  EXPECT_GE(srv->total_size(), led.durable_acked.size());
  EXPECT_GE(led.durable_acked.size() + led.ever_inserted.size(),
            before);  // the workload kept running

  // The deployment serves normally at the new count.
  for (int r = 0; r < 4; ++r) RunReshardRound(srv.get(), &led);
  EXPECT_EQ(led.shard_unavailable, 0u);
  VerifyLedger(srv.get(), led, "post-migration-traffic");
}

TEST(Resharder, SplitDoublesShardsOnline) {
  RunOnlineReshard(/*split=*/true, testing::ChaosSeedFromEnv(0xD1C0CC20));
}

TEST(Resharder, MergeHalvesShardsOnline) {
  RunOnlineReshard(/*split=*/false, testing::ChaosSeedFromEnv(0xD1C0CC21));
}

TEST(Resharder, SplitThenMergeRoundTripsAndGenerationCounts) {
  const uint64_t seed = testing::ChaosSeedFromEnv(0xD1C0CC22);
  SCOPED_TRACE(testing::ChaosReproLine("tests/test_resharder", seed));
  Env env(2);
  std::unique_ptr<Sharded> srv;
  ASSERT_TRUE(Sharded::Create(env.topt, env.options, &srv).ok());
  Ledger led;
  led.rng = SplitMix64(seed);
  for (int r = 0; r < 8; ++r) RunReshardRound(srv.get(), &led);

  ASSERT_TRUE(srv->BeginReshard(4).ok());
  DriveMigration(srv.get(), &led);
  ASSERT_EQ(srv->num_shards(), 4u);
  EXPECT_EQ(srv->manifest().generation, 1u);

  ASSERT_TRUE(srv->BeginReshard(2).ok());
  DriveMigration(srv.get(), &led);
  ASSERT_EQ(srv->num_shards(), 2u);
  EXPECT_EQ(srv->manifest().generation, 2u);
  EXPECT_TRUE(led.uncertain.empty());
  VerifyLedger(srv.get(), led, "after-round-trip");
  // >= not ==: an acked erase can be displaced by an unrelated insert's
  // eviction chain sharing its micro-batch (DynamicTable::BulkExecute
  // guarantees per-op correctness with no intra-batch ordering), so the
  // ledger is a lower bound.  Loss of acked inserts is what VerifyLedger
  // rules out.
  EXPECT_GE(srv->total_size(), led.durable_acked.size());

  EXPECT_TRUE(srv->BeginReshard(3).IsInvalidArgument())
      << "only exact doubling/halving is a reshard";
}

// --- The reshard chaos soak: crash at every kill point, both ways ---------

struct CrashOutcome {
  bool crashed = false;
  bool resumed = false;
  bool rolled_back = false;
  bool completed = false;
  uint64_t generation = 0;
  uint64_t total = 0;
  std::string manifest_image;
  std::string journal_image;
  std::vector<uint64_t> digests;
};

/// Populate -> BeginReshard -> run live traffic until the targeted
/// reshard.* kill point fires (crossing `kill_at`, i.e. chunk `kill_at`)
/// -> recover the whole deployment from its durable images -> resume or
/// roll back per the journal -> drive to a consistent generation ->
/// verify zero acked-write loss.
CrashOutcome RunReshardKillScenario(const char* kill_point, int kill_at,
                                    bool split, uint64_t seed) {
  SCOPED_TRACE(testing::ChaosReproLine("tests/test_resharder", seed) +
               " kill=" + kill_point + " crossing=" +
               std::to_string(kill_at) + (split ? " [split]" : " [merge]"));
  CrashOutcome out;
  const uint32_t base = NumShardsFromEnv();
  const uint32_t from = split ? base : (base % 2 == 0 ? base : 2 * base);
  const uint32_t to = split ? 2 * from : from / 2;
  Env env(from);
  std::unique_ptr<Sharded> srv;
  Status st = Sharded::Create(env.topt, env.options, &srv);
  if (!st.ok()) {
    ADD_FAILURE() << "Create failed: " << st.ToString();
    return out;
  }
  Ledger led;
  led.rng = SplitMix64(seed);
  for (int r = 0; r < 10; ++r) RunReshardRound(srv.get(), &led);
  EXPECT_GT(led.durable_acked.size(), 20u);

  st = srv->BeginReshard(to);
  if (!st.ok()) {
    ADD_FAILURE() << "BeginReshard failed: " << st.ToString();
    return out;
  }
  {
    gpusim::FaultInjectorConfig cfg;
    cfg.seed = seed;
    cfg.kill_at_point = kill_at;
    cfg.kill_point_filter = kill_point;
    gpusim::ScopedFaultInjection scoped(cfg);
    for (int guard = 0;
         !srv->reshard_crashed() && srv->resharder().active() &&
         guard < 4000;
         ++guard) {
      RunReshardRound(srv.get(), &led);
    }
    EXPECT_EQ(scoped.injector().kill_points_fired(), 1u)
        << "the targeted kill point never fired; scenario is vacuous";
  }
  out.crashed = srv->reshard_crashed();
  EXPECT_TRUE(out.crashed);
  if (!out.crashed) return out;
  EXPECT_EQ(srv->resharder().state(),
            Resharder<Sharded>::State::kDead);

  // Everything below is the restart: only bytes cross the crash.
  const std::vector<durability::ShardImages> images = srv->DurableImages();
  const std::vector<DyCuckooOptions> opts = srv->ShardTableOptionsList();
  out.manifest_image = srv->ManifestImage();
  out.journal_image = srv->JournalImage();
  srv.reset();

  durability::ShardedDeploymentRecovery<uint32_t, uint32_t> rec;
  st = durability::RecoverShardedDeployment<uint32_t, uint32_t>(
      out.manifest_image, out.journal_image, images, opts,
      env.options.router_seed, &rec);
  if (!st.ok()) {
    ADD_FAILURE() << "RecoverShardedDeployment failed: " << st.ToString();
    return out;
  }
  out.resumed = rec.mid_reshard;
  out.rolled_back = rec.rolled_back;
  EXPECT_NE(out.resumed, out.rolled_back)
      << "recovery must decide, deterministically";

  std::unique_ptr<Sharded> srv2;
  st = Sharded::AdoptRecoveredSharded(&rec, images, env.topt, env.options,
                                      &srv2);
  if (!st.ok()) {
    ADD_FAILURE() << "AdoptRecoveredSharded failed: " << st.ToString();
    return out;
  }
  EXPECT_EQ(srv2->supervisor().serving_count(), srv2->physical_shards())
      << "a reshard crash corrupts nothing; every shard recovers serving";
  Reconcile(srv2.get(), &led);

  if (out.rolled_back) {
    // The deployment is its pre-migration self: old count, generation
    // unchanged, no journal, router single-generation.
    EXPECT_EQ(srv2->num_shards(), from);
    EXPECT_EQ(srv2->physical_shards(), from);
    EXPECT_FALSE(srv2->router().migrating());
    EXPECT_FALSE(srv2->resharder().active());
    EXPECT_EQ(srv2->manifest().generation, 0u);
    VerifyLedger(srv2.get(), led, "post-rollback");
    // A rolled-back deployment can migrate again, cleanly, to the end.
    EXPECT_TRUE(srv2->BeginReshard(to).ok());
  } else {
    EXPECT_TRUE(srv2->resharder().active());
    EXPECT_TRUE(srv2->router().migrating());
    EXPECT_TRUE(srv2->resharder().journal().AnyCutOver())
        << "resume implies some chunk's routing already switched";
  }

  DriveMigration(srv2.get(), &led);
  out.completed =
      !srv2->reshard_crashed() && !srv2->resharder().active();
  EXPECT_TRUE(out.completed) << "migration did not complete after restart";
  if (!out.completed) return out;
  EXPECT_EQ(srv2->num_shards(), to);
  EXPECT_EQ(srv2->manifest().generation, 1u);
  EXPECT_TRUE(srv2->JournalImage().empty());
  // Re-admission probation may have turned a few post-restart writes into
  // retriable rejections; the finished deployment is the authority.
  Reconcile(srv2.get(), &led);
  VerifyLedger(srv2.get(), led, "post-crash-migration");
  EXPECT_GE(srv2->total_size(), led.durable_acked.size());

  out.generation = srv2->manifest().generation;
  out.total = srv2->total_size();
  for (uint32_t s = 0; s < srv2->num_shards(); ++s) {
    out.digests.push_back(ShardTableDigest(srv2.get(), s));
  }
  return out;
}

TEST(ReshardChaosSoak, EveryKillPointBothDirectionsRecover) {
  const uint64_t seed = testing::ChaosSeedFromEnv(0xD1C0CC30);
  for (size_t i = 0; i < durability::kNumReshardKillPoints; ++i) {
    for (bool split : {true, false}) {
      for (int kill_at : {0, 2}) {
        CrashOutcome out = RunReshardKillScenario(
            durability::kReshardKillPointNames[i], kill_at, split,
            seed ^ (i * 0x9E3779B9u) ^ (split ? 0u : 0x5bd1e995u) ^
                static_cast<uint64_t>(kill_at));
        if (!out.crashed) continue;
        // The crash decision matrix: a crash before any cutover (a
        // pre-cutover point on the very first chunk) rolls back; any
        // later crash resumes.  Never a guess.
        const bool pre_cutover = i <= 2;
        if (pre_cutover && kill_at == 0) {
          EXPECT_TRUE(out.rolled_back)
              << durability::kReshardKillPointNames[i] << "@" << kill_at;
        } else {
          EXPECT_TRUE(out.resumed)
              << durability::kReshardKillPointNames[i] << "@" << kill_at;
        }
        EXPECT_TRUE(out.completed);
      }
    }
  }
}

TEST(ReshardChaosSoak, SameSeedReplaysBitIdentically) {
  const uint64_t seed = testing::ChaosSeedFromEnv(0xD1C0CC31);
  CrashOutcome a =
      RunReshardKillScenario("reshard.before_cutover", 2, true, seed);
  CrashOutcome b =
      RunReshardKillScenario("reshard.before_cutover", 2, true, seed);
  EXPECT_EQ(a.crashed, b.crashed);
  EXPECT_EQ(a.resumed, b.resumed);
  EXPECT_EQ(a.journal_image, b.journal_image)
      << "the crash-time journal must replay bit-identically";
  EXPECT_EQ(a.manifest_image, b.manifest_image);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.digests, b.digests)
      << "per-shard table contents must replay bit-identically";
}

// --- The blocked-write window, deterministically --------------------------

// Satellite: migration-pause rejections carry the same machine-readable
// details as quarantine rejections.  A crash at reshard.before_cutover on
// chunk 2 recovers with that chunk kCopied — the write window is open the
// moment the journal is re-armed, before any Step: writes to chunk 2 are
// rejected with the full detail contract, reads of chunk 2 serve, and
// writes to every other chunk serve.
TEST(Resharder, BlockedChunkWindowRejectsWritesWithQuarantineDetails) {
  const uint64_t seed = testing::ChaosSeedFromEnv(0xD1C0CC32);
  SCOPED_TRACE(testing::ChaosReproLine("tests/test_resharder", seed));
  Env env(2);
  std::unique_ptr<Sharded> srv;
  ASSERT_TRUE(Sharded::Create(env.topt, env.options, &srv).ok());
  Ledger led;
  led.rng = SplitMix64(seed);
  for (int r = 0; r < 10; ++r) RunReshardRound(srv.get(), &led);
  ASSERT_TRUE(srv->BeginReshard(4).ok());
  {
    gpusim::FaultInjectorConfig cfg;
    cfg.seed = seed;
    cfg.kill_at_point = 2;  // chunk 2: source 0, target 2 — a real copy
    cfg.kill_point_filter = "reshard.before_cutover";
    gpusim::ScopedFaultInjection scoped(cfg);
    for (int guard = 0; !srv->reshard_crashed() && guard < 4000; ++guard) {
      RunReshardRound(srv.get(), &led);
    }
    ASSERT_EQ(scoped.injector().kill_points_fired(), 1u);
  }
  const std::vector<durability::ShardImages> images = srv->DurableImages();
  const std::vector<DyCuckooOptions> opts = srv->ShardTableOptionsList();
  durability::ShardedDeploymentRecovery<uint32_t, uint32_t> rec;
  Status rst = durability::RecoverShardedDeployment<uint32_t, uint32_t>(
      srv->ManifestImage(), srv->JournalImage(), images, opts,
      env.options.router_seed, &rec);
  ASSERT_TRUE(rst.ok()) << rst.ToString();
  ASSERT_TRUE(rec.mid_reshard);
  ASSERT_EQ(rec.journal.chunks[2], durability::ReshardChunkState::kCopied);
  std::unique_ptr<Sharded> srv2;
  ASSERT_TRUE(Sharded::AdoptRecoveredSharded(&rec, images, env.topt,
                                             env.options, &srv2)
                  .ok());
  Reconcile(srv2.get(), &led);
  ASSERT_TRUE(srv2->resharder().BlocksWrites(2));
  ASSERT_FALSE(srv2->resharder().BlocksWrites(3));

  // Keys by chunk, by rejection sampling against the migrating router.
  SplitMix64 rng(seed ^ 0xBEEF);
  auto key_in_chunk = [&](uint32_t chunk) {
    for (;;) {
      uint32_t k = 1 + static_cast<uint32_t>(rng.Next() % (64 * kKeySpace));
      if (srv2->router().ChunkOf(k) == chunk) return k;
    }
  };

  // Write to the open chunk: rejected, full detail contract, and the
  // exact same keys a quarantine rejection carries (plus the chunk).
  const uint32_t blocked_key = key_in_chunk(2);
  Sharded::Request wreq;
  wreq.ops.push_back(Sharded::Op{OpType::kInsert, blocked_key, 77});
  uint64_t id = srv2->Submit(std::move(wreq));
  Sharded::Response resp;
  ASSERT_TRUE(srv2->TakeResponse(id, &resp)) << "rejected synchronously";
  ASSERT_TRUE(resp.status.IsUnavailable()) << resp.status.ToString();
  ASSERT_NE(resp.status.FindDetail("reshard_chunk"), nullptr);
  EXPECT_EQ(*resp.status.FindDetail("reshard_chunk"), "2");
  ASSERT_NE(resp.status.FindDetail("shard"), nullptr);
  EXPECT_EQ(*resp.status.FindDetail("shard"), "0")
      << "chunk 2's source under 2->4 is shard 0";
  ASSERT_NE(resp.status.FindDetail("retry_after_ticks"), nullptr);
  EXPECT_GT(std::strtoull(
                resp.status.FindDetail("retry_after_ticks")->c_str(),
                nullptr, 10),
            0u);
  ASSERT_NE(resp.status.FindDetail("executed"), nullptr);
  EXPECT_EQ(*resp.status.FindDetail("executed"), "never");
  EXPECT_GT(srv2->stats().reshard_blocked_writes.load(), 0u);

  // Reads of the open chunk serve (from the still-authoritative source).
  uint32_t acked_in_chunk2 = 0;
  bool have_acked = false;
  for (const auto& [k, v] : led.durable_acked) {
    if (!led.uncertain.count(k) && srv2->router().ChunkOf(k) == 2) {
      acked_in_chunk2 = k;
      have_acked = true;
      break;
    }
  }
  if (have_acked) {
    Sharded::Request rreq;
    rreq.ops.push_back(Sharded::Op{OpType::kFind, acked_in_chunk2, 0});
    id = srv2->Submit(std::move(rreq));
    srv2->RunUntilIdle();
    ASSERT_TRUE(srv2->TakeResponse(id, &resp));
    ASSERT_TRUE(resp.status.ok())
        << "reads in the open chunk must serve: " << resp.status.ToString();
    EXPECT_EQ(resp.results[0].hit, 1u);
    EXPECT_EQ(resp.results[0].value, led.durable_acked[acked_in_chunk2]);
  }

  // Writes to any other chunk serve.  (The first Step may close chunk
  // 2's window; that's fine — this write targets chunk 5, never blocked.)
  const uint32_t free_key = key_in_chunk(5);
  Sharded::Request ok_req;
  ok_req.ops.push_back(Sharded::Op{OpType::kInsert, free_key, 88});
  id = srv2->Submit(std::move(ok_req));
  srv2->RunUntilIdle();
  ASSERT_TRUE(srv2->TakeResponse(id, &resp));
  EXPECT_TRUE(resp.status.ok())
      << "only the open chunk may reject writes: " << resp.status.ToString();
  led.durable_acked[free_key] = 88;
  led.ever_inserted.insert(free_key);

  DriveMigration(srv2.get(), &led);
  ASSERT_FALSE(srv2->resharder().active());
  VerifyLedger(srv2.get(), led, "post-window");
}

// --- Supervision: pause on quarantine, resume after heal ------------------

TEST(Resharder, PausesWhileParticipantQuarantinedAndResumesAfterHeal) {
  const uint64_t seed = testing::ChaosSeedFromEnv(0xD1C0CC33);
  SCOPED_TRACE(testing::ChaosReproLine("tests/test_resharder", seed));
  Env env(2);
  std::unique_ptr<Sharded> srv;
  ASSERT_TRUE(Sharded::Create(env.topt, env.options, &srv).ok());
  Ledger led;
  led.rng = SplitMix64(seed);
  for (int r = 0; r < 10; ++r) RunReshardRound(srv.get(), &led);
  ASSERT_TRUE(srv->BeginReshard(4).ok());

  // A shard-scoped durability kill takes shard 0's fault domain down
  // while the migration runs; chunk sources alternate between shards 0
  // and 1, so the migration hits a chunk it cannot touch within a step
  // or two and pauses.
  gpusim::FaultInjectorConfig cfg;
  cfg.seed = seed;
  cfg.kill_at_point = 0;
  cfg.kill_point_filter = durability::ShardScope(0) + "wal.commit.mid";
  {
    gpusim::ScopedFaultInjection scoped(cfg);
    for (int guard = 0;
         srv->supervisor().serving(0) && guard < 400; ++guard) {
      RunReshardRound(srv.get(), &led);
    }
    ASSERT_EQ(scoped.injector().kill_points_fired(), 1u);
    ASSERT_EQ(srv->supervisor().state(0), ShardState::kQuarantined);

    for (int i = 0; i < 100 && !srv->resharder().paused(); ++i) {
      srv->Step();
    }
    ASSERT_TRUE(srv->resharder().paused())
        << "migration must pause while a participant is quarantined";
    EXPECT_EQ(srv->resharder().paused_on(), 0u);
    EXPECT_GE(srv->resharder().stats().pauses, 1u);

    // Paused means paused: no chunk transition while the shard is down.
    const uint64_t done_before = srv->resharder().chunks_done();
    for (int i = 0; i < 25; ++i) srv->Step();
    EXPECT_EQ(srv->resharder().chunks_done(), done_before);
    EXPECT_TRUE(srv->resharder().paused());

    // A second reshard cannot start over a paused one.
    EXPECT_TRUE(srv->BeginReshard(4).IsInvalidArgument());

    // Heal the shard; the migration resumes on its own and completes.
    srv->RequestHealNow(0);
    for (int i = 0; i < 5000 && !srv->supervisor().serving(0); ++i) {
      srv->Step();
    }
    ASSERT_TRUE(srv->supervisor().serving(0))
        << srv->supervisor().last_heal_status(0).ToString();
  }
  DriveMigration(srv.get(), &led);
  ASSERT_FALSE(srv->resharder().active());
  ASSERT_FALSE(srv->reshard_crashed());
  EXPECT_GE(srv->resharder().stats().resumes, 1u);
  EXPECT_EQ(srv->num_shards(), 4u);
  EXPECT_EQ(srv->manifest().generation, 1u);
  Reconcile(srv.get(), &led);
  VerifyLedger(srv.get(), led, "post-pause-resume");
}

// --- Durable generation across a clean (post-finalize) restart ------------

TEST(Resharder, FinalizedGenerationSurvivesRestart) {
  const uint64_t seed = testing::ChaosSeedFromEnv(0xD1C0CC34);
  SCOPED_TRACE(testing::ChaosReproLine("tests/test_resharder", seed));
  Env env(2);
  std::unique_ptr<Sharded> srv;
  ASSERT_TRUE(Sharded::Create(env.topt, env.options, &srv).ok());
  Ledger led;
  led.rng = SplitMix64(seed);
  for (int r = 0; r < 8; ++r) RunReshardRound(srv.get(), &led);
  ASSERT_TRUE(srv->BeginReshard(4).ok());
  DriveMigration(srv.get(), &led);
  ASSERT_EQ(srv->num_shards(), 4u);
  ASSERT_EQ(srv->manifest().generation, 1u);

  // Full-process crash AFTER finalize: the journal is gone, the manifest
  // carries generation 1 and the new count; recovery takes the plain
  // path and the generation survives.
  const std::vector<durability::ShardImages> images = srv->DurableImages();
  const std::vector<DyCuckooOptions> opts = srv->ShardTableOptionsList();
  const std::string manifest_image = srv->ManifestImage();
  ASSERT_TRUE(srv->JournalImage().empty());
  srv.reset();

  durability::ShardedDeploymentRecovery<uint32_t, uint32_t> rec;
  Status rst = durability::RecoverShardedDeployment<uint32_t, uint32_t>(
      manifest_image, std::string(), images, opts, env.options.router_seed,
      &rec);
  ASSERT_TRUE(rst.ok()) << rst.ToString();
  EXPECT_FALSE(rec.mid_reshard);
  EXPECT_FALSE(rec.rolled_back);
  EXPECT_EQ(rec.manifest.generation, 1u);
  EXPECT_EQ(rec.manifest.num_shards, 4u);

  Sharded::Options post = env.options;
  post.num_shards = 4;
  std::unique_ptr<Sharded> srv2;
  ASSERT_TRUE(
      Sharded::AdoptRecoveredSharded(&rec, images, env.topt, post, &srv2)
          .ok());
  EXPECT_EQ(srv2->manifest().generation, 1u);
  EXPECT_EQ(srv2->num_shards(), 4u);
  Reconcile(srv2.get(), &led);
  VerifyLedger(srv2.get(), led, "post-restart");
  EXPECT_GE(srv2->total_size(), led.durable_acked.size());
}

}  // namespace
}  // namespace service
}  // namespace dycuckoo
