// Planted-defect tests for the gpusim RaceCheck dynamic analysis.
//
// Each defect class the checker exists to catch is planted deliberately —
// an unlocked two-warp bucket write, an off-by-one probe past a subtable's
// key array, a use-after-free across a downsize — and the test asserts the
// exact kind and owning tag of the resulting finding.  Clean workloads
// (locked writes, annotated racy writes, a full table exercise) must stay
// clean, and the report digest must be reproducible run to run.

#include "gpusim/racecheck.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dycuckoo/dycuckoo.h"
#include "dycuckoo/subtable.h"
#include "gpusim/atomics.h"
#include "gpusim/device_arena.h"
#include "gpusim/grid.h"
#include "test_util.h"

namespace dycuckoo {
namespace gpusim {
namespace {

using SubtableU32 = Subtable<uint32_t, uint32_t>;

// Runs the canonical planted race: eight warps of one launch store to the
// same word of a tagged arena array with no lock and no ordering.
RaceReport RunUnlockedTwoWarpWrite() {
  ScopedRaceCheck scope;
  DeviceArena arena(0);
  Grid grid(4);
  auto* words = arena.AllocateArray<std::atomic<uint64_t>>(32, "bucket");
  grid.LaunchWarps(8, [&](uint64_t warp) {
    Store(&words[0], static_cast<uint64_t>(warp));
  });
  RaceReport report = scope.checker().Report();
  arena.FreeArray(words);
  return report;
}

TEST(RaceCheckTest, UnlockedTwoWarpBucketWriteIsReported) {
  RaceReport report = RunUnlockedTwoWarpWrite();
  ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
  const RaceFinding& f = report.findings[0];
  EXPECT_EQ(f.kind, FindingKind::kWriteWriteRace);
  EXPECT_EQ(f.tag, "bucket");
  EXPECT_EQ(f.offset, 0);
  EXPECT_EQ(f.access_bytes, sizeof(uint64_t));
  EXPECT_EQ(f.launch, 1u);  // first (and only) launch of the session
  EXPECT_EQ(report.launches, 1u);
}

TEST(RaceCheckTest, LockedWritesDoNotRace) {
  ScopedRaceCheck scope;
  DeviceArena arena(0);
  Grid grid(4);
  auto* words = arena.AllocateArray<std::atomic<uint64_t>>(32, "bucket");
  auto* locks = arena.AllocateArray<BucketLock>(1, "lock");
  grid.LaunchWarps(8, [&](uint64_t warp) {
    while (!locks[0].TryLock()) {
    }
    Store(&words[0], static_cast<uint64_t>(warp));
    locks[0].Unlock();
  });
  RaceReport report = scope.checker().Report();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_GT(report.sync_events, 0u);
  arena.FreeArray(words);
  arena.FreeArray(locks);
}

TEST(RaceCheckTest, StoreRacyAnnotationSuppressesReport) {
  ScopedRaceCheck scope;
  DeviceArena arena(0);
  Grid grid(4);
  auto* words = arena.AllocateArray<std::atomic<uint64_t>>(4, "upsert");
  grid.LaunchWarps(8, [&](uint64_t warp) {
    // Documented last-writer-wins contract: annotated, never reported.
    StoreRacy(&words[0], static_cast<uint64_t>(warp));
  });
  EXPECT_TRUE(scope.checker().Report().clean());
  arena.FreeArray(words);
}

TEST(RaceCheckTest, OffByOneProbePastSubtableExtentIsOutOfBounds) {
  ScopedRaceCheck scope;
  DeviceArena arena(0);
  SubtableU32 table(4, /*seed=*/0x1234, &arena, "probe");
  ASSERT_TRUE(table.ok());
  // One bucket past the end: the classic missing `& (num_buckets - 1)`.
  (void)table.KeyAt(table.num_buckets(), 0);
  RaceReport report = scope.checker().Report();
  ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
  const RaceFinding& f = report.findings[0];
  EXPECT_EQ(f.kind, FindingKind::kOutOfBounds);
  // The key array carries the integrity-region suffix (subtable.h).
  EXPECT_EQ(f.tag, "probe/kv-keys");
  // First offending byte is exactly one byte past the key array.
  EXPECT_EQ(f.offset,
            static_cast<int64_t>(table.num_slots() * sizeof(uint32_t)));
  EXPECT_EQ(f.access_bytes, sizeof(uint32_t));
  EXPECT_EQ(f.launch, 0u);  // host-side access, outside any launch
}

TEST(RaceCheckTest, OverlongRangeSnapshotIsOutOfBounds) {
  ScopedRaceCheck scope;
  DeviceArena arena(0);
  auto* row = arena.AllocateArray<std::atomic<uint64_t>>(16, "row");
  // Starts in bounds, runs one word past the end.
  RangeLoadCheck(row, 17 * sizeof(uint64_t));
  RaceReport report = scope.checker().Report();
  ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
  EXPECT_EQ(report.findings[0].kind, FindingKind::kOutOfBounds);
  EXPECT_EQ(report.findings[0].tag, "row");
  EXPECT_EQ(report.findings[0].offset,
            static_cast<int64_t>(16 * sizeof(uint64_t)));
  arena.FreeArray(row);
}

TEST(RaceCheckTest, UseAfterFreeAcrossDownsizeIsReported) {
  ScopedRaceCheck scope;
  DeviceArena arena(0);
  SubtableU32 table(8, /*seed=*/0x1234, &arena, "t0-gen3");
  ASSERT_TRUE(table.ok());
  // A kernel that cached the key array across a resize — the bug class
  // the quarantine exists for.
  // dylint:allow(raw-slot-access, "this test exists to hold a raw stale pointer across a resize so RaceCheck can flag the use-after-free")
  const std::atomic<uint32_t>* stale = table.keys_data();
  table = SubtableU32(4, /*seed=*/0x5678, &arena, "t0-gen4");
  ASSERT_TRUE(table.ok());
  (void)Load(stale);
  RaceReport report = scope.checker().Report();
  ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
  const RaceFinding& f = report.findings[0];
  EXPECT_EQ(f.kind, FindingKind::kUseAfterFree);
  // The quarantine remembers the generation that owned the bytes.
  EXPECT_EQ(f.tag, "t0-gen3/kv-keys");
  EXPECT_EQ(f.offset, 0);
}

TEST(RaceCheckTest, GridOwnedCheckerViaOptions) {
  // Under DYCUCKOO_RACECHECK=1 a process-wide checker is already
  // installed; the grid must restore exactly that one, not nullptr.
  RaceCheck* outer = RaceCheck::Active();
  {
    GridOptions options;
    options.num_threads = 4;
    options.racecheck = true;
    Grid grid(options);
    ASSERT_NE(grid.race_check(), nullptr);
    EXPECT_EQ(RaceCheck::Active(), grid.race_check());
    DeviceArena arena(0);
    auto* words = arena.AllocateArray<std::atomic<uint64_t>>(8, "gridrace");
    grid.LaunchWarps(8, [&](uint64_t warp) {
      Store(&words[0], static_cast<uint64_t>(warp));
    });
    RaceReport report = grid.race_check()->Report();
    ASSERT_EQ(report.findings.size(), 1u) << report.ToString();
    EXPECT_EQ(report.findings[0].kind, FindingKind::kWriteWriteRace);
    EXPECT_EQ(report.findings[0].tag, "gridrace");
    arena.FreeArray(words);
  }
  // The grid restores the previously installed checker on destruction.
  EXPECT_EQ(RaceCheck::Active(), outer);
}

TEST(RaceCheckTest, FullTableWorkloadIsCleanUnderChecker) {
  ScopedRaceCheck scope;
  DyCuckooOptions options;
  options.initial_capacity = 4096;  // force upsizes and a later downsize
  std::unique_ptr<DyCuckooMap> table;
  ASSERT_TRUE(DyCuckooMap::Create(options, &table).ok());

  auto keys = testing::UniqueKeys(20000);
  auto values = testing::SequentialValues(keys.size());
  ASSERT_TRUE(table->BulkInsert(keys, values).ok());

  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  table->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]);
    ASSERT_EQ(out[i], values[i]);
  }
  std::vector<uint32_t> first_half(keys.begin(),
                                   keys.begin() + keys.size() / 2);
  ASSERT_TRUE(table->BulkErase(first_half).ok());
  ASSERT_TRUE(table->Validate().ok());
  table.reset();  // free everything while the checker still watches

  RaceReport report = scope.checker().Report();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_GT(report.launches, 0u);
  EXPECT_GT(report.checked_loads, 0u);
  EXPECT_GT(report.checked_stores, 0u);
  EXPECT_GT(report.sync_events, 0u);
}

TEST(RaceCheckTest, ReportDigestIsStableAcrossRuns) {
  RaceReport a = RunUnlockedTwoWarpWrite();
  RaceReport b = RunUnlockedTwoWarpWrite();
  ASSERT_FALSE(a.clean());
  EXPECT_EQ(a.Digest(), b.Digest());
  // Counters are schedule-dependent and must not feed the digest.
  RaceReport c = a;
  c.checked_stores += 12345;
  EXPECT_EQ(a.Digest(), c.Digest());
  // Findings do: perturbing one changes it.
  RaceReport d = a;
  d.findings[0].offset += 8;
  EXPECT_NE(a.Digest(), d.Digest());
}

TEST(RaceCheckTest, ReportToStringNamesTheDefect) {
  RaceReport report = RunUnlockedTwoWarpWrite();
  const std::string text = report.ToString();
  EXPECT_NE(text.find("write-write-race"), std::string::npos) << text;
  EXPECT_NE(text.find("bucket"), std::string::npos) << text;
}

}  // namespace
}  // namespace gpusim
}  // namespace dycuckoo
