// VirtualClock: deterministic tick source + the Grid launch hook.

#include "gpusim/virtual_clock.h"

#include <gtest/gtest.h>

#include <atomic>

#include "gpusim/grid.h"

namespace dycuckoo {
namespace gpusim {
namespace {

TEST(VirtualClockTest, StartsAtZeroAndAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0u);
  EXPECT_EQ(clock.work_ticks(), 0u);
  clock.Advance(5);
  EXPECT_EQ(clock.Now(), 5u);
  EXPECT_EQ(clock.work_ticks(), 0u);  // explicit waits are not work
  clock.Advance(0);
  EXPECT_EQ(clock.Now(), 5u);
}

TEST(VirtualClockTest, OnLaunchCompletedCountsWorkAndTime) {
  VirtualClock clock;
  clock.OnLaunchCompleted(3);
  clock.Advance(10);
  clock.OnLaunchCompleted(4);
  EXPECT_EQ(clock.Now(), 17u);
  EXPECT_EQ(clock.work_ticks(), 7u);
}

TEST(VirtualClockTest, NoClockInstalledByDefault) {
  EXPECT_EQ(VirtualClock::Active(), nullptr);
}

TEST(VirtualClockTest, ScopedInstallAndRestore) {
  VirtualClock outer;
  {
    ScopedVirtualClock a(&outer);
    EXPECT_EQ(VirtualClock::Active(), &outer);
    VirtualClock inner;
    {
      ScopedVirtualClock b(&inner);
      EXPECT_EQ(VirtualClock::Active(), &inner);
    }
    EXPECT_EQ(VirtualClock::Active(), &outer);
  }
  EXPECT_EQ(VirtualClock::Active(), nullptr);
}

TEST(VirtualClockTest, GridAdvancesInstalledClockPerWarp) {
  Grid grid(2);
  VirtualClock clock;
  std::atomic<uint64_t> ran{0};
  {
    ScopedVirtualClock scoped(&clock);
    grid.LaunchWarps(7, [&](uint64_t) { ran.fetch_add(1); });
    grid.LaunchWarps(3, [&](uint64_t) { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 10u);
  EXPECT_EQ(clock.Now(), 10u);       // 1 tick per warp launched
  EXPECT_EQ(clock.work_ticks(), 10u);
  // Launches after the scope must not advance the detached clock.
  grid.LaunchWarps(5, [&](uint64_t) {});
  EXPECT_EQ(clock.Now(), 10u);
}

TEST(VirtualClockTest, GridTicksAreDeterministicAcrossRuns) {
  auto run = [] {
    Grid grid(4);
    VirtualClock clock;
    ScopedVirtualClock scoped(&clock);
    for (int i = 0; i < 50; ++i) {
      grid.LaunchWarps(static_cast<uint64_t>(1 + i % 7), [&](uint64_t) {});
    }
    return clock.Now();
  };
  uint64_t a = run();
  uint64_t b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
}

}  // namespace
}  // namespace gpusim
}  // namespace dycuckoo
