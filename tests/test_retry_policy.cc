// RetryPolicy: retryability classification and seeded backoff/jitter.

#include "service/retry_policy.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace dycuckoo {
namespace service {
namespace {

TEST(RetryPolicyTest, RetryableStatuses) {
  RetryPolicy policy;
  // Transient overload conditions are retryable...
  EXPECT_TRUE(policy.ShouldRetry(Status::InsertionFailure("bound")));
  EXPECT_TRUE(policy.ShouldRetry(Status::OutOfMemory("arena")));
  // ...everything else is terminal.
  EXPECT_FALSE(policy.ShouldRetry(Status::OK()));
  EXPECT_FALSE(policy.ShouldRetry(Status::InvalidArgument("bad")));
  EXPECT_FALSE(policy.ShouldRetry(Status::Internal("bug")));
  EXPECT_FALSE(policy.ShouldRetry(Status::NotSupported("no")));
  EXPECT_FALSE(policy.ShouldRetry(Status::CapacityExceeded("arena cap")));
  EXPECT_FALSE(policy.ShouldRetry(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(policy.ShouldRetry(Status::ResourceExhausted("full")));
  EXPECT_FALSE(policy.ShouldRetry(Status::Unavailable("degraded")));
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithoutJitter) {
  RetryPolicy policy;
  policy.initial_backoff_ticks = 10;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ticks = 1000;
  policy.jitter = 0.0;
  EXPECT_EQ(policy.BackoffTicks(1, 7), 10u);
  EXPECT_EQ(policy.BackoffTicks(2, 7), 20u);
  EXPECT_EQ(policy.BackoffTicks(3, 7), 40u);
  EXPECT_EQ(policy.BackoffTicks(4, 7), 80u);
}

TEST(RetryPolicyTest, BackoffIsCapped) {
  RetryPolicy policy;
  policy.initial_backoff_ticks = 100;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_ticks = 500;
  policy.jitter = 0.0;
  EXPECT_EQ(policy.BackoffTicks(2, 0), 500u);
  EXPECT_EQ(policy.BackoffTicks(9, 0), 500u);
}

TEST(RetryPolicyTest, BackoffNeverBelowOneTick) {
  RetryPolicy policy;
  policy.initial_backoff_ticks = 1;
  policy.jitter = 1.0;  // jitter may scale the wait all the way down
  for (int attempt = 1; attempt < 5; ++attempt) {
    for (uint64_t id = 0; id < 50; ++id) {
      EXPECT_GE(policy.BackoffTicks(attempt, id), 1u);
    }
  }
}

TEST(RetryPolicyTest, JitterStaysWithinConfiguredFraction) {
  RetryPolicy policy;
  policy.initial_backoff_ticks = 1000;
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_ticks = 1000;
  policy.jitter = 0.5;
  for (uint64_t id = 0; id < 200; ++id) {
    uint64_t t = policy.BackoffTicks(1, id);
    EXPECT_GE(t, 500u);
    EXPECT_LE(t, 1000u);
  }
}

TEST(RetryPolicyTest, JitterIsDeterministicPerSeedAttemptAndRequest) {
  RetryPolicy a;
  a.seed = 42;
  a.jitter = 0.9;
  RetryPolicy b = a;
  bool saw_difference = false;
  for (int attempt = 1; attempt < 4; ++attempt) {
    for (uint64_t id = 0; id < 100; ++id) {
      EXPECT_EQ(a.BackoffTicks(attempt, id), b.BackoffTicks(attempt, id));
      if (a.BackoffTicks(attempt, id) != a.BackoffTicks(attempt, id + 1)) {
        saw_difference = true;
      }
    }
  }
  // Distinct requests must not back off in lockstep (that is the point of
  // jitter: decorrelating retry storms).
  EXPECT_TRUE(saw_difference);
}

TEST(RetryPolicyTest, DifferentSeedsProduceDifferentJitter) {
  RetryPolicy a;
  a.jitter = 0.9;
  a.seed = 1;
  RetryPolicy b = a;
  b.seed = 2;
  bool differs = false;
  for (uint64_t id = 0; id < 100 && !differs; ++id) {
    differs = a.BackoffTicks(1, id) != b.BackoffTicks(1, id);
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace service
}  // namespace dycuckoo
