// Tests for the experiment-harness helpers in bench/bench_common.h.

#include "bench/bench_common.h"

#include <gtest/gtest.h>

namespace dycuckoo {
namespace bench {
namespace {

TEST(BenchArgsTest, DefaultsApplied) {
  char prog[] = "bench";
  char* argv[] = {prog};
  BenchArgs args = BenchArgs::Parse(1, argv, 0.25);
  EXPECT_DOUBLE_EQ(args.scale, 0.25);
  EXPECT_EQ(args.threads, 0u);
  EXPECT_EQ(args.seed, 20260706u);
}

TEST(BenchArgsTest, FlagsParsed) {
  char prog[] = "bench";
  char scale[] = "--scale=0.5";
  char threads[] = "--threads=3";
  char seed[] = "--seed=42";
  char* argv[] = {prog, scale, threads, seed};
  BenchArgs args = BenchArgs::Parse(4, argv, 0.1);
  EXPECT_DOUBLE_EQ(args.scale, 0.5);
  EXPECT_EQ(args.threads, 3u);
  EXPECT_EQ(args.seed, 42u);
}

TEST(FmtTest, Precision) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(Fmt(10.0), "10.00");
}

TEST(TransactionsPerOpTest, CountsAllFourKinds) {
  gpusim::SimCounters::Get().Reset();
  auto before = gpusim::SimCounters::Get().Capture();
  gpusim::CountBucketRead();
  gpusim::CountBucketRead();
  gpusim::CountBucketWrite();
  std::atomic<uint32_t> word{0};
  gpusim::AtomicCas(&word, 0, 1);
  gpusim::AtomicExch(&word, 0);
  auto after = gpusim::SimCounters::Get().Capture();
  EXPECT_DOUBLE_EQ(TransactionsPerOp(before, after, 5), 1.0);
  EXPECT_DOUBLE_EQ(TransactionsPerOp(before, after, 1), 5.0);
  EXPECT_DOUBLE_EQ(TransactionsPerOp(before, after, 0), 0.0);
}

TEST(AllDatasetsTest, FiveDatasetsInPaperOrder) {
  auto data = AllDatasets(0.0005, 1);
  ASSERT_EQ(data.size(), 5u);
  EXPECT_EQ(data[0].name, "TW");
  EXPECT_EQ(data[1].name, "RE");
  EXPECT_EQ(data[2].name, "LINE");
  EXPECT_EQ(data[3].name, "COM");
  EXPECT_EQ(data[4].name, "RAND");
  for (const auto& d : data) EXPECT_GT(d.size(), 0u);
}

TEST(ContenderFactoriesTest, StaticContendersHonorTargetLoad) {
  StaticConfig cfg;
  cfg.expected_items = 10000;
  cfg.target_load = 0.80;
  auto cudpp = MakeCudppStatic(cfg);
  auto megakv = MakeMegaKvStatic(cfg);
  auto slab = MakeSlabStatic(cfg);
  auto dy = MakeDyCuckooStatic(cfg);
  for (HashTableInterface* t :
       {cudpp.get(), megakv.get(), slab.get(), dy.get()}) {
    EXPECT_EQ(t->size(), 0u) << t->name();
    EXPECT_GT(t->memory_bytes(), 0u) << t->name();
  }
}

TEST(DynamicRunTest, TimelineTelemetryShapes) {
  workload::Dataset d;
  ASSERT_TRUE(
      workload::MakeDataset(workload::DatasetId::kCompany, 0.005, 3, &d)
          .ok());
  workload::DynamicWorkloadOptions wo;
  wo.batch_size = 5000;
  std::vector<workload::DynamicBatch> batches;
  ASSERT_TRUE(workload::BuildDynamicWorkload(d, wo, &batches).ok());

  DynamicConfig cfg;
  cfg.initial_capacity = 5000;
  auto t = MakeDyCuckooDynamic(cfg);
  auto result = RunDynamicTimeline(t.get(), batches);
  EXPECT_EQ(result.ops, workload::TotalOps(batches));
  EXPECT_EQ(result.filled_factor_after_batch.size(), batches.size());
  EXPECT_EQ(result.memory_after_batch.size(), batches.size());
  EXPECT_GT(result.mops(), 0.0);
  for (double theta : result.filled_factor_after_batch) {
    EXPECT_GE(theta, 0.0);
    EXPECT_LE(theta, 1.0);
  }
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo
