#include "gpusim/sim_counters.h"

#include <gtest/gtest.h>

namespace dycuckoo {
namespace gpusim {
namespace {

TEST(SimCountersTest, ResetZeroesEverything) {
  auto& c = SimCounters::Get();
  c.atomic_cas.fetch_add(5);
  c.bucket_reads.fetch_add(7);
  c.Reset();
  auto snap = c.Capture();
  EXPECT_EQ(snap.atomic_cas, 0u);
  EXPECT_EQ(snap.bucket_reads, 0u);
  EXPECT_EQ(snap.evictions, 0u);
}

TEST(SimCountersTest, HelpersIncrementTheRightCounter) {
  auto& c = SimCounters::Get();
  c.Reset();
  CountBucketRead();
  CountBucketRead();
  CountBucketWrite();
  CountEviction();
  CountLockConflict();
  CountChainNode();
  auto snap = c.Capture();
  EXPECT_EQ(snap.bucket_reads, 2u);
  EXPECT_EQ(snap.bucket_writes, 1u);
  EXPECT_EQ(snap.evictions, 1u);
  EXPECT_EQ(snap.lock_conflicts, 1u);
  EXPECT_EQ(snap.chain_nodes_visited, 1u);
}

TEST(SimCountersTest, SnapshotDiff) {
  auto& c = SimCounters::Get();
  c.Reset();
  CountBucketRead();
  auto before = c.Capture();
  CountBucketRead();
  CountBucketRead();
  CountEviction();
  auto delta = c.Capture() - before;
  EXPECT_EQ(delta.bucket_reads, 2u);
  EXPECT_EQ(delta.evictions, 1u);
  EXPECT_EQ(delta.bucket_writes, 0u);
}

TEST(SimCountersTest, ToStringMentionsFields) {
  auto& c = SimCounters::Get();
  c.Reset();
  CountEviction();
  std::string s = c.Capture().ToString();
  EXPECT_NE(s.find("evictions=1"), std::string::npos);
  EXPECT_NE(s.find("cas="), std::string::npos);
}

TEST(SimCountersTest, SingletonIdentity) {
  EXPECT_EQ(&SimCounters::Get(), &SimCounters::Get());
}

}  // namespace
}  // namespace gpusim
}  // namespace dycuckoo
