// Tests for the stash extension (the paper's stated future work): an
// insertion whose eviction chain is exhausted parks in a small stash
// instead of failing / forcing another upsizing round.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "dycuckoo/dycuckoo.h"
#include "test_util.h"

namespace dycuckoo {
namespace {

using testing::SequentialValues;
using testing::UniqueKeys;

std::unique_ptr<DyCuckooMap> MakeTable(DyCuckooOptions o) {
  std::unique_ptr<DyCuckooMap> t;
  Status st = DyCuckooMap::Create(o, &t);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return t;
}

DyCuckooOptions TinyStaticWithStash(uint64_t stash) {
  DyCuckooOptions o;
  o.auto_resize = false;
  o.initial_capacity = 512;
  o.max_eviction_chain = 8;
  o.stash_capacity = stash;
  return o;
}

TEST(StashTest, AbsorbsOverflowInStaticMode) {
  auto t = MakeTable(TinyStaticWithStash(256));
  // ~120% of capacity: without a stash this reports insertion failures
  // (see DynamicTableTest.StaticModeReportsFailuresInsteadOfGrowing).
  auto keys = UniqueKeys(620, 3);
  uint64_t failed = 7;
  Status st = t->BulkInsert(keys, SequentialValues(keys.size()), &failed);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(failed, 0u);
  EXPECT_EQ(t->size(), keys.size());
  EXPECT_GT(t->stash_size(), 0u);
  EXPECT_GT(t->stats().stash_inserts.load(), 0u);
  EXPECT_TRUE(t->Validate().ok());

  // Every key findable with the right value, wherever it landed.
  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]) << i;
    ASSERT_EQ(out[i], i);
  }
}

TEST(StashTest, FullStashStillReportsFailure) {
  auto t = MakeTable(TinyStaticWithStash(4));
  auto keys = UniqueKeys(900, 5);  // far beyond capacity + stash
  uint64_t failed = 0;
  Status st = t->BulkInsert(keys, SequentialValues(keys.size()), &failed);
  EXPECT_TRUE(st.IsInsertionFailure());
  EXPECT_GT(failed, 0u);
  EXPECT_LE(t->stash_size(), 4u);
  EXPECT_TRUE(t->Validate().ok());
}

TEST(StashTest, EraseRemovesStashedKeys) {
  auto t = MakeTable(TinyStaticWithStash(256));
  auto keys = UniqueKeys(620, 7);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  ASSERT_GT(t->stash_size(), 0u);

  uint64_t erased = 0;
  ASSERT_TRUE(t->BulkErase(keys, &erased).ok());
  EXPECT_EQ(erased, keys.size());
  EXPECT_EQ(t->size(), 0u);
  EXPECT_EQ(t->stash_size(), 0u);
  EXPECT_TRUE(t->Validate().ok());
}

TEST(StashTest, UpsertUpdatesStashedCopyWithoutDuplicating) {
  auto t = MakeTable(TinyStaticWithStash(256));
  auto keys = UniqueKeys(620, 9);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  ASSERT_GT(t->stash_size(), 0u);

  // Re-upsert everything with shifted values: stashed copies must be
  // updated in place, not inserted twice.
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size(), 1000)).ok());
  EXPECT_EQ(t->size(), keys.size());
  EXPECT_TRUE(t->Validate().ok());
  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]);
    ASSERT_EQ(out[i], 1000 + i);
  }
}

TEST(StashTest, UpsizeDrainsStash) {
  auto t = MakeTable(TinyStaticWithStash(256));
  auto keys = UniqueKeys(620, 11);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  uint64_t stashed = t->stash_size();
  ASSERT_GT(stashed, 0u);

  ASSERT_TRUE(t->Upsize().ok());
  EXPECT_LT(t->stash_size(), stashed) << "upsize headroom must drain stash";
  EXPECT_GT(t->stats().stash_drains.load(), 0u);
  EXPECT_EQ(t->size(), keys.size());
  EXPECT_TRUE(t->Validate().ok());

  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, nullptr, found.data());
  for (auto f : found) ASSERT_TRUE(f);
}

TEST(StashTest, DynamicModeNeedsFewerUpsizeRounds) {
  // The future-work motivation: without a stash, a failure after one upsize
  // immediately forces another round.  Compare upsizes for the same stream.
  auto run = [](uint64_t stash) {
    DyCuckooOptions o;
    o.initial_capacity = 512;
    o.max_eviction_chain = 8;
    o.stash_capacity = stash;
    std::unique_ptr<DyCuckooMap> t;
    (void)DyCuckooMap::Create(o, &t);
    auto keys = UniqueKeys(60000, 13);
    for (size_t off = 0; off < keys.size(); off += 3000) {
      std::vector<uint32_t> chunk(keys.begin() + off,
                                  keys.begin() + off + 3000);
      (void)t->BulkInsert(chunk, SequentialValues(chunk.size()));
    }
    EXPECT_EQ(t->size(), keys.size());
    EXPECT_TRUE(t->Validate().ok());
    return t->stats().upsizes.load();
  };
  EXPECT_LE(run(512), run(0));
}

TEST(StashTest, DisabledStashKeepsMemoryFootprint) {
  DyCuckooOptions with, without;
  with.stash_capacity = 1024;
  auto a = MakeTable(with);
  auto b = MakeTable(without);
  EXPECT_EQ(a->memory_bytes() - 1024 * 8, b->memory_bytes());
  EXPECT_EQ(b->stash_size(), 0u);
}

}  // namespace
}  // namespace dycuckoo
