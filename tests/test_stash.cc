// Tests for the stash extension (the paper's stated future work): an
// insertion whose eviction chain is exhausted parks in a small stash
// instead of failing / forcing another upsizing round.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "dycuckoo/dycuckoo.h"
#include "test_util.h"

namespace dycuckoo {
namespace {

using testing::SequentialValues;
using testing::UniqueKeys;

std::unique_ptr<DyCuckooMap> MakeTable(DyCuckooOptions o) {
  std::unique_ptr<DyCuckooMap> t;
  Status st = DyCuckooMap::Create(o, &t);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return t;
}

DyCuckooOptions TinyStaticWithStash(uint64_t stash) {
  DyCuckooOptions o;
  o.auto_resize = false;
  o.initial_capacity = 512;
  o.max_eviction_chain = 8;
  o.stash_capacity = stash;
  return o;
}

TEST(StashTest, AbsorbsOverflowInStaticMode) {
  auto t = MakeTable(TinyStaticWithStash(256));
  // ~120% of capacity: without a stash this reports insertion failures
  // (see DynamicTableTest.StaticModeReportsFailuresInsteadOfGrowing).
  auto keys = UniqueKeys(620, 3);
  uint64_t failed = 7;
  Status st = t->BulkInsert(keys, SequentialValues(keys.size()), &failed);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(failed, 0u);
  EXPECT_EQ(t->size(), keys.size());
  EXPECT_GT(t->stash_size(), 0u);
  EXPECT_GT(t->stats().stash_inserts.load(), 0u);
  EXPECT_TRUE(t->Validate().ok());

  // Every key findable with the right value, wherever it landed.
  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]) << i;
    ASSERT_EQ(out[i], i);
  }
}

TEST(StashTest, FullStashStillReportsFailure) {
  auto t = MakeTable(TinyStaticWithStash(4));
  auto keys = UniqueKeys(900, 5);  // far beyond capacity + stash
  uint64_t failed = 0;
  Status st = t->BulkInsert(keys, SequentialValues(keys.size()), &failed);
  EXPECT_TRUE(st.IsInsertionFailure());
  EXPECT_GT(failed, 0u);
  EXPECT_LE(t->stash_size(), 4u);
  EXPECT_TRUE(t->Validate().ok());
}

TEST(StashTest, EraseRemovesStashedKeys) {
  auto t = MakeTable(TinyStaticWithStash(256));
  auto keys = UniqueKeys(620, 7);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  ASSERT_GT(t->stash_size(), 0u);

  uint64_t erased = 0;
  ASSERT_TRUE(t->BulkErase(keys, &erased).ok());
  EXPECT_EQ(erased, keys.size());
  EXPECT_EQ(t->size(), 0u);
  EXPECT_EQ(t->stash_size(), 0u);
  EXPECT_TRUE(t->Validate().ok());
}

TEST(StashTest, UpsertUpdatesStashedCopyWithoutDuplicating) {
  auto t = MakeTable(TinyStaticWithStash(256));
  auto keys = UniqueKeys(620, 9);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  ASSERT_GT(t->stash_size(), 0u);

  // Re-upsert everything with shifted values: stashed copies must be
  // updated in place, not inserted twice.
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size(), 1000)).ok());
  EXPECT_EQ(t->size(), keys.size());
  EXPECT_TRUE(t->Validate().ok());
  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]);
    ASSERT_EQ(out[i], 1000 + i);
  }
}

TEST(StashTest, UpsizeDrainsStash) {
  auto t = MakeTable(TinyStaticWithStash(256));
  auto keys = UniqueKeys(620, 11);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  uint64_t stashed = t->stash_size();
  ASSERT_GT(stashed, 0u);

  ASSERT_TRUE(t->Upsize().ok());
  EXPECT_LT(t->stash_size(), stashed) << "upsize headroom must drain stash";
  EXPECT_GT(t->stats().stash_drains.load(), 0u);
  EXPECT_EQ(t->size(), keys.size());
  EXPECT_TRUE(t->Validate().ok());

  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, nullptr, found.data());
  for (auto f : found) ASSERT_TRUE(f);
}

TEST(StashTest, DynamicModeNeedsFewerUpsizeRounds) {
  // The future-work motivation: without a stash, a failure after one upsize
  // immediately forces another round.  Compare upsizes for the same stream.
  auto run = [](uint64_t stash) {
    DyCuckooOptions o;
    o.initial_capacity = 512;
    o.max_eviction_chain = 8;
    o.stash_capacity = stash;
    std::unique_ptr<DyCuckooMap> t;
    (void)DyCuckooMap::Create(o, &t);
    auto keys = UniqueKeys(60000, 13);
    for (size_t off = 0; off < keys.size(); off += 3000) {
      std::vector<uint32_t> chunk(keys.begin() + off,
                                  keys.begin() + off + 3000);
      (void)t->BulkInsert(chunk, SequentialValues(chunk.size()));
    }
    EXPECT_EQ(t->size(), keys.size());
    EXPECT_TRUE(t->Validate().ok());
    return t->stats().upsizes.load();
  };
  EXPECT_LE(run(512), run(0));
}

TEST(StashTest, ConcurrentFindSeesStashWhileVictimsArePublished) {
  // Regression for the stash-visibility race (the cousin of the eviction
  // displacement window): FIND's stash scan is gated on the occupancy
  // counter, and StashInsert publishes value-then-key under that gate.
  // With relaxed ordering a reader could load a stale zero occupancy — or
  // see the key before its value — and miss or misread a *resident* key
  // while a concurrent eviction chain was parking its displaced victim in
  // the stash.  The fix acquire-gates the scan and release-publishes the
  // key; this test drives exactly that traffic and asserts the hard
  // invariant (it also runs under TSan/RaceCheck in CI, which flag the
  // ordering itself).
  //
  // A capacity-1 handoff ring pre-filled by a parked victim makes every
  // eviction chain fall back to stashing mid-launch, so stash publication
  // races the FINDs of the same batch.
  DyCuckooOptions o;
  o.auto_resize = false;
  o.initial_capacity = 2048;
  o.max_eviction_chain = 8;
  o.stash_capacity = 256;
  o.handoff_capacity = 1;
  auto t = MakeTable(o);

  auto keys = UniqueKeys(2200, 17);
  std::vector<uint32_t> resident(keys.begin(), keys.begin() + 1500);
  ASSERT_TRUE(t->BulkInsert(resident, SequentialValues(resident.size())).ok());
  ASSERT_TRUE(t->ParkVictimForTest(resident[7]));

  using Op = DyCuckooMap::MixedOp;
  SplitMix64 rng(0x57A5);
  size_t next_fresh = 1500;
  const uint64_t stashed_before = t->stats().Capture().stash_inserts;
  for (int round = 0; round < 6 && next_fresh < keys.size(); ++round) {
    std::vector<Op> ops;
    for (int i = 0; i < 600; ++i) {
      Op op;
      if (i % 6 == 0 && next_fresh < keys.size()) {
        // Fresh inserts at ~0.73 filled: chains displace, the full ring
        // rejects every park, and victims spill into the stash.
        op.type = Op::Type::kInsert;
        op.key = keys[next_fresh++];
        op.value = 90000u + static_cast<uint32_t>(op.key);
      } else {
        op.type = Op::Type::kFind;
        op.key = resident[rng.NextBounded(resident.size())];
      }
      ops.push_back(op);
    }
    Status st = t->BulkExecute(ops);
    ASSERT_TRUE(st.ok() || st.IsInsertionFailure()) << st.ToString();
    for (const Op& op : ops) {
      if (op.type != Op::Type::kFind) continue;
      ASSERT_NE(op.hit, 0)
          << "resident key " << op.key
          << " invisible while the stash was being published (round "
          << round << ")";
      ASSERT_EQ(op.value, static_cast<uint32_t>(
                              std::find(resident.begin(), resident.end(),
                                        op.key) -
                              resident.begin()));
    }
  }
  // The race must actually have been exercised: chains hit the full ring
  // and published into the stash mid-launch, racing the batch's FINDs.
  EXPECT_GT(t->stats().Capture().handoff_full_fallbacks, 0u);
  EXPECT_GT(t->stats().Capture().stash_inserts, stashed_before)
      << "no stash traffic: the test exercised nothing";
  EXPECT_TRUE(t->Validate().ok());
}

TEST(StashTest, DisabledStashKeepsMemoryFootprint) {
  DyCuckooOptions with, without;
  with.stash_capacity = 1024;
  auto a = MakeTable(with);
  auto b = MakeTable(without);
  // Per stash slot: key + value + integrity-tag byte.
  EXPECT_EQ(a->memory_bytes() - 1024 * (8 + 1), b->memory_bytes());
  EXPECT_EQ(b->stash_size(), 0u);
}

}  // namespace
}  // namespace dycuckoo
