// Parameterized sweep tests: capacity/batch grids, geometry extremes, and
// contention patterns that the targeted unit tests do not reach.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "dycuckoo/dycuckoo.h"
#include "test_util.h"

namespace dycuckoo {
namespace {

using testing::SequentialValues;
using testing::UniqueKeys;

std::unique_ptr<DyCuckooMap> MakeTable(DyCuckooOptions o = {}) {
  std::unique_ptr<DyCuckooMap> t;
  Status st = DyCuckooMap::Create(o, &t);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return t;
}

// ---------------------------------------------------------------------------
// capacity x batch grid
// ---------------------------------------------------------------------------

using GridParam = std::tuple<uint64_t /*capacity*/, uint64_t /*batch*/>;

class CapacityBatchSweep : public ::testing::TestWithParam<GridParam> {};

TEST_P(CapacityBatchSweep, StreamedInsertFindEraseRoundTrip) {
  auto [capacity, batch] = GetParam();
  DyCuckooOptions o;
  o.initial_capacity = capacity;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(30000, capacity + batch);
  auto values = SequentialValues(keys.size());
  for (size_t off = 0; off < keys.size(); off += batch) {
    size_t len = std::min<size_t>(batch, keys.size() - off);
    ASSERT_TRUE(t->BulkInsert(
                     std::span<const uint32_t>(keys.data() + off, len),
                     std::span<const uint32_t>(values.data() + off, len))
                    .ok());
  }
  ASSERT_EQ(t->size(), keys.size());
  ASSERT_TRUE(t->Validate().ok());

  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]);
    ASSERT_EQ(out[i], values[i]);
  }
  for (size_t off = 0; off < keys.size(); off += batch) {
    size_t len = std::min<size_t>(batch, keys.size() - off);
    ASSERT_TRUE(
        t->BulkErase(std::span<const uint32_t>(keys.data() + off, len)).ok());
  }
  EXPECT_EQ(t->size(), 0u);
  EXPECT_TRUE(t->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CapacityBatchSweep,
    ::testing::Combine(::testing::Values(128ull, 2048ull, 65536ull),
                       ::testing::Values(31ull, 1000ull, 30000ull)));

// ---------------------------------------------------------------------------
// geometry extremes
// ---------------------------------------------------------------------------

TEST(GeometryExtremes, MinimumTableOneBucketPerSubtable) {
  DyCuckooOptions o;
  o.initial_capacity = 1;
  o.auto_resize = false;
  auto t = MakeTable(o);
  EXPECT_EQ(t->capacity_slots(), 4u * 32);
  // Fill to the brim of what (2-of-4 choice) placement can reach.
  auto keys = UniqueKeys(64, 1);
  uint64_t failed = 0;
  Status st = t->BulkInsert(keys, SequentialValues(keys.size()), &failed);
  EXPECT_TRUE(st.ok() || st.IsInsertionFailure());
  EXPECT_EQ(t->size() + failed, keys.size());
  EXPECT_TRUE(t->Validate().ok());
}

TEST(GeometryExtremes, SixteenSubtables) {
  DyCuckooOptions o;
  o.num_subtables = 16;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(40000, 16);
  ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
  EXPECT_EQ(t->size(), keys.size());
  EXPECT_TRUE(t->Validate().ok());
  uint64_t erased = 0;
  ASSERT_TRUE(t->BulkErase(keys, &erased).ok());
  EXPECT_EQ(erased, keys.size());
}

TEST(GeometryExtremes, GrowShrinkGrowCycles) {
  DyCuckooOptions o;
  o.initial_capacity = 256;
  auto t = MakeTable(o);
  for (int cycle = 0; cycle < 4; ++cycle) {
    auto keys = UniqueKeys(40000, cycle * 7 + 1);
    ASSERT_TRUE(t->BulkInsert(keys, SequentialValues(keys.size())).ok());
    ASSERT_EQ(t->size(), keys.size());
    ASSERT_TRUE(t->BulkErase(keys).ok());
    ASSERT_EQ(t->size(), 0u);
    ASSERT_TRUE(t->Validate().ok()) << "cycle " << cycle;
  }
}

// ---------------------------------------------------------------------------
// contention and duplicate-key semantics
// ---------------------------------------------------------------------------

TEST(ContentionSemantics, DuplicateKeyBatchStoresExactlyOneOfTheValues) {
  // A batch writing the same key from many lanes is racy by design
  // (last-writer); the invariants are: exactly one copy stored, and the
  // stored value is one of the written values.
  auto t = MakeTable();
  std::vector<uint32_t> keys(2000, 777u);
  std::vector<uint32_t> values(keys.size());
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 10000 + static_cast<uint32_t>(i);
  }
  ASSERT_TRUE(t->BulkInsert(keys, values).ok());
  EXPECT_EQ(t->size(), 1u);
  EXPECT_TRUE(t->Validate().ok());
  uint32_t v = 0;
  ASSERT_TRUE(t->Find(777u, &v));
  EXPECT_GE(v, 10000u);
  EXPECT_LT(v, 10000u + values.size());
}

TEST(ContentionSemantics, ManyKeysOneBucketViaTinyTable) {
  // Tiny static table: every batch hammers a handful of buckets through
  // the locked voter path; counts must stay exact.
  DyCuckooOptions o;
  o.auto_resize = false;
  o.initial_capacity = 4 * 32;  // 4 buckets total
  o.max_eviction_chain = 16;
  auto t = MakeTable(o);
  auto keys = UniqueKeys(96, 3);
  uint64_t failed = 0;
  Status st = t->BulkInsert(keys, SequentialValues(keys.size()), &failed);
  EXPECT_TRUE(st.ok() || st.IsInsertionFailure());
  EXPECT_EQ(t->size() + failed, keys.size());
  EXPECT_TRUE(t->Validate().ok());
}

TEST(ContentionSemantics, RepeatedEraseBatchOfSameKey) {
  auto t = MakeTable();
  ASSERT_TRUE(t->Insert(5, 1).ok());
  std::vector<uint32_t> dup_erases(500, 5u);
  uint64_t erased = 0;
  ASSERT_TRUE(t->BulkErase(dup_erases, &erased).ok());
  EXPECT_EQ(erased, 1u) << "only one eraser may win the slot CAS";
  EXPECT_EQ(t->size(), 0u);
}

// ---------------------------------------------------------------------------
// 64-bit table sweep
// ---------------------------------------------------------------------------

class Wide64Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Wide64Sweep, RoundTripAcrossSubtableCounts) {
  DyCuckooOptions o;
  o.num_subtables = GetParam();
  std::unique_ptr<DyCuckooMap64> t;
  ASSERT_TRUE(DyCuckooMap64::Create(o, &t).ok());
  SplitMix64 rng(GetParam());
  std::vector<uint64_t> keys(15000), values(15000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng.Next() >> 1;
    values[i] = rng.Next();
  }
  ASSERT_TRUE(t->BulkInsert(keys, values).ok());
  ASSERT_TRUE(t->Validate().ok());
  std::vector<uint64_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  t->BulkFind(keys, out.data(), found.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(found[i]);
    ASSERT_EQ(out[i], values[i]);
  }
  uint64_t erased = 0;
  ASSERT_TRUE(t->BulkErase(keys, &erased).ok());
  EXPECT_EQ(erased, keys.size());
  EXPECT_TRUE(t->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Dims, Wide64Sweep, ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace dycuckoo
