// Shared helpers for the test suite: deterministic key/value generation and
// a reference model for differential testing.

#ifndef DYCUCKOO_TESTS_TEST_UTIL_H_
#define DYCUCKOO_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace dycuckoo {
namespace testing {

/// Seed override for chaos harnesses.  CI failure messages print the seed
/// that failed; rerun it locally with DYCUCKOO_CHAOS_SEED=<seed> (decimal
/// or 0x-hex).  Returns `fallback` when the variable is unset or empty.
inline uint64_t ChaosSeedFromEnv(uint64_t fallback) {
  const char* env = std::getenv("DYCUCKOO_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 0);
}

/// The uniform repro line every chaos-style test attaches to its scenario
/// (via SCOPED_TRACE) so a CI failure prints a copy-pastable rerun
/// command.  `test_binary` is the executable path relative to the build
/// tree, e.g. "tests/test_resharder".
inline std::string ChaosReproLine(const char* test_binary, uint64_t seed) {
  std::string line = "repro: DYCUCKOO_CHAOS_SEED=" + std::to_string(seed);
  const char* shards = std::getenv("DYCUCKOO_SHARDS");
  if (shards != nullptr && *shards != '\0') {
    line += std::string(" DYCUCKOO_SHARDS=") + shards;
  }
  line += std::string(" ./") + test_binary;
  return line;
}

/// `count` distinct keys, none equal to the reserved sentinels.
inline std::vector<uint32_t> UniqueKeys(uint64_t count, uint64_t seed = 42) {
  std::unordered_set<uint32_t> seen;
  std::vector<uint32_t> keys;
  keys.reserve(count);
  SplitMix64 rng(seed);
  while (keys.size() < count) {
    uint32_t k = static_cast<uint32_t>(rng.Next());
    if (k >= 0xfffffffeu) continue;
    if (seen.insert(k).second) keys.push_back(k);
  }
  return keys;
}

inline std::vector<uint32_t> SequentialValues(uint64_t count,
                                              uint32_t start = 0) {
  std::vector<uint32_t> values(count);
  for (uint64_t i = 0; i < count; ++i) {
    values[i] = start + static_cast<uint32_t>(i);
  }
  return values;
}

/// Host-side reference map for differential testing.
class ReferenceModel {
 public:
  void Insert(uint32_t k, uint32_t v) { map_[k] = v; }
  bool Find(uint32_t k, uint32_t* v) const {
    auto it = map_.find(k);
    if (it == map_.end()) return false;
    if (v != nullptr) *v = it->second;
    return true;
  }
  bool Erase(uint32_t k) { return map_.erase(k) > 0; }
  uint64_t size() const { return map_.size(); }
  const std::unordered_map<uint32_t, uint32_t>& map() const { return map_; }

 private:
  std::unordered_map<uint32_t, uint32_t> map_;
};

}  // namespace testing
}  // namespace dycuckoo

#endif  // DYCUCKOO_TESTS_TEST_UTIL_H_
