# Empty dependencies file for dycuckoo_gpusim.
# This may be replaced when dependencies are built.
