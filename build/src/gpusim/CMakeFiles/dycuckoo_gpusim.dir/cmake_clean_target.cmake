file(REMOVE_RECURSE
  "libdycuckoo_gpusim.a"
)
