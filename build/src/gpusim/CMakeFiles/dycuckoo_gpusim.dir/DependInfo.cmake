
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/device_arena.cc" "src/gpusim/CMakeFiles/dycuckoo_gpusim.dir/device_arena.cc.o" "gcc" "src/gpusim/CMakeFiles/dycuckoo_gpusim.dir/device_arena.cc.o.d"
  "/root/repo/src/gpusim/grid.cc" "src/gpusim/CMakeFiles/dycuckoo_gpusim.dir/grid.cc.o" "gcc" "src/gpusim/CMakeFiles/dycuckoo_gpusim.dir/grid.cc.o.d"
  "/root/repo/src/gpusim/sim_counters.cc" "src/gpusim/CMakeFiles/dycuckoo_gpusim.dir/sim_counters.cc.o" "gcc" "src/gpusim/CMakeFiles/dycuckoo_gpusim.dir/sim_counters.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dycuckoo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
