file(REMOVE_RECURSE
  "CMakeFiles/dycuckoo_gpusim.dir/device_arena.cc.o"
  "CMakeFiles/dycuckoo_gpusim.dir/device_arena.cc.o.d"
  "CMakeFiles/dycuckoo_gpusim.dir/grid.cc.o"
  "CMakeFiles/dycuckoo_gpusim.dir/grid.cc.o.d"
  "CMakeFiles/dycuckoo_gpusim.dir/sim_counters.cc.o"
  "CMakeFiles/dycuckoo_gpusim.dir/sim_counters.cc.o.d"
  "libdycuckoo_gpusim.a"
  "libdycuckoo_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dycuckoo_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
