# Empty dependencies file for dycuckoo_workload.
# This may be replaced when dependencies are built.
