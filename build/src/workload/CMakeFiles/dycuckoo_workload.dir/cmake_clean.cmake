file(REMOVE_RECURSE
  "CMakeFiles/dycuckoo_workload.dir/dataset.cc.o"
  "CMakeFiles/dycuckoo_workload.dir/dataset.cc.o.d"
  "CMakeFiles/dycuckoo_workload.dir/dynamic_workload.cc.o"
  "CMakeFiles/dycuckoo_workload.dir/dynamic_workload.cc.o.d"
  "CMakeFiles/dycuckoo_workload.dir/trace_io.cc.o"
  "CMakeFiles/dycuckoo_workload.dir/trace_io.cc.o.d"
  "libdycuckoo_workload.a"
  "libdycuckoo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dycuckoo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
