file(REMOVE_RECURSE
  "libdycuckoo_workload.a"
)
