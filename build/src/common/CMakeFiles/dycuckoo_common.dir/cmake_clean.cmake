file(REMOVE_RECURSE
  "CMakeFiles/dycuckoo_common.dir/hash.cc.o"
  "CMakeFiles/dycuckoo_common.dir/hash.cc.o.d"
  "CMakeFiles/dycuckoo_common.dir/logging.cc.o"
  "CMakeFiles/dycuckoo_common.dir/logging.cc.o.d"
  "CMakeFiles/dycuckoo_common.dir/rng.cc.o"
  "CMakeFiles/dycuckoo_common.dir/rng.cc.o.d"
  "CMakeFiles/dycuckoo_common.dir/status.cc.o"
  "CMakeFiles/dycuckoo_common.dir/status.cc.o.d"
  "libdycuckoo_common.a"
  "libdycuckoo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dycuckoo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
