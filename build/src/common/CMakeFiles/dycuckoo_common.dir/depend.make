# Empty dependencies file for dycuckoo_common.
# This may be replaced when dependencies are built.
