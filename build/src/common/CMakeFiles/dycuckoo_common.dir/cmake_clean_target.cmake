file(REMOVE_RECURSE
  "libdycuckoo_common.a"
)
