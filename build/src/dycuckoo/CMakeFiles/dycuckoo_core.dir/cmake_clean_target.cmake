file(REMOVE_RECURSE
  "libdycuckoo_core.a"
)
