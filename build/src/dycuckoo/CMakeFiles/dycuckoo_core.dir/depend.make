# Empty dependencies file for dycuckoo_core.
# This may be replaced when dependencies are built.
