file(REMOVE_RECURSE
  "CMakeFiles/dycuckoo_core.dir/instantiations.cc.o"
  "CMakeFiles/dycuckoo_core.dir/instantiations.cc.o.d"
  "CMakeFiles/dycuckoo_core.dir/options.cc.o"
  "CMakeFiles/dycuckoo_core.dir/options.cc.o.d"
  "CMakeFiles/dycuckoo_core.dir/stats.cc.o"
  "CMakeFiles/dycuckoo_core.dir/stats.cc.o.d"
  "libdycuckoo_core.a"
  "libdycuckoo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dycuckoo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
