
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dycuckoo/instantiations.cc" "src/dycuckoo/CMakeFiles/dycuckoo_core.dir/instantiations.cc.o" "gcc" "src/dycuckoo/CMakeFiles/dycuckoo_core.dir/instantiations.cc.o.d"
  "/root/repo/src/dycuckoo/options.cc" "src/dycuckoo/CMakeFiles/dycuckoo_core.dir/options.cc.o" "gcc" "src/dycuckoo/CMakeFiles/dycuckoo_core.dir/options.cc.o.d"
  "/root/repo/src/dycuckoo/stats.cc" "src/dycuckoo/CMakeFiles/dycuckoo_core.dir/stats.cc.o" "gcc" "src/dycuckoo/CMakeFiles/dycuckoo_core.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dycuckoo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/dycuckoo_gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
