# Empty dependencies file for dycuckoo_baselines.
# This may be replaced when dependencies are built.
