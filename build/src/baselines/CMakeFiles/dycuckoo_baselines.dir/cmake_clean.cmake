file(REMOVE_RECURSE
  "CMakeFiles/dycuckoo_baselines.dir/cudpp_cuckoo.cc.o"
  "CMakeFiles/dycuckoo_baselines.dir/cudpp_cuckoo.cc.o.d"
  "CMakeFiles/dycuckoo_baselines.dir/megakv.cc.o"
  "CMakeFiles/dycuckoo_baselines.dir/megakv.cc.o.d"
  "CMakeFiles/dycuckoo_baselines.dir/slab_hash.cc.o"
  "CMakeFiles/dycuckoo_baselines.dir/slab_hash.cc.o.d"
  "libdycuckoo_baselines.a"
  "libdycuckoo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dycuckoo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
