file(REMOVE_RECURSE
  "libdycuckoo_baselines.a"
)
