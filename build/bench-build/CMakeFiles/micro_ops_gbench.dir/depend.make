# Empty dependencies file for micro_ops_gbench.
# This may be replaced when dependencies are built.
