file(REMOVE_RECURSE
  "../bench/micro_ops_gbench"
  "../bench/micro_ops_gbench.pdb"
  "CMakeFiles/micro_ops_gbench.dir/micro_ops_gbench.cc.o"
  "CMakeFiles/micro_ops_gbench.dir/micro_ops_gbench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ops_gbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
