# Empty compiler generated dependencies file for fig10_vary_r.
# This may be replaced when dependencies are built.
