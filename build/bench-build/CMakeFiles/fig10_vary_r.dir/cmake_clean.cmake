file(REMOVE_RECURSE
  "../bench/fig10_vary_r"
  "../bench/fig10_vary_r.pdb"
  "CMakeFiles/fig10_vary_r.dir/fig10_vary_r.cc.o"
  "CMakeFiles/fig10_vary_r.dir/fig10_vary_r.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vary_r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
