# Empty compiler generated dependencies file for fig8_static.
# This may be replaced when dependencies are built.
