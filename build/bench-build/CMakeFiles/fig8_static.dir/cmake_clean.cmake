file(REMOVE_RECURSE
  "../bench/fig8_static"
  "../bench/fig8_static.pdb"
  "CMakeFiles/fig8_static.dir/fig8_static.cc.o"
  "CMakeFiles/fig8_static.dir/fig8_static.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
