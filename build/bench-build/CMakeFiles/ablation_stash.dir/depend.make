# Empty dependencies file for ablation_stash.
# This may be replaced when dependencies are built.
