file(REMOVE_RECURSE
  "../bench/ablation_stash"
  "../bench/ablation_stash.pdb"
  "CMakeFiles/ablation_stash.dir/ablation_stash.cc.o"
  "CMakeFiles/ablation_stash.dir/ablation_stash.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
