file(REMOVE_RECURSE
  "../bench/stability_latency"
  "../bench/stability_latency.pdb"
  "CMakeFiles/stability_latency.dir/stability_latency.cc.o"
  "CMakeFiles/stability_latency.dir/stability_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stability_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
