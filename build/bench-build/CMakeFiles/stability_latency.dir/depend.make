# Empty dependencies file for stability_latency.
# This may be replaced when dependencies are built.
