file(REMOVE_RECURSE
  "../bench/ablation_voter"
  "../bench/ablation_voter.pdb"
  "CMakeFiles/ablation_voter.dir/ablation_voter.cc.o"
  "CMakeFiles/ablation_voter.dir/ablation_voter.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_voter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
