# Empty dependencies file for ablation_voter.
# This may be replaced when dependencies are built.
