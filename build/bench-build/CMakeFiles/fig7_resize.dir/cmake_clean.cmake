file(REMOVE_RECURSE
  "../bench/fig7_resize"
  "../bench/fig7_resize.pdb"
  "CMakeFiles/fig7_resize.dir/fig7_resize.cc.o"
  "CMakeFiles/fig7_resize.dir/fig7_resize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
