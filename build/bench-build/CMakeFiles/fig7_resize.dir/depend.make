# Empty dependencies file for fig7_resize.
# This may be replaced when dependencies are built.
