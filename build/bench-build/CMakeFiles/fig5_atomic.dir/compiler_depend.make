# Empty compiler generated dependencies file for fig5_atomic.
# This may be replaced when dependencies are built.
