file(REMOVE_RECURSE
  "../bench/fig5_atomic"
  "../bench/fig5_atomic.pdb"
  "CMakeFiles/fig5_atomic.dir/fig5_atomic.cc.o"
  "CMakeFiles/fig5_atomic.dir/fig5_atomic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
