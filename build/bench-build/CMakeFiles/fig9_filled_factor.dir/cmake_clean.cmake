file(REMOVE_RECURSE
  "../bench/fig9_filled_factor"
  "../bench/fig9_filled_factor.pdb"
  "CMakeFiles/fig9_filled_factor.dir/fig9_filled_factor.cc.o"
  "CMakeFiles/fig9_filled_factor.dir/fig9_filled_factor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_filled_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
