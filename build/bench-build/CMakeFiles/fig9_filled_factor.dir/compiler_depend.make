# Empty compiler generated dependencies file for fig9_filled_factor.
# This may be replaced when dependencies are built.
