file(REMOVE_RECURSE
  "../bench/ablation_balance"
  "../bench/ablation_balance.pdb"
  "CMakeFiles/ablation_balance.dir/ablation_balance.cc.o"
  "CMakeFiles/ablation_balance.dir/ablation_balance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
