# Empty compiler generated dependencies file for fig11_track_filled.
# This may be replaced when dependencies are built.
