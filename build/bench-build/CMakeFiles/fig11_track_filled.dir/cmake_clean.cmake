file(REMOVE_RECURSE
  "../bench/fig11_track_filled"
  "../bench/fig11_track_filled.pdb"
  "CMakeFiles/fig11_track_filled.dir/fig11_track_filled.cc.o"
  "CMakeFiles/fig11_track_filled.dir/fig11_track_filled.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_track_filled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
