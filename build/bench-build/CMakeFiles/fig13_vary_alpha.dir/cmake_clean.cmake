file(REMOVE_RECURSE
  "../bench/fig13_vary_alpha"
  "../bench/fig13_vary_alpha.pdb"
  "CMakeFiles/fig13_vary_alpha.dir/fig13_vary_alpha.cc.o"
  "CMakeFiles/fig13_vary_alpha.dir/fig13_vary_alpha.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_vary_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
