file(REMOVE_RECURSE
  "../bench/fig14_vary_beta"
  "../bench/fig14_vary_beta.pdb"
  "CMakeFiles/fig14_vary_beta.dir/fig14_vary_beta.cc.o"
  "CMakeFiles/fig14_vary_beta.dir/fig14_vary_beta.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_vary_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
