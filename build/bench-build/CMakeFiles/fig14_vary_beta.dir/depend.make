# Empty dependencies file for fig14_vary_beta.
# This may be replaced when dependencies are built.
