
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig14_vary_beta.cc" "bench-build/CMakeFiles/fig14_vary_beta.dir/fig14_vary_beta.cc.o" "gcc" "bench-build/CMakeFiles/fig14_vary_beta.dir/fig14_vary_beta.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dycuckoo/CMakeFiles/dycuckoo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dycuckoo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dycuckoo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/dycuckoo_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dycuckoo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
