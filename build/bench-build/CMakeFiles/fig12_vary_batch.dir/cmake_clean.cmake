file(REMOVE_RECURSE
  "../bench/fig12_vary_batch"
  "../bench/fig12_vary_batch.pdb"
  "CMakeFiles/fig12_vary_batch.dir/fig12_vary_batch.cc.o"
  "CMakeFiles/fig12_vary_batch.dir/fig12_vary_batch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_vary_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
