# Empty dependencies file for fig12_vary_batch.
# This may be replaced when dependencies are built.
