# Empty compiler generated dependencies file for fig6_vary_tables.
# This may be replaced when dependencies are built.
