file(REMOVE_RECURSE
  "../bench/fig6_vary_tables"
  "../bench/fig6_vary_tables.pdb"
  "CMakeFiles/fig6_vary_tables.dir/fig6_vary_tables.cc.o"
  "CMakeFiles/fig6_vary_tables.dir/fig6_vary_tables.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_vary_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
