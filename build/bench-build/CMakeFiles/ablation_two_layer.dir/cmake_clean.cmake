file(REMOVE_RECURSE
  "../bench/ablation_two_layer"
  "../bench/ablation_two_layer.pdb"
  "CMakeFiles/ablation_two_layer.dir/ablation_two_layer.cc.o"
  "CMakeFiles/ablation_two_layer.dir/ablation_two_layer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_two_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
