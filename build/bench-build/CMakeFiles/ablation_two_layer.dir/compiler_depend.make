# Empty compiler generated dependencies file for ablation_two_layer.
# This may be replaced when dependencies are built.
