file(REMOVE_RECURSE
  "CMakeFiles/test_subtable.dir/test_subtable.cc.o"
  "CMakeFiles/test_subtable.dir/test_subtable.cc.o.d"
  "test_subtable"
  "test_subtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
