file(REMOVE_RECURSE
  "CMakeFiles/test_cudpp.dir/test_cudpp.cc.o"
  "CMakeFiles/test_cudpp.dir/test_cudpp.cc.o.d"
  "test_cudpp"
  "test_cudpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cudpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
