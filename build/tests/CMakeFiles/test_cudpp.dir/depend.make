# Empty dependencies file for test_cudpp.
# This may be replaced when dependencies are built.
