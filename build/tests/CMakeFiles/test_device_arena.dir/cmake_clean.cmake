file(REMOVE_RECURSE
  "CMakeFiles/test_device_arena.dir/test_device_arena.cc.o"
  "CMakeFiles/test_device_arena.dir/test_device_arena.cc.o.d"
  "test_device_arena"
  "test_device_arena.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_arena.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
