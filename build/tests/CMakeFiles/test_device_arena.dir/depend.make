# Empty dependencies file for test_device_arena.
# This may be replaced when dependencies are built.
