file(REMOVE_RECURSE
  "CMakeFiles/test_stash.dir/test_stash.cc.o"
  "CMakeFiles/test_stash.dir/test_stash.cc.o.d"
  "test_stash"
  "test_stash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
