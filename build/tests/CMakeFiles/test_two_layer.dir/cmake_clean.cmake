file(REMOVE_RECURSE
  "CMakeFiles/test_two_layer.dir/test_two_layer.cc.o"
  "CMakeFiles/test_two_layer.dir/test_two_layer.cc.o.d"
  "test_two_layer"
  "test_two_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_two_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
