# Empty dependencies file for test_two_layer.
# This may be replaced when dependencies are built.
