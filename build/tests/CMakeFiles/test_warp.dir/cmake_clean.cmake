file(REMOVE_RECURSE
  "CMakeFiles/test_warp.dir/test_warp.cc.o"
  "CMakeFiles/test_warp.dir/test_warp.cc.o.d"
  "test_warp"
  "test_warp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_warp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
