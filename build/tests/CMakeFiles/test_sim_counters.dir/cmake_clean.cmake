file(REMOVE_RECURSE
  "CMakeFiles/test_sim_counters.dir/test_sim_counters.cc.o"
  "CMakeFiles/test_sim_counters.dir/test_sim_counters.cc.o.d"
  "test_sim_counters"
  "test_sim_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
