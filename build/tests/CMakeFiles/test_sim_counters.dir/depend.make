# Empty dependencies file for test_sim_counters.
# This may be replaced when dependencies are built.
