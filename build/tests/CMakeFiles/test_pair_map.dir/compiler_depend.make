# Empty compiler generated dependencies file for test_pair_map.
# This may be replaced when dependencies are built.
