file(REMOVE_RECURSE
  "CMakeFiles/test_pair_map.dir/test_pair_map.cc.o"
  "CMakeFiles/test_pair_map.dir/test_pair_map.cc.o.d"
  "test_pair_map"
  "test_pair_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pair_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
