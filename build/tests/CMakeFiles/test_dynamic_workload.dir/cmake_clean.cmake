file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_workload.dir/test_dynamic_workload.cc.o"
  "CMakeFiles/test_dynamic_workload.dir/test_dynamic_workload.cc.o.d"
  "test_dynamic_workload"
  "test_dynamic_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
