# Empty dependencies file for test_dynamic_workload.
# This may be replaced when dependencies are built.
