file(REMOVE_RECURSE
  "CMakeFiles/test_megakv.dir/test_megakv.cc.o"
  "CMakeFiles/test_megakv.dir/test_megakv.cc.o.d"
  "test_megakv"
  "test_megakv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_megakv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
