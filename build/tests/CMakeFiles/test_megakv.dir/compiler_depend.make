# Empty compiler generated dependencies file for test_megakv.
# This may be replaced when dependencies are built.
