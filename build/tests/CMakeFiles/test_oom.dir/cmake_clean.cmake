file(REMOVE_RECURSE
  "CMakeFiles/test_oom.dir/test_oom.cc.o"
  "CMakeFiles/test_oom.dir/test_oom.cc.o.d"
  "test_oom"
  "test_oom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
