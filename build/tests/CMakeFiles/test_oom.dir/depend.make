# Empty dependencies file for test_oom.
# This may be replaced when dependencies are built.
