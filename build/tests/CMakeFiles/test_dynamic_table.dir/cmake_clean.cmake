file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_table.dir/test_dynamic_table.cc.o"
  "CMakeFiles/test_dynamic_table.dir/test_dynamic_table.cc.o.d"
  "test_dynamic_table"
  "test_dynamic_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
