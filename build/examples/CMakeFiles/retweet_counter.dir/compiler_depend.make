# Empty compiler generated dependencies file for retweet_counter.
# This may be replaced when dependencies are built.
