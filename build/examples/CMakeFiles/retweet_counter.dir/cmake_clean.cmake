file(REMOVE_RECURSE
  "CMakeFiles/retweet_counter.dir/retweet_counter.cpp.o"
  "CMakeFiles/retweet_counter.dir/retweet_counter.cpp.o.d"
  "retweet_counter"
  "retweet_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retweet_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
