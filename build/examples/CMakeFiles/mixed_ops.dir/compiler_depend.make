# Empty compiler generated dependencies file for mixed_ops.
# This may be replaced when dependencies are built.
