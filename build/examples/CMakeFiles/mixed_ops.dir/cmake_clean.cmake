file(REMOVE_RECURSE
  "CMakeFiles/mixed_ops.dir/mixed_ops.cpp.o"
  "CMakeFiles/mixed_ops.dir/mixed_ops.cpp.o.d"
  "mixed_ops"
  "mixed_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
