# Empty dependencies file for hash_join.
# This may be replaced when dependencies are built.
