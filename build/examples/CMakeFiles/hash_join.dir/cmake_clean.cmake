file(REMOVE_RECURSE
  "CMakeFiles/hash_join.dir/hash_join.cpp.o"
  "CMakeFiles/hash_join.dir/hash_join.cpp.o.d"
  "hash_join"
  "hash_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
