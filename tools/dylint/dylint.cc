// dylint: the in-tree static invariant checker.
//
// A dependency-free token-level scanner over src/, tests/, and bench/
// that mechanically enforces the three hand-maintained disciplines the
// dynamic layer (gpusim RaceCheck, the chaos soaks) can only test on the
// schedules it happens to exercise.  RaceCheck found the paper's
// eviction displacement window *at runtime*; these rules keep the next
// raw slot store from being writable at all.  docs/analysis.md ("Static
// layer") is the user-facing description.
//
// Rules:
//
//   raw-slot-access   Slot storage (Subtable / stash / handoff ring /
//                     baseline arrays) may only be touched through the
//                     blessed gpusim accessor discipline
//                     (gpusim::Load/Store/StoreRacy/LoadAcquire/
//                     CasKey/StoreSlot* and friends).  Outside the files
//                     that *define* that discipline, any direct
//                     index/deref/atomic op on a slot-storage member —
//                     or a keys_data() raw escape — is a violation.
//
//   tag-discipline    Integrity tags (docs/robustness.md "Silent data
//                     corruption") are maintained as commutative XOR
//                     deltas.  An absolute tag store (.store()/operator=
//                     on a tag array) is only legal on provably unshared
//                     memory, and every such site must carry a justified
//                     suppression.  fetch_xor is always fine.
//
//   registry-sync     The three kill-point registries, the TableStats
//                     counter set, and the Status detail-key set must
//                     stay set-equal with docs/robustness.md.  This is
//                     the build-time form of tests/test_kill_points.cc,
//                     extended to counters and detail keys.
//
//   bad-suppression   A `dylint:allow` that names an unknown rule or
//                     lacks a justification string.  Not suppressible.
//
// Suppression syntax (one per comment, quoted justification mandatory):
//
//   raw_thing();  // dylint:allow(raw-slot-access, "why this is safe")
//   // dylint:allow(tag-discipline, "fresh memory: no concurrent writer")
//   next_line_is_covered();
//
// Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Configuration: the hand-maintained invariants, as data.

/// Member identifiers that are slot storage somewhere in the tree.  A
/// token-level scanner cannot resolve types, so the contract is
/// name-based: these names mean "slot storage" project-wide, and a new
/// class reusing one for something else should pick a different name.
const std::set<std::string>& SlotStorageMembers() {
  static const std::set<std::string> kMembers = {
      "keys_",       "values_",       "tags_",       "words_",
      "slots_",      "stash_keys_",   "stash_values_",
      "stash_tags_", "stash_state_",
  };
  return kMembers;
}

/// Tag arrays: absolute stores to these are what tag-discipline polices.
const std::set<std::string>& TagArrayMembers() {
  static const std::set<std::string> kMembers = {"tags_", "stash_tags_"};
  return kMembers;
}

/// Files allowed to touch slot storage directly: the files that define
/// the storage and implement the accessor discipline on top of it.
bool IsSlotAccessDefiningFile(const std::string& rel_path) {
  static const char* kAllowed[] = {
      "src/gpusim/racecheck.h",       "src/gpusim/atomics.h",
      "src/dycuckoo/subtable.h",      "src/dycuckoo/dynamic_table.h",
      "src/dycuckoo/handoff_ring.h",  "src/baselines/cudpp_cuckoo.h",
      "src/baselines/cudpp_cuckoo.cc", "src/baselines/megakv.h",
      "src/baselines/megakv.cc",      "src/baselines/slab_hash.h",
      "src/baselines/slab_hash.cc",
  };
  for (const char* a : kAllowed) {
    if (rel_path == a) return true;
  }
  return false;
}

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kRules = {
      "raw-slot-access", "tag-discipline", "registry-sync"};
  return kRules;
}

// ---------------------------------------------------------------------------
// Diagnostics.

struct Violation {
  std::string path;  // repo-relative
  size_t line = 0;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// One scanned source file: raw text plus a "code view" with comments and
// string/char literals blanked (structure and line breaks preserved), the
// comment spans (for suppression parsing), and the string literals (for
// registry extraction).

struct StringLiteral {
  size_t offset = 0;  // offset of the opening quote in the text
  size_t line = 0;
  std::string value;  // unescaped-enough: escape sequences kept verbatim
};

struct SourceFile {
  std::string rel_path;
  std::string raw;
  std::string code;  // same length as raw; comments/literals blanked
  std::vector<size_t> line_starts;
  std::vector<std::pair<size_t, size_t>> comment_spans;
  std::vector<StringLiteral> literals;

  size_t LineOf(size_t offset) const {
    auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<size_t>(it - line_starts.begin());
  }
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Next non-whitespace offset in `text` at/after `i` (same logical
/// statement: newlines are skipped too).
size_t SkipWs(const std::string& text, size_t i) {
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  return i;
}

/// Blanks comments and literals out of `raw`, recording both.
void BuildCodeView(SourceFile* f) {
  const std::string& s = f->raw;
  std::string& out = f->code;
  out.assign(s.size(), ' ');
  f->line_starts.push_back(0);
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') f->line_starts.push_back(i + 1);
  }
  size_t i = 0;
  const size_t n = s.size();
  while (i < n) {
    char c = s[i];
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      size_t start = i;
      while (i < n && s[i] != '\n') ++i;
      f->comment_spans.emplace_back(start, i);
      continue;  // newline handled below
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      size_t start = i;
      i += 2;
      while (i + 1 < n && !(s[i] == '*' && s[i + 1] == '/')) {
        if (s[i] == '\n') out[i] = '\n';
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      f->comment_spans.emplace_back(start, i);
      continue;
    }
    if (c == '\'' && i > 0 && IsIdentChar(s[i - 1])) {
      // C++14 digit separator (0xD1C0'CC00), not a char literal.
      out[i] = c;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      StringLiteral lit;
      lit.offset = i;
      lit.line = f->LineOf(i);
      out[i] = quote;  // keep the quotes so "(" matching stays sane
      ++i;
      while (i < n && s[i] != quote) {
        if (s[i] == '\\' && i + 1 < n) {
          lit.value.push_back(s[i]);
          lit.value.push_back(s[i + 1]);
          i += 2;
          continue;
        }
        if (s[i] == '\n') break;  // unterminated; tolerate
        lit.value.push_back(s[i]);
        ++i;
      }
      if (i < n && s[i] == quote) {
        out[i] = quote;
        ++i;
      }
      if (quote == '"') f->literals.push_back(std::move(lit));
      continue;
    }
    out[i] = c;
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Suppressions.

struct Suppression {
  std::string rule;
  bool justified = false;
  bool whole_line_comment = false;  // applies to the NEXT code line too
  size_t line = 0;
  bool used = false;
};

/// Parses every `dylint:allow(...)` inside comment spans.  Malformed ones
/// become bad-suppression violations immediately.
std::vector<Suppression> ParseSuppressions(const SourceFile& f,
                                           std::vector<Violation>* out) {
  std::vector<Suppression> sups;
  static const std::string kMarker = "dylint:allow(";
  for (const auto& [begin, end] : f.comment_spans) {
    size_t pos = f.raw.find(kMarker, begin);
    if (pos == std::string::npos || pos >= end) continue;
    const size_t line = f.LineOf(pos);
    size_t i = pos + kMarker.size();
    size_t rule_end = i;
    while (rule_end < end && (IsIdentChar(f.raw[rule_end]) ||
                              f.raw[rule_end] == '-')) {
      ++rule_end;
    }
    Suppression sup;
    sup.rule = f.raw.substr(i, rule_end - i);
    sup.line = line;
    // Whole-line comment => covers the following line as well.
    const size_t line_start = f.line_starts[line - 1];
    sup.whole_line_comment =
        SkipWs(f.raw, line_start) == begin;
    if (!KnownRules().count(sup.rule)) {
      out->push_back({f.rel_path, line, "bad-suppression",
                      "dylint:allow names unknown rule '" + sup.rule + "'"});
      continue;
    }
    // Require: , "non-empty justification" )
    size_t j = SkipWs(f.raw, rule_end);
    bool ok = j < end && f.raw[j] == ',';
    if (ok) {
      j = SkipWs(f.raw, j + 1);
      ok = j < end && f.raw[j] == '"';
    }
    if (ok) {
      size_t q = f.raw.find('"', j + 1);
      ok = q != std::string::npos && q < end && q > j + 1;
      if (ok) {
        size_t close = SkipWs(f.raw, q + 1);
        ok = close < end && f.raw[close] == ')';
      }
    }
    if (!ok) {
      out->push_back(
          {f.rel_path, line, "bad-suppression",
           "dylint:allow(" + sup.rule +
               ") must carry a quoted, non-empty justification: "
               "dylint:allow(" + sup.rule + ", \"why this is safe\")"});
      continue;
    }
    sup.justified = true;
    sups.push_back(sup);
  }
  return sups;
}

/// True iff `rule` is suppressed at `line` (same line, or a whole-line
/// comment on the line above).  Marks the suppression used.
bool IsSuppressed(std::vector<Suppression>* sups, const std::string& rule,
                  size_t line) {
  for (auto& s : *sups) {
    if (s.rule != rule) continue;
    if (s.line == line || (s.whole_line_comment && s.line + 1 == line)) {
      s.used = true;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rule 1: raw-slot-access.

void CheckRawSlotAccess(const SourceFile& f, std::vector<Suppression>* sups,
                        std::vector<Violation>* out) {
  const bool defining = IsSlotAccessDefiningFile(f.rel_path);
  const std::string& code = f.code;
  for (size_t i = 0; i < code.size();) {
    if (!IsIdentChar(code[i]) ||
        (i > 0 && IsIdentChar(code[i - 1]))) {
      ++i;
      continue;
    }
    size_t end = i;
    while (end < code.size() && IsIdentChar(code[end])) ++end;
    const std::string ident = code.substr(i, end - i);
    const size_t line = f.LineOf(i);
    if (!defining && ident == "keys_data") {
      size_t j = SkipWs(code, end);
      if (j < code.size() && code[j] == '(') {
        if (!IsSuppressed(sups, "raw-slot-access", line)) {
          out->push_back(
              {f.rel_path, line, "raw-slot-access",
               "keys_data() hands out raw slot storage; outside its "
               "defining files every access must go through the gpusim "
               "accessor discipline (suppress with a justification if "
               "the raw pointer is the point, as in the RaceCheck "
               "use-after-free regression)"});
        }
      }
      i = end;
      continue;
    }
    if (!defining && SlotStorageMembers().count(ident)) {
      // Direct index, member access, or atomic op on slot storage.
      size_t j = SkipWs(code, end);
      bool access = false;
      if (j < code.size() && code[j] == '[') access = true;
      if (j + 1 < code.size() && code[j] == '-' && code[j + 1] == '>') {
        access = true;
      }
      if (j < code.size() && code[j] == '.') {
        // `.size()` alone is not a slot access; atomic ops and element
        // handling are.
        size_t k = SkipWs(code, j + 1);
        size_t m = k;
        while (m < code.size() && IsIdentChar(code[m])) ++m;
        const std::string member = code.substr(k, m - k);
        access = member == "load" || member == "store" ||
                 member == "exchange" || member == "data" ||
                 member.rfind("fetch_", 0) == 0 ||
                 member.rfind("compare_exchange", 0) == 0;
      }
      if (access && !IsSuppressed(sups, "raw-slot-access", line)) {
        out->push_back(
            {f.rel_path, line, "raw-slot-access",
             "direct access to slot storage '" + ident +
                 "' outside the blessed gpusim::Load/Store/StoreRacy/"
                 "LoadAcquire/CasKey/StoreSlot* discipline and the files "
                 "that define it (docs/analysis.md, \"Static layer\")"});
      }
    }
    i = end;
  }
}

// ---------------------------------------------------------------------------
// Rule 2: tag-discipline.

void CheckTagDiscipline(const SourceFile& f, std::vector<Suppression>* sups,
                        std::vector<Violation>* out) {
  const std::string& code = f.code;
  for (size_t i = 0; i < code.size();) {
    if (!IsIdentChar(code[i]) || (i > 0 && IsIdentChar(code[i - 1]))) {
      ++i;
      continue;
    }
    size_t end = i;
    while (end < code.size() && IsIdentChar(code[end])) ++end;
    const std::string ident = code.substr(i, end - i);
    if (!TagArrayMembers().count(ident)) {
      i = end;
      continue;
    }
    const size_t line = f.LineOf(i);
    // Only an *element* access can be a tag write; a bare mention is
    // pointer/container management (allocation, move, nulling out).
    size_t j = SkipWs(code, end);
    if (j >= code.size() || code[j] != '[') {
      i = end;
      continue;
    }
    int depth = 0;
    while (j < code.size()) {
      if (code[j] == '[') ++depth;
      if (code[j] == ']' && --depth == 0) {
        ++j;
        break;
      }
      ++j;
    }
    j = SkipWs(code, j);
    bool absolute = false;
    std::string how;
    if (j < code.size() && code[j] == '.') {
      size_t k = SkipWs(code, j + 1);
      size_t m = k;
      while (m < code.size() && IsIdentChar(code[m])) ++m;
      const std::string member = code.substr(k, m - k);
      if (member == "store" || member == "exchange") {
        absolute = true;
        how = "." + member + "()";
      }
    } else if (j < code.size() && code[j] == '=' &&
               (j + 1 >= code.size() || code[j + 1] != '=')) {
      absolute = true;
      how = "assignment";
    }
    if (absolute && !IsSuppressed(sups, "tag-discipline", line)) {
      out->push_back(
          {f.rel_path, line, "tag-discipline",
           "absolute integrity-tag write (" + how + " on '" + ident +
               "'): tags are maintained as commutative XOR deltas "
               "(fetch_xor); an absolute store is only legal on provably "
               "unshared memory and must carry a justified "
               "dylint:allow(tag-discipline, ...) (docs/robustness.md, "
               "\"Silent data corruption\")"});
    }
    i = end;
  }
}

// ---------------------------------------------------------------------------
// Rule 3: registry-sync.

struct RegistryEntry {
  std::string name;
  std::string path;
  size_t line = 0;
};

/// Extracts the string literals of `array_name[] = { ... }` definitions.
void CollectArrayLiterals(const SourceFile& f, const std::string& array_name,
                          std::vector<RegistryEntry>* out) {
  size_t pos = 0;
  while ((pos = f.code.find(array_name, pos)) != std::string::npos) {
    // Must be a whole identifier token.
    if ((pos > 0 && IsIdentChar(f.code[pos - 1])) ||
        (pos + array_name.size() < f.code.size() &&
         IsIdentChar(f.code[pos + array_name.size()]))) {
      pos += array_name.size();
      continue;
    }
    // Find '{' before the next ';' — a declaration without initializer
    // (e.g. `extern const char* kKillPointNames[];`) has none.
    size_t open = pos;
    while (open < f.code.size() && f.code[open] != '{' &&
           f.code[open] != ';') {
      ++open;
    }
    if (open >= f.code.size() || f.code[open] != '{') {
      pos += array_name.size();
      continue;
    }
    int depth = 0;
    size_t close = open;
    while (close < f.code.size()) {
      if (f.code[close] == '{') ++depth;
      if (f.code[close] == '}' && --depth == 0) break;
      ++close;
    }
    for (const StringLiteral& lit : f.literals) {
      if (lit.offset > open && lit.offset < close) {
        out->push_back({lit.value, f.rel_path, lit.line});
      }
    }
    pos = close;
  }
}

/// TableStats counter members: `std::atomic<uint64_t> NAME{0};` between
/// `class TableStats` and its first nested `struct`.
void CollectCounters(const SourceFile& f, std::vector<RegistryEntry>* out) {
  const size_t cls = f.code.find("class TableStats");
  if (cls == std::string::npos) return;
  size_t span_end = f.code.find("struct", cls);
  if (span_end == std::string::npos) span_end = f.code.size();
  static const std::string kDecl = "std::atomic<uint64_t>";
  size_t pos = cls;
  while ((pos = f.code.find(kDecl, pos)) != std::string::npos &&
         pos < span_end) {
    size_t i = SkipWs(f.code, pos + kDecl.size());
    size_t end = i;
    while (end < f.code.size() && IsIdentChar(f.code[end])) ++end;
    if (end > i) {
      out->push_back({f.code.substr(i, end - i), f.rel_path, f.LineOf(i)});
    }
    pos = end;
  }
}

/// Status detail keys: the first argument of every WithDetail("...") call.
void CollectDetailKeys(const SourceFile& f, std::vector<RegistryEntry>* out) {
  size_t pos = 0;
  static const std::string kCall = "WithDetail";
  while ((pos = f.code.find(kCall, pos)) != std::string::npos) {
    if (pos > 0 && IsIdentChar(f.code[pos - 1])) {
      pos += kCall.size();
      continue;
    }
    size_t j = SkipWs(f.code, pos + kCall.size());
    pos += kCall.size();
    if (j >= f.code.size() || f.code[j] != '(') continue;
    size_t arg = SkipWs(f.code, j + 1);
    for (const StringLiteral& lit : f.literals) {
      if (lit.offset == arg) {
        out->push_back({lit.value, f.rel_path, lit.line});
        break;
      }
    }
  }
}

/// Kill-point-looking backticked token (same heuristic the runtime test
/// in tests/test_kill_points.cc uses, so the two layers agree).
bool LooksLikeKillPoint(const std::string& tok) {
  static const char* kPrefixes[] = {"wal.", "ckpt.", "mem.", "reshard."};
  bool prefixed = false;
  for (const char* p : kPrefixes) {
    if (tok.rfind(p, 0) == 0) prefixed = true;
  }
  if (!prefixed) return false;
  for (char c : tok) {
    if (!(std::islower(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.')) {
      return false;
    }
  }
  return true;
}

std::set<std::string> BacktickedTokens(const std::string& text, size_t begin,
                                       size_t end) {
  std::set<std::string> toks;
  size_t pos = begin;
  while ((pos = text.find('`', pos)) != std::string::npos && pos < end) {
    const size_t close = text.find('`', pos + 1);
    if (close == std::string::npos || close >= end) break;
    toks.insert(text.substr(pos + 1, close - pos - 1));
    pos = close + 1;
  }
  return toks;
}

/// Tokens between `<!-- dylint:NAME:begin -->` / `:end` markers, or
/// nullopt-like empty+false when the markers are absent.
bool MarkedSection(const std::string& doc, const std::string& name,
                   std::set<std::string>* out) {
  const std::string begin_marker = "<!-- dylint:" + name + ":begin -->";
  const std::string end_marker = "<!-- dylint:" + name + ":end -->";
  const size_t b = doc.find(begin_marker);
  const size_t e = doc.find(end_marker);
  if (b == std::string::npos || e == std::string::npos || e < b) return false;
  *out = BacktickedTokens(doc, b + begin_marker.size(), e);
  return true;
}

void DiffSets(const std::string& what,
              const std::map<std::string, RegistryEntry>& registered,
              const std::set<std::string>& documented,
              const std::string& doc_rel_path,
              std::vector<Violation>* out) {
  for (const auto& [name, entry] : registered) {
    if (!documented.count(name)) {
      out->push_back({entry.path, entry.line, "registry-sync",
                      what + " '" + name + "' is defined in code but not "
                      "documented in " + doc_rel_path});
    }
  }
  for (const std::string& name : documented) {
    if (!registered.count(name)) {
      out->push_back({doc_rel_path, 1, "registry-sync",
                      doc_rel_path + " documents " + what + " '" + name +
                          "' but the code does not define it (renamed or "
                          "removed?)"});
    }
  }
}

void CheckRegistrySync(const std::vector<SourceFile>& files,
                       const std::string& doc, bool have_doc,
                       const std::string& doc_rel_path,
                       std::vector<Violation>* out) {
  std::map<std::string, RegistryEntry> kill_points;
  std::map<std::string, RegistryEntry> counters;
  std::map<std::string, RegistryEntry> detail_keys;
  for (const SourceFile& f : files) {
    // Registries are API surface: they live in src/.  Tests exercise the
    // mechanisms with synthetic names (test_status attaches throwaway
    // detail keys), which must not enter the documented set.
    if (f.rel_path.rfind("src/", 0) != 0) continue;
    std::vector<RegistryEntry> entries;
    CollectArrayLiterals(f, "kKillPointNames", &entries);
    CollectArrayLiterals(f, "kReshardKillPointNames", &entries);
    CollectArrayLiterals(f, "kSweepKillPointNames", &entries);
    for (auto& e : entries) kill_points.emplace(e.name, e);
    entries.clear();
    CollectCounters(f, &entries);
    for (auto& e : entries) counters.emplace(e.name, e);
    entries.clear();
    CollectDetailKeys(f, &entries);
    for (auto& e : entries) detail_keys.emplace(e.name, e);
  }
  if (kill_points.empty() && counters.empty() && detail_keys.empty()) return;
  if (!have_doc) {
    const auto& any = !kill_points.empty()
                          ? kill_points.begin()->second
                          : (!counters.empty() ? counters.begin()->second
                                               : detail_keys.begin()->second);
    out->push_back({any.path, any.line, "registry-sync",
                    "registries are defined in code but " + doc_rel_path +
                        " does not exist"});
    return;
  }
  if (!kill_points.empty()) {
    std::set<std::string> documented;
    for (const std::string& tok :
         BacktickedTokens(doc, 0, doc.size())) {
      if (LooksLikeKillPoint(tok)) documented.insert(tok);
    }
    DiffSets("kill point", kill_points, documented, doc_rel_path, out);
  }
  if (!counters.empty()) {
    std::set<std::string> documented;
    if (!MarkedSection(doc, "counters", &documented)) {
      out->push_back({doc_rel_path, 1, "registry-sync",
                      "TableStats counters exist but " + doc_rel_path +
                          " has no <!-- dylint:counters:begin/end --> "
                          "registry section"});
    } else {
      DiffSets("TableStats counter", counters, documented, doc_rel_path, out);
    }
  }
  if (!detail_keys.empty()) {
    std::set<std::string> documented;
    if (!MarkedSection(doc, "details", &documented)) {
      out->push_back({doc_rel_path, 1, "registry-sync",
                      "Status detail keys exist but " + doc_rel_path +
                          " has no <!-- dylint:details:begin/end --> "
                          "registry section"});
    } else {
      DiffSets("Status detail key", detail_keys, documented, doc_rel_path,
               out);
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

int Run(const fs::path& root, std::FILE* report) {
  std::vector<SourceFile> files;
  bool io_error = false;
  for (const char* dir : {"src", "tests", "bench"}) {
    const fs::path base = root / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(base, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) break;
      // Fixture trees contain deliberate violations; they are scanned by
      // pointing --root at them, never as part of the real tree.
      if (it->is_directory() &&
          it->path().filename() == "lint_fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file() || !HasSourceExtension(it->path())) continue;
      SourceFile f;
      f.rel_path = fs::relative(it->path(), root).generic_string();
      std::ifstream in(it->path(), std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "dylint: cannot read %s\n",
                     it->path().c_str());
        io_error = true;
        continue;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      f.raw = buf.str();
      BuildCodeView(&f);
      files.push_back(std::move(f));
    }
  }
  if (io_error) return 2;
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel_path < b.rel_path;
            });

  std::vector<Violation> violations;
  for (SourceFile& f : files) {
    std::vector<Suppression> sups = ParseSuppressions(f, &violations);
    CheckRawSlotAccess(f, &sups, &violations);
    CheckTagDiscipline(f, &sups, &violations);
  }

  const fs::path doc_path = root / "docs" / "robustness.md";
  std::string doc;
  bool have_doc = false;
  if (std::ifstream in(doc_path, std::ios::binary); in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    doc = buf.str();
    have_doc = true;
  }
  CheckRegistrySync(files, doc, have_doc, "docs/robustness.md", &violations);

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  for (const Violation& v : violations) {
    std::fprintf(report, "%s:%zu: error: [%s] %s\n", v.path.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  std::fprintf(report, "dylint: scanned %zu files, %zu violation%s\n",
               files.size(), violations.size(),
               violations.size() == 1 ? "" : "s");
  return violations.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: dylint [--root DIR] [--report FILE]\n"
          "Scans DIR/src, DIR/tests, DIR/bench (and DIR/docs/robustness.md\n"
          "for the registry-sync rule).  Rules: raw-slot-access,\n"
          "tag-discipline, registry-sync, bad-suppression.  Suppress with\n"
          "// dylint:allow(<rule>, \"justification\").  Exit 0 clean, 1\n"
          "violations, 2 usage/IO error.\n");
      return 0;
    } else {
      std::fprintf(stderr, "dylint: unknown argument '%s' (try --help)\n",
                   arg.c_str());
      return 2;
    }
  }
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "dylint: --root %s is not a directory\n",
                 root.c_str());
    return 2;
  }
  std::FILE* report = stdout;
  std::FILE* opened = nullptr;
  if (!report_path.empty()) {
    opened = std::fopen(report_path.c_str(), "w");
    if (opened == nullptr) {
      std::fprintf(stderr, "dylint: cannot write report to %s\n",
                   report_path.c_str());
      return 2;
    }
    report = opened;
  }
  const int rc = Run(root, report);
  if (opened != nullptr) std::fclose(opened);
  return rc;
}
