#!/usr/bin/env bash
# Builds and runs the test suite under AddressSanitizer+UBSan and under
# ThreadSanitizer.  The gpusim substrate runs warps on real threads, so
# TSan findings are genuine races, not simulation artifacts.
#
# Usage:  scripts/check_sanitizers.sh [address|thread|all]   (default: all)
#
# Build trees land in build-asan/ and build-tsan/ next to build/ and are
# reused across runs.

set -euo pipefail

cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1"
  local dir="build-${preset}san"
  case "$preset" in
    a) local mode=address ;;
    t) local mode=thread ;;
  esac
  echo "=== ${mode} sanitizer: configure + build (${dir}) ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDYCUCKOO_SANITIZE="${mode}" \
    -DDYCUCKOO_BUILD_BENCHMARKS=OFF \
    -DDYCUCKOO_BUILD_EXAMPLES=OFF
  cmake --build "${dir}" -j "$(nproc)"
  echo "=== ${mode} sanitizer: ctest ==="
  # halt_on_error keeps a first finding from being buried in later output
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "${dir}" --output-on-failure
}

what="${1:-all}"
case "$what" in
  address) run_preset a ;;
  thread)  run_preset t ;;
  all)     run_preset a; run_preset t ;;
  *) echo "usage: $0 [address|thread|all]" >&2; exit 2 ;;
esac
echo "sanitizer checks passed"
