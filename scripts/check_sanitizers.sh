#!/usr/bin/env bash
# Builds and runs the test suite under AddressSanitizer+UBSan, under
# ThreadSanitizer, and under the gpusim RaceCheck dynamic analysis.  The
# gpusim substrate runs warps on real threads, so TSan findings are
# genuine races, not simulation artifacts; RaceCheck watches the
# *simulated* device side (docs/analysis.md) and needs no special build —
# it is the normal binary with DYCUCKOO_RACECHECK=1.
#
# Usage:  scripts/check_sanitizers.sh [address|thread|racecheck|all]
#         (default: all)
#
# Build trees land in build-asan/, build-tsan/, and build-rcheck/ next to
# build/ and are reused across runs.

set -euo pipefail

cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1"
  local dir="build-${preset}san"
  case "$preset" in
    a) local mode=address ;;
    t) local mode=thread ;;
  esac
  echo "=== ${mode} sanitizer: configure + build (${dir}) ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDYCUCKOO_SANITIZE="${mode}" \
    -DDYCUCKOO_BUILD_BENCHMARKS=OFF \
    -DDYCUCKOO_BUILD_EXAMPLES=OFF
  cmake --build "${dir}" -j "$(nproc)"
  echo "=== ${mode} sanitizer: ctest ==="
  # halt_on_error keeps a first finding from being buried in later output
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "${dir}" --output-on-failure
}

run_racecheck() {
  local dir="build-rcheck"
  echo "=== racecheck: configure + build (${dir}) ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDYCUCKOO_BUILD_BENCHMARKS=OFF \
    -DDYCUCKOO_BUILD_EXAMPLES=OFF
  cmake --build "${dir}" -j "$(nproc)"
  echo "=== racecheck: ctest ==="
  # Parallel again: the eviction displacement window that used to flake
  # under the checker's overhead plus load is closed by the handoff ring
  # (docs/robustness.md "Consistency guarantees").
  DYCUCKOO_RACECHECK=1 \
  DYCUCKOO_RACECHECK_REPORT="${dir}/racecheck_report.txt" \
    ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
}

what="${1:-all}"
case "$what" in
  address)   run_preset a ;;
  thread)    run_preset t ;;
  racecheck) run_racecheck ;;
  all)       run_preset a; run_preset t; run_racecheck ;;
  *) echo "usage: $0 [address|thread|racecheck|all]" >&2; exit 2 ;;
esac
echo "sanitizer checks passed"
