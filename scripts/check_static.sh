#!/usr/bin/env bash
# Runs the whole static-analysis layer locally, mirroring the CI
# static-analysis job (docs/analysis.md, "Static layer"):
#
#   1. dylint        — the in-tree invariant checker (tools/dylint):
#                      raw-slot-access, tag-discipline, registry-sync.
#   2. thread-safety — a Clang build with -Wthread-safety -Werror, which
#                      proves the GUARDED_BY/REQUIRES annotations from
#                      src/common/thread_annotations.h.
#   3. clang-tidy    — the .clang-tidy profile over src/, warnings as
#                      errors, via run-clang-tidy + compile_commands.json.
#
# Stages that need tools the host lacks (clang, clang-tidy) are skipped
# with a notice instead of failing: dylint is dependency-free and always
# runs, so every machine gets at least the project-specific rules.
#
# Usage:  scripts/check_static.sh [dylint|thread-safety|tidy|all]
#         (default: all)
#
# Build trees land in build-dylint/ and build-clang/ next to build/ and
# are reused across runs.

set -uo pipefail

cd "$(dirname "$0")/.."

failures=0
skips=0

run_dylint() {
  echo "=== dylint: build (build-dylint/) ==="
  cmake -B build-dylint -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDYCUCKOO_BUILD_TESTS=OFF \
    -DDYCUCKOO_BUILD_BENCHMARKS=OFF \
    -DDYCUCKOO_BUILD_EXAMPLES=OFF || { failures=$((failures+1)); return; }
  cmake --build build-dylint -j "$(nproc)" --target dylint \
    || { failures=$((failures+1)); return; }
  echo "=== dylint: scan src/ tests/ bench/ ==="
  ./build-dylint/tools/dylint/dylint --root . \
    || failures=$((failures+1))
}

run_thread_safety() {
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "--- thread-safety: SKIPPED (clang++ not installed; CI runs it)"
    skips=$((skips+1))
    return
  fi
  echo "=== thread-safety: Clang build with -Wthread-safety -Werror ==="
  cmake -B build-clang -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DDYCUCKOO_WERROR=ON \
    -DDYCUCKOO_BUILD_BENCHMARKS=OFF \
    -DDYCUCKOO_BUILD_EXAMPLES=OFF || { failures=$((failures+1)); return; }
  cmake --build build-clang -j "$(nproc)" || failures=$((failures+1))
}

run_tidy() {
  local runner=""
  for cand in run-clang-tidy run-clang-tidy.py; do
    if command -v "$cand" >/dev/null 2>&1; then runner="$cand"; break; fi
  done
  if [ -z "$runner" ] || ! command -v clang-tidy >/dev/null 2>&1; then
    echo "--- clang-tidy: SKIPPED (clang-tidy/run-clang-tidy not installed; CI runs it)"
    skips=$((skips+1))
    return
  fi
  echo "=== clang-tidy: ${runner} over src/ (warnings as errors) ==="
  # compile_commands.json comes from the Clang tree if it exists (so tidy
  # sees the same flags CI uses), else from a fresh export here.
  local db=build-clang
  if [ ! -f "${db}/compile_commands.json" ]; then
    db=build-tidy
    cmake -B "${db}" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DDYCUCKOO_BUILD_BENCHMARKS=OFF \
      -DDYCUCKOO_BUILD_EXAMPLES=OFF || { failures=$((failures+1)); return; }
  fi
  "$runner" -p "${db}" -quiet \
    -warnings-as-errors='*' \
    "$(pwd)/src/.*\.(cc|h)\$" \
    || failures=$((failures+1))
}

what="${1:-all}"
case "$what" in
  dylint) run_dylint ;;
  thread-safety) run_thread_safety ;;
  tidy) run_tidy ;;
  all)
    run_dylint
    run_thread_safety
    run_tidy
    ;;
  *)
    echo "usage: scripts/check_static.sh [dylint|thread-safety|tidy|all]" >&2
    exit 2
    ;;
esac

echo
if [ "$failures" -ne 0 ]; then
  echo "check_static: FAILED (${failures} stage(s))"
  exit 1
fi
if [ "$skips" -ne 0 ]; then
  echo "check_static: OK (${skips} stage(s) skipped for missing tools)"
else
  echo "check_static: OK"
fi
