#!/usr/bin/env bash
# Builds everything, runs the full test suite, regenerates every paper
# table/figure, and leaves the transcripts in test_output.txt and
# bench_output.txt at the repository root.
#
# Usage: scripts/run_all.sh [extra cmake args...]

set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja "$@"
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    echo "==== $b ===="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt"
