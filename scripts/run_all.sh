#!/usr/bin/env bash
# Builds everything, runs the full test suite, regenerates every paper
# table/figure, and leaves the transcripts in test_output.txt and
# bench_output.txt at the repository root.
#
# Usage: scripts/run_all.sh [extra cmake args...]

set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja "$@"
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Benchmark numbers measured under the RaceCheck dynamic analysis are
# meaningless (every instrumented access pays for shadow lookups), so a
# checked run validates the suite and stops there.
if [ "${DYCUCKOO_RACECHECK:-0}" != "0" ]; then
  echo "DYCUCKOO_RACECHECK is set: skipping benchmarks (numbers would reflect the checker, not the table)"
  echo "done: test_output.txt (benchmarks skipped under racecheck)"
  exit 0
fi

# Each benchmark gets a hard wall-clock budget so one hung binary cannot
# wedge the whole sweep; the loop also skips CMake build droppings
# (CMakeFiles/, *.cmake, object files) that live next to the executables.
BENCH_TIMEOUT="${BENCH_TIMEOUT:-600}"

{
  status=0
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "==== $b ===="
    rc=0
    timeout --signal=TERM --kill-after=10 "$BENCH_TIMEOUT" "$b" || rc=$?
    if [ "$rc" -ne 0 ]; then
      echo "FAILED: $b exited with status $rc" >&2
      status=1
    fi
    echo
  done
  exit "$status"
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt"
