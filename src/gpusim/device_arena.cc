#include "gpusim/device_arena.h"

#include <cstdlib>

#include "common/logging.h"
#include "gpusim/fault_injector.h"

namespace dycuckoo {
namespace gpusim {

DeviceArena::DeviceArena(uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

DeviceArena::~DeviceArena() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [ptr, alloc] : live_) {
    std::free(ptr);
    (void)alloc;
  }
}

DeviceArena* DeviceArena::Global() {
  static DeviceArena arena(kDefaultCapacity);
  return &arena;
}

void* DeviceArena::Allocate(size_t bytes, const std::string& tag) {
  if (bytes == 0) bytes = 1;
  if (FaultInjector* injector = FaultInjector::Active()) {
    // An injected failure behaves exactly like arena exhaustion: callers
    // must survive nullptr here the same way they survive cudaMalloc
    // returning cudaErrorMemoryAllocation.
    if (injector->OnAllocation(bytes, tag)) return nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (capacity_bytes_ != 0 && used_bytes_ + bytes > capacity_bytes_) {
      DYCUCKOO_LOG(Warning) << "device arena exhausted: used=" << used_bytes_
                            << " request=" << bytes
                            << " capacity=" << capacity_bytes_;
      return nullptr;
    }
    used_bytes_ += bytes;
    if (used_bytes_ > peak_bytes_) peak_bytes_ = used_bytes_;
    used_by_tag_[tag] += bytes;
    // Reserve the accounting slot first so a malloc failure can roll back.
    void* ptr = std::malloc(bytes);
    if (ptr == nullptr) {
      used_bytes_ -= bytes;
      used_by_tag_[tag] -= bytes;
      return nullptr;
    }
    live_.emplace(ptr, Allocation{bytes, tag});
    return ptr;
  }
}

void DeviceArena::Free(void* ptr) {
  if (ptr == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(ptr);
  DYCUCKOO_CHECK(it != live_.end());
  used_bytes_ -= it->second.bytes;
  auto tag_it = used_by_tag_.find(it->second.tag);
  if (tag_it != used_by_tag_.end()) {
    tag_it->second -= it->second.bytes;
    if (tag_it->second == 0) used_by_tag_.erase(tag_it);
  }
  live_.erase(it);
  std::free(ptr);
}

uint64_t DeviceArena::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_bytes_;
}

uint64_t DeviceArena::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_bytes_;
}

uint64_t DeviceArena::used_bytes_for(const std::string& tag) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = used_by_tag_.find(tag);
  return it == used_by_tag_.end() ? 0 : it->second;
}

size_t DeviceArena::live_allocations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

void DeviceArena::ResetPeak() {
  std::lock_guard<std::mutex> lock(mu_);
  peak_bytes_ = used_bytes_;
}

}  // namespace gpusim
}  // namespace dycuckoo
