#include "gpusim/device_arena.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "gpusim/fault_injector.h"
#include "gpusim/racecheck.h"

namespace dycuckoo {
namespace gpusim {

DeviceArena::DeviceArena(uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

DeviceArena::~DeviceArena() {
  common::MutexLock lock(mu_);
  for (auto& [ptr, alloc] : live_) {
    (void)ptr;
    std::free(alloc.block);
  }
}

DeviceArena* DeviceArena::Global() {
  static DeviceArena arena(kDefaultCapacity);
  return &arena;
}

void* DeviceArena::Allocate(size_t bytes, const std::string& tag) {
  if (bytes == 0) bytes = 1;
  if (FaultInjector* injector = FaultInjector::Active()) {
    // An injected failure behaves exactly like arena exhaustion: callers
    // must survive nullptr here the same way they survive cudaMalloc
    // returning cudaErrorMemoryAllocation.
    if (injector->OnAllocation(bytes, tag)) return nullptr;
  }
  // Redzones surround the user range when a checker is installed, so an
  // instrumented access one element past the end lands on tracked guard
  // bytes instead of foreign memory.  They are checker overhead, not
  // device memory: the budget is charged the user bytes only.
  RaceCheck* rc = RaceCheck::Active();
  const size_t redzone = rc != nullptr ? rc->config().redzone_bytes : 0;
  size_t block_bytes = 0;
  if (__builtin_add_overflow(bytes, 2 * redzone, &block_bytes)) {
    return nullptr;
  }
  {
    common::MutexLock lock(mu_);
    if (capacity_bytes_ != 0 && used_bytes_ + bytes > capacity_bytes_) {
      DYCUCKOO_LOG(Warning) << "device arena exhausted: used=" << used_bytes_
                            << " request=" << bytes
                            << " capacity=" << capacity_bytes_;
      return nullptr;
    }
    used_bytes_ += bytes;
    if (used_bytes_ > peak_bytes_) peak_bytes_ = used_bytes_;
    used_by_tag_[tag] += bytes;
    // Reserve the accounting slot first so a malloc failure can roll back.
    void* block = std::malloc(block_bytes);
    if (block == nullptr) {
      used_bytes_ -= bytes;
      used_by_tag_[tag] -= bytes;
      return nullptr;
    }
    void* user = static_cast<char*>(block) + redzone;
    live_.emplace(user, Allocation{bytes, tag, block, next_seq_++});
    if (rc != nullptr) {
      rc->OnArenaAllocate(user, bytes, block, block_bytes, tag);
    }
    return user;
  }
}

void DeviceArena::Free(void* ptr) {
  if (ptr == nullptr) return;
  common::MutexLock lock(mu_);
  auto it = live_.find(ptr);
  if (it == live_.end()) {
    // Double free or a pointer that was never ours.  Report and leave the
    // accounting untouched: mutating the budget for a bogus pointer would
    // silently skew every later capacity decision.
    ++invalid_frees_;
    std::string original_tag;
    bool double_free = false;
    if (RaceCheck* rc = RaceCheck::Active()) {
      double_free = rc->shadow().WasFreed(ptr, &original_tag);
      rc->OnBadFree(double_free, original_tag);
    }
    if (double_free) {
      DYCUCKOO_LOG(Error) << "device arena: double free of allocation tagged '"
                          << original_tag << "'";
    } else {
      DYCUCKOO_LOG(Error) << "device arena: free of unknown pointer";
    }
    return;
  }
  used_bytes_ -= it->second.bytes;
  auto tag_it = used_by_tag_.find(it->second.tag);
  if (tag_it != used_by_tag_.end()) {
    tag_it->second -= it->second.bytes;
    if (tag_it->second == 0) used_by_tag_.erase(tag_it);
  }
  void* block = it->second.block;
  live_.erase(it);
  // The checker quarantines blocks it registered (keeping the range
  // classifiable as freed); everything else is released immediately.
  RaceCheck* rc = RaceCheck::Active();
  if (rc == nullptr || !rc->OnArenaFree(ptr, block)) {
    std::free(block);
  }
}

uint64_t DeviceArena::used_bytes() const {
  common::MutexLock lock(mu_);
  return used_bytes_;
}

uint64_t DeviceArena::peak_bytes() const {
  common::MutexLock lock(mu_);
  return peak_bytes_;
}

uint64_t DeviceArena::used_bytes_for(const std::string& tag) const {
  common::MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [t, bytes] : used_by_tag_) {
    if (t.find(tag) != std::string::npos) total += bytes;
  }
  return total;
}

DeviceArena::MemorySweepReport DeviceArena::InjectMemoryFaults() {
  MemorySweepReport report;
  FaultInjector* injector = FaultInjector::Active();
  if (injector == nullptr || !injector->MemoryFaultsEnabled()) return report;
  if (injector->OnKillPoint(kSweepKillPointNames[0])) {
    report.killed = true;
    return report;
  }
  const FaultInjectorConfig& cfg = injector->config();
  struct Target {
    uint64_t seq;
    char* bytes;
    size_t len;
  };
  std::vector<Target> targets;
  uint64_t total_bytes = 0;
  {
    common::MutexLock lock(mu_);
    for (auto& [ptr, alloc] : live_) {
      // Non-matching allocations are invisible: they neither receive
      // faults nor shift the deterministic byte draws (the io_scope_filter
      // semantics, applied to memory regions).
      if (!injector->MemoryTagMatches(alloc.tag)) continue;
      targets.push_back(
          Target{alloc.seq, static_cast<char*>(ptr), alloc.bytes});
      total_bytes += alloc.bytes;
    }
  }
  if (total_bytes == 0) return report;
  std::sort(targets.begin(), targets.end(),
            [](const Target& a, const Target& b) { return a.seq < b.seq; });
  report.bytes_targeted = total_bytes;
  for (int f = 0; f < cfg.mem_faults_per_sweep; ++f) {
    uint64_t bit = injector->NextDraw(/*stream=*/8) % (total_bytes * 8);
    size_t t = 0;
    while (bit >= static_cast<uint64_t>(targets[t].len) * 8) {
      bit -= static_cast<uint64_t>(targets[t].len) * 8;
      ++t;
    }
    const uint64_t span_bits = static_cast<uint64_t>(targets[t].len) * 8;
    bool changed = false;
    for (int b = 0; b < cfg.mem_bits_per_fault; ++b) {
      // Multi-bit faults stay inside the struck allocation (a real burst
      // error never crosses a cudaMalloc boundary).
      uint64_t pos = (bit + b) % span_bits;
      char* byte = targets[t].bytes + pos / 8;
      const char mask = static_cast<char>(1u << (pos % 8));
      const char old = *byte;
      char corrupted;
      if (cfg.mem_stuck_at < 0) {
        corrupted = static_cast<char>(old ^ mask);
      } else if (cfg.mem_stuck_at == 0) {
        corrupted = static_cast<char>(old & ~mask);
      } else {
        corrupted = static_cast<char>(old | mask);
      }
      if (corrupted != old) {
        *byte = corrupted;
        changed = true;
      }
    }
    injector->CountMemoryFault(changed);
    ++report.faults_seen;
    if (changed) ++report.faults_injected;
  }
  if (injector->OnKillPoint(kSweepKillPointNames[1])) report.killed = true;
  return report;
}

size_t DeviceArena::live_allocations() const {
  common::MutexLock lock(mu_);
  return live_.size();
}

uint64_t DeviceArena::invalid_frees() const {
  common::MutexLock lock(mu_);
  return invalid_frees_;
}

void DeviceArena::ResetPeak() {
  common::MutexLock lock(mu_);
  peak_bytes_ = used_bytes_;
}

}  // namespace gpusim
}  // namespace dycuckoo
