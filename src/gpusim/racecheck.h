// RaceCheck: a compute-sanitizer-style dynamic analysis for simulated
// device code.
//
// Real deployments run `compute-sanitizer --tool racecheck/memcheck` over
// their kernels; the gpusim substrate gets the equivalent here, as an
// opt-in layer with two halves:
//
//  * Memory checking (shadow_memory.h): every DeviceArena allocation is
//    registered with redzones and freed blocks are quarantined, so any
//    instrumented access that lands out of bounds or on freed storage is
//    reported with the owning tag and byte offset.
//
//  * Race checking: an Eraser-style lockset check backed by vector-clock
//    happens-before.  The unit of execution is the *warp* (a warp's 32
//    lanes run lockstep on one host thread and can never race with each
//    other — the warp-lockstep exemption; Ballot/Shfl are therefore
//    intra-warp sync points and free of cross-warp effects).  Plain
//    stores routed through gpusim::Store are checked: two stores to the
//    same word from different warps of the same launch race unless they
//    share a bucket lock or are ordered by a synchronization chain
//    (atomics in atomics.h and BucketLock acquire/release carry
//    vector-clock edges; each kernel launch is a fork/join barrier, so
//    accesses from different launches never race).  Writes with a
//    documented last-writer-wins contract go through gpusim::StoreRacy:
//    they update the shadow state but are never reported.
//
// Reports are deterministic: findings are keyed by logical coordinates
// (kind, owning tag, byte offset, access size, first launch ordinal) —
// never raw addresses or warp schedules — deduplicated, sorted, and
// digested FNV-1a like durability::RecoveryReport, so a CI failure is a
// reproducible artifact.
//
// Zero cost when disabled: every accessor and hook guards on one relaxed
// atomic load of the installed-checker pointer.
//
// Enabling:
//   * per test: `ScopedRaceCheck scoped;` (innermost checker wins, like
//     ScopedFaultInjection);
//   * per grid: `Grid grid(GridOptions{.racecheck = true});` — installed
//     for the grid's lifetime;
//   * whole process: DYCUCKOO_RACECHECK=1 in the environment — a session
//     is installed before main() and, at exit, prints its report (also
//     written to $DYCUCKOO_RACECHECK_REPORT if set) and terminates with
//     status 66 when any finding survived, which is how the CI racecheck
//     job fails the build.

#ifndef DYCUCKOO_GPUSIM_RACECHECK_H_
#define DYCUCKOO_GPUSIM_RACECHECK_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/shadow_memory.h"

namespace dycuckoo {
namespace gpusim {

/// Knobs for one checking session.  Defaults match the CI job.
struct RaceCheckConfig {
  /// Guard bytes placed on each side of every arena allocation.
  size_t redzone_bytes = 64;

  /// Freed-block quarantine budget (bytes of malloc'd storage kept
  /// unreusable so stale pointers classify as use-after-free).
  size_t quarantine_bytes = 8ull << 20;

  /// Stop recording new distinct findings past this many (the digest
  /// would be unstable if the cap truncated a sorted set, so the cap
  /// applies to the dedup map, not the report).
  size_t max_findings = 1024;

  /// Also report checked *loads* that observe an unsynchronized write
  /// from another warp.  Off by default: table slots are CUDA-style
  /// word-atomics and lock-free readers are part of the design; turning
  /// this on is for auditing new kernels, not CI.
  bool track_reads = false;
};

enum class FindingKind : int {
  kWriteWriteRace = 0,  // two unsynchronized checked stores, same word
  kReadWriteRace = 1,   // checked load vs unsynchronized store (opt-in)
  kOutOfBounds = 2,     // access inside a redzone
  kUseAfterFree = 3,    // access inside a quarantined (freed) block
  kDoubleFree = 4,      // Free() of an already-freed arena pointer
  kInvalidFree = 5,     // Free() of a pointer the arena never handed out
};

const char* FindingKindName(FindingKind kind);

/// One deduplicated defect, in logical (address-free) coordinates.
struct RaceFinding {
  FindingKind kind = FindingKind::kWriteWriteRace;
  /// Owning allocation's tag; "<untracked>" when the word is not arena
  /// memory, "<unknown>" for an invalid free.
  std::string tag;
  /// Byte offset from the owner's user base (see AccessInfo::offset).
  int64_t offset = 0;
  /// Access width in bytes (0 for free-path findings).
  uint32_t access_bytes = 0;
  /// Launch ordinal (1-based) of the first occurrence; 0 = host code
  /// outside any launch.
  uint64_t launch = 0;
  /// Human detail (e.g. the warp pair first caught racing).  Excluded
  /// from the digest: which pair trips first is schedule-dependent.
  std::string detail;
};

/// Snapshot of a checking session.  Deterministic for a deterministic
/// workload; compare sessions with Digest().
struct RaceReport {
  std::vector<RaceFinding> findings;  // sorted, deduplicated
  uint64_t launches = 0;
  uint64_t checked_loads = 0;
  uint64_t checked_stores = 0;
  uint64_t sync_events = 0;
  uint64_t warp_syncs = 0;

  bool clean() const { return findings.empty(); }

  /// FNV-1a over the sorted findings' stable keys (kind, tag, offset,
  /// access size, launch).  Counters are excluded: retry loops make
  /// access counts schedule-dependent even when the findings are not.
  uint64_t Digest() const;

  std::string ToString() const;
};

/// \brief One checking session.  Install at most one at a time (Active);
/// all hooks are no-ops unless routed through the installed instance.
class RaceCheck {
 public:
  explicit RaceCheck(const RaceCheckConfig& config = RaceCheckConfig());
  ~RaceCheck();

  RaceCheck(const RaceCheck&) = delete;
  RaceCheck& operator=(const RaceCheck&) = delete;

  /// The installed checker, or nullptr.  One relaxed-ish atomic load —
  /// this is the only cost instrumentation pays when checking is off.
  static RaceCheck* Active() {
    return active_.load(std::memory_order_acquire);
  }

  /// Installs `checker` (nullptr allowed) and returns the previous one.
  /// Prefer ScopedRaceCheck; Grid uses this for GridOptions::racecheck.
  static RaceCheck* Install(RaceCheck* checker);

  const RaceCheckConfig& config() const { return config_; }
  ShadowMemory& shadow() { return shadow_; }

  /// Sorted, deduplicated, digest-stable snapshot.
  RaceReport Report() const;

  // --- Grid hooks ----------------------------------------------------------
  void OnLaunchBegin(uint64_t num_warps);
  void OnLaunchEnd();
  void OnWarpBegin(uint64_t warp_id);
  void OnWarpEnd();
  /// Ballot/Shfl: lanes of one warp are lockstep, so this is semantically
  /// a no-op for cross-warp state; it exists so the report can show that
  /// warp-sync points were exercised.
  void OnWarpSync();

  // --- Synchronization hooks (atomics.h) -----------------------------------
  /// Lockset maintenance around BucketLock.  Vector-clock edges flow
  /// through the lock word's atomic ops, not through these.
  void OnLockAcquire(const void* lock);
  void OnLockRelease(const void* lock);
  /// Called *before* an atomic RMW: publishes the warp's clock to the
  /// word's sync state (release half).
  void OnAtomicRelease(const void* addr);
  /// Called *after* an atomic RMW: joins the word's sync state into the
  /// warp's clock (acquire half), bounds-checks the word, and marks it
  /// atomically-written so later plain stores are judged against the
  /// atomic, not a stale plain write.
  void OnAtomicAcquire(const void* addr, uint32_t bytes);

  // --- Memory hooks (gpusim::Load / Store below) ---------------------------
  void OnLoad(const void* addr, uint32_t bytes);
  void OnStore(const void* addr, uint32_t bytes, bool racy_ok);
  /// One classification for a multi-word range (bucket row snapshots);
  /// participates in bounds/use-after-free checking only.
  void OnRangeLoad(const void* addr, size_t bytes);

  // --- Arena hooks ---------------------------------------------------------
  void OnArenaAllocate(const void* user, size_t user_bytes, void* block,
                       size_t block_bytes, const std::string& tag);
  /// True when the checker quarantined (took ownership of) `block`.
  bool OnArenaFree(const void* user, void* block);
  /// Free() of a pointer with no live allocation: `double_free` when the
  /// shadow knows it was freed (original tag supplied), else invalid.
  void OnBadFree(bool double_free, const std::string& original_tag);

 private:
  struct WarpContext;  // per-(worker thread, warp) analysis state
  struct State;        // sharded shadow-word / sync-object / finding maps

  static constexpr uint64_t kHostThread = ~0ull;

  WarpContext* CurrentWarp();
  void CheckAccessClass(const void* addr, uint32_t bytes);
  void RecordFinding(FindingKind kind, const std::string& tag, int64_t offset,
                     uint32_t access_bytes, const std::string& detail);

  static std::atomic<RaceCheck*> active_;
  static thread_local WarpContext tls_warp_;

  const RaceCheckConfig config_;
  ShadowMemory shadow_;
  std::unique_ptr<State> state_;

  // Epoch advances at every launch begin AND end, so host-side accesses
  // between launches live in their own epoch and never pair with
  // in-launch stores.
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> launch_ordinal_{0};  // 1-based; 0 = outside a launch

  std::atomic<uint64_t> launches_{0};
  std::atomic<uint64_t> checked_loads_{0};
  std::atomic<uint64_t> checked_stores_{0};
  std::atomic<uint64_t> sync_events_{0};
  std::atomic<uint64_t> warp_syncs_{0};
};

/// \brief RAII guard: installs a RaceCheck for its lifetime.  Nesting is
/// supported; only the innermost checker observes events (mirroring
/// ScopedFaultInjection).
class ScopedRaceCheck {
 public:
  explicit ScopedRaceCheck(const RaceCheckConfig& config = RaceCheckConfig())
      : checker_(config), previous_(RaceCheck::Install(&checker_)) {}
  ~ScopedRaceCheck() { RaceCheck::Install(previous_); }

  ScopedRaceCheck(const ScopedRaceCheck&) = delete;
  ScopedRaceCheck& operator=(const ScopedRaceCheck&) = delete;

  RaceCheck& checker() { return checker_; }

 private:
  RaceCheck checker_;
  RaceCheck* previous_;
};

// --- Instrumented accessors --------------------------------------------------
//
// Device data structures route their plain (relaxed) word traffic through
// these so the checker sees it.  With no checker installed each compiles
// to the raw relaxed operation behind a single atomic load.

/// Checked relaxed load.
template <typename T>
inline T Load(const std::atomic<T>* addr) {
  if (RaceCheck* rc = RaceCheck::Active()) {
    rc->OnLoad(addr, static_cast<uint32_t>(sizeof(T)));
  }
  return addr->load(std::memory_order_relaxed);
}

/// Checked load that preserves acquire ordering (slab-chain next-pointer
/// walks pair with a release publication of the linked slab).
template <typename T>
inline T LoadAcquire(const std::atomic<T>* addr) {
  if (RaceCheck* rc = RaceCheck::Active()) {
    rc->OnLoad(addr, static_cast<uint32_t>(sizeof(T)));
  }
  return addr->load(std::memory_order_acquire);
}

/// Checked relaxed store: flagged when it races with another checked
/// store from a different warp.
template <typename T>
inline void Store(std::atomic<T>* addr, T value) {
  if (RaceCheck* rc = RaceCheck::Active()) {
    rc->OnStore(addr, static_cast<uint32_t>(sizeof(T)), /*racy_ok=*/false);
  }
  addr->store(value, std::memory_order_relaxed);
}

/// Checked store that publishes with release ordering.  Pairs with
/// LoadAcquire on the same word: key-slot publication in the cuckoo
/// buckets stores the value first and releases the key, so a reader that
/// observes the key can never read a torn (key, value) pair.
template <typename T>
inline void StoreRelease(std::atomic<T>* addr, T value) {
  if (RaceCheck* rc = RaceCheck::Active()) {
    rc->OnStore(addr, static_cast<uint32_t>(sizeof(T)), /*racy_ok=*/false);
  }
  addr->store(value, std::memory_order_release);
}

/// Annotated racy store for documented last-writer-wins contracts (e.g.
/// the unlocked duplicate-upsert value write): bounds/use-after-free
/// checked and recorded, but never reported as a race.
template <typename T>
inline void StoreRacy(std::atomic<T>* addr, T value) {
  if (RaceCheck* rc = RaceCheck::Active()) {
    rc->OnStore(addr, static_cast<uint32_t>(sizeof(T)), /*racy_ok=*/true);
  }
  addr->store(value, std::memory_order_relaxed);
}

/// Bounds/use-after-free check for a coalesced multi-word read (bucket
/// row snapshots that memcpy whole rows).
inline void RangeLoadCheck(const void* addr, size_t bytes) {
  if (RaceCheck* rc = RaceCheck::Active()) {
    rc->OnRangeLoad(addr, bytes);
  }
}

}  // namespace gpusim
}  // namespace dycuckoo

#endif  // DYCUCKOO_GPUSIM_RACECHECK_H_
