// CUDA-style atomic operations over std::atomic storage.
//
// Semantics follow the CUDA C Programming Guide exactly (and the paper's
// "Implementation Details" paragraph):
//
//   atomicCAS(address, compare, val): old = *address;
//       *address = (old == compare) ? val : old;  return old;
//   atomicExch(address, val): old = *address; *address = val; return old;
//
// All atomics are optionally instrumented through SimCounters so the bench
// harness can reproduce the paper's Figure 5 (atomic throughput collapse
// under conflicts) and count lock conflicts in the voter scheme.

#ifndef DYCUCKOO_GPUSIM_ATOMICS_H_
#define DYCUCKOO_GPUSIM_ATOMICS_H_

#include <atomic>
#include <cstdint>

#include "gpusim/fault_injector.h"
#include "gpusim/sim_counters.h"

namespace dycuckoo {
namespace gpusim {

/// atomicCAS with CUDA return-old semantics.
inline uint32_t AtomicCas(std::atomic<uint32_t>* address, uint32_t compare,
                          uint32_t val) {
  uint32_t expected = compare;
  bool won =
      address->compare_exchange_strong(expected, val, std::memory_order_acq_rel,
                                       std::memory_order_acquire);
  SimCounters::Get().atomic_cas.fetch_add(1, std::memory_order_relaxed);
  if (!won) {
    SimCounters::Get().atomic_cas_failed.fetch_add(1, std::memory_order_relaxed);
  }
  return won ? compare : expected;
}

/// atomicExch with CUDA return-old semantics.
inline uint32_t AtomicExch(std::atomic<uint32_t>* address, uint32_t val) {
  SimCounters::Get().atomic_exch.fetch_add(1, std::memory_order_relaxed);
  return address->exchange(val, std::memory_order_acq_rel);
}

/// 64-bit atomicCAS (packed KV transactions in the baselines).
inline uint64_t AtomicCas64(std::atomic<uint64_t>* address, uint64_t compare,
                            uint64_t val) {
  uint64_t expected = compare;
  bool won =
      address->compare_exchange_strong(expected, val, std::memory_order_acq_rel,
                                       std::memory_order_acquire);
  SimCounters::Get().atomic_cas.fetch_add(1, std::memory_order_relaxed);
  if (!won) {
    SimCounters::Get().atomic_cas_failed.fetch_add(1, std::memory_order_relaxed);
  }
  return won ? compare : expected;
}

/// 64-bit atomicExch.
inline uint64_t AtomicExch64(std::atomic<uint64_t>* address, uint64_t val) {
  SimCounters::Get().atomic_exch.fetch_add(1, std::memory_order_relaxed);
  return address->exchange(val, std::memory_order_acq_rel);
}

/// atomicAdd (used for size counters and residual-buffer cursors).
inline uint64_t AtomicAdd(std::atomic<uint64_t>* address, uint64_t val) {
  return address->fetch_add(val, std::memory_order_acq_rel);
}

/// \brief Per-bucket spinlock in the exact idiom of the paper:
/// lock with atomicCAS(&lock, 0, 1), unlock with atomicExch(&lock, 0).
class BucketLock {
 public:
  BucketLock() : word_(0) {}

  // Lock words live in arrays that are resized by table maintenance; they are
  // never copied while contended.
  BucketLock(const BucketLock&) : word_(0) {}
  BucketLock& operator=(const BucketLock&) { return *this; }

  /// Single attempt; true iff the lock was acquired.  An installed fault
  /// injector may force a failure report (as if another warp held the
  /// lock) to stress the caller's revote / retry path.
  bool TryLock() {
    if (FaultInjector* injector = FaultInjector::Active()) {
      if (injector->OnTryLock()) {
        SimCounters::Get().lock_conflicts.fetch_add(1,
                                                    std::memory_order_relaxed);
        return false;
      }
    }
    return AtomicCas(&word_, 0, 1) == 0;
  }

  void Unlock() { AtomicExch(&word_, 0); }

  bool IsLocked() const {
    return word_.load(std::memory_order_acquire) != 0;
  }

 private:
  std::atomic<uint32_t> word_;
};

}  // namespace gpusim
}  // namespace dycuckoo

#endif  // DYCUCKOO_GPUSIM_ATOMICS_H_
