// CUDA-style atomic operations over std::atomic storage.
//
// Semantics follow the CUDA C Programming Guide exactly (and the paper's
// "Implementation Details" paragraph):
//
//   atomicCAS(address, compare, val): old = *address;
//       *address = (old == compare) ? val : old;  return old;
//   atomicExch(address, val): old = *address; *address = val; return old;
//
// All atomics are optionally instrumented through SimCounters so the bench
// harness can reproduce the paper's Figure 5 (atomic throughput collapse
// under conflicts) and count lock conflicts in the voter scheme.
//
// When a RaceCheck session is installed, every atomic is additionally a
// synchronization event: the release half publishes the warp's vector
// clock to the word *before* the hardware op, the acquire half joins the
// word's clock back *after* it, so a real release/acquire pair always
// yields a happens-before edge (a failed CAS over-approximates — it still
// publishes — which can only suppress reports, never invent them).

#ifndef DYCUCKOO_GPUSIM_ATOMICS_H_
#define DYCUCKOO_GPUSIM_ATOMICS_H_

#include <atomic>
#include <cstdint>

#include "gpusim/fault_injector.h"
#include "gpusim/racecheck.h"
#include "gpusim/sim_counters.h"

namespace dycuckoo {
namespace gpusim {

/// atomicCAS with CUDA return-old semantics.
inline uint32_t AtomicCas(std::atomic<uint32_t>* address, uint32_t compare,
                          uint32_t val) {
  RaceCheck* rc = RaceCheck::Active();
  if (rc != nullptr) rc->OnAtomicRelease(address);
  uint32_t expected = compare;
  bool won =
      address->compare_exchange_strong(expected, val, std::memory_order_acq_rel,
                                       std::memory_order_acquire);
  SimCounters::Get().atomic_cas.fetch_add(1, std::memory_order_relaxed);
  if (!won) {
    SimCounters::Get().atomic_cas_failed.fetch_add(1, std::memory_order_relaxed);
  }
  if (rc != nullptr) rc->OnAtomicAcquire(address, sizeof(uint32_t));
  return won ? compare : expected;
}

/// atomicExch with CUDA return-old semantics.
inline uint32_t AtomicExch(std::atomic<uint32_t>* address, uint32_t val) {
  RaceCheck* rc = RaceCheck::Active();
  if (rc != nullptr) rc->OnAtomicRelease(address);
  SimCounters::Get().atomic_exch.fetch_add(1, std::memory_order_relaxed);
  uint32_t old = address->exchange(val, std::memory_order_acq_rel);
  if (rc != nullptr) rc->OnAtomicAcquire(address, sizeof(uint32_t));
  return old;
}

/// 64-bit atomicCAS (packed KV transactions in the baselines).
inline uint64_t AtomicCas64(std::atomic<uint64_t>* address, uint64_t compare,
                            uint64_t val) {
  RaceCheck* rc = RaceCheck::Active();
  if (rc != nullptr) rc->OnAtomicRelease(address);
  uint64_t expected = compare;
  bool won =
      address->compare_exchange_strong(expected, val, std::memory_order_acq_rel,
                                       std::memory_order_acquire);
  SimCounters::Get().atomic_cas.fetch_add(1, std::memory_order_relaxed);
  if (!won) {
    SimCounters::Get().atomic_cas_failed.fetch_add(1, std::memory_order_relaxed);
  }
  if (rc != nullptr) rc->OnAtomicAcquire(address, sizeof(uint64_t));
  return won ? compare : expected;
}

/// 64-bit atomicExch.
inline uint64_t AtomicExch64(std::atomic<uint64_t>* address, uint64_t val) {
  RaceCheck* rc = RaceCheck::Active();
  if (rc != nullptr) rc->OnAtomicRelease(address);
  SimCounters::Get().atomic_exch.fetch_add(1, std::memory_order_relaxed);
  uint64_t old = address->exchange(val, std::memory_order_acq_rel);
  if (rc != nullptr) rc->OnAtomicAcquire(address, sizeof(uint64_t));
  return old;
}

/// atomicAdd (used for size counters and residual-buffer cursors).
inline uint64_t AtomicAdd(std::atomic<uint64_t>* address, uint64_t val) {
  RaceCheck* rc = RaceCheck::Active();
  if (rc != nullptr) rc->OnAtomicRelease(address);
  uint64_t old = address->fetch_add(val, std::memory_order_acq_rel);
  if (rc != nullptr) rc->OnAtomicAcquire(address, sizeof(uint64_t));
  return old;
}

/// Generic success/failure CAS over any word-sized slot type (key slots in
/// the cuckoo table, stash entries).  Same counters and synchronization
/// hooks as the CUDA-shaped wrappers above.
template <typename T>
inline bool AtomicCasWord(std::atomic<T>* address, T expected, T desired) {
  static_assert(sizeof(T) <= 8, "CAS operand wider than a device word");
  RaceCheck* rc = RaceCheck::Active();
  if (rc != nullptr) rc->OnAtomicRelease(address);
  bool won = address->compare_exchange_strong(expected, desired,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire);
  SimCounters::Get().atomic_cas.fetch_add(1, std::memory_order_relaxed);
  if (!won) {
    SimCounters::Get().atomic_cas_failed.fetch_add(1, std::memory_order_relaxed);
  }
  if (rc != nullptr) rc->OnAtomicAcquire(address, sizeof(T));
  return won;
}

/// Generic atomicExch over any word-sized slot type, returning the old
/// value.  The integrity-tag maintenance in the cuckoo table depends on
/// this returning the *true* prior word: the tag delta applied for a store
/// is FK(old) ^ FK(new), and only an atomic exchange observes `old`
/// without a window in which another writer's store could be lost from
/// the delta chain.
template <typename T>
inline T AtomicExchWord(std::atomic<T>* address, T val) {
  static_assert(sizeof(T) <= 8, "exchange operand wider than a device word");
  RaceCheck* rc = RaceCheck::Active();
  if (rc != nullptr) rc->OnAtomicRelease(address);
  SimCounters::Get().atomic_exch.fetch_add(1, std::memory_order_relaxed);
  T old = address->exchange(val, std::memory_order_acq_rel);
  if (rc != nullptr) rc->OnAtomicAcquire(address, sizeof(T));
  return old;
}

/// \brief Per-bucket spinlock in the exact idiom of the paper:
/// lock with atomicCAS(&lock, 0, 1), unlock with atomicExch(&lock, 0).
class BucketLock {
 public:
  BucketLock() : word_(0) {}

  // Lock words live in arrays that are resized by table maintenance; they are
  // never copied while contended.
  BucketLock(const BucketLock&) : word_(0) {}
  BucketLock& operator=(const BucketLock&) { return *this; }

  /// Single attempt; true iff the lock was acquired.  An installed fault
  /// injector may force a failure report (as if another warp held the
  /// lock) to stress the caller's revote / retry path.
  bool TryLock() {
    if (FaultInjector* injector = FaultInjector::Active()) {
      if (injector->OnTryLock()) {
        SimCounters::Get().lock_conflicts.fetch_add(1,
                                                    std::memory_order_relaxed);
        return false;
      }
    }
    bool acquired = AtomicCas(&word_, 0, 1) == 0;
    if (acquired) {
      // Lockset membership only; the happens-before edge already flowed
      // through the CAS on word_ above.
      if (RaceCheck* rc = RaceCheck::Active()) rc->OnLockAcquire(this);
    }
    return acquired;
  }

  void Unlock() {
    // Leave the lockset before the exchange publishes the lock as free.
    if (RaceCheck* rc = RaceCheck::Active()) rc->OnLockRelease(this);
    AtomicExch(&word_, 0);
  }

  bool IsLocked() const {
    return word_.load(std::memory_order_acquire) != 0;
  }

 private:
  std::atomic<uint32_t> word_;
};

}  // namespace gpusim
}  // namespace dycuckoo

#endif  // DYCUCKOO_GPUSIM_ATOMICS_H_
