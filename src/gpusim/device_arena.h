// Device-memory arena with byte-level accounting.
//
// Stands in for cudaMalloc/cudaFree on the simulated device.  The arena has a
// configurable capacity (default: the 8 GiB of the paper's GTX 1080) and
// tracks current and peak usage per tag, which is how the harness reproduces
// the paper's memory-saving comparison (Figure 11, "up to 4x memory saved"):
// each table implementation routes every allocation through the arena.
//
// SlabHash's dedicated pooled allocator is modeled on top of this: the pool
// reserves its full extent from the arena up front, exactly the behaviour the
// paper criticizes ("the dedicated allocator still needs to reserve a large
// piece of memory in advance").

#ifndef DYCUCKOO_GPUSIM_DEVICE_ARENA_H_
#define DYCUCKOO_GPUSIM_DEVICE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <new>
#include <string>
#include <type_traits>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dycuckoo {
namespace gpusim {

/// \brief Accounting allocator standing in for the GPU device memory.
///
/// Thread-safe.  Allocation returns ordinary host memory but debits the
/// arena budget; exceeding capacity fails like cudaMalloc would.
class DeviceArena {
 public:
  /// \param capacity_bytes total device memory; 0 means unbounded.
  explicit DeviceArena(uint64_t capacity_bytes = kDefaultCapacity);
  ~DeviceArena();

  DeviceArena(const DeviceArena&) = delete;
  DeviceArena& operator=(const DeviceArena&) = delete;

  /// 8 GiB, the GTX 1080 used in the paper.
  static constexpr uint64_t kDefaultCapacity = 8ULL << 30;

  /// Process-global arena used when a table is not given its own.
  static DeviceArena* Global();

  /// Allocates `bytes` tagged with `tag` (for per-structure reporting).
  /// Returns nullptr when the budget is exhausted.  Under an installed
  /// RaceCheck session the block is surrounded by redzones and its extent
  /// registered in shadow memory.
  void* Allocate(size_t bytes, const std::string& tag);

  /// Frees a pointer previously returned by Allocate.  A pointer the
  /// arena does not own (never allocated, or already freed) is reported —
  /// deterministically, without touching the accounting — instead of
  /// crashing or corrupting the budget; see invalid_frees().
  void Free(void* ptr);

  /// Typed helper: allocates `count` value-initialized T.  T must be
  /// trivially destructible (device structures are POD-like by design).
  /// Returns nullptr when `count * sizeof(T)` would overflow size_t (a
  /// wrapped product would silently allocate a tiny block).
  template <typename T>
  T* AllocateArray(size_t count, const std::string& tag) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena arrays must be trivially destructible");
    size_t total_bytes = 0;
    if (__builtin_mul_overflow(count, sizeof(T), &total_bytes)) {
      return nullptr;
    }
    void* raw = Allocate(total_bytes, tag);
    if (raw == nullptr) return nullptr;
    T* typed = static_cast<T*>(raw);
    for (size_t i = 0; i < count; ++i) new (typed + i) T();
    return typed;
  }

  /// Frees an array from AllocateArray.
  template <typename T>
  void FreeArray(T* ptr) {
    Free(static_cast<void*>(ptr));
  }

  /// Kill points the memory-fault sweep crosses, in crossing order.  The
  /// registry exists so docs/robustness.md and the injector cannot drift
  /// (tests/test_kill_points.cc asserts set equality in both directions);
  /// InjectMemoryFaults() references these constants, never raw literals.
  static constexpr const char* kSweepKillPointNames[] = {
      "mem.sweep.before",  // sweep about to plant faults; memory untouched
      "mem.sweep.after",   // faults planted; process dies before any scrub
  };
  static constexpr size_t kNumSweepKillPoints = 2;

  /// Outcome of one InjectMemoryFaults() sweep.
  struct MemorySweepReport {
    uint64_t faults_seen = 0;      // faults planned by the injector
    uint64_t faults_injected = 0;  // faults that changed at least one byte
    uint64_t bytes_targeted = 0;   // live bytes inside the tag filter
    bool killed = false;           // a mem.sweep.* kill point fired
  };

  /// Plants the active FaultInjector's configured device-memory faults
  /// (seeded bit flips or stuck-at faults) directly into live allocations
  /// whose tag matches the injector's mem_tag_filter.  Deterministic: the
  /// sweep orders allocations by their monotonic sequence number — the
  /// pointer-keyed live map iterates in address order, which varies run to
  /// run — so a given (seed, allocation history) always corrupts the same
  /// bits.  Host-side maintenance only: callers must guarantee no kernels
  /// are in flight, exactly like the scrubber's contract.  Crosses the
  /// kill points "mem.sweep.before" / "mem.sweep.after".
  MemorySweepReport InjectMemoryFaults();

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t used_bytes() const;
  uint64_t peak_bytes() const;
  /// Bytes currently held under tags containing `tag` as a substring (a
  /// structure that splits its storage into region-suffixed tags — e.g.
  /// "t/kv-keys", "t/locks" — still reports in full under "t").
  uint64_t used_bytes_for(const std::string& tag) const;

  /// Number of live allocations (for leak checks in tests).
  size_t live_allocations() const;

  /// Frees of pointers the arena did not own (double frees and unknown
  /// pointers) that were reported instead of honored.
  uint64_t invalid_frees() const;

  void ResetPeak();

 private:
  struct Allocation {
    size_t bytes;       // user-visible size (what the budget is charged)
    std::string tag;
    void* block;        // malloc base: == user pointer unless redzoned
    uint64_t seq;       // monotonic allocation order (fault-sweep identity)
  };

  mutable common::Mutex mu_;
  uint64_t capacity_bytes_;  // set once at construction, then read-only
  uint64_t used_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t peak_bytes_ GUARDED_BY(mu_) = 0;
  std::map<void*, Allocation> live_ GUARDED_BY(mu_);
  std::map<std::string, uint64_t> used_by_tag_ GUARDED_BY(mu_);
  uint64_t invalid_frees_ GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
};

}  // namespace gpusim
}  // namespace dycuckoo

#endif  // DYCUCKOO_GPUSIM_DEVICE_ARENA_H_
