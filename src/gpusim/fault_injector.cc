#include "gpusim/fault_injector.h"

#include <algorithm>
#include <string_view>
#include <thread>

#include "common/hash.h"
#include "common/logging.h"

namespace dycuckoo {
namespace gpusim {

std::atomic<FaultInjector*> FaultInjector::active_{nullptr};

namespace {
// Cap forced TryLock failure: the voter loop revotes until the lock is won,
// so certainty-of-failure would livelock the simulated kernel.
constexpr double kMaxTryLockFailProbability = 0.95;
}  // namespace

FaultInjector::FaultInjector(const FaultInjectorConfig& config)
    : config_(config) {
  config_.trylock_fail_probability = std::clamp(
      config_.trylock_fail_probability, 0.0, kMaxTryLockFailProbability);
  config_.alloc_fail_probability =
      std::clamp(config_.alloc_fail_probability, 0.0, 1.0);
  config_.warp_yield_probability =
      std::clamp(config_.warp_yield_probability, 0.0, 1.0);
  config_.io_flush_fail_probability =
      std::clamp(config_.io_flush_fail_probability, 0.0, 1.0);
  config_.mem_faults_per_sweep = std::max(config_.mem_faults_per_sweep, 0);
  config_.mem_bits_per_fault = std::max(config_.mem_bits_per_fault, 1);
  config_.mem_stuck_at = std::clamp(config_.mem_stuck_at, -1, 1);
}

double FaultInjector::NextUniform(uint64_t stream) {
  uint64_t event = events_.fetch_add(1, std::memory_order_relaxed);
  uint64_t bits = Mix64(config_.seed ^ Mix64(stream) ^ event);
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool FaultInjector::OnAllocation(size_t bytes, const std::string& tag) {
  if (!config_.alloc_tag_filter.empty() &&
      tag.find(config_.alloc_tag_filter) == std::string::npos) {
    return false;
  }
  uint64_t index = allocs_seen_.fetch_add(1, std::memory_order_relaxed);
  bool fail = false;
  if (config_.fail_nth_alloc >= 0 &&
      index == static_cast<uint64_t>(config_.fail_nth_alloc)) {
    fail = true;
  }
  if (config_.fail_after_allocs >= 0 &&
      index >= static_cast<uint64_t>(config_.fail_after_allocs)) {
    fail = true;
  }
  if (config_.fail_every_k_allocs > 0 &&
      (index + 1) % config_.fail_every_k_allocs == 0) {
    fail = true;
  }
  if (!fail && config_.alloc_fail_probability > 0.0 &&
      NextUniform(/*stream=*/1) < config_.alloc_fail_probability) {
    fail = true;
  }
  if (fail) {
    allocs_failed_.fetch_add(1, std::memory_order_relaxed);
    DYCUCKOO_LOG(Debug) << "fault injector: failing allocation #" << index
                        << " (" << bytes << " bytes, tag '" << tag << "')";
  }
  return fail;
}

void FaultInjector::OnWarpStart(uint64_t warp_id) {
  if (config_.warp_yield_probability <= 0.0) return;
  if (NextUniform(/*stream=*/2 + warp_id) < config_.warp_yield_probability) {
    warps_delayed_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
}

bool FaultInjector::OnTryLock() {
  if (config_.trylock_fail_probability <= 0.0) return false;
  if (NextUniform(/*stream=*/3) < config_.trylock_fail_probability) {
    trylock_failures_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

int FaultInjector::ClampEvictionChain(int configured_bound) const {
  if (config_.max_eviction_chain < 0) return configured_bound;
  return std::min(configured_bound, config_.max_eviction_chain);
}

IoWriteFault FaultInjector::OnIoFlush(const char* scope) {
  if (!config_.io_scope_filter.empty()) {
    // A non-matching flush is invisible to this campaign: it neither
    // faults nor advances the Nth-matching-flush counter, so "fault the
    // 3rd flush of shard k" is independent of other shards' traffic.
    if (scope == nullptr ||
        std::string_view(scope).find(config_.io_scope_filter) ==
            std::string_view::npos) {
      return IoWriteFault::kNone;
    }
  }
  uint64_t index = io_flushes_seen_.fetch_add(1, std::memory_order_relaxed);
  IoWriteFault fault = IoWriteFault::kNone;
  // Crash-style faults take precedence over a clean failure at the same
  // index: a torn write subsumes "the fsync also failed".
  if (config_.io_torn_write_at_flush >= 0 &&
      index == static_cast<uint64_t>(config_.io_torn_write_at_flush)) {
    fault = IoWriteFault::kTornWrite;
  } else if (config_.io_short_write_at_flush >= 0 &&
             index == static_cast<uint64_t>(config_.io_short_write_at_flush)) {
    fault = IoWriteFault::kShortWrite;
  } else if (config_.io_bit_flip_at_flush >= 0 &&
             index == static_cast<uint64_t>(config_.io_bit_flip_at_flush)) {
    fault = IoWriteFault::kBitFlip;
  } else if (config_.io_fail_nth_flush >= 0 &&
             index == static_cast<uint64_t>(config_.io_fail_nth_flush)) {
    fault = IoWriteFault::kFailCleanly;
  } else if (config_.io_flush_fail_probability > 0.0 &&
             NextUniform(/*stream=*/4) < config_.io_flush_fail_probability) {
    fault = IoWriteFault::kFailCleanly;
  }
  if (fault != IoWriteFault::kNone) {
    io_faults_injected_.fetch_add(1, std::memory_order_relaxed);
    DYCUCKOO_LOG(Debug) << "fault injector: I/O fault "
                        << static_cast<int>(fault) << " at flush #" << index;
  }
  return fault;
}

bool FaultInjector::OnKillPoint(const char* name) {
  if (config_.kill_at_point < 0) return false;
  if (!config_.kill_point_filter.empty() &&
      std::string(name).find(config_.kill_point_filter) ==
          std::string::npos) {
    return false;
  }
  uint64_t index = kill_points_seen_.fetch_add(1, std::memory_order_relaxed);
  if (index != static_cast<uint64_t>(config_.kill_at_point)) return false;
  kill_points_fired_.fetch_add(1, std::memory_order_relaxed);
  DYCUCKOO_LOG(Debug) << "fault injector: kill point '" << name
                      << "' fired at crossing #" << index;
  return true;
}

uint64_t FaultInjector::NextDraw(uint64_t stream) {
  uint64_t event = events_.fetch_add(1, std::memory_order_relaxed);
  return Mix64(config_.seed ^ Mix64(stream) ^ event);
}

ScopedFaultInjection::ScopedFaultInjection(const FaultInjectorConfig& config)
    : injector_(config) {
  previous_ = FaultInjector::active_.exchange(&injector_,
                                              std::memory_order_acq_rel);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultInjector::active_.store(previous_, std::memory_order_release);
}

}  // namespace gpusim
}  // namespace dycuckoo
