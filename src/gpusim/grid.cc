#include "gpusim/grid.h"

#include <algorithm>

#include "common/logging.h"
#include "gpusim/fault_injector.h"
#include "gpusim/virtual_clock.h"

namespace dycuckoo {
namespace gpusim {

namespace {
unsigned DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  // Keep several workers even on tiny hosts so warp interleavings (and the
  // lock-conflict behaviour the paper studies) actually occur.
  return std::max(4u, std::min(hw, 16u));
}
}  // namespace

Grid::Grid(unsigned num_threads) : Grid(GridOptions{num_threads, false, {}}) {}

Grid::Grid(const GridOptions& options) {
  if (options.racecheck) {
    own_checker_ = std::make_unique<RaceCheck>(options.racecheck_config);
    previous_checker_ = RaceCheck::Install(own_checker_.get());
  }
  unsigned num_threads = options.num_threads;
  if (num_threads == 0) num_threads = DefaultThreads();
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Grid::~Grid() {
  {
    common::MutexLock lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
  if (own_checker_ != nullptr &&
      RaceCheck::Active() == own_checker_.get()) {
    RaceCheck::Install(previous_checker_);
  }
}

Grid* Grid::Global() {
  static Grid* grid = new Grid();  // leaked intentionally: outlives statics
  return grid;
}

void Grid::LaunchWarps(uint64_t num_warps,
                       const std::function<void(uint64_t)>& body) {
  if (num_warps == 0) return;
  // Launches are serialized like kernels on one CUDA stream; the mutex
  // makes concurrent host threads (multiple tables sharing a grid) queue
  // instead of crash.
  common::MutexLock launch_lock(launch_mu_);
  Launch launch;
  launch.num_warps = num_warps;
  launch.body = &body;
  // Capture the checker once so every warp of this launch reports to the
  // same session even if a Scoped checker is swapped mid-flight.
  launch.race_check = RaceCheck::Active();
  if (launch.race_check != nullptr) {
    launch.race_check->OnLaunchBegin(num_warps);
  }

  {
    common::MutexLock lock(mu_);
    DYCUCKOO_CHECK(current_ == nullptr);
    current_ = &launch;
    ++launch_epoch_;
  }
  work_cv_.notify_all();

  {
    std::unique_lock<common::Mutex> lock(mu_);
    // Wait until every warp ran AND every worker has left the launch —
    // `launch` lives on this stack frame, so a straggler still touching
    // launch->next after the last warp completes must hold us here.
    done_cv_.wait(lock, [&] {
      return launch.done.load(std::memory_order_acquire) == num_warps &&
             launch.workers_inside == 0;
    });
    current_ = nullptr;
  }
  if (launch.race_check != nullptr) {
    launch.race_check->OnLaunchEnd();
  }
  // Virtual time: one tick per warp, charged on the launching thread after
  // the launch drains so the advance is deterministic regardless of how the
  // workers interleaved.
  if (VirtualClock* clock = VirtualClock::Active()) {
    clock->OnLaunchCompleted(num_warps);
  }
}

void Grid::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    Launch* launch = nullptr;
    {
      std::unique_lock<common::Mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutting_down_ ||
               (current_ != nullptr && launch_epoch_ != seen_epoch);
      });
      if (shutting_down_) return;
      launch = current_;
      seen_epoch = launch_epoch_;
      ++launch->workers_inside;
    }

    const uint64_t total = launch->num_warps;
    // Dynamic chunked self-scheduling: large enough chunks to amortize the
    // atomic claim, small enough to balance skewed warp costs.
    const uint64_t chunk =
        std::max<uint64_t>(1, total / (workers_.size() * 16));
    uint64_t processed = 0;
    for (;;) {
      uint64_t begin = launch->next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= total) break;
      uint64_t end = std::min(begin + chunk, total);
      FaultInjector* injector = FaultInjector::Active();
      RaceCheck* rc = launch->race_check;
      for (uint64_t w = begin; w < end; ++w) {
        // Scheduling perturbation: a real GPU gives no ordering guarantee
        // between warps, so an injector may yield here to shuffle
        // interleavings and widen race windows on locks and erase CASes.
        if (injector != nullptr) injector->OnWarpStart(w);
        if (rc != nullptr) rc->OnWarpBegin(w);
        (*launch->body)(w);
        if (rc != nullptr) rc->OnWarpEnd();
      }
      processed += end - begin;
    }
    if (processed > 0) {
      launch->done.fetch_add(processed, std::memory_order_acq_rel);
    }
    {
      common::MutexLock lock(mu_);
      --launch->workers_inside;
      if (launch->workers_inside == 0 &&
          launch->done.load(std::memory_order_acquire) == total) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace gpusim
}  // namespace dycuckoo
