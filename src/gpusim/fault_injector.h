// Deterministic fault injection for the gpusim substrate.
//
// Real GPU deployments fail in ways a happy-path test never exercises:
// cudaMalloc returns cudaErrorMemoryAllocation mid-resize, warps are
// scheduled in adversarial orders, and lock acquisition loses far more
// often under contention than a single-threaded trace suggests.  The
// FaultInjector lets tests reach every one of those branches on demand,
// reproducibly: all decisions derive from Mix64(seed ^ event-counter), so
// a given (config, op sequence) always injects the same faults.
//
// The injector is installed process-globally (mirroring SimCounters) so
// the deepest substrate primitives — BucketLock::TryLock has no context
// pointer — can consult it without plumbing.  Use the RAII helper:
//
//   gpusim::FaultInjectorConfig cfg;
//   cfg.seed = 42;
//   cfg.alloc_fail_probability = 0.05;
//   cfg.alloc_tag_filter = "dycuckoo";
//   gpusim::ScopedFaultInjection scoped(cfg);
//   ... everything on this process now sees injected faults ...
//
// Hook points (all no-ops when no injector is installed):
//   - DeviceArena::Allocate     -> OnAllocation (fail Nth / every-kth /
//                                  probabilistic / per-tag)
//   - Grid worker loop          -> OnWarpStart (std::this_thread::yield to
//                                  widen race windows)
//   - BucketLock::TryLock       -> OnTryLock (forced acquisition failure)
//   - DynamicTable voter loop   -> ClampEvictionChain (truncate chains)

#ifndef DYCUCKOO_GPUSIM_FAULT_INJECTOR_H_
#define DYCUCKOO_GPUSIM_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace dycuckoo {
namespace gpusim {

/// Configuration for one fault-injection campaign.  All knobs default to
/// "off"; any subset can be combined.
struct FaultInjectorConfig {
  /// Seed for every probabilistic decision.  Two runs with the same seed
  /// and the same event sequence inject identical faults.
  uint64_t seed = 0;

  // --- Allocation faults (DeviceArena::Allocate) ---------------------------

  /// Fail exactly the Nth matching allocation seen by this injector
  /// (0-based).  -1 disables.
  int64_t fail_nth_alloc = -1;

  /// Fail every matching allocation once `fail_after_allocs` of them have
  /// been observed (i.e. allocations [N, inf) all fail).  -1 disables.
  int64_t fail_after_allocs = -1;

  /// Fail every k-th matching allocation (k, 2k, 3k, ...).  0 disables.
  uint64_t fail_every_k_allocs = 0;

  /// Independently fail each matching allocation with this probability.
  double alloc_fail_probability = 0.0;

  /// Only allocations whose tag contains this substring are candidates for
  /// injected failure.  Empty matches every tag.
  std::string alloc_tag_filter;

  // --- Scheduling perturbation (Grid worker loop) --------------------------

  /// Probability that a worker yields the CPU before running a warp,
  /// shuffling warp interleavings to widen race windows.
  double warp_yield_probability = 0.0;

  // --- Lock faults (BucketLock::TryLock) -----------------------------------

  /// Probability that a TryLock that would have succeeded is forced to
  /// report failure (the CAS is not performed).  Clamped to 0.95: the voter
  /// loop revotes on lock failure, so probability 1.0 would livelock.
  double trylock_fail_probability = 0.0;

  // --- Eviction-chain truncation (DynamicTable voter loop) -----------------

  /// If >= 0, eviction chains are truncated to min(configured bound, this),
  /// forcing the stash / fail-buffer paths at otherwise-healthy fill.
  int max_eviction_chain = -1;

  // --- I/O faults (durability layer: WAL flushes, checkpoint writes) -------
  //
  // Each durable write (a WAL group commit or a checkpoint entry) consults
  // OnIoFlush() once and gets back one fault verdict.  kFailCleanly models
  // an fsync that returns an error with nothing written — retryable.  The
  // other three model a crash mid-write: the caller persists a prefix
  // (short: cut at a record boundary; torn: cut mid-record) or corrupted
  // bytes (bit flip) and then dies without acknowledging anything.

  /// Fail exactly the Nth durable flush cleanly (0-based; nothing written,
  /// error returned, process keeps running).  -1 disables.
  int64_t io_fail_nth_flush = -1;

  /// Independently fail each durable flush cleanly with this probability.
  double io_flush_fail_probability = 0.0;

  /// On the Nth durable flush, persist only a prefix ending at a record
  /// boundary, then crash.  -1 disables.
  int64_t io_short_write_at_flush = -1;

  /// On the Nth durable flush, persist a prefix torn mid-record, then
  /// crash.  -1 disables.
  int64_t io_torn_write_at_flush = -1;

  /// On the Nth durable flush, persist the full write with one bit flipped
  /// in its final record, then crash.  -1 disables.
  int64_t io_bit_flip_at_flush = -1;

  /// Only durable flushes whose scope contains this substring are
  /// candidates for the io_* faults above, and only they advance the
  /// "Nth flush" counter (mirroring alloc_tag_filter).  Writers in a
  /// sharded deployment pass their segment scope (e.g. "shard-00003/"),
  /// so a chaos campaign can fault exactly one shard's WAL / checkpoint
  /// stream while every other shard's I/O proceeds cleanly.  Empty
  /// matches every flush, including unscoped ones.
  std::string io_scope_filter;

  // --- Device-memory faults (DeviceArena::InjectMemoryFaults) --------------
  //
  // Silent data corruption: a host-driven sweep over the arena's live
  // allocations plants seeded bit flips or stuck-at faults directly in the
  // simulated device memory, modelling the DRAM/SRAM upsets a real GPU
  // fleet sees.  Sweeps are deterministic: allocation order (a monotonic
  // sequence number) plus NextDraw(stream=8) fully determine which bytes
  // are hit, so a failing chaos seed replays bit-identically.

  /// Faults planted per InjectMemoryFaults() sweep.  0 disables the sweep
  /// entirely (it returns without touching memory or counters).
  int mem_faults_per_sweep = 0;

  /// Bits affected per fault (consecutive, within one allocation).  1 is a
  /// classic single-event upset; >1 models multi-bit corruption.
  int mem_bits_per_fault = 1;

  /// -1 => flip each targeted bit; 0/1 => force it to that value
  /// (stuck-at-0 / stuck-at-1).  A stuck-at fault whose target already
  /// holds the value is *seen* but not *injected* (no byte changed).
  int mem_stuck_at = -1;

  /// Only allocations whose tag contains this substring are part of the
  /// sweep's target region; non-matching allocations are invisible (they
  /// neither receive faults nor shift the deterministic byte draws),
  /// mirroring alloc_tag_filter / io_scope_filter.  Shard memory tags are
  /// ShardScope-prefixed, so a campaign can corrupt exactly one shard.
  std::string mem_tag_filter;

  // --- Kill points (durability layer: crash-at-step) -----------------------

  /// Crash the process (as seen by the durability layer: everything in
  /// flight is abandoned, only already-durable bytes survive) at the Nth
  /// crossing of a matching kill point (0-based).  -1 disables.
  int64_t kill_at_point = -1;

  /// Only kill points whose name contains this substring count toward
  /// `kill_at_point`.  Empty matches every kill point.
  std::string kill_point_filter;
};

/// Verdict for one durable write, from FaultInjector::OnIoFlush().
enum class IoWriteFault {
  kNone = 0,         // write succeeds in full
  kFailCleanly = 1,  // nothing written, error returned; retryable
  kShortWrite = 2,   // prefix persisted (record boundary), then crash
  kTornWrite = 3,    // prefix persisted (mid-record), then crash
  kBitFlip = 4,      // full write persisted with a flipped bit, then crash
};

/// \brief Seeded deterministic fault source.  Thread-safe; every decision
/// advances an atomic event counter that feeds Mix64, so concurrent warps
/// draw distinct, reproducible-in-aggregate decisions.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorConfig& config);

  /// The installed injector, or nullptr.  Lock-free; called on every
  /// allocation / lock attempt, so keep it a single atomic load.
  static FaultInjector* Active() {
    return active_.load(std::memory_order_acquire);
  }

  /// Consulted by DeviceArena::Allocate.  True => the arena must behave as
  /// if exhausted (return nullptr without allocating).
  bool OnAllocation(size_t bytes, const std::string& tag);

  /// Consulted by Grid workers before each warp body; yields the thread
  /// with `warp_yield_probability`.
  void OnWarpStart(uint64_t warp_id);

  /// Consulted by BucketLock::TryLock.  True => report acquisition failure
  /// without attempting the CAS.
  bool OnTryLock();

  /// Truncates an eviction-chain bound.
  int ClampEvictionChain(int configured_bound) const;

  /// Consulted once per durable write (WAL group commit / checkpoint
  /// entry).  The caller is responsible for realizing the verdict: persist
  /// a prefix, corrupt a bit, or return an error — and for treating every
  /// verdict except kNone/kFailCleanly as a process crash.  `scope` names
  /// the stream being flushed (a shard's segment scope; nullptr or "" for
  /// an unscoped writer) and is matched against io_scope_filter.
  IoWriteFault OnIoFlush(const char* scope = nullptr);

  /// Consulted at each named crash point in the durability layer.  True =>
  /// the caller must behave as if the process died here: persist nothing
  /// further and stop acknowledging.
  bool OnKillPoint(const char* name);

  /// Deterministic 64-bit draw for fault shaping (e.g. where to tear a
  /// record).  Same event sequence => same draws.
  uint64_t NextDraw(uint64_t stream);

  /// Whether InjectMemoryFaults sweeps should run at all.
  bool MemoryFaultsEnabled() const { return config_.mem_faults_per_sweep > 0; }

  /// Whether an allocation with `tag` is inside the memory-fault target
  /// region (substring match against mem_tag_filter; empty matches all).
  bool MemoryTagMatches(const std::string& tag) const {
    return config_.mem_tag_filter.empty() ||
           tag.find(config_.mem_tag_filter) != std::string::npos;
  }

  /// Bookkeeping for one planted fault: `changed` is whether any byte was
  /// actually modified (a stuck-at fault can be a no-op).  Called by
  /// DeviceArena::InjectMemoryFaults, once per planted fault.
  void CountMemoryFault(bool changed) {
    memory_faults_seen_.fetch_add(1, std::memory_order_relaxed);
    if (changed) {
      memory_faults_injected_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const FaultInjectorConfig& config() const { return config_; }

  // --- Campaign statistics (what was actually injected) --------------------
  uint64_t allocations_seen() const {
    return allocs_seen_.load(std::memory_order_relaxed);
  }
  uint64_t allocations_failed() const {
    return allocs_failed_.load(std::memory_order_relaxed);
  }
  uint64_t warps_delayed() const {
    return warps_delayed_.load(std::memory_order_relaxed);
  }
  uint64_t trylock_failures() const {
    return trylock_failures_.load(std::memory_order_relaxed);
  }
  uint64_t io_flushes_seen() const {
    return io_flushes_seen_.load(std::memory_order_relaxed);
  }
  uint64_t io_faults_injected() const {
    return io_faults_injected_.load(std::memory_order_relaxed);
  }
  uint64_t memory_faults_seen() const {
    return memory_faults_seen_.load(std::memory_order_relaxed);
  }
  uint64_t memory_faults_injected() const {
    return memory_faults_injected_.load(std::memory_order_relaxed);
  }
  uint64_t kill_points_seen() const {
    return kill_points_seen_.load(std::memory_order_relaxed);
  }
  uint64_t kill_points_fired() const {
    return kill_points_fired_.load(std::memory_order_relaxed);
  }

 private:
  friend class ScopedFaultInjection;

  /// Deterministic uniform draw in [0, 1) for the next event in `stream`.
  double NextUniform(uint64_t stream);

  static std::atomic<FaultInjector*> active_;

  FaultInjectorConfig config_;
  std::atomic<uint64_t> events_{0};        // feeds Mix64 decisions
  std::atomic<uint64_t> allocs_seen_{0};   // matching allocations observed
  std::atomic<uint64_t> allocs_failed_{0};
  std::atomic<uint64_t> warps_delayed_{0};
  std::atomic<uint64_t> trylock_failures_{0};
  std::atomic<uint64_t> io_flushes_seen_{0};
  std::atomic<uint64_t> io_faults_injected_{0};
  std::atomic<uint64_t> memory_faults_seen_{0};
  std::atomic<uint64_t> memory_faults_injected_{0};
  std::atomic<uint64_t> kill_points_seen_{0};
  std::atomic<uint64_t> kill_points_fired_{0};
};

/// \brief RAII guard: installs a FaultInjector for its lifetime.  Nesting is
/// supported (the previous injector is restored on destruction), but only
/// the innermost injector is consulted.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultInjectorConfig& config);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultInjector& injector() { return injector_; }

 private:
  FaultInjector injector_;
  FaultInjector* previous_;
};

}  // namespace gpusim
}  // namespace dycuckoo

#endif  // DYCUCKOO_GPUSIM_FAULT_INJECTOR_H_
