#include "gpusim/racecheck.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <tuple>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "gpusim/sim_counters.h"

namespace dycuckoo {
namespace gpusim {

namespace {

constexpr int kShards = 64;

// Vector clocks are indexed by *clock slot* = warp_id % kVcSlots, the
// bounded-domain trick production checkers use (ThreadSanitizer caps its
// clock domain the same way).  A launch with more warps than slots maps
// several warps onto one slot; slot reuse behaves as a join, so colliding
// pairs can only be *under*-reported (false negatives among warps exactly
// kVcSlots apart), never falsely reported — the race check still compares
// logical warp ids, and a suppression needs a clock entry at least as
// large as the writer's tick, which only a real sync chain or a same-slot
// predecessor can supply.  Bounding the domain keeps every clock
// operation O(kVcSlots) instead of O(live warps), which is what makes
// whole-suite checking affordable.
constexpr uint32_t kVcSlots = 64;

using DenseClock = std::array<uint64_t, kVcSlots>;

size_t ShardOf(const void* addr) {
  uint64_t a = reinterpret_cast<uintptr_t>(addr);
  return static_cast<size_t>(((a >> 4) * 0x9E3779B97F4A7C15ull) >> 58) %
         kShards;
}

}  // namespace

const char* FindingKindName(FindingKind kind) {
  switch (kind) {
    case FindingKind::kWriteWriteRace:
      return "write-write-race";
    case FindingKind::kReadWriteRace:
      return "read-write-race";
    case FindingKind::kOutOfBounds:
      return "out-of-bounds";
    case FindingKind::kUseAfterFree:
      return "use-after-free";
    case FindingKind::kDoubleFree:
      return "double-free";
    case FindingKind::kInvalidFree:
      return "invalid-free";
  }
  return "unknown";
}

uint64_t RaceReport::Digest() const {
  uint64_t h = 1469598103934665603ull;
  auto mix_byte = [&h](uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  auto mix = [&mix_byte](uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<uint8_t>(v >> (8 * i)));
  };
  for (const RaceFinding& f : findings) {
    mix(static_cast<uint64_t>(f.kind));
    for (char c : f.tag) mix_byte(static_cast<uint8_t>(c));
    mix_byte(0);  // tag terminator so "ab"+"c" != "a"+"bc"
    mix(static_cast<uint64_t>(f.offset));
    mix(f.access_bytes);
    mix(f.launch);
  }
  return h;
}

std::string RaceReport::ToString() const {
  std::ostringstream os;
  os << "RaceCheck report: " << findings.size() << " finding(s)"
     << " launches=" << launches << " checked_loads=" << checked_loads
     << " checked_stores=" << checked_stores << " sync_events=" << sync_events
     << " warp_syncs=" << warp_syncs << "\n";
  for (const RaceFinding& f : findings) {
    os << "  [" << FindingKindName(f.kind) << "] tag=" << f.tag
       << " offset=" << f.offset << " bytes=" << f.access_bytes
       << " launch=" << f.launch;
    if (!f.detail.empty()) os << " (" << f.detail << ")";
    os << "\n";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(Digest()));
  os << "  digest=" << buf;
  return os.str();
}

// Per-(worker thread, warp) state.  A worker runs warps strictly one at a
// time, so a single thread_local slot suffices; `owner` ties the slot to
// the checker that populated it (a slot left over from a dead checker is
// simply ignored).
struct RaceCheck::WarpContext {
  RaceCheck* owner = nullptr;
  uint64_t warp = kHostThread;
  uint32_t slot = 0;  // warp % kVcSlots
  uint64_t epoch = 0;
  uint64_t launch_ordinal = 0;
  // vc[s] = latest tick of clock slot s this warp has observed.  The own
  // entry vc[slot] doubles as the warp's current tick; it starts >= 1 (an
  // ignorant clock knows tick 0 only) and is bumped at every release.
  DenseClock vc{};
  std::vector<const void*> locks;  // currently held bucket locks
};

struct RaceCheck::State {
  // Last checked write to one word.
  struct WordState {
    uint64_t epoch = 0;
    uint64_t writer = kHostThread;
    uint32_t writer_slot = 0;
    uint64_t writer_tick = 0;
    bool racy_ok = false;
    std::vector<const void*> lockset;  // writer's held locks at store time
  };
  // Vector clock carried by one synchronization word (lock word or
  // atomic), sparse (sorted by slot): most sync words are only ever
  // touched by a handful of warps.
  struct SyncState {
    uint64_t epoch = 0;
    std::vector<std::pair<uint32_t, uint64_t>> vc;
  };
  struct WordShard {
    common::Mutex mu;
    std::unordered_map<uintptr_t, WordState> words GUARDED_BY(mu);
  };
  struct SyncShard {
    common::Mutex mu;
    std::unordered_map<uintptr_t, SyncState> syncs GUARDED_BY(mu);
  };

  WordShard word_shards[kShards];
  SyncShard sync_shards[kShards];

  // Globally monotonic per-slot tick counters (never reset: the epoch
  // gate already excludes cross-launch pairs, and monotonicity is what
  // gives slot reuse its join-on-reuse semantics).
  std::atomic<uint64_t> slot_ticks[kVcSlots]{};

  // Findings deduplicated by stable key; `launch` keeps the first
  // occurrence (deterministic: launches are serialized).
  using Key = std::tuple<int, std::string, int64_t, uint32_t>;
  common::Mutex findings_mu;
  std::map<Key, RaceFinding> findings GUARDED_BY(findings_mu);
};

std::atomic<RaceCheck*> RaceCheck::active_{nullptr};
thread_local RaceCheck::WarpContext RaceCheck::tls_warp_;

RaceCheck::RaceCheck(const RaceCheckConfig& config)
    : config_(config),
      shadow_(config.quarantine_bytes),
      state_(new State()) {}

RaceCheck::~RaceCheck() {
  if (active_.load(std::memory_order_acquire) == this) {
    Install(nullptr);
  }
}

RaceCheck* RaceCheck::Install(RaceCheck* checker) {
  return active_.exchange(checker, std::memory_order_acq_rel);
}

RaceCheck::WarpContext* RaceCheck::CurrentWarp() {
  return tls_warp_.owner == this ? &tls_warp_ : nullptr;
}

RaceReport RaceCheck::Report() const {
  RaceReport report;
  {
    common::MutexLock lock(state_->findings_mu);
    report.findings.reserve(state_->findings.size());
    for (const auto& [key, finding] : state_->findings) {
      report.findings.push_back(finding);
    }
  }
  // The dedup map is already sorted by (kind, tag, offset, bytes); launch
  // is a function of the key for a deterministic workload.
  report.launches = launches_.load(std::memory_order_relaxed);
  report.checked_loads = checked_loads_.load(std::memory_order_relaxed);
  report.checked_stores = checked_stores_.load(std::memory_order_relaxed);
  report.sync_events = sync_events_.load(std::memory_order_relaxed);
  report.warp_syncs = warp_syncs_.load(std::memory_order_relaxed);
  return report;
}

void RaceCheck::OnLaunchBegin(uint64_t num_warps) {
  (void)num_warps;
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  uint64_t ordinal = launches_.fetch_add(1, std::memory_order_acq_rel) + 1;
  launch_ordinal_.store(ordinal, std::memory_order_release);
}

void RaceCheck::OnLaunchEnd() {
  // A second epoch bump fences the join edge: host code running after the
  // launch can never pair with stores made inside it.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  launch_ordinal_.store(0, std::memory_order_release);
}

void RaceCheck::OnWarpBegin(uint64_t warp_id) {
  WarpContext& ctx = tls_warp_;
  ctx.owner = this;
  ctx.warp = warp_id;
  ctx.slot = static_cast<uint32_t>(warp_id % kVcSlots);
  ctx.epoch = epoch_.load(std::memory_order_acquire);
  ctx.launch_ordinal = launch_ordinal_.load(std::memory_order_acquire);
  ctx.vc.fill(0);
  // Claim a fresh tick for the own slot (>= 1, so an ignorant reader's 0
  // never satisfies happens-before).  Taking the slot counter's successor
  // is the join-on-reuse: everything a same-slot predecessor published is
  // treated as observed.
  ctx.vc[ctx.slot] =
      state_->slot_ticks[ctx.slot].fetch_add(1, std::memory_order_relaxed) + 1;
  ctx.locks.clear();
}

void RaceCheck::OnWarpEnd() {
  tls_warp_.owner = nullptr;
  tls_warp_.locks.clear();
}

void RaceCheck::OnWarpSync() {
  warp_syncs_.fetch_add(1, std::memory_order_relaxed);
}

void RaceCheck::OnLockAcquire(const void* lock) {
  sync_events_.fetch_add(1, std::memory_order_relaxed);
  if (WarpContext* ctx = CurrentWarp()) {
    ctx->locks.push_back(lock);
  }
}

void RaceCheck::OnLockRelease(const void* lock) {
  sync_events_.fetch_add(1, std::memory_order_relaxed);
  if (WarpContext* ctx = CurrentWarp()) {
    auto it = std::find(ctx->locks.rbegin(), ctx->locks.rend(), lock);
    if (it != ctx->locks.rend()) {
      ctx->locks.erase(std::next(it).base());
    }
  }
}

void RaceCheck::OnAtomicRelease(const void* addr) {
  sync_events_.fetch_add(1, std::memory_order_relaxed);
  WarpContext* ctx = CurrentWarp();
  if (ctx == nullptr) return;  // host atomics carry no warp clock
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  State::SyncShard& shard = state_->sync_shards[ShardOf(addr)];
  common::MutexLock lock(shard.mu);
  State::SyncState& sync = shard.syncs[reinterpret_cast<uintptr_t>(addr)];
  if (sync.epoch != epoch) {
    // Stale clock from an earlier launch: warp ids restart every launch,
    // so carrying it over would forge happens-before edges.
    sync.vc.clear();
    sync.epoch = epoch;
  }
  // Publish the warp's clock (including its own current tick) into the
  // sync word's sparse clock, then advance the own tick so stores made
  // after this release are *not* covered by it.
  for (uint32_t s = 0; s < kVcSlots; ++s) {
    const uint64_t tick = ctx->vc[s];
    if (tick == 0) continue;
    auto it = std::lower_bound(
        sync.vc.begin(), sync.vc.end(), s,
        [](const std::pair<uint32_t, uint64_t>& e, uint32_t slot) {
          return e.first < slot;
        });
    if (it != sync.vc.end() && it->first == s) {
      if (tick > it->second) it->second = tick;
    } else {
      sync.vc.insert(it, {s, tick});
    }
  }
  ctx->vc[ctx->slot] =
      state_->slot_ticks[ctx->slot].fetch_add(1, std::memory_order_relaxed) +
      1;
}

void RaceCheck::OnAtomicAcquire(const void* addr, uint32_t bytes) {
  CheckAccessClass(addr, bytes);
  WarpContext* ctx = CurrentWarp();
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (ctx != nullptr) {
    State::SyncShard& shard = state_->sync_shards[ShardOf(addr)];
    common::MutexLock lock(shard.mu);
    auto it = shard.syncs.find(reinterpret_cast<uintptr_t>(addr));
    if (it != shard.syncs.end() && it->second.epoch == epoch) {
      for (const auto& [s, tick] : it->second.vc) {
        if (tick > ctx->vc[s]) ctx->vc[s] = tick;
      }
    }
  }
  // An atomic RMW is always a safe write: anchor the word's shadow state
  // to it so later plain stores are judged against the atomic, and never
  // pair a plain store with it.
  State::WordShard& shard = state_->word_shards[ShardOf(addr)];
  common::MutexLock lock(shard.mu);
  State::WordState& word = shard.words[reinterpret_cast<uintptr_t>(addr)];
  word.epoch = epoch;
  word.writer = ctx != nullptr ? ctx->warp : kHostThread;
  word.writer_slot = ctx != nullptr ? ctx->slot : 0;
  word.writer_tick = ctx != nullptr ? ctx->vc[ctx->slot] : 0;
  word.racy_ok = true;
  word.lockset.clear();
}

void RaceCheck::OnLoad(const void* addr, uint32_t bytes) {
  checked_loads_.fetch_add(1, std::memory_order_relaxed);
  CheckAccessClass(addr, bytes);
  if (!config_.track_reads) return;
  WarpContext* ctx = CurrentWarp();
  if (ctx == nullptr) return;
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  uint64_t writer = 0;
  uint64_t writer_tick = 0;
  bool candidate = false;
  {
    State::WordShard& shard = state_->word_shards[ShardOf(addr)];
    common::MutexLock lock(shard.mu);
    auto it = shard.words.find(reinterpret_cast<uintptr_t>(addr));
    if (it != shard.words.end()) {
      const State::WordState& word = it->second;
      if (word.epoch == epoch && word.writer != ctx->warp &&
          word.writer != kHostThread && !word.racy_ok) {
        bool common_lock = false;
        for (const void* held : ctx->locks) {
          if (std::find(word.lockset.begin(), word.lockset.end(), held) !=
              word.lockset.end()) {
            common_lock = true;
            break;
          }
        }
        if (!common_lock &&
            ctx->vc[word.writer_slot] < word.writer_tick) {
          candidate = true;
          writer = word.writer;
          writer_tick = word.writer_tick;
        }
      }
    }
  }
  if (candidate) {
    (void)writer_tick;
    AccessInfo info = shadow_.Classify(addr, bytes);
    std::ostringstream detail;
    detail << "warp " << ctx->warp << " read vs warp " << writer << " write";
    RecordFinding(FindingKind::kReadWriteRace,
                  info.cls == AccessClass::kUntracked ? "<untracked>"
                                                      : info.tag,
                  info.cls == AccessClass::kUntracked ? 0 : info.offset, bytes,
                  detail.str());
  }
}

void RaceCheck::OnStore(const void* addr, uint32_t bytes, bool racy_ok) {
  checked_stores_.fetch_add(1, std::memory_order_relaxed);
  CheckAccessClass(addr, bytes);
  WarpContext* ctx = CurrentWarp();
  const uint64_t me = ctx != nullptr ? ctx->warp : kHostThread;
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  uint64_t other = 0;
  bool race = false;
  {
    State::WordShard& shard = state_->word_shards[ShardOf(addr)];
    common::MutexLock lock(shard.mu);
    State::WordState& word = shard.words[reinterpret_cast<uintptr_t>(addr)];
    if (word.epoch == epoch && word.writer != me && me != kHostThread &&
        word.writer != kHostThread && !racy_ok && !word.racy_ok) {
      // Eraser first: a shared lock proves mutual exclusion cheaply.
      bool common_lock = false;
      for (const void* held : ctx->locks) {
        if (std::find(word.lockset.begin(), word.lockset.end(), held) !=
            word.lockset.end()) {
          common_lock = true;
          break;
        }
      }
      if (!common_lock &&
          // Then happens-before: did a sync chain deliver the writer's
          // store to us?
          ctx->vc[word.writer_slot] < word.writer_tick) {
        race = true;
        other = word.writer;
      }
    }
    word.epoch = epoch;
    word.writer = me;
    word.writer_slot = ctx != nullptr ? ctx->slot : 0;
    word.writer_tick = ctx != nullptr ? ctx->vc[ctx->slot] : 0;
    word.racy_ok = racy_ok;
    if (ctx != nullptr) {
      word.lockset = ctx->locks;
    } else {
      word.lockset.clear();
    }
  }
  if (race) {
    AccessInfo info = shadow_.Classify(addr, bytes);
    std::ostringstream detail;
    detail << "warps " << std::min(me, other) << "," << std::max(me, other);
    RecordFinding(FindingKind::kWriteWriteRace,
                  info.cls == AccessClass::kUntracked ? "<untracked>"
                                                      : info.tag,
                  info.cls == AccessClass::kUntracked ? 0 : info.offset, bytes,
                  detail.str());
  }
}

void RaceCheck::OnRangeLoad(const void* addr, size_t bytes) {
  checked_loads_.fetch_add(1, std::memory_order_relaxed);
  CheckAccessClass(addr, static_cast<uint32_t>(
                             std::min<size_t>(bytes, ~uint32_t{0})));
}

void RaceCheck::OnArenaAllocate(const void* user, size_t user_bytes,
                                void* block, size_t block_bytes,
                                const std::string& tag) {
  shadow_.Register(user, user_bytes, block, block_bytes, tag);
}

bool RaceCheck::OnArenaFree(const void* user, void* block) {
  (void)block;  // the shadow extent already owns the block pointer
  return shadow_.QuarantineFree(user);
}

void RaceCheck::OnBadFree(bool double_free, const std::string& original_tag) {
  RecordFinding(
      double_free ? FindingKind::kDoubleFree : FindingKind::kInvalidFree,
      double_free ? original_tag : "<unknown>", 0, 0, "");
}

void RaceCheck::CheckAccessClass(const void* addr, uint32_t bytes) {
  AccessInfo info = shadow_.Classify(addr, bytes, /*need_tag=*/false);
  if (info.cls == AccessClass::kUntracked || info.cls == AccessClass::kValid) {
    return;
  }
  // Findings are rare; re-resolve for the owning tag.
  info = shadow_.Classify(addr, bytes);
  WarpContext* ctx = CurrentWarp();
  std::ostringstream detail;
  if (ctx != nullptr) {
    detail << "warp " << ctx->warp;
  } else {
    detail << "host";
  }
  detail << ", alloc_bytes=" << info.alloc_bytes;
  RecordFinding(info.cls == AccessClass::kRedzone ? FindingKind::kOutOfBounds
                                                  : FindingKind::kUseAfterFree,
                info.tag, info.offset, bytes, detail.str());
}

void RaceCheck::RecordFinding(FindingKind kind, const std::string& tag,
                              int64_t offset, uint32_t access_bytes,
                              const std::string& detail) {
  WarpContext* ctx = CurrentWarp();
  const uint64_t launch =
      ctx != nullptr ? ctx->launch_ordinal
                     : launch_ordinal_.load(std::memory_order_acquire);
  State::Key key(static_cast<int>(kind), tag, offset, access_bytes);
  common::MutexLock lock(state_->findings_mu);
  if (state_->findings.count(key) != 0) return;
  if (state_->findings.size() >= config_.max_findings) return;
  RaceFinding finding;
  finding.kind = kind;
  finding.tag = tag;
  finding.offset = offset;
  finding.access_bytes = access_bytes;
  finding.launch = launch;
  finding.detail = detail;
  state_->findings.emplace(std::move(key), std::move(finding));
  SimCounters::Get().racecheck_findings.fetch_add(1,
                                                  std::memory_order_relaxed);
}

namespace {

// Whole-process session: DYCUCKOO_RACECHECK=1 installs a checker before
// main() and enforces its verdict at static destruction.  Exit status 66
// (distinct from test-failure exits) is what the CI racecheck job keys on.
class EnvRaceCheckSession {
 public:
  EnvRaceCheckSession() {
    const char* v = std::getenv("DYCUCKOO_RACECHECK");
    if (v == nullptr || v[0] == '\0' || v[0] == '0') return;
    checker_ = new RaceCheck();
    RaceCheck::Install(checker_);
  }

  ~EnvRaceCheckSession() {
    if (checker_ == nullptr) return;
    RaceCheck::Install(nullptr);
    const RaceReport report = checker_->Report();
    const char* path = std::getenv("DYCUCKOO_RACECHECK_REPORT");
    if (path != nullptr && path[0] != '\0') {
      if (std::FILE* f = std::fopen(path, "w")) {
        const std::string text = report.ToString();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
      }
    }
    if (!report.clean()) {
      const std::string text = report.ToString();
      std::fprintf(stderr, "[racecheck] FAILED\n%s\n", text.c_str());
      std::fflush(stderr);
      // Leak the checker deliberately: quarantined blocks and shadow
      // state stay valid while we die with a recognizable status.
      std::_Exit(66);
    }
    delete checker_;
    checker_ = nullptr;
  }

 private:
  RaceCheck* checker_ = nullptr;
};

EnvRaceCheckSession env_race_check_session;

}  // namespace

}  // namespace gpusim
}  // namespace dycuckoo
