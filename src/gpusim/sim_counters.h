// Global profiling counters for the simulated device.
//
// These stand in for the GPU profiler (nvprof) used by the paper: they count
// atomic operations, lock conflicts, bucket (cache-line) transactions and
// cuckoo evictions.  Counters are process-global and relaxed; benches snapshot
// and diff them around a measured region.

#ifndef DYCUCKOO_GPUSIM_SIM_COUNTERS_H_
#define DYCUCKOO_GPUSIM_SIM_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace dycuckoo {
namespace gpusim {

struct SimCounters {
  std::atomic<uint64_t> atomic_cas{0};
  std::atomic<uint64_t> atomic_cas_failed{0};
  std::atomic<uint64_t> atomic_exch{0};
  std::atomic<uint64_t> bucket_reads{0};   // one per bucket (cache line) read
  std::atomic<uint64_t> bucket_writes{0};  // one per bucket write transaction
  std::atomic<uint64_t> evictions{0};      // cuckoo displacement events
  std::atomic<uint64_t> lock_conflicts{0}; // failed bucket-lock attempts
  std::atomic<uint64_t> chain_nodes_visited{0};  // slab-list traversal hops
  std::atomic<uint64_t> racecheck_findings{0};   // distinct RaceCheck defects

  static SimCounters& Get();

  void Reset();

  /// Immutable snapshot for before/after diffs.
  struct Snapshot {
    uint64_t atomic_cas = 0;
    uint64_t atomic_cas_failed = 0;
    uint64_t atomic_exch = 0;
    uint64_t bucket_reads = 0;
    uint64_t bucket_writes = 0;
    uint64_t evictions = 0;
    uint64_t lock_conflicts = 0;
    uint64_t chain_nodes_visited = 0;
    uint64_t racecheck_findings = 0;

    Snapshot operator-(const Snapshot& rhs) const;
    std::string ToString() const;
  };

  Snapshot Capture() const;
};

inline void CountBucketRead() {
  SimCounters::Get().bucket_reads.fetch_add(1, std::memory_order_relaxed);
}
inline void CountBucketWrite() {
  SimCounters::Get().bucket_writes.fetch_add(1, std::memory_order_relaxed);
}
inline void CountEviction() {
  SimCounters::Get().evictions.fetch_add(1, std::memory_order_relaxed);
}
inline void CountLockConflict() {
  SimCounters::Get().lock_conflicts.fetch_add(1, std::memory_order_relaxed);
}
inline void CountChainNode() {
  SimCounters::Get().chain_nodes_visited.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace gpusim
}  // namespace dycuckoo

#endif  // DYCUCKOO_GPUSIM_SIM_COUNTERS_H_
