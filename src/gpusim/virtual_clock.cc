#include "gpusim/virtual_clock.h"

namespace dycuckoo {
namespace gpusim {

std::atomic<VirtualClock*> VirtualClock::active_{nullptr};

ScopedVirtualClock::ScopedVirtualClock(VirtualClock* clock) {
  previous_ =
      VirtualClock::active_.exchange(clock, std::memory_order_acq_rel);
}

ScopedVirtualClock::~ScopedVirtualClock() {
  VirtualClock::active_.store(previous_, std::memory_order_release);
}

}  // namespace gpusim
}  // namespace dycuckoo
