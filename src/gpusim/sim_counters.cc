#include "gpusim/sim_counters.h"

#include <sstream>

namespace dycuckoo {
namespace gpusim {

SimCounters& SimCounters::Get() {
  static SimCounters instance;
  return instance;
}

void SimCounters::Reset() {
  atomic_cas.store(0, std::memory_order_relaxed);
  atomic_cas_failed.store(0, std::memory_order_relaxed);
  atomic_exch.store(0, std::memory_order_relaxed);
  bucket_reads.store(0, std::memory_order_relaxed);
  bucket_writes.store(0, std::memory_order_relaxed);
  evictions.store(0, std::memory_order_relaxed);
  lock_conflicts.store(0, std::memory_order_relaxed);
  chain_nodes_visited.store(0, std::memory_order_relaxed);
  racecheck_findings.store(0, std::memory_order_relaxed);
}

SimCounters::Snapshot SimCounters::Capture() const {
  Snapshot s;
  s.atomic_cas = atomic_cas.load(std::memory_order_relaxed);
  s.atomic_cas_failed = atomic_cas_failed.load(std::memory_order_relaxed);
  s.atomic_exch = atomic_exch.load(std::memory_order_relaxed);
  s.bucket_reads = bucket_reads.load(std::memory_order_relaxed);
  s.bucket_writes = bucket_writes.load(std::memory_order_relaxed);
  s.evictions = evictions.load(std::memory_order_relaxed);
  s.lock_conflicts = lock_conflicts.load(std::memory_order_relaxed);
  s.chain_nodes_visited = chain_nodes_visited.load(std::memory_order_relaxed);
  s.racecheck_findings = racecheck_findings.load(std::memory_order_relaxed);
  return s;
}

SimCounters::Snapshot SimCounters::Snapshot::operator-(
    const Snapshot& rhs) const {
  Snapshot d;
  d.atomic_cas = atomic_cas - rhs.atomic_cas;
  d.atomic_cas_failed = atomic_cas_failed - rhs.atomic_cas_failed;
  d.atomic_exch = atomic_exch - rhs.atomic_exch;
  d.bucket_reads = bucket_reads - rhs.bucket_reads;
  d.bucket_writes = bucket_writes - rhs.bucket_writes;
  d.evictions = evictions - rhs.evictions;
  d.lock_conflicts = lock_conflicts - rhs.lock_conflicts;
  d.chain_nodes_visited = chain_nodes_visited - rhs.chain_nodes_visited;
  d.racecheck_findings = racecheck_findings - rhs.racecheck_findings;
  return d;
}

std::string SimCounters::Snapshot::ToString() const {
  std::ostringstream os;
  os << "cas=" << atomic_cas << " cas_failed=" << atomic_cas_failed
     << " exch=" << atomic_exch << " bucket_reads=" << bucket_reads
     << " bucket_writes=" << bucket_writes << " evictions=" << evictions
     << " lock_conflicts=" << lock_conflicts
     << " chain_nodes=" << chain_nodes_visited
     << " racecheck_findings=" << racecheck_findings;
  return os.str();
}

}  // namespace gpusim
}  // namespace dycuckoo
