// Kernel-grid launcher: schedules simulated warps over host worker threads.
//
// A CUDA kernel launch <<<blocks, threads>>> becomes LaunchWarps(n, body):
// `body(warp_id)` is invoked once per warp; warps are distributed over a
// persistent pool of host threads, so warps genuinely race with each other
// (bucket locks, atomics) while each warp's 32 lanes stay lockstep inside
// one host thread — the same concurrency structure as the GPU.

#ifndef DYCUCKOO_GPUSIM_GRID_H_
#define DYCUCKOO_GPUSIM_GRID_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "gpusim/racecheck.h"

namespace dycuckoo {
namespace gpusim {

/// Construction-time configuration for a Grid.
struct GridOptions {
  /// Worker threads; 0 picks a default sized to the host.
  unsigned num_threads = 0;

  /// Install a RaceCheck session for this grid's lifetime: every launch
  /// on it runs checked (fork/join edges, warp contexts) and the report
  /// is available via Grid::race_check().  The previously installed
  /// checker, if any, is restored when the grid is destroyed.
  bool racecheck = false;

  /// Knobs for the grid-owned checker (ignored unless racecheck is set).
  RaceCheckConfig racecheck_config;
};

/// \brief Persistent worker pool that executes grid launches.
///
/// The pool size models the number of concurrently resident warps the device
/// can schedule; it defaults to a small multiple of the host cores so that
/// real interleavings (and hence real lock conflicts) occur even on small
/// machines.
class Grid {
 public:
  /// \param num_threads worker threads; 0 picks a default.
  explicit Grid(unsigned num_threads = 0);
  explicit Grid(const GridOptions& options);
  ~Grid();

  Grid(const Grid&) = delete;
  Grid& operator=(const Grid&) = delete;

  /// Process-global grid used when a table is not given its own.
  static Grid* Global();

  /// Runs body(warp_id) for warp_id in [0, num_warps), distributing warps
  /// dynamically over the workers.  Blocks until every warp finished.
  /// Thread-safe: concurrent callers (e.g. several tables sharing one
  /// grid) queue like kernels on a single CUDA stream.
  void LaunchWarps(uint64_t num_warps,
                   const std::function<void(uint64_t)>& body);

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// The grid-owned checker (GridOptions::racecheck), or nullptr.
  RaceCheck* race_check() { return own_checker_.get(); }

 private:
  struct Launch {
    uint64_t num_warps = 0;
    const std::function<void(uint64_t)>* body = nullptr;
    RaceCheck* race_check = nullptr;  // checker active for this launch
    std::atomic<uint64_t> next{0};
    std::atomic<uint64_t> done{0};
    int workers_inside = 0;  // guarded by Grid::mu_
  };

  void WorkerLoop();

  std::mutex launch_mu_;  // serializes whole launches (one "stream")
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Launch* current_ = nullptr;       // guarded by mu_
  uint64_t launch_epoch_ = 0;       // guarded by mu_
  bool shutting_down_ = false;      // guarded by mu_
  std::vector<std::thread> workers_;
  std::unique_ptr<RaceCheck> own_checker_;  // GridOptions::racecheck
  RaceCheck* previous_checker_ = nullptr;   // restored at destruction
};

/// Warps needed to cover `items` with one lane per item.
inline uint64_t WarpsForItems(uint64_t items) { return (items + 31) / 32; }

}  // namespace gpusim
}  // namespace dycuckoo

#endif  // DYCUCKOO_GPUSIM_GRID_H_
