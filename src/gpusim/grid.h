// Kernel-grid launcher: schedules simulated warps over host worker threads.
//
// A CUDA kernel launch <<<blocks, threads>>> becomes LaunchWarps(n, body):
// `body(warp_id)` is invoked once per warp; warps are distributed over a
// persistent pool of host threads, so warps genuinely race with each other
// (bucket locks, atomics) while each warp's 32 lanes stay lockstep inside
// one host thread — the same concurrency structure as the GPU.

#ifndef DYCUCKOO_GPUSIM_GRID_H_
#define DYCUCKOO_GPUSIM_GRID_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "gpusim/racecheck.h"

namespace dycuckoo {
namespace gpusim {

/// Construction-time configuration for a Grid.
struct GridOptions {
  /// Worker threads; 0 picks a default sized to the host.
  unsigned num_threads = 0;

  /// Install a RaceCheck session for this grid's lifetime: every launch
  /// on it runs checked (fork/join edges, warp contexts) and the report
  /// is available via Grid::race_check().  The previously installed
  /// checker, if any, is restored when the grid is destroyed.
  bool racecheck = false;

  /// Knobs for the grid-owned checker (ignored unless racecheck is set).
  RaceCheckConfig racecheck_config;
};

/// \brief Persistent worker pool that executes grid launches.
///
/// The pool size models the number of concurrently resident warps the device
/// can schedule; it defaults to a small multiple of the host cores so that
/// real interleavings (and hence real lock conflicts) occur even on small
/// machines.
class Grid {
 public:
  /// \param num_threads worker threads; 0 picks a default.
  explicit Grid(unsigned num_threads = 0);
  explicit Grid(const GridOptions& options);
  ~Grid();

  Grid(const Grid&) = delete;
  Grid& operator=(const Grid&) = delete;

  /// Process-global grid used when a table is not given its own.
  static Grid* Global();

  /// Runs body(warp_id) for warp_id in [0, num_warps), distributing warps
  /// dynamically over the workers.  Blocks until every warp finished.
  /// Thread-safe: concurrent callers (e.g. several tables sharing one
  /// grid) queue like kernels on a single CUDA stream.
  /// Exempt from thread-safety analysis: the completion wait goes through
  /// std::unique_lock + condition_variable_any, which the analysis cannot
  /// see through.
  void LaunchWarps(uint64_t num_warps,
                   const std::function<void(uint64_t)>& body)
      NO_THREAD_SAFETY_ANALYSIS;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// The grid-owned checker (GridOptions::racecheck), or nullptr.
  RaceCheck* race_check() { return own_checker_.get(); }

 private:
  struct Launch {
    uint64_t num_warps = 0;
    const std::function<void(uint64_t)>* body = nullptr;
    RaceCheck* race_check = nullptr;  // checker active for this launch
    std::atomic<uint64_t> next{0};
    std::atomic<uint64_t> done{0};
    int workers_inside = 0;  // guarded by Grid::mu_
  };

  // Exempt from thread-safety analysis: the work wait goes through
  // std::unique_lock + condition_variable_any, which the analysis cannot
  // see through.
  void WorkerLoop() NO_THREAD_SAFETY_ANALYSIS;

  common::Mutex launch_mu_;  // serializes whole launches (one "stream")
  common::Mutex mu_;
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  Launch* current_ GUARDED_BY(mu_) = nullptr;
  uint64_t launch_epoch_ GUARDED_BY(mu_) = 0;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
  std::unique_ptr<RaceCheck> own_checker_;  // GridOptions::racecheck
  RaceCheck* previous_checker_ = nullptr;   // restored at destruction
};

/// Warps needed to cover `items` with one lane per item.
inline uint64_t WarpsForItems(uint64_t items) { return (items + 31) / 32; }

}  // namespace gpusim
}  // namespace dycuckoo

#endif  // DYCUCKOO_GPUSIM_GRID_H_
