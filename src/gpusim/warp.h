// Warp-level SIMT primitives.
//
// The paper's kernels are warp-centric: a warp of 32 lanes cooperates on one
// bucket, coordinates via __ballot and broadcasts via __shfl.  This substrate
// executes one warp's 32 lanes in lockstep inside a single host thread, so
// the CUDA primitives become simple bitmask/loop operations with identical
// semantics:
//
//   CUDA                          here
//   ----------------------------  -------------------------------
//   __ballot_sync(mask, pred)     Ballot(pred-per-lane)
//   __ffs(ballot) - 1             FirstLane(mask)
//   __shfl_sync(mask, v, lane)    plain read (lanes share the host thread)
//
// Different warps run on different host threads (see grid.h), so inter-warp
// races on buckets and locks are real races, as on a GPU.

#ifndef DYCUCKOO_GPUSIM_WARP_H_
#define DYCUCKOO_GPUSIM_WARP_H_

#include <cstdint>

#include "gpusim/racecheck.h"

namespace dycuckoo {
namespace gpusim {

/// Number of lanes per warp, matching NVIDIA hardware.
inline constexpr int kWarpSize = 32;

/// One bit per lane; bit l set means lane l votes true.
using LaneMask = uint32_t;

inline constexpr LaneMask kFullMask = 0xffffffffu;

/// Index of the lowest set lane, or -1 if the mask is empty.  Mirrors
/// `__ffs(mask) - 1`.
inline int FirstLane(LaneMask mask) {
  return mask == 0 ? -1 : __builtin_ctz(mask);
}

/// Number of participating lanes (`__popc`).
inline int LaneCount(LaneMask mask) { return __builtin_popcount(mask); }

/// Evaluates `pred(lane)` for each of the 32 lanes and packs the results,
/// mirroring `__ballot_sync(kFullMask, pred)`.  An intra-warp sync point:
/// lanes run lockstep on one host thread, so this is a cross-warp no-op,
/// but the RaceCheck hook records that the warp passed through a named
/// sync so reports can show warp-sync coverage.
template <typename Pred>
inline LaneMask Ballot(Pred&& pred) {
  if (RaceCheck* rc = RaceCheck::Active()) rc->OnWarpSync();
  LaneMask mask = 0;
  for (int lane = 0; lane < kWarpSize; ++lane) {
    if (pred(lane)) mask |= (LaneMask{1} << lane);
  }
  return mask;
}

/// Ballot restricted to lanes set in `active`.
template <typename Pred>
inline LaneMask BallotActive(LaneMask active, Pred&& pred) {
  if (RaceCheck* rc = RaceCheck::Active()) rc->OnWarpSync();
  LaneMask mask = 0;
  for (int lane = 0; lane < kWarpSize; ++lane) {
    if ((active >> lane) & 1u) {
      if (pred(lane)) mask |= (LaneMask{1} << lane);
    }
  }
  return mask;
}

/// Rotates a leader election so consecutive votes prefer different lanes.
/// Given the active mask and the previous leader, picks the next set lane
/// strictly after `prev` (wrapping), mirroring the paper's "revote another
/// leader to avoid locking on the same bucket".
inline int NextLeader(LaneMask active, int prev) {
  if (active == 0) return -1;
  for (int step = 1; step <= kWarpSize; ++step) {
    int lane = (prev + step) % kWarpSize;
    if ((active >> lane) & 1u) return lane;
  }
  return -1;
}

}  // namespace gpusim
}  // namespace dycuckoo

#endif  // DYCUCKOO_GPUSIM_WARP_H_
