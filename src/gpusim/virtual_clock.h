// Deterministic virtual time for the gpusim substrate.
//
// Wall-clock deadlines make timeout behaviour unreproducible: the same op
// sequence times out on a loaded CI box and passes locally.  The serving
// layer instead measures time in *ticks of simulated device work*: the
// Grid advances the installed clock by one tick per warp it launches, and
// hosts model idle waiting (retry backoff, breaker cooldown) by advancing
// the clock explicitly.  Two runs of the same op sequence therefore see
// bit-identical timestamps, so every deadline expiry and breaker
// transition is reproducible per seed — the same property the
// FaultInjector gives injected faults.
//
// Like the FaultInjector, the clock is installed process-globally via an
// RAII guard so the Grid can consult it without plumbing:
//
//   gpusim::VirtualClock clock;
//   gpusim::ScopedVirtualClock scoped(&clock);
//   ... every Grid::LaunchWarps now advances `clock` ...
//
// When no clock is installed the Grid hook is a no-op.

#ifndef DYCUCKOO_GPUSIM_VIRTUAL_CLOCK_H_
#define DYCUCKOO_GPUSIM_VIRTUAL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace dycuckoo {
namespace gpusim {

/// \brief Monotonic tick counter; 1 tick == 1 warp of launched kernel work.
///
/// Thread-safe: the Grid advances it from the launching host thread (after
/// the launch completes, so the count per launch is deterministic) and
/// servers read/advance it between batches.
class VirtualClock {
 public:
  VirtualClock() = default;
  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  /// Current virtual time in ticks.
  uint64_t Now() const { return ticks_.load(std::memory_order_acquire); }

  /// Advances time; used by the Grid (kernel work) and by hosts modelling
  /// idle waits (retry backoff, breaker cooldown).
  void Advance(uint64_t ticks) {
    ticks_.fetch_add(ticks, std::memory_order_acq_rel);
  }

  /// Ticks contributed by Grid launches (diagnostic split of Now()).
  uint64_t work_ticks() const {
    return work_ticks_.load(std::memory_order_relaxed);
  }

  /// Called by Grid::LaunchWarps once per completed launch.
  void OnLaunchCompleted(uint64_t num_warps) {
    work_ticks_.fetch_add(num_warps, std::memory_order_relaxed);
    Advance(num_warps);
  }

  /// The installed clock, or nullptr.  Single atomic load: consulted on
  /// every Grid launch.
  static VirtualClock* Active() {
    return active_.load(std::memory_order_acquire);
  }

 private:
  friend class ScopedVirtualClock;

  static std::atomic<VirtualClock*> active_;

  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> work_ticks_{0};
};

/// \brief RAII guard: installs a VirtualClock for its lifetime.  Nesting
/// restores the previous clock on destruction; only the innermost clock
/// advances.
class ScopedVirtualClock {
 public:
  explicit ScopedVirtualClock(VirtualClock* clock);
  ~ScopedVirtualClock();

  ScopedVirtualClock(const ScopedVirtualClock&) = delete;
  ScopedVirtualClock& operator=(const ScopedVirtualClock&) = delete;

 private:
  VirtualClock* previous_;
};

}  // namespace gpusim
}  // namespace dycuckoo

#endif  // DYCUCKOO_GPUSIM_VIRTUAL_CLOCK_H_
