#include "gpusim/shadow_memory.h"

#include <cstdlib>

namespace dycuckoo {
namespace gpusim {

std::atomic<uint64_t> ShadowMemory::global_version_{1};
thread_local ShadowMemory::CacheEntry
    ShadowMemory::tls_cache_[ShadowMemory::kCacheEntries];
thread_local unsigned ShadowMemory::tls_cache_next_ = 0;

ShadowMemory::ShadowMemory(size_t quarantine_budget_bytes)
    : quarantine_budget_bytes_(quarantine_budget_bytes) {}

ShadowMemory::~ShadowMemory() {
  common::WriterMutexLock lock(mu_);
  for (auto& [begin, extent] : extents_) {
    if (extent.freed && extent.block != nullptr) std::free(extent.block);
  }
  extents_.clear();
  quarantine_fifo_.clear();
  BumpVersion();
}

void ShadowMemory::Register(const void* user, size_t user_bytes, void* block,
                            size_t block_bytes, const std::string& tag) {
  Extent extent;
  extent.block_begin = reinterpret_cast<uintptr_t>(block);
  extent.block_end = extent.block_begin + block_bytes;
  extent.user_begin = reinterpret_cast<uintptr_t>(user);
  extent.user_end = extent.user_begin + user_bytes;
  extent.tag = tag;
  extent.block = block;
  common::WriterMutexLock lock(mu_);
  extents_[extent.block_begin] = extent;
  ++live_extents_;
  BumpVersion();
}

bool ShadowMemory::KnowsLive(const void* user) const {
  common::ReaderMutexLock lock(mu_);
  const Extent* e = FindLocked(reinterpret_cast<uintptr_t>(user));
  return e != nullptr && !e->freed &&
         e->user_begin == reinterpret_cast<uintptr_t>(user);
}

bool ShadowMemory::QuarantineFree(const void* user) {
  common::WriterMutexLock lock(mu_);
  const uintptr_t addr = reinterpret_cast<uintptr_t>(user);
  const Extent* found = FindLocked(addr);
  if (found == nullptr || found->freed || found->user_begin != addr) {
    return false;
  }
  Extent* e = &extents_[found->block_begin];
  e->freed = true;
  --live_extents_;
  quarantine_fifo_.push_back(e->block_begin);
  quarantine_bytes_ += e->block_end - e->block_begin;
  EvictLocked();
  BumpVersion();
  return true;
}

void ShadowMemory::Drop(const void* user) {
  common::WriterMutexLock lock(mu_);
  const uintptr_t addr = reinterpret_cast<uintptr_t>(user);
  const Extent* found = FindLocked(addr);
  if (found == nullptr || found->freed || found->user_begin != addr) return;
  --live_extents_;
  extents_.erase(found->block_begin);
  BumpVersion();
}

bool ShadowMemory::WasFreed(const void* user, std::string* original_tag) const {
  common::ReaderMutexLock lock(mu_);
  const uintptr_t addr = reinterpret_cast<uintptr_t>(user);
  const Extent* e = FindLocked(addr);
  if (e == nullptr || !e->freed || e->user_begin != addr) return false;
  if (original_tag != nullptr) *original_tag = e->tag;
  return true;
}

AccessInfo ShadowMemory::Classify(const void* addr, size_t bytes,
                                  bool need_tag) const {
  AccessInfo info;
  if (bytes == 0) bytes = 1;
  const uintptr_t begin = reinterpret_cast<uintptr_t>(addr);
  if (!need_tag) {
    // TLB-style fast path: an unchanged global version proves every cached
    // live extent is still live with the same bounds.
    const uint64_t v = global_version_.load(std::memory_order_acquire);
    for (const CacheEntry& c : tls_cache_) {
      if (c.owner == this && c.version == v && begin >= c.user_begin &&
          begin + bytes <= c.user_end) {
        info.cls = AccessClass::kValid;
        info.offset = static_cast<int64_t>(begin) -
                      static_cast<int64_t>(c.user_begin);
        info.alloc_bytes = c.user_end - c.user_begin;
        return info;
      }
    }
  }
  common::ReaderMutexLock lock(mu_);
  const Extent* e = FindLocked(begin);
  if (e == nullptr) return info;  // kUntracked
  const uintptr_t end = begin + bytes;  // may poke into the right redzone
  if (need_tag) info.tag = e->tag;
  info.alloc_bytes = e->user_end - e->user_begin;
  if (e->freed) {
    info.cls = AccessClass::kFreed;
    info.offset = static_cast<int64_t>(begin) -
                  static_cast<int64_t>(e->user_begin);
    return info;
  }
  if (begin < e->user_begin) {
    info.cls = AccessClass::kRedzone;
    info.offset = static_cast<int64_t>(begin) -
                  static_cast<int64_t>(e->user_begin);
    return info;
  }
  if (end > e->user_end) {
    info.cls = AccessClass::kRedzone;
    // First offending byte: the access may start in bounds and run off
    // the end (an overlong range read); report where it went wrong.
    const uintptr_t offending = begin >= e->user_end ? begin : e->user_end;
    info.offset = static_cast<int64_t>(offending) -
                  static_cast<int64_t>(e->user_begin);
    return info;
  }
  info.cls = AccessClass::kValid;
  info.offset = static_cast<int64_t>(begin) -
                static_cast<int64_t>(e->user_begin);
  if (!e->freed) {
    // Cache the resolved live extent for this thread's next accesses.
    // Version is re-read under the lock: an entry installed against a
    // version from before a concurrent mutation must not survive it.
    CacheEntry& slot = tls_cache_[tls_cache_next_++ % kCacheEntries];
    slot.owner = this;
    slot.version = global_version_.load(std::memory_order_acquire);
    slot.user_begin = e->user_begin;
    slot.user_end = e->user_end;
  }
  return info;
}

uint64_t ShadowMemory::live_extents() const {
  common::ReaderMutexLock lock(mu_);
  return live_extents_;
}

uint64_t ShadowMemory::quarantined_blocks() const {
  common::ReaderMutexLock lock(mu_);
  return quarantine_fifo_.size();
}

const ShadowMemory::Extent* ShadowMemory::FindLocked(uintptr_t addr) const {
  auto it = extents_.upper_bound(addr);
  if (it == extents_.begin()) return nullptr;
  --it;
  const Extent& e = it->second;
  if (addr < e.block_begin || addr >= e.block_end) return nullptr;
  return &e;
}

void ShadowMemory::EvictLocked() {
  while (quarantine_bytes_ > quarantine_budget_bytes_ &&
         !quarantine_fifo_.empty()) {
    const uintptr_t begin = quarantine_fifo_.front();
    quarantine_fifo_.pop_front();
    auto it = extents_.find(begin);
    if (it == extents_.end()) continue;
    quarantine_bytes_ -= it->second.block_end - it->second.block_begin;
    std::free(it->second.block);
    extents_.erase(it);
  }
}

}  // namespace gpusim
}  // namespace dycuckoo
