// Shadow memory for the simulated device heap.
//
// Mirrors what compute-sanitizer's memcheck keeps on real hardware: for
// every live DeviceArena allocation an *extent* — the user range, the
// owning tag, and a redzone on either side — plus a bounded quarantine of
// freed blocks whose memory is deliberately kept unreusable so that stale
// pointers keep pointing at *known-freed* bytes instead of at whatever
// malloc hands out next.  Classify() maps an instrumented access to one
// of four verdicts:
//
//   kValid      inside the user range of a live allocation
//   kRedzone    inside a redzone (out-of-bounds relative to the owner)
//   kFreed      inside a quarantined (freed) allocation — use-after-free
//   kUntracked  ordinary host memory; never reported
//
// The shadow map is keyed and reported in *logical* coordinates (owning
// tag + byte offset from the user base), never raw pointers, so reports
// are stable across ASLR and re-runs.
//
// Thread-safe: registration/free take an exclusive lock.  Classification
// (the hot path — every instrumented load/store) first consults a small
// thread-local cache of recently hit live extents, TLB-style: a hit costs
// a few compares and no lock.  The cache is validated against a global
// version counter bumped by every extent mutation anywhere, so a stale
// entry can never classify a freed or re-registered range as valid —
// except within the mutation's own race window, where the access races
// with the free itself and any verdict is honest.

#ifndef DYCUCKOO_GPUSIM_SHADOW_MEMORY_H_
#define DYCUCKOO_GPUSIM_SHADOW_MEMORY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dycuckoo {
namespace gpusim {

enum class AccessClass : int {
  kUntracked = 0,  // not arena memory (host-side state); ignored
  kValid = 1,      // inside a live allocation's user range
  kRedzone = 2,    // out of bounds: inside a guard zone
  kFreed = 3,      // use-after-free: inside a quarantined block
};

/// Verdict for one instrumented access.
struct AccessInfo {
  AccessClass cls = AccessClass::kUntracked;
  /// Owning allocation's tag ("" for kUntracked).
  std::string tag;
  /// First offending (or first accessed) byte, relative to the owner's user
  /// base.  Negative inside the left redzone, >= alloc_bytes past the end.
  int64_t offset = 0;
  /// User-visible size of the owning allocation.
  uint64_t alloc_bytes = 0;
};

/// \brief Extent registry + freed-block quarantine.
///
/// Owned by a RaceCheck session.  The arena transfers ownership of a freed
/// block's storage into the quarantine (QuarantineFree); the quarantine
/// releases storage FIFO once its byte budget is exceeded, and frees any
/// remainder on destruction.
class ShadowMemory {
 public:
  explicit ShadowMemory(size_t quarantine_budget_bytes);
  ~ShadowMemory();

  ShadowMemory(const ShadowMemory&) = delete;
  ShadowMemory& operator=(const ShadowMemory&) = delete;

  /// Registers a live allocation: `user` points at `user_bytes` usable
  /// bytes inside the malloc'd block [block, block + block_bytes).
  void Register(const void* user, size_t user_bytes, void* block,
                size_t block_bytes, const std::string& tag);

  /// True iff `user` is the user base of a registered live allocation.
  bool KnowsLive(const void* user) const;

  /// Marks a registered allocation freed and takes ownership of its block
  /// (deferring the underlying free).  Returns false — and takes no
  /// ownership — when `user` was never registered here.
  bool QuarantineFree(const void* user);

  /// Drops a live extent without quarantining (e.g. the checker that
  /// registered it is being torn down while the memory stays live).
  void Drop(const void* user);

  /// True iff `user` is the user base of a quarantined (freed) block;
  /// fills `*original_tag` with the tag it was allocated under.
  bool WasFreed(const void* user, std::string* original_tag) const;

  /// Classifies the access [addr, addr + bytes).  With need_tag == false
  /// a kValid verdict may come from the thread-local extent cache and
  /// carries an empty tag (callers that only gate on the class — the
  /// per-access bounds check — never pay for a tag copy); non-valid
  /// verdicts always carry the owning tag.
  AccessInfo Classify(const void* addr, size_t bytes,
                      bool need_tag = true) const;

  uint64_t live_extents() const;
  uint64_t quarantined_blocks() const;

 private:
  struct Extent {
    uintptr_t block_begin = 0;
    uintptr_t block_end = 0;
    uintptr_t user_begin = 0;
    uintptr_t user_end = 0;
    std::string tag;
    bool freed = false;
    void* block = nullptr;  // owned once freed == true
  };

  // One thread-local classification cache slot: a live extent this thread
  // recently resolved, valid while the global version is unchanged.
  struct CacheEntry {
    const ShadowMemory* owner = nullptr;
    uint64_t version = 0;
    uintptr_t user_begin = 0;
    uintptr_t user_end = 0;
  };
  static constexpr int kCacheEntries = 4;

  // Returns the extent containing addr, or nullptr.
  const Extent* FindLocked(uintptr_t addr) const REQUIRES_SHARED(mu_);
  // Evicts quarantined blocks down to budget.
  void EvictLocked() REQUIRES(mu_);
  // Invalidates every thread's classification cache (all instances).
  static void BumpVersion() {
    global_version_.fetch_add(1, std::memory_order_release);
  }

  // Monotonic across all ShadowMemory instances, so a cache entry from a
  // destroyed instance can never match a new one at the same address.
  static std::atomic<uint64_t> global_version_;
  static thread_local CacheEntry tls_cache_[kCacheEntries];
  static thread_local unsigned tls_cache_next_;

  const size_t quarantine_budget_bytes_;
  mutable common::SharedMutex mu_;
  // Keyed by block_begin; extents never overlap (quarantined blocks are
  // not returned to malloc until they leave the map).
  std::map<uintptr_t, Extent> extents_ GUARDED_BY(mu_);
  std::deque<uintptr_t> quarantine_fifo_ GUARDED_BY(mu_);  // oldest first
  size_t quarantine_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t live_extents_ GUARDED_BY(mu_) = 0;
};

}  // namespace gpusim
}  // namespace dycuckoo

#endif  // DYCUCKOO_GPUSIM_SHADOW_MEMORY_H_
