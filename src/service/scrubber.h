// Incremental online scrubber: amortizes DynamicTable::ScrubAll over the
// serving loop.
//
// A full integrity sweep of a large table is far too much work to wedge
// between two latency-sensitive batches, so the scrubber keeps a cursor
// (subtable, bucket) and verifies a bounded slice per call; when the
// cursor wraps it also re-checks stash consistency and records a full
// pass.  Resizes between slices are tolerated: the cursor is clamped to
// the current bucket count, so a slice never reads out of bounds (a
// shrunk subtable simply ends the slice early; its remaining buckets are
// covered on the next pass).
//
// All slot traffic goes through DynamicTable::ScrubBuckets, which reads
// via the Subtable accessors — so under RaceCheck (docs/analysis.md) a
// scrub slice is bounds- and use-after-free-checked like any kernel, and
// a cursor bug that outlived the clamp above would surface as a tagged
// out-of-bounds finding rather than silent corruption.

#ifndef DYCUCKOO_SERVICE_SCRUBBER_H_
#define DYCUCKOO_SERVICE_SCRUBBER_H_

#include <cstdint>

#include "dycuckoo/dynamic_table.h"

namespace dycuckoo {
namespace service {

template <typename Key, typename Value>
class OnlineScrubber {
 public:
  using Table = DynamicTable<Key, Value>;
  using Report = typename Table::ScrubReport;

  explicit OnlineScrubber(Table* table) : table_(table) {}

  /// Scrubs up to `max_buckets` buckets from the cursor onward and
  /// advances it, wrapping across subtables.  Returns what this slice
  /// observed and repaired.
  Report Step(uint64_t max_buckets) {
    Report slice;
    uint64_t remaining = max_buckets;
    while (remaining > 0) {
      const uint64_t buckets = table_->subtable_buckets(table_idx_);
      if (bucket_ >= buckets) {
        AdvanceSubtable(&slice);
        continue;
      }
      uint64_t chunk = std::min(remaining, buckets - bucket_);
      Report r = table_->ScrubBuckets(table_idx_, bucket_, chunk);
      slice.MergeFrom(r);
      totals_.MergeFrom(r);
      // The slice report carries the corrupted keys to the caller (who
      // repairs them from durable state); the running totals keep only the
      // counters, or a long-lived scrubber would accumulate keys forever.
      totals_.corrupted_keys.clear();
      bucket_ += chunk;
      remaining -= chunk;
      if (bucket_ >= table_->subtable_buckets(table_idx_)) {
        AdvanceSubtable(&slice);
      }
    }
    return slice;
  }

  const Report& totals() const { return totals_; }
  uint64_t full_passes() const { return full_passes_; }
  int cursor_subtable() const { return table_idx_; }
  uint64_t cursor_bucket() const { return bucket_; }

 private:
  void AdvanceSubtable(Report* slice) {
    bucket_ = 0;
    if (++table_idx_ >= table_->num_subtables()) {
      table_idx_ = 0;
      table_->ScrubStash(slice);
      table_->MarkScrubPass();
      ++full_passes_;
    }
  }

  Table* table_;
  int table_idx_ = 0;
  uint64_t bucket_ = 0;
  Report totals_;
  uint64_t full_passes_ = 0;
};

}  // namespace service
}  // namespace dycuckoo

#endif  // DYCUCKOO_SERVICE_SCRUBBER_H_
