// Write-path circuit breaker: closed -> open -> half-open -> closed.
//
// When the table repeatedly cannot grow (consecutive write requests end in
// OutOfMemory / InsertionFailure even after retries), hammering it with
// more writes only deepens the overload.  The breaker flips the server
// into read-only degraded mode: writes are rejected immediately with
// kUnavailable (reads keep flowing), and after a cooldown measured on the
// virtual clock a single probe write is let through — success closes the
// breaker, failure re-opens it for another cooldown.
//
// State machine:
//
//   kClosed    --(N consecutive write failures)-->            kOpen
//   kOpen      --(cooldown elapsed; next AllowWrite)-->       kHalfOpen
//   kHalfOpen  --(probe write succeeds)-->                    kClosed
//   kHalfOpen  --(probe write fails)-->                       kOpen
//
// Not thread-safe: driven only by the serving thread between batches.

#ifndef DYCUCKOO_SERVICE_CIRCUIT_BREAKER_H_
#define DYCUCKOO_SERVICE_CIRCUIT_BREAKER_H_

#include <cstdint>

namespace dycuckoo {
namespace service {

struct CircuitBreakerOptions {
  /// Consecutive failed write requests (post-retry) that trip the breaker.
  int failure_threshold = 3;

  /// Virtual-clock ticks the breaker stays open before admitting a probe.
  uint64_t cooldown_ticks = 2048;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const CircuitBreakerOptions& options)
      : options_(options) {}

  /// Whether a write may proceed at virtual time `now`.  In kOpen past the
  /// cooldown this transitions to kHalfOpen and admits exactly one probe;
  /// further writes are rejected until the probe resolves via
  /// OnWriteSuccess / OnWriteFailure.
  bool AllowWrite(uint64_t now);

  /// A write request completed OK: resets the failure streak; a successful
  /// half-open probe closes the breaker.
  void OnWriteSuccess();

  /// A write request failed terminally (retries exhausted): extends the
  /// streak and trips at the threshold; a failed half-open probe re-opens.
  void OnWriteFailure(uint64_t now);

  /// Forces the breaker open with the cooldown already elapsed: the very
  /// next AllowWrite transitions to half-open and admits exactly one
  /// probe.  Used to re-admit a self-healed shard — the recovered table
  /// earns back write traffic through the probe path instead of taking a
  /// full load the instant it returns.
  void ForceProbation(uint64_t now);

  /// Trips the breaker open with the full cooldown, regardless of state or
  /// failure streak.  Used when the server discovers unrepairable data
  /// corruption: writes stop immediately, not after a failure threshold.
  void ForceOpen(uint64_t now);

  State state() const { return state_; }
  bool read_only() const { return state_ != State::kClosed; }
  int consecutive_failures() const { return consecutive_failures_; }
  uint64_t trips() const { return trips_; }
  uint64_t recoveries() const { return recoveries_; }

  static const char* StateName(State s);

 private:
  void Trip(uint64_t now);

  CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  uint64_t open_until_ = 0;
  uint64_t trips_ = 0;
  uint64_t recoveries_ = 0;
};

}  // namespace service
}  // namespace dycuckoo

#endif  // DYCUCKOO_SERVICE_CIRCUIT_BREAKER_H_
