#include "service/retry_policy.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace dycuckoo {
namespace service {

uint64_t RetryPolicy::BackoffTicks(int attempt, uint64_t request_id) const {
  if (attempt < 1) attempt = 1;
  double base = static_cast<double>(initial_backoff_ticks);
  for (int i = 1; i < attempt && base < static_cast<double>(max_backoff_ticks);
       ++i) {
    base *= backoff_multiplier;
  }
  base = std::min(base, static_cast<double>(max_backoff_ticks));
  double j = std::clamp(jitter, 0.0, 1.0);
  if (j > 0.0) {
    uint64_t bits = Mix64(seed ^ Mix64(request_id * 0x9E3779B97F4A7C15ULL +
                                       static_cast<uint64_t>(attempt)));
    double u = static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0, 1)
    base *= 1.0 - j * u;
  }
  return std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(base)));
}

}  // namespace service
}  // namespace dycuckoo
