// Seeded retry policy: exponential backoff with deterministic jitter.
//
// Transient failures — an insert that lost to a hot resize
// (kInsertionFailure), an arena briefly exhausted mid-growth
// (kOutOfMemory) — deserve a bounded number of retries with growing,
// jittered delays so retrying requests do not re-collide in lockstep.
// Delays are measured in virtual-clock ticks (gpusim::VirtualClock) and
// the jitter is drawn from Mix64(seed, request, attempt), so a retry
// schedule is a pure function of (policy, request id): bit-identical
// across runs, like every other fault-path decision in this repo.

#ifndef DYCUCKOO_SERVICE_RETRY_POLICY_H_
#define DYCUCKOO_SERVICE_RETRY_POLICY_H_

#include <cstdint>

#include "common/status.h"

namespace dycuckoo {
namespace service {

/// \brief Backoff schedule configuration plus the retryability predicate.
struct RetryPolicy {
  /// Total execution attempts per request (first try included).  1 means
  /// never retry.
  int max_attempts = 4;

  /// Delay before the first retry, in virtual-clock ticks.
  uint64_t initial_backoff_ticks = 64;

  /// Growth factor per further retry.
  double backoff_multiplier = 2.0;

  /// Ceiling for any single delay.
  uint64_t max_backoff_ticks = 4096;

  /// Fraction of each delay randomized away: the delay for attempt k is
  /// drawn uniformly from [backoff_k * (1 - jitter), backoff_k].  0 means
  /// fully deterministic spacing; must be in [0, 1].
  double jitter = 0.5;

  /// Seed for the jitter draws.
  uint64_t seed = 0;

  /// True for failures worth retrying: transient pressure
  /// (kInsertionFailure, kOutOfMemory).  Rejections that cannot improve by
  /// waiting on this request (kInvalidArgument, kUnavailable, deadline and
  /// admission rejections) are not retryable.
  bool ShouldRetry(const Status& status) const {
    return status.IsInsertionFailure() || status.IsOutOfMemory();
  }

  /// Delay in ticks before retry number `attempt` (1 = first retry) of
  /// request `request_id`.  Deterministic in (policy, request_id, attempt).
  uint64_t BackoffTicks(int attempt, uint64_t request_id) const;
};

}  // namespace service
}  // namespace dycuckoo

#endif  // DYCUCKOO_SERVICE_RETRY_POLICY_H_
