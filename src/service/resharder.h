// service::Resharder — online, crash-safe shard split (N -> 2N) and merge
// (2N -> N), one hash-range chunk at a time, while the deployment serves.
//
// The keyspace is divided into num_chunks = kReshardChunksPerShard *
// max(from, to) hash-range chunks (see shard_router.h for why that count
// makes chunked routing refine the plain modulo map).  Each chunk walks a
// strictly-forward state machine, every transition persisted to the
// migration journal image before the next begins:
//
//   kPending --copy--> kCopied --cutover--> kCutOver --gc--> kDone
//
//   copy     bulk-upsert the chunk's pairs into the target shard: append
//            one kInsert per pair to the TARGET segment's WAL, group
//            commit, then apply to the target table.  Routing still old.
//   cutover  append a kReshardCutover record to the source segment, then
//            the target segment (group commit each), flip the router's
//            cutover bit, persist the journal.  From here the chunk's
//            reads and writes go to the target.
//   gc       append one kErase per stale source pair to the SOURCE
//            segment, commit, erase from the source table.
//
// Every sub-step is idempotent: copy inserts are upserts, cutover records
// are markers (duplicates harmless), gc erases are idempotent — so any
// sub-step can be re-run after a crash or a cleanly-failed group commit
// without changing the outcome.
//
// Crash decision rule (durability::RecoverShardedDeployment): the journal
// plus target-side kReshardCutover WAL evidence is resolved, and the
// migration RESUMES iff any chunk's routing switched to the new
// generation, else it ROLLS BACK (nothing observable happened: chunks
// migrate in index order, so no-cutover-anywhere means no data moved
// either).  Chunk-by-chunk this means:
//
//   kill point               journal says   recovery does
//   reshard.before_copy      pending        resume* (re-copy) or rollback
//   reshard.after_copy       copied         resume* (copy durable) or rollback
//   reshard.before_cutover   copied         resume* or rollback
//   reshard.after_cutover    cut-over       resume (routing is new)
//   reshard.before_gc        cut-over       resume (gc re-runs)
//
//   (* resume when an earlier chunk already cut over, rollback when the
//      crash hit the very first chunk — deterministically, never a guess.)
//
// Availability: the only unavailability a migration introduces is writes
// to the one chunk whose copy is durable but not yet cut over (served
// stale-ly from the source would lose the write; serving from the target
// would break old-generation reads).  Those writes are rejected with the
// same machine-readable details as quarantine rejections
// (shard / retry_after_ticks / executed=never, plus reshard_chunk).
// Reads stay available everywhere throughout.
//
// Supervision: if either participant of the in-flight chunk is
// quarantined, the migration pauses (no sub-step runs) and resumes
// automatically once ShardSupervisor heals the shard.
//
// The class is templated on its Host (ShardedTableServer) rather than
// including it: the Resharder owns the migration state machine, the host
// owns the shards, and the narrow Reshard* accessor surface between them
// is the whole contract.

#ifndef DYCUCKOO_SERVICE_RESHARDER_H_
#define DYCUCKOO_SERVICE_RESHARDER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "durability/log_format.h"
#include "durability/sharded.h"
#include "gpusim/fault_injector.h"

namespace dycuckoo {
namespace service {

template <typename Host>
class Resharder {
 public:
  enum class State {
    kIdle = 0,      // no migration armed
    kRunning = 1,   // advancing one chunk per Advance()
    kPaused = 2,    // a participating shard is quarantined; waiting on heal
    kDead = 3,      // a reshard.* kill point fired: simulated process death
    kComplete = 4,  // every chunk kDone; host must finalize
  };

  struct Stats {
    uint64_t chunks_copied = 0;
    uint64_t chunks_cut_over = 0;
    uint64_t chunks_gced = 0;
    uint64_t keys_copied = 0;
    uint64_t keys_gced = 0;
    uint64_t pauses = 0;   // running -> paused transitions
    uint64_t resumes = 0;  // paused -> running transitions
    uint64_t deferrals = 0;  // Advance() skipped: participant not quiesced
  };

  explicit Resharder(Host* host) : host_(host) {}

  /// Arms the migration with a fresh journal (BeginReshard) or a resolved
  /// one (crash resume).  The host must already have the router in
  /// two-generation mode with cutover bits matching the journal, and every
  /// physical shard slot constructed.  Persists the journal image.
  void Arm(durability::ReshardJournal journal) {
    journal_ = std::move(journal);
    copy_in_flight_ = false;
    state_ = journal_.Complete() ? State::kComplete : State::kRunning;
    host_->ReshardPersistJournal(journal_.Encode());
  }

  /// Clears the migration (after finalize or rollback).
  void Disarm() {
    state_ = State::kIdle;
    copy_in_flight_ = false;
    host_->ReshardPersistJournal(std::string());
  }

  /// Migrates at most one chunk through its remaining states.  Called from
  /// the host's Step() after per-shard serving and supervision have run,
  /// so the quiesce gate sees the post-batch queue depths.
  void Advance() {
    if (state_ != State::kRunning && state_ != State::kPaused) return;
    const uint32_t c = journal_.FirstIncomplete();
    if (c >= journal_.num_chunks) {
      state_ = State::kComplete;
      return;
    }
    const uint32_t src = journal_.source_shard(c);
    const uint32_t dst = journal_.target_shard(c);
    // Supervision gate: a quarantined participant pauses the whole
    // migration — migrating data into (or out of) a shard that is being
    // healed from its durable images would race the heal's replay.
    if (!host_->ReshardShardServing(src) ||
        !host_->ReshardShardServing(dst)) {
      if (state_ == State::kRunning) {
        ++stats_.pauses;
        state_ = State::kPaused;
        paused_on_ = !host_->ReshardShardServing(src) ? src : dst;
      }
      return;
    }
    if (state_ == State::kPaused) {
      ++stats_.resumes;
      state_ = State::kRunning;
    }
    // Quiesce gate: queued writes on either participant must drain first —
    // a queued source-side write executing after the copy was taken would
    // be silently lost at cutover.
    if (!host_->ReshardShardQuiesced(src) ||
        (dst != src && !host_->ReshardShardQuiesced(dst))) {
      ++stats_.deferrals;
      return;
    }
    current_chunk_ = c;
    while (journal_.chunks[c] != durability::ReshardChunkState::kDone) {
      bool advanced = false;
      switch (journal_.chunks[c]) {
        case durability::ReshardChunkState::kPending:
          advanced = CopyChunk(c, src, dst);
          break;
        case durability::ReshardChunkState::kCopied:
          advanced = CutOverChunk(c, src, dst);
          break;
        case durability::ReshardChunkState::kCutOver:
          advanced = GcChunk(c, src, dst);
          break;
        case durability::ReshardChunkState::kDone:
          advanced = true;
          break;
      }
      if (!advanced) return;  // killed, or a clean failure to retry
    }
    if (journal_.Complete()) state_ = State::kComplete;
  }

  /// True if writes to `chunk` must be rejected right now: the chunk's
  /// copy window is open (copy started or durable, cutover not yet done).
  /// Reads are never blocked — the source copy stays authoritative for
  /// reads until the cutover bit flips.
  bool BlocksWrites(uint32_t chunk) const {
    if (state_ == State::kIdle || state_ == State::kComplete) return false;
    const uint32_t c = journal_.FirstIncomplete();
    if (c >= journal_.num_chunks || chunk != c) return false;
    return copy_in_flight_ ||
           journal_.chunks[c] == durability::ReshardChunkState::kCopied;
  }

  State state() const { return state_; }
  bool active() const {
    return state_ != State::kIdle && state_ != State::kComplete;
  }
  bool dead() const { return state_ == State::kDead; }
  bool complete() const { return state_ == State::kComplete; }
  bool paused() const { return state_ == State::kPaused; }
  uint32_t paused_on() const { return paused_on_; }
  uint32_t current_chunk() const { return current_chunk_; }
  uint64_t chunks_done() const {
    uint64_t n = 0;
    for (durability::ReshardChunkState s : journal_.chunks) {
      if (s == durability::ReshardChunkState::kDone) ++n;
    }
    return n;
  }
  const durability::ReshardJournal& journal() const { return journal_; }
  const Stats& stats() const { return stats_; }

 private:
  /// Crosses a reshard kill point; firing is simulated whole-process
  /// death (unlike shard-scoped durability kill points, which take one
  /// fault domain).  The host stops stepping and the test recovers the
  /// deployment from its durable images.
  bool Kill(const char* point) {
    auto* injector = gpusim::FaultInjector::Active();
    if (injector != nullptr && injector->OnKillPoint(point)) {
      state_ = State::kDead;
      return true;
    }
    return false;
  }

  bool CopyChunk(uint32_t c, uint32_t src, uint32_t dst) {
    if (Kill(durability::kReshardKillPointNames[0])) return false;
    copy_in_flight_ = true;  // write window opens: see BlocksWrites
    if (dst != src) {
      auto* table = host_->ReshardTable(src);
      auto* mgr = host_->ReshardManager(dst);
      auto pairs = table->Dump();
      uint64_t copied = 0;
      for (const auto& kv : pairs) {
        if (host_->ReshardRouter()->ChunkOf(kv.first) != c) continue;
        if (mgr != nullptr) mgr->LogInsert(kv.first, kv.second);
        ++copied;
      }
      if (mgr != nullptr && !mgr->Commit().ok()) {
        // Clean failure retries next Advance (re-logged duplicates are
        // upserts); a crash-style fault surfaces as the shard crashing,
        // which the supervision gate turns into a pause.
        return false;
      }
      auto* target = host_->ReshardTable(dst);
      for (const auto& kv : pairs) {
        if (host_->ReshardRouter()->ChunkOf(kv.first) != c) continue;
        if (!target->Insert(kv.first, kv.second).ok()) return false;
      }
      stats_.keys_copied += copied;
    }
    journal_.chunks[c] = durability::ReshardChunkState::kCopied;
    host_->ReshardPersistJournal(journal_.Encode());
    ++stats_.chunks_copied;
    if (Kill(durability::kReshardKillPointNames[1])) return false;
    return true;
  }

  bool CutOverChunk(uint32_t c, uint32_t src, uint32_t dst) {
    copy_in_flight_ = true;  // crash-resume lands here with kCopied
    if (Kill(durability::kReshardKillPointNames[2])) return false;
    // Source first, target second: recovery trusts only the TARGET-side
    // record (it proves the copy committed before it), so a crash between
    // the two leaves a stray source marker that proves nothing.
    auto* smgr = host_->ReshardManager(src);
    if (smgr != nullptr) {
      smgr->LogReshardCutover(journal_.generation_from, c,
                              journal_.shards_from, journal_.shards_to);
      if (!smgr->Commit().ok()) return false;
    }
    if (dst != src) {
      auto* tmgr = host_->ReshardManager(dst);
      if (tmgr != nullptr) {
        tmgr->LogReshardCutover(journal_.generation_from, c,
                                journal_.shards_from, journal_.shards_to);
        if (!tmgr->Commit().ok()) return false;
      }
    }
    host_->ReshardRouter()->SetCutOver(c);
    journal_.chunks[c] = durability::ReshardChunkState::kCutOver;
    copy_in_flight_ = false;  // write window closes: writes route to target
    host_->ReshardPersistJournal(journal_.Encode());
    ++stats_.chunks_cut_over;
    if (Kill(durability::kReshardKillPointNames[3])) return false;
    return true;
  }

  bool GcChunk(uint32_t c, uint32_t src, uint32_t dst) {
    if (Kill(durability::kReshardKillPointNames[4])) return false;
    if (dst != src) {
      auto* table = host_->ReshardTable(src);
      auto* mgr = host_->ReshardManager(src);
      auto pairs = table->Dump();
      std::vector<decltype(pairs[0].first)> doomed;
      for (const auto& kv : pairs) {
        if (host_->ReshardRouter()->ChunkOf(kv.first) != c) continue;
        if (mgr != nullptr) mgr->LogErase(kv.first);
        doomed.push_back(kv.first);
      }
      if (mgr != nullptr && !mgr->Commit().ok()) return false;
      for (const auto& k : doomed) table->Erase(k);
      stats_.keys_gced += doomed.size();
    }
    journal_.chunks[c] = durability::ReshardChunkState::kDone;
    host_->ReshardPersistJournal(journal_.Encode());
    ++stats_.chunks_gced;
    return true;
  }

  Host* host_;
  durability::ReshardJournal journal_;
  State state_ = State::kIdle;
  bool copy_in_flight_ = false;
  uint32_t current_chunk_ = 0;
  uint32_t paused_on_ = 0;
  Stats stats_;
};

}  // namespace service
}  // namespace dycuckoo

#endif  // DYCUCKOO_SERVICE_RESHARDER_H_
