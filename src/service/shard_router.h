// ShardRouter: the pure key -> shard function a sharded deployment lives
// or dies by.
//
// Routing invariants (enforced, not aspirational):
//   1. Determinism: ShardOf(key) depends only on (key, num_shards, seed).
//      The same triple routes the same way on every host, every restart,
//      and inside recovery replay — which is why the triple is recorded in
//      the durability::ShardManifest and validated before any WAL replay.
//   2. Totality: every key routes to exactly one shard; there is no
//      "unowned" key and no key owned by two shards.  Cross-shard requests
//      are therefore trivially partitionable: each op goes to precisely
//      one sub-request.
//   3. Independence from occupancy: routing never consults table state,
//      so a quarantined or resizing shard keeps its keyspace — keys are
//      never silently re-homed onto healthy shards (that would break
//      recovery and turn a fault domain into a consistency bug).
//
// The map is Mix64(key ^ seed) % num_shards: the finalizer's avalanche
// decorrelates shard choice from the table's own bucket hashing (which
// mixes with different constants), so one shard does not concentrate the
// keys of one bucket.

#ifndef DYCUCKOO_SERVICE_SHARD_ROUTER_H_
#define DYCUCKOO_SERVICE_SHARD_ROUTER_H_

#include <cstdint>

#include "common/hash.h"

namespace dycuckoo {
namespace service {

class ShardRouter {
 public:
  ShardRouter(uint32_t num_shards, uint64_t seed)
      : num_shards_(num_shards == 0 ? 1 : num_shards), seed_(seed) {}

  template <typename Key>
  uint32_t ShardOf(Key key) const {
    return static_cast<uint32_t>(Mix64(static_cast<uint64_t>(key) ^ seed_) %
                                 num_shards_);
  }

  uint32_t num_shards() const { return num_shards_; }
  uint64_t seed() const { return seed_; }

 private:
  uint32_t num_shards_;
  uint64_t seed_;
};

}  // namespace service
}  // namespace dycuckoo

#endif  // DYCUCKOO_SERVICE_SHARD_ROUTER_H_
