// ShardRouter: the pure key -> shard function a sharded deployment lives
// or dies by.
//
// Routing invariants (enforced, not aspirational):
//   1. Determinism: ShardOf(key) depends only on (key, num_shards, seed)
//      — plus, during a live reshard, the per-chunk cutover bitmap, which
//      is itself durable state (the migration journal).  The same state
//      routes the same way on every host, every restart, and inside
//      recovery replay — which is why the routing identity is recorded in
//      the durability::ShardManifest and validated before any WAL replay.
//   2. Totality: every key routes to exactly one shard; there is no
//      "unowned" key and no key owned by two shards.  Cross-shard requests
//      are therefore trivially partitionable: each op goes to precisely
//      one sub-request.
//   3. Independence from occupancy: routing never consults table state,
//      so a quarantined or resizing shard keeps its keyspace — keys are
//      never silently re-homed onto healthy shards (that would break
//      recovery and turn a fault domain into a consistency bug).
//
// The map is Mix64(key ^ seed) % num_shards: the finalizer's avalanche
// decorrelates shard choice from the table's own bucket hashing (which
// mixes with different constants), so one shard does not concentrate the
// keys of one bucket.
//
// Two-generation routing (elastic resharding): a live split (N -> 2N) or
// merge (2N -> N) migrates the keyspace in fixed hash-range chunks,
// chunk = Mix64(key ^ seed) % num_chunks.  Because num_chunks is a
// multiple of BOTH shard counts, (h % num_chunks) % N == h % N — chunking
// refines the existing map without changing it, every chunk lives wholly
// on one shard in each generation, and a migration that never starts is
// byte-for-byte the old router.  During a migration a key routes by the
// NEW generation iff its chunk's cutover bit is set:
//
//   ShardOf(key) = cut[chunk] ? chunk % to_shards : chunk % num_shards
//
// The bits flip one chunk at a time as service::Resharder copies, WALs a
// cutover record, and garbage-collects — so at every instant the router
// is total and deterministic, and recovery can rebuild the exact bitmap
// from the migration journal plus the kReshardCutover records.

#ifndef DYCUCKOO_SERVICE_SHARD_ROUTER_H_
#define DYCUCKOO_SERVICE_SHARD_ROUTER_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace dycuckoo {
namespace service {

class ShardRouter {
 public:
  ShardRouter(uint32_t num_shards, uint64_t seed)
      : num_shards_(num_shards == 0 ? 1 : num_shards), seed_(seed) {}

  template <typename Key>
  uint64_t HashOf(Key key) const {
    return Mix64(static_cast<uint64_t>(key) ^ seed_);
  }

  template <typename Key>
  uint32_t ShardOf(Key key) const {
    const uint64_t h = HashOf(key);
    if (!migrating_) return static_cast<uint32_t>(h % num_shards_);
    const uint32_t c = static_cast<uint32_t>(h % num_chunks_);
    return cut_[c] ? c % to_shards_ : c % num_shards_;
  }

  /// The key's migration chunk.  Only meaningful while migrating() (the
  /// chunk domain is the active migration's num_chunks).
  template <typename Key>
  uint32_t ChunkOf(Key key) const {
    return static_cast<uint32_t>(HashOf(key) % num_chunks_);
  }

  // --- Two-generation migration state -----------------------------------

  /// Arms the two-generation map: old generation num_shards(), new
  /// generation `to_shards`, all chunks initially routing old.
  /// `num_chunks` must be a positive multiple of both shard counts so the
  /// chunk layer refines the plain modulo map instead of changing it.
  Status BeginMigration(uint32_t to_shards, uint32_t num_chunks) {
    if (migrating_) {
      return Status::InvalidArgument("router: migration already active");
    }
    if (to_shards == 0 || num_chunks == 0 ||
        num_chunks % num_shards_ != 0 || num_chunks % to_shards != 0) {
      return Status::InvalidArgument(
          "router: num_chunks must be a positive multiple of both shard "
          "counts");
    }
    to_shards_ = to_shards;
    num_chunks_ = num_chunks;
    cut_.assign(num_chunks, false);
    migrating_ = true;
    return Status::OK();
  }

  /// Routes `chunk` by the new generation from now on.  Idempotent.
  void SetCutOver(uint32_t chunk) { cut_[chunk] = true; }

  bool cut_over(uint32_t chunk) const { return migrating_ && cut_[chunk]; }

  /// Migration complete: the new generation becomes THE generation.
  void FinishMigration() {
    num_shards_ = to_shards_;
    migrating_ = false;
    to_shards_ = 0;
    num_chunks_ = 0;
    cut_.clear();
  }

  /// Abandons a migration that cut nothing over (routing never changed,
  /// so dropping the state is invisible to every key).
  void AbortMigration() {
    migrating_ = false;
    to_shards_ = 0;
    num_chunks_ = 0;
    cut_.clear();
  }

  bool migrating() const { return migrating_; }
  uint32_t num_shards() const { return num_shards_; }
  uint32_t to_shards() const { return to_shards_; }
  uint32_t num_chunks() const { return num_chunks_; }
  uint64_t seed() const { return seed_; }

 private:
  uint32_t num_shards_;
  uint64_t seed_;
  bool migrating_ = false;
  uint32_t to_shards_ = 0;
  uint32_t num_chunks_ = 0;
  std::vector<bool> cut_;  // per chunk: route by the new generation?
};

}  // namespace service
}  // namespace dycuckoo

#endif  // DYCUCKOO_SERVICE_SHARD_ROUTER_H_
