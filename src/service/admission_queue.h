// Bounded admission queue for the serving layer.
//
// Overload safety starts here: the queue has a hard capacity and Push
// reports kResourceExhausted instead of buffering without bound, so a
// client that outruns the table sees explicit backpressure (and can shed
// or retry) rather than growing the server's memory until it dies.

#ifndef DYCUCKOO_SERVICE_ADMISSION_QUEUE_H_
#define DYCUCKOO_SERVICE_ADMISSION_QUEUE_H_

#include <cstdint>
#include <deque>
#include <utility>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dycuckoo {
namespace service {

/// \brief Mutex-guarded FIFO with a hard capacity.
///
/// Producers (client threads calling Submit) race against the single
/// consumer (the serving thread draining micro-batches); the lock is held
/// only for the deque operation.
template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(uint64_t capacity) : capacity_(capacity) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Enqueues, or rejects with kResourceExhausted when the queue is at
  /// capacity.  Never blocks.
  Status Push(T item) {
    common::MutexLock lock(mu_);
    if (items_.size() >= capacity_) {
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(capacity_) + " requests)");
    }
    items_.push_back(std::move(item));
    return Status::OK();
  }

  /// Dequeues the oldest item; false when empty.
  bool Pop(T* out) {
    common::MutexLock lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  uint64_t size() const {
    common::MutexLock lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }
  uint64_t capacity() const { return capacity_; }

 private:
  const uint64_t capacity_;
  mutable common::Mutex mu_;
  std::deque<T> items_ GUARDED_BY(mu_);
};

}  // namespace service
}  // namespace dycuckoo

#endif  // DYCUCKOO_SERVICE_ADMISSION_QUEUE_H_
