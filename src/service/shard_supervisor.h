// ShardSupervisor: the per-shard health state machine of a sharded
// deployment.
//
// Each shard is an independent fault domain; the supervisor decides —
// deterministically, on virtual time — what happens when one faults:
//
//   kServing     --(crash / DataLoss / unrecoverable fault)--> kQuarantined
//   kQuarantined --(heal due; recovery + scrub succeed)------> kServing
//   kQuarantined --(heal fails; attempts remain)-------------> kQuarantined
//                   (backoff doubles before the next attempt)
//   kQuarantined --(heal fails; attempts exhausted)----------> kFailed
//
// While quarantined, the shard's keys answer kUnavailable with a
// machine-readable retry-after hint; all other shards are undisturbed.
// A heal that succeeds bumps the shard's generation — responses from the
// pre-fault incarnation are fenced off by comparing generations, so a
// request admitted before the fault can never be acknowledged by state
// that recovery has since rewritten.
//
// The supervisor holds no table, clock, or durability references: it is a
// pure decision component the ShardedTableServer drives, and is testable
// in isolation.  Not thread-safe (driven by the one serving thread).

#ifndef DYCUCKOO_SERVICE_SHARD_SUPERVISOR_H_
#define DYCUCKOO_SERVICE_SHARD_SUPERVISOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace dycuckoo {
namespace service {

enum class ShardState { kServing, kQuarantined, kFailed };

inline const char* ShardStateName(ShardState s) {
  switch (s) {
    case ShardState::kServing:
      return "serving";
    case ShardState::kQuarantined:
      return "quarantined";
    case ShardState::kFailed:
      return "failed";
  }
  return "unknown";
}

struct ShardSupervisorOptions {
  /// Attempt online self-healing of quarantined shards.  When false a
  /// quarantined shard stays quarantined until healed explicitly.
  bool auto_heal = true;

  /// Virtual-clock ticks between quarantine and the first heal attempt;
  /// doubles after every failed attempt (a faulty segment store should
  /// not be hammered at full rate).
  uint64_t heal_backoff_ticks = 64;

  /// Heal attempts before the shard is declared kFailed (operator
  /// intervention required; its keys stay unavailable).
  int max_heal_attempts = 6;
};

class ShardSupervisor {
 public:
  ShardSupervisor(uint32_t num_shards, const ShardSupervisorOptions& options)
      : options_(options), shards_(num_shards) {}

  ShardState state(uint32_t shard) const { return shards_[shard].state; }
  bool serving(uint32_t shard) const {
    return shards_[shard].state == ShardState::kServing;
  }

  /// Generation of the shard's current incarnation; bumped by every
  /// successful heal.  Responses minted under an older generation are
  /// stale by definition.
  uint64_t generation(uint32_t shard) const {
    return shards_[shard].generation;
  }

  /// Why the shard was last quarantined (OK if it never was).
  const Status& fault(uint32_t shard) const { return shards_[shard].fault; }

  /// Outcome of the most recent heal attempt.
  const Status& last_heal_status(uint32_t shard) const {
    return shards_[shard].last_heal;
  }

  /// kServing -> kQuarantined.  Records the classifying fault and
  /// schedules the first heal attempt one backoff from `now`.  No-op when
  /// already quarantined or failed (the first fault classification wins).
  void Quarantine(uint32_t shard, uint64_t now, Status reason) {
    Shard& s = shards_[shard];
    if (s.state != ShardState::kServing) return;
    s.state = ShardState::kQuarantined;
    s.fault = std::move(reason);
    s.heal_attempts = 0;
    s.heal_not_before = now + options_.heal_backoff_ticks;
    ++quarantines_;
  }

  /// Operator-requested immediate heal: make the shard's next supervision
  /// pass attempt recovery regardless of the scheduled backoff.  No-op
  /// unless quarantined (a kFailed shard stays parked — re-quarantine it
  /// via operator tooling if its segments were repaired out of band).
  void RequestHealNow(uint32_t shard) {
    Shard& s = shards_[shard];
    if (s.state != ShardState::kQuarantined) return;
    s.heal_not_before = 0;
  }

  /// Whether a heal attempt should run at virtual time `now`.
  bool HealDue(uint32_t shard, uint64_t now) const {
    const Shard& s = shards_[shard];
    return options_.auto_heal && s.state == ShardState::kQuarantined &&
           now >= s.heal_not_before;
  }

  /// kQuarantined -> kServing: the heal recovered, scrubbed, and
  /// validated the shard.  Bumps the generation fence.
  void OnHealSuccess(uint32_t shard, uint64_t now) {
    Shard& s = shards_[shard];
    s.state = ShardState::kServing;
    s.last_heal = Status::OK();
    ++s.generation;
    s.healed_at = now;
    ++heals_;
  }

  /// A heal attempt failed: exponential backoff before the next one, or
  /// kFailed once attempts are exhausted.
  void OnHealFailure(uint32_t shard, uint64_t now, Status why) {
    Shard& s = shards_[shard];
    s.last_heal = std::move(why);
    ++s.heal_attempts;
    if (s.heal_attempts >= options_.max_heal_attempts) {
      s.state = ShardState::kFailed;
      return;
    }
    s.heal_not_before =
        now + (options_.heal_backoff_ticks << s.heal_attempts);
  }

  /// Machine-readable retry hint for a rejection at `now`: ticks until
  /// the next heal attempt could restore service (at least 1), or 0 for a
  /// kFailed shard (no automatic recovery is coming).
  uint64_t RetryAfterTicks(uint32_t shard, uint64_t now) const {
    const Shard& s = shards_[shard];
    if (s.state == ShardState::kFailed || !options_.auto_heal) return 0;
    if (s.heal_not_before > now) return s.heal_not_before - now;
    return 1;
  }

  /// Elastic resharding hooks: a split adds fault domains (born serving,
  /// generation 0), a finalized merge retires the drained source domains.
  /// Only ever called by ShardedTableServer with the physical slot count.
  void GrowTo(uint32_t num_shards) {
    if (num_shards > shards_.size()) shards_.resize(num_shards);
  }
  void ShrinkTo(uint32_t num_shards) {
    if (num_shards < shards_.size()) shards_.resize(num_shards);
  }

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  uint64_t quarantines() const { return quarantines_; }
  uint64_t heals() const { return heals_; }
  uint32_t serving_count() const {
    uint32_t n = 0;
    for (const Shard& s : shards_) {
      if (s.state == ShardState::kServing) ++n;
    }
    return n;
  }

 private:
  struct Shard {
    ShardState state = ShardState::kServing;
    Status fault;
    Status last_heal;
    int heal_attempts = 0;
    uint64_t heal_not_before = 0;
    uint64_t generation = 0;
    uint64_t healed_at = 0;
  };

  ShardSupervisorOptions options_;
  std::vector<Shard> shards_;
  uint64_t quarantines_ = 0;
  uint64_t heals_ = 0;
};

}  // namespace service
}  // namespace dycuckoo

#endif  // DYCUCKOO_SERVICE_SHARD_SUPERVISOR_H_
