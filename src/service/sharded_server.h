// ShardedTableServer: N independent fault domains behind one front door.
//
// A single TableServer is one blast radius: a crash-style durability
// fault, a poisoned WAL segment, or a wedged resize takes the whole
// keyspace down at once.  The sharded server partitions the keyspace
// across N shards — each with its OWN DynamicTable, admission queue,
// micro-batching lane, circuit breaker, scrub cursor, WAL segment, and
// checkpoint lineage — so a fault in shard k is invisible to every other
// shard: their queues keep draining, their group commits keep flushing,
// their breakers stay closed.
//
// Routing: ShardRouter (Mix64(key ^ router_seed) % N).  The routing
// triple (num_shards, router_seed, record widths) is recorded in a
// durability::ShardManifest; recovery validates it before replaying any
// segment, because a WAL replayed under different routing would re-home
// keys onto shards whose probes will never find them.
//
// The shard supervisor (ShardSupervisor) watches per-shard health between
// batches.  When a shard's durability fault domain dies (crash-style kill
// point or I/O fault under that shard's scope), the supervisor
// quarantines exactly that shard: requests touching its keys answer
// kUnavailable with machine-readable details — "shard", the shard id;
// "retry_after_ticks", when service could resume; "executed", whether the
// ops ran ("never" for rejections at the front door, "uncertain" for
// requests in flight when the shard died).  Transient overload is NOT a
// quarantine trigger — each shard's circuit breaker already degrades it
// to read-only in place; quarantine is reserved for integrity faults
// where the shard's durable lineage must be re-established.
//
// Self-healing, all on the one master VirtualClock (so runs are
// deterministic and replayable under DYCUCKOO_CHAOS_SEED): after a
// backoff the supervisor replays the quarantined shard's own checkpoint +
// WAL images (durability::Recover, with the shard's RecoverySource so the
// report names the segment), scrubs and validates the recovered table,
// starts a fresh durability lineage with a baseline checkpoint, and
// re-admits the shard through the circuit breaker's half-open probe path
// (BeginWriteProbation) — the healed shard earns traffic back with one
// probe write instead of taking full load cold.  Heal failures back off
// exponentially; exhausted attempts park the shard as kFailed (operator
// intervention).  Every successful heal bumps the shard's generation;
// responses minted by the pre-fault incarnation are fenced off by
// generation, so a request admitted before the fault is never
// acknowledged by state recovery has since rewritten.
//
// Elastic resharding: BeginReshard(2N) / BeginReshard(N/2) arms a
// service::Resharder that migrates the keyspace one hash-range chunk at a
// time while the deployment serves (two-generation routing in ShardRouter,
// copy -> cutover -> gc per chunk, every transition journaled).  The only
// write unavailability is the one chunk whose copy window is open; reads
// never block.  A crash mid-migration recovers through
// durability::RecoverShardedDeployment + AdoptRecoveredSharded, which
// resumes or rolls back deterministically.  The manifest's generation
// bumps when a migration finalizes.
//
// Threading: Submit/TakeResponse are safe from any thread; Step runs on
// one serving thread (the same contract as TableServer).

#ifndef DYCUCKOO_SERVICE_SHARDED_SERVER_H_
#define DYCUCKOO_SERVICE_SHARDED_SERVER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "durability/manager.h"
#include "durability/recovery.h"
#include "durability/sharded.h"
#include "dycuckoo/dynamic_table.h"
#include "dycuckoo/options.h"
#include "gpusim/virtual_clock.h"
#include "service/resharder.h"
#include "service/shard_router.h"
#include "service/shard_supervisor.h"
#include "service/table_server.h"

namespace dycuckoo {
namespace service {

/// Front-door counters for the sharded deployment (per-shard counters
/// live on each shard's own ServerStats).
struct ShardedServerStats {
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> subrequests{0};
  std::atomic<uint64_t> shard_rejections{0};   // ops refused at the front door
  std::atomic<uint64_t> subrequests_lost{0};   // in flight when a shard died
  std::atomic<uint64_t> reshard_blocked_writes{0};  // writes to the open chunk
  std::atomic<uint64_t> reshard_rollback_erased{0};  // partial copies swept
};

template <typename Key, typename Value>
class ShardedTableServer {
 public:
  using Shard = TableServer<Key, Value>;
  using Table = DynamicTable<Key, Value>;
  using Manager = durability::DurabilityManager<Key, Value>;
  using Op = typename Shard::Op;
  using OpType = typename Shard::OpType;
  using OpResult = typename Shard::OpResult;
  using Request = typename Shard::Request;
  using Response = typename Shard::Response;

  struct Options {
    uint32_t num_shards = 4;

    /// Seed of the key->shard map.  Part of the deployment's durable
    /// identity (recorded in the manifest): changing it orphans every
    /// existing segment.
    uint64_t router_seed = 0xD1C0CC00F417D077ULL;

    /// Serving knobs applied to every shard.  The default deadline is
    /// applied ONCE at the sharded front door (on the master clock), not
    /// again per shard.
    TableServerOptions shard;

    durability::DurabilityOptions durability;

    /// Give every shard its own DurabilityManager (scope "shard-NNNNN/",
    /// segments named by durability::WalSegmentName et al.).  Without
    /// durability there is no crash detection and no self-heal.
    bool attach_durability = true;

    ShardSupervisorOptions supervisor;
  };

  /// Operator-facing snapshot of one shard's health.
  struct ShardHealth {
    uint32_t shard = 0;
    ShardState state = ShardState::kServing;
    uint64_t generation = 0;
    Status fault;                   // why quarantined (OK if never)
    Status last_heal_status;
    CircuitBreaker::State breaker = CircuitBreaker::State::kClosed;
    uint64_t table_size = 0;        // 0 while quarantined (table is down)
  };

  /// Builds a fresh N-shard deployment.  Each shard's table options are
  /// derived from `table_options`: capacity split N ways, hash seed
  /// decorrelated per shard, and the arena memory tag prefixed with the
  /// shard scope so alloc-fault campaigns can target one shard.
  static Status Create(const DyCuckooOptions& table_options,
                       const Options& options,
                       std::unique_ptr<ShardedTableServer>* out) {
    DYCUCKOO_RETURN_NOT_OK(ValidateOptions(options));
    std::unique_ptr<ShardedTableServer> srv(
        new ShardedTableServer(table_options, options));
    for (uint32_t s = 0; s < options.num_shards; ++s) {
      ShardSlot& slot = srv->shards_[s];
      std::unique_ptr<Table> table;
      DYCUCKOO_RETURN_NOT_OK(Table::Create(slot.table_options, &table));
      DYCUCKOO_RETURN_NOT_OK(
          Shard::Adopt(std::move(table), options.shard, &slot.server));
      slot.server->UseExternalClock(&srv->clock_);
      if (options.attach_durability) {
        slot.manager = std::make_unique<Manager>(
            options.durability, /*start_lsn=*/1, durability::ShardScope(s));
        slot.server->AttachDurability(slot.manager.get());
      }
    }
    *out = std::move(srv);
    return Status::OK();
  }

  /// Builds a deployment from the per-shard outcomes of
  /// durability::RecoverAllShards — the restart path.  Shards that
  /// recovered cleanly serve immediately (fresh durability lineage seeded
  /// with a baseline checkpoint); shards whose recovery failed start
  /// quarantined with the classifying status, retaining their crash-time
  /// images (`images[s]`) so the supervisor's heal attempts can retry.
  static Status AdoptRecovered(
      std::vector<durability::ShardRecoveryOutcome<Key, Value>>* outcomes,
      const std::vector<durability::ShardImages>& images,
      const DyCuckooOptions& table_options, const Options& options,
      std::unique_ptr<ShardedTableServer>* out) {
    DYCUCKOO_RETURN_NOT_OK(ValidateOptions(options));
    if (outcomes->size() != options.num_shards ||
        images.size() != options.num_shards) {
      return Status::InvalidArgument(
          "AdoptRecovered: one outcome and one image pair per shard");
    }
    std::unique_ptr<ShardedTableServer> srv(
        new ShardedTableServer(table_options, options));
    const uint64_t now = srv->clock_.Now();
    for (uint32_t s = 0; s < options.num_shards; ++s) {
      srv->AdoptSlot(s, &(*outcomes)[s], images[s], now);
    }
    *out = std::move(srv);
    return Status::OK();
  }

  /// The reshard-aware restart path: builds a deployment from
  /// durability::RecoverShardedDeployment's decision.
  ///
  ///   - no migration in flight: same as AdoptRecovered (manifest
  ///     generation restored);
  ///   - rolled back: the old generation's shards are adopted, a split's
  ///     never-cut-over new shards are discarded, and any partially
  ///     copied pairs are swept from the targets (logged erases) so the
  ///     deployment is exactly its pre-migration self;
  ///   - mid-reshard: every physical slot is adopted (mixed-generation
  ///     segment names preserved), the router's two-generation state and
  ///     cutover bitmap are rebuilt from the resolved journal, and the
  ///     migration resumes on the next Step — including straight into a
  ///     pause if a participant came back quarantined.
  static Status AdoptRecoveredSharded(
      durability::ShardedDeploymentRecovery<Key, Value>* rec,
      const std::vector<durability::ShardImages>& images,
      const DyCuckooOptions& table_options, const Options& options,
      std::unique_ptr<ShardedTableServer>* out) {
    DYCUCKOO_RETURN_NOT_OK(ValidateOptions(options));
    if (options.num_shards != rec->manifest.num_shards ||
        options.router_seed != rec->manifest.router_seed) {
      return Status::InvalidArgument(
          "AdoptRecoveredSharded: options do not match the recovered "
          "manifest's routing identity");
    }
    if (!rec->mid_reshard && !rec->rolled_back) {
      DYCUCKOO_RETURN_NOT_OK(AdoptRecovered(&rec->outcomes, images,
                                            table_options, options, out));
      (*out)->manifest_.generation = rec->manifest.generation;
      (*out)->manifest_image_ = (*out)->manifest_.Encode();
      return Status::OK();
    }
    const durability::ReshardJournal& j = rec->journal;
    const uint32_t physical = std::max(j.shards_from, j.shards_to);
    if (rec->outcomes.size() != physical || images.size() != physical) {
      return Status::InvalidArgument(
          "AdoptRecoveredSharded: one outcome and image pair per physical "
          "slot required");
    }
    std::unique_ptr<ShardedTableServer> srv(
        new ShardedTableServer(table_options, options));
    srv->manifest_.generation = rec->manifest.generation;
    srv->manifest_image_ = srv->manifest_.Encode();
    const uint64_t now = srv->clock_.Now();

    if (rec->rolled_back) {
      // Routing never switched: the old generation is the deployment.
      // A split's new shards are dropped wholesale (their only content
      // was never-cut-over copies); a merge's targets are swept below.
      for (uint32_t s = 0; s < j.shards_from; ++s) {
        srv->AdoptSlot(s, &rec->outcomes[s], images[s], now);
      }
      srv->RollbackSweep();
      *out = std::move(srv);
      return Status::OK();
    }

    // Mid-reshard resume: physical slots, two-generation routing.
    srv->supervisor_.GrowTo(physical);
    srv->shards_.resize(physical);
    for (uint32_t s = j.shards_from; s < physical; ++s) {
      srv->shards_[s].table_options =
          ShardTableOptions(table_options, s, j.shards_to);
      srv->shards_[s].segment = durability::WalSegmentName(s, j.shards_to);
    }
    for (uint32_t s = 0; s < physical; ++s) {
      srv->AdoptSlot(s, &rec->outcomes[s], images[s], now);
    }
    DYCUCKOO_RETURN_NOT_OK(
        srv->router_.BeginMigration(j.shards_to, j.num_chunks));
    for (uint32_t c = 0; c < j.num_chunks; ++c) {
      if (j.chunks[c] == durability::ReshardChunkState::kCutOver ||
          j.chunks[c] == durability::ReshardChunkState::kDone) {
        srv->router_.SetCutOver(c);
      }
    }
    srv->resharder_.Arm(rec->journal);
    *out = std::move(srv);
    return Status::OK();
  }

  ShardedTableServer(const ShardedTableServer&) = delete;
  ShardedTableServer& operator=(const ShardedTableServer&) = delete;

  // ---------------------------------------------------------------------
  // Client side (any thread).
  // ---------------------------------------------------------------------

  /// Admits a request, fanning its ops out to their shards.  Ops routed
  /// to a quarantined/failed shard are rejected up front (their portion
  /// of the response carries kUnavailable with "shard",
  /// "retry_after_ticks" and "executed"="never" details); the rest
  /// proceed normally.  Always assigns an id with a retrievable response.
  uint64_t Submit(Request request) {
    uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
    stats_.submitted.fetch_add(1, std::memory_order_relaxed);
    common::MutexLock lock(mu_);
    const uint64_t now = clock_.Now();
    if (reshard_crashed_) {
      Complete(id, Response{Status::Unavailable(
                                "deployment dead: a reshard kill point "
                                "fired; restart and recover")
                                .WithDetail("executed", "never"),
                            {}, 0, now});
      return id;
    }
    if (request.deadline == 0 && options_.shard.default_deadline_ticks > 0) {
      request.deadline = now + options_.shard.default_deadline_ticks;
    }
    if (request.ops.empty()) {
      Complete(id, Response{Status::OK(), {}, 0, now});
      return id;
    }

    // Partition op indices by shard (ordered map: sub-requests are
    // created in ascending shard order, deterministically).
    std::map<uint32_t, std::vector<uint32_t>> by_shard;
    for (uint32_t i = 0; i < request.ops.size(); ++i) {
      by_shard[router_.ShardOf(request.ops[i].key)].push_back(i);
    }

    Join join;
    join.results.resize(request.ops.size());
    const bool migrating = resharder_.active();
    for (auto& [shard, indices] : by_shard) {
      if (!supervisor_.serving(shard)) {
        stats_.shard_rejections.fetch_add(indices.size(),
                                          std::memory_order_relaxed);
        MergeStatus(&join, ShardUnavailable(shard, now, "never"), shard);
        continue;
      }
      std::vector<uint32_t> admitted;
      if (migrating) {
        // The one chunk whose copy window is open rejects writes (reads
        // stay available): a write applied to the source after its copy
        // was taken would be silently dropped at cutover.
        admitted.reserve(indices.size());
        for (uint32_t idx : indices) {
          const uint32_t chunk = router_.ChunkOf(request.ops[idx].key);
          if (request.ops[idx].type != OpType::kFind &&
              resharder_.BlocksWrites(chunk)) {
            stats_.reshard_blocked_writes.fetch_add(
                1, std::memory_order_relaxed);
            stats_.shard_rejections.fetch_add(1, std::memory_order_relaxed);
            MergeStatus(&join, ReshardBlocked(shard, chunk, now), shard);
            continue;
          }
          admitted.push_back(idx);
        }
        if (admitted.empty()) continue;
      } else {
        admitted = std::move(indices);
      }
      Request sub;
      sub.deadline = request.deadline;
      sub.ops.reserve(admitted.size());
      for (uint32_t idx : admitted) sub.ops.push_back(request.ops[idx]);
      SubRef ref;
      ref.shard = shard;
      ref.generation = supervisor_.generation(shard);
      ref.op_indices = std::move(admitted);
      ref.sub_id = shards_[shard].server->Submit(std::move(sub));
      stats_.subrequests.fetch_add(1, std::memory_order_relaxed);
      join.pending.push_back(std::move(ref));
    }
    if (join.pending.empty()) {
      Complete(id, Finalize(&join, now));
    } else {
      joins_.emplace(id, std::move(join));
    }
    return id;
  }

  /// Retrieves (and removes) the response for `id`; false if not
  /// completed yet.
  bool TakeResponse(uint64_t id, Response* out) {
    common::MutexLock lock(responses_mu_);
    auto it = responses_.find(id);
    if (it == responses_.end()) return false;
    *out = std::move(it->second);
    responses_.erase(it);
    return true;
  }

  // ---------------------------------------------------------------------
  // Serving side (one thread).
  // ---------------------------------------------------------------------

  /// One serving round: a micro-batch step on every serving shard, then
  /// supervision (quarantine newly crashed shards, attempt due heals),
  /// then response harvesting.  Returns the number of front-door requests
  /// it completed.  Always advances the master clock, so heal backoffs
  /// elapse even on an idle deployment.
  uint64_t Step() {
    common::MutexLock lock(mu_);
    if (reshard_crashed_) return 0;
    clock_.Advance(1);
    for (uint32_t s = 0; s < physical_shards(); ++s) {
      if (supervisor_.serving(s) && shards_[s].server != nullptr) {
        shards_[s].server->Step();
      }
    }
    Supervise();
    if (resharder_.active()) {
      resharder_.Advance();
      if (resharder_.dead()) {
        // Simulated whole-process death: the deployment stops serving;
        // only RecoverShardedDeployment + AdoptRecoveredSharded continue
        // the story.
        reshard_crashed_ = true;
        return 0;
      }
    }
    const uint64_t finalized = Harvest();
    // Finalize only after harvesting: a merge retires slots, and a join
    // still referencing one (admitted before its chunk cut over) must
    // drain through the normal response path first.
    if (resharder_.complete() && ReshardRetiringDrained()) {
      FinalizeReshard();
    }
    return finalized;
  }

  /// Arms an online migration to `new_num_shards` — exactly double (split)
  /// or half (merge) the current count.  The deployment keeps serving
  /// while Step() drives the chunk pipeline; when every chunk is done the
  /// routing generation is finalized and the manifest generation bumps.
  Status BeginReshard(uint32_t new_num_shards) {
    common::MutexLock lock(mu_);
    if (reshard_crashed_) {
      return Status::Unavailable("deployment dead: restart and recover");
    }
    if (router_.migrating() || resharder_.active()) {
      return Status::InvalidArgument(
          "reshard: a migration is already in flight");
    }
    const uint32_t from = router_.num_shards();
    const bool split = new_num_shards == 2 * from;
    const bool merge = (from % 2 == 0) && new_num_shards == from / 2;
    if (!split && !merge) {
      return Status::InvalidArgument(
          "reshard: target shard count must be exactly double or half the "
          "current count");
    }
    for (uint32_t s = 0; s < from; ++s) {
      if (!supervisor_.serving(s)) {
        return Status::Unavailable(
            "reshard: shard " + std::to_string(s) +
            " is not serving; heal it before migrating");
      }
    }
    durability::ReshardJournal journal = durability::ReshardJournal::Make(
        manifest_.generation, options_.router_seed, from, new_num_shards);
    DYCUCKOO_RETURN_NOT_OK(
        router_.BeginMigration(new_num_shards, journal.num_chunks));
    if (split) {
      supervisor_.GrowTo(new_num_shards);
      for (uint32_t s = from; s < new_num_shards; ++s) {
        Status st = AddShardSlot(s, new_num_shards);
        if (!st.ok()) {
          router_.AbortMigration();
          shards_.resize(from);
          supervisor_.ShrinkTo(from);
          return st;
        }
      }
    }
    resharder_.Arm(std::move(journal));
    return Status::OK();
  }

  /// Operator override: schedule `shard`'s heal attempt for the next
  /// Step, ignoring the supervisor's backoff.  No-op unless quarantined.
  void RequestHealNow(uint32_t shard) {
    common::MutexLock lock(mu_);
    supervisor_.RequestHealNow(shard);
  }

  /// Steps until every front-door request has a response.  Terminates:
  /// each pending sub-request either completes on its (serving) shard or
  /// is resolved as lost when its shard leaves service.
  void RunUntilIdle() {
    for (;;) {
      {
        common::MutexLock lock(mu_);
        // A reshard kill point is simulated process death: in-flight
        // joins can never complete (recovery is the only continuation).
        if (joins_.empty() || reshard_crashed_) return;
      }
      Step();
    }
  }

  // ---------------------------------------------------------------------
  // Introspection.
  // ---------------------------------------------------------------------

  uint32_t num_shards() const { return router_.num_shards(); }

  /// Gate for the heal path's post-recovery scrub: a freshly replayed
  /// image must scrub clean, because the scrub unpublishes corrupted
  /// slots — a dirty report waved through would bring the shard up
  /// silently missing acknowledged keys.  Static and public so the
  /// regression test can pin the policy without standing up a full
  /// deployment.
  static Status CheckHealScrub(const typename Table::ScrubReport& scrub) {
    if (scrub.corrupted_slots == 0) return Status::OK();
    return Status::DataLoss(
               "heal scrub found " + std::to_string(scrub.corrupted_slots) +
               " corrupted slot(s) in the freshly recovered image (" +
               std::to_string(scrub.corrupted_unattributable) +
               " unattributable); the durable state is suspect, retry "
               "the replay")
        .WithDetail("corruption",
                    scrub.corrupted_unattributable > 0 ? "unrepairable"
                                                       : "repairable");
  }
  /// Slot count including a split's still-migrating new shards (==
  /// num_shards() whenever no migration is in flight).
  uint32_t physical_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  const Resharder<ShardedTableServer>& resharder() const {
    return resharder_;
  }
  bool reshard_crashed() const { return reshard_crashed_; }
  /// Durable images of the deployment's routing identity: the manifest
  /// and the migration journal ("" when no migration is armed) as a crash
  /// right now would leave them — the first two arguments of
  /// durability::RecoverShardedDeployment.
  const std::string& ManifestImage() const { return manifest_image_; }
  const std::string& JournalImage() const { return journal_image_; }
  const ShardRouter& router() const { return router_; }
  const ShardSupervisor& supervisor() const { return supervisor_; }
  const durability::ShardManifest& manifest() const { return manifest_; }
  gpusim::VirtualClock* clock() { return &clock_; }
  uint64_t now() const { return clock_.Now(); }
  const ShardedServerStats& stats() const { return stats_; }
  const Options& options() const { return options_; }

  /// The shard's serving front-end; null while quarantined/failed.
  Shard* shard_server(uint32_t shard) { return shards_[shard].server.get(); }
  Manager* shard_manager(uint32_t shard) {
    return shards_[shard].manager.get();
  }
  const DyCuckooOptions& shard_table_options(uint32_t shard) const {
    return shards_[shard].table_options;
  }

  /// The deterministic report of the shard's most recent recovery (from
  /// AdoptRecovered or the last heal attempt).
  const durability::RecoveryReport& last_heal_report(uint32_t shard) const {
    return shards_[shard].last_heal_report;
  }

  /// Every shard's durable byte images as they stand right now — what a
  /// full-process crash would leave behind for RecoverAllShards.
  std::vector<durability::ShardImages> DurableImages() const {
    std::vector<durability::ShardImages> images(physical_shards());
    for (uint32_t s = 0; s < physical_shards(); ++s) {
      const ShardSlot& slot = shards_[s];
      if (slot.manager != nullptr) {
        images[s].checkpoint = slot.manager->checkpoints().durable_image();
        images[s].wal = slot.manager->wal().durable_image();
      } else {
        images[s] = slot.cold;
      }
    }
    return images;
  }

  /// Per-shard DyCuckooOptions, in shard order — the `options` argument
  /// RecoverAllShards needs to rebuild this deployment's tables.
  std::vector<DyCuckooOptions> ShardTableOptionsList() const {
    std::vector<DyCuckooOptions> opts;
    opts.reserve(physical_shards());
    for (uint32_t s = 0; s < physical_shards(); ++s) {
      opts.push_back(shards_[s].table_options);
    }
    return opts;
  }

  std::vector<ShardHealth> Health() const {
    std::vector<ShardHealth> out(physical_shards());
    for (uint32_t s = 0; s < physical_shards(); ++s) {
      ShardHealth& h = out[s];
      h.shard = s;
      h.state = supervisor_.state(s);
      h.generation = supervisor_.generation(s);
      h.fault = supervisor_.fault(s);
      h.last_heal_status = supervisor_.last_heal_status(s);
      if (shards_[s].server != nullptr) {
        h.breaker = shards_[s].server->breaker().state();
        h.table_size = shards_[s].server->table()->size();
      }
    }
    return out;
  }

  /// Live keys across serving shards (quarantined shards' keys exist in
  /// their durable images but are not countable here).
  uint64_t total_size() const {
    uint64_t n = 0;
    for (uint32_t s = 0; s < physical_shards(); ++s) {
      if (supervisor_.serving(s) && shards_[s].server != nullptr) {
        n += shards_[s].server->table()->size();
      }
    }
    return n;
  }

 private:
  struct ShardSlot {
    DyCuckooOptions table_options;
    std::string segment;              // WAL segment name (creation-era count:
                                      // a split's new shards are "of-<to>")
    std::unique_ptr<Shard> server;    // null while quarantined/failed
    std::unique_ptr<Manager> manager;
    durability::ShardImages cold;     // crash-time images for heal retries
                                      // when no manager survived
    durability::RecoveryReport last_heal_report;
  };

  struct SubRef {
    uint32_t shard = 0;
    uint64_t sub_id = 0;
    uint64_t generation = 0;
    std::vector<uint32_t> op_indices;  // positions in the original request
  };

  struct Join {
    Status status;                    // highest-severity sub-status so far
    std::vector<OpResult> results;
    std::vector<SubRef> pending;
    std::vector<uint32_t> unavailable_shards;
    uint32_t attempts = 0;
  };

  ShardedTableServer(const DyCuckooOptions& base, const Options& options)
      : options_(options),
        base_table_options_(base),
        router_(options.num_shards, options.router_seed),
        supervisor_(options.num_shards, options.supervisor),
        manifest_(durability::ShardManifest::Make(
            options.num_shards, options.router_seed,
            static_cast<uint32_t>(sizeof(Key)),
            static_cast<uint32_t>(sizeof(Value)))),
        shards_(options.num_shards) {
    for (uint32_t s = 0; s < options.num_shards; ++s) {
      shards_[s].table_options =
          ShardTableOptions(base, s, options.num_shards);
      shards_[s].segment =
          durability::WalSegmentName(s, options.num_shards);
    }
    manifest_image_ = manifest_.Encode();
  }

  static Status ValidateOptions(const Options& options) {
    if (options.num_shards == 0 || options.num_shards > 4096) {
      return Status::InvalidArgument(
          "sharded server: num_shards must be in [1, 4096]");
    }
    return Status::OK();
  }

  /// Derives shard `s`'s table options from the deployment-wide base:
  /// capacity split N ways (floored so tiny deployments stay viable),
  /// hash seed decorrelated per shard, memory tag prefixed with the shard
  /// scope for targeted alloc-fault campaigns.
  static DyCuckooOptions ShardTableOptions(const DyCuckooOptions& base,
                                           uint32_t shard, uint32_t n) {
    DyCuckooOptions o = base;
    o.memory_tag = durability::ShardScope(shard) + base.memory_tag;
    o.seed = Mix64(base.seed ^ (0x9E3779B97F4A7C15ULL * (shard + 1)));
    uint64_t per_shard = base.initial_capacity / n;
    o.initial_capacity = per_shard < 4096 ? 4096 : per_shard;
    return o;
  }

  /// Installs a recovered table as shard `s`'s serving incarnation: fresh
  /// durability lineage (starting after the recovered LSN) seeded with a
  /// baseline checkpoint, external clock, write probation.  On failure
  /// the slot is left untouched (the caller decides quarantine).
  Status BringUp(uint32_t s, std::unique_ptr<Table> table,
                 uint64_t start_lsn, ShardSlot* slot) {
    std::unique_ptr<Shard> server;
    DYCUCKOO_RETURN_NOT_OK(
        Shard::Adopt(std::move(table), options_.shard, &server));
    server->UseExternalClock(&clock_);
    std::unique_ptr<Manager> manager;
    if (options_.attach_durability) {
      manager = std::make_unique<Manager>(options_.durability, start_lsn,
                                          durability::ShardScope(s));
      server->AttachDurability(manager.get());
      // Baseline checkpoint: the new lineage alone must be able to
      // resurrect the shard — without it the old images would be the only
      // copy of the recovered state.
      Status st = manager->CheckpointNow(server->table());
      if (!st.ok()) return st;
      if (manager->dead()) {
        return Status::Unavailable(
            "shard bring-up: durability died during the baseline "
            "checkpoint");
      }
    }
    server->BeginWriteProbation();
    slot->server = std::move(server);
    slot->manager = std::move(manager);
    return Status::OK();
  }

  /// Installs one recovered outcome into slot `s`: serving via BringUp on
  /// success, quarantined with the crash-time images otherwise.
  void AdoptSlot(uint32_t s,
                 durability::ShardRecoveryOutcome<Key, Value>* outcome,
                 const durability::ShardImages& images, uint64_t now) {
    ShardSlot& slot = shards_[s];
    slot.last_heal_report = outcome->report;
    if (!outcome->status.ok() || outcome->table == nullptr) {
      slot.cold = images;
      supervisor_.Quarantine(s, now, outcome->status);
      return;
    }
    Status st = BringUp(s, std::move(outcome->table),
                        outcome->report.last_lsn + 1, &slot);
    if (!st.ok()) {
      // The shard's data recovered but its new lineage could not be
      // established (e.g. an injected fault during the baseline
      // checkpoint): quarantine it and let the heal path retry from the
      // crash-time images.
      slot.cold = images;
      supervisor_.Quarantine(s, now, st);
    }
  }

  // --- Elastic resharding (mu_ held) ------------------------------------

  friend class Resharder<ShardedTableServer>;

  // The Resharder's host surface.  All called under mu_ from Step().
  Table* ReshardTable(uint32_t s) { return shards_[s].server->table(); }
  Manager* ReshardManager(uint32_t s) { return shards_[s].manager.get(); }
  ShardRouter* ReshardRouter() { return &router_; }
  bool ReshardShardServing(uint32_t s) const {
    return supervisor_.serving(s) && shards_[s].server != nullptr;
  }
  bool ReshardShardQuiesced(uint32_t s) const {
    const ShardSlot& slot = shards_[s];
    if (slot.server == nullptr || slot.server->queued() != 0) return false;
    return slot.manager == nullptr ||
           slot.manager->wal().pending_records() == 0;
  }
  void ReshardPersistJournal(std::string image) {
    journal_image_ = std::move(image);
  }

  /// Constructs a split's new shard slot `s` (empty table, fresh
  /// durability lineage under its own creation-era segment name).  The
  /// baseline checkpoint makes the slot's images self-contained: a crash
  /// before its first chunk copy recovers it as an empty shard.
  Status AddShardSlot(uint32_t s, uint32_t to) {
    if (shards_.size() <= s) shards_.resize(s + 1);
    ShardSlot& slot = shards_[s];
    slot.table_options = ShardTableOptions(base_table_options_, s, to);
    slot.segment = durability::WalSegmentName(s, to);
    std::unique_ptr<Table> table;
    DYCUCKOO_RETURN_NOT_OK(Table::Create(slot.table_options, &table));
    DYCUCKOO_RETURN_NOT_OK(
        Shard::Adopt(std::move(table), options_.shard, &slot.server));
    slot.server->UseExternalClock(&clock_);
    if (options_.attach_durability) {
      slot.manager = std::make_unique<Manager>(
          options_.durability, /*start_lsn=*/1, durability::ShardScope(s));
      slot.server->AttachDurability(slot.manager.get());
      DYCUCKOO_RETURN_NOT_OK(
          slot.manager->CheckpointNow(slot.server->table()));
    }
    return Status::OK();
  }

  /// Whether a complete migration may finalize now: no retiring slot
  /// (merge: slots >= to) still has queued work, and no pending join
  /// references one.  Resizing shards_ under a live sub-request would
  /// leave Harvest indexing destroyed slots.
  bool ReshardRetiringDrained() const {
    const uint32_t to = router_.to_shards();
    for (uint32_t s = to; s < physical_shards(); ++s) {
      if (shards_[s].server != nullptr && shards_[s].server->queued() != 0) {
        return false;
      }
    }
    for (const auto& [id, join] : joins_) {
      for (const SubRef& sub : join.pending) {
        if (sub.shard >= to) return false;
      }
    }
    return true;
  }

  /// Every chunk is kDone: switch the deployment to the new generation.
  /// A merge retires the drained source slots; the manifest is reminted
  /// with the new shard count and a bumped generation, and the journal is
  /// cleared — after this the deployment is indistinguishable from one
  /// born at the new count (except for the generation).
  void FinalizeReshard() {
    const uint32_t to = router_.to_shards();
    const uint64_t new_generation = resharder_.journal().generation_from + 1;
    router_.FinishMigration();
    if (to < shards_.size()) {
      shards_.resize(to);
      supervisor_.ShrinkTo(to);
    }
    options_.num_shards = to;
    manifest_ = durability::ShardManifest::Make(
        to, options_.router_seed, static_cast<uint32_t>(sizeof(Key)),
        static_cast<uint32_t>(sizeof(Value)));
    manifest_.generation = new_generation;
    manifest_image_ = manifest_.Encode();
    resharder_.Disarm();
    DYCUCKOO_LOG(Info) << "reshard finalized: " << num_shards()
                       << " shards, manifest generation " << new_generation;
  }

  /// After a rolled-back migration: partially copied pairs may survive in
  /// target shards whose routing never switched.  Sweep every serving
  /// shard for keys the restored router homes elsewhere and erase them
  /// through the WAL, so durable state converges with routed state.
  void RollbackSweep() {
    for (uint32_t s = 0; s < physical_shards(); ++s) {
      ShardSlot& slot = shards_[s];
      if (!supervisor_.serving(s) || slot.server == nullptr) continue;
      auto pairs = slot.server->table()->Dump();
      std::vector<Key> doomed;
      for (const auto& kv : pairs) {
        if (router_.ShardOf(kv.first) != s) doomed.push_back(kv.first);
      }
      if (doomed.empty()) continue;
      if (slot.manager != nullptr) {
        for (const Key& k : doomed) slot.manager->LogErase(k);
        if (!slot.manager->Commit().ok()) continue;  // heal path retries
      }
      for (const Key& k : doomed) (void)slot.server->table()->Erase(k);
      stats_.reshard_rollback_erased.fetch_add(doomed.size(),
                                               std::memory_order_relaxed);
    }
  }

  /// The machine-readable rejection for a write landing in the one chunk
  /// whose migration window is open.  Same detail keys as quarantine
  /// rejections (shard / retry_after_ticks / executed) so clients retry
  /// through one code path, plus the chunk for observability.
  Status ReshardBlocked(uint32_t shard, uint32_t chunk, uint64_t now) const {
    const uint64_t retry =
        resharder_.paused()
            ? supervisor_.RetryAfterTicks(resharder_.paused_on(), now)
            : 1;
    return Status::Unavailable("shard " + std::to_string(shard) +
                               " migrating chunk " + std::to_string(chunk) +
                               " (reshard write window)")
        .WithDetail("shard", std::to_string(shard))
        .WithDetail("retry_after_ticks", std::to_string(retry))
        .WithDetail("executed", "never")
        .WithDetail("reshard_chunk", std::to_string(chunk));
  }

  /// The machine-readable rejection for a non-serving shard.  `executed`
  /// is "never" (front-door rejection: no op ran) or "uncertain" (the
  /// sub-request was in flight when the shard died: ops may have
  /// partially applied; idempotent re-execution after retry-after is
  /// safe).
  Status ShardUnavailable(uint32_t shard, uint64_t now,
                          const char* executed) const {
    const ShardState state = supervisor_.state(shard);
    const Status& fault = supervisor_.fault(shard);
    std::string msg = "shard " + std::to_string(shard) + " " +
                      ShardStateName(state);
    if (!fault.ok()) msg += ": " + fault.message();
    return Status::Unavailable(std::move(msg))
        .WithDetail("shard", std::to_string(shard))
        .WithDetail("retry_after_ticks",
                    std::to_string(supervisor_.RetryAfterTicks(shard, now)))
        .WithDetail("executed", executed);
  }

  /// Severity order for merging sub-statuses into one response status:
  /// DataLoss (acked bytes at risk) > Unavailable (a shard refused) >
  /// any other error > OK.  Ties keep the earliest shard's status, so the
  /// merge is deterministic.
  static int Severity(const Status& s) {
    if (s.ok()) return 0;
    if (s.IsDataLoss()) return 3;
    if (s.IsUnavailable()) return 2;
    return 1;
  }

  void MergeStatus(Join* join, Status st, uint32_t shard) {
    if (st.IsUnavailable()) join->unavailable_shards.push_back(shard);
    if (Severity(st) > Severity(join->status)) join->status = std::move(st);
  }

  Response Finalize(Join* join, uint64_t now) {
    Response resp;
    resp.status = std::move(join->status);
    if (join->unavailable_shards.size() > 1) {
      std::string csv;
      for (uint32_t s : join->unavailable_shards) {
        if (!csv.empty()) csv += ",";
        csv += std::to_string(s);
      }
      resp.status = resp.status.WithDetail("unavailable_shards", csv);
    }
    resp.results = std::move(join->results);
    resp.attempts = join->attempts;
    resp.completed_at = now;
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
    return resp;
  }

  void Complete(uint64_t id, Response response) {
    common::MutexLock lock(responses_mu_);
    responses_.emplace(id, std::move(response));
  }

  // --- Supervision (mu_ held) -------------------------------------------

  void Supervise() {
    const uint64_t now = clock_.Now();
    for (uint32_t s = 0; s < physical_shards(); ++s) {
      ShardSlot& slot = shards_[s];
      if (supervisor_.serving(s) && slot.server != nullptr &&
          slot.server->crashed()) {
        DYCUCKOO_LOG(Warning)
            << "shard " << s << " crashed (durability fault domain dead); "
            << "quarantining";
        supervisor_.Quarantine(
            s, now,
            Status::Unavailable("shard " + std::to_string(s) +
                                " durability fault domain died"));
        // The dead incarnation never acknowledges again; its durable
        // images stay on slot.manager for the heal path.
        slot.server.reset();
      }
      if (supervisor_.serving(s) && slot.server != nullptr &&
          slot.server->integrity_compromised()) {
        // The shard's scrubber found corruption it could not repair from
        // durable state: the in-memory table can no longer be trusted, but
        // the durable images can (acks only ever followed group commits).
        // Quarantine and rebuild from them — the same heal path as a
        // crash, with a DataLoss fault so operators and clients can tell
        // "memory corrupted" from "process died".
        DYCUCKOO_LOG(Error)
            << "shard " << s
            << " has unrepairable silent corruption; quarantining for "
               "rebuild from durable state";
        supervisor_.Quarantine(
            s, now,
            Status::DataLoss("shard " + std::to_string(s) +
                             " in-memory corruption unrepairable by the "
                             "online scrubber")
                .WithDetail("corruption", "unrepairable")
                .WithDetail("shard", std::to_string(s)));
        slot.server.reset();
      }
      if (supervisor_.HealDue(s, now)) AttemptHeal(s, now);
    }
  }

  void AttemptHeal(uint32_t s, uint64_t now) {
    ShardSlot& slot = shards_[s];
    // The crash-time images: from the dead incarnation's manager, or the
    // cold images a failed AdoptRecovered left behind.
    std::string ckpt_image, wal_image;
    if (slot.manager != nullptr) {
      ckpt_image = slot.manager->checkpoints().durable_image();
      wal_image = slot.manager->wal().durable_image();
    } else {
      ckpt_image = slot.cold.checkpoint;
      wal_image = slot.cold.wal;
    }

    durability::RecoverySource source;
    source.shard_id = s;
    source.segment = slot.segment;
    std::istringstream ckpt_stream(ckpt_image);
    std::istringstream wal_stream(wal_image);
    std::unique_ptr<Table> table;
    durability::RecoveryReport report;
    Status st = durability::Recover<Key, Value>(
        ckpt_stream, wal_stream, slot.table_options, &table, &report,
        source);
    slot.last_heal_report = report;
    if (!st.ok()) {
      DYCUCKOO_LOG(Warning) << "shard " << s << " heal: recovery failed: "
                            << st.ToString();
      supervisor_.OnHealFailure(s, now, std::move(st));
      return;
    }

    // Scrub + validate before the shard is allowed near traffic: a
    // recovered table with a placement violation would fail reads.
    //
    // The report is load-bearing ([[nodiscard]] caught this being
    // dropped): the scrub UNPUBLISHES corrupted slots, so waving a
    // dirty report through would bring up a shard silently missing
    // acknowledged keys.  A corrupt freshly-replayed image means the
    // durable state itself is suspect — fail the heal and retry the
    // replay under backoff instead of serving holes.
    st = CheckHealScrub(table->ScrubAll());
    if (!st.ok()) {
      DYCUCKOO_LOG(Warning) << "shard " << s
                            << " heal: recovered image is corrupt: "
                            << st.ToString();
      supervisor_.OnHealFailure(s, now, std::move(st));
      return;
    }
    st = table->Validate();
    if (!st.ok()) {
      DYCUCKOO_LOG(Warning) << "shard " << s
                            << " heal: recovered table failed validation: "
                            << st.ToString();
      supervisor_.OnHealFailure(s, now, std::move(st));
      return;
    }

    st = BringUp(s, std::move(table), report.last_lsn + 1, &slot);
    if (!st.ok()) {
      // Kill points / I-O faults can fire during the baseline checkpoint
      // of the new lineage; the old images are untouched, so the next
      // attempt retries from the same state.
      DYCUCKOO_LOG(Warning) << "shard " << s << " heal: bring-up failed: "
                            << st.ToString();
      supervisor_.OnHealFailure(s, now, std::move(st));
      return;
    }
    slot.cold = durability::ShardImages{};  // the new lineage owns state now
    supervisor_.OnHealSuccess(s, now);
    DYCUCKOO_LOG(Info) << "shard " << s << " healed: "
                       << report.ToString();
  }

  // --- Harvest (mu_ held) -----------------------------------------------

  uint64_t Harvest() {
    const uint64_t now = clock_.Now();
    uint64_t finalized = 0;
    for (auto it = joins_.begin(); it != joins_.end();) {
      Join& join = it->second;
      for (auto sub = join.pending.begin(); sub != join.pending.end();) {
        // Range check first: a finalized merge retires slots, and the
        // drain gate should have prevented any pending reference to one —
        // but indexing a destroyed slot would be UB, so never risk it.
        const bool retired = sub->shard >= physical_shards();
        const bool lost = retired || !supervisor_.serving(sub->shard) ||
                          supervisor_.generation(sub->shard) !=
                              sub->generation ||
                          shards_[sub->shard].server == nullptr;
        if (lost) {
          // The shard died (or was rebuilt) with this sub-request in
          // flight: its ops may or may not have applied before the
          // fault, so the honest answer is "uncertain".
          stats_.subrequests_lost.fetch_add(1, std::memory_order_relaxed);
          Status st =
              retired
                  ? Status::Unavailable("shard " +
                                        std::to_string(sub->shard) +
                                        " retired by a finalized reshard")
                        .WithDetail("shard", std::to_string(sub->shard))
                        .WithDetail("retry_after_ticks", "1")
                        .WithDetail("executed", "uncertain")
                  : ShardUnavailable(sub->shard, now, "uncertain");
          MergeStatus(&join, std::move(st), sub->shard);
          sub = join.pending.erase(sub);
          continue;
        }
        ShardSlot& slot = shards_[sub->shard];
        typename Shard::Response sub_resp;
        if (!slot.server->TakeResponse(sub->sub_id, &sub_resp)) {
          ++sub;
          continue;
        }
        for (size_t k = 0; k < sub->op_indices.size(); ++k) {
          if (k < sub_resp.results.size()) {
            join.results[sub->op_indices[k]] = sub_resp.results[k];
          }
        }
        if (sub_resp.attempts > join.attempts) {
          join.attempts = sub_resp.attempts;
        }
        if (!sub_resp.status.ok()) {
          MergeStatus(&join, std::move(sub_resp.status), sub->shard);
        }
        sub = join.pending.erase(sub);
      }
      if (join.pending.empty()) {
        Complete(it->first, Finalize(&join, now));
        it = joins_.erase(it);
        ++finalized;
      } else {
        ++it;
      }
    }
    return finalized;
  }

  Options options_;
  DyCuckooOptions base_table_options_;  // deployment-wide base; splits
                                        // derive their new shards from it
  ShardRouter router_;
  ShardSupervisor supervisor_;
  durability::ShardManifest manifest_;
  gpusim::VirtualClock clock_;
  std::vector<ShardSlot> shards_;
  ShardedServerStats stats_;
  Resharder<ShardedTableServer> resharder_{this};
  std::string manifest_image_;  // manifest as durably recorded
  std::string journal_image_;   // migration journal ("" while idle)
  bool reshard_crashed_ = false;  // a reshard.* kill point fired

  // mu_ guards shards_, supervisor_, joins_, and clock_.  These members
  // carry no GUARDED_BY attribute: the Resharder<> template calls back
  // into this class with mu_ held transitively, and attributing them
  // would force REQUIRES(mu_) through the template's callback surface.
  // docs/analysis.md ("Static layer") records this exemption.
  common::Mutex mu_;
  std::unordered_map<uint64_t, Join> joins_;

  std::atomic<uint64_t> next_id_{1};
  mutable common::Mutex responses_mu_;
  std::unordered_map<uint64_t, Response> responses_ GUARDED_BY(responses_mu_);
};

/// The paper's primary 4-byte configuration, sharded.
using DyCuckooShardedServer = ShardedTableServer<uint32_t, uint32_t>;

}  // namespace service
}  // namespace dycuckoo

#endif  // DYCUCKOO_SERVICE_SHARDED_SERVER_H_
