// TableServer: the overload-safe serving front-end over DynamicTable.
//
// Callers hitting DynamicTable::Bulk* directly get no admission control,
// no deadlines, and no retry policy — a hot resize or an injected fault
// stalls or fails them outright.  The TableServer wraps the table with the
// contract a production service needs:
//
//  * Bounded admission (AdmissionQueue): Submit never buffers without
//    bound; a full queue is an explicit kResourceExhausted.
//  * Micro-batching: queued requests are coalesced (up to max_batch_ops
//    operations) into one mixed grid launch per Step, amortizing launch
//    overhead exactly like the paper's batched execution model.
//  * Deadlines on the deterministic virtual clock: a request carries an
//    absolute tick deadline; expiry yields kDeadlineExceeded at admission,
//    at dequeue, or between retry attempts — never a silent drop and never
//    an unbounded stall.  An in-flight grid launch is not preempted
//    (kernels run to completion), matching GPU semantics.
//  * Retry with seeded exponential backoff + jitter (RetryPolicy) for
//    transient failures; backoff advances the virtual clock, so deadlines
//    keep ticking while a request waits.
//  * A circuit breaker (CircuitBreaker) that flips the server into
//    read-only degraded mode after consecutive terminal write failures and
//    auto-recovers via a probe write after a cooldown.
//  * An online invariant scrubber (OnlineScrubber) walking a bounded slice
//    of buckets between batches, repairing placement violations and
//    triggering bounds maintenance when theta drifts outside [alpha, beta].
//
// Side-effect contract per response status (what a shadow-map test may
// assume):
//   kResourceExhausted / kUnavailable .... request never executed
//   kDeadlineExceeded with attempts == 0 . request never executed
//   kDeadlineExceeded with attempts > 0 .. earlier attempts may have
//                                          partially applied (idempotent
//                                          upserts/erases: re-execution safe)
//   kInsertionFailure / kOutOfMemory ..... partially applied; failed count
//                                          refers to this request's keys
//   kDataLoss ............................ applied to the table but NOT
//                                          durable (group-commit flush
//                                          failed); lost if the process
//                                          dies before a later flush
//   OK ................................... fully applied (and durable when
//                                          a DurabilityManager is attached:
//                                          the ack is released only after
//                                          the WAL group commit)
//
// Consistency (see docs/robustness.md "Consistency guarantees"): requests
// coalesced into one micro-batch execute concurrently in a single mixed
// grid launch, and the table's FIND-under-INSERT guarantee carries through
// to responses: a key whose INSERT this server acknowledged (response OK
// or kDataLoss) in an *earlier* batch, and whose DELETE it has not, is hit
// by every subsequent FIND — even while inserts coalesced into the same
// micro-batch displace pairs around it (the eviction handoff ring keeps
// displaced victims reader-visible at every instant).  A FIND coalesced
// into the same batch as an INSERT/DELETE of its key is concurrent with
// it and may observe either side.  Value reads are last-writer-wins when
// an upsert of a key races a displacement of that key within one batch;
// membership is always linearizable.
//
// Durability: AttachDurability() hooks a durability::DurabilityManager in.
// Each micro-batch's acknowledged writes are appended to the WAL and
// flushed with ONE group commit before any of the batch's responses are
// completed; the between-batch slot additionally takes incremental
// checkpoints.  A crash-style injected fault marks the server crashed():
// it stops executing and never acknowledges in-flight requests — exactly
// what a real process death would do.  Recovery is durability::Recover().
//
// Threading: Submit/TakeResponse are safe from any thread; Step (and
// everything it drives) runs on one serving thread, mirroring the one-
// host-thread-per-table contract of DynamicTable.

#ifndef DYCUCKOO_SERVICE_TABLE_SERVER_H_
#define DYCUCKOO_SERVICE_TABLE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "durability/manager.h"
#include "dycuckoo/dynamic_table.h"
#include "dycuckoo/options.h"
#include "gpusim/virtual_clock.h"
#include "service/admission_queue.h"
#include "service/circuit_breaker.h"
#include "service/retry_policy.h"
#include "service/scrubber.h"

namespace dycuckoo {
namespace service {

/// Server-side counters (all monotonic; Capture() for a coherent-enough
/// snapshot — same relaxed contract as TableStats).
struct ServerStats {
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> rejected_queue_full{0};
  std::atomic<uint64_t> rejected_deadline{0};   // at submit, dequeue or retry
  std::atomic<uint64_t> rejected_unavailable{0};
  std::atomic<uint64_t> completed_ok{0};
  std::atomic<uint64_t> completed_error{0};     // terminal non-OK executions
  std::atomic<uint64_t> batch_launches{0};      // coalesced BulkExecute calls
  std::atomic<uint64_t> coalesced_fallbacks{0}; // batches re-run per request
  std::atomic<uint64_t> retries{0};             // re-executions beyond first
  std::atomic<uint64_t> backoff_ticks_slept{0};
  std::atomic<uint64_t> scrub_steps{0};
  std::atomic<uint64_t> scrub_resizes{0};       // bounds repairs it triggered
  // Silent-corruption escalation (see docs/robustness.md): slots whose
  // integrity tag mismatched, how many were resolved from durable state
  // (re-published from the WAL/checkpoint, or confirmed erased), and how
  // many could not be — each of the latter trips the breaker and sets the
  // sticky integrity_compromised() flag.
  std::atomic<uint64_t> scrub_corruption_detected{0};
  std::atomic<uint64_t> scrub_corruption_repaired{0};
  std::atomic<uint64_t> scrub_corruption_unrepairable{0};

  struct Snapshot {
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t rejected_queue_full = 0;
    uint64_t rejected_deadline = 0;
    uint64_t rejected_unavailable = 0;
    uint64_t completed_ok = 0;
    uint64_t completed_error = 0;
    uint64_t batch_launches = 0;
    uint64_t coalesced_fallbacks = 0;
    uint64_t retries = 0;
    uint64_t backoff_ticks_slept = 0;
    uint64_t scrub_steps = 0;
    uint64_t scrub_resizes = 0;
    uint64_t scrub_corruption_detected = 0;
    uint64_t scrub_corruption_repaired = 0;
    uint64_t scrub_corruption_unrepairable = 0;
  };

  Snapshot Capture() const {
    Snapshot s;
    s.submitted = submitted.load(std::memory_order_relaxed);
    s.admitted = admitted.load(std::memory_order_relaxed);
    s.rejected_queue_full =
        rejected_queue_full.load(std::memory_order_relaxed);
    s.rejected_deadline = rejected_deadline.load(std::memory_order_relaxed);
    s.rejected_unavailable =
        rejected_unavailable.load(std::memory_order_relaxed);
    s.completed_ok = completed_ok.load(std::memory_order_relaxed);
    s.completed_error = completed_error.load(std::memory_order_relaxed);
    s.batch_launches = batch_launches.load(std::memory_order_relaxed);
    s.coalesced_fallbacks =
        coalesced_fallbacks.load(std::memory_order_relaxed);
    s.retries = retries.load(std::memory_order_relaxed);
    s.backoff_ticks_slept =
        backoff_ticks_slept.load(std::memory_order_relaxed);
    s.scrub_steps = scrub_steps.load(std::memory_order_relaxed);
    s.scrub_resizes = scrub_resizes.load(std::memory_order_relaxed);
    s.scrub_corruption_detected =
        scrub_corruption_detected.load(std::memory_order_relaxed);
    s.scrub_corruption_repaired =
        scrub_corruption_repaired.load(std::memory_order_relaxed);
    s.scrub_corruption_unrepairable =
        scrub_corruption_unrepairable.load(std::memory_order_relaxed);
    return s;
  }
};

/// Serving-layer knobs (all bounds are hard, never best-effort).
struct TableServerOptions {
  /// Maximum queued (admitted, not yet executed) requests.
  uint64_t queue_capacity = 256;

  /// Operation budget per micro-batch: Step dequeues whole requests until
  /// their combined op count reaches this (a single oversized request
  /// still runs, alone).
  uint64_t max_batch_ops = 4096;

  /// Default deadline as a relative tick budget applied at Submit when the
  /// request carries none.  0 means no default (wait forever).
  uint64_t default_deadline_ticks = 0;

  RetryPolicy retry;
  CircuitBreakerOptions breaker;

  /// Buckets verified by the online scrubber after each batch (0 disables
  /// inline scrubbing).
  uint64_t scrub_buckets_per_step = 0;

  /// Let a scrub slice that finds theta outside [alpha, beta] trigger
  /// ResizeToBounds().
  bool resize_on_scrub_violation = true;
};

template <typename Key, typename Value>
class TableServer {
 public:
  using Table = DynamicTable<Key, Value>;
  using MixedOp = typename Table::MixedOp;
  using OpType = typename Table::MixedOp::Type;

  /// One operation of a request.
  struct Op {
    OpType type = OpType::kFind;
    Key key{};
    Value value{};
  };

  /// Per-op outcome (valid only when the response status is OK or a
  /// partial-failure code; see the side-effect contract above).
  struct OpResult {
    uint8_t hit = 0;   ///< find located / erase removed the key
    Value value{};     ///< find output
  };

  struct Request {
    std::vector<Op> ops;
    /// Absolute virtual-clock deadline; 0 means none (or the server
    /// default, applied at Submit).
    uint64_t deadline = 0;
  };

  struct Response {
    Status status;
    std::vector<OpResult> results;  ///< one per op when executed
    uint32_t attempts = 0;          ///< executions of this request's ops
    uint64_t completed_at = 0;      ///< virtual time of completion
  };

  /// Builds a server owning a fresh table.
  static Status Create(const DyCuckooOptions& table_options,
                       const TableServerOptions& server_options,
                       std::unique_ptr<TableServer>* out) {
    std::unique_ptr<Table> table;
    DYCUCKOO_RETURN_NOT_OK(Table::Create(table_options, &table));
    out->reset(new TableServer(std::move(table), server_options));
    return Status::OK();
  }

  /// Builds a server around an existing table — the resumption path after
  /// durability::Recover() hands back the recovered state.
  static Status Adopt(std::unique_ptr<Table> table,
                      const TableServerOptions& server_options,
                      std::unique_ptr<TableServer>* out) {
    if (table == nullptr) {
      return Status::InvalidArgument("Adopt: table must not be null");
    }
    out->reset(new TableServer(std::move(table), server_options));
    return Status::OK();
  }

  /// Attaches (or detaches, with nullptr) the durability manager.  Not
  /// owned; must outlive the server.  Attach before serving traffic —
  /// writes acknowledged earlier are not retroactively logged.
  void AttachDurability(durability::DurabilityManager<Key, Value>* manager) {
    durability_ = manager;
  }

  /// True once the durability layer took a crash-style injected fault: the
  /// server stops executing and never acknowledges in-flight requests.
  bool crashed() const { return durability_ != nullptr && durability_->dead(); }

  /// Sticky: true once a scrub slice found corruption this server could not
  /// repair from durable state (no durability attached, the key is absent
  /// from / unreadable in the durable images, or the corruption destroyed
  /// the key so there is nothing to look up).  The write path is already
  /// breaker-open by the time this reads true; a supervisor should
  /// quarantine the shard and rebuild it from durability::Recover().
  bool integrity_compromised() const { return integrity_compromised_; }

  /// Drives this server from a caller-owned clock instead of its own —
  /// how a sharded deployment keeps every shard on ONE virtual timeline
  /// (deadlines, breaker cooldowns, and checkpoint cadence stay globally
  /// comparable).  Call before serving traffic; `clock` must outlive the
  /// server.  Passing nullptr reverts to the internal clock.
  void UseExternalClock(gpusim::VirtualClock* clock) {
    clock_ = clock != nullptr ? clock : &own_clock_;
  }

  /// Puts the write path into half-open probation: the next write is a
  /// single probe through the circuit breaker, and only its success
  /// restores full write admission.  The re-admission path for a shard
  /// that just self-healed from recovery.
  void BeginWriteProbation() { breaker_.ForceProbation(clock_->Now()); }

  TableServer(const TableServer&) = delete;
  TableServer& operator=(const TableServer&) = delete;

  // ---------------------------------------------------------------------
  // Client side (any thread).
  // ---------------------------------------------------------------------

  /// Admits a request.  Always assigns an id and guarantees a response
  /// will be retrievable for it: immediate rejections (queue full, dead
  /// on arrival) are completed right here with the rejecting status.
  uint64_t Submit(Request request) {
    uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
    stats_.submitted.fetch_add(1, std::memory_order_relaxed);
    if (request.deadline == 0 && options_.default_deadline_ticks > 0) {
      request.deadline = clock_->Now() + options_.default_deadline_ticks;
    }
    if (request.deadline != 0 && clock_->Now() > request.deadline) {
      stats_.rejected_deadline.fetch_add(1, std::memory_order_relaxed);
      Complete(id, Response{Status::DeadlineExceeded(
                                "deadline passed before admission"),
                            {}, 0, clock_->Now()});
      return id;
    }
    Status st = queue_.Push(Pending{id, std::move(request)});
    if (!st.ok()) {
      stats_.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
      Complete(id, Response{std::move(st), {}, 0, clock_->Now()});
      return id;
    }
    stats_.admitted.fetch_add(1, std::memory_order_relaxed);
    return id;
  }

  /// Retrieves (and removes) the response for `id`; false if not completed
  /// yet.  Responses are held until taken — a client that never takes them
  /// should bound its in-flight ids.
  bool TakeResponse(uint64_t id, Response* out) {
    common::MutexLock lock(responses_mu_);
    auto it = responses_.find(id);
    if (it == responses_.end()) return false;
    *out = std::move(it->second);
    responses_.erase(it);
    return true;
  }

  uint64_t queued() const { return queue_.size(); }
  uint64_t completed_pending_take() const {
    common::MutexLock lock(responses_mu_);
    return responses_.size();
  }

  // ---------------------------------------------------------------------
  // Serving side (one thread).
  // ---------------------------------------------------------------------

  /// Executes one micro-batch plus one scrub slice.  Returns the number of
  /// requests it completed (0 when idle).
  uint64_t Step() {
    if (crashed()) return 0;
    gpusim::ScopedVirtualClock scoped(clock_);
    std::vector<Pending> batch;
    uint64_t ops = 0;
    while (ops < options_.max_batch_ops) {
      Pending p;
      if (!queue_.Pop(&p)) break;
      ops += p.request.ops.size();
      batch.push_back(std::move(p));
    }
    uint64_t completed = 0;
    if (!batch.empty()) completed = ExecuteBatch(&batch);
    if (crashed()) return completed;
    ScrubSlice();
    MaybeCheckpoint();
    return completed;
  }

  /// Steps until the queue is empty (or the durability layer crashed — a
  /// dead server would otherwise spin on a queue it can never drain).
  void RunUntilIdle() {
    while (!queue_.empty() && !crashed()) Step();
  }

  // ---------------------------------------------------------------------
  // Introspection.
  // ---------------------------------------------------------------------

  Table* table() { return table_.get(); }
  const Table* table() const { return table_.get(); }
  gpusim::VirtualClock* clock() { return clock_; }
  uint64_t now() const { return clock_->Now(); }
  const CircuitBreaker& breaker() const { return breaker_; }
  bool read_only() const { return breaker_.read_only(); }
  const ServerStats& stats() const { return stats_; }
  const TableServerOptions& options() const { return options_; }
  const OnlineScrubber<Key, Value>& scrubber() const { return scrubber_; }
  durability::DurabilityManager<Key, Value>* durability() {
    return durability_;
  }

  /// Releases the owned table — for tearing a crashed server down while
  /// keeping its live state inspectable (tests).
  std::unique_ptr<Table> ReleaseTable() { return std::move(table_); }

 private:
  struct Pending {
    uint64_t id = 0;
    Request request;
  };

  TableServer(std::unique_ptr<Table> table,
              const TableServerOptions& options)
      : options_(options),
        table_(std::move(table)),
        queue_(options.queue_capacity),
        breaker_(options.breaker),
        scrubber_(table_.get()) {}

  static bool HasWrite(const Request& r) {
    for (const Op& op : r.ops) {
      if (op.type != OpType::kFind) return true;
    }
    return false;
  }

  bool Expired(const Request& r) const {
    return r.deadline != 0 && clock_->Now() > r.deadline;
  }

  void Complete(uint64_t id, Response response) {
    common::MutexLock lock(responses_mu_);
    responses_.emplace(id, std::move(response));
  }

  /// Triage + coalesced fast path + per-request fallback.
  uint64_t ExecuteBatch(std::vector<Pending>* batch) {
    uint64_t completed = 0;
    std::vector<Pending> runnable;
    runnable.reserve(batch->size());
    for (Pending& p : *batch) {
      if (Expired(p.request)) {
        stats_.rejected_deadline.fetch_add(1, std::memory_order_relaxed);
        Complete(p.id, Response{Status::DeadlineExceeded(
                                    "deadline passed while queued"),
                                {}, 0, clock_->Now()});
        ++completed;
      } else if (HasWrite(p.request) && !breaker_.AllowWrite(clock_->Now())) {
        stats_.rejected_unavailable.fetch_add(1, std::memory_order_relaxed);
        Complete(p.id,
                 Response{Status::Unavailable(
                              "server degraded to read-only (breaker " +
                              std::string(CircuitBreaker::StateName(
                                  breaker_.state())) +
                              ")"),
                          {}, 0, clock_->Now()});
        ++completed;
      } else {
        runnable.push_back(std::move(p));
      }
    }
    if (runnable.empty()) return completed;

    // Coalesced fast path: every runnable request's ops in one launch.
    std::vector<MixedOp> ops;
    for (const Pending& p : runnable) {
      for (const Op& op : p.request.ops) {
        ops.push_back(MixedOp{op.type, op.key, op.value, 0});
      }
    }
    stats_.batch_launches.fetch_add(1, std::memory_order_relaxed);
    Status st = table_->BulkExecute(ops);
    if (st.ok()) {
      // Group commit: append every acknowledged-to-be write to the WAL and
      // flush ONCE for the whole micro-batch, before any ack is released.
      Status commit = LogAndCommitWrites(runnable);
      if (crashed()) return completed;  // simulated death: acks never leave
      uint64_t cursor = 0;
      for (Pending& p : runnable) {
        const bool write = HasWrite(p.request);
        Response resp;
        if (write && !commit.ok()) {
          // The ops are applied but the flush failed cleanly: the write is
          // live yet not durable, and honesty demands saying so.
          resp.status = Status::DataLoss("write applied but not durable: " +
                                         commit.message());
        } else {
          resp.status = Status::OK();
        }
        resp.attempts = 1;
        resp.results.resize(p.request.ops.size());
        for (size_t i = 0; i < p.request.ops.size(); ++i, ++cursor) {
          resp.results[i].hit = ops[cursor].hit;
          resp.results[i].value = ops[cursor].value;
        }
        resp.completed_at = clock_->Now();
        if (write) {
          if (resp.status.ok()) {
            breaker_.OnWriteSuccess();
          } else {
            breaker_.OnWriteFailure(clock_->Now());
          }
        }
        if (resp.status.ok()) {
          stats_.completed_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          stats_.completed_error.fetch_add(1, std::memory_order_relaxed);
        }
        Complete(p.id, std::move(resp));
        ++completed;
      }
      return completed;
    }

    // Slow path: the coalesced batch failed, so outcomes cannot be
    // attributed across requests.  Re-run each request alone (all ops are
    // idempotent upserts/reads/deletes, so re-execution is safe) with the
    // retry policy; the coalesced run counts as everyone's first attempt.
    stats_.coalesced_fallbacks.fetch_add(1, std::memory_order_relaxed);
    for (Pending& p : runnable) {
      if (crashed()) break;  // remaining requests die unacknowledged
      ExecuteWithRetry(&p, /*attempts_so_far=*/1);
      ++completed;
    }
    return completed;
  }

  /// Appends one WAL record per write op across the batch's successful
  /// requests, then flushes them with a single group commit.  OK when no
  /// durability manager is attached.
  Status LogAndCommitWrites(const std::vector<Pending>& runnable) {
    if (durability_ == nullptr) return Status::OK();
    for (const Pending& p : runnable) {
      for (const Op& op : p.request.ops) {
        if (op.type == OpType::kInsert) {
          durability_->LogInsert(op.key, op.value);
        } else if (op.type == OpType::kErase) {
          durability_->LogErase(op.key);
        }
      }
    }
    return durability_->Commit();
  }

  /// Runs one request's ops alone, retrying per policy while the deadline
  /// allows; completes the request with its terminal response.
  void ExecuteWithRetry(Pending* p, uint32_t attempts_so_far) {
    std::vector<MixedOp> ops;
    ops.reserve(p->request.ops.size());
    for (const Op& op : p->request.ops) {
      ops.push_back(MixedOp{op.type, op.key, op.value, 0});
    }
    const bool has_write = HasWrite(p->request);
    uint32_t attempts = attempts_so_far;
    Status st;
    for (;;) {
      for (MixedOp& op : ops) op.hit = 0;
      st = table_->BulkExecute(ops);
      ++attempts;
      if (attempts > attempts_so_far + 1) {
        stats_.retries.fetch_add(1, std::memory_order_relaxed);
      }
      if (st.ok() || !options_.retry.ShouldRetry(st)) break;
      if (attempts >= static_cast<uint32_t>(options_.retry.max_attempts)) {
        break;
      }
      // Back off in virtual time; the wait itself can expire the deadline.
      uint64_t backoff = options_.retry.BackoffTicks(
          static_cast<int>(attempts), p->id);
      clock_->Advance(backoff);
      stats_.backoff_ticks_slept.fetch_add(backoff,
                                           std::memory_order_relaxed);
      if (Expired(p->request)) {
        // If this write was the half-open probe, resolve it as a failure:
        // leaving the probe unresolved would reject writes forever.
        if (has_write &&
            breaker_.state() == CircuitBreaker::State::kHalfOpen) {
          breaker_.OnWriteFailure(clock_->Now());
        }
        stats_.rejected_deadline.fetch_add(1, std::memory_order_relaxed);
        Complete(p->id,
                 Response{Status::DeadlineExceeded(
                              "deadline passed after " +
                              std::to_string(attempts) + " attempts"),
                          {}, attempts, clock_->Now()});
        return;
      }
    }

    // Only an OK execution is acknowledged as applied, so only OK writes
    // enter the WAL (non-OK partial applications are "uncertain" by the
    // side-effect contract; checkpoints still capture whatever stuck).
    if (st.ok() && has_write && durability_ != nullptr) {
      for (const Op& op : p->request.ops) {
        if (op.type == OpType::kInsert) {
          durability_->LogInsert(op.key, op.value);
        } else if (op.type == OpType::kErase) {
          durability_->LogErase(op.key);
        }
      }
      Status commit = durability_->Commit();
      if (crashed()) return;  // simulated death: the ack never leaves
      if (!commit.ok()) {
        st = Status::DataLoss("write applied but not durable: " +
                              commit.message());
      }
    }

    Response resp;
    resp.status = st;
    resp.attempts = attempts;
    resp.completed_at = clock_->Now();
    resp.results.resize(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      resp.results[i].hit = ops[i].hit;
      resp.results[i].value = ops[i].value;
    }
    if (has_write) {
      if (st.ok()) {
        breaker_.OnWriteSuccess();
      } else {
        breaker_.OnWriteFailure(clock_->Now());
      }
    }
    if (st.ok()) {
      stats_.completed_ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.completed_error.fetch_add(1, std::memory_order_relaxed);
    }
    Complete(p->id, std::move(resp));
  }

  /// One bounded scrub slice between batches.
  void ScrubSlice() {
    if (options_.scrub_buckets_per_step == 0) return;
    stats_.scrub_steps.fetch_add(1, std::memory_order_relaxed);
    auto report = scrubber_.Step(options_.scrub_buckets_per_step);
    if (report.corrupted_slots > 0) EscalateCorruption(report);
    if (!report.filled_factor_ok && options_.resize_on_scrub_violation) {
      stats_.scrub_resizes.fetch_add(1, std::memory_order_relaxed);
      Status st = table_->ResizeToBounds();
      if (!st.ok()) {
        DYCUCKOO_LOG(Warning)
            << "scrub-triggered ResizeToBounds failed: " << st.ToString();
      } else if (durability_ != nullptr && !crashed()) {
        // Mark the layout change in the log so an operator replaying it can
        // line resizes up with latency shifts; carries no table state.
        durability_->LogResizeBarrier(table_->capacity_slots());
        Status commit = durability_->Commit();
        if (!commit.ok()) {
          // No ack depends on the barrier: it stays pending in the WAL
          // and rides the next group commit.  But a flush failure here
          // is an early smoke signal for the write path — surface it
          // ([[nodiscard]] caught this being swallowed).
          DYCUCKOO_LOG(Warning)
              << "resize-barrier group commit failed (record rides the "
                 "next commit): " << commit.ToString();
        }
      }
    }
  }

  /// Repair-or-escalate for a scrub slice that detected corrupted slots.
  /// The scrub already unpublished every corrupted slot (no reader can see
  /// the damaged bits), so what is left is restoring the truth:
  ///
  ///   attributable key + durable kFound ..... re-publish the WAL value
  ///   attributable key + durable kErased .... the removal WAS the truth
  ///   attributable key + kAbsent/kUnreadable  unrepairable (the key read
  ///                                           from a corrupted slot cannot
  ///                                           be trusted to name the real
  ///                                           victim, or durability cannot
  ///                                           answer)
  ///   unattributable corruption ............. unrepairable (nothing to
  ///                                           look up)
  ///
  /// Any unrepairable finding force-opens the breaker (writes stop NOW,
  /// not after a failure streak) and latches integrity_compromised_ so a
  /// supervisor quarantines the shard and rebuilds it from durable state.
  /// Repairs re-publish pairs that are already durable, so no new WAL
  /// records are written.
  void EscalateCorruption(
      const typename Table::ScrubReport& report) {
    stats_.scrub_corruption_detected.fetch_add(report.corrupted_slots,
                                               std::memory_order_relaxed);
    uint64_t unrepairable = report.corrupted_unattributable;
    for (Key key : report.corrupted_keys) {
      if (durability_ == nullptr || crashed()) {
        ++unrepairable;
        continue;
      }
      Value v{};
      switch (durability_->PointLookup(key, &v)) {
        case durability::PointLookupResult::kFound:
          // Infallible: a pair the bucket rejects spills to the stash.
          table_->RepairCorruptedPair(key, v);
          stats_.scrub_corruption_repaired.fetch_add(
              1, std::memory_order_relaxed);
          DYCUCKOO_LOG(Info)
              << "scrub: repaired corrupted key from durable state";
          break;
        case durability::PointLookupResult::kErased:
          // The durable truth is "erased"; the scrub's unpublish already
          // realized it.  Resolved, nothing to re-publish.
          stats_.scrub_corruption_repaired.fetch_add(
              1, std::memory_order_relaxed);
          break;
        case durability::PointLookupResult::kAbsent:
        case durability::PointLookupResult::kUnreadable:
          ++unrepairable;
          break;
      }
    }
    if (unrepairable > 0) {
      stats_.scrub_corruption_unrepairable.fetch_add(
          unrepairable, std::memory_order_relaxed);
      table_->NoteUnrepairableCorruption(unrepairable);
      if (!integrity_compromised_) {
        DYCUCKOO_LOG(Error)
            << "scrub: " << unrepairable
            << " corrupted slot(s) unrepairable from durable state; "
               "opening breaker and flagging integrity compromise";
      }
      integrity_compromised_ = true;
      breaker_.ForceOpen(clock_->Now());
    }
  }

  /// Between-batch checkpoint slot: snapshots the table once the WAL has
  /// grown past the configured thresholds, then truncates the log head.
  void MaybeCheckpoint() {
    if (durability_ == nullptr || crashed()) return;
    Status st = durability_->MaybeCheckpoint(table_.get());
    if (!st.ok() && !crashed()) {
      DYCUCKOO_LOG(Warning) << "checkpoint failed (will retry): "
                            << st.ToString();
    }
  }

  TableServerOptions options_;
  std::unique_ptr<Table> table_;
  durability::DurabilityManager<Key, Value>* durability_ = nullptr;
  gpusim::VirtualClock own_clock_;
  gpusim::VirtualClock* clock_ = &own_clock_;
  AdmissionQueue<Pending> queue_;
  CircuitBreaker breaker_;
  OnlineScrubber<Key, Value> scrubber_;
  ServerStats stats_;
  bool integrity_compromised_ = false;

  std::atomic<uint64_t> next_id_{1};
  mutable common::Mutex responses_mu_;
  std::unordered_map<uint64_t, Response> responses_ GUARDED_BY(responses_mu_);
};

/// The paper's primary 4-byte configuration, served.
using DyCuckooServer = TableServer<uint32_t, uint32_t>;

}  // namespace service
}  // namespace dycuckoo

#endif  // DYCUCKOO_SERVICE_TABLE_SERVER_H_
