#include "service/circuit_breaker.h"

#include "common/logging.h"

namespace dycuckoo {
namespace service {

bool CircuitBreaker::AllowWrite(uint64_t now) {
  if (state_ == State::kOpen) {
    if (now < open_until_) return false;
    state_ = State::kHalfOpen;
    probe_in_flight_ = false;
    DYCUCKOO_LOG(Info) << "circuit breaker half-open at t=" << now
                       << ": admitting one probe write";
  }
  if (state_ == State::kHalfOpen) {
    if (probe_in_flight_) return false;
    probe_in_flight_ = true;
    return true;
  }
  return true;  // kClosed
}

void CircuitBreaker::OnWriteSuccess() {
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    state_ = State::kClosed;
    probe_in_flight_ = false;
    ++recoveries_;
    DYCUCKOO_LOG(Info) << "circuit breaker closed: probe write succeeded";
  }
}

void CircuitBreaker::OnWriteFailure(uint64_t now) {
  if (state_ == State::kHalfOpen) {
    Trip(now);  // the probe itself failed: straight back to open
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= options_.failure_threshold) {
    Trip(now);
  }
}

void CircuitBreaker::ForceProbation(uint64_t now) {
  state_ = State::kOpen;
  open_until_ = now;  // cooldown pre-elapsed: next AllowWrite goes half-open
  probe_in_flight_ = false;
  consecutive_failures_ = 0;
  DYCUCKOO_LOG(Info) << "circuit breaker forced into probation at t=" << now
                     << ": next write is the re-admission probe";
}

void CircuitBreaker::ForceOpen(uint64_t now) {
  DYCUCKOO_LOG(Warning) << "circuit breaker forced open at t=" << now;
  Trip(now);
}

void CircuitBreaker::Trip(uint64_t now) {
  state_ = State::kOpen;
  open_until_ = now + options_.cooldown_ticks;
  probe_in_flight_ = false;
  consecutive_failures_ = 0;
  ++trips_;
  DYCUCKOO_LOG(Warning) << "circuit breaker open at t=" << now
                        << " (cooldown " << options_.cooldown_ticks
                        << " ticks): serving reads only";
}

const char* CircuitBreaker::StateName(State s) {
  switch (s) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace service
}  // namespace dycuckoo
