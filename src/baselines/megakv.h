// MegaKV baseline (Zhang et al., VLDB 2015), as characterized by the paper:
//
//  * cuckoo hashing with exactly two subtables / hash functions;
//  * a cache-line bucket per hash value (16 packed 64-bit KV slots);
//  * no bucket locks — slots are claimed and evicted with single 64-bit
//    atomics, which is why KV pairs are limited to 64 bits;
//  * static sizing; for the dynamic comparison the paper gives it the
//    simple strategy of doubling/halving total capacity followed by a full
//    rehash of every stored pair whenever the filled factor leaves
//    [lower_bound, upper_bound] (or an insertion fails).

#ifndef DYCUCKOO_BASELINES_MEGAKV_H_
#define DYCUCKOO_BASELINES_MEGAKV_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/packed_kv.h"
#include "baselines/table_interface.h"
#include "common/status.h"
#include "gpusim/racecheck.h"

namespace dycuckoo {

namespace gpusim {
class DeviceArena;
class Grid;
}  // namespace gpusim

struct MegaKvOptions {
  /// Initial total slot capacity hint (across both subtables).
  uint64_t initial_capacity = 64 * 1024;

  /// Resize bounds; used only when auto_resize is true.
  double lower_bound = 0.30;
  double upper_bound = 0.85;
  bool auto_resize = true;

  uint64_t seed = 0x4D65676158ULL;
  int max_eviction_chain = 64;

  gpusim::DeviceArena* arena = nullptr;
  gpusim::Grid* grid = nullptr;
  std::string memory_tag = "megakv";

  Status Validate() const;
};

/// \brief Two-choice bucketed cuckoo hash with full-rehash resizing.
class MegaKvTable : public HashTableInterface {
 public:
  static constexpr int kSlotsPerBucket = 16;  // 128-byte bucket of u64 slots

  static Status Create(const MegaKvOptions& options,
                       std::unique_ptr<MegaKvTable>* out);
  ~MegaKvTable() override;

  MegaKvTable(const MegaKvTable&) = delete;
  MegaKvTable& operator=(const MegaKvTable&) = delete;

  Status BulkInsert(std::span<const Key> keys, std::span<const Value> values,
                    uint64_t* num_failed = nullptr) override;
  void BulkFind(std::span<const Key> keys, Value* values,
                uint8_t* found) override;
  Status BulkErase(std::span<const Key> keys,
                   uint64_t* num_erased = nullptr) override;

  uint64_t size() const override {
    return size_.load(std::memory_order_relaxed) + spill_.size();
  }
  uint64_t memory_bytes() const override;
  double filled_factor() const override;
  std::string name() const override { return "MegaKV"; }

  uint64_t capacity_slots() const { return 2ull * buckets_per_table_ * kSlotsPerBucket; }
  uint64_t full_rehash_count() const { return full_rehashes_; }
  uint64_t rehashed_kvs() const { return rehashed_kvs_; }
  uint64_t rehash_rollbacks() const { return rehash_rollbacks_; }

  /// Resident pairs parked host-side when a failed grow-rehash left them
  /// displaced with nowhere to go (still found/erased normally; reinserted
  /// by the next successful rehash).
  uint64_t spilled_residents() const { return spill_.size(); }

  /// Test/debug: all stored pairs.
  std::vector<std::pair<Key, Value>> Dump() const;

 private:
  explicit MegaKvTable(const MegaKvOptions& options);

  Status Init(uint64_t capacity_slots);
  void ReleaseStorage();

  uint64_t BucketIndex(int table, Key key) const;
  std::atomic<uint64_t>* Slot(int table, uint64_t bucket, int slot) const {
    return &slots_[table][bucket * kSlotsPerBucket + slot];
  }

  /// One simulated coalesced bucket transaction (see Subtable::SnapshotKeys).
  void SnapshotBucket(int table, uint64_t bucket,
                      uint64_t out[kSlotsPerBucket]) const {
    static_assert(sizeof(std::atomic<uint64_t>) == sizeof(uint64_t));
    gpusim::RangeLoadCheck(slots_[table] + bucket * kSlotsPerBucket,
                           sizeof(uint64_t) * kSlotsPerBucket);
    std::memcpy(out,
                reinterpret_cast<const char*>(slots_[table] +
                                              bucket * kSlotsPerBucket),
                sizeof(uint64_t) * kSlotsPerBucket);
  }

  /// Lock-free insert of one pair; returns false when the eviction chain
  /// exceeded the bound (the carried pair is written to *overflow).
  bool InsertOne(Key key, Value value, uint64_t* overflow_packed);

  /// Doubles (grow=true) or halves total capacity and rehashes every pair.
  Status Rehash(bool grow);

  Status ResizeToBounds();

  MegaKvOptions options_;
  gpusim::DeviceArena* arena_ = nullptr;
  gpusim::Grid* grid_ = nullptr;
  uint64_t seeds_[2] = {0, 0};
  uint64_t buckets_per_table_ = 0;
  std::atomic<uint64_t>* slots_[2] = {nullptr, nullptr};
  std::atomic<uint64_t> size_{0};
  uint64_t seed_epoch_ = 0;
  uint64_t full_rehashes_ = 0;
  uint64_t rehashed_kvs_ = 0;
  uint64_t rehash_rollbacks_ = 0;
  std::vector<uint64_t> spill_;  // packed resident KVs a rehash couldn't place
};

}  // namespace dycuckoo

#endif  // DYCUCKOO_BASELINES_MEGAKV_H_
