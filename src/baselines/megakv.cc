#include "baselines/megakv.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "gpusim/atomics.h"
#include "gpusim/device_arena.h"
#include "gpusim/grid.h"
#include "gpusim/sim_counters.h"
#include "gpusim/warp.h"

namespace dycuckoo {

using baselines::IsStorableKey;
using baselines::kEmptyKey32;
using baselines::kEmptySlot;
using baselines::PackedKey;
using baselines::PackedValue;
using baselines::PackKv;

Status MegaKvOptions::Validate() const {
  if (initial_capacity == 0) {
    return Status::InvalidArgument("initial_capacity must be > 0");
  }
  if (!(lower_bound > 0.0 && lower_bound < upper_bound && upper_bound <= 1.0)) {
    return Status::InvalidArgument(
        "require 0 < lower_bound < upper_bound <= 1");
  }
  if (max_eviction_chain < 1) {
    return Status::InvalidArgument("max_eviction_chain must be >= 1");
  }
  return Status::OK();
}

MegaKvTable::MegaKvTable(const MegaKvOptions& options) : options_(options) {}

MegaKvTable::~MegaKvTable() { ReleaseStorage(); }

Status MegaKvTable::Create(const MegaKvOptions& options,
                           std::unique_ptr<MegaKvTable>* out) {
  DYCUCKOO_RETURN_NOT_OK(options.Validate());
  std::unique_ptr<MegaKvTable> table(new MegaKvTable(options));
  table->arena_ = options.arena != nullptr ? options.arena
                                           : gpusim::DeviceArena::Global();
  table->grid_ =
      options.grid != nullptr ? options.grid : gpusim::Grid::Global();
  DYCUCKOO_RETURN_NOT_OK(table->Init(options.initial_capacity));
  *out = std::move(table);
  return Status::OK();
}

Status MegaKvTable::Init(uint64_t capacity_slots) {
  // Arbitrary bucket counts (modulo addressing): MegaKV's resize is a full
  // rehash, so nothing needs power-of-two sizing, and the requested load
  // factor is achieved exactly.
  uint64_t buckets =
      std::max<uint64_t>(1, CeilDiv(capacity_slots, 2ull * kSlotsPerBucket));
  std::atomic<uint64_t>* fresh[2] = {nullptr, nullptr};
  for (int t = 0; t < 2; ++t) {
    fresh[t] = arena_->AllocateArray<std::atomic<uint64_t>>(
        buckets * kSlotsPerBucket, options_.memory_tag);
    if (fresh[t] == nullptr) {
      if (fresh[0] != nullptr) arena_->FreeArray(fresh[0]);
      return Status::OutOfMemory("device arena exhausted (megakv init)");
    }
    for (uint64_t s = 0; s < buckets * kSlotsPerBucket; ++s) {
      fresh[t][s].store(kEmptySlot, std::memory_order_relaxed);
    }
  }
  ReleaseStorage();
  slots_[0] = fresh[0];
  slots_[1] = fresh[1];
  buckets_per_table_ = buckets;
  seeds_[0] = Mix64(options_.seed ^ (0xAB1E5ULL + seed_epoch_));
  seeds_[1] = Mix64(options_.seed ^ (0xCAFE5ULL + seed_epoch_));
  ++seed_epoch_;
  return Status::OK();
}

void MegaKvTable::ReleaseStorage() {
  for (int t = 0; t < 2; ++t) {
    if (slots_[t] != nullptr) {
      arena_->FreeArray(slots_[t]);
      slots_[t] = nullptr;
    }
  }
}

uint64_t MegaKvTable::BucketIndex(int table, Key key) const {
  return Mix64(static_cast<uint64_t>(key) ^ seeds_[table]) %
         buckets_per_table_;
}

bool MegaKvTable::InsertOne(Key key, Value value, uint64_t* overflow_packed) {
  // Upsert pass: overwrite the value if the key is already resident.
  for (int t = 0; t < 2; ++t) {
    uint64_t loc = BucketIndex(t, key);
    gpusim::CountBucketRead();
    uint64_t snap[kSlotsPerBucket];
    SnapshotBucket(t, loc, snap);
    for (int s = 0; s < kSlotsPerBucket; ++s) {
      if (PackedKey(snap[s]) == key) {
        gpusim::AtomicExch64(Slot(t, loc, s), PackKv(key, value));
        return true;
      }
    }
  }

  // Cuckoo walk with single-word exchanges (no bucket locks).
  uint64_t carried = PackKv(key, value);
  int table = static_cast<int>(Mix64(key) & 1);
  for (int attempt = 0; attempt <= options_.max_eviction_chain; ++attempt) {
    Key ck = PackedKey(carried);
    uint64_t loc = BucketIndex(table, ck);
    gpusim::CountBucketRead();
    uint64_t snap[kSlotsPerBucket];
    SnapshotBucket(table, loc, snap);
    for (int s = 0; s < kSlotsPerBucket; ++s) {
      if (PackedKey(snap[s]) == kEmptyKey32) {
        std::atomic<uint64_t>* slot = Slot(table, loc, s);
        if (gpusim::AtomicCas64(slot, kEmptySlot, carried) == kEmptySlot) {
          gpusim::CountBucketWrite();
          size_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      }
    }
    // Bucket full: displace a pseudo-random resident with one exchange.
    int victim =
        static_cast<int>(Mix64(carried + attempt) % kSlotsPerBucket);
    uint64_t old = gpusim::AtomicExch64(Slot(table, loc, victim), carried);
    gpusim::CountBucketWrite();
    if (PackedKey(old) == kEmptyKey32) {
      size_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    gpusim::CountEviction();
    carried = old;
    table ^= 1;
  }
  *overflow_packed = carried;
  return false;
}

Status MegaKvTable::BulkInsert(std::span<const Key> keys,
                               std::span<const Value> values,
                               uint64_t* num_failed) {
  if (keys.size() != values.size()) {
    return Status::InvalidArgument("keys/values size mismatch");
  }
  if (num_failed != nullptr) *num_failed = 0;
  if (keys.empty()) return Status::OK();

  // Reactive resizing only, as the paper adapts MegaKV: the filled-factor
  // check runs after the batch, and mid-batch insertion failures trigger a
  // grow-and-full-rehash.  (No proactive pre-growth — that would be giving
  // the baseline the proposed system's policy.)
  std::vector<uint64_t> overflow(keys.size());
  std::atomic<uint64_t> overflow_count{0};
  std::atomic<uint64_t> invalid{0};
  const Key* kp = keys.data();
  const Value* vp = values.data();
  const uint64_t n = keys.size();

  auto run_batch = [&](const Key* bk, const Value* bv, const uint64_t* packed,
                       uint64_t count) {
    grid_->LaunchWarps(gpusim::WarpsForItems(count), [&](uint64_t warp) {
      const uint64_t base = warp * gpusim::kWarpSize;
      const uint64_t end = std::min(count, base + gpusim::kWarpSize);
      for (uint64_t i = base; i < end; ++i) {
        Key k = packed != nullptr ? PackedKey(packed[i]) : bk[i];
        Value v = packed != nullptr ? PackedValue(packed[i]) : bv[i];
        if (!IsStorableKey(k)) {
          invalid.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        uint64_t spilled = 0;
        if (!InsertOne(k, v, &spilled)) {
          overflow[overflow_count.fetch_add(1, std::memory_order_relaxed)] =
              spilled;
        }
      }
    });
  };

  run_batch(kp, vp, nullptr, n);

  int rounds = 0;
  while (overflow_count.load(std::memory_order_relaxed) > 0 &&
         options_.auto_resize && rounds++ < 16) {
    std::vector<uint64_t> pending(
        overflow.begin(),
        overflow.begin() +
            static_cast<long>(overflow_count.load(std::memory_order_relaxed)));
    overflow_count.store(0, std::memory_order_relaxed);
    Status rst = Rehash(/*grow=*/true);
    if (!rst.ok()) {
      // Rehash restored the old table, but `pending` holds pairs displaced
      // out of it by this batch's cuckoo walks — residents among them were
      // stored before this call and must not ride out with the error.
      // Re-place what fits; park displaced residents host-side and report
      // only this batch's keys as failed.
      std::unordered_set<Key> batch_keys(keys.begin(), keys.end());
      uint64_t batch_failed = 0;
      for (uint64_t packed : pending) {
        uint64_t spilled = 0;
        if (InsertOne(PackedKey(packed), PackedValue(packed), &spilled)) {
          continue;
        }
        if (batch_keys.count(PackedKey(spilled)) > 0) {
          ++batch_failed;
        } else {
          spill_.push_back(spilled);
        }
      }
      if (invalid.load(std::memory_order_relaxed) > 0) {
        return Status::InvalidArgument("batch contains a reserved key");
      }
      if (batch_failed > 0) {
        if (num_failed != nullptr) *num_failed = batch_failed;
        std::string msg = rst.message() + "; " +
                          std::to_string(batch_failed) + " keys failed";
        return rst.IsOutOfMemory() ? Status::OutOfMemory(std::move(msg))
                                   : Status::Internal(std::move(msg));
      }
      return Status::OK();
    }
    run_batch(nullptr, nullptr, pending.data(), pending.size());
  }

  if (options_.auto_resize) DYCUCKOO_RETURN_NOT_OK(ResizeToBounds());

  if (invalid.load(std::memory_order_relaxed) > 0) {
    return Status::InvalidArgument("batch contains a reserved key");
  }
  uint64_t leftover = overflow_count.load(std::memory_order_relaxed);
  if (leftover > 0) {
    if (num_failed != nullptr) *num_failed = leftover;
    return Status::InsertionFailure("eviction bound exceeded for " +
                                    std::to_string(leftover) + " keys");
  }
  return Status::OK();
}

void MegaKvTable::BulkFind(std::span<const Key> keys, Value* values,
                           uint8_t* found) {
  if (keys.empty()) return;
  const Key* kp = keys.data();
  const uint64_t n = keys.size();
  grid_->LaunchWarps(gpusim::WarpsForItems(n), [&](uint64_t warp) {
    const uint64_t base = warp * gpusim::kWarpSize;
    const uint64_t end = std::min(n, base + gpusim::kWarpSize);
    for (uint64_t i = base; i < end; ++i) {
      Key k = kp[i];
      bool hit = false;
      Value v{};
      if (IsStorableKey(k)) {
        for (int t = 0; t < 2 && !hit; ++t) {
          uint64_t loc = BucketIndex(t, k);
          gpusim::CountBucketRead();
          uint64_t snap[kSlotsPerBucket];
          SnapshotBucket(t, loc, snap);
          for (int s = 0; s < kSlotsPerBucket; ++s) {
            if (PackedKey(snap[s]) == k) {
              v = PackedValue(snap[s]);
              hit = true;
              break;
            }
          }
        }
        if (!hit) {
          for (uint64_t packed : spill_) {
            if (PackedKey(packed) == k) {
              v = PackedValue(packed);
              hit = true;
              break;
            }
          }
        }
      }
      if (found != nullptr) found[i] = hit ? 1 : 0;
      if (hit && values != nullptr) values[i] = v;
    }
  });
}

Status MegaKvTable::BulkErase(std::span<const Key> keys,
                              uint64_t* num_erased) {
  std::atomic<uint64_t> erased{0};
  if (!keys.empty()) {
    const Key* kp = keys.data();
    const uint64_t n = keys.size();
    grid_->LaunchWarps(gpusim::WarpsForItems(n), [&](uint64_t warp) {
      const uint64_t base = warp * gpusim::kWarpSize;
      const uint64_t end = std::min(n, base + gpusim::kWarpSize);
      for (uint64_t i = base; i < end; ++i) {
        Key k = kp[i];
        if (!IsStorableKey(k)) continue;
        for (int t = 0; t < 2; ++t) {
          uint64_t loc = BucketIndex(t, k);
          gpusim::CountBucketRead();
          uint64_t snap[kSlotsPerBucket];
          SnapshotBucket(t, loc, snap);
          for (int s = 0; s < kSlotsPerBucket; ++s) {
            uint64_t packed = snap[s];
            if (PackedKey(packed) == k) {
              std::atomic<uint64_t>* slot = Slot(t, loc, s);
              if (gpusim::AtomicCas64(slot, packed, kEmptySlot) == packed) {
                size_.fetch_sub(1, std::memory_order_relaxed);
                erased.fetch_add(1, std::memory_order_relaxed);
              }
            }
          }
        }
      }
    });
  }
  // Parked residents are erasable too (host-side, after the kernel).
  if (!spill_.empty() && !keys.empty()) {
    std::unordered_set<Key> victims(keys.begin(), keys.end());
    auto it = std::remove_if(spill_.begin(), spill_.end(),
                             [&](uint64_t packed) {
                               return victims.count(PackedKey(packed)) > 0;
                             });
    erased.fetch_add(static_cast<uint64_t>(spill_.end() - it),
                     std::memory_order_relaxed);
    spill_.erase(it, spill_.end());
  }
  if (num_erased != nullptr) {
    *num_erased = erased.load(std::memory_order_relaxed);
  }
  if (options_.auto_resize) DYCUCKOO_RETURN_NOT_OK(ResizeToBounds());
  return Status::OK();
}

Status MegaKvTable::Rehash(bool grow) {
  const uint64_t old_buckets = buckets_per_table_;
  const uint64_t old_seeds[2] = {seeds_[0], seeds_[1]};
  const uint64_t old_size = size_.load(std::memory_order_relaxed);
  std::atomic<uint64_t>* old_slots[2] = {slots_[0], slots_[1]};
  slots_[0] = slots_[1] = nullptr;

  // Parked residents get rehomed by this rehash; on failure they go back.
  const std::vector<uint64_t> parked = std::move(spill_);
  spill_.clear();

  const uint64_t old_capacity = 2ull * old_buckets * kSlotsPerBucket;
  uint64_t new_capacity =
      grow ? old_capacity * 2
           : std::max<uint64_t>(old_capacity / 2, 2ull * kSlotsPerBucket);

  // Restores the pre-rehash table exactly on any failure: storage and
  // geometry, the hash seeds (a successful earlier attempt's Init already
  // advanced them — without restoring, the old slots would be unaddressable
  // under the new seeds) and the size counter (polluted by a failed
  // attempt's partial reinserts).
  auto restore = [&] {
    ReleaseStorage();  // frees a partially rebuilt attempt, if any
    slots_[0] = old_slots[0];
    slots_[1] = old_slots[1];
    buckets_per_table_ = old_buckets;
    seeds_[0] = old_seeds[0];
    seeds_[1] = old_seeds[1];
    size_.store(old_size, std::memory_order_relaxed);
    spill_ = parked;
    ++rehash_rollbacks_;
  };

  // Rebuilding can itself fail (cuckoo chains in the new layout); retry with
  // progressively larger capacity.
  for (int attempt = 0; attempt < 8; ++attempt) {
    Status st = Init(new_capacity);
    if (!st.ok()) {
      restore();
      return st;
    }
    std::atomic<uint64_t> failures{0};
    for (int t = 0; t < 2; ++t) {
      grid_->LaunchWarps(old_buckets, [&, t](uint64_t bucket) {
        for (int s = 0; s < kSlotsPerBucket; ++s) {
          uint64_t packed =
              gpusim::Load(&old_slots[t][bucket * kSlotsPerBucket + s]);
          if (PackedKey(packed) == kEmptyKey32) continue;
          uint64_t spilled = 0;
          if (!InsertOne(PackedKey(packed), PackedValue(packed), &spilled)) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (uint64_t packed : parked) {
      // A parked pair is older than anything inserted after it was parked;
      // if its key is resident again, the newer value wins and the parked
      // copy is simply dropped (InsertOne would upsert the stale value).
      Key k = PackedKey(packed);
      bool resident = false;
      for (int t = 0; t < 2 && !resident; ++t) {
        uint64_t snap[kSlotsPerBucket];
        SnapshotBucket(t, BucketIndex(t, k), snap);
        for (int s = 0; s < kSlotsPerBucket; ++s) {
          if (PackedKey(snap[s]) == k) {
            resident = true;
            break;
          }
        }
      }
      if (resident) continue;
      uint64_t spilled = 0;
      if (!InsertOne(k, PackedValue(packed), &spilled)) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (failures.load(std::memory_order_relaxed) == 0) {
      // Recount from the new layout (exact even if duplicate keys merged).
      uint64_t stored = 0;
      for (int t = 0; t < 2; ++t) {
        for (uint64_t s = 0; s < buckets_per_table_ * kSlotsPerBucket; ++s) {
          if (PackedKey(gpusim::Load(&slots_[t][s])) != kEmptyKey32) {
            ++stored;
          }
        }
      }
      rehashed_kvs_ += stored;
      size_.store(stored, std::memory_order_relaxed);
      ++full_rehashes_;
      for (int t = 0; t < 2; ++t) arena_->FreeArray(old_slots[t]);
      return Status::OK();
    }
    new_capacity *= 2;
  }
  restore();
  return Status::Internal("megakv rehash kept failing; old table restored");
}

Status MegaKvTable::ResizeToBounds() {
  for (int iter = 0; iter < 64; ++iter) {
    double theta = filled_factor();
    if (theta > options_.upper_bound) {
      DYCUCKOO_RETURN_NOT_OK(Rehash(/*grow=*/true));
    } else if (theta < options_.lower_bound &&
               buckets_per_table_ > 1) {
      DYCUCKOO_RETURN_NOT_OK(Rehash(/*grow=*/false));
    } else {
      return Status::OK();
    }
  }
  return Status::OK();
}

uint64_t MegaKvTable::memory_bytes() const {
  return 2ull * buckets_per_table_ * kSlotsPerBucket * sizeof(uint64_t);
}

double MegaKvTable::filled_factor() const {
  uint64_t cap = capacity_slots();
  return cap == 0 ? 0.0 : static_cast<double>(size()) / cap;
}

std::vector<std::pair<MegaKvTable::Key, MegaKvTable::Value>>
MegaKvTable::Dump() const {
  std::vector<std::pair<Key, Value>> out;
  for (int t = 0; t < 2; ++t) {
    for (uint64_t s = 0; s < buckets_per_table_ * kSlotsPerBucket; ++s) {
      uint64_t packed = gpusim::Load(&slots_[t][s]);
      if (PackedKey(packed) != kEmptyKey32) {
        out.emplace_back(PackedKey(packed), PackedValue(packed));
      }
    }
  }
  for (uint64_t packed : spill_) {
    out.emplace_back(PackedKey(packed), PackedValue(packed));
  }
  return out;
}

}  // namespace dycuckoo
