// Adapts the DyCuckoo DynamicTable to the uniform HashTableInterface so the
// experiment drivers can run all contenders through one code path.

#ifndef DYCUCKOO_BASELINES_DYCUCKOO_ADAPTER_H_
#define DYCUCKOO_BASELINES_DYCUCKOO_ADAPTER_H_

#include <memory>
#include <string>

#include "baselines/table_interface.h"
#include "dycuckoo/dycuckoo.h"

namespace dycuckoo {

/// \brief HashTableInterface façade over DyCuckooMap.
class DyCuckooAdapter : public HashTableInterface {
 public:
  static Status Create(const DyCuckooOptions& options,
                       std::unique_ptr<DyCuckooAdapter>* out) {
    std::unique_ptr<DyCuckooMap> table;
    DYCUCKOO_RETURN_NOT_OK(DyCuckooMap::Create(options, &table));
    out->reset(new DyCuckooAdapter(std::move(table)));
    return Status::OK();
  }

  Status BulkInsert(std::span<const Key> keys, std::span<const Value> values,
                    uint64_t* num_failed = nullptr) override {
    return table_->BulkInsert(keys, values, num_failed);
  }

  void BulkFind(std::span<const Key> keys, Value* values,
                uint8_t* found) override {
    table_->BulkFind(keys, values, found);
  }

  Status BulkErase(std::span<const Key> keys,
                   uint64_t* num_erased = nullptr) override {
    return table_->BulkErase(keys, num_erased);
  }

  uint64_t size() const override { return table_->size(); }
  uint64_t memory_bytes() const override { return table_->memory_bytes(); }
  double filled_factor() const override { return table_->filled_factor(); }
  std::string name() const override { return "DyCuckoo"; }

  DyCuckooMap* table() { return table_.get(); }
  const DyCuckooMap* table() const { return table_.get(); }

 private:
  explicit DyCuckooAdapter(std::unique_ptr<DyCuckooMap> table)
      : table_(std::move(table)) {}

  std::unique_ptr<DyCuckooMap> table_;
};

}  // namespace dycuckoo

#endif  // DYCUCKOO_BASELINES_DYCUCKOO_ADAPTER_H_
