#include "baselines/slab_hash.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "gpusim/atomics.h"
#include "gpusim/device_arena.h"
#include "gpusim/grid.h"
#include "gpusim/sim_counters.h"
#include "gpusim/warp.h"

namespace dycuckoo {

using baselines::IsStorableKey;
using baselines::kEmptyKey32;
using baselines::kEmptySlot;
using baselines::kTombstoneKey32;
using baselines::kTombstoneSlot;
using baselines::PackedKey;
using baselines::PackedValue;
using baselines::PackKv;

Status SlabHashOptions::Validate() const {
  if (initial_capacity == 0) {
    return Status::InvalidArgument("initial_capacity must be > 0");
  }
  if (pool_reserve_factor < 1.0) {
    return Status::InvalidArgument("pool_reserve_factor must be >= 1");
  }
  return Status::OK();
}

SlabHashTable::SlabHashTable(const SlabHashOptions& options)
    : options_(options) {}

SlabHashTable::~SlabHashTable() {
  for (Slab* block : superblocks_) arena_->FreeArray(block);
}

Status SlabHashTable::Create(const SlabHashOptions& options,
                             std::unique_ptr<SlabHashTable>* out) {
  DYCUCKOO_RETURN_NOT_OK(options.Validate());
  std::unique_ptr<SlabHashTable> table(new SlabHashTable(options));
  table->arena_ = options.arena != nullptr ? options.arena
                                           : gpusim::DeviceArena::Global();
  table->grid_ =
      options.grid != nullptr ? options.grid : gpusim::Grid::Global();
  table->hash_seed_ = Mix64(options.seed ^ 0x51ABULL);
  // Arbitrary bucket count (modulo addressing): the chain structure never
  // resizes the bucket range, so the base-slab budget can match the request
  // exactly.
  table->num_buckets_ = std::max<uint64_t>(
      1, CeilDiv(options.initial_capacity, kSlotsPerSlab));
  table->slabs_per_block_ = std::max<uint64_t>(
      1024, NextPowerOfTwo(table->num_buckets_));
  // Resolve() reads superblocks_ without the pool mutex; pre-reserving the
  // vector keeps its data pointer stable across concurrent growth.
  table->superblocks_.reserve(kMaxSuperblocks);
  // The dedicated allocator reserves its pool up front: bucket head slabs
  // plus the configured slack.
  uint64_t reserve = table->num_buckets_ +
                     static_cast<uint64_t>(
                         static_cast<double>(table->num_buckets_) *
                         (options.pool_reserve_factor - 1.0));
  {
    common::MutexLock lock(table->pool_mu_);
    DYCUCKOO_RETURN_NOT_OK(table->Reserve(reserve));
  }
  // Claim the first num_buckets_ slabs as the bucket heads.
  table->allocated_slabs_.store(table->num_buckets_,
                                std::memory_order_relaxed);
  *out = std::move(table);
  return Status::OK();
}

Status SlabHashTable::Reserve(uint64_t min_total_slabs) {
  while (reserved_slabs_.load(std::memory_order_relaxed) < min_total_slabs) {
    Slab* block =
        arena_->AllocateArray<Slab>(slabs_per_block_, options_.memory_tag);
    if (block == nullptr) {
      return Status::OutOfMemory("device arena exhausted (slab pool)");
    }
    for (uint64_t i = 0; i < slabs_per_block_; ++i) {
      for (int s = 0; s < kSlotsPerSlab; ++s) {
        block[i].kv[s].store(kEmptySlot, std::memory_order_relaxed);
      }
      block[i].next.store(kNullSlab, std::memory_order_relaxed);
    }
    DYCUCKOO_CHECK(superblocks_.size() < kMaxSuperblocks);
    superblocks_.push_back(block);
    reserved_slabs_.fetch_add(slabs_per_block_, std::memory_order_release);
  }
  return Status::OK();
}

uint32_t SlabHashTable::AllocSlab() {
  uint64_t idx = allocated_slabs_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= reserved_slabs_.load(std::memory_order_acquire)) {
    common::MutexLock lock(pool_mu_);
    Status st = Reserve(idx + 1);
    DYCUCKOO_CHECK(st.ok());  // pool growth failure is fatal, like the GPU
  }
  return static_cast<uint32_t>(idx);
}

uint64_t SlabHashTable::BucketIndex(Key key) const {
  return Mix64(static_cast<uint64_t>(key) ^ hash_seed_) % num_buckets_;
}

bool SlabHashTable::InsertOne(Key key, Value value) {
  const uint64_t pack = PackKv(key, value);
  for (int attempt = 0; attempt < 64; ++attempt) {
    uint32_t slab_idx = static_cast<uint32_t>(BucketIndex(key));
    Slab* slab = Resolve(slab_idx);
    Slab* reusable_slab = nullptr;
    int reusable_slot = -1;
    uint64_t reusable_old = 0;

    // Walk the whole chain first: updates must win over claiming a hole so
    // a key is never stored twice.
    for (;;) {
      gpusim::CountChainNode();
      gpusim::CountBucketRead();
      uint64_t snap[kSlotsPerSlab];
      SnapshotSlab(slab, snap);
      for (int s = 0; s < kSlotsPerSlab; ++s) {
        uint64_t old = snap[s];
        Key ok = PackedKey(old);
        if (ok == key) {
          gpusim::AtomicExch64(&slab->kv[s], pack);
          return true;  // update; size unchanged
        }
        if (reusable_slot < 0 &&
            (ok == kEmptyKey32 || ok == kTombstoneKey32)) {
          reusable_slab = slab;
          reusable_slot = s;
          reusable_old = old;
        }
      }
      uint32_t next = gpusim::LoadAcquire(&slab->next);
      if (next == kNullSlab) break;
      slab_idx = next;
      slab = Resolve(next);
    }

    if (reusable_slot >= 0) {
      if (gpusim::AtomicCas64(&reusable_slab->kv[reusable_slot], reusable_old,
                              pack) == reusable_old) {
        if (PackedKey(reusable_old) == kTombstoneKey32) {
          tombstones_.fetch_sub(1, std::memory_order_relaxed);
        }
        size_.fetch_add(1, std::memory_order_relaxed);
        gpusim::CountBucketWrite();
        return true;
      }
      continue;  // lost the race; rescan the chain
    }

    // Chain exhausted: extend it with a fresh slab.
    uint32_t fresh = AllocSlab();
    Slab* fresh_slab = Resolve(fresh);
    fresh_slab->kv[0].store(pack, std::memory_order_relaxed);
    uint32_t expected = kNullSlab;
    if (slab->next.compare_exchange_strong(expected, fresh,
                                           std::memory_order_acq_rel)) {
      size_.fetch_add(1, std::memory_order_relaxed);
      gpusim::CountBucketWrite();
      return true;
    }
    // Another warp linked first; our slab is stranded in the pool (the real
    // allocator has the same failure mode).  Undo our staged write and walk
    // the winner's extension.
    fresh_slab->kv[0].store(kEmptySlot, std::memory_order_relaxed);
    leaked_slabs_.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

Status SlabHashTable::BulkInsert(std::span<const Key> keys,
                                 std::span<const Value> values,
                                 uint64_t* num_failed) {
  if (keys.size() != values.size()) {
    return Status::InvalidArgument("keys/values size mismatch");
  }
  if (num_failed != nullptr) *num_failed = 0;
  if (keys.empty()) return Status::OK();

  const Key* kp = keys.data();
  const Value* vp = values.data();
  const uint64_t n = keys.size();
  std::atomic<uint64_t> invalid{0};
  std::atomic<uint64_t> failed{0};
  grid_->LaunchWarps(gpusim::WarpsForItems(n), [&](uint64_t warp) {
    const uint64_t base = warp * gpusim::kWarpSize;
    const uint64_t end = std::min(n, base + gpusim::kWarpSize);
    for (uint64_t i = base; i < end; ++i) {
      if (!IsStorableKey(kp[i])) {
        invalid.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (!InsertOne(kp[i], vp[i])) {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  if (invalid.load(std::memory_order_relaxed) > 0) {
    return Status::InvalidArgument("batch contains a reserved key");
  }
  uint64_t nf = failed.load(std::memory_order_relaxed);
  if (nf > 0) {
    if (num_failed != nullptr) *num_failed = nf;
    return Status::InsertionFailure("slab insert retries exhausted for " +
                                    std::to_string(nf) + " keys");
  }
  return Status::OK();
}

void SlabHashTable::BulkFind(std::span<const Key> keys, Value* values,
                             uint8_t* found) {
  if (keys.empty()) return;
  const Key* kp = keys.data();
  const uint64_t n = keys.size();
  grid_->LaunchWarps(gpusim::WarpsForItems(n), [&](uint64_t warp) {
    const uint64_t base = warp * gpusim::kWarpSize;
    const uint64_t end = std::min(n, base + gpusim::kWarpSize);
    for (uint64_t i = base; i < end; ++i) {
      Key k = kp[i];
      bool hit = false;
      Value v{};
      if (IsStorableKey(k)) {
        uint32_t slab_idx = static_cast<uint32_t>(BucketIndex(k));
        while (slab_idx != kNullSlab && !hit) {
          Slab* slab = Resolve(slab_idx);
          gpusim::CountChainNode();
          gpusim::CountBucketRead();
          uint64_t snap[kSlotsPerSlab];
          SnapshotSlab(slab, snap);
          for (int s = 0; s < kSlotsPerSlab; ++s) {
            if (PackedKey(snap[s]) == k) {
              v = PackedValue(snap[s]);
              hit = true;
              break;
            }
          }
          slab_idx = gpusim::LoadAcquire(&slab->next);
        }
      }
      if (found != nullptr) found[i] = hit ? 1 : 0;
      if (hit && values != nullptr) values[i] = v;
    }
  });
}

Status SlabHashTable::BulkErase(std::span<const Key> keys,
                                uint64_t* num_erased) {
  std::atomic<uint64_t> erased{0};
  if (!keys.empty()) {
    const Key* kp = keys.data();
    const uint64_t n = keys.size();
    grid_->LaunchWarps(gpusim::WarpsForItems(n), [&](uint64_t warp) {
      const uint64_t base = warp * gpusim::kWarpSize;
      const uint64_t end = std::min(n, base + gpusim::kWarpSize);
      for (uint64_t i = base; i < end; ++i) {
        Key k = kp[i];
        if (!IsStorableKey(k)) continue;
        uint32_t slab_idx = static_cast<uint32_t>(BucketIndex(k));
        while (slab_idx != kNullSlab) {
          Slab* slab = Resolve(slab_idx);
          gpusim::CountChainNode();
          gpusim::CountBucketRead();
          uint64_t snap[kSlotsPerSlab];
          SnapshotSlab(slab, snap);
          for (int s = 0; s < kSlotsPerSlab; ++s) {
            uint64_t packed = snap[s];
            if (PackedKey(packed) == k) {
              // Symbolic deletion: tombstone the slot, never free memory.
              if (gpusim::AtomicCas64(&slab->kv[s], packed, kTombstoneSlot) ==
                  packed) {
                size_.fetch_sub(1, std::memory_order_relaxed);
                tombstones_.fetch_add(1, std::memory_order_relaxed);
                erased.fetch_add(1, std::memory_order_relaxed);
              }
            }
          }
          slab_idx = gpusim::LoadAcquire(&slab->next);
        }
      }
    });
  }
  if (num_erased != nullptr) {
    *num_erased = erased.load(std::memory_order_relaxed);
  }
  return Status::OK();
}

uint64_t SlabHashTable::memory_bytes() const {
  return reserved_slabs_.load(std::memory_order_relaxed) * sizeof(Slab);
}

double SlabHashTable::filled_factor() const {
  uint64_t slots =
      reserved_slabs_.load(std::memory_order_relaxed) * kSlotsPerSlab;
  return slots == 0 ? 0.0 : static_cast<double>(size()) / slots;
}

uint64_t SlabHashTable::MaxChainLength() const {
  uint64_t max_len = 0;
  for (uint64_t b = 0; b < num_buckets_; ++b) {
    uint64_t len = 0;
    uint32_t idx = static_cast<uint32_t>(b);
    while (idx != kNullSlab) {
      ++len;
      idx = gpusim::LoadAcquire(&Resolve(idx)->next);
    }
    max_len = std::max(max_len, len);
  }
  return max_len;
}

double SlabHashTable::AverageChainLength() const {
  uint64_t total = 0;
  for (uint64_t b = 0; b < num_buckets_; ++b) {
    uint32_t idx = static_cast<uint32_t>(b);
    while (idx != kNullSlab) {
      ++total;
      idx = gpusim::LoadAcquire(&Resolve(idx)->next);
    }
  }
  return static_cast<double>(total) / static_cast<double>(num_buckets_);
}

}  // namespace dycuckoo
