// 64-bit packed key/value word shared by the baselines that transact whole
// KV pairs with single atomics (MegaKV, CUDPP, SlabHash).
//
// This is exactly the representation the paper attributes to those systems
// ("most of these works require the size of a KV pair to fit a single atomic
// transaction on GPUs (64 bits wide)") — and the limitation DyCuckoo's
// bucket locking removes.

#ifndef DYCUCKOO_BASELINES_PACKED_KV_H_
#define DYCUCKOO_BASELINES_PACKED_KV_H_

#include <cstdint>

namespace dycuckoo {
namespace baselines {

/// Reserved key marking an empty slot.
inline constexpr uint32_t kEmptyKey32 = 0xffffffffu;
/// Reserved key marking a symbolically deleted slot (SlabHash only).
inline constexpr uint32_t kTombstoneKey32 = 0xfffffffeu;

inline constexpr uint64_t PackKv(uint32_t key, uint32_t value) {
  return (static_cast<uint64_t>(key) << 32) | value;
}
inline constexpr uint32_t PackedKey(uint64_t packed) {
  return static_cast<uint32_t>(packed >> 32);
}
inline constexpr uint32_t PackedValue(uint64_t packed) {
  return static_cast<uint32_t>(packed & 0xffffffffu);
}

inline constexpr uint64_t kEmptySlot = PackKv(kEmptyKey32, 0);
inline constexpr uint64_t kTombstoneSlot = PackKv(kTombstoneKey32, 0);

/// True for keys a client may store (the two sentinels are reserved).
inline constexpr bool IsStorableKey(uint32_t key) {
  return key != kEmptyKey32 && key != kTombstoneKey32;
}

}  // namespace baselines
}  // namespace dycuckoo

#endif  // DYCUCKOO_BASELINES_PACKED_KV_H_
