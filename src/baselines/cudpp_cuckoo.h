// CUDPP cuckoo-hash baseline (Alcantara et al., SIGGRAPH Asia 2009), as
// characterized by the paper:
//
//  * one flat slot array; each hash value stores a single 64-bit packed KV;
//  * d independent hash functions into the same array, with d chosen
//    automatically from the target load factor (2..5);
//  * insertion is a random cuckoo walk of atomic exchanges; exceeding the
//    walk bound triggers a full rebuild with fresh hash seeds;
//  * FIND probes up to d locations; DELETE is not supported (the trait the
//    paper's dynamic comparison excludes it for).

#ifndef DYCUCKOO_BASELINES_CUDPP_CUCKOO_H_
#define DYCUCKOO_BASELINES_CUDPP_CUCKOO_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/packed_kv.h"
#include "baselines/table_interface.h"
#include "common/status.h"

namespace dycuckoo {

namespace gpusim {
class DeviceArena;
class Grid;
}  // namespace gpusim

struct CudppOptions {
  /// Fixed slot capacity (CUDPP is static; callers size it as
  /// expected_items / target_load).
  uint64_t capacity_slots = 64 * 1024;

  /// Expected number of items; with capacity_slots this determines the
  /// automatic hash-function count (more functions at higher load, the
  /// behaviour behind the paper's Figure 9 CUDPP find degradation).
  uint64_t expected_items = 32 * 1024;

  uint64_t seed = 0xC0DD99ULL;

  /// Cuckoo walk bound before declaring failure (CUDPP uses ~7*lg(n); a
  /// fixed bound keeps runs comparable).
  int max_walk = 96;

  /// Full-rebuild attempts (with fresh seeds) before giving up a batch.
  int max_rebuilds = 8;

  gpusim::DeviceArena* arena = nullptr;
  gpusim::Grid* grid = nullptr;
  std::string memory_tag = "cudpp";

  Status Validate() const;
};

/// \brief Static per-slot cuckoo hash with automatic d and full rebuilds.
class CudppCuckooTable : public HashTableInterface {
 public:
  static Status Create(const CudppOptions& options,
                       std::unique_ptr<CudppCuckooTable>* out);
  ~CudppCuckooTable() override;

  CudppCuckooTable(const CudppCuckooTable&) = delete;
  CudppCuckooTable& operator=(const CudppCuckooTable&) = delete;

  Status BulkInsert(std::span<const Key> keys, std::span<const Value> values,
                    uint64_t* num_failed = nullptr) override;
  void BulkFind(std::span<const Key> keys, Value* values,
                uint8_t* found) override;
  Status BulkErase(std::span<const Key> keys,
                   uint64_t* num_erased = nullptr) override;

  uint64_t size() const override {
    return size_.load(std::memory_order_relaxed) + spill_.size();
  }
  uint64_t memory_bytes() const override;
  double filled_factor() const override;
  bool supports_erase() const override { return false; }
  std::string name() const override { return "CUDPP"; }

  /// The automatically chosen number of hash functions.
  int num_hash_functions() const { return num_functions_; }
  uint64_t capacity_slots() const { return num_slots_; }
  uint64_t rebuild_count() const { return rebuilds_; }

  /// Resident pairs parked host-side when a rebuild storm could not place
  /// them (they stay findable and re-enter the table on the next insert or
  /// rebuild; only keys from the failing batch are ever reported failed).
  uint64_t spilled_residents() const { return spill_.size(); }

  /// Picks d from the target load factor exactly as documented above.
  static int AutoFunctionCount(double target_load);

 private:
  explicit CudppCuckooTable(const CudppOptions& options);

  void ReseedFunctions();
  uint64_t SlotIndex(int function, Key key) const;

  /// Random cuckoo walk; false when the walk bound was exceeded (the
  /// carried pair is returned through *overflow_packed).
  bool InsertOne(uint64_t packed, uint64_t* overflow_packed);

  /// Collects every stored pair, reseeds, and reinserts (plus `pending`).
  Status Rebuild(std::vector<uint64_t>* pending);

  CudppOptions options_;
  gpusim::DeviceArena* arena_ = nullptr;
  gpusim::Grid* grid_ = nullptr;
  int num_functions_ = 2;
  uint64_t num_slots_ = 0;
  std::vector<uint64_t> function_seeds_;
  std::atomic<uint64_t>* slots_ = nullptr;
  std::atomic<uint64_t> size_{0};
  std::vector<uint64_t> spill_;  // packed resident KVs a rebuild couldn't place
  uint64_t seed_epoch_ = 0;
  uint64_t rebuilds_ = 0;
};

}  // namespace dycuckoo

#endif  // DYCUCKOO_BASELINES_CUDPP_CUCKOO_H_
