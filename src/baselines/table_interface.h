// Uniform batched-hash-table interface used by the benchmark harness.
//
// All contenders (DyCuckoo and the three baselines the paper compares
// against) implement this so the experiment drivers in bench/ can swap them
// freely.  Keys/values are 32-bit, the paper's evaluation configuration.

#ifndef DYCUCKOO_BASELINES_TABLE_INTERFACE_H_
#define DYCUCKOO_BASELINES_TABLE_INTERFACE_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"

namespace dycuckoo {

/// \brief Abstract batched hash table: insert/find/erase over u32 KV pairs.
class HashTableInterface {
 public:
  using Key = uint32_t;
  using Value = uint32_t;

  virtual ~HashTableInterface() = default;

  /// Upserts a batch.  Implementations with a resizing policy apply it here;
  /// static tables report leftover failures via the status / `num_failed`.
  virtual Status BulkInsert(std::span<const Key> keys,
                            std::span<const Value> values,
                            uint64_t* num_failed = nullptr) = 0;

  /// Batched lookup; either output pointer may be nullptr.
  virtual void BulkFind(std::span<const Key> keys, Value* values,
                        uint8_t* found) = 0;

  /// Batched delete.  Tables without delete support return kNotSupported.
  virtual Status BulkErase(std::span<const Key> keys,
                           uint64_t* num_erased = nullptr) = 0;

  /// Number of live entries.
  virtual uint64_t size() const = 0;

  /// Device bytes currently occupied (the memory the paper's Figure 11
  /// compares): storage arrays plus, for pooled allocators, the reserved
  /// pool.
  virtual uint64_t memory_bytes() const = 0;

  /// Live entries over owned slot capacity (for SlabHash this includes the
  /// reserved pool, which is the paper's memory-efficiency argument).
  virtual double filled_factor() const = 0;

  virtual bool supports_erase() const { return true; }

  virtual std::string name() const = 0;
};

}  // namespace dycuckoo

#endif  // DYCUCKOO_BASELINES_TABLE_INTERFACE_H_
