#include "baselines/cudpp_cuckoo.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "gpusim/atomics.h"
#include "gpusim/device_arena.h"
#include "gpusim/grid.h"
#include "gpusim/sim_counters.h"
#include "gpusim/warp.h"

namespace dycuckoo {

using baselines::IsStorableKey;
using baselines::kEmptyKey32;
using baselines::kEmptySlot;
using baselines::PackedKey;
using baselines::PackedValue;
using baselines::PackKv;

Status CudppOptions::Validate() const {
  if (capacity_slots == 0) {
    return Status::InvalidArgument("capacity_slots must be > 0");
  }
  if (max_walk < 1 || max_rebuilds < 1) {
    return Status::InvalidArgument("max_walk and max_rebuilds must be >= 1");
  }
  return Status::OK();
}

int CudppCuckooTable::AutoFunctionCount(double target_load) {
  if (target_load <= 0.5) return 2;
  if (target_load <= 0.7) return 3;
  if (target_load <= 0.85) return 4;
  return 5;
}

CudppCuckooTable::CudppCuckooTable(const CudppOptions& options)
    : options_(options) {}

CudppCuckooTable::~CudppCuckooTable() {
  if (slots_ != nullptr) arena_->FreeArray(slots_);
}

Status CudppCuckooTable::Create(const CudppOptions& options,
                                std::unique_ptr<CudppCuckooTable>* out) {
  DYCUCKOO_RETURN_NOT_OK(options.Validate());
  std::unique_ptr<CudppCuckooTable> table(new CudppCuckooTable(options));
  table->arena_ = options.arena != nullptr ? options.arena
                                           : gpusim::DeviceArena::Global();
  table->grid_ =
      options.grid != nullptr ? options.grid : gpusim::Grid::Global();
  // CUDPP tables are arbitrary-size (prime-mod in the original); no
  // power-of-two rounding, so the requested load factor is achieved exactly.
  table->num_slots_ = options.capacity_slots;
  double load = static_cast<double>(options.expected_items) /
                static_cast<double>(table->num_slots_);
  table->num_functions_ = AutoFunctionCount(load);
  table->ReseedFunctions();
  table->slots_ = table->arena_->AllocateArray<std::atomic<uint64_t>>(
      table->num_slots_, options.memory_tag);
  if (table->slots_ == nullptr) {
    return Status::OutOfMemory("device arena exhausted (cudpp init)");
  }
  for (uint64_t s = 0; s < table->num_slots_; ++s) {
    table->slots_[s].store(kEmptySlot, std::memory_order_relaxed);
  }
  *out = std::move(table);
  return Status::OK();
}

void CudppCuckooTable::ReseedFunctions() {
  function_seeds_.resize(num_functions_);
  for (int f = 0; f < num_functions_; ++f) {
    function_seeds_[f] =
        Mix64(options_.seed + 0x51ED5EEDULL * (seed_epoch_ * 8 + f + 1));
  }
  ++seed_epoch_;
}

uint64_t CudppCuckooTable::SlotIndex(int function, Key key) const {
  return Mix64(static_cast<uint64_t>(key) ^ function_seeds_[function]) %
         num_slots_;
}

bool CudppCuckooTable::InsertOne(uint64_t packed, uint64_t* overflow_packed) {
  uint64_t carried = packed;
  int next_func = 0;
  for (int step = 0; step <= options_.max_walk; ++step) {
    Key ck = PackedKey(carried);
    uint64_t loc = SlotIndex(next_func, ck);
    uint64_t old = gpusim::AtomicExch64(&slots_[loc], carried);
    gpusim::CountBucketWrite();
    if (PackedKey(old) == kEmptyKey32) {
      size_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (PackedKey(old) == ck) {
      // Landed on the same key: the exchange already replaced the value.
      return true;
    }
    gpusim::CountEviction();
    carried = old;
    // The classic CUDPP step: locate which function placed the evictee here
    // and continue its walk with the next function.
    Key ok = PackedKey(carried);
    int placed_by = 0;
    for (int f = 0; f < num_functions_; ++f) {
      if (SlotIndex(f, ok) == loc) {
        placed_by = f;
        break;
      }
    }
    next_func = (placed_by + 1) % num_functions_;
  }
  *overflow_packed = carried;
  return false;
}

Status CudppCuckooTable::BulkInsert(std::span<const Key> keys,
                                    std::span<const Value> values,
                                    uint64_t* num_failed) {
  if (keys.size() != values.size()) {
    return Status::InvalidArgument("keys/values size mismatch");
  }
  if (num_failed != nullptr) *num_failed = 0;
  if (keys.empty()) return Status::OK();

  const uint64_t n = keys.size();
  std::vector<uint64_t> overflow(n);
  std::atomic<uint64_t> overflow_count{0};
  std::atomic<uint64_t> invalid{0};
  const Key* kp = keys.data();
  const Value* vp = values.data();

  grid_->LaunchWarps(gpusim::WarpsForItems(n), [&](uint64_t warp) {
    const uint64_t base = warp * gpusim::kWarpSize;
    const uint64_t end = std::min(n, base + gpusim::kWarpSize);
    for (uint64_t i = base; i < end; ++i) {
      if (!IsStorableKey(kp[i])) {
        invalid.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      uint64_t spilled = 0;
      if (!InsertOne(PackKv(kp[i], vp[i]), &spilled)) {
        overflow[overflow_count.fetch_add(1, std::memory_order_relaxed)] =
            spilled;
      }
    }
  });

  std::vector<uint64_t> pending(
      overflow.begin(),
      overflow.begin() +
          static_cast<long>(overflow_count.load(std::memory_order_relaxed)));

  // Retry previously spilled residents now that the table may have room.
  // Copies superseded by this batch are dropped (the batch value is newer
  // and was just written above).
  if (!spill_.empty()) {
    std::unordered_set<Key> batch_keys(keys.begin(), keys.end());
    std::vector<uint64_t> parked = std::move(spill_);
    spill_.clear();
    for (uint64_t packed : parked) {
      if (batch_keys.count(PackedKey(packed)) > 0) continue;
      uint64_t spilled = 0;
      if (!InsertOne(packed, &spilled)) pending.push_back(spilled);
    }
  }

  int attempts = 0;
  while (!pending.empty() && attempts++ < options_.max_rebuilds) {
    DYCUCKOO_RETURN_NOT_OK(Rebuild(&pending));
  }

  if (invalid.load(std::memory_order_relaxed) > 0) {
    return Status::InvalidArgument("batch contains a reserved key");
  }
  if (!pending.empty()) {
    // A failed rebuild storm leaves `pending` holding a mix of this batch's
    // keys and drained residents.  Only batch keys are the caller's problem;
    // residents were stored before this call and must not be lost — park
    // them host-side where BulkFind can still see them.
    std::unordered_set<Key> batch_keys(keys.begin(), keys.end());
    uint64_t batch_failed = 0;
    for (uint64_t packed : pending) {
      if (batch_keys.count(PackedKey(packed)) > 0) {
        ++batch_failed;
      } else {
        spill_.push_back(packed);
      }
    }
    if (num_failed != nullptr) *num_failed = batch_failed;
    if (batch_failed > 0) {
      return Status::InsertionFailure(
          "rebuilds exhausted with " + std::to_string(batch_failed) +
          " keys unplaced");
    }
  }
  return Status::OK();
}

Status CudppCuckooTable::Rebuild(std::vector<uint64_t>* pending) {
  ++rebuilds_;
  // Drain the table, reseed every hash function, and reinsert everything.
  std::vector<uint64_t> stored;
  stored.reserve(size());
  for (uint64_t s = 0; s < num_slots_; ++s) {
    uint64_t packed = slots_[s].exchange(kEmptySlot, std::memory_order_relaxed);
    if (PackedKey(packed) != kEmptyKey32) stored.push_back(packed);
  }
  stored.insert(stored.end(), pending->begin(), pending->end());
  pending->clear();
  // Spilled residents get another chance under the fresh seeds.
  stored.insert(stored.end(), spill_.begin(), spill_.end());
  spill_.clear();
  size_.store(0, std::memory_order_relaxed);
  ReseedFunctions();

  std::vector<uint64_t> overflow(stored.size());
  std::atomic<uint64_t> overflow_count{0};
  const uint64_t n = stored.size();
  grid_->LaunchWarps(gpusim::WarpsForItems(n), [&](uint64_t warp) {
    const uint64_t base = warp * gpusim::kWarpSize;
    const uint64_t end = std::min(n, base + gpusim::kWarpSize);
    for (uint64_t i = base; i < end; ++i) {
      uint64_t spilled = 0;
      if (!InsertOne(stored[i], &spilled)) {
        overflow[overflow_count.fetch_add(1, std::memory_order_relaxed)] =
            spilled;
      }
    }
  });
  pending->assign(
      overflow.begin(),
      overflow.begin() +
          static_cast<long>(overflow_count.load(std::memory_order_relaxed)));
  return Status::OK();
}

void CudppCuckooTable::BulkFind(std::span<const Key> keys, Value* values,
                                uint8_t* found) {
  if (keys.empty()) return;
  const Key* kp = keys.data();
  const uint64_t n = keys.size();
  grid_->LaunchWarps(gpusim::WarpsForItems(n), [&](uint64_t warp) {
    const uint64_t base = warp * gpusim::kWarpSize;
    const uint64_t end = std::min(n, base + gpusim::kWarpSize);
    for (uint64_t i = base; i < end; ++i) {
      Key k = kp[i];
      bool hit = false;
      Value v{};
      if (IsStorableKey(k)) {
        for (int f = 0; f < num_functions_ && !hit; ++f) {
          uint64_t packed = gpusim::Load(&slots_[SlotIndex(f, k)]);
          gpusim::CountBucketRead();
          if (PackedKey(packed) == k) {
            v = PackedValue(packed);
            hit = true;
          }
        }
        if (!hit) {
          for (uint64_t packed : spill_) {
            if (PackedKey(packed) == k) {
              v = PackedValue(packed);
              hit = true;
              break;
            }
          }
        }
      }
      if (found != nullptr) found[i] = hit ? 1 : 0;
      if (hit && values != nullptr) values[i] = v;
    }
  });
}

Status CudppCuckooTable::BulkErase(std::span<const Key> keys,
                                   uint64_t* num_erased) {
  (void)keys;
  if (num_erased != nullptr) *num_erased = 0;
  return Status::NotSupported("CUDPP cuckoo hashing supports no deletions");
}

uint64_t CudppCuckooTable::memory_bytes() const {
  return num_slots_ * sizeof(uint64_t);
}

double CudppCuckooTable::filled_factor() const {
  return num_slots_ == 0 ? 0.0
                         : static_cast<double>(size()) /
                               static_cast<double>(num_slots_);
}

}  // namespace dycuckoo
