// SlabHash baseline (Ashkiani et al., IPDPS 2018), as characterized by the
// paper — the only prior dynamic GPU hash table:
//
//  * chaining: each bucket is a linked list of 128-byte "slabs", each slab
//    holding 15 packed 64-bit KV pairs plus a next pointer;
//  * a dedicated slab allocator that reserves a large pool up front and only
//    ever grows (the memory behaviour the paper criticizes: the reservation
//    is not available to other resident data structures);
//  * symbolic deletion: DELETE tombstones a slot without freeing memory, so
//    the filled factor is unbounded below under delete-heavy workloads
//    (Figure 11) — while also making subsequent inserts cheap (Figure 10);
//  * the bucket count never changes, so sustained insertion grows chains
//    and degrades every operation (Figure 12).

#ifndef DYCUCKOO_BASELINES_SLAB_HASH_H_
#define DYCUCKOO_BASELINES_SLAB_HASH_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/packed_kv.h"
#include "baselines/table_interface.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "gpusim/racecheck.h"

namespace dycuckoo {

namespace gpusim {
class DeviceArena;
class Grid;
}  // namespace gpusim

struct SlabHashOptions {
  /// Expected number of entries; determines the (fixed) bucket count.
  uint64_t initial_capacity = 64 * 1024;

  /// Pool slabs reserved up front, as a multiple of the bucket count.
  double pool_reserve_factor = 2.0;

  uint64_t seed = 0x51AB4A54ULL;

  gpusim::DeviceArena* arena = nullptr;
  gpusim::Grid* grid = nullptr;
  std::string memory_tag = "slabhash";

  Status Validate() const;
};

/// \brief Chained slab-list hash table with pooled allocation and symbolic
/// deletes.
class SlabHashTable : public HashTableInterface {
 public:
  static constexpr int kSlotsPerSlab = 15;  // 15*8 B KVs + next + pad = 128 B
  static constexpr uint32_t kNullSlab = 0xffffffffu;
  static constexpr size_t kMaxSuperblocks = 64;

  static Status Create(const SlabHashOptions& options,
                       std::unique_ptr<SlabHashTable>* out);
  ~SlabHashTable() override;

  SlabHashTable(const SlabHashTable&) = delete;
  SlabHashTable& operator=(const SlabHashTable&) = delete;

  Status BulkInsert(std::span<const Key> keys, std::span<const Value> values,
                    uint64_t* num_failed = nullptr) override;
  void BulkFind(std::span<const Key> keys, Value* values,
                uint8_t* found) override;
  Status BulkErase(std::span<const Key> keys,
                   uint64_t* num_erased = nullptr) override;

  uint64_t size() const override {
    return size_.load(std::memory_order_relaxed);
  }
  uint64_t memory_bytes() const override;

  /// Live entries over the *reserved pool's* slot count — the paper's
  /// memory-efficiency metric for SlabHash (the pool is committed memory).
  double filled_factor() const override;

  std::string name() const override { return "SlabHash"; }

  uint64_t num_buckets() const { return num_buckets_; }
  uint64_t reserved_slabs() const {
    return reserved_slabs_.load(std::memory_order_relaxed);
  }
  uint64_t allocated_slabs() const {
    return std::min(allocated_slabs_.load(std::memory_order_relaxed),
                    reserved_slabs());
  }
  uint64_t tombstones() const {
    return tombstones_.load(std::memory_order_relaxed);
  }
  uint64_t leaked_slabs() const {
    return leaked_slabs_.load(std::memory_order_relaxed);
  }

  /// Longest chain (in slabs) over all buckets; drives the Figure 12 story.
  uint64_t MaxChainLength() const;
  double AverageChainLength() const;

 private:
  struct Slab {
    std::atomic<uint64_t> kv[kSlotsPerSlab];
    std::atomic<uint32_t> next;
    uint32_t pad;
  };
  static_assert(sizeof(Slab) == 128, "slab must be one cache line pair");

  explicit SlabHashTable(const SlabHashOptions& options);

  /// One simulated coalesced slab transaction (see Subtable::SnapshotKeys).
  static void SnapshotSlab(const Slab* slab, uint64_t out[kSlotsPerSlab]) {
    static_assert(sizeof(std::atomic<uint64_t>) == sizeof(uint64_t));
    gpusim::RangeLoadCheck(slab->kv, sizeof(uint64_t) * kSlotsPerSlab);
    std::memcpy(out, reinterpret_cast<const char*>(slab->kv),
                sizeof(uint64_t) * kSlotsPerSlab);
  }

  Status Reserve(uint64_t min_total_slabs) REQUIRES(pool_mu_);

  Slab* Resolve(uint32_t index) const {
    return &superblocks_[index / slabs_per_block_][index % slabs_per_block_];
  }

  /// Grabs a fresh slab from the pool, growing it if needed.
  uint32_t AllocSlab();

  uint64_t BucketIndex(Key key) const;
  bool InsertOne(Key key, Value value);

  SlabHashOptions options_;
  gpusim::DeviceArena* arena_ = nullptr;
  gpusim::Grid* grid_ = nullptr;
  uint64_t hash_seed_ = 0;
  uint64_t num_buckets_ = 0;
  uint64_t slabs_per_block_ = 0;

  // pool_mu_ serializes pool growth (Reserve).  superblocks_ carries no
  // GUARDED_BY attribute: Resolve reads it lock-free on the hot path,
  // which is safe because the vector's capacity is reserved up front
  // (never reallocates) and readers only touch indices published by a
  // reserved_slabs_ release/acquire pair.
  mutable common::Mutex pool_mu_;
  std::vector<Slab*> superblocks_;
  std::atomic<uint64_t> reserved_slabs_{0};
  std::atomic<uint64_t> allocated_slabs_{0};

  std::atomic<uint64_t> size_{0};
  std::atomic<uint64_t> tombstones_{0};
  std::atomic<uint64_t> leaked_slabs_{0};
};

}  // namespace dycuckoo

#endif  // DYCUCKOO_BASELINES_SLAB_HASH_H_
