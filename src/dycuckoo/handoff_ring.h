// Bounded handoff ring for displaced cuckoo victims.
//
// The eviction chain of Algorithm 1 overwrites its victim's slot and only
// re-homes the victim on a later voter-loop iteration.  Without a handoff,
// the victim exists only in the evicting warp's registers during that
// window, so a concurrent lock-free FIND can transiently miss a resident
// key.  The ring closes the window: the chain *parks* the displaced pair
// here before overwriting the slot and *retires* it only after the pair is
// durably re-homed (bucket or stash).  Lock-free readers probe
// buckets -> ring -> stash, so the key is visible at every instant.
//
// Slot protocol.  Each slot carries a state word `(gen << 3) | phase`:
//
//   kFree     empty, claimable by a parking chain
//   kSetup    parker is writing key/value (readers skip; short, lock-free)
//   kParked   visible to FIND / claimable by DELETE / updatable by upsert
//   kClaimed  a concurrent DELETE consumed the entry; the owning chain
//             must undo its placement and call FreeClaimed
//   kUpdating an upsert is rewriting the value in place
//
// Every transition is a CAS on the state word, which both serializes
// ownership and gives RaceCheck its release/acquire vector-clock edges;
// key/value cells are written only by the slot owner between CASes (value
// uses the documented last-writer-wins annotation because in-place upserts
// deliberately race with the owner's reads).  The generation counter is
// bumped on every claim *and* on every in-place update, so a retire can
// never mistake an updated or recycled slot for the word it parked
// (no ABA): if anything happened to the slot, the CAS fails and the owner
// re-reads.
//
// The table-wide `epoch` counter increments before every transition that
// can make a key *disappear* from where a reader last looked (park: key
// leaves its bucket; retire: key leaves the ring).  Readers snapshot the
// epoch, probe buckets -> ring -> stash, and only trust a miss if the
// epoch is unchanged — otherwise a displacement moved keys mid-probe and
// the reader retries.  Parks/retires are bounded per kernel launch (chain
// length x batch size), so the retry loop terminates.

#ifndef DYCUCKOO_DYCUCKOO_HANDOFF_RING_H_
#define DYCUCKOO_DYCUCKOO_HANDOFF_RING_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "dycuckoo/subtable.h"
#include "gpusim/atomics.h"
#include "gpusim/racecheck.h"

namespace dycuckoo {

template <typename Key, typename Value>
class HandoffRing {
 public:
  static constexpr Key kEmptyKey = BucketTraits<Key>::kEmptyKey;

  HandoffRing() = default;

  /// (Re)initializes the ring with `capacity` slots, all free.
  /// Host-side only.
  void Reset(uint64_t capacity) {
    words_ = std::vector<std::atomic<uint64_t>>(capacity);
    keys_ = std::vector<std::atomic<Key>>(capacity);
    values_ = std::vector<std::atomic<Value>>(capacity);
    for (auto& k : keys_) k.store(kEmptyKey, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    epoch_.store(0, std::memory_order_relaxed);
  }

  uint64_t capacity() const { return words_.size(); }
  uint64_t count() const { return count_.load(std::memory_order_acquire); }
  bool empty() const { return count() == 0; }

  /// Table-wide displacement epoch; see file comment for the reader
  /// retry contract.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Parks a displaced pair.  On success writes the slot index and the
  /// parked state word the owner later passes to Retire/FreeClaimed.
  /// Returns false when the ring is full (the caller must then resolve the
  /// *incoming* op instead and leave the victim in its bucket).
  bool Park(Key k, Value v, int* slot_out, uint64_t* word_out) {
    const uint64_t n = words_.size();
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t w = gpusim::LoadAcquire(&words_[i]);
      if (PhaseOf(w) != kFree) continue;
      const uint64_t setup = MakeWord(GenOf(w) + 1, kSetup);
      if (!gpusim::AtomicCasWord(&words_[i], w, setup)) continue;
      // Occupancy rises before the entry is visible so a reader that sees
      // count() == 0 cannot be skipping a published entry.
      count_.fetch_add(1, std::memory_order_release);
      // The victim's key is about to leave its bucket: bump the epoch
      // first so any reader that misses it in the bucket either finds it
      // here or observes the epoch change and retries.
      epoch_.fetch_add(1, std::memory_order_acq_rel);
      gpusim::StoreRacy(&values_[i], v);
      gpusim::Store(&keys_[i], k);
      const uint64_t parked = MakeWord(GenOf(w) + 1, kParked);
      bool ok = gpusim::AtomicCasWord(&words_[i], setup, parked);
      DYCUCKOO_DCHECK(ok);
      (void)ok;
      *slot_out = static_cast<int>(i);
      *word_out = parked;
      return true;
    }
    return false;
  }

  /// Current parked value of an owned slot (concurrent upserts may update
  /// it in place; Retire returns the authoritative final value).
  Value CurrentValue(int slot) const {
    return gpusim::Load(&values_[static_cast<uint64_t>(slot)]);
  }

  /// Retires an owned parked entry after its pair has been re-homed.
  /// `*latest_out` receives the final parked value — a concurrent upsert
  /// may have updated it after the owner sampled it, in which case the
  /// caller must re-store the value into the re-homed copy (it still holds
  /// the destination bucket's lock).  Returns false when a concurrent
  /// DELETE claimed the entry first: the caller must unpublish its
  /// re-homed copy, undo size accounting, and call FreeClaimed.
  bool Retire(int slot, uint64_t parked_word, Value* latest_out) {
    const uint64_t i = static_cast<uint64_t>(slot);
    (void)parked_word;  // consumed only by the generation DCHECK below
    // The key is leaving the ring (its re-homed copy is already
    // published): epoch first, then unpublish.
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    gpusim::Store(&keys_[i], kEmptyKey);
    for (;;) {
      uint64_t w = gpusim::LoadAcquire(&words_[i]);
      DYCUCKOO_DCHECK(GenOf(w) >= GenOf(parked_word));
      if (PhaseOf(w) == kUpdating) {
        // An upsert holds the slot; it completes without taking locks, so
        // spinning here (even while holding a bucket lock) cannot deadlock.
        std::this_thread::yield();
        continue;
      }
      if (PhaseOf(w) == kClaimed) return false;
      DYCUCKOO_DCHECK(PhaseOf(w) == kParked);
      Value v = gpusim::Load(&values_[i]);
      // Updates bump the generation, so this CAS succeeding proves no
      // upsert intervened between the value read and the release.
      if (gpusim::AtomicCasWord(&words_[i], w, MakeWord(GenOf(w), kFree))) {
        *latest_out = v;
        count_.fetch_sub(1, std::memory_order_release);
        return true;
      }
    }
  }

  /// Releases a slot whose entry a concurrent DELETE claimed (Retire
  /// returned false) after the owner undid its placement.
  void FreeClaimed(int slot) {
    const uint64_t i = static_cast<uint64_t>(slot);
    uint64_t w = gpusim::LoadAcquire(&words_[i]);
    DYCUCKOO_DCHECK(PhaseOf(w) == kClaimed);
    gpusim::Store(&keys_[i], kEmptyKey);
    bool ok = gpusim::AtomicCasWord(&words_[i], w, MakeWord(GenOf(w), kFree));
    DYCUCKOO_DCHECK(ok);
    (void)ok;
    count_.fetch_sub(1, std::memory_order_release);
  }

  /// Lock-free read probe.  A hit is validated by re-reading the key after
  /// the value: the retire path unpublishes the key *before* releasing the
  /// slot and the park path publishes it *after* writing the value, so a
  /// stable key brackets a value that belonged to that key.  A miss is
  /// only trustworthy under the caller's epoch-retry contract.
  bool TryFind(Key k, Value* v_out) const {
    const uint64_t n = words_.size();
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t w = gpusim::LoadAcquire(&words_[i]);
      const uint64_t ph = PhaseOf(w);
      if (ph != kParked && ph != kUpdating) continue;
      if (gpusim::Load(&keys_[i]) != k) continue;
      Value v = gpusim::Load(&values_[i]);
      if (gpusim::Load(&keys_[i]) != k) continue;  // retired mid-read
      *v_out = v;
      return true;
    }
    return false;
  }

  /// DELETE-side claim: atomically consumes a parked entry for `k`.  The
  /// winning CAS linearizes the delete; the owning chain's Retire then
  /// fails and undoes its placement.  Returns false when no parked entry
  /// for `k` exists (a miss is subject to the epoch-retry contract).
  bool TryClaimForDelete(Key k) {
    const uint64_t n = words_.size();
    for (uint64_t i = 0; i < n; ++i) {
      for (;;) {
        uint64_t w = gpusim::LoadAcquire(&words_[i]);
        if (PhaseOf(w) == kUpdating) {
          std::this_thread::yield();  // upserts finish without locks
          continue;
        }
        if (PhaseOf(w) != kParked) break;
        if (gpusim::Load(&keys_[i]) != k) break;
        if (gpusim::AtomicCasWord(&words_[i], w, MakeWord(GenOf(w), kClaimed))) {
          return true;
        }
        // The word moved under us (retire or update): re-judge the slot.
      }
    }
    return false;
  }

  /// Upsert-side in-place update of a parked entry for `k`.  Claims the
  /// slot via kUpdating (generation-tagged, so the key cannot change under
  /// the claim), rewrites the value, and releases with a bumped generation
  /// so the owner's Retire re-reads the fresh value.
  bool UpdateValue(Key k, Value v) {
    const uint64_t n = words_.size();
    for (uint64_t i = 0; i < n; ++i) {
      for (;;) {
        uint64_t w = gpusim::LoadAcquire(&words_[i]);
        if (PhaseOf(w) == kUpdating) {
          std::this_thread::yield();
          continue;
        }
        if (PhaseOf(w) != kParked) break;
        if (gpusim::Load(&keys_[i]) != k) break;
        const uint64_t busy = MakeWord(GenOf(w), kUpdating);
        if (!gpusim::AtomicCasWord(&words_[i], w, busy)) continue;
        gpusim::StoreRacy(&values_[i], v);
        bool ok = gpusim::AtomicCasWord(&words_[i], busy,
                                        MakeWord(GenOf(w) + 1, kParked));
        DYCUCKOO_DCHECK(ok);
        (void)ok;
        return true;
      }
    }
    return false;
  }

  /// Host-side sweep of leftovers after a kernel launch: entries whose
  /// chain failed (parked, fail-buffered) or whose parked copy a DELETE
  /// claimed while the chain was failing.  Invokes `fn(key, value,
  /// claimed)` for each occupied slot and frees it.  Only called between
  /// launches, when no device thread is running.
  template <typename Fn>
  void HostSweepLeftovers(Fn&& fn) {
    for (uint64_t i = 0; i < words_.size(); ++i) {
      uint64_t w = words_[i].load(std::memory_order_relaxed);
      if (PhaseOf(w) == kFree) continue;
      DYCUCKOO_DCHECK(PhaseOf(w) == kParked || PhaseOf(w) == kClaimed);
      fn(keys_[i].load(std::memory_order_relaxed),
         values_[i].load(std::memory_order_relaxed), PhaseOf(w) == kClaimed);
      keys_[i].store(kEmptyKey, std::memory_order_relaxed);
      words_[i].store(MakeWord(GenOf(w), kFree), std::memory_order_relaxed);
      count_.fetch_sub(1, std::memory_order_relaxed);
    }
    DYCUCKOO_DCHECK(count_.load(std::memory_order_relaxed) == 0);
  }

  /// Host-side: drops everything (table Clear).
  void Clear() {
    HostSweepLeftovers([](Key, Value, bool) {});
  }

 private:
  // Low 3 bits: phase.  Upper 61 bits: per-slot generation, bumped at
  // every claim and every in-place update (ABA tag).
  enum Phase : uint64_t {
    kFree = 0,
    kSetup = 1,
    kParked = 2,
    kClaimed = 3,
    kUpdating = 4,
  };
  static constexpr uint64_t PhaseOf(uint64_t w) { return w & 7u; }
  static constexpr uint64_t GenOf(uint64_t w) { return w >> 3; }
  static constexpr uint64_t MakeWord(uint64_t gen, uint64_t phase) {
    return (gen << 3) | phase;
  }

  std::vector<std::atomic<uint64_t>> words_;
  std::vector<std::atomic<Key>> keys_;
  std::vector<std::atomic<Value>> values_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace dycuckoo

#endif  // DYCUCKOO_DYCUCKOO_HANDOFF_RING_H_
