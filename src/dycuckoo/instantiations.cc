// Explicit instantiations of the DynamicTable template for the two shipped
// key/value widths, keeping template code out of every client TU.

#include "dycuckoo/dynamic_table.h"

namespace dycuckoo {

template class DynamicTable<uint32_t, uint32_t>;
template class DynamicTable<uint64_t, uint64_t>;

}  // namespace dycuckoo
