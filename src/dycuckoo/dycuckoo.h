// Public umbrella header for the DyCuckoo library.
//
// Quickstart:
//
//   #include "dycuckoo/dycuckoo.h"
//
//   dycuckoo::DyCuckooOptions options;         // d = 4, theta in [0.30, 0.85]
//   std::unique_ptr<dycuckoo::DyCuckooMap> map;
//   DYCUCKOO_CHECK(dycuckoo::DyCuckooMap::Create(options, &map).ok());
//   map->BulkInsert(keys, values);             // batched, warp-parallel
//   map->BulkFind(queries, out_values, out_found);
//   map->BulkErase(stale_keys);
//
// The table resizes one subtable at a time to keep the filled factor inside
// [options.lower_bound, options.upper_bound]; see DESIGN.md for the paper
// mapping.

#ifndef DYCUCKOO_DYCUCKOO_DYCUCKOO_H_
#define DYCUCKOO_DYCUCKOO_DYCUCKOO_H_

#include "dycuckoo/dynamic_table.h"
#include "dycuckoo/options.h"
#include "dycuckoo/stats.h"

namespace dycuckoo {

/// 4-byte keys and values: 32-slot buckets, the paper's primary
/// configuration.
using DyCuckooMap = DynamicTable<uint32_t, uint32_t>;

/// 8-byte keys and values: 16-slot buckets (the paper's "larger KV"
/// variant, Section IV-A).
using DyCuckooMap64 = DynamicTable<uint64_t, uint64_t>;

// Compiled in instantiations.cc.
extern template class DynamicTable<uint32_t, uint32_t>;
extern template class DynamicTable<uint64_t, uint64_t>;

}  // namespace dycuckoo

#endif  // DYCUCKOO_DYCUCKOO_DYCUCKOO_H_
