// User-facing configuration for a DyCuckoo table.

#ifndef DYCUCKOO_DYCUCKOO_OPTIONS_H_
#define DYCUCKOO_DYCUCKOO_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace dycuckoo {

namespace gpusim {
class DeviceArena;
class Grid;
}  // namespace gpusim

/// \brief Options controlling a DyCuckoo table (paper Table III knobs).
///
/// The central tradeoff (paper Section IV-B): more subtables `d` means a
/// smaller unit of work per resize and a higher attainable filled-factor
/// lower bound (alpha < d/(d+1)), while FIND/DELETE stay at two lookups
/// thanks to the two-layer scheme.
struct DyCuckooOptions {
  /// Number of cuckoo subtables `d`.  Must be in [2, 16].  The paper fixes 4
  /// after the Figure 6 sensitivity study.
  int num_subtables = 4;

  /// Filled-factor lower bound `alpha`: dropping below it triggers a
  /// downsize of the largest subtable.  Must satisfy
  /// 0 < alpha < beta <= 1 and alpha < d/(d+1).
  double lower_bound = 0.30;

  /// Filled-factor upper bound `beta`: exceeding it (or an insertion
  /// failure) triggers an upsize of the smallest subtable.
  double upper_bound = 0.85;

  /// Initial total slot capacity hint; rounded so every subtable gets the
  /// same power-of-two bucket count.
  uint64_t initial_capacity = 64 * 1024;

  /// Seed from which all subtable hash functions and the layer-1 pair hash
  /// are derived.  Fixed seed => reproducible layout.
  uint64_t seed = 0x9D79C008C0FFEEULL;

  /// Eviction-chain bound: one insert may displace at most this many
  /// resident pairs before it is declared an insertion failure (which
  /// triggers an upsize and a retry).
  int max_eviction_chain = 64;

  /// Grow/shrink automatically to keep theta in [lower_bound, upper_bound].
  /// When false the table never resizes on its own (static mode, used for
  /// the paper's static comparison where capacity is preallocated).
  bool auto_resize = true;

  // --- Ablation switches (all default to the paper's design) -------------

  /// Two-layer hashing (Section V-A).  When false the table degrades to a
  /// plain d-table cuckoo: a key may live in any subtable, so FIND and
  /// DELETE probe up to d buckets instead of two.  Exists to reproduce the
  /// motivation experiment for the two-layer scheme.
  bool enable_two_layer = true;

  /// Voter coordination (Algorithm 1).  When false a warp's leader spins on
  /// its bucket lock until acquired (the "direct warp-centric approach" the
  /// paper argues against) instead of revoting a different leader.
  bool enable_voter = true;

  /// Theorem-1 balance guidance.  When false, insertion targets and
  /// eviction victims are chosen uniformly at random instead of
  /// free-space-weighted.
  bool enable_balance = true;

  /// Stash capacity in entries (0 disables).  The paper's stated future
  /// work: an insertion whose eviction chain exceeds the bound lands in a
  /// small overflow stash instead of forcing another upsizing round; FIND
  /// and DELETE probe the stash after the (<= 2) bucket probes, and each
  /// upsize drains the stash back into the subtables.  Keep it small
  /// (tens to a few hundred entries): the stash is scanned linearly by
  /// every probe while it is non-empty.
  uint64_t stash_capacity = 0;

  /// Capacity of the displaced-victim handoff ring, in entries.  Before an
  /// eviction chain overwrites a victim's slot it parks the displaced pair
  /// here so lock-free FIND/DELETE (buckets -> handoff -> stash) see every
  /// resident key at every instant of the chain.  At most one entry per
  /// in-flight chain is occupied, so warp width x active warps bounds the
  /// useful size; when the ring is momentarily full the chain resolves the
  /// incoming op via the stash / failure path instead (never dropping the
  /// victim).  Must be >= 1.
  uint64_t handoff_capacity = 256;

  // --- Test-only hooks (never enable in production) ----------------------

  /// Re-opens the eviction displacement window by overwriting the victim's
  /// slot *without* parking it first (the pre-fix behavior).  Exists so the
  /// linearizability checker can prove it detects the bug it guards
  /// against.
  bool unsafe_overwrite_before_park_for_test = false;

  /// Yields this many times after an eviction chain unlocks the victim's
  /// bucket and before it re-homes the victim, widening the displacement
  /// window so races are observable on fast hosts.
  int eviction_delay_spins_for_test = 0;

  /// Device memory arena; nullptr selects the process-global arena.
  gpusim::DeviceArena* arena = nullptr;

  /// Warp scheduler; nullptr selects the process-global grid.
  gpusim::Grid* grid = nullptr;

  /// Tag under which arena allocations are accounted.
  std::string memory_tag = "dycuckoo";

  /// Checks the constraints above.
  Status Validate() const;
};

}  // namespace dycuckoo

#endif  // DYCUCKOO_DYCUCKOO_OPTIONS_H_
