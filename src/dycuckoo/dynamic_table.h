// DyCuckoo: the dynamic two-layer cuckoo hash table (the paper's core).
//
// Components, mapped to the paper:
//  * d subtables of cache-line buckets (Section IV-A, subtable.h)
//  * layer-1 pair hashing bounding FIND/DELETE to two lookups (Section V-A,
//    pair_map.h)
//  * voter-coordinated warp insertion, Algorithm 1 (InsertWarp below)
//  * Theorem-1 balance-guided placement (ChooseTarget / ChooseVictim)
//  * single-subtable resizing: conflict-free upsize of the smallest table,
//    merge-downsize of the largest with residual reinsertion (Section IV-B/D)
//  * extensions beyond the paper: mixed-op batches (BulkExecute), snapshots
//    (Save/Load), an overflow stash for exhausted eviction chains (the
//    paper's stated future work), and ablation switches for the two-layer
//    scheme, the voter, and the balance policy (DyCuckooOptions)
//
// Threading model: one host thread drives the table (like a CUDA stream);
// each bulk operation launches a grid of warps that genuinely race on
// buckets.  Concurrent host-side calls on one table are not supported,
// mirroring the paper's batched execution model.

#ifndef DYCUCKOO_DYCUCKOO_DYNAMIC_TABLE_H_
#define DYCUCKOO_DYCUCKOO_DYNAMIC_TABLE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/status.h"
#include "dycuckoo/handoff_ring.h"
#include "dycuckoo/options.h"
#include "dycuckoo/pair_map.h"
#include "dycuckoo/stats.h"
#include "dycuckoo/subtable.h"
#include "gpusim/atomics.h"
#include "gpusim/device_arena.h"
#include "gpusim/fault_injector.h"
#include "gpusim/grid.h"
#include "gpusim/sim_counters.h"
#include "gpusim/warp.h"

namespace dycuckoo {

/// \brief Dynamic two-layer cuckoo hash table.
///
/// \tparam Key unsigned integral key; BucketTraits<Key>::kEmptyKey is
///         reserved. \tparam Value trivially copyable value word.
template <typename Key, typename Value>
class DynamicTable {
 public:
  using SubtableT = Subtable<Key, Value>;
  static constexpr int kSlots = SubtableT::kSlots;
  static constexpr Key kEmptyKey = SubtableT::kEmptyKey;

  /// Validates options and builds an empty table.
  static Status Create(const DyCuckooOptions& options,
                       std::unique_ptr<DynamicTable>* out) {
    DYCUCKOO_RETURN_NOT_OK(options.Validate());
    std::unique_ptr<DynamicTable> table(new DynamicTable(options));
    DYCUCKOO_RETURN_NOT_OK(table->Init());
    *out = std::move(table);
    return Status::OK();
  }

  ~DynamicTable() = default;
  DynamicTable(const DynamicTable&) = delete;
  DynamicTable& operator=(const DynamicTable&) = delete;

  // ---------------------------------------------------------------------
  // Batched operations (the paper's execution model).
  // ---------------------------------------------------------------------

  /// Upserts a batch: new keys are inserted, existing keys get their value
  /// overwritten.  With auto_resize the table grows on filled-factor
  /// violation or insertion failure; without it, leftover failures yield
  /// StatusCode::kInsertionFailure and `num_failed` (if given) is set.
  ///
  /// Parallel-batch semantics (shared with the paper's design): if a batch
  /// both re-inserts a resident key and triggers cuckoo evictions that move
  /// that same key, the in-flight displaced copy is invisible to the upsert
  /// probe and the key can end up stored twice (either value is returned by
  /// FIND; ERASE removes both).  Batches that contain the same key twice
  /// have racy last-writer semantics.  Callers needing strict upsert
  /// determinism should batch updates of resident keys separately from
  /// insertions of new keys — update-only batches perform no evictions.
  Status BulkInsert(std::span<const Key> keys, std::span<const Value> values,
                    uint64_t* num_failed = nullptr) {
    if (keys.size() != values.size()) {
      return Status::InvalidArgument("keys/values size mismatch");
    }
    if (num_failed != nullptr) *num_failed = 0;
    if (keys.empty()) return Status::OK();

    Status grow_failure = Status::OK();
    if (options_.auto_resize) {
      // Grow ahead of the batch so theta never exceeds beta mid-kernel;
      // this performs exactly the upsizes a reactive check would, without
      // paying for mass insertion failures first.  Failure-triggered
      // upsizing below remains as the backstop the paper describes.
      for (int guard = 0; guard < 64; ++guard) {
        uint64_t cap = capacity_slots();
        if (cap == 0) break;
        double projected =
            static_cast<double>(size() + keys.size()) / static_cast<double>(cap);
        if (projected <= options_.upper_bound) break;
        Status st = UpsizeInternal();
        if (st.IsOutOfMemory()) {
          // Degrade instead of aborting the whole batch: run it at the
          // current capacity and let per-key failures surface below.
          NoteDegradedBatch(&grow_failure, st);
          break;
        }
        DYCUCKOO_RETURN_NOT_OK(st);
      }
    }

    FailBuffer fail(keys.size());
    uint64_t invalid = InsertKernel(keys.data(), values.data(), keys.size(),
                                    /*exclude_table=*/-1,
                                    /*check_partner=*/true, &fail);

    int rounds = 0;
    while (fail.count() > 0 && options_.auto_resize) {
      if (++rounds > kMaxInsertRetryRounds) break;
      Status st = UpsizeInternal();
      if (!st.ok()) {
        if (st.IsOutOfMemory()) NoteDegradedBatch(&grow_failure, st);
        break;
      }
      FailBuffer next(fail.count());
      InsertKernel(fail.keys(), fail.values(), fail.count(),
                   /*exclude_table=*/-1, /*check_partner=*/true, &next);
      fail = std::move(next);
    }

    if (options_.auto_resize) DYCUCKOO_RETURN_NOT_OK(ResizeToBounds());

    if (invalid > 0) {
      return Status::InvalidArgument(
          "batch contains the reserved empty-key sentinel");
    }
    if (fail.count() > 0) {
      uint64_t batch_failed = AbsorbResidentFailures(fail, keys);
      if (num_failed != nullptr) *num_failed = batch_failed;
      if (batch_failed > 0) {
        if (!grow_failure.ok()) {
          return Status::OutOfMemory(
              "could not grow (" + grow_failure.message() + "); " +
              std::to_string(batch_failed) + " keys failed");
        }
        return Status::InsertionFailure("eviction bound exceeded for " +
                                        std::to_string(batch_failed) +
                                        " keys");
      }
    }
    return Status::OK();
  }

  /// Looks up a batch.  `values[i]` receives the value when `found[i] != 0`.
  /// Either output may be nullptr if not wanted.
  void BulkFind(std::span<const Key> keys, Value* values,
                uint8_t* found) const {
    if (keys.empty()) return;
    const Key* kp = keys.data();
    const uint64_t n = keys.size();
    grid_->LaunchWarps(gpusim::WarpsForItems(n), [&](uint64_t warp) {
      FindWarp(kp, n, warp, values, found);
    });
  }

  /// Deletes a batch; `num_erased` (optional) receives the number of keys
  /// actually removed.  Triggers downsizing when theta falls below alpha.
  Status BulkErase(std::span<const Key> keys, uint64_t* num_erased = nullptr) {
    uint64_t erased_total = 0;
    if (!keys.empty()) {
      const Key* kp = keys.data();
      const uint64_t n = keys.size();
      std::atomic<uint64_t> erased{0};
      grid_->LaunchWarps(gpusim::WarpsForItems(n), [&](uint64_t warp) {
        EraseWarp(kp, n, warp, &erased);
      });
      erased_total = erased.load(std::memory_order_relaxed);
    }
    if (num_erased != nullptr) *num_erased = erased_total;
    if (options_.auto_resize) DYCUCKOO_RETURN_NOT_OK(ResizeToBounds());
    return Status::OK();
  }

  /// One operation of a mixed batch (see BulkExecute).
  struct MixedOp {
    enum class Type : uint8_t { kInsert, kFind, kErase };
    Type type = Type::kFind;
    Key key{};
    Value value{};  ///< insert input; find output
    uint8_t hit = 0;  ///< out: find located / erase removed the key
  };

  /// Executes a batch mixing insert, find and erase in one grid launch.
  ///
  /// The paper notes mixed batches have ambiguous semantics under parallel
  /// execution; the guarantee here is per-op correctness with *no ordering*
  /// between ops of the batch (a find may or may not observe an insert of
  /// the same batch).  Results are written back into `ops`.
  Status BulkExecute(std::span<MixedOp> ops) {
    if (ops.empty()) return Status::OK();
    Status grow_failure = Status::OK();
    if (options_.auto_resize) {
      uint64_t inserts = 0;
      for (const MixedOp& op : ops) {
        if (op.type == MixedOp::Type::kInsert) ++inserts;
      }
      for (int guard = 0; guard < 64; ++guard) {
        uint64_t cap = capacity_slots();
        if (cap == 0) break;
        double projected = static_cast<double>(size() + inserts) /
                           static_cast<double>(cap);
        if (projected <= options_.upper_bound) break;
        Status st = UpsizeInternal();
        if (st.IsOutOfMemory()) {
          NoteDegradedBatch(&grow_failure, st);
          break;
        }
        DYCUCKOO_RETURN_NOT_OK(st);
      }
    }
    FailBuffer fail(ops.size());
    std::atomic<uint64_t> invalid{0};
    MixedOp* op_data = ops.data();
    const uint64_t n = ops.size();
    grid_->LaunchWarps(gpusim::WarpsForItems(n), [&](uint64_t warp) {
      MixedWarp(op_data, n, warp, &fail, &invalid);
    });
    SweepHandoffLeftovers(&fail);

    int rounds = 0;
    while (fail.count() > 0 && options_.auto_resize) {
      if (++rounds > kMaxInsertRetryRounds) break;
      Status st = UpsizeInternal();
      if (!st.ok()) {
        if (st.IsOutOfMemory()) {
          NoteDegradedBatch(&grow_failure, st);
          break;
        }
        return st;
      }
      FailBuffer next(fail.count());
      InsertKernel(fail.keys(), fail.values(), fail.count(),
                   /*exclude_table=*/-1, /*check_partner=*/true, &next);
      fail = std::move(next);
    }
    if (options_.auto_resize) DYCUCKOO_RETURN_NOT_OK(ResizeToBounds());
    if (invalid.load(kRelaxed) > 0) {
      return Status::InvalidArgument(
          "batch contains the reserved empty-key sentinel");
    }
    if (fail.count() > 0) {
      std::vector<Key> batch_keys;
      for (const MixedOp& op : ops) {
        if (op.type == MixedOp::Type::kInsert) batch_keys.push_back(op.key);
      }
      uint64_t batch_failed = AbsorbResidentFailures(fail, batch_keys);
      if (batch_failed > 0) {
        if (!grow_failure.ok()) {
          return Status::OutOfMemory(
              "could not grow (" + grow_failure.message() + "); " +
              std::to_string(batch_failed) + " keys failed");
        }
        return Status::InsertionFailure("eviction bound exceeded for " +
                                        std::to_string(batch_failed) +
                                        " keys");
      }
    }
    return Status::OK();
  }

  // ---------------------------------------------------------------------
  // Single-op conveniences (forward to 1-element batches).
  // ---------------------------------------------------------------------

  Status Insert(Key key, Value value) {
    return BulkInsert(std::span<const Key>(&key, 1),
                      std::span<const Value>(&value, 1));
  }

  /// True iff present; on hit writes `*value` when non-null.
  bool Find(Key key, Value* value = nullptr) const {
    Value v{};
    uint8_t hit = 0;
    BulkFind(std::span<const Key>(&key, 1), &v, &hit);
    if (hit && value != nullptr) *value = v;
    return hit != 0;
  }

  /// True iff the key existed and was removed.
  bool Erase(Key key) {
    uint64_t erased = 0;
    Status st = BulkErase(std::span<const Key>(&key, 1), &erased);
    if (!st.ok()) {
      // The erase itself cannot fail — only the post-erase auto-resize
      // maintenance can.  The key is gone either way; surface the
      // maintenance failure in release builds instead of swallowing it.
      DYCUCKOO_LOG(Warning) << "Erase(" << key
                            << "): post-erase maintenance failed: "
                            << st.ToString();
    }
    return erased > 0;
  }

  // ---------------------------------------------------------------------
  // Serialization.
  // ---------------------------------------------------------------------

  /// Writes a version-2 snapshot: magic, format version, key/value widths,
  /// entry count, raw pairs, and a CRC-32 trailer over everything after the
  /// magic.  The layout is rebuilt on Load, so options may differ across
  /// the round-trip.
  Status Save(std::ostream& os) const {
    uint64_t header[5] = {kSnapshotMagicV2, kSnapshotFormatVersion, sizeof(Key),
                          sizeof(Value), size()};
    os.write(reinterpret_cast<const char*>(header), sizeof(header));
    uint64_t bytes_written = 0;
    uint32_t crc = Crc32Update(0, &header[1], 4 * sizeof(uint64_t));
    if (os.good()) {
      bytes_written += sizeof(header);
      // Abort the walk on the first failed write instead of streaming the
      // rest of the table into a dead stream.
      ForEachUntil([&](Key k, Value v) {
        os.write(reinterpret_cast<const char*>(&k), sizeof(Key));
        os.write(reinterpret_cast<const char*>(&v), sizeof(Value));
        if (!os.good()) return false;
        bytes_written += sizeof(Key) + sizeof(Value);
        crc = Crc32Update(crc, &k, sizeof(Key));
        crc = Crc32Update(crc, &v, sizeof(Value));
        return true;
      });
    }
    if (!os.good()) {
      return Status::Internal("snapshot write failed after " +
                              std::to_string(bytes_written) + " bytes");
    }
    os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    if (!os.good()) {
      return Status::Internal("snapshot write failed after " +
                              std::to_string(bytes_written) + " bytes");
    }
    return Status::OK();
  }

  /// Rebuilds a table from a Save() snapshot under the given options.
  /// Verifies the CRC-32 trailer; legacy (pre-versioning) snapshots are
  /// still readable behind their distinct magic.
  static Status Load(std::istream& is, const DyCuckooOptions& options,
                     std::unique_ptr<DynamicTable>* out) {
    uint64_t magic = 0;
    is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    if (!is.good()) return Status::InvalidArgument("not a DyCuckoo snapshot");
    if (magic == kSnapshotMagic) return LoadLegacy(is, options, out);
    if (magic != kSnapshotMagicV2) {
      return Status::InvalidArgument("not a DyCuckoo snapshot");
    }
    uint64_t header[4] = {0, 0, 0, 0};
    is.read(reinterpret_cast<char*>(header), sizeof(header));
    if (!is.good()) {
      return Status::DataLoss("snapshot corrupt: truncated header");
    }
    if (header[0] != kSnapshotFormatVersion) {
      return Status::InvalidArgument("unsupported snapshot format version " +
                                     std::to_string(header[0]));
    }
    if (header[1] != sizeof(Key) || header[2] != sizeof(Value)) {
      return Status::InvalidArgument("snapshot key/value width mismatch");
    }
    uint32_t crc = Crc32Update(0, header, sizeof(header));
    // Build into a local table and publish only on success: a corrupt
    // stream must never hand the caller a partially-populated table.
    std::unique_ptr<DynamicTable> table;
    DYCUCKOO_RETURN_NOT_OK(Create(options, &table));
    const uint64_t count = header[3];
    if (table->options_.auto_resize) {
      DYCUCKOO_RETURN_NOT_OK(table->Reserve(count));
    }
    constexpr uint64_t kChunk = 1 << 16;
    std::vector<Key> keys(std::min(count, kChunk));
    std::vector<Value> values(keys.size());
    uint64_t remaining = count;
    while (remaining > 0) {
      uint64_t n = std::min(remaining, kChunk);
      for (uint64_t i = 0; i < n; ++i) {
        is.read(reinterpret_cast<char*>(&keys[i]), sizeof(Key));
        is.read(reinterpret_cast<char*>(&values[i]), sizeof(Value));
      }
      if (!is.good()) {
        return Status::DataLoss("snapshot corrupt: truncated payload");
      }
      for (uint64_t i = 0; i < n; ++i) {
        crc = Crc32Update(crc, &keys[i], sizeof(Key));
        crc = Crc32Update(crc, &values[i], sizeof(Value));
      }
      DYCUCKOO_RETURN_NOT_OK(table->BulkInsert(
          std::span<const Key>(keys.data(), n),
          std::span<const Value>(values.data(), n)));
      remaining -= n;
    }
    uint32_t stored_crc = 0;
    is.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc));
    if (!is.good()) {
      return Status::DataLoss("snapshot corrupt: missing CRC trailer");
    }
    if (stored_crc != crc) {
      return Status::DataLoss("snapshot corrupt: CRC mismatch");
    }
    *out = std::move(table);
    return Status::OK();
  }

  // ---------------------------------------------------------------------
  // Whole-table operations.
  // ---------------------------------------------------------------------

  /// Removes every entry.  Capacity is kept (call ResizeToBounds or rely on
  /// the next batch to shrink it).
  void Clear() {
    for (auto& t : tables_) {
      grid_->LaunchWarps(t.num_buckets(), [&](uint64_t b) {
        for (int s = 0; s < kSlots; ++s) {
          t.StoreKey(b, s, kEmptyKey);
        }
        gpusim::CountBucketWrite();
      });
      t.SetSize(0);
    }
    for (size_t i = 0; i < stash_keys_.size(); ++i) {
      StashStoreKey(i, kEmptyKey);
    }
    for (auto& s : stash_state_) s.store(kStashVacant, std::memory_order_relaxed);
    stash_size_.store(0, std::memory_order_relaxed);
    ring_.Clear();
  }

  /// Visits every stored pair on the host thread (no particular order).
  /// The callback must not mutate the table.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    ForEachUntil([&fn](Key k, Value v) {
      fn(k, v);
      return true;
    });
  }

  /// Like ForEach, but the callback returns false to stop the walk early
  /// (e.g. Save() aborting on the first failed stream write).
  template <typename Fn>
  void ForEachUntil(Fn&& fn) const {
    for (const auto& t : tables_) {
      for (uint64_t b = 0; b < t.num_buckets(); ++b) {
        for (int s = 0; s < kSlots; ++s) {
          Key k = t.KeyAt(b, s);
          if (k != kEmptyKey && !fn(k, t.ValueAt(b, s))) return;
        }
      }
    }
    for (size_t i = 0; i < stash_keys_.size(); ++i) {
      Key k = stash_keys_[i].load(std::memory_order_relaxed);
      if (k != kEmptyKey &&
          !fn(k, stash_values_[i].load(std::memory_order_relaxed))) {
        return;
      }
    }
  }

  /// Grows until at least `entries` fit under the upper bound (avoids
  /// resize work during a known-size ingest).
  Status Reserve(uint64_t entries) {
    for (int guard = 0; guard < 64; ++guard) {
      uint64_t cap = capacity_slots();
      if (static_cast<double>(entries) <=
          options_.upper_bound * static_cast<double>(cap)) {
        return Status::OK();
      }
      DYCUCKOO_RETURN_NOT_OK(UpsizeInternal());
    }
    return Status::CapacityExceeded("Reserve could not reach target");
  }

  // ---------------------------------------------------------------------
  // Resizing (paper Section IV-B/D).
  // ---------------------------------------------------------------------

  /// Repeatedly resizes one subtable at a time until theta is in
  /// [lower_bound, upper_bound] (or no further resize is possible).
  ///
  /// Best-effort: resizing is maintenance, so running out of device memory
  /// (or a downsize rolling back) leaves the table as-is and returns OK —
  /// the condition is recorded in stats and retried on the next trigger.
  Status ResizeToBounds() {
    for (int iter = 0; iter < kMaxResizeIterations; ++iter) {
      double theta = filled_factor();
      if (theta > options_.upper_bound) {
        Status st = UpsizeInternal();
        if (st.IsOutOfMemory()) {
          stats_.resize_oom_skips.fetch_add(1, kRelaxed);
          return Status::OK();
        }
        DYCUCKOO_RETURN_NOT_OK(st);
      } else if (theta < options_.lower_bound && CanDownsize()) {
        bool progressed = false;
        Status st = DownsizeInternal(&progressed);
        if (st.IsOutOfMemory()) {
          stats_.resize_oom_skips.fetch_add(1, kRelaxed);
          return Status::OK();
        }
        DYCUCKOO_RETURN_NOT_OK(st);
        if (!progressed) return Status::OK();  // rolled back; don't loop
      } else {
        return Status::OK();
      }
    }
    return Status::OK();
  }

  /// Doubles the smallest subtable with the conflict-free split kernel.
  Status Upsize() { return UpsizeInternal(); }

  /// Halves the largest subtable, reinserting overflow into the others.
  /// Returns OutOfMemory if the merged subtable cannot be allocated, and OK
  /// if the merge rolled back (check stats().downsize_rollbacks); in both
  /// cases the table is unchanged and no key is lost.
  Status Downsize() {
    if (!CanDownsize()) {
      return Status::InvalidArgument("table is already at minimum size");
    }
    bool progressed = false;
    return DownsizeInternal(&progressed);
  }

  // ---------------------------------------------------------------------
  // Introspection.
  // ---------------------------------------------------------------------

  const DyCuckooOptions& options() const { return options_; }
  int num_subtables() const { return static_cast<int>(tables_.size()); }

  /// Total stored entries (sum of m_i, plus any stashed overflow).
  uint64_t size() const {
    uint64_t total = stash_size_.load(std::memory_order_relaxed);
    for (const auto& t : tables_) total += t.size();
    return total;
  }

  /// Entries currently parked in the overflow stash.
  uint64_t stash_size() const {
    return stash_size_.load(std::memory_order_relaxed);
  }

  /// Displaced pairs currently parked in the eviction handoff ring.
  /// Non-zero only while an insert launch is in flight (the post-launch
  /// sweep re-homes leftovers), so at rest this returns 0.
  uint64_t handoff_size() const { return ring_.count(); }

  /// Total slot capacity (sum of n_i).
  uint64_t capacity_slots() const {
    uint64_t total = 0;
    for (const auto& t : tables_) total += t.num_slots();
    return total;
  }

  /// theta = size / capacity.
  double filled_factor() const {
    uint64_t cap = capacity_slots();
    return cap == 0 ? 0.0 : static_cast<double>(size()) / cap;
  }

  uint64_t subtable_size(int i) const { return tables_[i].size(); }
  uint64_t subtable_slots(int i) const { return tables_[i].num_slots(); }
  uint64_t subtable_buckets(int i) const { return tables_[i].num_buckets(); }
  double subtable_filled_factor(int i) const {
    return tables_[i].filled_factor();
  }

  /// Device bytes occupied by all subtables (and the stash, if any).
  uint64_t memory_bytes() const {
    uint64_t total =
        stash_keys_.size() * (sizeof(Key) + sizeof(Value) + sizeof(uint8_t));
    for (const auto& t : tables_) total += t.memory_bytes();
    return total;
  }

  const TableStats& stats() const { return stats_; }

  /// All stored pairs (test/debug; not safe against concurrent kernels).
  std::vector<std::pair<Key, Value>> Dump() const {
    std::vector<std::pair<Key, Value>> out;
    out.reserve(size());
    for (const auto& t : tables_) {
      for (uint64_t b = 0; b < t.num_buckets(); ++b) {
        for (int s = 0; s < kSlots; ++s) {
          Key k = t.KeyAt(b, s);
          if (k != kEmptyKey) out.emplace_back(k, t.ValueAt(b, s));
        }
      }
    }
    for (size_t i = 0; i < stash_keys_.size(); ++i) {
      Key k = stash_keys_[i].load(std::memory_order_relaxed);
      if (k != kEmptyKey) {
        out.emplace_back(k, stash_values_[i].load(std::memory_order_relaxed));
      }
    }
    return out;
  }

  /// Structural invariant checker used by tests: size-ladder property,
  /// size-counter consistency, placement consistency (every key sits in a
  /// bucket of a subtable of its layer-1 pair), and global key uniqueness.
  Status Validate() const {
    uint64_t min_b = UINT64_MAX, max_b = 0;
    for (const auto& t : tables_) {
      min_b = std::min(min_b, t.num_buckets());
      max_b = std::max(max_b, t.num_buckets());
    }
    if (max_b > 2 * min_b) {
      return Status::Internal("subtable ladder violated: max " +
                              std::to_string(max_b) + " buckets vs min " +
                              std::to_string(min_b));
    }
    std::vector<Key> seen;
    seen.reserve(size());
    for (int i = 0; i < num_subtables(); ++i) {
      const auto& t = tables_[i];
      uint64_t occupied = 0;
      for (uint64_t b = 0; b < t.num_buckets(); ++b) {
        for (int s = 0; s < kSlots; ++s) {
          Key k = t.KeyAt(b, s);
          if (t.TagAt(b, s) != SubtableT::ExpectedTag(k, t.ValueAt(b, s))) {
            return Status::DataLoss("integrity tag mismatch in subtable " +
                                    std::to_string(i) + " bucket " +
                                    std::to_string(b) + " slot " +
                                    std::to_string(s));
          }
          if (k == kEmptyKey) continue;
          ++occupied;
          if (t.BucketIndex(k) != b) {
            return Status::Internal("key in wrong bucket");
          }
          if (options_.enable_two_layer &&
              !pair_map_.PairFor(static_cast<uint64_t>(k)).Contains(i)) {
            return Status::Internal("key outside its layer-1 pair");
          }
          seen.push_back(k);
        }
      }
      if (occupied != t.size()) {
        return Status::Internal(
            "size counter mismatch in subtable " + std::to_string(i) + ": " +
            std::to_string(t.size()) + " vs " + std::to_string(occupied));
      }
    }
    uint64_t stash_count = 0;
    for (size_t i = 0; i < stash_keys_.size(); ++i) {
      Key k = stash_keys_[i].load(std::memory_order_relaxed);
      uint32_t state = stash_state_[i].load(std::memory_order_relaxed);
      if (stash_tags_[i].load(std::memory_order_relaxed) !=
          SubtableT::ExpectedTag(
              k, stash_values_[i].load(std::memory_order_relaxed))) {
        return Status::DataLoss("integrity tag mismatch in stash slot " +
                                std::to_string(i));
      }
      if (k == kEmptyKey) {
        if (state != kStashVacant) {
          return Status::Internal("vacant stash slot with non-vacant state");
        }
        continue;
      }
      if (state != kStashLive) {
        return Status::Internal("occupied stash slot not in live state");
      }
      ++stash_count;
      seen.push_back(k);
    }
    if (stash_count != stash_size_.load(std::memory_order_relaxed)) {
      return Status::Internal("stash size counter mismatch");
    }
    // Every launch sweeps chain leftovers before returning, so a table at
    // rest must have no parked victims.
    if (ring_.count() != 0) {
      return Status::Internal("handoff ring not empty at rest: " +
                              std::to_string(ring_.count()) + " entries");
    }
    std::sort(seen.begin(), seen.end());
    if (std::adjacent_find(seen.begin(), seen.end()) != seen.end()) {
      return Status::Internal("duplicate key stored");
    }
    return Status::OK();
  }

  // ---------------------------------------------------------------------
  // Online invariant scrubbing (serving-layer self-checking).
  //
  // Unlike Validate() — a read-only test oracle that fails fast — the
  // scrubber is an incremental *repair* pass designed to run between
  // batches in production: it walks a bounded slice of buckets per call,
  // re-homes any pair stored outside its probe set (so FIND's <= 2-bucket
  // guarantee holds for every key), re-synchronises the stash occupancy
  // counter, and reports whether theta currently honours [alpha, beta].
  // Must be called from the host thread with no kernels in flight (the
  // same threading contract as every other host-side entry point).
  // ---------------------------------------------------------------------

  /// What one scrub slice (or full pass) observed and fixed.  Marked
  /// [[nodiscard]]: a dropped report hides corruption_unrepairable.
  struct [[nodiscard]] ScrubReport {
    uint64_t buckets_scanned = 0;
    uint64_t misplaced_found = 0;    ///< pairs stored outside their probe set
    uint64_t misplaced_repaired = 0; ///< of those, re-homed (rest stashed)
    uint64_t stash_fixes = 0;        ///< stash size counter re-synchronised
    uint64_t duplicates_collapsed = 0; ///< shadowed extra copies removed
    uint64_t corrupted_slots = 0;    ///< integrity-tag mismatches found
    /// Of the corrupted slots, those whose stored key itself is suspect
    /// (empty slot, or a key outside the slot's probe set): the original
    /// key cannot be recovered from device memory alone, so only a full
    /// repair from durable state can make the shard whole again.
    uint64_t corrupted_unattributable = 0;
    /// Keys of corrupted-but-attributable slots, unpublished by the scrub;
    /// the serving layer re-derives their authoritative value from the
    /// checkpoint + WAL and re-inserts (see TableServer::ScrubSlice).
    std::vector<Key> corrupted_keys;
    bool filled_factor_ok = true;    ///< theta within [alpha, beta]

    void MergeFrom(const ScrubReport& o) {
      buckets_scanned += o.buckets_scanned;
      misplaced_found += o.misplaced_found;
      misplaced_repaired += o.misplaced_repaired;
      stash_fixes += o.stash_fixes;
      duplicates_collapsed += o.duplicates_collapsed;
      corrupted_slots += o.corrupted_slots;
      corrupted_unattributable += o.corrupted_unattributable;
      corrupted_keys.insert(corrupted_keys.end(), o.corrupted_keys.begin(),
                            o.corrupted_keys.end());
      filled_factor_ok = filled_factor_ok && o.filled_factor_ok;
    }
  };

  /// Scrubs up to `max_buckets` buckets of subtable `table_idx` starting at
  /// `begin_bucket`.  A stored pair violates placement when it sits in a
  /// bucket other than BucketIndex(key) or (two-layer mode) in a subtable
  /// outside its layer-1 pair; violators are removed under the bucket lock
  /// and re-inserted through the normal path (landing in their correct
  /// bucket, or the stash as a last resort — never dropped).
  ScrubReport ScrubBuckets(int table_idx, uint64_t begin_bucket,
                           uint64_t max_buckets) {
    ScrubReport report;
    SubtableT& t = tables_[table_idx];
    const uint64_t end =
        std::min(t.num_buckets(), begin_bucket + max_buckets);
    std::vector<Key> evicted_keys;
    std::vector<Value> evicted_values;
    for (uint64_t b = begin_bucket; b < end; ++b) {
      ++report.buckets_scanned;
      // No kernels are in flight, so only injected TryLock failures (capped
      // below certainty) contend here; the spin always terminates.
      while (!t.lock(b).TryLock()) {
      }
      gpusim::CountBucketRead();
      for (int s = 0; s < kSlots; ++s) {
        Key k = t.KeyAt(b, s);
        // Integrity check FIRST: a slot whose tag disagrees with its
        // contents holds flipped bits, and none of its words can be
        // trusted.  Running the structural checks on it would "repair" a
        // corrupted key into a legitimate-looking home — laundering the
        // corruption instead of catching it.
        if (t.TagAt(b, s) != SubtableT::ExpectedTag(k, t.ValueAt(b, s))) {
          ++report.corrupted_slots;
          // The stored key is trustworthy only if it is non-empty AND the
          // struck slot is inside its probe set (a flipped key bit almost
          // surely hashes elsewhere).  Then the flip was in the value (or
          // the tag itself) and durability can re-derive the truth by key.
          bool attributable =
              k != kEmptyKey && t.BucketIndex(k) == b &&
              (!options_.enable_two_layer ||
               pair_map_.PairFor(static_cast<uint64_t>(k)).Contains(table_idx));
          if (attributable) {
            report.corrupted_keys.push_back(k);
          } else {
            ++report.corrupted_unattributable;
          }
          // Unpublish: a corrupted pair must never be served again.  The
          // delta-maintained StoreKey plus a quiescent resync restores the
          // tag invariant for the now-empty slot.
          if (k != kEmptyKey) {
            t.StoreKey(b, s, kEmptyKey);
            t.AddSize(-1);
          }
          t.ResyncTag(b, s);
          gpusim::CountBucketWrite();
          continue;
        }
        if (k == kEmptyKey) continue;
        bool wrong_bucket = t.BucketIndex(k) != b;
        bool wrong_table =
            options_.enable_two_layer &&
            !pair_map_.PairFor(static_cast<uint64_t>(k)).Contains(table_idx);
        if (!wrong_bucket && !wrong_table) {
          // Correctly placed — but a second, equally valid copy may exist
          // in an earlier-probed candidate bucket (a duplicate born from a
          // racing eviction chain).  FIND stops at the first hit, so the
          // earlier copy is the live one; this shadowed copy is removed.
          if (ShadowedByEarlierCandidate(k, table_idx)) {
            t.StoreKey(b, s, kEmptyKey);
            gpusim::CountBucketWrite();
            t.AddSize(-1);
            ++report.duplicates_collapsed;
          }
          continue;
        }
        ++report.misplaced_found;
        evicted_keys.push_back(k);
        evicted_values.push_back(t.ValueAt(b, s));
        t.StoreKey(b, s, kEmptyKey);
        gpusim::CountBucketWrite();
        t.AddSize(-1);
      }
      t.lock(b).Unlock();
    }
    if (!evicted_keys.empty()) {
      // Partner-checked reinsertion: if a correct copy already exists the
      // misplaced one was a duplicate and the reinsert collapses into an
      // update, removing the duplicate for good.
      FailBuffer fail(evicted_keys.size());
      InsertKernel(evicted_keys.data(), evicted_values.data(),
                   evicted_keys.size(), /*exclude_table=*/-1,
                   /*check_partner=*/true, &fail);
      report.misplaced_repaired = evicted_keys.size() - fail.count();
      for (uint64_t i = 0; i < fail.count(); ++i) {
        ForceStash(fail.keys()[i], fail.values()[i]);
        stats_.recovery_spills.fetch_add(1, kRelaxed);
      }
    }
    // Below-alpha is only actionable when a downsize is still possible; a
    // near-empty minimum-size table is healthy, not in violation.
    double theta = filled_factor();
    report.filled_factor_ok =
        theta <= options_.upper_bound &&
        (theta >= options_.lower_bound || !CanDownsize());
    stats_.scrub_buckets_scanned.fetch_add(report.buckets_scanned, kRelaxed);
    stats_.scrub_misplaced_found.fetch_add(report.misplaced_found, kRelaxed);
    stats_.scrub_misplaced_repaired.fetch_add(report.misplaced_repaired,
                                              kRelaxed);
    if (report.duplicates_collapsed) {
      stats_.scrub_duplicates_collapsed.fetch_add(report.duplicates_collapsed,
                                                  kRelaxed);
    }
    if (report.corrupted_slots) {
      stats_.scrub_corrupted_slots.fetch_add(report.corrupted_slots, kRelaxed);
      DYCUCKOO_LOG(Warning) << "scrub: " << report.corrupted_slots
                            << " corrupted slot(s) in subtable " << table_idx
                            << " (" << report.corrupted_unattributable
                            << " unattributable)";
    }
    return report;
  }

  /// True when key `k` also resides in a candidate bucket that FIND probes
  /// *before* subtable `table_idx` — i.e. the copy in `table_idx` can never
  /// be returned by a lookup and is safe to collapse.
  bool ShadowedByEarlierCandidate(Key k, int table_idx) const {
    int candidates[16];
    int n_cand = CandidateTables(k, candidates);
    for (int c = 0; c < n_cand; ++c) {
      if (candidates[c] == table_idx) return false;
      const SubtableT& t = tables_[candidates[c]];
      uint64_t loc = t.BucketIndex(k);
      gpusim::CountBucketRead();
      Key snap[kSlots];
      t.SnapshotKeys(loc, snap);
      for (int s = 0; s < kSlots; ++s) {
        if (snap[s] == k) return true;
      }
    }
    return false;
  }

  /// Re-counts stash occupancy against the stash_size_ counter and repairs
  /// the counter on mismatch (a mismatch indicates a lost update; the slots
  /// themselves are the ground truth).
  void ScrubStash(ScrubReport* report) {
    // Integrity check first, mirroring ScrubBuckets: a mismatched stash
    // slot is unpublished before any structural repair can launder it.
    // The stash has no placement invariant to cross-check the key against,
    // so even a non-empty key is only *probably* intact — the durability
    // point-lookup downstream is the arbiter (an absent key escalates to a
    // full-shard repair; see docs/robustness.md for the residual risk).
    for (size_t i = 0; i < stash_keys_.size(); ++i) {
      Key k = stash_keys_[i].load(std::memory_order_relaxed);
      Value v = stash_values_[i].load(std::memory_order_relaxed);
      if (stash_tags_[i].load(std::memory_order_relaxed) ==
          SubtableT::ExpectedTag(k, v)) {
        continue;
      }
      ++report->corrupted_slots;
      if (k != kEmptyKey) {
        report->corrupted_keys.push_back(k);
        StashStoreKey(i, kEmptyKey);
        stash_state_[i].store(kStashVacant, std::memory_order_relaxed);
        stash_size_.fetch_sub(1, kRelaxed);
      } else {
        ++report->corrupted_unattributable;
      }
      // dylint:allow(tag-discipline, "quiescent repair: stash scrub runs host-side with no kernels in flight, resealing the just-unpublished slot")
      stash_tags_[i].store(
          SubtableT::ExpectedTag(
              stash_keys_[i].load(std::memory_order_relaxed),
              stash_values_[i].load(std::memory_order_relaxed)),
          std::memory_order_relaxed);
      stats_.scrub_corrupted_slots.fetch_add(1, kRelaxed);
    }
    // A stash entry whose key also lives in a candidate bucket is shadowed
    // (FIND probes buckets before the stash) — collapse it.
    for (size_t i = 0; i < stash_keys_.size(); ++i) {
      Key k = stash_keys_[i].load(std::memory_order_relaxed);
      if (k == kEmptyKey) continue;
      if (ShadowedByEarlierCandidate(k, /*table_idx=*/-1)) {
        StashStoreKey(i, kEmptyKey);
        stash_state_[i].store(kStashVacant, std::memory_order_relaxed);
        stash_size_.fetch_sub(1, kRelaxed);
        ++report->duplicates_collapsed;
        stats_.scrub_duplicates_collapsed.fetch_add(1, kRelaxed);
      }
    }
    uint64_t occupied = 0;
    for (size_t i = 0; i < stash_keys_.size(); ++i) {
      bool live = stash_keys_[i].load(std::memory_order_relaxed) != kEmptyKey;
      if (live) ++occupied;
      // Keys are the ground truth; re-sync the writer-coordination state
      // with them (a crashed publish could leave a stale claim behind).
      stash_state_[i].store(live ? kStashLive : kStashVacant,
                            std::memory_order_relaxed);
    }
    uint64_t counted = stash_size_.load(std::memory_order_relaxed);
    if (counted != occupied) {
      stash_size_.store(occupied, std::memory_order_relaxed);
      ++report->stash_fixes;
      stats_.scrub_stash_fixes.fetch_add(1, kRelaxed);
      DYCUCKOO_LOG(Warning) << "scrub: stash counter " << counted
                            << " re-synchronised to occupancy " << occupied;
    }
  }

  /// One full scrub pass: every bucket of every subtable plus the stash.
  ScrubReport ScrubAll() {
    ScrubReport total;
    for (int i = 0; i < num_subtables(); ++i) {
      total.MergeFrom(ScrubBuckets(i, 0, tables_[i].num_buckets()));
    }
    ScrubStash(&total);
    MarkScrubPass();
    return total;
  }

  /// Records a completed full scrub sweep in stats (incremental scrubbers
  /// call this when their cursor wraps; ScrubAll calls it itself).
  void MarkScrubPass() { stats_.scrub_passes.fetch_add(1, kRelaxed); }

  /// Re-publishes a pair whose slot the scrubber unpublished as corrupted,
  /// using the authoritative value the serving layer re-derived from the
  /// checkpoint + WAL.  Partner-checked, so if some copy of the key
  /// survived elsewhere the repair collapses into an update.  Host-side,
  /// no kernels in flight.
  void RepairCorruptedPair(Key key, Value value) {
    FailBuffer fail(1);
    InsertKernel(&key, &value, 1, /*exclude_table=*/-1,
                 /*check_partner=*/true, &fail);
    for (uint64_t i = 0; i < fail.count(); ++i) {
      ForceStash(fail.keys()[i], fail.values()[i]);
      stats_.recovery_spills.fetch_add(1, kRelaxed);
    }
    stats_.scrub_repaired_from_wal.fetch_add(1, kRelaxed);
  }

  /// Records corruption that durable state could not resolve (the caller
  /// is expected to degrade the shard; see TableServer::ScrubSlice).
  void NoteUnrepairableCorruption(uint64_t n) {
    if (n) stats_.scrub_unrepairable.fetch_add(n, kRelaxed);
  }

  /// Looks up one key in a raw Save() image without rebuilding a table —
  /// the targeted-repair read path (checkpoint side of the point lookup).
  /// Returns false when the image is not a well-formed, CRC-clean v2
  /// snapshot for these Key/Value widths; otherwise true, with `*found`
  /// and (on a hit) `*value` set.
  static bool SnapshotFindKey(const char* data, size_t len, Key key,
                              Value* value, bool* found) {
    *found = false;
    constexpr size_t kHeaderBytes = 5 * sizeof(uint64_t);
    if (data == nullptr || len < kHeaderBytes + sizeof(uint32_t)) return false;
    uint64_t header[5];
    std::memcpy(header, data, kHeaderBytes);
    if (header[0] != kSnapshotMagicV2 ||
        header[1] != kSnapshotFormatVersion || header[2] != sizeof(Key) ||
        header[3] != sizeof(Value)) {
      return false;
    }
    const uint64_t count = header[4];
    const size_t pair_bytes = sizeof(Key) + sizeof(Value);
    const size_t payload = len - kHeaderBytes - sizeof(uint32_t);
    if (payload % pair_bytes != 0 || payload / pair_bytes != count) {
      return false;
    }
    uint32_t crc =
        Crc32Update(0, data + sizeof(uint64_t), 4 * sizeof(uint64_t));
    crc = Crc32Update(crc, data + kHeaderBytes, payload);
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, data + kHeaderBytes + payload,
                sizeof(stored_crc));
    if (stored_crc != crc) return false;
    const char* p = data + kHeaderBytes;
    for (uint64_t i = 0; i < count; ++i, p += pair_bytes) {
      Key k{};
      std::memcpy(&k, p, sizeof(Key));
      if (k != key) continue;
      *found = true;
      if (value != nullptr) std::memcpy(value, p + sizeof(Key), sizeof(Value));
      return true;
    }
    return true;
  }

  /// TEST HOOK: XORs one stored bit of the slot currently holding `key` —
  /// in its key word (region 0), value word (region 1) or integrity tag
  /// (region 2) — bypassing the delta-maintained mutators.  This plants
  /// exactly the silent device-memory corruption the tag line exists to
  /// catch.  Buckets are searched first, then the stash.  Returns false
  /// when the key is not resident.
  bool CorruptSlotBitForTest(Key key, int region, int bit = 0) {
    if (key == kEmptyKey) return false;
    int candidates[16];
    int n_cand = CandidateTables(key, candidates);
    for (int c = 0; c < n_cand; ++c) {
      SubtableT& t = tables_[candidates[c]];
      uint64_t loc = t.BucketIndex(key);
      for (int s = 0; s < kSlots; ++s) {
        if (t.KeyAt(loc, s) != key) continue;
        t.CorruptBitForTest(loc, s, region, bit);
        return true;
      }
    }
    for (size_t i = 0; i < stash_keys_.size(); ++i) {
      if (stash_keys_[i].load(std::memory_order_relaxed) != key) continue;
      if (region == 0) {
        Key k = stash_keys_[i].load(std::memory_order_relaxed);
        FlipBit(&k, bit);
        stash_keys_[i].store(k, std::memory_order_relaxed);
      } else if (region == 1) {
        Value v = stash_values_[i].load(std::memory_order_relaxed);
        FlipBit(&v, bit);
        stash_values_[i].store(v, std::memory_order_relaxed);
      } else {
        stash_tags_[i].fetch_xor(static_cast<uint8_t>(1u << (bit % 8)),
                                 std::memory_order_relaxed);
      }
      return true;
    }
    return false;
  }

  /// TEST HOOK: stores (key, value) directly into a bucket *outside* the
  /// key's probe set, bypassing the insert path — simulating the silent
  /// placement corruption (bit-flipped pointer walks, lost eviction
  /// updates) the scrubber exists to catch.  Size counters are kept
  /// consistent so only the placement invariant is violated.  Returns
  /// false when no wrong home with a free slot exists.
  bool PlantMisplacedPairForTest(Key key, Value value) {
    if (key == kEmptyKey) return false;
    for (int t = 0; t < num_subtables(); ++t) {
      SubtableT& table = tables_[t];
      if (table.num_buckets() < 2) continue;
      uint64_t wrong = (table.BucketIndex(key) + 1) % table.num_buckets();
      while (!table.lock(wrong).TryLock()) {
      }
      for (int s = 0; s < kSlots; ++s) {
        if (table.KeyAt(wrong, s) == kEmptyKey) {
          table.StoreSlot(wrong, s, key, value);
          table.AddSize(1);
          table.lock(wrong).Unlock();
          return true;
        }
      }
      table.lock(wrong).Unlock();
    }
    return false;
  }

  /// TEST HOOK: plants a duplicate copy of an already-stored key into a
  /// *later* candidate bucket (or the stash), reproducing the shadowed
  /// duplicates an interrupted eviction chain can leave behind.  The copy
  /// is correctly placed for its own bucket, so only the global-uniqueness
  /// invariant is violated; FIND still returns the earlier copy.  Returns
  /// false if the key is absent or no later candidate (or stash slot) has
  /// room.
  bool PlantShadowedDuplicateForTest(Key key, Value stale_value,
                                     bool into_stash = false) {
    if (key == kEmptyKey) return false;
    int candidates[16];
    int n_cand = CandidateTables(key, candidates);
    int home = -1;
    for (int c = 0; c < n_cand && home < 0; ++c) {
      SubtableT& t = tables_[candidates[c]];
      uint64_t loc = t.BucketIndex(key);
      Key snap[kSlots];
      t.SnapshotKeys(loc, snap);
      for (int s = 0; s < kSlots; ++s) {
        if (snap[s] == key) {
          home = c;
          break;
        }
      }
    }
    if (home < 0) return false;
    if (into_stash) {
      for (size_t i = 0; i < stash_keys_.size(); ++i) {
        if (stash_keys_[i].load(std::memory_order_relaxed) == kEmptyKey) {
          StashStoreValue(i, stale_value);
          StashStoreKey(i, key);
          stash_state_[i].store(kStashLive, std::memory_order_relaxed);
          stash_size_.fetch_add(1, kRelaxed);
          return true;
        }
      }
      return false;
    }
    for (int c = home + 1; c < n_cand; ++c) {
      SubtableT& t = tables_[candidates[c]];
      uint64_t loc = t.BucketIndex(key);
      while (!t.lock(loc).TryLock()) {
      }
      for (int s = 0; s < kSlots; ++s) {
        if (t.KeyAt(loc, s) == kEmptyKey) {
          t.StoreSlot(loc, s, key, stale_value);
          t.AddSize(1);
          t.lock(loc).Unlock();
          return true;
        }
      }
      t.lock(loc).Unlock();
    }
    return false;
  }

  /// TEST HOOK: displaces a resident pair out of its bucket into the
  /// handoff ring, freezing the exact mid-chain state a real eviction
  /// passes through while a victim is in flight (bucket slot vacated, pair
  /// findable only via the ring).  Returns true when the key was
  /// bucket-resident and the ring had room.  Reconcile afterwards with
  /// SweepHandoffForTest() — or exercise FIND/DELETE/upsert against the
  /// parked copy first.
  bool ParkVictimForTest(Key key) {
    if (key == kEmptyKey) return false;
    int candidates[16];
    int n_cand = CandidateTables(key, candidates);
    for (int c = 0; c < n_cand; ++c) {
      SubtableT& t = tables_[candidates[c]];
      uint64_t loc = t.BucketIndex(key);
      while (!t.lock(loc).TryLock()) {
      }
      for (int s = 0; s < kSlots; ++s) {
        if (t.KeyAt(loc, s) != key) continue;
        int slot = -1;
        uint64_t word = 0;
        if (!ring_.Park(key, t.ValueAt(loc, s), &slot, &word)) {
          t.lock(loc).Unlock();
          return false;
        }
        stats_.parked_victims.fetch_add(1, kRelaxed);
        t.StoreKey(loc, s, kEmptyKey);
        t.lock(loc).Unlock();
        // In-flight victims are uncounted (a real swap is count-neutral:
        // the incoming pair takes the slot this hook leaves empty).
        t.AddSize(-1);
        return true;
      }
      t.lock(loc).Unlock();
    }
    return false;
  }

  /// TEST HOOK: runs the post-launch handoff reconciliation (claimed
  /// entries dropped, survivors force-stashed), restoring the at-rest
  /// invariant that the ring is empty.
  void SweepHandoffForTest() { SweepHandoffLeftovers(nullptr); }

 private:
  static constexpr int kMaxInsertRetryRounds = 16;
  static constexpr int kMaxResizeIterations = 4096;
  /// Retry budget for the epoch-validated lock-free probe loops
  /// (FIND/DELETE/upsert re-probe).  Each retry requires the displacement
  /// epoch to have changed during the probe, and parks/retires are bounded
  /// per launch (ops x chain bound), so the budget is unreachable absent a
  /// bug; it exists only to make non-termination impossible.
  static constexpr int kMaxProbeRetries = 1 << 22;
  /// Stash writer-coordination states (stash_state_).
  static constexpr uint32_t kStashVacant = 0;
  static constexpr uint32_t kStashLive = 1;
  static constexpr uint32_t kStashBusy = 2;
  /// Legacy (version-1, headerless, no checksum) snapshot magic.
  static constexpr uint64_t kSnapshotMagic = 0xD1C0CC00'5A4B1705ULL;
  /// Version-2 snapshot magic (format-version field + CRC-32 trailer).
  static constexpr uint64_t kSnapshotMagicV2 = 0xD1C0CC00'5A4B1706ULL;
  static constexpr uint64_t kSnapshotFormatVersion = 2;
  /// A committing downsize may park at most this many unplaceable residuals
  /// in the stash; beyond it the whole downsize rolls back instead.
  static constexpr uint64_t kMaxDownsizeSpill = 64;

  explicit DynamicTable(const DyCuckooOptions& options) : options_(options) {}

  /// Reads the remainder of a version-1 snapshot (after the magic).
  static Status LoadLegacy(std::istream& is, const DyCuckooOptions& options,
                           std::unique_ptr<DynamicTable>* out) {
    uint64_t header[3] = {0, 0, 0};
    is.read(reinterpret_cast<char*>(header), sizeof(header));
    if (!is.good()) return Status::InvalidArgument("not a DyCuckoo snapshot");
    if (header[0] != sizeof(Key) || header[1] != sizeof(Value)) {
      return Status::InvalidArgument("snapshot key/value width mismatch");
    }
    // As in Load: publish the table only after the whole stream parsed.
    std::unique_ptr<DynamicTable> table;
    DYCUCKOO_RETURN_NOT_OK(Create(options, &table));
    const uint64_t count = header[2];
    if (table->options_.auto_resize) {
      DYCUCKOO_RETURN_NOT_OK(table->Reserve(count));
    }
    constexpr uint64_t kChunk = 1 << 16;
    std::vector<Key> keys(std::min(count, kChunk));
    std::vector<Value> values(keys.size());
    uint64_t remaining = count;
    while (remaining > 0) {
      uint64_t n = std::min(remaining, kChunk);
      for (uint64_t i = 0; i < n; ++i) {
        is.read(reinterpret_cast<char*>(&keys[i]), sizeof(Key));
        is.read(reinterpret_cast<char*>(&values[i]), sizeof(Value));
      }
      if (!is.good()) return Status::InvalidArgument("snapshot truncated");
      DYCUCKOO_RETURN_NOT_OK(table->BulkInsert(
          std::span<const Key>(keys.data(), n),
          std::span<const Value>(values.data(), n)));
      remaining -= n;
    }
    *out = std::move(table);
    return Status::OK();
  }

  /// Records that a batch ran without the capacity growth it wanted
  /// (counted once per batch, keeping the first failure's message).
  void NoteDegradedBatch(Status* grow_failure, const Status& oom) {
    if (!grow_failure->ok()) return;
    stats_.degraded_batches.fetch_add(1, kRelaxed);
    *grow_failure = oom;
  }

  class FailBuffer;  // defined below

  /// A terminal fail buffer usually does NOT hold the batch keys that
  /// started the failing chains: cuckoo insertion displaces residents as it
  /// walks, so the carried pair left over at the chain bound is typically a
  /// key stored long before this batch.  Dropping it would silently lose
  /// data the caller never handed us in this call.  Residents are parked in
  /// the stash (lossless; drained back on the next upsize); only keys that
  /// belong to `batch` are genuine failures the caller must retry.
  template <typename KeyRange>
  uint64_t AbsorbResidentFailures(const FailBuffer& fail,
                                  const KeyRange& batch) {
    std::unordered_set<Key> batch_keys(batch.begin(), batch.end());
    uint64_t batch_failed = 0;
    for (uint64_t i = 0; i < fail.count(); ++i) {
      if (batch_keys.count(fail.keys()[i]) > 0) {
        ++batch_failed;
      } else {
        ForceStash(fail.keys()[i], fail.values()[i]);
        stats_.recovery_spills.fetch_add(1, kRelaxed);
      }
    }
    return batch_failed;
  }

  Status Init() {
    arena_ = options_.arena != nullptr ? options_.arena
                                       : gpusim::DeviceArena::Global();
    grid_ = options_.grid != nullptr ? options_.grid : gpusim::Grid::Global();
    const int d = options_.num_subtables;
    pair_map_ = PairMap(d, Mix64(options_.seed ^ 0xFA12B0057ULL));
    choice_salt_ = Mix64(options_.seed ^ 0xC401CE5A17ULL);

    // Smallest ladder configuration covering the capacity hint: j subtables
    // of 2n buckets and d-j of n, minimizing (d+j)*n*kSlots >= hint.  The
    // mixed start is a legal resize state, and its +12..25% granularity is
    // much finer than forcing d equal powers of two (up to +100%).
    const uint64_t want_buckets =
        CeilDiv(options_.initial_capacity, static_cast<uint64_t>(kSlots));
    uint64_t best_total = 0;
    uint64_t best_n = 1;
    int best_j = 0;
    for (uint64_t n = 1; n <= NextPowerOfTwo(want_buckets); n *= 2) {
      for (int j = 0; j <= d; ++j) {
        uint64_t total = static_cast<uint64_t>(d + j) * n;
        if (total >= want_buckets && (best_total == 0 || total < best_total)) {
          best_total = total;
          best_n = n;
          best_j = j;
        }
      }
    }
    DYCUCKOO_CHECK(best_total > 0);
    if (best_j == d) {  // all doubled == all at 2n
      best_n *= 2;
      best_j = 0;
    }
    tables_.reserve(d);
    for (int i = 0; i < d; ++i) {
      uint64_t buckets = i < best_j ? 2 * best_n : best_n;
      tables_.emplace_back(buckets,
                           Mix64(options_.seed + 0x9E3779B9ULL * (i + 1)),
                           arena_, options_.memory_tag);
      if (!tables_.back().ok()) {
        return Status::OutOfMemory("device arena exhausted creating table");
      }
    }
    if (options_.stash_capacity > 0) {
      stash_keys_ = std::vector<std::atomic<Key>>(options_.stash_capacity);
      stash_values_ = std::vector<std::atomic<Value>>(options_.stash_capacity);
      stash_state_ =
          std::vector<std::atomic<uint32_t>>(options_.stash_capacity);
      stash_tags_ = std::vector<std::atomic<uint8_t>>(options_.stash_capacity);
      const uint8_t empty_tag = SubtableT::ExpectedTag(kEmptyKey, Value{});
      for (auto& k : stash_keys_) {
        k.store(kEmptyKey, std::memory_order_relaxed);
      }
      for (auto& t : stash_tags_) {
        t.store(empty_tag, std::memory_order_relaxed);
      }
    }
    ring_.Reset(options_.handoff_capacity);
    return Status::OK();
  }

  // ---- Placement policy (Theorem 1) -----------------------------------

  /// Balance weight: free slots in subtable t.
  ///
  /// For equal-size subtables, Theorem 1's optimum (equal C(m_i,2)/n_i)
  /// reduces to equal m_i, which free-space-proportional sampling converges
  /// to.  For ladder-mixed sizes it equalizes the per-subtable filled
  /// factors, letting larger tables carry proportionally more entries
  /// (Section IV-C) — weighting by n/C(m,2) directly would instead jam the
  /// *small* tables toward 100% at high global fill and blow up eviction
  /// chains.
  double BalanceWeight(int t) const {
    double slots = static_cast<double>(tables_[t].num_slots());
    double used = static_cast<double>(tables_[t].size());
    return std::max(slots - used, 1.0);
  }

  /// Uniform double in [0, 1) deterministically derived from the key.
  double KeyUniform(Key key) const {
    return static_cast<double>(
               Mix64(static_cast<uint64_t>(key) ^ choice_salt_) >> 11) *
           (1.0 / 9007199254740992.0);
  }

  /// Chooses the initial target subtable.  Two-layer mode picks inside the
  /// key's pair; plain mode (ablation) picks among all d subtables.
  /// Excluded tables are skipped (downsize residuals); with balance enabled
  /// the choice is proportional to the Theorem-1 weights, deterministically
  /// seeded by the key.
  int ChooseTarget(Key key, const TablePair& pair, int exclude_table) const {
    if (options_.enable_two_layer) {
      if (exclude_table == pair.first) return pair.second;
      if (exclude_table == pair.second) return pair.first;
      double wi = options_.enable_balance ? BalanceWeight(pair.first) : 1.0;
      double wj = options_.enable_balance ? BalanceWeight(pair.second) : 1.0;
      double p = wi / (wi + wj);
      return KeyUniform(key) < p ? pair.first : pair.second;
    }
    // Plain d-table cuckoo: weighted choice over every non-excluded table.
    double total = 0.0;
    for (int t = 0; t < num_subtables(); ++t) {
      if (t == exclude_table) continue;
      total += options_.enable_balance ? BalanceWeight(t) : 1.0;
    }
    double r = KeyUniform(key) * total;
    for (int t = 0; t < num_subtables(); ++t) {
      if (t == exclude_table) continue;
      double w = options_.enable_balance ? BalanceWeight(t) : 1.0;
      if (r < w) return t;
      r -= w;
    }
    return exclude_table == 0 ? 1 : 0;  // numerical fallback
  }

  /// Where an evicted pair continues its walk: the other member of its own
  /// pair in two-layer mode; any other subtable in plain mode.  Returns -1
  /// when the only continuation is the excluded subtable (the chain dead-
  /// ends; the caller fails the op instead of touching excluded storage).
  int EvictionTarget(Key victim_key, int from_table, int chain_step,
                     int exclude_table) const {
    if (options_.enable_two_layer) {
      TablePair vp = pair_map_.PairFor(static_cast<uint64_t>(victim_key));
      DYCUCKOO_DCHECK(vp.Contains(from_table));
      int other = vp.Contains(from_table) ? vp.Other(from_table) : vp.first;
      return other == exclude_table ? -1 : other;
    }
    if (exclude_table < 0) {
      uint64_t h = Mix64(static_cast<uint64_t>(victim_key) + chain_step);
      int hop = 1 + static_cast<int>(h % (num_subtables() - 1));
      return (from_table + hop) % num_subtables();
    }
    int eligible = 0;
    for (int t = 0; t < num_subtables(); ++t) {
      if (t != from_table && t != exclude_table) ++eligible;
    }
    if (eligible == 0) return -1;
    uint64_t h = Mix64(static_cast<uint64_t>(victim_key) + chain_step);
    int pick = static_cast<int>(h % eligible);
    for (int t = 0; t < num_subtables(); ++t) {
      if (t == from_table || t == exclude_table) continue;
      if (pick-- == 0) return t;
    }
    return -1;
  }

  /// Candidate subtables that may hold `key` (probe set for FIND/DELETE and
  /// the upsert pre-check).  Returns the count written into `out`.
  int CandidateTables(Key key, int out[]) const {
    if (options_.enable_two_layer) {
      TablePair p = pair_map_.PairFor(static_cast<uint64_t>(key));
      out[0] = p.first;
      out[1] = p.second;
      return 2;
    }
    for (int t = 0; t < num_subtables(); ++t) out[t] = t;
    return num_subtables();
  }

  /// Picks the eviction victim: a few *randomly sampled* slots compete and
  /// the one whose alternate subtable is freest wins.  Randomization is
  /// load-bearing — a deterministic "best" victim re-selects the same keys
  /// and builds eviction cycles at high fill; sampling keeps the Theorem-1
  /// balance bias while breaking cycles (the classic cuckoo random walk).
  /// With an excluded subtable (downsize in flight) victims whose only
  /// alternate is that subtable are ineligible; -1 means no sampled victim
  /// qualifies and the chain must dead-end.
  int ChooseVictim(const SubtableT& table, uint64_t bucket, int table_idx,
                   uint64_t salt, int exclude_table) const {
    constexpr int kCandidates = 4;
    uint64_t h = Mix64(salt ^ (bucket << 20) ^ choice_salt_);
    int best_slot = -1;
    double best_weight = -1.0;
    for (int c = 0; c < kCandidates; ++c) {
      int s = static_cast<int>((h >> (c * 8)) % kSlots);
      Key k = table.KeyAt(bucket, s);
      if (k == kEmptyKey) return s;  // racing delete vacated it: reuse
      double w = 0.0;
      if (options_.enable_two_layer &&
          (options_.enable_balance || exclude_table >= 0)) {
        TablePair p = pair_map_.PairFor(static_cast<uint64_t>(k));
        if (!p.Contains(table_idx)) continue;  // defensive
        if (exclude_table >= 0 && p.Other(table_idx) == exclude_table) {
          continue;  // its walk could only land in the excluded subtable
        }
        if (options_.enable_balance) w = BalanceWeight(p.Other(table_idx));
      }
      if (w > best_weight) {
        best_weight = w;
        best_slot = s;
      }
    }
    if (best_slot < 0 && exclude_table < 0) {
      best_slot = static_cast<int>(h % kSlots);  // defensive fallback
    }
    return best_slot;
  }

  // ---- Insert kernel (Algorithm 1) -------------------------------------

  /// Overflow buffer for ops whose eviction chain exceeded the bound.
  class FailBuffer {
   public:
    explicit FailBuffer(uint64_t capacity)
        : keys_(capacity), values_(capacity) {}

    FailBuffer(FailBuffer&& o)
        : keys_(std::move(o.keys_)),
          values_(std::move(o.values_)),
          cursor_(o.cursor_.load(std::memory_order_relaxed)) {}

    FailBuffer& operator=(FailBuffer&& o) {
      keys_ = std::move(o.keys_);
      values_ = std::move(o.values_);
      cursor_.store(o.cursor_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      return *this;
    }

    void Push(Key k, Value v) {
      uint64_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
      DYCUCKOO_DCHECK(i < keys_.size());
      keys_[i] = k;
      values_[i] = v;
    }

    uint64_t count() const { return cursor_.load(std::memory_order_relaxed); }
    const Key* keys() const { return keys_.data(); }
    const Value* values() const { return values_.data(); }

    /// Host-side push with no kernels in flight: grows when full (the
    /// handoff sweep may re-queue victims that were never in the batch,
    /// e.g. planted by a test hook, exceeding the batch-sized capacity).
    void PushHost(Key k, Value v) {
      uint64_t i = cursor_.load(std::memory_order_relaxed);
      if (i == keys_.size()) {
        keys_.resize(keys_.size() + 1);
        values_.resize(values_.size() + 1);
      }
      keys_[i] = k;
      values_[i] = v;
      cursor_.store(i + 1, std::memory_order_relaxed);
    }

    /// Host-side compaction: drops every queued entry whose key is in
    /// `gone` (used by the handoff sweep to reconcile pairs that were
    /// deleted — or re-queued with a fresher value — while parked).
    void RemoveKeys(const std::unordered_set<Key>& gone) {
      uint64_t n = cursor_.load(std::memory_order_relaxed);
      uint64_t w = 0;
      for (uint64_t i = 0; i < n; ++i) {
        if (gone.count(keys_[i]) != 0) continue;
        keys_[w] = keys_[i];
        values_[w] = values_[i];
        ++w;
      }
      cursor_.store(w, std::memory_order_relaxed);
    }

   private:
    std::vector<Key> keys_;
    std::vector<Value> values_;
    std::atomic<uint64_t> cursor_{0};
  };

  /// Launches the voter-coordinated insert grid.  Returns the number of
  /// reserved-sentinel keys skipped.
  uint64_t InsertKernel(const Key* keys, const Value* values, uint64_t n,
                        int exclude_table, bool check_partner,
                        FailBuffer* fail) {
    std::atomic<uint64_t> invalid{0};
    grid_->LaunchWarps(gpusim::WarpsForItems(n), [&](uint64_t warp) {
      InsertWarp(keys, values, n, warp, exclude_table, check_partner, fail,
                 &invalid);
    });
    SweepHandoffLeftovers(fail);
    return invalid.load(std::memory_order_relaxed);
  }

  /// Host-side reconciliation after every insert-capable launch.  A pair
  /// still parked in the handoff ring belongs to an op that hit a terminal
  /// failure with a full stash (ResolveStuckOp pushed its key to the
  /// failure buffer and left it parked to stay findable).  Claimed entries
  /// were deleted mid-flight — drop them AND scrub their queued retry so a
  /// deleted key is not resurrected.  Unclaimed entries are re-queued with
  /// their freshest (possibly upserted) value.  Runs with no kernels in
  /// flight, so relaxed host-side access is safe.
  void SweepHandoffLeftovers(FailBuffer* fail) {
    if (ring_.count() == 0) return;
    std::unordered_set<Key> stale;
    std::vector<std::pair<Key, Value>> survivors;
    ring_.HostSweepLeftovers([&](Key k, Value v, bool claimed) {
      stale.insert(k);
      if (!claimed) survivors.emplace_back(k, v);
    });
    if (stale.empty()) return;
    if (fail != nullptr) {
      fail->RemoveKeys(stale);
      for (const auto& [k, v] : survivors) fail->PushHost(k, v);
    } else {
      for (const auto& [k, v] : survivors) {
        ForceStash(k, v);
        stats_.recovery_spills.fetch_add(1, kRelaxed);
      }
    }
  }

  struct LaneOp {
    Key key{};
    Value value{};
    TablePair pair{0, 0};
    int target = 0;
    int evictions = 0;
    bool active = false;
    // Handoff-ring slot holding this op's pair while it is a displaced
    // victim in flight (-1 when the pair was never displaced), plus the
    // ring word observed at park time (generation DCHECKs in Retire).
    int ring_slot = -1;
    uint64_t ring_word = 0;
    // Ring epoch at prepare time; the voter loop re-probes for a relocated
    // copy only when the epoch moved since (i.e. some chain displaced or
    // re-homed a pair after the prepare-phase probe).
    uint64_t prep_epoch = 0;
  };

  /// One warp's share of the insert batch: 32 ops, one per lane, processed
  /// with the paper's voter coordination (Algorithm 1).
  void InsertWarp(const Key* keys, const Value* values, uint64_t n,
                  uint64_t warp, int exclude_table, bool check_partner,
                  FailBuffer* fail, std::atomic<uint64_t>* invalid) {
    LaneOp ops[gpusim::kWarpSize];
    uint64_t local_new = 0, local_updated = 0, local_failed = 0,
             local_invalid = 0, local_evictions = 0;

    const uint64_t base = warp * gpusim::kWarpSize;
    for (int lane = 0; lane < gpusim::kWarpSize; ++lane) {
      uint64_t idx = base + lane;
      if (idx >= n) continue;
      if (keys[idx] == kEmptyKey) {
        ++local_invalid;
        continue;
      }
      PrepareInsertLane(keys[idx], values[idx], exclude_table, check_partner,
                        &ops[lane], &local_updated);
    }

    RunVoterLoop(ops, exclude_table, check_partner, fail, &local_new,
                 &local_updated, &local_failed, &local_evictions);

    if (local_new) stats_.inserts_new.fetch_add(local_new, kRelaxed);
    if (local_updated) stats_.inserts_updated.fetch_add(local_updated, kRelaxed);
    if (local_failed) stats_.insert_failures.fetch_add(local_failed, kRelaxed);
    if (local_evictions) stats_.evictions.fetch_add(local_evictions, kRelaxed);
    if (local_invalid) invalid->fetch_add(local_invalid, kRelaxed);
  }

  /// Prepares one lane's insert: layer-1 pair, balance-weighted target, and
  /// (optionally) the upsert probe of the other candidate bucket(s) so a
  /// key never ends up stored twice (see DESIGN.md deviation note).
  /// Two-layer mode probes one partner bucket; plain mode pays d-1 probes.
  void PrepareInsertLane(Key key, Value value, int exclude_table,
                         bool check_partner, LaneOp* op, uint64_t* updated) {
    op->key = key;
    op->value = value;
    op->pair = pair_map_.PairFor(static_cast<uint64_t>(key));
    op->target = ChooseTarget(key, op->pair, exclude_table);
    op->active = true;
    op->prep_epoch = ring_.epoch();
    if (!check_partner) return;
    int candidates[16];
    int n_cand = CandidateTables(key, candidates);
    for (int c = 0; c < n_cand && op->active; ++c) {
      if (candidates[c] == op->target) continue;
      SubtableT& pt = tables_[candidates[c]];
      uint64_t loc = pt.BucketIndex(key);
      gpusim::CountBucketRead();
      Key snap[kSlots];
      pt.SnapshotKeys(loc, snap);
      for (int s = 0; s < kSlots; ++s) {
        if (snap[s] == key) {
          // Unlocked upsert: concurrent upserts of the same key are
          // last-writer-wins; TryUpsertSlotValue's CAS protocol keeps the
          // write out of a slot an eviction chain recycled between the
          // snapshot and the store.
          if (!TryUpsertSlotValue(pt, loc, s, key, value)) continue;
          op->active = false;
          ++*updated;
          break;
        }
      }
    }
    if (op->active && ring_.count() > 0 &&
        ring_.UpdateValue(key, value)) {
      // The key is mid-displacement in another chain; updating its parked
      // copy is an upsert (the owning chain re-reads the parked value when
      // it re-homes the victim).
      op->active = false;
      ++*updated;
    }
    if (op->active && stash_size_.load(std::memory_order_acquire) > 0) {
      for (size_t i = 0; i < stash_keys_.size(); ++i) {
        if (gpusim::LoadAcquire(&stash_keys_[i]) == key) {
          StashStoreValue(i, value);
          op->active = false;
          ++*updated;
          break;
        }
      }
    }
  }

  /// The voter loop of Algorithm 1 over one warp's prepared lane ops.
  /// Ballot the active lanes, elect a leader, attempt its bucket; a failed
  /// lock means an immediate revote instead of spinning.  The ballot result
  /// is maintained incrementally — on hardware __ballot_sync is a single
  /// cycle, so recomputing it with a 32-lane loop each round would charge
  /// the simulation a cost the GPU never pays.
  void RunVoterLoop(LaneOp* ops, int exclude_table, bool check_partner,
                    FailBuffer* fail, uint64_t* local_new,
                    uint64_t* local_updated, uint64_t* local_failed,
                    uint64_t* local_evictions) {
    uint64_t& new_count = *local_new;
    uint64_t& updated = *local_updated;
    uint64_t& failed = *local_failed;
    uint64_t& evicted = *local_evictions;
    int chain_limit = options_.max_eviction_chain;
    if (gpusim::FaultInjector* fi = gpusim::FaultInjector::Active()) {
      chain_limit = fi->ClampEvictionChain(chain_limit);
    }
    gpusim::LaneMask active =
        gpusim::Ballot([&](int lane) { return ops[lane].active; });
    int prev_leader = -1;
    for (;;) {
      if (active == 0) break;
      // With the voter disabled (ablation) the lowest active lane stays
      // leader and spins on its lock; with it enabled a lock failure
      // rotates leadership to another lane's bucket.
      int leader = options_.enable_voter
                       ? gpusim::NextLeader(active, prev_leader)
                       : gpusim::FirstLane(active);
      prev_leader = leader;
      LaneOp& op = ops[leader];

      SubtableT& table = tables_[op.target];
      const uint64_t loc = table.BucketIndex(op.key);
      if (!table.lock(loc).TryLock()) {
        gpusim::CountLockConflict();
        continue;  // revote (a different leader is preferred next)
      }

      // The warp cooperatively scans the locked bucket: one lane per slot.
      gpusim::CountBucketRead();
      Key snap[kSlots];
      table.SnapshotKeys(loc, snap);
      int match_slot = -1;
      int empty_slot = -1;
      for (int s = 0; s < kSlots; ++s) {
        if (snap[s] == op.key) {
          match_slot = s;
          break;
        }
        if (snap[s] == kEmptyKey && empty_slot < 0) empty_slot = s;
      }

      if (match_slot >= 0) {
        table.StoreValue(loc, match_slot, op.value);
        if (op.ring_slot >= 0) {
          // The pair we carry is a displaced victim with a parked handoff
          // copy, and the key is (again) resident in a bucket: collapse
          // onto the bucket copy.  The parked value is the freshest (it
          // absorbs in-flight upserts), so propagate it.
          Value latest{};
          if (ring_.Retire(op.ring_slot, op.ring_word, &latest)) {
            if (!(latest == op.value)) table.StoreValue(loc, match_slot, latest);
          } else {
            // A concurrent DELETE claimed the parked copy: it wins, and it
            // takes the bucket copy with it.
            table.StoreKey(loc, match_slot, kEmptyKey);
            table.AddSize(-1);
            ring_.FreeClaimed(op.ring_slot);
          }
          op.ring_slot = -1;
        }
        table.lock(loc).Unlock();
        op.active = false;
        active &= ~(gpusim::LaneMask{1} << leader);
        ++updated;
        continue;
      }
      if (check_partner && op.evictions == 0 &&
          ring_.epoch() != op.prep_epoch) {
        // The displacement epoch moved since this lane's prepare-phase
        // probe cleared its other candidate homes, so an eviction chain
        // may have relocated the key in the meantime.  The relocated copy
        // is re-placed (another candidate bucket or the stash) or still in
        // flight — and an in-flight pair is always visible in the handoff
        // ring between voter iterations — so UpdateIfPresentElsewhere
        // finds it wherever it lives instead of us storing a duplicate.
        if (UpdateIfPresentElsewhere(op.key, op.value, op.target)) {
          table.lock(loc).Unlock();
          op.active = false;
          active &= ~(gpusim::LaneMask{1} << leader);
          ++updated;
          stats_.insert_reprobe_updates.fetch_add(1, kRelaxed);
          continue;
        }
      }
      if (empty_slot >= 0) {
        bool placed = PlaceTerminal(table, loc, empty_slot, &op);
        table.lock(loc).Unlock();
        if (placed) table.AddSize(1);
        op.active = false;
        active &= ~(gpusim::LaneMask{1} << leader);
        ++new_count;
        continue;
      }

      // Bucket full: evict the resident whose alternate table is freest and
      // continue the chain with the displaced pair (bounded).  An exhausted
      // chain goes to the stash when one is configured (the paper's
      // future-work extension), else to the failure buffer.
      if (op.evictions >= chain_limit) {
        table.lock(loc).Unlock();
        op.active = false;
        active &= ~(gpusim::LaneMask{1} << leader);
        ResolveStuckOp(&op, fail, &failed);
        continue;
      }
      int victim =
          ChooseVictim(table, loc, op.target,
                       static_cast<uint64_t>(op.key) + op.evictions,
                       exclude_table);
      int next_target = -1;
      Key vk{};
      Value vv{};
      if (victim >= 0) {
        vk = table.KeyAt(loc, victim);
        vv = table.ValueAt(loc, victim);
        if (vk == kEmptyKey) {
          // A concurrent lock-free delete vacated the slot after our scan:
          // claim it directly instead of evicting.
          bool placed = PlaceTerminal(table, loc, victim, &op);
          table.lock(loc).Unlock();
          if (placed) table.AddSize(1);
          op.active = false;
          active &= ~(gpusim::LaneMask{1} << leader);
          ++new_count;
          continue;
        }
        next_target = EvictionTarget(vk, op.target, op.evictions,
                                     exclude_table);
      }
      if (victim < 0 || next_target < 0) {
        // Dead end: every continuation would enter the excluded subtable.
        // Fail the op exactly like an exhausted chain.
        table.lock(loc).Unlock();
        op.active = false;
        active &= ~(gpusim::LaneMask{1} << leader);
        ResolveStuckOp(&op, fail, &failed);
        continue;
      }

      if (options_.unsafe_overwrite_before_park_for_test) {
        // Test-only regression mode: the pre-fix behavior.  The victim's
        // slot is overwritten while the displaced pair has no other
        // visible home, re-opening the displacement window the handoff
        // ring exists to close (the linearizability checker must flag the
        // resulting transient misses).
        table.StoreSlot(loc, victim, op.key, op.value);
        gpusim::CountBucketWrite();
        table.lock(loc).Unlock();
        // Dawdle while the displaced pair has no visible home, widening
        // the window so the checker reliably catches the transient miss.
        for (int i = 0; i < options_.eviction_delay_spins_for_test; ++i) {
          std::this_thread::yield();
        }
        gpusim::CountEviction();
        ++evicted;
        op.key = vk;
        op.value = vv;
        op.target = next_target;
        ++op.evictions;
        continue;
      }

      // Park the victim in the handoff ring BEFORE touching its slot, so
      // FIND/DELETE (buckets -> ring -> stash) see the key at every
      // instant of the chain.
      int vslot = -1;
      uint64_t vword = 0;
      if (!ring_.Park(vk, vv, &vslot, &vword)) {
        // Ring momentarily full: resolve the *incoming* pair through the
        // stash/failure path and leave the victim untouched in its
        // bucket — a displaced pair is never dropped.
        stats_.handoff_full_fallbacks.fetch_add(1, kRelaxed);
        table.lock(loc).Unlock();
        op.active = false;
        active &= ~(gpusim::LaneMask{1} << leader);
        ResolveStuckOp(&op, fail, &failed);
        continue;
      }
      stats_.parked_victims.fetch_add(1, kRelaxed);
      // Unpublish the victim's key before the overwrite so no reader can
      // pair vk with the incoming value mid-swap; the parked copy keeps vk
      // findable through the empty window.
      table.StoreKey(loc, victim, kEmptyKey);
      bool placed = PlaceTerminal(table, loc, victim, &op);
      table.lock(loc).Unlock();
      // A swap is count-neutral (victim out, incoming pair in); when the
      // incoming pair was deleted mid-flight the slot ended up empty, so
      // the subtable lost the victim without gaining a replacement.
      if (!placed) table.AddSize(-1);
      for (int i = 0; i < options_.eviction_delay_spins_for_test; ++i) {
        std::this_thread::yield();
      }
      gpusim::CountEviction();
      ++evicted;

      op.key = vk;
      op.value = vv;
      op.target = next_target;
      op.ring_slot = vslot;
      op.ring_word = vword;
      ++op.evictions;
    }
  }

  /// Final placement of a lane op into an empty (or just-vacated) slot of
  /// a locked bucket.  Publishes the pair, then — when the op is a
  /// displaced victim in flight — retires its parked handoff copy: the
  /// bucket copy is visible before the ring copy disappears, so a reader
  /// never observes a gap.  Returns false when a concurrent DELETE claimed
  /// the parked copy: the placement is undone (the delete wins) and the
  /// slot is left empty.  The caller still holds the bucket lock and owns
  /// the size accounting either way.
  bool PlaceTerminal(SubtableT& table, uint64_t loc, int slot, LaneOp* op) {
    table.StoreSlot(loc, slot, op->key, op->value);
    gpusim::CountBucketWrite();
    if (op->ring_slot < 0) return true;
    Value latest{};
    if (ring_.Retire(op->ring_slot, op->ring_word, &latest)) {
      // An upsert may have refreshed the parked copy after this chain
      // captured op->value; the parked value is the freshest.
      if (!(latest == op->value)) table.StoreValue(loc, slot, latest);
      op->ring_slot = -1;
      return true;
    }
    table.StoreKey(loc, slot, kEmptyKey);
    ring_.FreeClaimed(op->ring_slot);
    op->ring_slot = -1;
    return false;
  }

  /// Terminal failure path (exhausted chain, dead end, or full handoff
  /// ring).  A fresh op stashes or fails exactly as before.  A displaced
  /// victim must never lose residency: it is copied into the stash
  /// *before* its parked handoff copy is retired; when the stash is full
  /// too, the pair stays parked (still findable) and the host-side sweep
  /// after the launch reconciles it with the failure buffer.
  void ResolveStuckOp(LaneOp* op, FailBuffer* fail, uint64_t* failed) {
    if (op->ring_slot < 0) {
      if (stash_keys_.empty() || !StashInsert(op->key, op->value)) {
        fail->Push(op->key, op->value);
        ++*failed;
      }
      return;
    }
    size_t stash_idx = 0;
    if (!stash_keys_.empty() &&
        StashInsert(op->key, ring_.CurrentValue(op->ring_slot), &stash_idx)) {
      Value latest{};
      if (ring_.Retire(op->ring_slot, op->ring_word, &latest)) {
        // Propagate any upsert that hit the parked copy between the stash
        // publish and the retire.
        if (gpusim::Load(&stash_keys_[stash_idx]) == op->key) {
          StashStoreValue(stash_idx, latest);
        }
      } else {
        // Claimed by a concurrent DELETE: withdraw the stash copy again.
        StashRemoveAt(stash_idx, op->key);
        ring_.FreeClaimed(op->ring_slot);
      }
      op->ring_slot = -1;
      return;
    }
    fail->Push(op->key, op->value);
    ++*failed;
    // op->ring_slot stays set: the pair remains parked — and findable —
    // until SweepHandoffLeftovers reconciles it after the launch.
  }

  /// Lock-free value upsert into a bucket slot believed to hold `key`.
  /// The CAS pins the value read while the key matched, so the write can
  /// never land in a slot an eviction chain re-keyed in between: either
  /// the CAS fails (value already overwritten), or the key re-check after
  /// the CAS catches the recycle and the second CAS restores the value we
  /// displaced (nobody else has written since, or the restore fails
  /// harmlessly).  Concurrent upserts of the same key remain
  /// last-writer-wins, now with atomic arbitration instead of racy stores.
  bool TryUpsertSlotValue(SubtableT& t, uint64_t loc, int s, Key key,
                          Value value) {
    for (;;) {
      if (t.KeyAtAcquire(loc, s) != key) return false;
      Value expected = t.ValueAt(loc, s);
      if (expected == value) return true;
      if (!t.CasValue(loc, s, expected, value)) continue;
      if (t.KeyAtAcquire(loc, s) == key) return true;
      t.CasValue(loc, s, value, expected);
      return false;
    }
  }

  /// Probes the key's candidate buckets other than `skip_table`, then the
  /// stash, updating the value in place on a hit.  Used by the voter loop
  /// to close the window between a lane's prepare-phase upsert probe and
  /// its placement, during which an eviction chain may have relocated the
  /// key.
  bool UpdateIfPresentElsewhere(Key key, Value value, int skip_table) {
    int candidates[16];
    int n_cand = CandidateTables(key, candidates);
    // Epoch-retry contract (see FindOneInternal): "absent elsewhere" is
    // only trustworthy when no displacement overlapped the probe.  A copy
    // in flight through another chain is updated in place in the handoff
    // ring; the owning chain re-reads the parked value at retire time, so
    // the update survives the re-homing.
    for (int attempt = 0; attempt < kMaxProbeRetries; ++attempt) {
      const uint64_t epoch = ring_.epoch();
      for (int c = 0; c < n_cand; ++c) {
        if (candidates[c] == skip_table) continue;
        SubtableT& t = tables_[candidates[c]];
        uint64_t loc = t.BucketIndex(key);
        gpusim::CountBucketRead();
        Key snap[kSlots];
        t.SnapshotKeys(loc, snap);
        for (int s = 0; s < kSlots; ++s) {
          if (snap[s] != key) continue;
          if (TryUpsertSlotValue(t, loc, s, key, value)) return true;
        }
      }
      if (ring_.count() > 0 && ring_.UpdateValue(key, value)) return true;
      if (stash_size_.load(std::memory_order_acquire) > 0) {
        for (size_t i = 0; i < stash_keys_.size(); ++i) {
          if (gpusim::LoadAcquire(&stash_keys_[i]) == key) {
            StashStoreValue(i, value);
            return true;
          }
        }
      }
      if (ring_.epoch() == epoch) return false;
    }
    return false;
  }

  /// One warp's share of a mixed batch: finds and erases execute directly
  /// lane-by-lane; inserts are prepared per lane and drained through the
  /// voter loop.
  void MixedWarp(MixedOp* ops, uint64_t n, uint64_t warp, FailBuffer* fail,
                 std::atomic<uint64_t>* invalid) {
    LaneOp lane_ops[gpusim::kWarpSize];
    uint64_t local_new = 0, local_updated = 0, local_failed = 0,
             local_invalid = 0, local_evictions = 0, local_finds = 0,
             local_find_hits = 0, local_erases = 0, local_erase_hits = 0;

    const uint64_t base = warp * gpusim::kWarpSize;
    for (int lane = 0; lane < gpusim::kWarpSize; ++lane) {
      uint64_t idx = base + lane;
      if (idx >= n) continue;
      MixedOp& op = ops[idx];
      switch (op.type) {
        case MixedOp::Type::kFind: {
          ++local_finds;
          Value v{};
          op.hit = FindOneInternal(op.key, &v) ? 1 : 0;
          if (op.hit) {
            op.value = v;
            ++local_find_hits;
          }
          break;
        }
        case MixedOp::Type::kErase: {
          ++local_erases;
          uint64_t released = EraseOneInternal(op.key);
          op.hit = released > 0 ? 1 : 0;
          local_erase_hits += released;
          break;
        }
        case MixedOp::Type::kInsert: {
          if (op.key == kEmptyKey) {
            ++local_invalid;
            break;
          }
          PrepareInsertLane(op.key, op.value, /*exclude_table=*/-1,
                            /*check_partner=*/true, &lane_ops[lane],
                            &local_updated);
          break;
        }
      }
    }

    RunVoterLoop(lane_ops, /*exclude_table=*/-1, /*check_partner=*/true, fail,
                 &local_new, &local_updated, &local_failed, &local_evictions);

    if (local_new) stats_.inserts_new.fetch_add(local_new, kRelaxed);
    if (local_updated) stats_.inserts_updated.fetch_add(local_updated, kRelaxed);
    if (local_failed) stats_.insert_failures.fetch_add(local_failed, kRelaxed);
    if (local_evictions) stats_.evictions.fetch_add(local_evictions, kRelaxed);
    if (local_invalid) invalid->fetch_add(local_invalid, kRelaxed);
    if (local_finds) stats_.finds.fetch_add(local_finds, kRelaxed);
    if (local_find_hits) stats_.find_hits.fetch_add(local_find_hits, kRelaxed);
    if (local_erases) stats_.erases.fetch_add(local_erases, kRelaxed);
    if (local_erase_hits) {
      stats_.erase_hits.fetch_add(local_erase_hits, kRelaxed);
    }
  }

  // ---- Find / erase kernels --------------------------------------------

  /// One warp's chunk of the find batch: the warp walks its 32 ops
  /// sequentially; for each op the lanes scan the (at most two) buckets of
  /// the key's pair in parallel.
  void FindWarp(const Key* keys, uint64_t n, uint64_t warp, Value* values,
                uint8_t* found) const {
    const uint64_t base = warp * gpusim::kWarpSize;
    const uint64_t end = std::min(n, base + gpusim::kWarpSize);
    uint64_t local_finds = 0, local_hits = 0;
    for (uint64_t idx = base; idx < end; ++idx) {
      Key k = keys[idx];
      ++local_finds;
      Value v{};
      bool hit = FindOneInternal(k, &v);
      if (found != nullptr) found[idx] = hit ? 1 : 0;
      if (hit) {
        ++local_hits;
        if (values != nullptr) values[idx] = v;
      }
    }
    stats_.finds.fetch_add(local_finds, kRelaxed);
    if (local_hits) stats_.find_hits.fetch_add(local_hits, kRelaxed);
  }

  /// One lookup over the key's candidate buckets (≤2 in two-layer mode),
  /// then the displaced-victim handoff ring, then the stash.
  ///
  /// Linearizable against concurrent eviction chains: a chain parks its
  /// victim in the ring *before* overwriting the slot and retires it only
  /// *after* the re-homed copy is published, and both transitions bump the
  /// displacement epoch first.  So if this probe misses everywhere and the
  /// epoch did not change across the whole probe, the key was genuinely
  /// absent at the instant the probe started; otherwise a displacement
  /// overlapped the probe and it retries.  Bucket hits re-validate the key
  /// after reading the value (the overwrite unpublishes the old key before
  /// writing the incoming pair), ruling out torn (key, value) results.
  bool FindOneInternal(Key k, Value* v) const {
    if (k == kEmptyKey) return false;
    int candidates[16];
    int n_cand = CandidateTables(k, candidates);
    for (int attempt = 0; attempt < kMaxProbeRetries; ++attempt) {
      const uint64_t epoch = ring_.epoch();
      for (int c = 0; c < n_cand; ++c) {
        const SubtableT& t = tables_[candidates[c]];
        uint64_t loc = t.BucketIndex(k);
        gpusim::CountBucketRead();
        Key snap[kSlots];
        t.SnapshotKeys(loc, snap);
        for (int s = 0; s < kSlots; ++s) {
          if (snap[s] != k) continue;
          Value val = t.ValueAt(loc, s);
          if (t.KeyAtAcquire(loc, s) == k) {
            *v = val;
            return true;
          }
        }
      }
      if (ring_.count() > 0) {
        gpusim::CountBucketRead();
        if (ring_.TryFind(k, v)) {
          stats_.handoff_hits.fetch_add(1, kRelaxed);
          return true;
        }
      }
      if (stash_size_.load(std::memory_order_acquire) > 0) {
        gpusim::CountBucketRead();
        for (size_t i = 0; i < stash_keys_.size(); ++i) {
          if (gpusim::LoadAcquire(&stash_keys_[i]) != k) continue;
          Value val = gpusim::Load(&stash_values_[i]);
          if (gpusim::Load(&stash_keys_[i]) == k) {
            *v = val;
            return true;
          }
        }
      }
      if (ring_.epoch() == epoch) return false;
    }
    return false;  // unreachable absent a bug (see kMaxProbeRetries)
  }

  /// XORs one bit of a trivially-copyable word (test corruption planting).
  template <typename Word>
  static void FlipBit(Word* word, int bit) {
    unsigned char bytes[sizeof(Word)];
    std::memcpy(bytes, word, sizeof(Word));
    const size_t pos = static_cast<size_t>(bit) % (sizeof(Word) * 8);
    bytes[pos / 8] ^= static_cast<unsigned char>(1u << (pos % 8));
    std::memcpy(word, bytes, sizeof(Word));
  }

  // ---- Stash tag maintenance -------------------------------------------
  //
  // The stash carries the same per-slot integrity invariant as the bucket
  // arrays: stash_tags_[i] == FoldKey(key) ^ FoldValue(value), vacant
  // slots included.  The same differential discipline applies — exchanges
  // learn the true prior word and fetch_xor the exact transition delta, so
  // racy value upserts and key CASes compose in any order.

  /// Key store into stash slot `i` with the release ordering StashInsert's
  /// publication protocol requires (exchange is acq_rel), plus the tag
  /// delta for the transition actually performed.
  void StashStoreKey(size_t i, Key k) {
    Key old = gpusim::AtomicExchWord(&stash_keys_[i], k);
    if (old != k) {
      stash_tags_[i].fetch_xor(
          static_cast<uint8_t>(SubtableT::FoldKey(old) ^ SubtableT::FoldKey(k)),
          std::memory_order_relaxed);
    }
  }

  /// Value store into stash slot `i`; last-writer-wins for racy upserts,
  /// with the exchange arbitrating whose tag delta applies.
  void StashStoreValue(size_t i, Value v) {
    Value old = gpusim::AtomicExchWord(&stash_values_[i], v);
    if (!(old == v)) {
      stash_tags_[i].fetch_xor(
          static_cast<uint8_t>(SubtableT::FoldValue(old) ^
                               SubtableT::FoldValue(v)),
          std::memory_order_relaxed);
    }
  }

  /// Claims a free stash slot for a failed insertion; false when full.
  /// `slot_out` (optional) receives the claimed index.
  ///
  /// Publication order is load-bearing for lock-free readers: the slot is
  /// claimed through stash_state_ (so a racing StashInsert can never write
  /// its value into a slot another insert is about to publish), the
  /// occupancy counter rises with release *before* the key becomes
  /// visible (so a reader gating its scan on stash_size_ > 0 cannot skip
  /// a published entry), and the key itself is stored last with release
  /// (so a reader that observes it also observes the value).
  bool StashInsert(Key k, Value v, size_t* slot_out = nullptr) {
    for (size_t i = 0; i < stash_keys_.size(); ++i) {
      if (gpusim::Load(&stash_state_[i]) != kStashVacant) continue;
      if (!gpusim::AtomicCasWord(&stash_state_[i], kStashVacant, kStashBusy)) {
        continue;
      }
      stash_size_.fetch_add(1, std::memory_order_release);
      // Racy by contract: a concurrent upsert of k may write the value
      // slot the moment the key publishes it; last writer wins.
      StashStoreValue(i, v);
      StashStoreKey(i, k);
      bool ok = gpusim::AtomicCasWord(&stash_state_[i], kStashBusy, kStashLive);
      DYCUCKOO_DCHECK(ok);
      (void)ok;
      stats_.stash_inserts.fetch_add(1, kRelaxed);
      if (slot_out != nullptr) *slot_out = i;
      return true;
    }
    return false;
  }

  /// Removes the stash entry at slot `i` holding key `k` (device-side,
  /// racing erasers allowed — exactly one wins).  Returns true for the
  /// winner, which also owns the occupancy decrement, the slot reclaim,
  /// and the tag delta its won CAS authorized.
  bool StashRemoveAt(size_t i, Key k) {
    if (!gpusim::AtomicCasWord(&stash_keys_[i], k, kEmptyKey)) return false;
    if (k != kEmptyKey) {
      stash_tags_[i].fetch_xor(
          static_cast<uint8_t>(SubtableT::FoldKey(k) ^
                               SubtableT::FoldKey(kEmptyKey)),
          std::memory_order_relaxed);
    }
    // The key-CAS winner owns the reclaim.  The state may still be kBusy
    // when the key was caught mid-publish (value and key already written);
    // the publisher's busy -> live transition takes no locks, so waiting
    // for it here always makes progress.
    for (;;) {
      if (gpusim::LoadAcquire(&stash_state_[i]) == kStashLive &&
          gpusim::AtomicCasWord(&stash_state_[i], kStashLive, kStashVacant)) {
        break;
      }
      std::this_thread::yield();
    }
    stash_size_.fetch_sub(1, kRelaxed);
    return true;
  }

  /// Stash insert that cannot fail: doubles the stash arrays (host memory,
  /// like the fail buffers — not arena-metered) when full.  Recovery paths
  /// only; called with no kernels in flight.
  void ForceStash(Key k, Value v) {
    if (StashInsert(k, v)) return;
    const size_t old_cap = stash_keys_.size();
    const size_t new_cap = std::max<size_t>(16, old_cap * 2);
    std::vector<std::atomic<Key>> grown_keys(new_cap);
    std::vector<std::atomic<Value>> grown_values(new_cap);
    std::vector<std::atomic<uint32_t>> grown_state(new_cap);
    std::vector<std::atomic<uint8_t>> grown_tags(new_cap);
    for (size_t i = 0; i < new_cap; ++i) {
      grown_keys[i].store(kEmptyKey, std::memory_order_relaxed);
      grown_tags[i].store(SubtableT::ExpectedTag(kEmptyKey, Value{}),
                          std::memory_order_relaxed);
    }
    for (size_t i = 0; i < old_cap; ++i) {
      grown_keys[i].store(stash_keys_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      grown_values[i].store(stash_values_[i].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
      grown_state[i].store(stash_state_[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
      // The copy is NOT a delta-maintained transition — carry the tag word
      // verbatim so pre-existing (planted or real) corruption survives the
      // regrow instead of being silently laundered into a clean tag.
      grown_tags[i].store(stash_tags_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    }
    stash_keys_ = std::move(grown_keys);
    stash_values_ = std::move(grown_values);
    stash_state_ = std::move(grown_state);
    stash_tags_ = std::move(grown_tags);
    DYCUCKOO_CHECK(StashInsert(k, v));
  }

  /// Moves every stash entry back through the normal insert path (called
  /// after an upsize made room); anything that still fails returns to the
  /// stash, which cannot overflow since the entries just vacated it.
  void DrainStash() {
    uint64_t count = stash_size_.load(std::memory_order_relaxed);
    if (count == 0) return;
    std::vector<Key> keys;
    std::vector<Value> values;
    keys.reserve(count);
    for (size_t i = 0; i < stash_keys_.size(); ++i) {
      Key k = stash_keys_[i].load(std::memory_order_relaxed);
      if (k == kEmptyKey) continue;
      values.push_back(stash_values_[i].load(std::memory_order_relaxed));
      keys.push_back(k);
      StashStoreKey(i, kEmptyKey);
      stash_state_[i].store(kStashVacant, std::memory_order_relaxed);
      stash_size_.fetch_sub(1, kRelaxed);
    }
    if (keys.empty()) return;
    FailBuffer fail(keys.size());
    InsertKernel(keys.data(), values.data(), keys.size(),
                 /*exclude_table=*/-1, /*check_partner=*/false, &fail);
    stats_.stash_drains.fetch_add(keys.size() - fail.count(), kRelaxed);
    for (uint64_t i = 0; i < fail.count(); ++i) {
      DYCUCKOO_CHECK(StashInsert(fail.keys()[i], fail.values()[i]));
    }
  }

  /// One warp's chunk of the erase batch.  Lock-free: slots are released
  /// with a key CAS, so exactly one racing eraser wins the decrement.
  void EraseWarp(const Key* keys, uint64_t n, uint64_t warp,
                 std::atomic<uint64_t>* erased) {
    const uint64_t base = warp * gpusim::kWarpSize;
    const uint64_t end = std::min(n, base + gpusim::kWarpSize);
    uint64_t local_erases = 0, local_hits = 0;
    for (uint64_t idx = base; idx < end; ++idx) {
      Key k = keys[idx];
      ++local_erases;
      uint64_t n_erased = EraseOneInternal(k);
      if (n_erased > 0) {
        local_hits += n_erased;
        erased->fetch_add(n_erased, kRelaxed);
      }
    }
    stats_.erases.fetch_add(local_erases, kRelaxed);
    if (local_hits) stats_.erase_hits.fetch_add(local_hits, kRelaxed);
  }

  /// One delete over the key's candidate buckets; returns slots released
  /// (more than one only if a racy duplicate existed).  `except_table`
  /// shields one subtable from the delete (downsize rollback: the old
  /// subtable keeps its copy while duplicates elsewhere are removed).
  uint64_t EraseOneInternal(Key k, int except_table = -1) {
    if (k == kEmptyKey) return 0;
    uint64_t released = 0;
    int candidates[16];
    int n_cand = CandidateTables(k, candidates);
    // Same epoch-retry contract as FindOneInternal: a miss is only final
    // when no displacement overlapped the probe.  A key in flight through
    // an eviction chain is claimed from the handoff ring instead — the
    // claim linearizes the delete and the owning chain undoes its
    // placement when it discovers the claim at retire time.
    for (int attempt = 0; attempt < kMaxProbeRetries; ++attempt) {
      const uint64_t epoch = ring_.epoch();
      for (int c = 0; c < n_cand; ++c) {
        if (candidates[c] == except_table) continue;
        SubtableT& t = tables_[candidates[c]];
        uint64_t loc = t.BucketIndex(k);
        gpusim::CountBucketRead();
        Key snap[kSlots];
        t.SnapshotKeys(loc, snap);
        for (int s = 0; s < kSlots; ++s) {
          if (snap[s] == k) {
            if (t.CasKey(loc, s, k, kEmptyKey)) {
              t.AddSize(-1);
              ++released;
            }
          }
        }
      }
      if (stash_size_.load(std::memory_order_acquire) > 0) {
        gpusim::CountBucketRead();
        for (size_t i = 0; i < stash_keys_.size(); ++i) {
          if (gpusim::Load(&stash_keys_[i]) == k && StashRemoveAt(i, k)) {
            ++released;
          }
        }
      }
      if (released == 0 && ring_.count() > 0 && ring_.TryClaimForDelete(k)) {
        stats_.handoff_deletes.fetch_add(1, kRelaxed);
        ++released;
      }
      if (released > 0 || ring_.epoch() == epoch) break;
    }
    return released;
  }

  // ---- Resizing ---------------------------------------------------------

  int SmallestSubtable() const {
    int best = 0;
    for (int i = 1; i < num_subtables(); ++i) {
      if (tables_[i].num_buckets() < tables_[best].num_buckets()) best = i;
    }
    return best;
  }

  int LargestSubtable() const {
    int best = 0;
    for (int i = 1; i < num_subtables(); ++i) {
      if (tables_[i].num_buckets() > tables_[best].num_buckets()) best = i;
    }
    return best;
  }

  bool CanDownsize() const {
    return tables_[LargestSubtable()].num_buckets() > 1;
  }

  /// Doubles the smallest subtable.  Conflict-free: a pair in old bucket
  /// `loc` can only move to `loc` or `loc + n_old` in the doubled table, and
  /// distinct old buckets never collide, so no locks are taken (paper
  /// Section IV-D, Figure 4).
  Status UpsizeInternal() {
    const int idx = SmallestSubtable();
    SubtableT& old = tables_[idx];
    const uint64_t n_old = old.num_buckets();
    SubtableT bigger(n_old * 2, old.seed(), arena_, options_.memory_tag);
    if (!bigger.ok()) {
      return Status::OutOfMemory("device arena exhausted during upsize");
    }

    grid_->LaunchWarps(n_old, [&](uint64_t loc) {
      gpusim::CountBucketRead();
      Key snap_k[kSlots];
      Value snap_v[kSlots];
      old.SnapshotKeys(loc, snap_k);
      old.SnapshotValues(loc, snap_v);
      int stay = 0;
      int moved = 0;
      for (int s = 0; s < kSlots; ++s) {
        Key k = snap_k[s];
        if (k == kEmptyKey) continue;
        Value v = snap_v[s];
        // Source tag travels verbatim with the pair so a not-yet-scrubbed
        // corruption survives the move instead of being re-sealed.
        const uint8_t tag = old.TagAt(loc, s);
        uint64_t new_loc = bigger.RawHash(k) & (2 * n_old - 1);
        if (new_loc != loc && new_loc != loc + n_old) {
          // Only possible when the key bytes were silently corrupted (an
          // intact key in bucket `loc` can rehash to loc or loc + n_old
          // and nothing else).  Keep the pair at `loc` with its mismatched
          // tag: the next scrub pass flags and unpublishes it there.
          new_loc = loc;
        }
        if (new_loc == loc) {
          bigger.StoreSlotFresh(loc, stay++, k, v, tag);
        } else {
          bigger.StoreSlotFresh(loc + n_old, moved++, k, v, tag);
        }
      }
      if (stay) gpusim::CountBucketWrite();
      if (moved) gpusim::CountBucketWrite();
    });

    stats_.rehashed_kvs.fetch_add(old.size(), kRelaxed);
    stats_.upsizes.fetch_add(1, kRelaxed);
    bigger.SetSize(old.size());
    tables_[idx] = std::move(bigger);
    // The new headroom is the stash's chance to empty itself.
    DrainStash();
    return Status::OK();
  }

  /// Halves the largest subtable: old buckets (loc, loc + n_new) merge into
  /// new bucket loc; overflow ("residuals") is reinserted into the *other*
  /// subtables (paper Section IV-D, downsizing).
  ///
  /// Transactional: the old subtable stays live — and untouched, since the
  /// entire eviction machinery excludes subtable `idx` — until every
  /// residual has a new home.  Outcomes:
  ///  * commit:        *progressed = true, OK.  Up to kMaxDownsizeSpill
  ///                   hard-to-place residuals may be parked in the stash
  ///                   (stats().recovery_spills) rather than aborting.
  ///  * alloc failure: *progressed = false, OutOfMemory; nothing changed.
  ///  * rollback:      *progressed = false, OK; residual copies placed in
  ///                   other subtables are erased again (the old subtable
  ///                   still holds the originals) and any residents the
  ///                   placement chains displaced are re-homed.  No key is
  ///                   ever lost (stats().downsize_rollbacks).
  Status DownsizeInternal(bool* progressed) {
    *progressed = false;
    const int idx = LargestSubtable();
    SubtableT& old = tables_[idx];
    const uint64_t n_new = old.num_buckets() / 2;
    DYCUCKOO_CHECK(n_new >= 1);
    SubtableT smaller(n_new, old.seed(), arena_, options_.memory_tag);
    if (!smaller.ok()) {
      return Status::OutOfMemory("device arena exhausted during downsize");
    }

    const uint64_t old_size = old.size();
    std::vector<Key> residual_keys(old_size);
    std::vector<Value> residual_values(old_size);
    std::atomic<uint64_t> residual_cursor{0};

    grid_->LaunchWarps(n_new, [&](uint64_t loc) {
      Key merged_k[2 * kSlots];
      Value merged_v[2 * kSlots];
      uint8_t merged_t[2 * kSlots];
      int count = 0;
      const uint64_t sources[2] = {loc, loc + n_new};
      for (uint64_t src : sources) {
        gpusim::CountBucketRead();
        Key snap_k[kSlots];
        Value snap_v[kSlots];
        old.SnapshotKeys(src, snap_k);
        old.SnapshotValues(src, snap_v);
        for (int s = 0; s < kSlots; ++s) {
          if (snap_k[s] == kEmptyKey) continue;
          merged_k[count] = snap_k[s];
          merged_v[count] = snap_v[s];
          // Verbatim tag carry: see StoreSlotFresh.  (Residuals that spill
          // to other subtables below re-publish through InsertKernel and
          // get freshly sealed tags — the one resize path that can launder
          // a not-yet-scrubbed fault; docs/robustness.md records it.)
          merged_t[count] = old.TagAt(src, s);
          ++count;
        }
      }
      int kept = std::min(count, kSlots);
      for (int s = 0; s < kept; ++s) {
        smaller.StoreSlotFresh(loc, s, merged_k[s], merged_v[s],
                               merged_t[s]);
      }
      if (kept) gpusim::CountBucketWrite();
      if (count > kept) {
        uint64_t at = residual_cursor.fetch_add(count - kept,
                                                std::memory_order_relaxed);
        for (int s = kept; s < count; ++s, ++at) {
          residual_keys[at] = merged_k[s];
          residual_values[at] = merged_v[s];
        }
      }
    });

    const uint64_t residuals = residual_cursor.load(std::memory_order_relaxed);

    // Place every residual into the *other* subtables while the old
    // subtable still holds them.  The transient duplicates are invisible:
    // no partner check, and chains never enter subtable idx.
    FailBuffer fail(residuals > 0 ? residuals : 1);
    if (residuals > 0) {
      InsertKernel(residual_keys.data(), residual_values.data(), residuals,
                   /*exclude_table=*/idx, /*check_partner=*/false, &fail);
    }
    const uint64_t leftover = fail.count();
    if (leftover > kMaxDownsizeSpill) {
      RollbackDownsize(idx, residual_keys, residuals, fail);
      stats_.downsize_rollbacks.fetch_add(1, kRelaxed);
      DYCUCKOO_LOG(Warning) << "downsize of subtable " << idx
                            << " rolled back: " << leftover << " of "
                            << residuals << " residuals had no home";
      return Status::OK();
    }

    // Commit: absorb the stragglers into the stash and swap in the merged
    // subtable (which frees the old one).
    for (uint64_t i = 0; i < leftover; ++i) {
      ForceStash(fail.keys()[i], fail.values()[i]);
    }
    if (leftover > 0) {
      stats_.recovery_spills.fetch_add(leftover, kRelaxed);
      DYCUCKOO_LOG(Info) << "downsize of subtable " << idx << " parked "
                         << leftover << " residuals in the stash";
    }
    smaller.SetSize(old_size - residuals);
    tables_[idx] = std::move(smaller);
    stats_.rehashed_kvs.fetch_add(old_size, kRelaxed);
    stats_.residual_kvs.fetch_add(residuals, kRelaxed);
    stats_.downsizes.fetch_add(1, kRelaxed);
    *progressed = true;
    return Status::OK();
  }

  /// Undoes a failed downsize.  The old subtable (still installed at `idx`)
  /// holds every residual, so the copies successfully placed into other
  /// subtables or the stash are simply erased again.  Keys in the fail
  /// buffer that are *not* residuals were evicted out of their slots by the
  /// placement chains and must be stored again — the stash backstops them,
  /// so the rollback itself cannot lose keys.
  void RollbackDownsize(int idx, const std::vector<Key>& residual_keys,
                        uint64_t residuals, const FailBuffer& fail) {
    std::unordered_set<Key> residual_set(residual_keys.begin(),
                                         residual_keys.begin() + residuals);
    for (uint64_t i = 0; i < residuals; ++i) {
      EraseOneInternal(residual_keys[i], /*except_table=*/idx);
    }
    std::vector<Key> displaced_keys;
    std::vector<Value> displaced_values;
    for (uint64_t i = 0; i < fail.count(); ++i) {
      if (residual_set.count(fail.keys()[i]) > 0) continue;
      displaced_keys.push_back(fail.keys()[i]);
      displaced_values.push_back(fail.values()[i]);
    }
    if (displaced_keys.empty()) return;
    FailBuffer still_failed(displaced_keys.size());
    InsertKernel(displaced_keys.data(), displaced_values.data(),
                 displaced_keys.size(), /*exclude_table=*/idx,
                 /*check_partner=*/false, &still_failed);
    for (uint64_t i = 0; i < still_failed.count(); ++i) {
      ForceStash(still_failed.keys()[i], still_failed.values()[i]);
    }
    if (still_failed.count() > 0) {
      stats_.recovery_spills.fetch_add(still_failed.count(), kRelaxed);
    }
  }

  static constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

  DyCuckooOptions options_;
  gpusim::DeviceArena* arena_ = nullptr;
  gpusim::Grid* grid_ = nullptr;
  PairMap pair_map_;
  uint64_t choice_salt_ = 0;
  std::vector<SubtableT> tables_;
  // Overflow stash (options_.stash_capacity entries; empty when disabled).
  // stash_state_ serializes writers per slot (claim -> publish -> reclaim);
  // readers validate purely through the key word and never touch it.
  std::vector<std::atomic<Key>> stash_keys_;
  std::vector<std::atomic<Value>> stash_values_;
  std::vector<std::atomic<uint32_t>> stash_state_;
  // Per-slot integrity tags mirroring the subtables' tag line (see
  // subtable.h): stash_tags_[i] == FoldKey(key) ^ FoldValue(value).
  std::vector<std::atomic<uint8_t>> stash_tags_;
  std::atomic<uint64_t> stash_size_{0};
  // Displaced-victim handoff (options_.handoff_capacity entries): keeps
  // every key of an in-flight eviction chain reader-visible.
  HandoffRing<Key, Value> ring_;
  mutable TableStats stats_;
};

}  // namespace dycuckoo

#endif  // DYCUCKOO_DYCUCKOO_DYNAMIC_TABLE_H_
