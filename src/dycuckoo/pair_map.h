// Layer-1 hashing of the two-layer cuckoo scheme (paper Section V-A).
//
// Every key is mapped to one of the C(d,2) unordered subtable pairs; the key
// then lives in exactly one bucket of one member of its pair.  FIND and
// DELETE therefore inspect at most two buckets regardless of d.  The mapping
// depends only on (d, seed) — never on subtable sizes — so it is stable
// across resizes.

#ifndef DYCUCKOO_DYCUCKOO_PAIR_MAP_H_
#define DYCUCKOO_DYCUCKOO_PAIR_MAP_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace dycuckoo {

/// An unordered pair of subtable indices.
struct TablePair {
  int first;
  int second;

  /// The member that is not `t` (t must be a member).
  int Other(int t) const {
    DYCUCKOO_DCHECK(t == first || t == second);
    return t == first ? second : first;
  }

  bool Contains(int t) const { return t == first || t == second; }

  bool operator==(const TablePair& o) const {
    return first == o.first && second == o.second;
  }
};

/// \brief Enumerates the C(d,2) subtable pairs and hashes keys onto them.
class PairMap {
 public:
  PairMap() = default;

  PairMap(int num_subtables, uint64_t seed) : seed_(seed) {
    DYCUCKOO_CHECK(num_subtables >= 2);
    pairs_.reserve(NumPairs(num_subtables));
    for (int i = 0; i < num_subtables; ++i) {
      for (int j = i + 1; j < num_subtables; ++j) {
        pairs_.push_back(TablePair{i, j});
      }
    }
  }

  static int NumPairs(int d) { return d * (d - 1) / 2; }

  int num_pairs() const { return static_cast<int>(pairs_.size()); }

  /// Layer-1 hash: the pair of subtables that may hold `key`.
  TablePair PairFor(uint64_t key) const {
    return pairs_[Mix64(key ^ seed_) % pairs_.size()];
  }

  const TablePair& pair(int index) const { return pairs_[index]; }

 private:
  uint64_t seed_ = 0;
  std::vector<TablePair> pairs_;
};

}  // namespace dycuckoo

#endif  // DYCUCKOO_DYCUCKOO_PAIR_MAP_H_
