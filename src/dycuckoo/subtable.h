// One cuckoo subtable: a power-of-two array of cache-line-sized buckets.
//
// Layout (paper Section IV-A, Figure 2): a bucket is 128 bytes of keys —
// 32 keys for 4-byte keys, 16 for 8-byte — stored contiguously so a warp
// reads a bucket in one coalesced transaction.  Values live in a parallel
// array (SoA) so FIND-miss and DELETE never touch value memory.  A third
// array holds one spinlock word per bucket.
//
// Slots are std::atomic<Key>/std::atomic<Value>: on the real device these
// are plain words raced under the CUDA memory model; here relaxed atomics
// give the identical semantics without UB.
//
// Integrity tags: a fourth arena array holds one 8-bit tag per slot —
// an XOR-folded CRC32 over the slot's key and value — stored as a
// contiguous per-bucket line (kSlots bytes, one partial cache line), the
// same layout the ROADMAP's fingerprint/SoA item needs.  The invariant
//
//   tag[slot] == FoldKey(key) ^ FoldValue(value)   (empty slots included)
//
// holds at every quiescent point.  It is maintained *differentially*:
// every mutation learns the true prior word (atomic exchange, or a won
// CAS) and XORs the exact transition delta into the tag with fetch_xor.
// XOR commutes, so concurrent lock-free writers (value upserts racing a
// delete's key CAS, say) can apply their deltas in any order and the tag
// still lands on the invariant — which is what makes scrub-time tag
// verification structurally free of false positives.  Absolute tag writes
// (ResyncTag) are reserved for provably quiescent repair paths.

#ifndef DYCUCKOO_DYCUCKOO_SUBTABLE_H_
#define DYCUCKOO_DYCUCKOO_SUBTABLE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "common/hash.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "gpusim/atomics.h"
#include "gpusim/device_arena.h"
#include "gpusim/racecheck.h"

namespace dycuckoo {

/// Per-key-type bucket geometry: a bucket is one 128-byte cache line of keys.
template <typename Key>
struct BucketTraits {
  static constexpr size_t kBucketBytes = 128;
  static constexpr int kSlotsPerBucket =
      static_cast<int>(kBucketBytes / sizeof(Key));
  static_assert(kSlotsPerBucket >= 1, "key too large for one bucket");

  /// Reserved sentinel marking an empty slot; user keys must not equal it.
  static constexpr Key kEmptyKey = std::numeric_limits<Key>::max();
};

/// \brief Bucketed slot storage for one subtable.
///
/// Owns three arena-backed arrays (keys, values, locks).  Movable, not
/// copyable.  Size bookkeeping (m_i) lives here as an atomic counter.
template <typename Key, typename Value>
class Subtable {
 public:
  using Traits = BucketTraits<Key>;
  static constexpr int kSlots = Traits::kSlotsPerBucket;
  static constexpr Key kEmptyKey = Traits::kEmptyKey;

  Subtable() = default;

  /// Creates a subtable with `num_buckets` buckets (power of two) hashing
  /// with `seed`.  Check ok() afterwards: allocation can fail when the
  /// device arena is exhausted.
  ///
  /// The four arrays carry region-suffixed arena tags (tag + "/kv-keys",
  /// "/kv-values", "/kv-tags", "/locks"): memory-fault campaigns target
  /// the tag-guarded regions with a "/kv" substring filter without ever
  /// striking a lock word (whose corruption would wedge the bucket, not
  /// silently corrupt data — a different failure class).  Accounting and
  /// alloc-fault filters match by substring, so the plain tag still
  /// addresses all four.
  Subtable(uint64_t num_buckets, uint64_t seed, gpusim::DeviceArena* arena,
           std::string tag)
      : num_buckets_(num_buckets),
        seed_(seed),
        arena_(arena),
        tag_(std::move(tag)) {
    DYCUCKOO_CHECK(IsPowerOfTwo(num_buckets));
    const uint64_t slots = num_buckets_ * kSlots;
    keys_ = arena_->AllocateArray<std::atomic<Key>>(slots, tag_ + "/kv-keys");
    values_ =
        arena_->AllocateArray<std::atomic<Value>>(slots, tag_ + "/kv-values");
    tags_ =
        arena_->AllocateArray<std::atomic<uint8_t>>(slots, tag_ + "/kv-tags");
    locks_ =
        arena_->AllocateArray<gpusim::BucketLock>(num_buckets_, tag_ + "/locks");
    if (keys_ == nullptr || values_ == nullptr || tags_ == nullptr ||
        locks_ == nullptr) {
      Release();
      num_buckets_ = 0;
      alloc_failed_ = true;
      return;
    }
    const uint8_t empty_tag = ExpectedTag(kEmptyKey, Value{});
    for (uint64_t s = 0; s < slots; ++s) {
      keys_[s].store(kEmptyKey, std::memory_order_relaxed);
      // dylint:allow(tag-discipline, "fresh memory: the subtable is not published yet, no concurrent writer can race a delta")
      tags_[s].store(empty_tag, std::memory_order_relaxed);
    }
  }

  ~Subtable() { Release(); }

  Subtable(const Subtable&) = delete;
  Subtable& operator=(const Subtable&) = delete;

  Subtable(Subtable&& other) noexcept { MoveFrom(&other); }
  Subtable& operator=(Subtable&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(&other);
    }
    return *this;
  }

  /// False when construction failed (arena exhausted).
  bool ok() const { return !alloc_failed_; }
  bool empty_storage() const { return num_buckets_ == 0; }

  uint64_t num_buckets() const { return num_buckets_; }
  uint64_t num_slots() const { return num_buckets_ * kSlots; }
  uint64_t seed() const { return seed_; }

  /// Entries currently stored (m_i).
  uint64_t size() const { return size_.load(std::memory_order_relaxed); }
  void AddSize(int64_t delta) {
    size_.fetch_add(static_cast<uint64_t>(delta), std::memory_order_relaxed);
  }
  void SetSize(uint64_t v) { size_.store(v, std::memory_order_relaxed); }

  double filled_factor() const {
    uint64_t slots = num_slots();
    return slots == 0 ? 0.0 : static_cast<double>(size()) / slots;
  }

  /// 64-bit layer-2 hash for this subtable (full width, pre-masking).
  uint64_t RawHash(Key key) const { return Mix64(static_cast<uint64_t>(key) ^ seed_); }

  /// Bucket index for `key`.  Power-of-two masking makes the conflict-free
  /// upsize identity hold: masking with (2n-1) yields idx or idx + n.
  uint64_t BucketIndex(Key key) const {
    return RawHash(key) & (num_buckets_ - 1);
  }

  Key KeyAt(uint64_t bucket, int slot) const {
    return gpusim::Load(&keys_[bucket * kSlots + slot]);
  }

  /// Acquire-ordered key load, pairing with the release in StoreKey.  A
  /// lock-free reader that observes a key through this accessor is
  /// guaranteed to see the value stored before the key was published
  /// (StoreSlot writes value first), so re-validating a snapshot hit with
  /// KeyAtAcquire before reading the value rules out torn (key, value)
  /// pairs.
  Key KeyAtAcquire(uint64_t bucket, int slot) const {
    return gpusim::LoadAcquire(&keys_[bucket * kSlots + slot]);
  }

  /// Snapshots a bucket's key row — the simulated analogue of the single
  /// coalesced 128-byte transaction a warp issues on hardware.  memcpy from
  /// the atomic array lets the host compiler vectorize the subsequent
  /// comparison loop, so a bucket scan costs ~constant regardless of slot
  /// count (as it does on the GPU), instead of 32 serialized atomic loads.
  void SnapshotKeys(uint64_t bucket, Key out[kSlots]) const {
    static_assert(sizeof(std::atomic<Key>) == sizeof(Key));
    gpusim::RangeLoadCheck(keys_ + bucket * kSlots, sizeof(Key) * kSlots);
    std::memcpy(out, reinterpret_cast<const char*>(keys_ + bucket * kSlots),
                sizeof(Key) * kSlots);
  }
  Value ValueAt(uint64_t bucket, int slot) const {
    return gpusim::Load(&values_[bucket * kSlots + slot]);
  }

  /// Value-row analogue of SnapshotKeys (resize kernels move whole rows).
  void SnapshotValues(uint64_t bucket, Value out[kSlots]) const {
    static_assert(sizeof(std::atomic<Value>) == sizeof(Value));
    gpusim::RangeLoadCheck(values_ + bucket * kSlots, sizeof(Value) * kSlots);
    std::memcpy(out, reinterpret_cast<const char*>(values_ + bucket * kSlots),
                sizeof(Value) * kSlots);
  }
  /// Key stores publish with release ordering so the value written before
  /// them (see StoreSlot) is visible to any reader that acquires the key.
  /// Implemented as an atomic exchange: the returned prior key authorizes
  /// the exact integrity-tag delta FK(old) ^ FK(new), keeping the tag
  /// invariant under any interleaving with lock-free key CASes.
  void StoreKey(uint64_t bucket, int slot, Key k) {
    Key old = gpusim::AtomicExchWord(&keys_[bucket * kSlots + slot], k);
    if (old != k) {
      tags_[bucket * kSlots + slot].fetch_xor(
          static_cast<uint8_t>(FoldKey(old) ^ FoldKey(k)),
          std::memory_order_relaxed);
    }
  }
  void StoreValue(uint64_t bucket, int slot, Value v) {
    Value old = gpusim::AtomicExchWord(&values_[bucket * kSlots + slot], v);
    if (!(old == v)) {
      tags_[bucket * kSlots + slot].fetch_xor(
          static_cast<uint8_t>(FoldValue(old) ^ FoldValue(v)),
          std::memory_order_relaxed);
    }
  }
  /// Value store with a documented last-writer-wins contract (the
  /// unlocked duplicate-upsert path).  The exchange arbitrates the racy
  /// writers, so each applies the tag delta for the transition it actually
  /// performed — the contract that keeps concurrent upserts of one key
  /// from corrupting the tag.
  void StoreValueRacy(uint64_t bucket, int slot, Value v) {
    StoreValue(bucket, slot, v);
  }
  /// Publishes a (key, value) pair: value first, then the key with release
  /// ordering.  When the slot currently holds a *different* live key the
  /// caller must unpublish it first (StoreKey of kEmptyKey) so no reader
  /// can pair the old key with the new value mid-overwrite.
  void StoreSlot(uint64_t bucket, int slot, Key k, Value v) {
    StoreValue(bucket, slot, v);
    StoreKey(bucket, slot, k);
  }

  /// StoreSlot for a subtable no other thread can reach yet (the resize
  /// kernels building a fresh table, where each destination slot is
  /// written at most once from its initialized-empty state).  Plain
  /// stores plus an absolute tag write: no exchange is needed to learn
  /// the prior value, which keeps the upsize kernel's conflict-free
  /// guarantee (zero CAS/exchange operations) intact.
  ///
  /// `tag` is the SOURCE slot's integrity tag, carried verbatim.  The
  /// copied pair is byte-identical to the source, so a valid source tag
  /// stays valid — and a mismatched one (silent corruption planted before
  /// the resize, not yet scrubbed) stays mismatched instead of being
  /// re-sealed over corrupt bytes.  Recomputing ExpectedTag(k, v) here
  /// would launder exactly the faults the tags exist to catch.
  void StoreSlotFresh(uint64_t bucket, int slot, Key k, Value v,
                      uint8_t tag) {
    const uint64_t idx = bucket * kSlots + slot;
    gpusim::Store(&values_[idx], v);
    gpusim::StoreRelease(&keys_[idx], k);
    // dylint:allow(tag-discipline, "fresh memory: resize destination slot written at most once before the table is published; carries the source tag verbatim")
    tags_[idx].store(tag, std::memory_order_relaxed);
  }

  /// CAS on a key slot (used by lock-free DELETE: only the winner of the
  /// kEmptyKey exchange decrements the size counter).  A won CAS observed
  /// `expected` atomically, which authorizes its tag delta.
  bool CasKey(uint64_t bucket, int slot, Key expected, Key desired) {
    if (!gpusim::AtomicCasWord(&keys_[bucket * kSlots + slot], expected,
                               desired)) {
      return false;
    }
    if (expected != desired) {
      tags_[bucket * kSlots + slot].fetch_xor(
          static_cast<uint8_t>(FoldKey(expected) ^ FoldKey(desired)),
          std::memory_order_relaxed);
    }
    return true;
  }

  /// CAS on a value slot (the lock-free duplicate-upsert path): pinning the
  /// value that was read while the key matched means the write can never
  /// land in a slot an eviction chain has re-keyed in between — the CAS
  /// fails instead, and the caller re-validates the key.
  bool CasValue(uint64_t bucket, int slot, Value expected, Value desired) {
    if (!gpusim::AtomicCasWord(&values_[bucket * kSlots + slot], expected,
                               desired)) {
      return false;
    }
    if (!(expected == desired)) {
      tags_[bucket * kSlots + slot].fetch_xor(
          static_cast<uint8_t>(FoldValue(expected) ^ FoldValue(desired)),
          std::memory_order_relaxed);
    }
    return true;
  }

  // ---- Integrity tags ----------------------------------------------------

  /// 8-bit XOR-fold of CRC32 over one key word.
  static uint8_t FoldKey(Key k) { return Fold8(&k, sizeof(Key)); }
  /// 8-bit XOR-fold of CRC32 over one value word.
  static uint8_t FoldValue(Value v) { return Fold8(&v, sizeof(Value)); }
  /// The tag a clean slot holding (k, v) must carry.
  static uint8_t ExpectedTag(Key k, Value v) {
    return static_cast<uint8_t>(FoldKey(k) ^ FoldValue(v));
  }

  uint8_t TagAt(uint64_t bucket, int slot) const {
    return tags_[bucket * kSlots + slot].load(std::memory_order_relaxed);
  }

  /// Rewrites a slot's tag from its current (key, value) contents.
  /// Quiescent paths ONLY (scrub repair with no kernels in flight): an
  /// absolute store would wipe any delta a concurrent lock-free writer is
  /// about to apply.
  void ResyncTag(uint64_t bucket, int slot) {
    const uint64_t idx = bucket * kSlots + slot;
    // dylint:allow(tag-discipline, "quiescent repair only: scrub runs with no kernels in flight, per this function's contract")
    tags_[idx].store(ExpectedTag(keys_[idx].load(std::memory_order_relaxed),
                                 values_[idx].load(std::memory_order_relaxed)),
                     std::memory_order_relaxed);
  }

  /// TEST HOOK: XORs one stored bit of a slot's key word (region 0), value
  /// word (region 1) or tag byte (region 2) WITHOUT the tag delta —
  /// planting exactly the silent corruption the tag line exists to catch.
  void CorruptBitForTest(uint64_t bucket, int slot, int region, int bit) {
    const uint64_t idx = bucket * kSlots + slot;
    if (region == 0) {
      Key k = keys_[idx].load(std::memory_order_relaxed);
      FlipBitRaw(&k, bit);
      keys_[idx].store(k, std::memory_order_relaxed);
    } else if (region == 1) {
      Value v = values_[idx].load(std::memory_order_relaxed);
      FlipBitRaw(&v, bit);
      values_[idx].store(v, std::memory_order_relaxed);
    } else {
      tags_[idx].fetch_xor(static_cast<uint8_t>(1u << (bit % 8)),
                           std::memory_order_relaxed);
    }
  }

  gpusim::BucketLock& lock(uint64_t bucket) { return locks_[bucket]; }

  /// Raw key-slot storage, exposed for diagnostics and for the RaceCheck
  /// use-after-free regression test (which must hold a stale pointer
  /// across a resize).  Not part of the table API.
  const std::atomic<Key>* keys_data() const { return keys_; }

  /// Bytes of device memory this subtable occupies.
  uint64_t memory_bytes() const {
    return num_buckets_ *
           (kSlots * (sizeof(Key) + sizeof(Value) + sizeof(uint8_t)) +
            sizeof(gpusim::BucketLock));
  }

 private:
  /// XORs one bit of a trivially-copyable word (test corruption planting).
  template <typename Word>
  static void FlipBitRaw(Word* word, int bit) {
    unsigned char bytes[sizeof(Word)];
    std::memcpy(bytes, word, sizeof(Word));
    const size_t pos = static_cast<size_t>(bit) % (sizeof(Word) * 8);
    bytes[pos / 8] ^= static_cast<unsigned char>(1u << (pos % 8));
    std::memcpy(word, bytes, sizeof(Word));
  }

  /// XOR-folds an incremental CRC32 over `len` bytes down to 8 bits.
  static uint8_t Fold8(const void* data, size_t len) {
    uint32_t crc = Crc32Update(0, data, len);
    crc ^= crc >> 16;
    crc ^= crc >> 8;
    return static_cast<uint8_t>(crc);
  }

  void Release() {
    if (arena_ != nullptr) {
      if (keys_ != nullptr) arena_->FreeArray(keys_);
      if (values_ != nullptr) arena_->FreeArray(values_);
      if (tags_ != nullptr) arena_->FreeArray(tags_);
      if (locks_ != nullptr) arena_->FreeArray(locks_);
    }
    keys_ = nullptr;
    values_ = nullptr;
    tags_ = nullptr;
    locks_ = nullptr;
  }

  void MoveFrom(Subtable* other) {
    alloc_failed_ = other->alloc_failed_;
    num_buckets_ = other->num_buckets_;
    seed_ = other->seed_;
    arena_ = other->arena_;
    tag_ = std::move(other->tag_);
    keys_ = other->keys_;
    values_ = other->values_;
    tags_ = other->tags_;
    locks_ = other->locks_;
    size_.store(other->size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    other->keys_ = nullptr;
    other->values_ = nullptr;
    other->tags_ = nullptr;
    other->locks_ = nullptr;
    other->num_buckets_ = 0;
    other->size_.store(0, std::memory_order_relaxed);
  }

  bool alloc_failed_ = false;
  uint64_t num_buckets_ = 0;
  uint64_t seed_ = 0;
  gpusim::DeviceArena* arena_ = nullptr;
  std::string tag_;
  std::atomic<Key>* keys_ = nullptr;
  std::atomic<Value>* values_ = nullptr;
  // Per-slot integrity tags, a contiguous kSlots-byte line per bucket.
  std::atomic<uint8_t>* tags_ = nullptr;
  gpusim::BucketLock* locks_ = nullptr;
  std::atomic<uint64_t> size_{0};
};

}  // namespace dycuckoo

#endif  // DYCUCKOO_DYCUCKOO_SUBTABLE_H_
