#include "dycuckoo/stats.h"

#include <sstream>

namespace dycuckoo {

std::string TableStats::Snapshot::ToString() const {
  std::ostringstream os;
  os << "inserts_new=" << inserts_new << " inserts_updated=" << inserts_updated
     << " insert_failures=" << insert_failures << " finds=" << finds
     << " find_hits=" << find_hits << " erases=" << erases
     << " erase_hits=" << erase_hits << " evictions=" << evictions
     << " insert_reprobe_updates=" << insert_reprobe_updates
     << " upsizes=" << upsizes << " downsizes=" << downsizes
     << " rehashed_kvs=" << rehashed_kvs << " residual_kvs=" << residual_kvs
     << " stash_inserts=" << stash_inserts << " stash_drains=" << stash_drains
     << " parked_victims=" << parked_victims
     << " handoff_hits=" << handoff_hits
     << " handoff_full_fallbacks=" << handoff_full_fallbacks
     << " handoff_deletes=" << handoff_deletes
     << " downsize_rollbacks=" << downsize_rollbacks
     << " degraded_batches=" << degraded_batches
     << " resize_oom_skips=" << resize_oom_skips
     << " recovery_spills=" << recovery_spills
     << " scrub_buckets_scanned=" << scrub_buckets_scanned
     << " scrub_misplaced_found=" << scrub_misplaced_found
     << " scrub_misplaced_repaired=" << scrub_misplaced_repaired
     << " scrub_stash_fixes=" << scrub_stash_fixes
     << " scrub_duplicates_collapsed=" << scrub_duplicates_collapsed
     << " scrub_passes=" << scrub_passes
     << " scrub_corrupted_slots=" << scrub_corrupted_slots
     << " scrub_repaired_from_wal=" << scrub_repaired_from_wal
     << " scrub_unrepairable=" << scrub_unrepairable;
  return os.str();
}

}  // namespace dycuckoo
