// Operation statistics exposed by the DyCuckoo table.

#ifndef DYCUCKOO_DYCUCKOO_STATS_H_
#define DYCUCKOO_DYCUCKOO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace dycuckoo {

/// Cumulative counters since table construction.  Thread-safe (kernels
/// update them from many warps); read with Snapshot().
class TableStats {
 public:
  std::atomic<uint64_t> inserts_new{0};      // KV placed into an empty slot
  std::atomic<uint64_t> inserts_updated{0};  // existing key overwritten
  std::atomic<uint64_t> insert_failures{0};  // eviction chain exceeded bound
  std::atomic<uint64_t> finds{0};
  std::atomic<uint64_t> find_hits{0};
  std::atomic<uint64_t> erases{0};
  std::atomic<uint64_t> erase_hits{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> insert_reprobe_updates{0};  // dup averted at placement
  std::atomic<uint64_t> upsizes{0};
  std::atomic<uint64_t> downsizes{0};
  std::atomic<uint64_t> rehashed_kvs{0};     // KVs touched by resize kernels
  std::atomic<uint64_t> residual_kvs{0};     // downsize overflow reinsertions
  std::atomic<uint64_t> stash_inserts{0};    // failures absorbed by the stash
  std::atomic<uint64_t> stash_drains{0};     // stash entries moved back

  // Eviction displacement handoff (docs/robustness.md "Consistency
  // guarantees"): victims parked before their slot is overwritten, reads
  // served from the ring, ring-full fallbacks, and DELETEs that consumed a
  // parked entry.
  std::atomic<uint64_t> parked_victims{0};
  std::atomic<uint64_t> handoff_hits{0};
  std::atomic<uint64_t> handoff_full_fallbacks{0};
  std::atomic<uint64_t> handoff_deletes{0};

  // Recovery / fault-survival counters: how often the table degraded or
  // rolled back instead of failing (see docs/robustness.md).
  std::atomic<uint64_t> downsize_rollbacks{0};  // downsize undone losslessly
  std::atomic<uint64_t> degraded_batches{0};    // batch ran without pre-grow
  std::atomic<uint64_t> resize_oom_skips{0};    // auto-resize skipped on OOM
  std::atomic<uint64_t> recovery_spills{0};     // keys force-parked in stash

  // Online invariant scrubber (DynamicTable::ScrubBuckets / ScrubAll).
  std::atomic<uint64_t> scrub_buckets_scanned{0};
  std::atomic<uint64_t> scrub_misplaced_found{0};     // pairs outside probe set
  std::atomic<uint64_t> scrub_misplaced_repaired{0};  // pairs re-homed
  std::atomic<uint64_t> scrub_stash_fixes{0};         // stash counter repaired
  std::atomic<uint64_t> scrub_duplicates_collapsed{0};  // shadowed copies freed
  std::atomic<uint64_t> scrub_passes{0};              // full sweeps completed

  // Silent-data-corruption defense (integrity tags; docs/robustness.md):
  // tag-mismatched slots detected, pairs restored from checkpoint + WAL,
  // and corruption durable state could not resolve (shard degrades).
  std::atomic<uint64_t> scrub_corrupted_slots{0};
  std::atomic<uint64_t> scrub_repaired_from_wal{0};
  std::atomic<uint64_t> scrub_unrepairable{0};

  struct Snapshot {
    uint64_t inserts_new = 0;
    uint64_t inserts_updated = 0;
    uint64_t insert_failures = 0;
    uint64_t finds = 0;
    uint64_t find_hits = 0;
    uint64_t erases = 0;
    uint64_t erase_hits = 0;
    uint64_t evictions = 0;
    uint64_t insert_reprobe_updates = 0;
    uint64_t upsizes = 0;
    uint64_t downsizes = 0;
    uint64_t rehashed_kvs = 0;
    uint64_t residual_kvs = 0;
    uint64_t stash_inserts = 0;
    uint64_t stash_drains = 0;
    uint64_t parked_victims = 0;
    uint64_t handoff_hits = 0;
    uint64_t handoff_full_fallbacks = 0;
    uint64_t handoff_deletes = 0;
    uint64_t downsize_rollbacks = 0;
    uint64_t degraded_batches = 0;
    uint64_t resize_oom_skips = 0;
    uint64_t recovery_spills = 0;
    uint64_t scrub_buckets_scanned = 0;
    uint64_t scrub_misplaced_found = 0;
    uint64_t scrub_misplaced_repaired = 0;
    uint64_t scrub_stash_fixes = 0;
    uint64_t scrub_duplicates_collapsed = 0;
    uint64_t scrub_passes = 0;
    uint64_t scrub_corrupted_slots = 0;
    uint64_t scrub_repaired_from_wal = 0;
    uint64_t scrub_unrepairable = 0;

    std::string ToString() const;
  };

  Snapshot Capture() const {
    Snapshot s;
    s.inserts_new = inserts_new.load(std::memory_order_relaxed);
    s.inserts_updated = inserts_updated.load(std::memory_order_relaxed);
    s.insert_failures = insert_failures.load(std::memory_order_relaxed);
    s.finds = finds.load(std::memory_order_relaxed);
    s.find_hits = find_hits.load(std::memory_order_relaxed);
    s.erases = erases.load(std::memory_order_relaxed);
    s.erase_hits = erase_hits.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.insert_reprobe_updates =
        insert_reprobe_updates.load(std::memory_order_relaxed);
    s.upsizes = upsizes.load(std::memory_order_relaxed);
    s.downsizes = downsizes.load(std::memory_order_relaxed);
    s.rehashed_kvs = rehashed_kvs.load(std::memory_order_relaxed);
    s.residual_kvs = residual_kvs.load(std::memory_order_relaxed);
    s.stash_inserts = stash_inserts.load(std::memory_order_relaxed);
    s.stash_drains = stash_drains.load(std::memory_order_relaxed);
    s.parked_victims = parked_victims.load(std::memory_order_relaxed);
    s.handoff_hits = handoff_hits.load(std::memory_order_relaxed);
    s.handoff_full_fallbacks =
        handoff_full_fallbacks.load(std::memory_order_relaxed);
    s.handoff_deletes = handoff_deletes.load(std::memory_order_relaxed);
    s.downsize_rollbacks = downsize_rollbacks.load(std::memory_order_relaxed);
    s.degraded_batches = degraded_batches.load(std::memory_order_relaxed);
    s.resize_oom_skips = resize_oom_skips.load(std::memory_order_relaxed);
    s.recovery_spills = recovery_spills.load(std::memory_order_relaxed);
    s.scrub_buckets_scanned =
        scrub_buckets_scanned.load(std::memory_order_relaxed);
    s.scrub_misplaced_found =
        scrub_misplaced_found.load(std::memory_order_relaxed);
    s.scrub_misplaced_repaired =
        scrub_misplaced_repaired.load(std::memory_order_relaxed);
    s.scrub_stash_fixes = scrub_stash_fixes.load(std::memory_order_relaxed);
    s.scrub_duplicates_collapsed =
        scrub_duplicates_collapsed.load(std::memory_order_relaxed);
    s.scrub_passes = scrub_passes.load(std::memory_order_relaxed);
    s.scrub_corrupted_slots =
        scrub_corrupted_slots.load(std::memory_order_relaxed);
    s.scrub_repaired_from_wal =
        scrub_repaired_from_wal.load(std::memory_order_relaxed);
    s.scrub_unrepairable = scrub_unrepairable.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace dycuckoo

#endif  // DYCUCKOO_DYCUCKOO_STATS_H_
