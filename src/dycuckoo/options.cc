#include "dycuckoo/options.h"

#include <sstream>

namespace dycuckoo {

Status DyCuckooOptions::Validate() const {
  if (num_subtables < 2 || num_subtables > 16) {
    return Status::InvalidArgument("num_subtables must be in [2, 16]");
  }
  if (!(lower_bound > 0.0 && lower_bound < upper_bound && upper_bound <= 1.0)) {
    return Status::InvalidArgument(
        "require 0 < lower_bound < upper_bound <= 1");
  }
  // Paper Section IV-B: one upsize lowers theta to at least beta*d/(d+1), so
  // a lower bound at or above d/(d+1)*beta could oscillate; the hard
  // requirement derived in the paper is alpha < d/(d+1).
  double d = static_cast<double>(num_subtables);
  if (lower_bound >= d / (d + 1.0)) {
    std::ostringstream os;
    os << "lower_bound must be < d/(d+1) = " << d / (d + 1.0);
    return Status::InvalidArgument(os.str());
  }
  if (initial_capacity == 0) {
    return Status::InvalidArgument("initial_capacity must be > 0");
  }
  if (max_eviction_chain < 1) {
    return Status::InvalidArgument("max_eviction_chain must be >= 1");
  }
  return Status::OK();
}

}  // namespace dycuckoo
