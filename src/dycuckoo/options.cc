#include "dycuckoo/options.h"

#include <sstream>

namespace dycuckoo {

Status DyCuckooOptions::Validate() const {
  if (num_subtables < 2 || num_subtables > 16) {
    return Status::InvalidArgument("num_subtables must be in [2, 16]");
  }
  if (!(lower_bound > 0.0 && lower_bound < upper_bound && upper_bound <= 1.0)) {
    return Status::InvalidArgument(
        "require 0 < lower_bound < upper_bound <= 1");
  }
  // Paper Section IV-B: an upsize doubles ONE of the d equally-sized
  // subtables, shrinking the filled factor only to theta * d/(d+1) — not to
  // theta/2 as a whole-table rehash would.  If the shrink landed at or below
  // alpha, the very next batch of deletions would trigger a downsize and the
  // table could oscillate between resize directions on every flush.  The
  // An upsize fires only when theta > beta, so the post-upsize factor
  // exceeds beta * d/(d+1); the paper's hard requirement alpha < d/(d+1) is
  // the beta -> 1 limit of the no-oscillation condition alpha <=
  // beta * d/(d+1).  For d=2 the boundary is 2/3: alpha = 0.66 is accepted,
  // alpha = 0.667 is rejected.
  double d = static_cast<double>(num_subtables);
  if (lower_bound >= d / (d + 1.0)) {
    std::ostringstream os;
    os << "lower_bound must be < d/(d+1) = " << d / (d + 1.0);
    return Status::InvalidArgument(os.str());
  }
  if (initial_capacity == 0) {
    return Status::InvalidArgument("initial_capacity must be > 0");
  }
  if (max_eviction_chain < 1) {
    return Status::InvalidArgument("max_eviction_chain must be >= 1");
  }
  if (handoff_capacity < 1) {
    return Status::InvalidArgument("handoff_capacity must be >= 1");
  }
  if (eviction_delay_spins_for_test < 0) {
    return Status::InvalidArgument(
        "eviction_delay_spins_for_test must be >= 0");
  }
  return Status::OK();
}

}  // namespace dycuckoo
