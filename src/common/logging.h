// Minimal leveled logging and assertion macros.
//
// The library is quiet by default (kWarning); benches and examples raise the
// level for progress reporting.  DYCUCKOO_DCHECK compiles away in NDEBUG
// builds, matching the Google-style "assert programmer errors, Status for
// runtime errors" split.

#ifndef DYCUCKOO_COMMON_LOGGING_H_
#define DYCUCKOO_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dycuckoo {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

[[noreturn]] void DieCheckFailed(const char* expr, const char* file, int line);

}  // namespace internal
}  // namespace dycuckoo

#define DYCUCKOO_LOG(level)                                        \
  ::dycuckoo::internal::LogMessage(::dycuckoo::LogLevel::k##level, \
                                   __FILE__, __LINE__)

// Always-on invariant check.
#define DYCUCKOO_CHECK(expr)                                            \
  do {                                                                  \
    if (!(expr))                                                        \
      ::dycuckoo::internal::DieCheckFailed(#expr, __FILE__, __LINE__);  \
  } while (false)

// Debug-only check.
#ifdef NDEBUG
#define DYCUCKOO_DCHECK(expr) \
  do {                        \
  } while (false)
#else
#define DYCUCKOO_DCHECK(expr) DYCUCKOO_CHECK(expr)
#endif

#endif  // DYCUCKOO_COMMON_LOGGING_H_
