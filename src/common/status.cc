#include "common/status.h"

namespace dycuckoo {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kInsertionFailure:
      return "InsertionFailure";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  if (details_ && !details_->empty()) {
    out += " {";
    bool first = true;
    for (const Detail& d : *details_) {
      if (!first) out += ", ";
      first = false;
      out += d.first;
      out += '=';
      out += d.second;
    }
    out += '}';
  }
  return out;
}

}  // namespace dycuckoo
