// Portable Clang Thread Safety Analysis annotations.
//
// Clang's -Wthread-safety proves lock discipline at compile time: a
// member declared GUARDED_BY(mu_) may only be touched while mu_ is held,
// a function declared REQUIRES(mu_) may only be called with it held, and
// an ACQUIRE/RELEASE pair must balance on every path.  The CI
// static-analysis job builds with -Wthread-safety -Werror on Clang; on
// GCC (the default local toolchain) every macro expands to nothing, so
// the annotations are free documentation.
//
// The annotated lock types that make these attributes bite are in
// common/mutex.h.  docs/analysis.md ("Static layer") records which
// structures are annotated and why the known gaps (condition-variable
// wait loops) are exempted.

#ifndef DYCUCKOO_COMMON_THREAD_ANNOTATIONS_H_
#define DYCUCKOO_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define DYCUCKOO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DYCUCKOO_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (a lock).
#define CAPABILITY(x) DYCUCKOO_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime holds a capability.
#define SCOPED_CAPABILITY DYCUCKOO_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be accessed while `x` is held.
#define GUARDED_BY(x) DYCUCKOO_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointee* may only be accessed while `x` is held.
#define PT_GUARDED_BY(x) DYCUCKOO_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (exclusively / shared).
#define ACQUIRE(...) \
  DYCUCKOO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DYCUCKOO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (either mode).
#define RELEASE(...) \
  DYCUCKOO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DYCUCKOO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function may only be called while the capability is held.
#define REQUIRES(...) \
  DYCUCKOO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DYCUCKOO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function may only be called while the capability is NOT held.
#define EXCLUDES(...) DYCUCKOO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attempts the capability; `b` is the success return value.
#define TRY_ACQUIRE(b, ...) \
  DYCUCKOO_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) DYCUCKOO_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: suppress analysis for one function.  Every use must say
/// why in a comment (the common one: condition-variable wait loops go
/// through std::unique_lock, which the analysis cannot see through).
#define NO_THREAD_SAFETY_ANALYSIS \
  DYCUCKOO_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // DYCUCKOO_COMMON_THREAD_ANNOTATIONS_H_
