// Wall-clock timer and throughput helpers for the bench harness.

#ifndef DYCUCKOO_COMMON_TIMER_H_
#define DYCUCKOO_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace dycuckoo {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Million operations per second, the paper's unit (Mops).
inline double Mops(uint64_t ops, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(ops) / seconds / 1e6;
}

}  // namespace dycuckoo

#endif  // DYCUCKOO_COMMON_TIMER_H_
