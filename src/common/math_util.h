// Small integer-math helpers shared across modules.

#ifndef DYCUCKOO_COMMON_MATH_UTIL_H_
#define DYCUCKOO_COMMON_MATH_UTIL_H_

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace dycuckoo {

/// True iff x is a (nonzero) power of two.
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x <= 2^63). NextPowerOfTwo(0) == 1.
constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  if (x <= 1) return 1;
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Integer ceil(a / b); b must be > 0.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// floor(log2(x)); x must be > 0.
constexpr int Log2Floor(uint64_t x) {
  int r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// n choose 2 as a double (used by the Theorem-1 balance weights).
inline double Choose2(double n) { return n <= 1.0 ? 0.0 : n * (n - 1.0) / 2.0; }

}  // namespace dycuckoo

#endif  // DYCUCKOO_COMMON_MATH_UTIL_H_
