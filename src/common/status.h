// Status: lightweight error model for the dycuckoo library.
//
// Modeled after the RocksDB / Arrow convention: library entry points that can
// fail return a Status (or a StatusOr<T>) instead of throwing.  The library
// itself never throws; exceptions are reserved for programmer errors surfaced
// via assertions in debug builds.

#ifndef DYCUCKOO_COMMON_STATUS_H_
#define DYCUCKOO_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace dycuckoo {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kCapacityExceeded = 2,   // structure cannot grow further (arena exhausted)
  kInsertionFailure = 3,   // cuckoo eviction chain exceeded its bound
  kNotSupported = 4,       // operation unsupported by this table (e.g. CUDPP delete)
  kInternal = 5,
  kOutOfMemory = 6,
  kDeadlineExceeded = 7,    // request deadline passed before it could run
  kResourceExhausted = 8,   // admission queue full; caller must shed or retry
  kUnavailable = 9,         // serving layer degraded (e.g. breaker open)
  kDataLoss = 10,           // bytes are corrupt or missing (CRC mismatch,
                            // torn write, truncated snapshot/WAL)
};

/// \brief Result of a fallible operation.
///
/// A default-constructed Status is OK and carries no allocation. Non-OK
/// statuses carry a code and a human-readable message.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status InsertionFailure(std::string msg) {
    return Status(StatusCode::kInsertionFailure, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsCapacityExceeded() const { return code_ == StatusCode::kCapacityExceeded; }
  bool IsInsertionFailure() const { return code_ == StatusCode::kInsertionFailure; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Evaluates an expression returning Status and propagates failure upward.
#define DYCUCKOO_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::dycuckoo::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace dycuckoo

#endif  // DYCUCKOO_COMMON_STATUS_H_
