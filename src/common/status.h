// Status: lightweight error model for the dycuckoo library.
//
// Modeled after the RocksDB / Arrow convention: library entry points that can
// fail return a Status (or a StatusOr<T>) instead of throwing.  The library
// itself never throws; exceptions are reserved for programmer errors surfaced
// via assertions in debug builds.

#ifndef DYCUCKOO_COMMON_STATUS_H_
#define DYCUCKOO_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dycuckoo {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kCapacityExceeded = 2,   // structure cannot grow further (arena exhausted)
  kInsertionFailure = 3,   // cuckoo eviction chain exceeded its bound
  kNotSupported = 4,       // operation unsupported by this table (e.g. CUDPP delete)
  kInternal = 5,
  kOutOfMemory = 6,
  kDeadlineExceeded = 7,    // request deadline passed before it could run
  kResourceExhausted = 8,   // admission queue full; caller must shed or retry
  kUnavailable = 9,         // serving layer degraded (e.g. breaker open)
  kDataLoss = 10,           // bytes are corrupt or missing (CRC mismatch,
                            // torn write, truncated snapshot/WAL)
};

/// \brief Result of a fallible operation.
///
/// A default-constructed Status is OK and carries no allocation. Non-OK
/// statuses carry a code and a human-readable message.
///
/// [[nodiscard]]: a dropped Status is a swallowed failure.  Every builder
/// ships -Werror=unused-result, so ignoring a Status-returning call is a
/// compile error; spell out intentional drops as DYCUCKOO_IGNORE_STATUS.
class [[nodiscard]] Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status InsertionFailure(std::string msg) {
    return Status(StatusCode::kInsertionFailure, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsCapacityExceeded() const { return code_ == StatusCode::kCapacityExceeded; }
  bool IsInsertionFailure() const { return code_ == StatusCode::kInsertionFailure; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }

  // --- Machine-readable details --------------------------------------------
  //
  // A non-OK status can carry structured key/value details alongside the
  // human-readable message, so clients can react programmatically (e.g. a
  // quarantined-shard rejection names the shard and a retry-after hint)
  // without parsing free-form text.  Details are immutable once attached:
  // copies of a Status share the same detail vector.

  /// One structured detail: {key, value}, both UTF-8 strings.
  using Detail = std::pair<std::string, std::string>;

  /// Returns a copy of this status with `key` = `value` attached (existing
  /// details are kept; a repeated key shadows the earlier entry in
  /// FindDetail).  Chainable: Status::Unavailable(...).WithDetail(...).
  Status WithDetail(std::string key, std::string value) const {
    Status s = *this;
    auto details = s.details_
                       ? std::make_shared<std::vector<Detail>>(*s.details_)
                       : std::make_shared<std::vector<Detail>>();
    details->emplace_back(std::move(key), std::move(value));
    s.details_ = std::move(details);
    return s;
  }

  /// The value attached under `key`, or nullptr.  The newest entry wins
  /// when a key was attached more than once.
  const std::string* FindDetail(std::string_view key) const {
    if (!details_) return nullptr;
    for (auto it = details_->rbegin(); it != details_->rend(); ++it) {
      if (it->first == key) return &it->second;
    }
    return nullptr;
  }

  /// Every attached detail, in attachment order (empty for most statuses).
  const std::vector<Detail>& details() const {
    static const std::vector<Detail> kEmpty;
    return details_ ? *details_ : kEmpty;
  }

  /// "OK" or "<code>: <message>" plus " {k=v, ...}" when details exist.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  /// Shared, effectively-immutable detail list (null when none attached):
  /// copying a Status stays cheap and detail-free statuses pay nothing.
  std::shared_ptr<const std::vector<Detail>> details_;
};

/// Evaluates an expression returning Status and propagates failure upward.
#define DYCUCKOO_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::dycuckoo::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Deliberately drops a [[nodiscard]] result.  Use only where failure is
/// genuinely uninteresting (best-effort cleanup on an already-failing
/// path) and say why in a nearby comment; `(void)` casts alone do not
/// survive review, this macro is grep-able.
#define DYCUCKOO_IGNORE_STATUS(expr) \
  do {                               \
    auto _ignored = (expr);          \
    (void)_ignored;                  \
  } while (false)

}  // namespace dycuckoo

#endif  // DYCUCKOO_COMMON_STATUS_H_
