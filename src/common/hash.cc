#include "common/hash.h"

#include "common/rng.h"

namespace dycuckoo {

UniversalHash UniversalHash::FromSeed(uint64_t seed) {
  SplitMix64 rng(seed);
  uint64_t a = rng.Next() % (kUniversalPrime - 1) + 1;
  uint64_t b = rng.Next() % kUniversalPrime;
  return UniversalHash(a, b);
}

}  // namespace dycuckoo
